// Command rfdemo runs the paper's demonstration interactively: the 28-node
// pan-European topology boots cold, a video clip streams from a server city
// to a client city, and the GUI shows each switch turning from red to green
// as the RPC server configures it. Optional -http serves the dashboard to a
// browser.
//
//	rfdemo                       # terminal dashboard, 50x compressed time
//	rfdemo -scale 1              # real protocol time (~the paper's 4 min)
//	rfdemo -replicas 3           # distributed RF-controller, 3 replicas
//	rfdemo -http :8080           # also serve the GUI on http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"routeflow"
)

func main() {
	scale := flag.Float64("scale", 50, "time compression factor (1 = real time)")
	server := flag.String("server", "Lisbon", "video server city")
	client := flag.String("client", "Stockholm", "video client city")
	replicas := flag.Int("replicas", 1, "rf-controller replicas (>1 = distributed control)")
	httpAddr := flag.String("http", "", "also serve the dashboard on this address")
	flag.Parse()

	g := routeflow.PanEuropean()
	srv, ok := g.NodeByName(*server)
	if !ok {
		fatalf("unknown city %q", *server)
	}
	cli, ok := g.NodeByName(*client)
	if !ok {
		fatalf("unknown city %q", *client)
	}

	dash := routeflow.NewDashboard(g)
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, dash); err != nil {
				fmt.Fprintf(os.Stderr, "rfdemo: http: %v\n", err)
			}
		}()
		fmt.Printf("dashboard: http://%s/\n", *httpAddr)
	}

	clk := routeflow.ScaledClock(*scale)
	d, err := routeflow.New(g,
		routeflow.WithClock(clk),
		routeflow.WithHosts(srv.ID, cli.ID),
		routeflow.WithBootDelay(2*time.Second),
		routeflow.WithTimers(routeflow.DefaultExperimentTimers()),
		routeflow.WithProbeInterval(time.Second),
		routeflow.WithReplicas(*replicas),
		routeflow.WithOnStatus(func(dpid uint64, st routeflow.VMState) { dash.Update(dpid, st) }),
	)
	if err != nil {
		fatalf("deployment: %v", err)
	}
	defer d.Close()

	srvHost, _ := d.Host(srv.ID)
	cliHost, _ := d.Host(cli.ID)
	vClient, err := routeflow.NewVideoClient(cliHost, 0, clk)
	if err != nil {
		fatalf("client: %v", err)
	}
	vServer, err := routeflow.NewVideoServer(routeflow.VideoServerConfig{
		Host: srvHost, Dst: cliHost.Addr(), Clock: clk})
	if err != nil {
		fatalf("server: %v", err)
	}

	fmt.Printf("streaming video %s → %s; starting cold network of %d switches...\n\n",
		*server, *client, g.NumNodes())
	vServer.Start()
	defer vServer.Stop()
	if err := d.Start(); err != nil {
		fatalf("start: %v", err)
	}

	// Render the dashboard while the system configures itself.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := vClient.AwaitFirstFrame(time.Hour); err != nil {
			fmt.Fprintf(os.Stderr, "rfdemo: %v\n", err)
		}
	}()
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Print("\x1b[H\x1b[2J") // clear terminal
			fmt.Print(dash.RenderANSI())
			fmt.Printf("\nprotocol time elapsed: %v\n", d.Elapsed().Round(time.Second))
			st := vClient.Stats()
			if st.Frames > 0 {
				fmt.Printf("video: %d frames received\n", st.Frames)
			} else {
				fmt.Println("video: waiting for first frame...")
			}
		case <-done:
			fmt.Print("\x1b[H\x1b[2J")
			fmt.Print(dash.RenderANSI())
			fmt.Printf("\n*** video reached %s after %v of protocol time (paper: ~4 min) ***\n",
				*client, d.Elapsed().Round(time.Second))
			fmt.Printf("manual configuration would have taken %v\n",
				routeflow.DefaultManualModel().Total(g.NumNodes()))
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfdemo: "+format+"\n", args...)
	os.Exit(1)
}

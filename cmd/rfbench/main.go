// Command rfbench regenerates the paper's evaluation numbers.
//
//	rfbench -experiment fig3            # Fig. 3: auto vs manual config time
//	rfbench -experiment demo            # §3: pan-European video demo
//	rfbench -experiment fig3 -sizes 4,8,28 -scale 200
//	rfbench -experiment demo -merged    # ablation: no FlowVisor
//
// Reported durations are protocol time (the -scale factor compresses wall
// time without changing protocol behaviour).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"routeflow"
)

func main() {
	experiment := flag.String("experiment", "fig3", "fig3 | demo")
	sizes := flag.String("sizes", "4,8,12,16,20,24,28", "ring sizes for fig3")
	scale := flag.Float64("scale", 100, "time compression factor")
	merged := flag.Bool("merged", false, "merged-controller ablation (no FlowVisor)")
	server := flag.String("server", "Lisbon", "demo video server city")
	client := flag.String("client", "Stockholm", "demo video client city")
	flag.Parse()

	cfg := routeflow.ExperimentConfig{TimeScale: *scale, NoFlowVisor: *merged}

	switch *experiment {
	case "fig3":
		var ns []int
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 3 {
				fatalf("bad ring size %q", s)
			}
			ns = append(ns, n)
		}
		fmt.Printf("Fig. 3 — RouteFlow configuration time, ring topologies (scale %gx)\n", *scale)
		rows, err := routeflow.RunFig3(ns, cfg)
		if err != nil {
			fatalf("fig3: %v", err)
		}
		routeflow.PrintFig3(os.Stdout, rows)
	case "demo":
		g := routeflow.PanEuropean()
		srv, ok := g.NodeByName(*server)
		if !ok {
			fatalf("unknown city %q", *server)
		}
		cli, ok := g.NodeByName(*client)
		if !ok {
			fatalf("unknown city %q", *client)
		}
		fmt.Printf("§3 demo — video %s → %s over the pan-European topology (scale %gx)\n",
			*server, *client, *scale)
		res, err := routeflow.RunDemo(cfg, srv.ID, cli.ID)
		if err != nil {
			fatalf("demo: %v", err)
		}
		routeflow.PrintDemo(os.Stdout, res)
	default:
		fatalf("unknown experiment %q", *experiment)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfbench: "+format+"\n", args...)
	os.Exit(1)
}

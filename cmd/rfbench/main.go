// Command rfbench regenerates the paper's evaluation numbers.
//
//	rfbench -experiment fig3            # Fig. 3: auto vs manual config time
//	rfbench -experiment demo            # §3: pan-European video demo
//	rfbench -experiment multias         # inter-domain scaling sweep
//	rfbench -experiment fig3 -sizes 4,8,28 -scale 200
//	rfbench -experiment demo -merged    # ablation: no FlowVisor
//	rfbench -experiment multias -replicas 4   # sharded RF-controller
//
// Reported durations are protocol time (the -scale factor compresses wall
// time without changing protocol behaviour).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"routeflow"
)

func main() {
	experiment := flag.String("experiment", "fig3", "fig3 | demo | multias")
	sizes := flag.String("sizes", "4,8,12,16,20,24,28", "ring sizes for fig3")
	asCounts := flag.String("ascounts", "2,3,4", "AS counts for multias")
	asSize := flag.Int("assize", 3, "switches per AS for multias")
	scale := flag.Float64("scale", 100, "time compression factor")
	merged := flag.Bool("merged", false, "merged-controller ablation (no FlowVisor)")
	replicas := flag.Int("replicas", 1, "rf-controller replicas (>1 = sharded switch ownership)")
	server := flag.String("server", "Lisbon", "demo video server city")
	client := flag.String("client", "Stockholm", "demo video client city")
	flag.Parse()

	opts := []routeflow.RunOption{
		routeflow.RunTimeScale(*scale),
		routeflow.RunReplicas(*replicas),
	}
	if *merged {
		opts = append(opts, routeflow.RunMerged())
	}

	var spec routeflow.RunSpec
	switch *experiment {
	case "fig3":
		fmt.Printf("Fig. 3 — RouteFlow configuration time, ring topologies (scale %gx)\n", *scale)
		spec = routeflow.Fig3Run{Sizes: parseInts(*sizes, 3, "ring size")}
	case "multias":
		fmt.Printf("Inter-domain scaling — ASRing(n, %d) cold-boot convergence (scale %gx)\n",
			*asSize, *scale)
		spec = routeflow.MultiASRun{ASCounts: parseInts(*asCounts, 2, "AS count"), ASSize: *asSize}
	case "demo":
		g := routeflow.PanEuropean()
		srv, ok := g.NodeByName(*server)
		if !ok {
			fatalf("unknown city %q", *server)
		}
		cli, ok := g.NodeByName(*client)
		if !ok {
			fatalf("unknown city %q", *client)
		}
		fmt.Printf("§3 demo — video %s → %s over the pan-European topology (scale %gx)\n",
			*server, *client, *scale)
		spec = routeflow.DemoRun{Streams: [][2]int{{srv.ID, cli.ID}}}
	default:
		fatalf("unknown experiment %q", *experiment)
	}

	report, err := routeflow.Run(spec, opts...)
	if err != nil {
		fatalf("%s: %v", *experiment, err)
	}
	report.Print(os.Stdout)
}

func parseInts(csv string, min int, what string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < min {
			fatalf("bad %s %q", what, s)
		}
		out = append(out, n)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfbench: "+format+"\n", args...)
	os.Exit(1)
}

// Command rftopo generates and inspects the topologies the experiments run
// on.
//
//	rftopo -topo ring -n 28              # summary of a 28-switch ring
//	rftopo -topo paneu -format dot       # pan-European topology as Graphviz
//	rftopo -topo random -n 20 -m 35 -seed 7 -format json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"routeflow"
)

func main() {
	kind := flag.String("topo", "paneu", "paneu | ring | line | star | grid | mesh | random")
	n := flag.Int("n", 8, "node count (ring/line/star/random) or grid width")
	h := flag.Int("h", 3, "grid height")
	m := flag.Int("m", 0, "link count for random (default n+n/2)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "summary", "summary | dot | json")
	flag.Parse()

	var g *routeflow.Topology
	switch *kind {
	case "paneu":
		g = routeflow.PanEuropean()
	case "ring":
		g = routeflow.Ring(*n)
	case "line":
		g = routeflow.Line(*n)
	case "star":
		g = routeflow.Star(*n)
	case "grid":
		g = routeflow.Grid(*n, *h)
	case "mesh":
		g = routeflow.Grid(*n, *n)
	case "random":
		links := *m
		if links == 0 {
			links = *n + *n/2
		}
		g = routeflow.Random(*n, links, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rftopo: unknown topology %q\n", *kind)
		os.Exit(1)
	}

	switch *format {
	case "dot":
		fmt.Print(g.DOT())
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(g); err != nil {
			fmt.Fprintf(os.Stderr, "rftopo: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Println(g.String())
		fmt.Printf("connected: %v  min degree: %d  diameter: %d hops\n",
			g.Connected(), g.MinDegree(), g.Diameter())
		fmt.Printf("auto-configuration would allocate %d /30 link subnets\n", g.NumLinks())
		fmt.Printf("manual configuration estimate: %v\n",
			routeflow.DefaultManualModel().Total(g.NumNodes()))
	}
}

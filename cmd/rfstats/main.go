// Command rfstats boots a topology with the streaming telemetry pipeline
// enabled, drives a video stream across it, and live-dumps the rolling
// per-link utilization and per-flow views the controller aggregates from
// the switches' counter exports.
//
//	rfstats                          # ring of 4, hosts 0↔2, 10s of traffic
//	rfstats -topo grid -n 3 -h 3     # 3×3 grid, corner-to-corner
//	rfstats -for 30s -every 2s       # longer run, slower refresh
//	rfstats -replicas 3              # distributed control; merged views
//
// Each refresh prints the monitoring placement (which switch observes which
// flow) and every link's windowed rate — the controller's view, built only
// from exported counters, never from direct datapath inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"routeflow"
)

func main() {
	kind := flag.String("topo", "ring", "ring | grid | fattree")
	n := flag.Int("n", 4, "ring size, grid width, or fat-tree k")
	h := flag.Int("h", 3, "grid height")
	scale := flag.Float64("scale", 50, "time compression factor")
	every := flag.Duration("every", time.Second, "refresh period (wall time)")
	runFor := flag.Duration("for", 10*time.Second, "traffic duration (wall time)")
	replicas := flag.Int("replicas", 1, "rf-controller replicas")
	flag.Parse()

	var g *routeflow.Topology
	var hosts [2]int
	switch *kind {
	case "ring":
		g, hosts = routeflow.Ring(*n), [2]int{0, *n / 2}
	case "grid":
		g, hosts = routeflow.Grid(*n, *h), [2]int{0, *n**h - 1}
	case "fattree":
		g = routeflow.FatTree(*n)
		edges := routeflow.FatTreeEdges(*n)
		hosts = [2]int{edges[0], edges[len(edges)-1]}
	default:
		fatalf("unknown topology %q", *kind)
	}

	clk := routeflow.ScaledClock(*scale)
	d, err := routeflow.New(g,
		routeflow.WithClock(clk),
		routeflow.WithHosts(hosts[0], hosts[1]),
		routeflow.WithReplicas(*replicas),
		routeflow.WithTelemetry(),
	)
	if err != nil {
		fatalf("deployment: %v", err)
	}
	defer d.Close()

	fmt.Printf("booting %s with telemetry, hosts %d↔%d...\n", g.Name(), hosts[0], hosts[1])
	if err := d.Start(); err != nil {
		fatalf("start: %v", err)
	}
	if _, err := d.AwaitConverged(5 * time.Minute); err != nil {
		fatalf("converge: %v", err)
	}

	srcHost, _ := d.Host(hosts[0])
	dstHost, _ := d.Host(hosts[1])
	vClient, err := routeflow.NewVideoClient(dstHost, 0, clk)
	if err != nil {
		fatalf("client: %v", err)
	}
	vServer, err := routeflow.NewVideoServer(routeflow.VideoServerConfig{
		Host: srcHost, Dst: dstHost.Addr(), Clock: clk})
	if err != nil {
		fatalf("server: %v", err)
	}
	vServer.Start()
	defer vServer.Stop()

	deadline := time.Now().Add(*runFor)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for range ticker.C {
		dump(d)
		if time.Now().After(deadline) {
			break
		}
	}
	st := vClient.Stats()
	fmt.Printf("\nstream: %d frames, %d gaps\n", st.Frames, st.Gaps)
}

// dump prints one refresh of the controller's aggregated telemetry view.
func dump(d *routeflow.Deployment) {
	snap := d.TelemetrySnapshot()
	fmt.Printf("\n=== telemetry @ %v protocol time ===\n", d.Elapsed().Round(time.Millisecond))
	fmt.Println("flows (observer-elected, one switch per flow):")
	for _, f := range snap.Flows {
		fmt.Printf("  flow %-3d %d→%-3d monitor=s%-3d %8d pkts %10d B  %8.1f pps %12.0f bps  path=%v\n",
			f.ID, f.SrcNode, f.DstNode, f.Monitor, f.Packets, f.Bytes, f.RatePPS, f.RateBPS, f.Path)
	}
	fmt.Println("links (rolling utilization):")
	for _, l := range snap.Links {
		fmt.Printf("  %d—%-3d %8d pkts %10d B  %8.1f pps %12.0f bps\n",
			l.Link.A, l.Link.B, l.Packets, l.Bytes, l.RatePPS, l.RateBPS)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfstats: "+format+"\n", args...)
	os.Exit(1)
}

// Command rfstats boots a topology with the streaming telemetry pipeline
// enabled, drives a video stream across it, and live-dumps the rolling
// per-link utilization and per-flow views the controller aggregates from
// the switches' counter exports.
//
//	rfstats                          # ring of 4, hosts 0↔2, 10s of traffic
//	rfstats -topo grid -n 3 -h 3     # 3×3 grid, corner-to-corner
//	rfstats -for 30s -every 2s       # longer run, slower refresh
//	rfstats -replicas 3              # distributed control; merged views
//	rfstats -te -watch 500ms         # TE loop on; re-dump placements live
//
// Each refresh prints the monitoring placement (which switch observes which
// flow) and every link's windowed rate — the controller's view, built only
// from exported counters, never from direct datapath inspection. With -te
// the online traffic-engineering loop runs too, and -watch re-dumps the
// view at the given interval with the optimizer's current path assignments
// and cumulative migration count appended.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"routeflow"
)

func main() {
	kind := flag.String("topo", "ring", "ring | grid | fattree")
	n := flag.Int("n", 4, "ring size, grid width, or fat-tree k")
	h := flag.Int("h", 3, "grid height")
	scale := flag.Float64("scale", 50, "time compression factor")
	every := flag.Duration("every", time.Second, "refresh period (wall time)")
	runFor := flag.Duration("for", 10*time.Second, "traffic duration (wall time)")
	replicas := flag.Int("replicas", 1, "rf-controller replicas")
	te := flag.Bool("te", false, "run the online traffic-engineering loop")
	watch := flag.Duration("watch", 0, "watch mode: re-dump at this interval with TE placements (overrides -every)")
	flag.Parse()
	if *watch > 0 {
		*every = *watch
	}

	var g *routeflow.Topology
	var hosts [2]int
	switch *kind {
	case "ring":
		g, hosts = routeflow.Ring(*n), [2]int{0, *n / 2}
	case "grid":
		g, hosts = routeflow.Grid(*n, *h), [2]int{0, *n**h - 1}
	case "fattree":
		g = routeflow.FatTree(*n)
		edges := routeflow.FatTreeEdges(*n)
		hosts = [2]int{edges[0], edges[len(edges)-1]}
	default:
		fatalf("unknown topology %q", *kind)
	}

	clk := routeflow.ScaledClock(*scale)
	opts := []routeflow.Option{
		routeflow.WithClock(clk),
		routeflow.WithHosts(hosts[0], hosts[1]),
		routeflow.WithReplicas(*replicas),
		routeflow.WithTelemetry(),
	}
	if *te {
		opts = append(opts, routeflow.WithTrafficEngineering())
	}
	d, err := routeflow.New(g, opts...)
	if err != nil {
		fatalf("deployment: %v", err)
	}
	defer d.Close()

	fmt.Printf("booting %s with telemetry, hosts %d↔%d...\n", g.Name(), hosts[0], hosts[1])
	if err := d.Start(); err != nil {
		fatalf("start: %v", err)
	}
	if _, err := d.AwaitConverged(5 * time.Minute); err != nil {
		fatalf("converge: %v", err)
	}

	srcHost, _ := d.Host(hosts[0])
	dstHost, _ := d.Host(hosts[1])
	vClient, err := routeflow.NewVideoClient(dstHost, 0, clk)
	if err != nil {
		fatalf("client: %v", err)
	}
	vServer, err := routeflow.NewVideoServer(routeflow.VideoServerConfig{
		Host: srcHost, Dst: dstHost.Addr(), Clock: clk})
	if err != nil {
		fatalf("server: %v", err)
	}
	vServer.Start()
	defer vServer.Stop()

	deadline := time.Now().Add(*runFor)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	showTE := *te || *watch > 0
	for range ticker.C {
		dump(d, showTE)
		if time.Now().After(deadline) {
			break
		}
	}
	st := vClient.Stats()
	fmt.Printf("\nstream: %d frames, %d gaps\n", st.Frames, st.Gaps)
}

// dump prints one refresh of the controller's aggregated telemetry view,
// with the TE optimizer's placements appended in watch/TE mode.
func dump(d *routeflow.Deployment, showTE bool) {
	snap := d.TelemetrySnapshot()
	fmt.Printf("\n=== telemetry @ %v protocol time ===\n", d.Elapsed().Round(time.Millisecond))
	fmt.Println("flows (observer-elected, one switch per flow):")
	for _, f := range snap.Flows {
		fmt.Printf("  flow %-3d %d→%-3d monitor=s%-3d %8d pkts %10d B  %8.1f pps %12.0f bps  path=%v\n",
			f.ID, f.SrcNode, f.DstNode, f.Monitor, f.Packets, f.Bytes, f.RatePPS, f.RateBPS, f.Path)
	}
	fmt.Println("links (rolling utilization):")
	for _, l := range snap.Links {
		fmt.Printf("  %d—%-3d %8d pkts %10d B  %8.1f pps %12.0f bps\n",
			l.Link.A, l.Link.B, l.Packets, l.Bytes, l.RatePPS, l.RateBPS)
	}
	if !showTE {
		return
	}
	assigned := d.TEAssignments()
	fmt.Printf("traffic engineering: %d migrations, %d active path overrides\n",
		d.TEMoveCount(), len(assigned))
	pairs := make([][2]int, 0, len(assigned))
	for p := range assigned {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		fmt.Printf("  pair %d→%-3d pinned to path %v\n", p[0], p[1], assigned[p])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfstats: "+format+"\n", args...)
	os.Exit(1)
}

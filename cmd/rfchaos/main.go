// Command rfchaos runs chaos scenarios against the automatic-configuration
// system: curated named scenarios, or a seed-derived random fault storm on
// any generated topology.
//
//	rfchaos -list                         # name every curated scenario
//	rfchaos -run ring4-partition-heal     # run one curated scenario
//	rfchaos -all                          # run the whole curated suite
//	rfchaos -topo grid -n 3 -h 3 -faults 5 -seed 99   # seeded random storm
//
// Exit status is non-zero when any invariant fails — the CLI equivalent of
// the CI scenario gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"routeflow"
)

func main() {
	list := flag.Bool("list", false, "list curated scenarios and exit")
	run := flag.String("run", "", "run one curated scenario by name")
	all := flag.Bool("all", false, "run the whole curated suite")
	kind := flag.String("topo", "ring", "ring | grid | fattree | paneu | random | asring (ad-hoc storm)")
	n := flag.Int("n", 4, "node count (ring/random), grid width, fat-tree k, or AS count (asring)")
	h := flag.Int("h", 3, "grid height, or switches per AS (asring)")
	m := flag.Int("m", 0, "link count for random (default n+n/2)")
	faults := flag.Int("faults", 3, "random fault count for the ad-hoc storm")
	seed := flag.Int64("seed", 1, "seed for the ad-hoc storm")
	replicas := flag.Int("replicas", 1, "rf-controller replicas for the ad-hoc storm")
	flag.Parse()

	switch {
	case *list:
		for _, spec := range routeflow.CuratedScenarios() {
			if spec.Description != "" {
				fmt.Printf("%-36s %s\n", spec.Name, spec.Description)
			} else {
				fmt.Println(spec.Name)
			}
		}
	case *run != "":
		spec, ok := routeflow.ScenarioByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "rfchaos: unknown scenario %q (try -list)\n", *run)
			os.Exit(1)
		}
		os.Exit(runOne(spec))
	case *all:
		status := 0
		for _, spec := range routeflow.CuratedScenarios() {
			if runOne(spec) != 0 {
				status = 1
			}
		}
		os.Exit(status)
	default:
		os.Exit(runOne(adhocSpec(*kind, *n, *h, *m, *faults, *replicas, *seed)))
	}
}

func adhocSpec(kind string, n, h, m, faults, replicas int, seed int64) routeflow.ScenarioSpec {
	var g *routeflow.Topology
	hosts := []int{}
	switch kind {
	case "ring":
		g = routeflow.Ring(n)
		hosts = []int{0, n / 2}
	case "grid":
		g = routeflow.Grid(n, h)
		hosts = []int{0, n*h - 1}
	case "fattree":
		g = routeflow.FatTree(n)
		edges := routeflow.FatTreeEdges(n)
		hosts = []int{edges[0], edges[len(edges)-1]}
	case "paneu":
		g = routeflow.PanEuropean()
		hosts = []int{0, 27}
	case "random":
		links := m
		if links == 0 {
			links = n + n/2
		}
		g = routeflow.Random(n, links, seed)
		hosts = []int{0, n - 1}
	case "asring":
		// n ASes of h switches each (clamped like ASRing itself clamps);
		// hosts in the first and second AS so the storm exercises
		// inter-domain paths.
		if n < 2 {
			n = 2
		}
		if h < 1 {
			h = 1
		}
		g = routeflow.ASRing(n, h)
		hosts = []int{1 % h, h + h/2}
	default:
		fmt.Fprintf(os.Stderr, "rfchaos: unknown topology %q\n", kind)
		os.Exit(1)
	}
	spec := routeflow.ScenarioSpec{
		Name:         fmt.Sprintf("adhoc-%s", g.Name()),
		Topology:     g,
		HostNodes:    hosts,
		Seed:         seed,
		RandomFaults: faults,
	}
	if replicas > 1 {
		spec.Cluster = routeflow.ClusterSpec{Replicas: replicas}
	}
	return spec
}

func runOne(spec routeflow.ScenarioSpec) int {
	res, err := routeflow.RunScenario(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfchaos: %s: %v\n", spec.Name, err)
	}
	if res != nil {
		routeflow.PrintScenario(os.Stdout, res)
	}
	// The verdict is the exit status: any failed invariant — including one
	// caught inside a settle retry — must surface as non-zero.
	return routeflow.ScenarioExitCode(res, err)
}

package routeflow

import (
	"time"

	"routeflow/internal/te"
)

// Traffic-engineering types (online re-optimization over telemetry).
//
// With WithTrafficEngineering enabled, the deployment runs an optimization
// loop over the telemetry utilization view: links loaded above a headroom
// threshold shed their largest movable host-pair flows onto colder
// equal-cost paths. A move is realized as pinned flow entries pushed
// through each master replica's desired-state discipline, so migrations
// survive reconnects and failover like any other configured state, and the
// telemetry program re-baselines under a bumped epoch so counters stay
// exactly-once across the path change.
type (
	// TEConfig tunes the optimizer: hot threshold, relief watermark
	// (hysteresis), per-pair move cooldown, oscillator freezing and the
	// per-round move cap. The zero value takes the package defaults.
	TEConfig = te.Config
	// TEMove is one decided migration: the pair re-pinned from one walk to
	// another.
	TEMove = te.Move
)

// WithTrafficEngineering enables the online TE loop with default tuning.
// Implies WithTelemetry — the optimizer's input is the telemetry view.
func WithTrafficEngineering() Option { return func(o *Options) { o.TE = true } }

// WithTEConfig enables TE with explicit optimizer tuning.
func WithTEConfig(cfg TEConfig) Option {
	return func(o *Options) { o.TE = true; o.TEConfig = cfg }
}

// WithTETimers enables TE and sets its cadence and link model: interval is
// the optimization round period (0 keeps 1s), capacityBPS the modeled
// capacity of every link in bytes/sec for utilization math (0 keeps 1 MiB/s).
func WithTETimers(interval time.Duration, capacityBPS float64) Option {
	return func(o *Options) {
		o.TE = true
		o.TEInterval = interval
		o.TELinkCapacityBPS = capacityBPS
	}
}

package routeflow

import (
	"time"

	"routeflow/internal/telemetry"
)

// Telemetry types (streaming per-flow and per-link statistics).
//
// With WithTelemetry enabled, every switch exports delta-encoded counter
// batches for the flows it has been elected to monitor, and the deployment
// aggregates them into rolling views. Monitoring placement is balanced in
// the Floware style: each host-pair flow is observed at exactly one switch
// on its path, chosen to equalize per-switch monitoring load, and the
// program is recomputed whenever the topology changes.
type (
	// TelemetryStats is the deployment-wide aggregated view: per-flow and
	// per-link totals and windowed rates, in deterministic order. Obtain one
	// from Deployment.TelemetrySnapshot; in a cluster it is the merge of
	// every live replica's shard-local view.
	TelemetryStats = telemetry.Snapshot
	// FlowStat is one monitored flow's view: identity, observation point,
	// path, totals and windowed rates.
	FlowStat = telemetry.FlowStat
	// LinkStat is one link's utilization view, summed over every monitored
	// flow whose path crosses it.
	LinkStat = telemetry.LinkStat
	// FlowPlacement records where one host-pair flow is monitored: its path
	// and the elected observer switch (Monitor < 0 and a nil Path mean the
	// pair is partitioned and honestly unmonitored). Obtain the current
	// program from Deployment.TelemetryPlacements.
	FlowPlacement = telemetry.Placement
	// LinkKey names an undirected link by its ordered endpoint node IDs.
	LinkKey = telemetry.LinkKey
)

// MakeLinkKey builds the canonical (ordered) key for the link between two
// nodes, for indexing TelemetryStats.Links.
func MakeLinkKey(a, b int) LinkKey { return telemetry.MakeLinkKey(a, b) }

// WithTelemetry enables the streaming telemetry pipeline: balanced flow
// monitoring placement across the deployment's host pairs, per-switch
// counter export over the control channel, and rolling per-flow / per-link
// views served by Deployment.TelemetrySnapshot.
//
// The export path adds two atomic counter updates to forwarding and
// allocates nothing per packet. Caveat: packets forwarded by a stateful
// offload engine (WithStatefulOffload) bypass the monitor counters — the
// same visibility trade real hardware offload makes — so combining the two
// undercounts offloaded flows.
func WithTelemetry() Option { return func(o *Options) { o.Telemetry = true } }

// WithTelemetryTimers enables telemetry and sets its cadence: interval is
// the switch export period (protocol time; 0 keeps the 500ms default), span
// the rolling-rate window length (0 keeps 5s).
func WithTelemetryTimers(interval, span time.Duration) Option {
	return func(o *Options) {
		o.Telemetry = true
		o.TelemetryInterval = interval
		o.TelemetrySpan = span
	}
}

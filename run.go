package routeflow

import (
	"fmt"
	"io"
	"time"
)

// RunSpec selects one experiment for Run. The interface is sealed: the
// variants are Fig3Run, MultiASRun, DemoRun and ScenarioRun.
type RunSpec interface{ runSpec() }

// Fig3Run regenerates the paper's Fig. 3 series: automatic vs. manual
// configuration time over a sweep of ring sizes.
type Fig3Run struct {
	// Sizes are the ring sizes to sweep (default the paper's 4..28 step 4).
	Sizes []int
}

// MultiASRun runs the inter-domain scaling experiment: cold-boot time to
// full eBGP/iBGP convergence over a ring of ring-shaped ASes.
type MultiASRun struct {
	// ASCounts are the AS counts to sweep (default 2, 3, 4).
	ASCounts []int
	// ASSize is the per-AS switch count (default 3).
	ASSize int
}

// DemoRun reproduces the paper's §3 demonstration: the pan-European
// topology boots cold while video streams across it.
type DemoRun struct {
	// Streams lists (server node, client node) pairs, all started at t=0.
	// Empty runs the paper's single Lisbon → Stockholm stream.
	Streams [][2]int
}

// ScenarioRun executes one chaos scenario. The spec is self-contained
// (topology, fault schedule, timing, cluster), so Run options that tune
// the experiment config do not apply to it.
type ScenarioRun struct {
	Spec ScenarioSpec
}

func (Fig3Run) runSpec()     {}
func (MultiASRun) runSpec()  {}
func (DemoRun) runSpec()     {}
func (ScenarioRun) runSpec() {}

// RunOption adjusts the experiment configuration a Run executes under.
type RunOption func(*ExperimentConfig)

// RunConfig replaces the whole experiment config — the migration path for
// callers that already build an ExperimentConfig literal.
func RunConfig(cfg ExperimentConfig) RunOption {
	return func(c *ExperimentConfig) { *c = cfg }
}

// RunTimeScale compresses protocol time factor× (default 50).
func RunTimeScale(factor float64) RunOption {
	return func(c *ExperimentConfig) { c.TimeScale = factor }
}

// RunBootDelay models VM creation time (default 2s).
func RunBootDelay(d time.Duration) RunOption {
	return func(c *ExperimentConfig) { c.BootDelay = d }
}

// RunTimers sets the routing daemons' protocol timers.
func RunTimers(t Timers) RunOption {
	return func(c *ExperimentConfig) { c.Timers = t }
}

// RunProbeInterval sets the LLDP probe period (default 1s).
func RunProbeInterval(d time.Duration) RunOption {
	return func(c *ExperimentConfig) { c.ProbeInterval = d }
}

// RunMerged runs the merged-controller ablation (no FlowVisor).
func RunMerged() RunOption {
	return func(c *ExperimentConfig) { c.NoFlowVisor = true }
}

// RunCluster runs the experiment on a distributed RF-controller.
func RunCluster(spec ClusterSpec) RunOption {
	return func(c *ExperimentConfig) { c.Cluster = spec }
}

// RunReplicas is the RunCluster shorthand for "n replicas, defaults".
func RunReplicas(n int) RunOption {
	return func(c *ExperimentConfig) { c.Cluster = ClusterSpec{Replicas: n} }
}

// RunRPCApplyDelay models serialized per-switch work in each replica's RPC
// apply path (what sharding divides).
func RunRPCApplyDelay(d time.Duration) RunOption {
	return func(c *ExperimentConfig) { c.RPCApplyDelay = d }
}

// RunReport is the outcome of Run: exactly one section is populated,
// matching the spec variant that was executed.
type RunReport struct {
	Fig3     []Fig3Row
	MultiAS  []MultiASRow
	Demo     *MultiStreamResult
	Scenario *ScenarioResult
}

// Print renders whichever section the executed spec produced.
func (r *RunReport) Print(w io.Writer) {
	switch {
	case r == nil:
	case r.Fig3 != nil:
		PrintFig3(w, r.Fig3)
	case r.MultiAS != nil:
		PrintMultiAS(w, r.MultiAS)
	case r.Demo != nil:
		printMultiStream(w, r.Demo)
	case r.Scenario != nil:
		PrintScenario(w, r.Scenario)
	}
}

func printMultiStream(w io.Writer, ms *MultiStreamResult) {
	fmt.Fprintf(w, "pan-European demo: %d switches, %d links, %d stream(s)\n",
		ms.Switches, ms.Links, len(ms.Streams))
	fmt.Fprintf(w, "  all switches configured (green):  %v\n", round(ms.Configured))
	fmt.Fprintf(w, "  OSPF fully converged:             %v\n", round(ms.Converged))
	fmt.Fprintf(w, "  every stream delivering:          %v (paper: ~4 min)\n", round(ms.AllVideo))
	for _, st := range ms.Streams {
		fmt.Fprintf(w, "  stream %d→%d: first frame %v, frames %d (gaps %d)\n",
			st.ServerNode, st.ClientNode, round(st.FirstVideo),
			st.VideoStats.Frames, st.VideoStats.Gaps)
	}
	fmt.Fprintf(w, "  manual configuration equivalent:  %v (paper: ~7 h)\n",
		DefaultManualModel().Total(ms.Switches))
}

// Run executes one experiment through the single dispatcher the CLIs and
// examples share: build the deployment, run the spec variant, tear down.
// It replaces direct calls to RunFig3, RunMultiASScaling,
// RunDemoMultiStream and RunScenario (all still exported).
func Run(spec RunSpec, opts ...RunOption) (*RunReport, error) {
	var cfg ExperimentConfig
	for _, o := range opts {
		o(&cfg)
	}
	switch s := spec.(type) {
	case Fig3Run:
		sizes := s.Sizes
		if len(sizes) == 0 {
			sizes = []int{4, 8, 12, 16, 20, 24, 28}
		}
		rows, err := RunFig3(sizes, cfg)
		return &RunReport{Fig3: rows}, err
	case MultiASRun:
		counts := s.ASCounts
		if len(counts) == 0 {
			counts = []int{2, 3, 4}
		}
		size := s.ASSize
		if size <= 0 {
			size = 3
		}
		rows, err := RunMultiASScaling(counts, size, cfg)
		return &RunReport{MultiAS: rows}, err
	case DemoRun:
		pairs := s.Streams
		if len(pairs) == 0 {
			g := PanEuropean()
			lisbon, _ := g.NodeByName("Lisbon")
			stockholm, _ := g.NodeByName("Stockholm")
			pairs = [][2]int{{lisbon.ID, stockholm.ID}}
		}
		ms, err := RunDemoMultiStream(cfg, pairs)
		return &RunReport{Demo: &ms}, err
	case ScenarioRun:
		res, err := RunScenario(s.Spec)
		return &RunReport{Scenario: res}, err
	case nil:
		return nil, fmt.Errorf("routeflow: Run needs a spec (Fig3Run, MultiASRun, DemoRun or ScenarioRun)")
	default:
		return nil, fmt.Errorf("routeflow: unknown run spec %T", spec)
	}
}

// ScenarioExitCode maps a scenario outcome to a process exit status: 1 on a
// harness error or any failed invariant check, 0 only when the run
// completed and every check held. rfchaos routes every verdict through it
// so an invariant violation can never exit 0.
func ScenarioExitCode(res *ScenarioResult, err error) int {
	if err != nil || res == nil || !res.AllOK() {
		return 1
	}
	return 0
}

package openflow

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"routeflow/internal/pkt"
)

// roundTrip marshals m, unmarshals the bytes and compares deeply.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%v: unmarshal: %v", m.MsgType(), err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(m)) {
		t.Fatalf("%v round trip:\n got %#v\nwant %#v", m.MsgType(), got, m)
	}
	return got
}

// normalize maps empty slices to nil so DeepEqual ignores that distinction.
func normalize(m Message) Message { return m }

func TestHelloRoundTrip(t *testing.T) {
	m := &Hello{}
	m.SetXID(7)
	got := roundTrip(t, m)
	if got.XID() != 7 {
		t.Fatalf("xid = %d", got.XID())
	}
	if len(Marshal(m)) != HeaderLen {
		t.Fatalf("hello length = %d", len(Marshal(m)))
	}
}

func TestErrorRoundTrip(t *testing.T) {
	m := &ErrorMsg{ErrType: ErrTypeFlowModFailed, Code: ErrCodeFlowModAllTablesFull,
		Data: []byte{1, 2, 3}}
	roundTrip(t, m)
	if m.Error() == "" {
		t.Fatal("Error() empty")
	}
}

func TestEchoRoundTrip(t *testing.T) {
	roundTrip(t, &EchoRequest{Data: []byte("probe")})
	roundTrip(t, &EchoReply{Data: []byte("probe")})
	roundTrip(t, &EchoRequest{}) // empty payload
}

func TestVendorRoundTrip(t *testing.T) {
	roundTrip(t, &Vendor{VendorID: 0x2320, Data: []byte("nicira")})
}

func TestFeaturesRoundTrip(t *testing.T) {
	roundTrip(t, &FeaturesRequest{})
	m := &FeaturesReply{
		DatapathID:   0x00000000deadbeef,
		NBuffers:     256,
		NTables:      2,
		Capabilities: CapFlowStats | CapPortStats,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: pkt.LocalMAC(0x101), Name: "eth1", State: 0},
			{PortNo: 2, HWAddr: pkt.LocalMAC(0x102), Name: "eth2", State: PortStateDown},
		},
	}
	got := roundTrip(t, m).(*FeaturesReply)
	if got.Ports[1].Name != "eth2" || got.Ports[1].State != PortStateDown {
		t.Fatalf("port round trip: %+v", got.Ports[1])
	}
}

func TestFeaturesReplyRejectsTrailingBytes(t *testing.T) {
	m := &FeaturesReply{DatapathID: 1}
	b := Marshal(m)
	b = append(b, 0xAA) // one stray byte after the ports array
	b[2] = byte(len(b) >> 8)
	b[3] = byte(len(b))
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	roundTrip(t, &GetConfigRequest{})
	roundTrip(t, &GetConfigReply{Flags: 1, MissSendLen: 128})
	roundTrip(t, &SetConfig{MissSendLen: 0xffff})
}

func TestPacketInRoundTrip(t *testing.T) {
	m := &PacketIn{BufferID: NoBuffer, TotalLen: 60, InPort: 3,
		Reason: PacketInReasonNoMatch, Data: []byte("frame-bytes")}
	roundTrip(t, m)
}

func TestPacketOutRoundTrip(t *testing.T) {
	m := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortNone,
		Actions: []Action{
			&ActionOutput{Port: 2, MaxLen: 0},
			&ActionSetDlDst{Addr: pkt.LocalMAC(9)},
		},
		Data: []byte("payload"),
	}
	got := roundTrip(t, m).(*PacketOut)
	if len(got.Actions) != 2 {
		t.Fatalf("actions = %d", len(got.Actions))
	}
	if out, ok := got.Actions[0].(*ActionOutput); !ok || out.Port != 2 {
		t.Fatalf("action 0 = %#v", got.Actions[0])
	}
}

func TestPacketOutNoActions(t *testing.T) {
	m := &PacketOut{BufferID: 42, InPort: 1}
	got := roundTrip(t, m).(*PacketOut)
	if got.BufferID != 42 || len(got.Actions) != 0 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	match := MatchAll()
	match.Wildcards &^= WildcardDlType
	match.DlType = uint16(pkt.EtherTypeIPv4)
	match.SetNwDstPrefix(netip.MustParsePrefix("10.1.2.0/24"))
	m := &FlowMod{
		Match:       match,
		Cookie:      0xc00c1e,
		Command:     FlowModAdd,
		IdleTimeout: 30,
		HardTimeout: 600,
		Priority:    0x8000,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions: []Action{
			&ActionSetDlSrc{Addr: pkt.LocalMAC(1)},
			&ActionSetDlDst{Addr: pkt.LocalMAC(2)},
			&ActionOutput{Port: 4},
		},
	}
	got := roundTrip(t, m).(*FlowMod)
	if got.Match.NwDstPrefix() != netip.MustParsePrefix("10.1.2.0/24") {
		t.Fatalf("prefix = %v", got.Match.NwDstPrefix())
	}
}

func TestAllActionsRoundTrip(t *testing.T) {
	actions := []Action{
		&ActionOutput{Port: PortController, MaxLen: 256},
		&ActionSetVlanVid{VlanVid: 100},
		&ActionSetVlanPcp{Pcp: 5},
		&ActionStripVlan{},
		&ActionSetDlSrc{Addr: pkt.LocalMAC(3)},
		&ActionSetDlDst{Addr: pkt.LocalMAC(4)},
		&ActionSetNwSrc{Addr: [4]byte{10, 0, 0, 1}},
		&ActionSetNwDst{Addr: [4]byte{10, 0, 0, 2}},
		&ActionSetNwTos{Tos: 0x10},
		&ActionSetTpSrc{Port: 5004},
		&ActionSetTpDst{Port: 5005},
		&ActionEnqueue{Port: 1, QueueID: 3},
		&ActionMultipath{Buckets: []MultipathBucket{
			{DlSrc: pkt.LocalMAC(5), DlDst: pkt.LocalMAC(6), Port: 2},
			{DlSrc: pkt.LocalMAC(5), DlDst: pkt.LocalMAC(7), Port: 3},
		}},
		&ActionVendor{Vendor: 0x1234, Data: []byte{1, 2, 3}}, // padded to 8n
	}
	m := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
		OutPort: PortNone, Actions: actions}
	// The vendor action's payload is zero-padded to an 8-byte multiple on
	// the wire, so compare piecewise rather than with the strict helper.
	decoded, err := Unmarshal(Marshal(m))
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.(*FlowMod)
	if len(got.Actions) != len(actions) {
		t.Fatalf("decoded %d actions, want %d", len(got.Actions), len(actions))
	}
	for i := range actions[:13] {
		if !reflect.DeepEqual(got.Actions[i], actions[i]) {
			t.Fatalf("action %d: got %#v want %#v", i, got.Actions[i], actions[i])
		}
	}
	v := got.Actions[13].(*ActionVendor)
	// Vendor data is zero-padded to an 8-byte multiple on the wire.
	if v.Vendor != 0x1234 || !bytes.Equal(v.Data[:3], []byte{1, 2, 3}) {
		t.Fatalf("vendor action = %#v", v)
	}
}

// TestActionMultipathWire pins the extension action's exact wire layout
// (8-byte header with bucket count, 16 bytes per bucket) and its decode
// robustness: a bucket count disagreeing with the action length is rejected,
// as is an empty bucket list.
func TestActionMultipathWire(t *testing.T) {
	a := &ActionMultipath{Buckets: []MultipathBucket{
		{DlSrc: pkt.MAC{1, 2, 3, 4, 5, 6}, DlDst: pkt.MAC{7, 8, 9, 10, 11, 12}, Port: 0x0203},
	}}
	wire := a.appendTo(nil)
	want := []byte{
		0, 12, 0, 24, // type=multipath, len=8+16
		0, 1, 0, 0, // 1 bucket, pad
		2, 3, // port
		1, 2, 3, 4, 5, 6, // dl_src
		7, 8, 9, 10, 11, 12, // dl_dst
		0, 0, // pad
	}
	if !bytes.Equal(wire, want) {
		t.Fatalf("wire = %x, want %x", wire, want)
	}
	// Per-flow stability: the same hash always picks the same bucket.
	two := &ActionMultipath{Buckets: []MultipathBucket{{Port: 1}, {Port: 2}}}
	if two.Bucket(4).Port != 1 || two.Bucket(5).Port != 2 {
		t.Fatalf("bucket selection: %v %v", two.Bucket(4), two.Bucket(5))
	}

	bad := append([]byte(nil), wire...)
	bad[5] = 2 // claims 2 buckets, body has 1
	if _, err := decodeActions(&rbuf{b: bad}, len(bad)); err == nil {
		t.Fatal("bucket-count mismatch accepted")
	}
	empty := []byte{0, 12, 0, 8, 0, 0, 0, 0}
	if _, err := decodeActions(&rbuf{b: empty}, len(empty)); err == nil {
		t.Fatal("empty bucket list accepted")
	}
}

func TestActionListRejectsBadLength(t *testing.T) {
	m := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
		OutPort: PortNone, Actions: []Action{&ActionOutput{Port: 1}}}
	b := Marshal(m)
	// Corrupt the action length field (offset: header 8 + match 40 + 24 + 2).
	b[HeaderLen+MatchLen+24+2] = 0
	b[HeaderLen+MatchLen+24+3] = 5 // not a multiple of 8
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("bad action length accepted")
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{Match: MatchAll(), Cookie: 9, Priority: 10,
		Reason: FlowRemovedIdleTimeout, DurationSec: 100, DurationNsec: 500,
		IdleTimeout: 30, PacketCount: 1234, ByteCount: 56789}
	roundTrip(t, m)
}

func TestPortStatusRoundTrip(t *testing.T) {
	m := &PortStatus{Reason: PortReasonDelete,
		Desc: PhyPort{PortNo: 7, HWAddr: pkt.LocalMAC(0x77), Name: "port-7"}}
	got := roundTrip(t, m).(*PortStatus)
	if got.Desc.PortNo != 7 || got.Desc.Name != "port-7" {
		t.Fatalf("desc = %+v", got.Desc)
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	roundTrip(t, &BarrierRequest{})
	roundTrip(t, &BarrierReply{})
}

func TestStatsDescRoundTrip(t *testing.T) {
	roundTrip(t, &StatsRequest{StatsType: StatsDesc})
	m := &StatsReply{StatsType: StatsDesc, Desc: &DescStats{
		Manufacturer: "routeflow-repro", Hardware: "netemu", Software: "ofswitch",
		SerialNumber: "0001", Datapath: "emulated datapath"}}
	got := roundTrip(t, m).(*StatsReply)
	if got.Desc.Manufacturer != "routeflow-repro" {
		t.Fatalf("desc = %+v", got.Desc)
	}
}

func TestStatsFlowRoundTrip(t *testing.T) {
	req := &StatsRequest{StatsType: StatsFlow,
		Flow: &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}}
	got := roundTrip(t, req).(*StatsRequest)
	if got.Flow == nil || got.Flow.TableID != 0xff {
		t.Fatalf("flow req = %+v", got.Flow)
	}
	rep := &StatsReply{StatsType: StatsFlow, Flows: []FlowStats{
		{TableID: 0, Match: MatchAll(), DurationSec: 5, Priority: 100,
			Cookie: 1, PacketCount: 10, ByteCount: 1000,
			Actions: []Action{&ActionOutput{Port: 1}}},
		{TableID: 0, Match: MatchAll(), Priority: 50},
	}}
	gotRep := roundTrip(t, rep).(*StatsReply)
	if len(gotRep.Flows) != 2 || gotRep.Flows[0].PacketCount != 10 {
		t.Fatalf("flows = %+v", gotRep.Flows)
	}
}

func TestStatsTableAndPortRoundTrip(t *testing.T) {
	roundTrip(t, &StatsReply{StatsType: StatsTable, Tables: []TableStats{
		{TableID: 0, Name: "classifier", Wildcards: WildcardAll,
			MaxEntries: 1 << 20, ActiveCount: 12, LookupCount: 100, MatchedCount: 90}}})
	roundTrip(t, &StatsRequest{StatsType: StatsPort, Port: &PortStatsRequest{PortNo: PortNone}})
	roundTrip(t, &StatsReply{StatsType: StatsPort, Ports: []PortStats{
		{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 300, TxBytes: 400},
		{PortNo: 2, Collisions: 7},
	}})
}

func TestRawPassThrough(t *testing.T) {
	// QueueGetConfig is not modeled: it must survive as Raw, byte for byte.
	wire := []byte{
		Version, uint8(TypeQueueGetConfigReq),
		0, 12, // length
		0, 0, 0, 99, // xid
		0, 5, // port
		0, 0, // pad
	}
	m, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := m.(*Raw)
	if !ok {
		t.Fatalf("got %T", m)
	}
	if raw.MsgType() != TypeQueueGetConfigReq || raw.XID() != 99 {
		t.Fatalf("raw = %+v", raw)
	}
	if !bytes.Equal(Marshal(raw), wire) {
		t.Fatal("raw re-encode differs")
	}
}

func TestUnmarshalRejects(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 0}); err == nil {
		t.Fatal("short buffer accepted")
	}
	m := Marshal(&Hello{})
	m[0] = 4 // OpenFlow 1.3 version
	if _, err := Unmarshal(m); err == nil {
		t.Fatal("wrong version accepted")
	}
	m = Marshal(&Hello{})
	m[3] = 200 // length > buffer
	if _, err := Unmarshal(m); err == nil {
		t.Fatal("overlong length accepted")
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("x")},
		&FeaturesRequest{},
		&BarrierRequest{},
	}
	for i, m := range msgs {
		m.SetXID(uint32(i + 1))
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.XID() != uint32(i+1) {
			t.Fatalf("message %d xid = %d", i, m.XID())
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	b := Marshal(&EchoRequest{Data: []byte("0123456789")})
	if _, err := ReadMessage(bytes.NewReader(b[:12])); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestMatchAllCoversEverything(t *testing.T) {
	m := MatchAll()
	keys := []Match{
		{},
		{InPort: 5, DlType: 0x0800, NwProto: 17},
		{DlSrc: pkt.LocalMAC(1), TpDst: 80},
	}
	for _, k := range keys {
		if !m.Covers(&k) {
			t.Fatalf("match-all does not cover %+v", k)
		}
	}
}

func TestMatchExactFields(t *testing.T) {
	m := MatchAll()
	m.Wildcards &^= WildcardInPort | WildcardDlType
	m.InPort, m.DlType = 3, 0x0800
	k := Match{InPort: 3, DlType: 0x0800}
	if !m.Covers(&k) {
		t.Fatal("exact match failed")
	}
	k.InPort = 4
	if m.Covers(&k) {
		t.Fatal("in_port mismatch covered")
	}
}

func TestMatchPrefixSemantics(t *testing.T) {
	m := MatchAll()
	m.SetNwDstPrefix(netip.MustParsePrefix("192.168.4.0/22"))
	in := Match{NwDst: [4]byte{192, 168, 7, 200}}
	out := Match{NwDst: [4]byte{192, 168, 8, 1}}
	if !m.Covers(&in) {
		t.Fatal("/22 should cover 192.168.7.200")
	}
	if m.Covers(&out) {
		t.Fatal("/22 should not cover 192.168.8.1")
	}
	if m.NwDstIgnoredBits() != 10 {
		t.Fatalf("ignored bits = %d", m.NwDstIgnoredBits())
	}
}

func TestMatchHostRoute(t *testing.T) {
	m := MatchAll()
	m.SetNwSrcPrefix(netip.MustParsePrefix("10.0.0.1/32"))
	hit := Match{NwSrc: [4]byte{10, 0, 0, 1}}
	miss := Match{NwSrc: [4]byte{10, 0, 0, 2}}
	if !m.Covers(&hit) || m.Covers(&miss) {
		t.Fatal("/32 semantics wrong")
	}
}

func TestMatchDefaultPrefixIsWildcard(t *testing.T) {
	// A /0 prefix must cover everything.
	m := MatchAll()
	m.SetNwDstPrefix(netip.MustParsePrefix("0.0.0.0/0"))
	k := Match{NwDst: [4]byte{203, 0, 113, 9}}
	if !m.Covers(&k) {
		t.Fatal("/0 did not cover arbitrary address")
	}
}

func TestExtractKeyIPv4UDP(t *testing.T) {
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Payload: (&pkt.UDP{SrcPort: 1000, DstPort: 2000}).Marshal(
			netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"))}
	f := &pkt.Frame{Dst: pkt.LocalMAC(2), Src: pkt.LocalMAC(1),
		Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	k, err := ExtractKey(7, f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if k.InPort != 7 || k.DlType != 0x0800 || k.NwProto != 17 ||
		k.TpSrc != 1000 || k.TpDst != 2000 {
		t.Fatalf("key = %+v", k)
	}
	if k.NwSrc != [4]byte{10, 0, 0, 1} {
		t.Fatalf("nw_src = %v", k.NwSrc)
	}
	if k.DlVlan != 0xffff {
		t.Fatalf("untagged dl_vlan = %#x, want 0xffff", k.DlVlan)
	}
}

func TestExtractKeyARP(t *testing.T) {
	a := pkt.NewARPRequest(pkt.LocalMAC(1), netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"))
	f := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: pkt.LocalMAC(1),
		Type: pkt.EtherTypeARP, Payload: a.Marshal()}
	k, err := ExtractKey(1, f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if k.DlType != 0x0806 || k.NwProto != uint8(pkt.ARPRequest) {
		t.Fatalf("arp key = %+v", k)
	}
}

func TestExtractKeyBadFrame(t *testing.T) {
	if _, err := ExtractKey(1, []byte{1, 2}); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

func TestMatchStringer(t *testing.T) {
	m := MatchAll()
	if m.String() != "match{*}" {
		t.Fatalf("all = %s", m.String())
	}
	m.Wildcards &^= WildcardInPort
	m.InPort = 9
	if got := m.String(); got != "match{in_port=9}" {
		t.Fatalf("got %s", got)
	}
}

func TestTypeString(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" {
		t.Fatal(TypeFlowMod.String())
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal(Type(99).String())
	}
}

// Property: any match produced from random field values survives an
// encode/decode cycle bit-exactly.
func TestMatchRoundTripQuick(t *testing.T) {
	prop := func(wc uint32, inPort uint16, dlSrc, dlDst [6]byte, vlan uint16,
		pcp uint8, dlType uint16, tos, proto uint8, nwSrc, nwDst [4]byte,
		tpSrc, tpDst uint16) bool {
		m := Match{Wildcards: wc & WildcardAll, InPort: inPort,
			DlSrc: pkt.MAC(dlSrc), DlDst: pkt.MAC(dlDst), DlVlan: vlan,
			DlVlanPcp: pcp, DlType: dlType, NwTos: tos, NwProto: proto,
			NwSrc: nwSrc, NwDst: nwDst, TpSrc: tpSrc, TpDst: tpDst}
		fm := &FlowMod{Match: m, Command: FlowModAdd, BufferID: NoBuffer, OutPort: PortNone}
		got, err := Unmarshal(Marshal(fm))
		if err != nil {
			return false
		}
		return got.(*FlowMod).Match == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PacketIn data of any size and content survives framing.
func TestPacketInRoundTripQuick(t *testing.T) {
	prop := func(buffer uint32, total uint16, inPort uint16, reason uint8, data []byte) bool {
		if len(data) > 40000 {
			data = data[:40000]
		}
		m := &PacketIn{BufferID: buffer, TotalLen: total, InPort: inPort,
			Reason: reason % 2, Data: data}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		g := got.(*PacketIn)
		return g.BufferID == buffer && g.TotalLen == total && g.InPort == inPort &&
			bytes.Equal(g.Data, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every prefix length 0..32 round-trips through the wildcard
// encoding and matches exactly the addresses inside the prefix.
func TestPrefixWildcardQuick(t *testing.T) {
	prop := func(addr [4]byte, bits uint8, probe [4]byte) bool {
		b := int(bits % 33)
		p := netip.PrefixFrom(netip.AddrFrom4(addr), b).Masked()
		m := MatchAll()
		m.SetNwDstPrefix(p)
		k := Match{NwDst: probe}
		want := p.Contains(netip.AddrFrom4(probe))
		return m.Covers(&k) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

package openflow

import (
	"net/netip"
	"testing"

	"routeflow/internal/pkt"
)

// Allocation budgets for the two hottest codec operations. These are CI
// gates, not benchmarks: a regression that re-introduces per-message garbage
// fails the test suite instead of only drifting a benchmark number.

func allocBudgetFlowMod() *FlowMod {
	m := MatchAll()
	m.Wildcards &^= WildcardDlType
	m.DlType = 0x0800
	m.SetNwDstPrefix(netip.MustParsePrefix("10.1.2.0/24"))
	return &FlowMod{
		Match: m, Command: FlowModAdd, Priority: 124,
		BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{
			&ActionSetDlSrc{Addr: pkt.LocalMAC(1)},
			&ActionSetDlDst{Addr: pkt.LocalMAC(2)},
			&ActionOutput{Port: 3},
		},
	}
}

// TestAppendToFlowModAllocBudget: encoding a representative flow-mod into a
// reused buffer — the batched write path — must stay at <=1 alloc/op (it is
// 0 once the buffer has grown).
func TestAppendToFlowModAllocBudget(t *testing.T) {
	fm := allocBudgetFlowMod()
	buf := fm.AppendTo(nil) // warm the buffer to working-set capacity
	if got := testing.AllocsPerRun(200, func() {
		buf = fm.AppendTo(buf[:0])
	}); got > 1 {
		t.Fatalf("AppendTo(FlowMod) = %.1f allocs/op, budget 1", got)
	}
}

// TestMarshalFlowModAllocBudget: the compatibility wrapper may allocate the
// result slice — and nothing else.
func TestMarshalFlowModAllocBudget(t *testing.T) {
	fm := allocBudgetFlowMod()
	if got := testing.AllocsPerRun(200, func() {
		_ = Marshal(fm)
	}); got > 1 {
		t.Fatalf("Marshal(FlowMod) = %.1f allocs/op, budget 1", got)
	}
}

// TestExtractKeyAllocBudget: dataplane classification of a UDP frame must
// stay at <=1 alloc/op (it is 0: all packet layers decode into stack
// values).
func TestExtractKeyAllocBudget(t *testing.T) {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.9.0.100")
	u := &pkt.UDP{SrcPort: 5004, DstPort: 5004, Payload: make([]byte, 1200)}
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: src, Dst: dst,
		Payload: u.Marshal(src, dst)}
	f := &pkt.Frame{Dst: pkt.LocalMAC(2), Src: pkt.LocalMAC(1),
		Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	frame := f.Marshal()

	if got := testing.AllocsPerRun(200, func() {
		if _, err := ExtractKey(1, frame); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Fatalf("ExtractKey = %.1f allocs/op, budget 1", got)
	}
}

// TestMessageWriterSteadyStateAllocBudget: appending a burst to a warmed
// MessageWriter must not allocate per message.
func TestMessageWriterSteadyStateAllocBudget(t *testing.T) {
	fm := allocBudgetFlowMod()
	w := &countingWriter{}
	mw := NewMessageWriter(w)
	for i := 0; i < 64; i++ { // grow the batch buffer to working-set size
		mw.Append(fm)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			mw.Append(fm)
		}
		mw.buf = mw.buf[:0] // discard instead of flushing; countingWriter would grow
	}); got > 1 {
		t.Fatalf("MessageWriter burst = %.1f allocs/op, budget 1", got)
	}
}

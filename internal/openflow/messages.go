package openflow

import (
	"encoding/binary"
	"fmt"

	"routeflow/internal/pkt"
)

// Hello opens version negotiation.
type Hello struct{ MsgXID }

// MsgType implements Message.
func (*Hello) MsgType() Type { return TypeHello }

// AppendTo implements Message.
func (m *Hello) AppendTo(b []byte) []byte { return appendMessage(b, m) }
func (*Hello) appendBody(b []byte) []byte { return b }
func (*Hello) decodeBody(r *rbuf) error   { r.rest(); return nil }

// Error type codes (ofp_error_type).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
	ErrTypePortModFailed uint16 = 4
	ErrTypeQueueOpFailed uint16 = 5
)

// Selected error codes.
const (
	ErrCodeBadRequestBadType    uint16 = 1 // OFPBRC_BAD_TYPE
	ErrCodeBadRequestBadStat    uint16 = 2 // OFPBRC_BAD_STAT
	ErrCodeBadRequestEperm      uint16 = 5 // OFPBRC_EPERM
	ErrCodeBadRequestBufUnknown uint16 = 8 // OFPBRC_BUFFER_UNKNOWN
	ErrCodeFlowModAllTablesFull uint16 = 0 // OFPFMFC_ALL_TABLES_FULL
	ErrCodeFlowModOverlap       uint16 = 1 // OFPFMFC_OVERLAP
	ErrCodeBadActionBadType     uint16 = 0 // OFPBAC_BAD_TYPE
	ErrCodeBadActionBadOutPort  uint16 = 4 // OFPBAC_BAD_OUT_PORT
)

// ErrorMsg reports a failure; Data carries (a prefix of) the offending
// request.
type ErrorMsg struct {
	MsgXID
	ErrType uint16
	Code    uint16
	Data    []byte
}

// MsgType implements Message.
func (*ErrorMsg) MsgType() Type { return TypeError }

// AppendTo implements Message.
func (m *ErrorMsg) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *ErrorMsg) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.ErrType)
	b = binary.BigEndian.AppendUint16(b, m.Code)
	return append(b, m.Data...)
}

func (m *ErrorMsg) decodeBody(r *rbuf) error {
	m.ErrType = r.u16()
	m.Code = r.u16()
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// Error lets an ErrorMsg be used as a Go error.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error type=%d code=%d", m.ErrType, m.Code)
}

// EchoRequest is the liveness probe; Data is echoed back.
type EchoRequest struct {
	MsgXID
	Data []byte
}

// MsgType implements Message.
func (*EchoRequest) MsgType() Type { return TypeEchoRequest }

// AppendTo implements Message.
func (m *EchoRequest) AppendTo(b []byte) []byte   { return appendMessage(b, m) }
func (m *EchoRequest) appendBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoRequest) decodeBody(r *rbuf) error {
	m.Data = append([]byte(nil), r.rest()...)
	return nil
}

// EchoReply answers an EchoRequest with the same data and XID.
type EchoReply struct {
	MsgXID
	Data []byte
}

// MsgType implements Message.
func (*EchoReply) MsgType() Type { return TypeEchoReply }

// AppendTo implements Message.
func (m *EchoReply) AppendTo(b []byte) []byte   { return appendMessage(b, m) }
func (m *EchoReply) appendBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoReply) decodeBody(r *rbuf) error {
	m.Data = append([]byte(nil), r.rest()...)
	return nil
}

// Vendor is an opaque vendor extension message.
type Vendor struct {
	MsgXID
	VendorID uint32
	Data     []byte
}

// MsgType implements Message.
func (*Vendor) MsgType() Type { return TypeVendor }

// AppendTo implements Message.
func (m *Vendor) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *Vendor) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.VendorID)
	return append(b, m.Data...)
}

func (m *Vendor) decodeBody(r *rbuf) error {
	m.VendorID = r.u32()
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// FeaturesRequest asks the datapath for its identity and port list.
type FeaturesRequest struct{ MsgXID }

// MsgType implements Message.
func (*FeaturesRequest) MsgType() Type { return TypeFeaturesRequest }

// AppendTo implements Message.
func (m *FeaturesRequest) AppendTo(b []byte) []byte { return appendMessage(b, m) }
func (*FeaturesRequest) appendBody(b []byte) []byte { return b }
func (*FeaturesRequest) decodeBody(r *rbuf) error   { r.rest(); return nil }

// Port config/state bits (subset).
const (
	PortConfigDown uint32 = 1 << 0 // OFPPC_PORT_DOWN
	PortStateDown  uint32 = 1 << 0 // OFPPS_LINK_DOWN
)

// PhyPortLen is the encoded size of ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one switch port.
type PhyPort struct {
	PortNo     uint16
	HWAddr     pkt.MAC
	Name       string // up to 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p *PhyPort) appendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.PortNo)
	b = append(b, p.HWAddr[:]...)
	b = fixedStr(b, p.Name, 16)
	b = binary.BigEndian.AppendUint32(b, p.Config)
	b = binary.BigEndian.AppendUint32(b, p.State)
	b = binary.BigEndian.AppendUint32(b, p.Curr)
	b = binary.BigEndian.AppendUint32(b, p.Advertised)
	b = binary.BigEndian.AppendUint32(b, p.Supported)
	return binary.BigEndian.AppendUint32(b, p.Peer)
}

func (p *PhyPort) decode(r *rbuf) {
	p.PortNo = r.u16()
	copy(p.HWAddr[:], r.take(6))
	p.Name = r.str(16)
	p.Config = r.u32()
	p.State = r.u32()
	p.Curr = r.u32()
	p.Advertised = r.u32()
	p.Supported = r.u32()
	p.Peer = r.u32()
}

// Capability bits (ofp_capabilities, subset).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
)

// FeaturesReply announces the datapath ID, resources and ports.
type FeaturesReply struct {
	MsgXID
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

// MsgType implements Message.
func (*FeaturesReply) MsgType() Type { return TypeFeaturesReply }

// AppendTo implements Message.
func (m *FeaturesReply) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *FeaturesReply) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.DatapathID)
	b = binary.BigEndian.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, 0, 0, 0)
	b = binary.BigEndian.AppendUint32(b, m.Capabilities)
	b = binary.BigEndian.AppendUint32(b, m.Actions)
	for i := range m.Ports {
		b = m.Ports[i].appendTo(b)
	}
	return b
}

func (m *FeaturesReply) decodeBody(r *rbuf) error {
	m.Ports = m.Ports[:0] // overwrite, not accumulate, when m is reused
	m.DatapathID = r.u64()
	m.NBuffers = r.u32()
	m.NTables = r.u8()
	r.skip(3)
	m.Capabilities = r.u32()
	m.Actions = r.u32()
	if r.err != nil {
		return r.err
	}
	if r.remaining()%PhyPortLen != 0 {
		return fmt.Errorf("features ports: %d trailing bytes", r.remaining()%PhyPortLen)
	}
	for r.remaining() >= PhyPortLen {
		var p PhyPort
		p.decode(r)
		m.Ports = append(m.Ports, p)
	}
	return r.err
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{ MsgXID }

// MsgType implements Message.
func (*GetConfigRequest) MsgType() Type { return TypeGetConfigRequest }

// AppendTo implements Message.
func (m *GetConfigRequest) AppendTo(b []byte) []byte { return appendMessage(b, m) }
func (*GetConfigRequest) appendBody(b []byte) []byte { return b }
func (*GetConfigRequest) decodeBody(r *rbuf) error   { r.rest(); return nil }

// GetConfigReply carries the switch configuration.
type GetConfigReply struct {
	MsgXID
	Flags       uint16
	MissSendLen uint16
}

// MsgType implements Message.
func (*GetConfigReply) MsgType() Type { return TypeGetConfigReply }

// AppendTo implements Message.
func (m *GetConfigReply) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *GetConfigReply) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return binary.BigEndian.AppendUint16(b, m.MissSendLen)
}

func (m *GetConfigReply) decodeBody(r *rbuf) error {
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

// SetConfig sets the switch configuration.
type SetConfig struct {
	MsgXID
	Flags       uint16
	MissSendLen uint16
}

// MsgType implements Message.
func (*SetConfig) MsgType() Type { return TypeSetConfig }

// AppendTo implements Message.
func (m *SetConfig) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *SetConfig) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return binary.BigEndian.AppendUint16(b, m.MissSendLen)
}

func (m *SetConfig) decodeBody(r *rbuf) error {
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

// Packet-in reasons.
const (
	PacketInReasonNoMatch uint8 = 0 // OFPR_NO_MATCH
	PacketInReasonAction  uint8 = 1 // OFPR_ACTION
)

// PacketIn delivers a packet to the controller.
type PacketIn struct {
	MsgXID
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// MsgType implements Message.
func (*PacketIn) MsgType() Type { return TypePacketIn }

// AppendTo implements Message.
func (m *PacketIn) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *PacketIn) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.TotalLen)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.Reason, 0)
	return append(b, m.Data...)
}

func (m *PacketIn) decodeBody(r *rbuf) error {
	m.BufferID = r.u32()
	m.TotalLen = r.u16()
	m.InPort = r.u16()
	m.Reason = r.u8()
	r.skip(1)
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// PacketOut injects a packet into the datapath.
type PacketOut struct {
	MsgXID
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte // ignored unless BufferID == NoBuffer
}

// MsgType implements Message.
func (*PacketOut) MsgType() Type { return TypePacketOut }

// AppendTo implements Message.
func (m *PacketOut) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *PacketOut) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	lenAt := len(b)
	b = append(b, 0, 0) // actions_len, patched below
	before := len(b)
	b = appendActions(b, m.Actions)
	binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-before))
	return append(b, m.Data...)
}

func (m *PacketOut) decodeBody(r *rbuf) error {
	m.BufferID = r.u32()
	m.InPort = r.u16()
	alen := int(r.u16())
	if r.err != nil {
		return r.err
	}
	actions, err := decodeActions(r, alen)
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// Flow-removed reasons.
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow expired or was deleted.
type FlowRemoved struct {
	MsgXID
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// MsgType implements Message.
func (*FlowRemoved) MsgType() Type { return TypeFlowRemoved }

// AppendTo implements Message.
func (m *FlowRemoved) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *FlowRemoved) appendBody(b []byte) []byte {
	b = m.Match.appendTo(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, 0)
	b = binary.BigEndian.AppendUint32(b, m.DurationSec)
	b = binary.BigEndian.AppendUint32(b, m.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint64(b, m.PacketCount)
	return binary.BigEndian.AppendUint64(b, m.ByteCount)
}

func (m *FlowRemoved) decodeBody(r *rbuf) error {
	m.Match.decode(r)
	m.Cookie = r.u64()
	m.Priority = r.u16()
	m.Reason = r.u8()
	r.skip(1)
	m.DurationSec = r.u32()
	m.DurationNsec = r.u32()
	m.IdleTimeout = r.u16()
	r.skip(2)
	m.PacketCount = r.u64()
	m.ByteCount = r.u64()
	return r.err
}

// Port-status reasons.
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	MsgXID
	Reason uint8
	Desc   PhyPort
}

// MsgType implements Message.
func (*PortStatus) MsgType() Type { return TypePortStatus }

// AppendTo implements Message.
func (m *PortStatus) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *PortStatus) appendBody(b []byte) []byte {
	b = append(b, m.Reason, 0, 0, 0, 0, 0, 0, 0)
	return m.Desc.appendTo(b)
}

func (m *PortStatus) decodeBody(r *rbuf) error {
	m.Reason = r.u8()
	r.skip(7)
	m.Desc.decode(r)
	return r.err
}

// BarrierRequest asks the switch to finish all preceding messages first.
type BarrierRequest struct{ MsgXID }

// MsgType implements Message.
func (*BarrierRequest) MsgType() Type { return TypeBarrierRequest }

// AppendTo implements Message.
func (m *BarrierRequest) AppendTo(b []byte) []byte { return appendMessage(b, m) }
func (*BarrierRequest) appendBody(b []byte) []byte { return b }
func (*BarrierRequest) decodeBody(r *rbuf) error   { r.rest(); return nil }

// BarrierReply confirms a BarrierRequest.
type BarrierReply struct{ MsgXID }

// MsgType implements Message.
func (*BarrierReply) MsgType() Type { return TypeBarrierReply }

// AppendTo implements Message.
func (m *BarrierReply) AppendTo(b []byte) []byte { return appendMessage(b, m) }
func (*BarrierReply) appendBody(b []byte) []byte { return b }
func (*BarrierReply) decodeBody(r *rbuf) error   { r.rest(); return nil }

// FlowMod commands.
const (
	FlowModAdd          uint16 = 0
	FlowModModify       uint16 = 1
	FlowModModifyStrict uint16 = 2
	FlowModDelete       uint16 = 3
	FlowModDeleteStrict uint16 = 4
)

// FlowMod flags.
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
)

// FlowMod adds, modifies or deletes flow-table entries.
type FlowMod struct {
	MsgXID
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16 // filter for DELETE*, PortNone = no filter
	Flags       uint16
	Actions     []Action
}

// MsgType implements Message.
func (*FlowMod) MsgType() Type { return TypeFlowMod }

// AppendTo implements Message.
func (m *FlowMod) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *FlowMod) appendBody(b []byte) []byte {
	b = m.Match.appendTo(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Command)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.OutPort)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return appendActions(b, m.Actions)
}

func (m *FlowMod) decodeBody(r *rbuf) error {
	m.Match.decode(r)
	m.Cookie = r.u64()
	m.Command = r.u16()
	m.IdleTimeout = r.u16()
	m.HardTimeout = r.u16()
	m.Priority = r.u16()
	m.BufferID = r.u32()
	m.OutPort = r.u16()
	m.Flags = r.u16()
	if r.err != nil {
		return r.err
	}
	actions, err := decodeActions(r, r.remaining())
	if err != nil {
		return err
	}
	m.Actions = actions
	return r.err
}

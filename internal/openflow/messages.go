package openflow

import (
	"fmt"

	"routeflow/internal/pkt"
)

// Hello opens version negotiation.
type Hello struct{ MsgXID }

// MsgType implements Message.
func (*Hello) MsgType() Type            { return TypeHello }
func (*Hello) encodeBody(*wbuf)         {}
func (*Hello) decodeBody(r *rbuf) error { r.rest(); return nil }

// Error type codes (ofp_error_type).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
	ErrTypePortModFailed uint16 = 4
	ErrTypeQueueOpFailed uint16 = 5
)

// Selected error codes.
const (
	ErrCodeBadRequestBadType    uint16 = 1 // OFPBRC_BAD_TYPE
	ErrCodeBadRequestBadStat    uint16 = 2 // OFPBRC_BAD_STAT
	ErrCodeBadRequestEperm      uint16 = 5 // OFPBRC_EPERM
	ErrCodeBadRequestBufUnknown uint16 = 8 // OFPBRC_BUFFER_UNKNOWN
	ErrCodeFlowModAllTablesFull uint16 = 0 // OFPFMFC_ALL_TABLES_FULL
	ErrCodeFlowModOverlap       uint16 = 1 // OFPFMFC_OVERLAP
	ErrCodeBadActionBadType     uint16 = 0 // OFPBAC_BAD_TYPE
	ErrCodeBadActionBadOutPort  uint16 = 4 // OFPBAC_BAD_OUT_PORT
)

// ErrorMsg reports a failure; Data carries (a prefix of) the offending
// request.
type ErrorMsg struct {
	MsgXID
	ErrType uint16
	Code    uint16
	Data    []byte
}

// MsgType implements Message.
func (*ErrorMsg) MsgType() Type { return TypeError }

func (m *ErrorMsg) encodeBody(w *wbuf) {
	w.u16(m.ErrType)
	w.u16(m.Code)
	w.bytes(m.Data)
}

func (m *ErrorMsg) decodeBody(r *rbuf) error {
	m.ErrType = r.u16()
	m.Code = r.u16()
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// Error lets an ErrorMsg be used as a Go error.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error type=%d code=%d", m.ErrType, m.Code)
}

// EchoRequest is the liveness probe; Data is echoed back.
type EchoRequest struct {
	MsgXID
	Data []byte
}

// MsgType implements Message.
func (*EchoRequest) MsgType() Type { return TypeEchoRequest }

func (m *EchoRequest) encodeBody(w *wbuf) { w.bytes(m.Data) }
func (m *EchoRequest) decodeBody(r *rbuf) error {
	m.Data = append([]byte(nil), r.rest()...)
	return nil
}

// EchoReply answers an EchoRequest with the same data and XID.
type EchoReply struct {
	MsgXID
	Data []byte
}

// MsgType implements Message.
func (*EchoReply) MsgType() Type { return TypeEchoReply }

func (m *EchoReply) encodeBody(w *wbuf) { w.bytes(m.Data) }
func (m *EchoReply) decodeBody(r *rbuf) error {
	m.Data = append([]byte(nil), r.rest()...)
	return nil
}

// Vendor is an opaque vendor extension message.
type Vendor struct {
	MsgXID
	VendorID uint32
	Data     []byte
}

// MsgType implements Message.
func (*Vendor) MsgType() Type { return TypeVendor }

func (m *Vendor) encodeBody(w *wbuf) {
	w.u32(m.VendorID)
	w.bytes(m.Data)
}

func (m *Vendor) decodeBody(r *rbuf) error {
	m.VendorID = r.u32()
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// FeaturesRequest asks the datapath for its identity and port list.
type FeaturesRequest struct{ MsgXID }

// MsgType implements Message.
func (*FeaturesRequest) MsgType() Type            { return TypeFeaturesRequest }
func (*FeaturesRequest) encodeBody(*wbuf)         {}
func (*FeaturesRequest) decodeBody(r *rbuf) error { r.rest(); return nil }

// Port config/state bits (subset).
const (
	PortConfigDown uint32 = 1 << 0 // OFPPC_PORT_DOWN
	PortStateDown  uint32 = 1 << 0 // OFPPS_LINK_DOWN
)

// PhyPortLen is the encoded size of ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one switch port.
type PhyPort struct {
	PortNo     uint16
	HWAddr     pkt.MAC
	Name       string // up to 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p *PhyPort) encode(w *wbuf) {
	w.u16(p.PortNo)
	w.bytes(p.HWAddr[:])
	w.str(p.Name, 16)
	w.u32(p.Config)
	w.u32(p.State)
	w.u32(p.Curr)
	w.u32(p.Advertised)
	w.u32(p.Supported)
	w.u32(p.Peer)
}

func (p *PhyPort) decode(r *rbuf) {
	p.PortNo = r.u16()
	copy(p.HWAddr[:], r.take(6))
	p.Name = r.str(16)
	p.Config = r.u32()
	p.State = r.u32()
	p.Curr = r.u32()
	p.Advertised = r.u32()
	p.Supported = r.u32()
	p.Peer = r.u32()
}

// Capability bits (ofp_capabilities, subset).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
)

// FeaturesReply announces the datapath ID, resources and ports.
type FeaturesReply struct {
	MsgXID
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

// MsgType implements Message.
func (*FeaturesReply) MsgType() Type { return TypeFeaturesReply }

func (m *FeaturesReply) encodeBody(w *wbuf) {
	w.u64(m.DatapathID)
	w.u32(m.NBuffers)
	w.u8(m.NTables)
	w.pad(3)
	w.u32(m.Capabilities)
	w.u32(m.Actions)
	for i := range m.Ports {
		m.Ports[i].encode(w)
	}
}

func (m *FeaturesReply) decodeBody(r *rbuf) error {
	m.DatapathID = r.u64()
	m.NBuffers = r.u32()
	m.NTables = r.u8()
	r.skip(3)
	m.Capabilities = r.u32()
	m.Actions = r.u32()
	if r.err != nil {
		return r.err
	}
	if r.remaining()%PhyPortLen != 0 {
		return fmt.Errorf("features ports: %d trailing bytes", r.remaining()%PhyPortLen)
	}
	for r.remaining() >= PhyPortLen {
		var p PhyPort
		p.decode(r)
		m.Ports = append(m.Ports, p)
	}
	return r.err
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{ MsgXID }

// MsgType implements Message.
func (*GetConfigRequest) MsgType() Type            { return TypeGetConfigRequest }
func (*GetConfigRequest) encodeBody(*wbuf)         {}
func (*GetConfigRequest) decodeBody(r *rbuf) error { r.rest(); return nil }

// GetConfigReply carries the switch configuration.
type GetConfigReply struct {
	MsgXID
	Flags       uint16
	MissSendLen uint16
}

// MsgType implements Message.
func (*GetConfigReply) MsgType() Type { return TypeGetConfigReply }

func (m *GetConfigReply) encodeBody(w *wbuf) {
	w.u16(m.Flags)
	w.u16(m.MissSendLen)
}

func (m *GetConfigReply) decodeBody(r *rbuf) error {
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

// SetConfig sets the switch configuration.
type SetConfig struct {
	MsgXID
	Flags       uint16
	MissSendLen uint16
}

// MsgType implements Message.
func (*SetConfig) MsgType() Type { return TypeSetConfig }

func (m *SetConfig) encodeBody(w *wbuf) {
	w.u16(m.Flags)
	w.u16(m.MissSendLen)
}

func (m *SetConfig) decodeBody(r *rbuf) error {
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

// Packet-in reasons.
const (
	PacketInReasonNoMatch uint8 = 0 // OFPR_NO_MATCH
	PacketInReasonAction  uint8 = 1 // OFPR_ACTION
)

// PacketIn delivers a packet to the controller.
type PacketIn struct {
	MsgXID
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// MsgType implements Message.
func (*PacketIn) MsgType() Type { return TypePacketIn }

func (m *PacketIn) encodeBody(w *wbuf) {
	w.u32(m.BufferID)
	w.u16(m.TotalLen)
	w.u16(m.InPort)
	w.u8(m.Reason)
	w.pad(1)
	w.bytes(m.Data)
}

func (m *PacketIn) decodeBody(r *rbuf) error {
	m.BufferID = r.u32()
	m.TotalLen = r.u16()
	m.InPort = r.u16()
	m.Reason = r.u8()
	r.skip(1)
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// PacketOut injects a packet into the datapath.
type PacketOut struct {
	MsgXID
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte // ignored unless BufferID == NoBuffer
}

// MsgType implements Message.
func (*PacketOut) MsgType() Type { return TypePacketOut }

func (m *PacketOut) encodeBody(w *wbuf) {
	w.u32(m.BufferID)
	w.u16(m.InPort)
	lenAt := len(w.b)
	w.u16(0) // actions_len, patched
	before := len(w.b)
	encodeActions(w, m.Actions)
	actionsLen := len(w.b) - before
	w.b[lenAt] = byte(actionsLen >> 8)
	w.b[lenAt+1] = byte(actionsLen)
	w.bytes(m.Data)
}

func (m *PacketOut) decodeBody(r *rbuf) error {
	m.BufferID = r.u32()
	m.InPort = r.u16()
	alen := int(r.u16())
	if r.err != nil {
		return r.err
	}
	actions, err := decodeActions(r, alen)
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = append([]byte(nil), r.rest()...)
	return r.err
}

// Flow-removed reasons.
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow expired or was deleted.
type FlowRemoved struct {
	MsgXID
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// MsgType implements Message.
func (*FlowRemoved) MsgType() Type { return TypeFlowRemoved }

func (m *FlowRemoved) encodeBody(w *wbuf) {
	m.Match.encode(w)
	w.u64(m.Cookie)
	w.u16(m.Priority)
	w.u8(m.Reason)
	w.pad(1)
	w.u32(m.DurationSec)
	w.u32(m.DurationNsec)
	w.u16(m.IdleTimeout)
	w.pad(2)
	w.u64(m.PacketCount)
	w.u64(m.ByteCount)
}

func (m *FlowRemoved) decodeBody(r *rbuf) error {
	m.Match.decode(r)
	m.Cookie = r.u64()
	m.Priority = r.u16()
	m.Reason = r.u8()
	r.skip(1)
	m.DurationSec = r.u32()
	m.DurationNsec = r.u32()
	m.IdleTimeout = r.u16()
	r.skip(2)
	m.PacketCount = r.u64()
	m.ByteCount = r.u64()
	return r.err
}

// Port-status reasons.
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	MsgXID
	Reason uint8
	Desc   PhyPort
}

// MsgType implements Message.
func (*PortStatus) MsgType() Type { return TypePortStatus }

func (m *PortStatus) encodeBody(w *wbuf) {
	w.u8(m.Reason)
	w.pad(7)
	m.Desc.encode(w)
}

func (m *PortStatus) decodeBody(r *rbuf) error {
	m.Reason = r.u8()
	r.skip(7)
	m.Desc.decode(r)
	return r.err
}

// BarrierRequest asks the switch to finish all preceding messages first.
type BarrierRequest struct{ MsgXID }

// MsgType implements Message.
func (*BarrierRequest) MsgType() Type            { return TypeBarrierRequest }
func (*BarrierRequest) encodeBody(*wbuf)         {}
func (*BarrierRequest) decodeBody(r *rbuf) error { r.rest(); return nil }

// BarrierReply confirms a BarrierRequest.
type BarrierReply struct{ MsgXID }

// MsgType implements Message.
func (*BarrierReply) MsgType() Type            { return TypeBarrierReply }
func (*BarrierReply) encodeBody(*wbuf)         {}
func (*BarrierReply) decodeBody(r *rbuf) error { r.rest(); return nil }

// FlowMod commands.
const (
	FlowModAdd          uint16 = 0
	FlowModModify       uint16 = 1
	FlowModModifyStrict uint16 = 2
	FlowModDelete       uint16 = 3
	FlowModDeleteStrict uint16 = 4
)

// FlowMod flags.
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
)

// FlowMod adds, modifies or deletes flow-table entries.
type FlowMod struct {
	MsgXID
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16 // filter for DELETE*, PortNone = no filter
	Flags       uint16
	Actions     []Action
}

// MsgType implements Message.
func (*FlowMod) MsgType() Type { return TypeFlowMod }

func (m *FlowMod) encodeBody(w *wbuf) {
	m.Match.encode(w)
	w.u64(m.Cookie)
	w.u16(m.Command)
	w.u16(m.IdleTimeout)
	w.u16(m.HardTimeout)
	w.u16(m.Priority)
	w.u32(m.BufferID)
	w.u16(m.OutPort)
	w.u16(m.Flags)
	encodeActions(w, m.Actions)
}

func (m *FlowMod) decodeBody(r *rbuf) error {
	m.Match.decode(r)
	m.Cookie = r.u64()
	m.Command = r.u16()
	m.IdleTimeout = r.u16()
	m.HardTimeout = r.u16()
	m.Priority = r.u16()
	m.BufferID = r.u32()
	m.OutPort = r.u16()
	m.Flags = r.u16()
	if r.err != nil {
		return r.err
	}
	actions, err := decodeActions(r, r.remaining())
	if err != nil {
		return err
	}
	m.Actions = actions
	return r.err
}

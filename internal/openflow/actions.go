package openflow

import (
	"encoding/binary"
	"fmt"

	"routeflow/internal/pkt"
)

// Action type codes (ofp_action_type).
const (
	ActionTypeOutput     uint16 = 0
	ActionTypeSetVlanVid uint16 = 1
	ActionTypeSetVlanPcp uint16 = 2
	ActionTypeStripVlan  uint16 = 3
	ActionTypeSetDlSrc   uint16 = 4
	ActionTypeSetDlDst   uint16 = 5
	ActionTypeSetNwSrc   uint16 = 6
	ActionTypeSetNwDst   uint16 = 7
	ActionTypeSetNwTos   uint16 = 8
	ActionTypeSetTpSrc   uint16 = 9
	ActionTypeSetTpDst   uint16 = 10
	ActionTypeEnqueue    uint16 = 11
	// ActionTypeMultipath is a routeflow extension (like the telemetry
	// message family): one action carrying the equal-cost bucket set of an
	// ECMP route, selected per microflow by key hash. OpenFlow 1.0 has no
	// group table; this is OF1.1 select-group semantics folded into a single
	// action so ECMP flow entries still travel over the 1.0 codec.
	ActionTypeMultipath uint16 = 12
	ActionTypeVendor    uint16 = 0xffff
)

// Action is one entry of a flow-mod or packet-out action list.
type Action interface {
	ActionType() uint16
	appendTo(b []byte) []byte
}

// appendActionHeader appends the common ofp_action_header (type, length).
func appendActionHeader(b []byte, t, length uint16) []byte {
	b = binary.BigEndian.AppendUint16(b, t)
	return binary.BigEndian.AppendUint16(b, length)
}

// ActionOutput forwards the packet to a port; for PortController, MaxLen
// bounds the bytes sent to the controller.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

// ActionType implements Action.
func (a *ActionOutput) ActionType() uint16 { return ActionTypeOutput }

func (a *ActionOutput) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeOutput, 8)
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return binary.BigEndian.AppendUint16(b, a.MaxLen)
}

// ActionSetVlanVid rewrites the VLAN ID (adding a tag if absent).
type ActionSetVlanVid struct{ VlanVid uint16 }

// ActionType implements Action.
func (a *ActionSetVlanVid) ActionType() uint16 { return ActionTypeSetVlanVid }

func (a *ActionSetVlanVid) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetVlanVid, 8)
	b = binary.BigEndian.AppendUint16(b, a.VlanVid)
	return append(b, 0, 0)
}

// ActionSetVlanPcp rewrites the VLAN priority.
type ActionSetVlanPcp struct{ Pcp uint8 }

// ActionType implements Action.
func (a *ActionSetVlanPcp) ActionType() uint16 { return ActionTypeSetVlanPcp }

func (a *ActionSetVlanPcp) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetVlanPcp, 8)
	return append(b, a.Pcp, 0, 0, 0)
}

// ActionStripVlan removes the 802.1Q tag.
type ActionStripVlan struct{}

// ActionType implements Action.
func (a *ActionStripVlan) ActionType() uint16 { return ActionTypeStripVlan }

func (a *ActionStripVlan) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeStripVlan, 8)
	return append(b, 0, 0, 0, 0)
}

// ActionSetDlSrc rewrites the source MAC.
type ActionSetDlSrc struct{ Addr pkt.MAC }

// ActionType implements Action.
func (a *ActionSetDlSrc) ActionType() uint16 { return ActionTypeSetDlSrc }

func (a *ActionSetDlSrc) appendTo(b []byte) []byte {
	return appendDlAddr(b, ActionTypeSetDlSrc, a.Addr)
}

// ActionSetDlDst rewrites the destination MAC.
type ActionSetDlDst struct{ Addr pkt.MAC }

// ActionType implements Action.
func (a *ActionSetDlDst) ActionType() uint16 { return ActionTypeSetDlDst }

func (a *ActionSetDlDst) appendTo(b []byte) []byte {
	return appendDlAddr(b, ActionTypeSetDlDst, a.Addr)
}

func appendDlAddr(b []byte, t uint16, addr pkt.MAC) []byte {
	b = appendActionHeader(b, t, 16)
	b = append(b, addr[:]...)
	return append(b, 0, 0, 0, 0, 0, 0)
}

// ActionSetNwSrc rewrites the IPv4 source address.
type ActionSetNwSrc struct{ Addr [4]byte }

// ActionType implements Action.
func (a *ActionSetNwSrc) ActionType() uint16 { return ActionTypeSetNwSrc }

func (a *ActionSetNwSrc) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetNwSrc, 8)
	return append(b, a.Addr[:]...)
}

// ActionSetNwDst rewrites the IPv4 destination address.
type ActionSetNwDst struct{ Addr [4]byte }

// ActionType implements Action.
func (a *ActionSetNwDst) ActionType() uint16 { return ActionTypeSetNwDst }

func (a *ActionSetNwDst) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetNwDst, 8)
	return append(b, a.Addr[:]...)
}

// ActionSetNwTos rewrites the IP TOS byte.
type ActionSetNwTos struct{ Tos uint8 }

// ActionType implements Action.
func (a *ActionSetNwTos) ActionType() uint16 { return ActionTypeSetNwTos }

func (a *ActionSetNwTos) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetNwTos, 8)
	return append(b, a.Tos, 0, 0, 0)
}

// ActionSetTpSrc rewrites the transport source port.
type ActionSetTpSrc struct{ Port uint16 }

// ActionType implements Action.
func (a *ActionSetTpSrc) ActionType() uint16 { return ActionTypeSetTpSrc }

func (a *ActionSetTpSrc) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetTpSrc, 8)
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return append(b, 0, 0)
}

// ActionSetTpDst rewrites the transport destination port.
type ActionSetTpDst struct{ Port uint16 }

// ActionType implements Action.
func (a *ActionSetTpDst) ActionType() uint16 { return ActionTypeSetTpDst }

func (a *ActionSetTpDst) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeSetTpDst, 8)
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return append(b, 0, 0)
}

// ActionEnqueue forwards through a port queue.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// ActionType implements Action.
func (a *ActionEnqueue) ActionType() uint16 { return ActionTypeEnqueue }

func (a *ActionEnqueue) appendTo(b []byte) []byte {
	b = appendActionHeader(b, ActionTypeEnqueue, 16)
	b = binary.BigEndian.AppendUint16(b, a.Port)
	b = append(b, 0, 0, 0, 0, 0, 0)
	return binary.BigEndian.AppendUint32(b, a.QueueID)
}

// MultipathBucket is one equal-cost way out of a switch: the L2 rewrites and
// output port of a single next hop.
type MultipathBucket struct {
	DlSrc, DlDst pkt.MAC
	Port         uint16
}

// ActionMultipath forwards the packet out one of several equal-cost buckets,
// selected by hashing the packet's exact-match key — so every packet of one
// microflow takes the same bucket (no reordering) while distinct flows spread
// across all of them. The switch resolves the bucket at classify time and
// caches the concrete rewrites+output, keeping the per-packet path exact.
//
// Buckets must be non-empty and is ordered (by next-hop address, as the RIB
// orders equal-cost sets): selection is Buckets[hash % len], a pure function
// of (key, bucket list) that is stable across cache invalidations and
// identical on every replica.
type ActionMultipath struct {
	Buckets []MultipathBucket
}

// ActionType implements Action.
func (a *ActionMultipath) ActionType() uint16 { return ActionTypeMultipath }

// Bucket returns the bucket a key hash selects. It panics on an empty bucket
// list, which encoding rejects anyway.
func (a *ActionMultipath) Bucket(hash uint64) MultipathBucket {
	return a.Buckets[hash%uint64(len(a.Buckets))]
}

func (a *ActionMultipath) appendTo(b []byte) []byte {
	// Header (type, len, nbuckets, pad) then 16 bytes per bucket
	// (port, dl_src, dl_dst, pad) — 8-byte aligned throughout.
	b = appendActionHeader(b, ActionTypeMultipath, uint16(8+16*len(a.Buckets)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(a.Buckets)))
	b = append(b, 0, 0)
	for _, bk := range a.Buckets {
		b = binary.BigEndian.AppendUint16(b, bk.Port)
		b = append(b, bk.DlSrc[:]...)
		b = append(b, bk.DlDst[:]...)
		b = append(b, 0, 0)
	}
	return b
}

// ActionVendor is an opaque vendor action.
type ActionVendor struct {
	Vendor uint32
	Data   []byte
}

// ActionType implements Action.
func (a *ActionVendor) ActionType() uint16 { return ActionTypeVendor }

func (a *ActionVendor) appendTo(b []byte) []byte {
	n := 8 + len(a.Data)
	if p := (8 - n%8) % 8; p != 0 {
		n += p
	}
	b = appendActionHeader(b, ActionTypeVendor, uint16(n))
	b = binary.BigEndian.AppendUint32(b, a.Vendor)
	b = append(b, a.Data...)
	return pad(b, n-8-len(a.Data))
}

// CloneActions deep-copies an action list. Snapshot consumers (stats
// replies, the GUI) hold their copy while the live list keeps being
// replaced by flow-mods; sharing the underlying Action values would let a
// reader observe a concurrent mutation.
func CloneActions(actions []Action) []Action {
	if actions == nil {
		return nil
	}
	out := make([]Action, len(actions))
	for i, a := range actions {
		switch act := a.(type) {
		case *ActionOutput:
			cp := *act
			out[i] = &cp
		case *ActionSetVlanVid:
			cp := *act
			out[i] = &cp
		case *ActionSetVlanPcp:
			cp := *act
			out[i] = &cp
		case *ActionStripVlan:
			cp := *act
			out[i] = &cp
		case *ActionSetDlSrc:
			cp := *act
			out[i] = &cp
		case *ActionSetDlDst:
			cp := *act
			out[i] = &cp
		case *ActionSetNwSrc:
			cp := *act
			out[i] = &cp
		case *ActionSetNwDst:
			cp := *act
			out[i] = &cp
		case *ActionSetNwTos:
			cp := *act
			out[i] = &cp
		case *ActionSetTpSrc:
			cp := *act
			out[i] = &cp
		case *ActionSetTpDst:
			cp := *act
			out[i] = &cp
		case *ActionEnqueue:
			cp := *act
			out[i] = &cp
		case *ActionMultipath:
			cp := *act
			cp.Buckets = append([]MultipathBucket(nil), act.Buckets...)
			out[i] = &cp
		case *ActionVendor:
			cp := *act
			cp.Data = append([]byte(nil), act.Data...)
			out[i] = &cp
		default:
			out[i] = a
		}
	}
	return out
}

func appendActions(b []byte, actions []Action) []byte {
	for _, a := range actions {
		b = a.appendTo(b)
	}
	return b
}

func decodeActions(r *rbuf, length int) ([]Action, error) {
	if length < 0 || length > r.remaining() {
		return nil, fmt.Errorf("action list length %d of %d", length, r.remaining())
	}
	sub := rbuf{b: r.take(length)}
	var out []Action
	for sub.remaining() > 0 {
		if sub.remaining() < 4 {
			return nil, fmt.Errorf("trailing %d bytes in action list", sub.remaining())
		}
		t := sub.u16()
		alen := int(sub.u16())
		if alen < 8 || alen%8 != 0 {
			return nil, fmt.Errorf("action type %d has invalid length %d", t, alen)
		}
		body := rbuf{b: sub.take(alen - 4)}
		if sub.err != nil {
			return nil, sub.err
		}
		a, err := decodeOneAction(t, &body)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func decodeOneAction(t uint16, r *rbuf) (Action, error) {
	switch t {
	case ActionTypeOutput:
		return &ActionOutput{Port: r.u16(), MaxLen: r.u16()}, r.err
	case ActionTypeSetVlanVid:
		return &ActionSetVlanVid{VlanVid: r.u16()}, r.err
	case ActionTypeSetVlanPcp:
		return &ActionSetVlanPcp{Pcp: r.u8()}, r.err
	case ActionTypeStripVlan:
		return &ActionStripVlan{}, r.err
	case ActionTypeSetDlSrc:
		var a ActionSetDlSrc
		copy(a.Addr[:], r.take(6))
		return &a, r.err
	case ActionTypeSetDlDst:
		var a ActionSetDlDst
		copy(a.Addr[:], r.take(6))
		return &a, r.err
	case ActionTypeSetNwSrc:
		var a ActionSetNwSrc
		copy(a.Addr[:], r.take(4))
		return &a, r.err
	case ActionTypeSetNwDst:
		var a ActionSetNwDst
		copy(a.Addr[:], r.take(4))
		return &a, r.err
	case ActionTypeSetNwTos:
		return &ActionSetNwTos{Tos: r.u8()}, r.err
	case ActionTypeSetTpSrc:
		return &ActionSetTpSrc{Port: r.u16()}, r.err
	case ActionTypeSetTpDst:
		return &ActionSetTpDst{Port: r.u16()}, r.err
	case ActionTypeEnqueue:
		a := &ActionEnqueue{Port: r.u16()}
		r.skip(6)
		a.QueueID = r.u32()
		return a, r.err
	case ActionTypeMultipath:
		n := int(r.u16())
		r.skip(2)
		if r.err != nil {
			return nil, r.err
		}
		if n == 0 || r.remaining() != 16*n {
			return nil, fmt.Errorf("multipath action: %d buckets in %d body bytes", n, r.remaining())
		}
		a := &ActionMultipath{Buckets: make([]MultipathBucket, n)}
		for i := range a.Buckets {
			a.Buckets[i].Port = r.u16()
			copy(a.Buckets[i].DlSrc[:], r.take(6))
			copy(a.Buckets[i].DlDst[:], r.take(6))
			r.skip(2)
		}
		return a, r.err
	case ActionTypeVendor:
		a := &ActionVendor{Vendor: r.u32()}
		a.Data = append([]byte(nil), r.rest()...)
		return a, r.err
	default:
		return nil, fmt.Errorf("unknown action type %d", t)
	}
}

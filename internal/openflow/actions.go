package openflow

import (
	"fmt"

	"routeflow/internal/pkt"
)

// Action type codes (ofp_action_type).
const (
	ActionTypeOutput     uint16 = 0
	ActionTypeSetVlanVid uint16 = 1
	ActionTypeSetVlanPcp uint16 = 2
	ActionTypeStripVlan  uint16 = 3
	ActionTypeSetDlSrc   uint16 = 4
	ActionTypeSetDlDst   uint16 = 5
	ActionTypeSetNwSrc   uint16 = 6
	ActionTypeSetNwDst   uint16 = 7
	ActionTypeSetNwTos   uint16 = 8
	ActionTypeSetTpSrc   uint16 = 9
	ActionTypeSetTpDst   uint16 = 10
	ActionTypeEnqueue    uint16 = 11
	ActionTypeVendor     uint16 = 0xffff
)

// Action is one entry of a flow-mod or packet-out action list.
type Action interface {
	ActionType() uint16
	encode(w *wbuf)
}

// ActionOutput forwards the packet to a port; for PortController, MaxLen
// bounds the bytes sent to the controller.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

// ActionType implements Action.
func (a *ActionOutput) ActionType() uint16 { return ActionTypeOutput }

func (a *ActionOutput) encode(w *wbuf) {
	w.u16(ActionTypeOutput)
	w.u16(8)
	w.u16(a.Port)
	w.u16(a.MaxLen)
}

// ActionSetVlanVid rewrites the VLAN ID (adding a tag if absent).
type ActionSetVlanVid struct{ VlanVid uint16 }

// ActionType implements Action.
func (a *ActionSetVlanVid) ActionType() uint16 { return ActionTypeSetVlanVid }

func (a *ActionSetVlanVid) encode(w *wbuf) {
	w.u16(ActionTypeSetVlanVid)
	w.u16(8)
	w.u16(a.VlanVid)
	w.pad(2)
}

// ActionSetVlanPcp rewrites the VLAN priority.
type ActionSetVlanPcp struct{ Pcp uint8 }

// ActionType implements Action.
func (a *ActionSetVlanPcp) ActionType() uint16 { return ActionTypeSetVlanPcp }

func (a *ActionSetVlanPcp) encode(w *wbuf) {
	w.u16(ActionTypeSetVlanPcp)
	w.u16(8)
	w.u8(a.Pcp)
	w.pad(3)
}

// ActionStripVlan removes the 802.1Q tag.
type ActionStripVlan struct{}

// ActionType implements Action.
func (a *ActionStripVlan) ActionType() uint16 { return ActionTypeStripVlan }

func (a *ActionStripVlan) encode(w *wbuf) {
	w.u16(ActionTypeStripVlan)
	w.u16(8)
	w.pad(4)
}

// ActionSetDlSrc rewrites the source MAC.
type ActionSetDlSrc struct{ Addr pkt.MAC }

// ActionType implements Action.
func (a *ActionSetDlSrc) ActionType() uint16 { return ActionTypeSetDlSrc }

func (a *ActionSetDlSrc) encode(w *wbuf) { encodeDlAddr(w, ActionTypeSetDlSrc, a.Addr) }

// ActionSetDlDst rewrites the destination MAC.
type ActionSetDlDst struct{ Addr pkt.MAC }

// ActionType implements Action.
func (a *ActionSetDlDst) ActionType() uint16 { return ActionTypeSetDlDst }

func (a *ActionSetDlDst) encode(w *wbuf) { encodeDlAddr(w, ActionTypeSetDlDst, a.Addr) }

func encodeDlAddr(w *wbuf, t uint16, addr pkt.MAC) {
	w.u16(t)
	w.u16(16)
	w.bytes(addr[:])
	w.pad(6)
}

// ActionSetNwSrc rewrites the IPv4 source address.
type ActionSetNwSrc struct{ Addr [4]byte }

// ActionType implements Action.
func (a *ActionSetNwSrc) ActionType() uint16 { return ActionTypeSetNwSrc }

func (a *ActionSetNwSrc) encode(w *wbuf) {
	w.u16(ActionTypeSetNwSrc)
	w.u16(8)
	w.bytes(a.Addr[:])
}

// ActionSetNwDst rewrites the IPv4 destination address.
type ActionSetNwDst struct{ Addr [4]byte }

// ActionType implements Action.
func (a *ActionSetNwDst) ActionType() uint16 { return ActionTypeSetNwDst }

func (a *ActionSetNwDst) encode(w *wbuf) {
	w.u16(ActionTypeSetNwDst)
	w.u16(8)
	w.bytes(a.Addr[:])
}

// ActionSetNwTos rewrites the IP TOS byte.
type ActionSetNwTos struct{ Tos uint8 }

// ActionType implements Action.
func (a *ActionSetNwTos) ActionType() uint16 { return ActionTypeSetNwTos }

func (a *ActionSetNwTos) encode(w *wbuf) {
	w.u16(ActionTypeSetNwTos)
	w.u16(8)
	w.u8(a.Tos)
	w.pad(3)
}

// ActionSetTpSrc rewrites the transport source port.
type ActionSetTpSrc struct{ Port uint16 }

// ActionType implements Action.
func (a *ActionSetTpSrc) ActionType() uint16 { return ActionTypeSetTpSrc }

func (a *ActionSetTpSrc) encode(w *wbuf) {
	w.u16(ActionTypeSetTpSrc)
	w.u16(8)
	w.u16(a.Port)
	w.pad(2)
}

// ActionSetTpDst rewrites the transport destination port.
type ActionSetTpDst struct{ Port uint16 }

// ActionType implements Action.
func (a *ActionSetTpDst) ActionType() uint16 { return ActionTypeSetTpDst }

func (a *ActionSetTpDst) encode(w *wbuf) {
	w.u16(ActionTypeSetTpDst)
	w.u16(8)
	w.u16(a.Port)
	w.pad(2)
}

// ActionEnqueue forwards through a port queue.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// ActionType implements Action.
func (a *ActionEnqueue) ActionType() uint16 { return ActionTypeEnqueue }

func (a *ActionEnqueue) encode(w *wbuf) {
	w.u16(ActionTypeEnqueue)
	w.u16(16)
	w.u16(a.Port)
	w.pad(6)
	w.u32(a.QueueID)
}

// ActionVendor is an opaque vendor action.
type ActionVendor struct {
	Vendor uint32
	Data   []byte
}

// ActionType implements Action.
func (a *ActionVendor) ActionType() uint16 { return ActionTypeVendor }

func (a *ActionVendor) encode(w *wbuf) {
	n := 8 + len(a.Data)
	if pad := (8 - n%8) % 8; pad != 0 {
		n += pad
	}
	w.u16(ActionTypeVendor)
	w.u16(uint16(n))
	w.u32(a.Vendor)
	w.bytes(a.Data)
	w.pad(n - 8 - len(a.Data))
}

func encodeActions(w *wbuf, actions []Action) {
	for _, a := range actions {
		a.encode(w)
	}
}

func decodeActions(r *rbuf, length int) ([]Action, error) {
	if length < 0 || length > r.remaining() {
		return nil, fmt.Errorf("action list length %d of %d", length, r.remaining())
	}
	sub := &rbuf{b: r.take(length)}
	var out []Action
	for sub.remaining() > 0 {
		if sub.remaining() < 4 {
			return nil, fmt.Errorf("trailing %d bytes in action list", sub.remaining())
		}
		t := sub.u16()
		alen := int(sub.u16())
		if alen < 8 || alen%8 != 0 {
			return nil, fmt.Errorf("action type %d has invalid length %d", t, alen)
		}
		body := &rbuf{b: sub.take(alen - 4)}
		if sub.err != nil {
			return nil, sub.err
		}
		a, err := decodeOneAction(t, body)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func decodeOneAction(t uint16, r *rbuf) (Action, error) {
	switch t {
	case ActionTypeOutput:
		return &ActionOutput{Port: r.u16(), MaxLen: r.u16()}, r.err
	case ActionTypeSetVlanVid:
		return &ActionSetVlanVid{VlanVid: r.u16()}, r.err
	case ActionTypeSetVlanPcp:
		return &ActionSetVlanPcp{Pcp: r.u8()}, r.err
	case ActionTypeStripVlan:
		return &ActionStripVlan{}, r.err
	case ActionTypeSetDlSrc:
		var a ActionSetDlSrc
		copy(a.Addr[:], r.take(6))
		return &a, r.err
	case ActionTypeSetDlDst:
		var a ActionSetDlDst
		copy(a.Addr[:], r.take(6))
		return &a, r.err
	case ActionTypeSetNwSrc:
		var a ActionSetNwSrc
		copy(a.Addr[:], r.take(4))
		return &a, r.err
	case ActionTypeSetNwDst:
		var a ActionSetNwDst
		copy(a.Addr[:], r.take(4))
		return &a, r.err
	case ActionTypeSetNwTos:
		return &ActionSetNwTos{Tos: r.u8()}, r.err
	case ActionTypeSetTpSrc:
		return &ActionSetTpSrc{Port: r.u16()}, r.err
	case ActionTypeSetTpDst:
		return &ActionSetTpDst{Port: r.u16()}, r.err
	case ActionTypeEnqueue:
		a := &ActionEnqueue{Port: r.u16()}
		r.skip(6)
		a.QueueID = r.u32()
		return a, r.err
	case ActionTypeVendor:
		a := &ActionVendor{Vendor: r.u32()}
		a.Data = append([]byte(nil), r.rest()...)
		return a, r.err
	default:
		return nil, fmt.Errorf("unknown action type %d", t)
	}
}

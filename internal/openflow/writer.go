package openflow

import "io"

// DefaultFlushThreshold is the buffered-byte level past which MessageWriter
// callers should flush: large enough to coalesce a whole flow-mod burst
// (dozens of ~100-byte messages), small enough to keep a batch inside one
// socket write on any sane transport.
const DefaultFlushThreshold = 32 * 1024

// MessageWriter encodes messages into an internal buffer and writes the
// whole batch to the underlying writer in a single Write call on Flush.
// Encoding goes through each message's AppendTo, so appending allocates
// nothing once the buffer has grown to the working-set size; forwarding a
// *Raw message appends its stored body byte for byte without re-encoding.
//
// A write error is sticky: it is returned by the failing Flush and every
// call after it. MessageWriter is not safe for concurrent use.
type MessageWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewMessageWriter returns a MessageWriter writing batches to w.
func NewMessageWriter(w io.Writer) *MessageWriter {
	return &MessageWriter{w: w, buf: make([]byte, 0, 1024)}
}

// Append encodes m into the batch buffer. It never writes to the underlying
// writer; call Flush to do so.
func (mw *MessageWriter) Append(m Message) {
	if mw.err != nil {
		return
	}
	mw.buf = m.AppendTo(mw.buf)
}

// Buffered returns the number of encoded bytes awaiting Flush.
func (mw *MessageWriter) Buffered() int { return len(mw.buf) }

// Flush writes all buffered messages in one underlying Write and resets the
// buffer, retaining its capacity.
func (mw *MessageWriter) Flush() error {
	if mw.err != nil {
		return mw.err
	}
	if len(mw.buf) == 0 {
		return nil
	}
	_, err := mw.w.Write(mw.buf)
	mw.buf = mw.buf[:0]
	if err != nil {
		mw.err = err
	}
	return err
}

// WriteBatch frames every message in msgs into one buffer and writes it with
// a single Write call. It is the one-shot form of MessageWriter for callers
// that already hold a complete batch.
func WriteBatch(w io.Writer, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(msgs)*marshalSizeHint)
	for _, m := range msgs {
		buf = m.AppendTo(buf)
	}
	_, err := w.Write(buf)
	return err
}

// IsBarrier reports whether m delimits a batch: barrier request/reply mark
// the points a peer synchronizes on, so batching write loops flush at them
// instead of coalescing past them.
func IsBarrier(m Message) bool {
	switch m.MsgType() {
	case TypeBarrierRequest, TypeBarrierReply:
		return true
	}
	return false
}

// PumpBatched relays messages from ch to w until stop closes or a write
// fails, coalescing bursts into single underlying writes: after receiving a
// message it greedily drains whatever else is already queued (up to
// DefaultFlushThreshold) into one MessageWriter batch and flushes once.
// Barriers delimit batches — a barrier request or reply ends the batch it
// rides in, since the peer synchronizes on it and coalescing past it would
// only grow the batch without helping latency.
//
// All three message-pumping layers share this loop: the controller send path
// (ctlkit), the FlowVisor proxy's per-connection writers, and the emulated
// switch's reply path. It returns nil when stop closes and the write error
// otherwise.
func PumpBatched(w io.Writer, ch <-chan Message, stop <-chan struct{}) error {
	mw := NewMessageWriter(w)
	for {
		select {
		case m := <-ch:
			mw.Append(m)
		drain:
			for !IsBarrier(m) && mw.Buffered() < DefaultFlushThreshold {
				select {
				case m = <-ch:
					mw.Append(m)
				default:
					break drain
				}
			}
			if err := mw.Flush(); err != nil {
				return err
			}
		case <-stop:
			return nil
		}
	}
}

// Package openflow implements the OpenFlow 1.0 wire protocol (wire version
// 0x01) — the protocol spoken between the emulated switches, FlowVisor and
// the two controllers in this reproduction. The full message set needed by a
// RouteFlow deployment is covered: hello/error/echo, features, switch
// config, packet-in/out, flow-mod, flow-removed, port-status, stats
// (description, flow, table, port), barrier and vendor messages.
//
// Messages are plain structs. The encoder is append-style: every message
// implements AppendTo(buf) []byte, which appends the complete framed wire
// encoding to buf (growing it as append does) and returns the extended
// slice. Encoding into a reused buffer is allocation-free — this is the hot
// path the control channel uses. Marshal is the compatibility wrapper that
// allocates a fresh slice per call. On the decode side, Unmarshal decodes
// one framed message from a byte slice, and Decoder wraps an io.Reader with
// a per-connection scratch buffer so reading a message stream does not
// allocate a frame buffer per message; decoded messages never alias the
// input buffer. ReadMessage/WriteMessage remain as one-shot conveniences,
// and MessageWriter/WriteBatch coalesce many messages into a single
// underlying write for batched control-channel I/O.
//
// Unknown message types decode to *Raw so a proxy (the FlowVisor substrate)
// can forward what it does not understand, byte for byte and without
// re-encoding.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow wire version this package implements (1.0).
const Version = 0x01

// HeaderLen is the length of the common ofp_header.
const HeaderLen = 8

// MaxMessageLen caps accepted message frames; the length field is 16-bit so
// this is the protocol's own ceiling.
const MaxMessageLen = 1<<16 - 1

// Type is the ofp_type message discriminator.
type Type uint8

// OpenFlow 1.0 message types.
const (
	TypeHello              Type = 0
	TypeError              Type = 1
	TypeEchoRequest        Type = 2
	TypeEchoReply          Type = 3
	TypeVendor             Type = 4
	TypeFeaturesRequest    Type = 5
	TypeFeaturesReply      Type = 6
	TypeGetConfigRequest   Type = 7
	TypeGetConfigReply     Type = 8
	TypeSetConfig          Type = 9
	TypePacketIn           Type = 10
	TypeFlowRemoved        Type = 11
	TypePortStatus         Type = 12
	TypePacketOut          Type = 13
	TypeFlowMod            Type = 14
	TypePortMod            Type = 15
	TypeStatsRequest       Type = 16
	TypeStatsReply         Type = 17
	TypeBarrierRequest     Type = 18
	TypeBarrierReply       Type = 19
	TypeQueueGetConfigReq  Type = 20
	TypeQueueGetConfigRepl Type = 21
	// Types 22-24 are the telemetry extension; see telemetry.go.
)

var typeNames = map[Type]string{
	TypeHello: "HELLO", TypeError: "ERROR", TypeEchoRequest: "ECHO_REQUEST",
	TypeEchoReply: "ECHO_REPLY", TypeVendor: "VENDOR",
	TypeFeaturesRequest: "FEATURES_REQUEST", TypeFeaturesReply: "FEATURES_REPLY",
	TypeGetConfigRequest: "GET_CONFIG_REQUEST", TypeGetConfigReply: "GET_CONFIG_REPLY",
	TypeSetConfig: "SET_CONFIG", TypePacketIn: "PACKET_IN",
	TypeFlowRemoved: "FLOW_REMOVED", TypePortStatus: "PORT_STATUS",
	TypePacketOut: "PACKET_OUT", TypeFlowMod: "FLOW_MOD", TypePortMod: "PORT_MOD",
	TypeStatsRequest: "STATS_REQUEST", TypeStatsReply: "STATS_REPLY",
	TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
	TypeQueueGetConfigReq: "QUEUE_GET_CONFIG_REQUEST", TypeQueueGetConfigRepl: "QUEUE_GET_CONFIG_REPLY",
	TypeTelemetryMod: "TELEMETRY_MOD", TypeTelemetryExport: "TELEMETRY_EXPORT",
	TypeTelemetryAck: "TELEMETRY_ACK",
}

// String names the message type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Special port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// NoBuffer is the buffer_id meaning "packet carried inline, not buffered".
const NoBuffer uint32 = 0xffffffff

// Message is one OpenFlow message. All message structs embed MsgXID and so
// carry their transaction ID. AppendTo appends the complete framed wire
// encoding (header included) to buf and returns the extended slice;
// appending to a reused buffer of sufficient capacity performs no
// allocation.
type Message interface {
	MsgType() Type
	XID() uint32
	SetXID(uint32)
	AppendTo(buf []byte) []byte
	appendBody(b []byte) []byte
	decodeBody(r *rbuf) error
}

// MsgXID provides the transaction-ID part of every message.
type MsgXID struct {
	Xid uint32
}

// XID returns the message transaction ID.
func (m *MsgXID) XID() uint32 { return m.Xid }

// SetXID sets the message transaction ID (used by proxies when rewriting).
func (m *MsgXID) SetXID(x uint32) { m.Xid = x }

// ErrBadMessage wraps all decode failures.
var ErrBadMessage = errors.New("openflow: bad message")

// appendMessage frames m: common header, body, then the length field is
// patched in place. Shared by every message's AppendTo.
func appendMessage(buf []byte, m Message) []byte {
	start := len(buf)
	buf = append(buf, Version, uint8(m.MsgType()), 0, 0) // length patched below
	buf = binary.BigEndian.AppendUint32(buf, m.XID())
	buf = m.appendBody(buf)
	n := len(buf) - start
	if n > MaxMessageLen {
		panic(fmt.Sprintf("openflow: %v message of %d bytes exceeds 64KiB", m.MsgType(), n))
	}
	binary.BigEndian.PutUint16(buf[start+2:], uint16(n))
	return buf
}

// marshalSizeHint is the initial capacity Marshal allocates; it covers every
// message the deployment sends on its hot paths (a flow-mod with a few
// actions is 80-120 bytes) in a single allocation.
const marshalSizeHint = 128

// Marshal frames m into freshly allocated wire bytes. Hot paths should
// prefer m.AppendTo with a reused buffer, which does not allocate.
func Marshal(m Message) []byte {
	return m.AppendTo(make([]byte, 0, marshalSizeHint))
}

// zeroPad is the source for appending runs of zero padding (and NUL string
// padding) without allocating. 256 covers the largest fixed-size field
// (ofp_desc_stats strings).
var zeroPad [256]byte

// pad appends n zero bytes.
func pad(b []byte, n int) []byte {
	for n > len(zeroPad) {
		b = append(b, zeroPad[:]...)
		n -= len(zeroPad)
	}
	return append(b, zeroPad[:n]...)
}

// fixedStr appends s into a fixed-size NUL-padded field.
func fixedStr(b []byte, s string, size int) []byte {
	if len(s) > size {
		s = s[:size]
	}
	b = append(b, s...)
	return pad(b, size-len(s))
}

// newMessage returns the empty struct for a message type, or nil for types
// decoded as Raw.
func newMessage(t Type) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &ErrorMsg{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeVendor:
		return &Vendor{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigRequest:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePortStatus:
		return &PortStatus{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeStatsRequest:
		return &StatsRequest{}
	case TypeStatsReply:
		return &StatsReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	case TypeTelemetryMod:
		return &TelemetryMod{}
	case TypeTelemetryExport:
		return &TelemetryExport{}
	case TypeTelemetryAck:
		return &TelemetryAck{}
	default:
		return nil
	}
}

// checkHeader validates the common header of b and returns the type, frame
// length and transaction ID.
func checkHeader(b []byte) (t Type, length int, xid uint32, err error) {
	if len(b) < HeaderLen {
		return 0, 0, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadMessage, len(b))
	}
	if b[0] != Version {
		return 0, 0, 0, fmt.Errorf("%w: version 0x%02x, want 0x%02x", ErrBadMessage, b[0], Version)
	}
	length = int(binary.BigEndian.Uint16(b[2:]))
	if length < HeaderLen || length > len(b) {
		return 0, 0, 0, fmt.Errorf("%w: length field %d of %d", ErrBadMessage, length, len(b))
	}
	return Type(b[1]), length, binary.BigEndian.Uint32(b[4:]), nil
}

// Unmarshal decodes one complete framed message from b, which must contain
// exactly one message. The returned message does not alias b.
func Unmarshal(b []byte) (Message, error) {
	t, length, xid, err := checkHeader(b)
	if err != nil {
		return nil, err
	}
	m := newMessage(t)
	if m == nil {
		raw := &Raw{T: t}
		raw.Body = append([]byte(nil), b[HeaderLen:length]...)
		raw.SetXID(xid)
		return raw, nil
	}
	m.SetXID(xid)
	if err := decodeBodyInto(m, t, b[HeaderLen:length]); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes one complete framed message from b into m, whose
// concrete type must match the frame's type (a *Raw accepts any type this
// package does not model). It lets a caller reuse one message struct across
// decodes; slice fields of m are overwritten, not reused.
func UnmarshalInto(b []byte, m Message) error {
	t, length, xid, err := checkHeader(b)
	if err != nil {
		return err
	}
	if raw, ok := m.(*Raw); ok {
		raw.T = t
		raw.Body = append(raw.Body[:0], b[HeaderLen:length]...)
		raw.SetXID(xid)
		return nil
	}
	if m.MsgType() != t {
		return fmt.Errorf("%w: frame is %v, target decodes %v", ErrBadMessage, t, m.MsgType())
	}
	m.SetXID(xid)
	return decodeBodyInto(m, t, b[HeaderLen:length])
}

func decodeBodyInto(m Message, t Type, body []byte) error {
	r := rbuf{b: body}
	if err := m.decodeBody(&r); err != nil {
		return fmt.Errorf("%w: %v body: %v", ErrBadMessage, t, err)
	}
	if r.err != nil {
		return fmt.Errorf("%w: %v body: %v", ErrBadMessage, t, r.err)
	}
	return nil
}

// Decoder reads a stream of framed messages from an io.Reader, reusing one
// scratch buffer per connection so steady-state reading allocates only the
// decoded message values, never a frame buffer. Decoded messages copy what
// they keep, so each message stays valid after the next Decode. Decoder is
// not safe for concurrent use.
type Decoder struct {
	r   io.Reader
	buf []byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 512)}
}

// Decode reads and decodes the next message. It returns io.EOF unwrapped on
// a clean end of stream before any header byte.
func (d *Decoder) Decode() (Message, error) {
	n, err := d.readFrame()
	if err != nil {
		return nil, err
	}
	return Unmarshal(d.buf[:n])
}

// DecodeInto reads the next message into m (see UnmarshalInto for the type
// contract).
func (d *Decoder) DecodeInto(m Message) error {
	n, err := d.readFrame()
	if err != nil {
		return err
	}
	return UnmarshalInto(d.buf[:n], m)
}

// readFrame reads one complete frame into d.buf and returns its length.
func (d *Decoder) readFrame() (int, error) {
	if _, err := io.ReadFull(d.r, d.buf[:HeaderLen]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("openflow: reading header: %w", err)
	}
	length := int(binary.BigEndian.Uint16(d.buf[2:]))
	if length < HeaderLen {
		return 0, fmt.Errorf("%w: header length %d", ErrBadMessage, length)
	}
	if length > len(d.buf) {
		grown := make([]byte, length)
		copy(grown, d.buf[:HeaderLen])
		d.buf = grown
	}
	if _, err := io.ReadFull(d.r, d.buf[HeaderLen:length]); err != nil {
		return 0, fmt.Errorf("openflow: reading body: %w", err)
	}
	return length, nil
}

// ReadMessage reads one framed message from r. It returns io.EOF unwrapped
// on a clean end of stream before any header byte. Connection loops should
// prefer a per-connection Decoder, which reuses its frame buffer.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("openflow: reading header: %w", err)
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < HeaderLen {
		return nil, fmt.Errorf("%w: header length %d", ErrBadMessage, length)
	}
	full := make([]byte, length)
	copy(full, hdr[:])
	if _, err := io.ReadFull(r, full[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("openflow: reading body: %w", err)
	}
	return Unmarshal(full)
}

// WriteMessage frames and writes m to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(Marshal(m))
	return err
}

// Raw is a message of a type this package does not model; Body is the frame
// minus the header. It re-encodes byte for byte, so proxies can forward it
// without understanding it.
type Raw struct {
	MsgXID
	T    Type
	Body []byte
}

// MsgType returns the original wire type.
func (m *Raw) MsgType() Type { return m.T }

// AppendTo implements Message.
func (m *Raw) AppendTo(b []byte) []byte   { return appendMessage(b, m) }
func (m *Raw) appendBody(b []byte) []byte { return append(b, m.Body...) }
func (m *Raw) decodeBody(r *rbuf) error {
	m.Body = append([]byte(nil), r.rest()...)
	return nil
}

// rbuf is a cursor-based big-endian decoder with a sticky error.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return true
	}
	return false
}

func (r *rbuf) u8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16() uint16 {
	if r.fail(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) take(n int) []byte {
	if n < 0 || r.fail(n) {
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *rbuf) skip(n int) { r.take(n) }

func (r *rbuf) rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

func (r *rbuf) remaining() int { return len(r.b) - r.off }

// str reads a fixed-size NUL-padded string field.
func (r *rbuf) str(size int) string {
	raw := r.take(size)
	for i, c := range raw {
		if c == 0 {
			return string(raw[:i])
		}
	}
	return string(raw)
}

// Package openflow implements the OpenFlow 1.0 wire protocol (wire version
// 0x01) — the protocol spoken between the emulated switches, FlowVisor and
// the two controllers in this reproduction. The full message set needed by a
// RouteFlow deployment is covered: hello/error/echo, features, switch
// config, packet-in/out, flow-mod, flow-removed, port-status, stats
// (description, flow, table, port), barrier and vendor messages.
//
// Messages are plain structs; Marshal/Unmarshal convert to and from framed
// wire bytes, and ReadMessage/WriteMessage do stream I/O over any
// io.Reader/io.Writer. Unknown message types decode to *Raw so a proxy (the
// FlowVisor substrate) can forward what it does not understand, byte for
// byte.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow wire version this package implements (1.0).
const Version = 0x01

// HeaderLen is the length of the common ofp_header.
const HeaderLen = 8

// MaxMessageLen caps accepted message frames; the length field is 16-bit so
// this is the protocol's own ceiling.
const MaxMessageLen = 1<<16 - 1

// Type is the ofp_type message discriminator.
type Type uint8

// OpenFlow 1.0 message types.
const (
	TypeHello              Type = 0
	TypeError              Type = 1
	TypeEchoRequest        Type = 2
	TypeEchoReply          Type = 3
	TypeVendor             Type = 4
	TypeFeaturesRequest    Type = 5
	TypeFeaturesReply      Type = 6
	TypeGetConfigRequest   Type = 7
	TypeGetConfigReply     Type = 8
	TypeSetConfig          Type = 9
	TypePacketIn           Type = 10
	TypeFlowRemoved        Type = 11
	TypePortStatus         Type = 12
	TypePacketOut          Type = 13
	TypeFlowMod            Type = 14
	TypePortMod            Type = 15
	TypeStatsRequest       Type = 16
	TypeStatsReply         Type = 17
	TypeBarrierRequest     Type = 18
	TypeBarrierReply       Type = 19
	TypeQueueGetConfigReq  Type = 20
	TypeQueueGetConfigRepl Type = 21
)

var typeNames = map[Type]string{
	TypeHello: "HELLO", TypeError: "ERROR", TypeEchoRequest: "ECHO_REQUEST",
	TypeEchoReply: "ECHO_REPLY", TypeVendor: "VENDOR",
	TypeFeaturesRequest: "FEATURES_REQUEST", TypeFeaturesReply: "FEATURES_REPLY",
	TypeGetConfigRequest: "GET_CONFIG_REQUEST", TypeGetConfigReply: "GET_CONFIG_REPLY",
	TypeSetConfig: "SET_CONFIG", TypePacketIn: "PACKET_IN",
	TypeFlowRemoved: "FLOW_REMOVED", TypePortStatus: "PORT_STATUS",
	TypePacketOut: "PACKET_OUT", TypeFlowMod: "FLOW_MOD", TypePortMod: "PORT_MOD",
	TypeStatsRequest: "STATS_REQUEST", TypeStatsReply: "STATS_REPLY",
	TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
	TypeQueueGetConfigReq: "QUEUE_GET_CONFIG_REQUEST", TypeQueueGetConfigRepl: "QUEUE_GET_CONFIG_REPLY",
}

// String names the message type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Special port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// NoBuffer is the buffer_id meaning "packet carried inline, not buffered".
const NoBuffer uint32 = 0xffffffff

// Message is one OpenFlow message. All message structs embed MsgXID and so
// carry their transaction ID; Marshal frames them with the common header.
type Message interface {
	MsgType() Type
	XID() uint32
	SetXID(uint32)
	encodeBody(w *wbuf)
	decodeBody(r *rbuf) error
}

// MsgXID provides the transaction-ID part of every message.
type MsgXID struct {
	Xid uint32
}

// XID returns the message transaction ID.
func (m *MsgXID) XID() uint32 { return m.Xid }

// SetXID sets the message transaction ID (used by proxies when rewriting).
func (m *MsgXID) SetXID(x uint32) { m.Xid = x }

// ErrBadMessage wraps all decode failures.
var ErrBadMessage = errors.New("openflow: bad message")

// Marshal frames m into wire bytes.
func Marshal(m Message) []byte {
	w := &wbuf{}
	w.u8(Version)
	w.u8(uint8(m.MsgType()))
	w.u16(0) // length, patched below
	w.u32(m.XID())
	m.encodeBody(w)
	if len(w.b) > MaxMessageLen {
		panic(fmt.Sprintf("openflow: %v message of %d bytes exceeds 64KiB", m.MsgType(), len(w.b)))
	}
	binary.BigEndian.PutUint16(w.b[2:], uint16(len(w.b)))
	return w.b
}

// newMessage returns the empty struct for a message type, or nil for types
// decoded as Raw.
func newMessage(t Type) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &ErrorMsg{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeVendor:
		return &Vendor{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigRequest:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePortStatus:
		return &PortStatus{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeStatsRequest:
		return &StatsRequest{}
	case TypeStatsReply:
		return &StatsReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	default:
		return nil
	}
}

// Unmarshal decodes one complete framed message from b, which must contain
// exactly one message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrBadMessage, len(b))
	}
	if b[0] != Version {
		return nil, fmt.Errorf("%w: version 0x%02x, want 0x%02x", ErrBadMessage, b[0], Version)
	}
	t := Type(b[1])
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < HeaderLen || length > len(b) {
		return nil, fmt.Errorf("%w: length field %d of %d", ErrBadMessage, length, len(b))
	}
	xid := binary.BigEndian.Uint32(b[4:])
	m := newMessage(t)
	if m == nil {
		raw := &Raw{T: t}
		raw.Body = append([]byte(nil), b[HeaderLen:length]...)
		raw.SetXID(xid)
		return raw, nil
	}
	m.SetXID(xid)
	r := &rbuf{b: b[HeaderLen:length]}
	if err := m.decodeBody(r); err != nil {
		return nil, fmt.Errorf("%w: %v body: %v", ErrBadMessage, t, err)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v body: %v", ErrBadMessage, t, r.err)
	}
	return m, nil
}

// ReadMessage reads one framed message from r. It returns io.EOF unwrapped
// on a clean end of stream before any header byte.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("openflow: reading header: %w", err)
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < HeaderLen {
		return nil, fmt.Errorf("%w: header length %d", ErrBadMessage, length)
	}
	full := make([]byte, length)
	copy(full, hdr[:])
	if _, err := io.ReadFull(r, full[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("openflow: reading body: %w", err)
	}
	return Unmarshal(full)
}

// WriteMessage frames and writes m to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(Marshal(m))
	return err
}

// Raw is a message of a type this package does not model; Body is the frame
// minus the header. It re-encodes byte for byte, so proxies can forward it.
type Raw struct {
	MsgXID
	T    Type
	Body []byte
}

// MsgType returns the original wire type.
func (m *Raw) MsgType() Type      { return m.T }
func (m *Raw) encodeBody(w *wbuf) { w.bytes(m.Body) }
func (m *Raw) decodeBody(r *rbuf) error {
	m.Body = append([]byte(nil), r.rest()...)
	return nil
}

// wbuf is an append-only big-endian encoder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)     { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)   { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)   { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *wbuf) pad(n int) {
	for i := 0; i < n; i++ {
		w.b = append(w.b, 0)
	}
}

// str writes s into a fixed-size NUL-padded field.
func (w *wbuf) str(s string, size int) {
	if len(s) > size {
		s = s[:size]
	}
	w.bytes([]byte(s))
	w.pad(size - len(s))
}

// rbuf is a cursor-based big-endian decoder with a sticky error.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return true
	}
	return false
}

func (r *rbuf) u8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16() uint16 {
	if r.fail(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) take(n int) []byte {
	if n < 0 || r.fail(n) {
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *rbuf) skip(n int) { r.take(n) }

func (r *rbuf) rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

func (r *rbuf) remaining() int { return len(r.b) - r.off }

// str reads a fixed-size NUL-padded string field.
func (r *rbuf) str(size int) string {
	raw := r.take(size)
	for i, c := range raw {
		if c == 0 {
			return string(raw[:i])
		}
	}
	return string(raw)
}

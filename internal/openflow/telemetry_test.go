package openflow

import (
	"bytes"
	"testing"
)

func telemetryModFixture() *TelemetryMod {
	m := &TelemetryMod{
		Epoch:      7,
		IntervalMS: 250,
		Rules: []MonitorRule{
			{ID: 1, Src: [4]byte{10, 1, 0, 0}, SrcBits: 24, Dst: [4]byte{10, 2, 0, 0}, DstBits: 24},
			{ID: 9, Src: [4]byte{10, 3, 0, 0}, SrcBits: 16, Dst: [4]byte{10, 4, 0, 5}, DstBits: 32},
		},
	}
	m.SetXID(0x0a0b0c0d)
	return m
}

func TestTelemetryModRoundTrip(t *testing.T) {
	got := roundTrip(t, telemetryModFixture()).(*TelemetryMod)
	if got.Epoch != 7 || got.IntervalMS != 250 || len(got.Rules) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	roundTrip(t, &TelemetryMod{Epoch: 1}) // empty rule set = "stop monitoring"
}

func TestTelemetryExportRoundTrip(t *testing.T) {
	m := &TelemetryExport{
		Epoch: 7, Seq: 3, Flags: TelemetryFull,
		Entries: []TelemetryEntry{
			{ID: 1, Packets: 12, Bytes: 18000},
			{ID: 9, Packets: 1 << 40, Bytes: 1 << 50},
		},
	}
	got := roundTrip(t, m).(*TelemetryExport)
	if !got.Full() || got.Entries[1].Bytes != 1<<50 {
		t.Fatalf("decoded %+v", got)
	}
	roundTrip(t, &TelemetryExport{Epoch: 7, Seq: 4}) // empty heartbeat
	roundTrip(t, &TelemetryAck{Epoch: 7, Seq: 3})
}

// TestTelemetryGoldenWire pins the exact wire encoding of each telemetry
// message so protocol drift (field order, widths, varint choice) fails
// loudly rather than silently desynchronizing old and new peers.
func TestTelemetryGoldenWire(t *testing.T) {
	mod := &TelemetryMod{Epoch: 0x0102030405060708, IntervalMS: 500,
		Rules: []MonitorRule{{ID: 0x11, Src: [4]byte{10, 1, 0, 0}, SrcBits: 24,
			Dst: [4]byte{10, 2, 0, 0}, DstBits: 24}}}
	mod.SetXID(0x42)
	wantMod := []byte{
		Version, byte(TypeTelemetryMod), 0, 0x24, 0, 0, 0, 0x42, // header (len patched)
		1, 2, 3, 4, 5, 6, 7, 8, // epoch
		0, 0, 1, 0xf4, // interval 500ms
		0, 1, // one rule
		0, 0, 0, 0x11, // rule id
		10, 1, 0, 0, 24, // src 10.1.0.0/24
		10, 2, 0, 0, 24, // dst 10.2.0.0/24
	}
	if got := Marshal(mod); !bytes.Equal(got, wantMod) {
		t.Errorf("TelemetryMod wire:\n got %x\nwant %x", got, wantMod)
	}

	ex := &TelemetryExport{Epoch: 2, Seq: 5, Flags: TelemetryFull,
		Entries: []TelemetryEntry{{ID: 300, Packets: 1, Bytes: 1500}}}
	ex.SetXID(0x43)
	wantEx := []byte{
		Version, byte(TypeTelemetryExport), 0, 0x1c, 0, 0, 0, 0x43,
		0, 0, 0, 0, 0, 0, 0, 2, // epoch
		0, 0, 0, 5, // seq
		1,    // flags: FULL
		0, 1, // one entry
		0xac, 0x02, // id 300 as uvarint
		0x01,       // packets 1
		0xdc, 0x0b, // bytes 1500 as uvarint
	}
	if got := Marshal(ex); !bytes.Equal(got, wantEx) {
		t.Errorf("TelemetryExport wire:\n got %x\nwant %x", got, wantEx)
	}

	ack := &TelemetryAck{Epoch: 2, Seq: 5}
	ack.SetXID(0x44)
	wantAck := []byte{
		Version, byte(TypeTelemetryAck), 0, 0x14, 0, 0, 0, 0x44,
		0, 0, 0, 0, 0, 0, 0, 2,
		0, 0, 0, 5,
	}
	if got := Marshal(ack); !bytes.Equal(got, wantAck) {
		t.Errorf("TelemetryAck wire:\n got %x\nwant %x", got, wantAck)
	}
}

func TestTelemetryDecodeRejectsOversizedCounts(t *testing.T) {
	// A claimed rule/entry count larger than the body can hold must be
	// rejected up front, not trusted into a huge allocation.
	mod := validFrame(TypeTelemetryMod, 1, []byte{
		0, 0, 0, 0, 0, 0, 0, 1, // epoch
		0, 0, 0, 0, // interval
		0xff, 0xff, // 65535 rules, no bytes
	})
	if _, err := Unmarshal(mod); err == nil {
		t.Error("oversized TelemetryMod rule count accepted")
	}
	ex := validFrame(TypeTelemetryExport, 1, []byte{
		0, 0, 0, 0, 0, 0, 0, 1, // epoch
		0, 0, 0, 0, // seq
		0,          // flags
		0xff, 0xff, // 65535 entries, no bytes
	})
	if _, err := Unmarshal(ex); err == nil {
		t.Error("oversized TelemetryExport entry count accepted")
	}
}

// TestTelemetryExportAppendAllocBudget: the delta-encode path — a switch
// appending its periodic export into a reused batch buffer — must not
// allocate once the buffer is warm. This is the telemetry analogue of the
// flow-mod AppendTo gate.
func TestTelemetryExportAppendAllocBudget(t *testing.T) {
	entries := make([]TelemetryEntry, 256)
	for i := range entries {
		entries[i] = TelemetryEntry{ID: uint32(i), Packets: uint64(i) * 3, Bytes: uint64(i) * 4500}
	}
	ex := &TelemetryExport{Epoch: 1, Seq: 1, Entries: entries}
	buf := ex.AppendTo(nil) // warm to working-set capacity
	if got := testing.AllocsPerRun(200, func() {
		ex.Seq++
		buf = ex.AppendTo(buf[:0])
	}); got > 0 {
		t.Fatalf("AppendTo(TelemetryExport) = %.1f allocs/op, budget 0", got)
	}
}

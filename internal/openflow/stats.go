package openflow

import "fmt"

// Stats types (ofp_stats_types).
const (
	StatsDesc      uint16 = 0
	StatsFlow      uint16 = 1
	StatsAggregate uint16 = 2
	StatsTable     uint16 = 3
	StatsPort      uint16 = 4
	StatsQueue     uint16 = 5
	StatsVendor    uint16 = 0xffff
)

// StatsReplyFlagMore marks a multipart reply with more parts following.
const StatsReplyFlagMore uint16 = 1 << 0

// StatsRequest asks for one statistics category. Exactly one of the typed
// request fields is consulted, selected by StatsType; Desc and Table
// requests have empty bodies.
type StatsRequest struct {
	MsgXID
	StatsType uint16
	Flags     uint16
	Flow      *FlowStatsRequest // StatsFlow / StatsAggregate
	Port      *PortStatsRequest // StatsPort
}

// FlowStatsRequest selects flows by match, table and output port.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// PortStatsRequest selects one port, or all with PortNone.
type PortStatsRequest struct {
	PortNo uint16
}

// MsgType implements Message.
func (*StatsRequest) MsgType() Type { return TypeStatsRequest }

func (m *StatsRequest) encodeBody(w *wbuf) {
	w.u16(m.StatsType)
	w.u16(m.Flags)
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		fr := m.Flow
		if fr == nil {
			fr = &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}
		}
		fr.Match.encode(w)
		w.u8(fr.TableID)
		w.pad(1)
		w.u16(fr.OutPort)
	case StatsPort:
		pr := m.Port
		if pr == nil {
			pr = &PortStatsRequest{PortNo: PortNone}
		}
		w.u16(pr.PortNo)
		w.pad(6)
	}
}

func (m *StatsRequest) decodeBody(r *rbuf) error {
	m.StatsType = r.u16()
	m.Flags = r.u16()
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		var fr FlowStatsRequest
		fr.Match.decode(r)
		fr.TableID = r.u8()
		r.skip(1)
		fr.OutPort = r.u16()
		m.Flow = &fr
	case StatsPort:
		var pr PortStatsRequest
		pr.PortNo = r.u16()
		r.skip(6)
		m.Port = &pr
	default:
		r.rest()
	}
	return r.err
}

// DescStats is the switch description (ofp_desc_stats).
type DescStats struct {
	Manufacturer string
	Hardware     string
	Software     string
	SerialNumber string
	Datapath     string
}

// FlowStats is one flow entry's statistics.
type FlowStats struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

// TableStats describes one flow table.
type TableStats struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

// PortStats carries per-port counters.
type PortStats struct {
	PortNo                uint16
	RxPackets, TxPackets  uint64
	RxBytes, TxBytes      uint64
	RxDropped, TxDropped  uint64
	RxErrors, TxErrors    uint64
	RxFrameErr, RxOverErr uint64
	RxCRCErr, Collisions  uint64
}

// StatsReply answers a StatsRequest; the field matching StatsType is set.
type StatsReply struct {
	MsgXID
	StatsType uint16
	Flags     uint16
	Desc      *DescStats
	Flows     []FlowStats
	Tables    []TableStats
	Ports     []PortStats
	Raw       []byte // body of unmodeled categories
}

// MsgType implements Message.
func (*StatsReply) MsgType() Type { return TypeStatsReply }

func (m *StatsReply) encodeBody(w *wbuf) {
	w.u16(m.StatsType)
	w.u16(m.Flags)
	switch m.StatsType {
	case StatsDesc:
		d := m.Desc
		if d == nil {
			d = &DescStats{}
		}
		w.str(d.Manufacturer, 256)
		w.str(d.Hardware, 256)
		w.str(d.Software, 256)
		w.str(d.SerialNumber, 32)
		w.str(d.Datapath, 256)
	case StatsFlow:
		for i := range m.Flows {
			encodeFlowStats(w, &m.Flows[i])
		}
	case StatsTable:
		for _, t := range m.Tables {
			w.u8(t.TableID)
			w.pad(3)
			w.str(t.Name, 32)
			w.u32(t.Wildcards)
			w.u32(t.MaxEntries)
			w.u32(t.ActiveCount)
			w.u64(t.LookupCount)
			w.u64(t.MatchedCount)
		}
	case StatsPort:
		for _, p := range m.Ports {
			w.u16(p.PortNo)
			w.pad(6)
			for _, v := range []uint64{p.RxPackets, p.TxPackets, p.RxBytes, p.TxBytes,
				p.RxDropped, p.TxDropped, p.RxErrors, p.TxErrors,
				p.RxFrameErr, p.RxOverErr, p.RxCRCErr, p.Collisions} {
				w.u64(v)
			}
		}
	default:
		w.bytes(m.Raw)
	}
}

func encodeFlowStats(w *wbuf, f *FlowStats) {
	lenAt := len(w.b)
	w.u16(0) // length, patched
	w.u8(f.TableID)
	w.pad(1)
	f.Match.encode(w)
	w.u32(f.DurationSec)
	w.u32(f.DurationNsec)
	w.u16(f.Priority)
	w.u16(f.IdleTimeout)
	w.u16(f.HardTimeout)
	w.pad(6)
	w.u64(f.Cookie)
	w.u64(f.PacketCount)
	w.u64(f.ByteCount)
	encodeActions(w, f.Actions)
	entryLen := len(w.b) - lenAt
	w.b[lenAt] = byte(entryLen >> 8)
	w.b[lenAt+1] = byte(entryLen)
}

func (m *StatsReply) decodeBody(r *rbuf) error {
	m.StatsType = r.u16()
	m.Flags = r.u16()
	switch m.StatsType {
	case StatsDesc:
		var d DescStats
		d.Manufacturer = r.str(256)
		d.Hardware = r.str(256)
		d.Software = r.str(256)
		d.SerialNumber = r.str(32)
		d.Datapath = r.str(256)
		m.Desc = &d
	case StatsFlow:
		for r.remaining() > 0 {
			f, err := decodeFlowStats(r)
			if err != nil {
				return err
			}
			m.Flows = append(m.Flows, *f)
		}
	case StatsTable:
		for r.remaining() >= 64 {
			var t TableStats
			t.TableID = r.u8()
			r.skip(3)
			t.Name = r.str(32)
			t.Wildcards = r.u32()
			t.MaxEntries = r.u32()
			t.ActiveCount = r.u32()
			t.LookupCount = r.u64()
			t.MatchedCount = r.u64()
			m.Tables = append(m.Tables, t)
		}
	case StatsPort:
		for r.remaining() >= 104 {
			var p PortStats
			p.PortNo = r.u16()
			r.skip(6)
			dst := []*uint64{&p.RxPackets, &p.TxPackets, &p.RxBytes, &p.TxBytes,
				&p.RxDropped, &p.TxDropped, &p.RxErrors, &p.TxErrors,
				&p.RxFrameErr, &p.RxOverErr, &p.RxCRCErr, &p.Collisions}
			for _, d := range dst {
				*d = r.u64()
			}
			m.Ports = append(m.Ports, p)
		}
	default:
		m.Raw = append([]byte(nil), r.rest()...)
	}
	return r.err
}

func decodeFlowStats(r *rbuf) (*FlowStats, error) {
	start := r.off
	length := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if length < 88 || start+length > len(r.b) {
		return nil, fmt.Errorf("flow stats entry length %d", length)
	}
	var f FlowStats
	f.TableID = r.u8()
	r.skip(1)
	f.Match.decode(r)
	f.DurationSec = r.u32()
	f.DurationNsec = r.u32()
	f.Priority = r.u16()
	f.IdleTimeout = r.u16()
	f.HardTimeout = r.u16()
	r.skip(6)
	f.Cookie = r.u64()
	f.PacketCount = r.u64()
	f.ByteCount = r.u64()
	actions, err := decodeActions(r, start+length-r.off)
	if err != nil {
		return nil, err
	}
	f.Actions = actions
	return &f, r.err
}

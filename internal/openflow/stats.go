package openflow

import (
	"encoding/binary"
	"fmt"
)

// Stats types (ofp_stats_types).
const (
	StatsDesc      uint16 = 0
	StatsFlow      uint16 = 1
	StatsAggregate uint16 = 2
	StatsTable     uint16 = 3
	StatsPort      uint16 = 4
	StatsQueue     uint16 = 5
	StatsVendor    uint16 = 0xffff
)

// StatsReplyFlagMore marks a multipart reply with more parts following.
const StatsReplyFlagMore uint16 = 1 << 0

// StatsRequest asks for one statistics category. Exactly one of the typed
// request fields is consulted, selected by StatsType; Desc and Table
// requests have empty bodies.
type StatsRequest struct {
	MsgXID
	StatsType uint16
	Flags     uint16
	Flow      *FlowStatsRequest // StatsFlow / StatsAggregate
	Port      *PortStatsRequest // StatsPort
}

// FlowStatsRequest selects flows by match, table and output port.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// PortStatsRequest selects one port, or all with PortNone.
type PortStatsRequest struct {
	PortNo uint16
}

// MsgType implements Message.
func (*StatsRequest) MsgType() Type { return TypeStatsRequest }

// AppendTo implements Message.
func (m *StatsRequest) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *StatsRequest) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		fr := m.Flow
		if fr == nil {
			fr = &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}
		}
		b = fr.Match.appendTo(b)
		b = append(b, fr.TableID, 0)
		b = binary.BigEndian.AppendUint16(b, fr.OutPort)
	case StatsPort:
		pr := m.Port
		if pr == nil {
			pr = &PortStatsRequest{PortNo: PortNone}
		}
		b = binary.BigEndian.AppendUint16(b, pr.PortNo)
		b = append(b, 0, 0, 0, 0, 0, 0)
	}
	return b
}

func (m *StatsRequest) decodeBody(r *rbuf) error {
	m.StatsType = r.u16()
	m.Flags = r.u16()
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		var fr FlowStatsRequest
		fr.Match.decode(r)
		fr.TableID = r.u8()
		r.skip(1)
		fr.OutPort = r.u16()
		m.Flow = &fr
	case StatsPort:
		var pr PortStatsRequest
		pr.PortNo = r.u16()
		r.skip(6)
		m.Port = &pr
	default:
		r.rest()
	}
	return r.err
}

// DescStats is the switch description (ofp_desc_stats).
type DescStats struct {
	Manufacturer string
	Hardware     string
	Software     string
	SerialNumber string
	Datapath     string
}

// FlowStats is one flow entry's statistics.
type FlowStats struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

// TableStats describes one flow table.
type TableStats struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

// PortStats carries per-port counters.
type PortStats struct {
	PortNo                uint16
	RxPackets, TxPackets  uint64
	RxBytes, TxBytes      uint64
	RxDropped, TxDropped  uint64
	RxErrors, TxErrors    uint64
	RxFrameErr, RxOverErr uint64
	RxCRCErr, Collisions  uint64
}

// StatsReply answers a StatsRequest; the field matching StatsType is set.
type StatsReply struct {
	MsgXID
	StatsType uint16
	Flags     uint16
	Desc      *DescStats
	Flows     []FlowStats
	Tables    []TableStats
	Ports     []PortStats
	Raw       []byte // body of unmodeled categories
}

// MsgType implements Message.
func (*StatsReply) MsgType() Type { return TypeStatsReply }

// AppendTo implements Message.
func (m *StatsReply) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *StatsReply) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	switch m.StatsType {
	case StatsDesc:
		d := m.Desc
		if d == nil {
			d = &DescStats{}
		}
		b = fixedStr(b, d.Manufacturer, 256)
		b = fixedStr(b, d.Hardware, 256)
		b = fixedStr(b, d.Software, 256)
		b = fixedStr(b, d.SerialNumber, 32)
		b = fixedStr(b, d.Datapath, 256)
	case StatsFlow:
		for i := range m.Flows {
			b = appendFlowStats(b, &m.Flows[i])
		}
	case StatsTable:
		for _, t := range m.Tables {
			b = append(b, t.TableID, 0, 0, 0)
			b = fixedStr(b, t.Name, 32)
			b = binary.BigEndian.AppendUint32(b, t.Wildcards)
			b = binary.BigEndian.AppendUint32(b, t.MaxEntries)
			b = binary.BigEndian.AppendUint32(b, t.ActiveCount)
			b = binary.BigEndian.AppendUint64(b, t.LookupCount)
			b = binary.BigEndian.AppendUint64(b, t.MatchedCount)
		}
	case StatsPort:
		for i := range m.Ports {
			p := &m.Ports[i]
			b = binary.BigEndian.AppendUint16(b, p.PortNo)
			b = append(b, 0, 0, 0, 0, 0, 0)
			for _, v := range [...]uint64{p.RxPackets, p.TxPackets, p.RxBytes, p.TxBytes,
				p.RxDropped, p.TxDropped, p.RxErrors, p.TxErrors,
				p.RxFrameErr, p.RxOverErr, p.RxCRCErr, p.Collisions} {
				b = binary.BigEndian.AppendUint64(b, v)
			}
		}
	default:
		b = append(b, m.Raw...)
	}
	return b
}

func appendFlowStats(b []byte, f *FlowStats) []byte {
	lenAt := len(b)
	b = append(b, 0, 0) // length, patched below
	b = append(b, f.TableID, 0)
	b = f.Match.appendTo(b)
	b = binary.BigEndian.AppendUint32(b, f.DurationSec)
	b = binary.BigEndian.AppendUint32(b, f.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, f.Priority)
	b = binary.BigEndian.AppendUint16(b, f.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, f.HardTimeout)
	b = append(b, 0, 0, 0, 0, 0, 0)
	b = binary.BigEndian.AppendUint64(b, f.Cookie)
	b = binary.BigEndian.AppendUint64(b, f.PacketCount)
	b = binary.BigEndian.AppendUint64(b, f.ByteCount)
	b = appendActions(b, f.Actions)
	binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-lenAt))
	return b
}

func (m *StatsReply) decodeBody(r *rbuf) error {
	// Overwrite every variant field when m is reused across decodes; only
	// the branch matching StatsType repopulates below.
	m.Desc = nil
	m.Flows = m.Flows[:0]
	m.Tables = m.Tables[:0]
	m.Ports = m.Ports[:0]
	m.Raw = m.Raw[:0]
	m.StatsType = r.u16()
	m.Flags = r.u16()
	switch m.StatsType {
	case StatsDesc:
		var d DescStats
		d.Manufacturer = r.str(256)
		d.Hardware = r.str(256)
		d.Software = r.str(256)
		d.SerialNumber = r.str(32)
		d.Datapath = r.str(256)
		m.Desc = &d
	case StatsFlow:
		for r.remaining() > 0 {
			f, err := decodeFlowStats(r)
			if err != nil {
				return err
			}
			m.Flows = append(m.Flows, *f)
		}
	case StatsTable:
		for r.remaining() >= 64 {
			var t TableStats
			t.TableID = r.u8()
			r.skip(3)
			t.Name = r.str(32)
			t.Wildcards = r.u32()
			t.MaxEntries = r.u32()
			t.ActiveCount = r.u32()
			t.LookupCount = r.u64()
			t.MatchedCount = r.u64()
			m.Tables = append(m.Tables, t)
		}
	case StatsPort:
		for r.remaining() >= 104 {
			var p PortStats
			p.PortNo = r.u16()
			r.skip(6)
			dst := []*uint64{&p.RxPackets, &p.TxPackets, &p.RxBytes, &p.TxBytes,
				&p.RxDropped, &p.TxDropped, &p.RxErrors, &p.TxErrors,
				&p.RxFrameErr, &p.RxOverErr, &p.RxCRCErr, &p.Collisions}
			for _, d := range dst {
				*d = r.u64()
			}
			m.Ports = append(m.Ports, p)
		}
	default:
		m.Raw = append([]byte(nil), r.rest()...)
	}
	return r.err
}

func decodeFlowStats(r *rbuf) (*FlowStats, error) {
	start := r.off
	length := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if length < 88 || start+length > len(r.b) {
		return nil, fmt.Errorf("flow stats entry length %d", length)
	}
	var f FlowStats
	f.TableID = r.u8()
	r.skip(1)
	f.Match.decode(r)
	f.DurationSec = r.u32()
	f.DurationNsec = r.u32()
	f.Priority = r.u16()
	f.IdleTimeout = r.u16()
	f.HardTimeout = r.u16()
	r.skip(6)
	f.Cookie = r.u64()
	f.PacketCount = r.u64()
	f.ByteCount = r.u64()
	actions, err := decodeActions(r, start+length-r.off)
	if err != nil {
		return nil, err
	}
	f.Actions = actions
	return &f, r.err
}

package openflow

import (
	"encoding/binary"
	"fmt"
)

// Telemetry message types. These extend the OpenFlow 1.0 type space past the
// standard 0..21 range with the streaming-telemetry protocol the RouteFlow
// controller and the emulated switches speak on the existing control channel:
// the controller installs monitor rules with a TELEMETRY_MOD, the switch
// streams counter deltas in TELEMETRY_EXPORT batches, and the controller
// confirms each batch with a TELEMETRY_ACK so the switch can advance its
// delta baseline. A FlowVisor in the path forwards all three (unknown types
// decode to *Raw and re-encode byte for byte), and the substrate broadcasts
// exports to its slices like any other asynchronous switch event.
const (
	TypeTelemetryMod    Type = 22
	TypeTelemetryExport Type = 23
	TypeTelemetryAck    Type = 24
)

// TelemetryExport flags.
const (
	// TelemetryFull marks an export whose entries carry absolute counter
	// values rather than deltas: the switch sends it to (re)establish the
	// controller's baseline — after a new TelemetryMod epoch, a reconnect,
	// or a controller failover — and the receiver must replace, not add.
	TelemetryFull uint8 = 1 << 0
)

// MonitorRule is one flow-monitoring assignment carried by TelemetryMod: the
// switch counts IPv4 packets whose source and destination addresses fall
// inside the two prefixes. Rules installed together are disjoint by
// construction (the placement layer monitors each host pair at exactly one
// switch), so at most one rule matches a packet.
type MonitorRule struct {
	// ID names the monitored flow; it is stable across switches and
	// re-placements so the controller can aggregate by it.
	ID uint32
	// Src/SrcBits and Dst/DstBits are the IPv4 source and destination
	// prefixes (address plus prefix length) the rule matches.
	Src     [4]byte
	SrcBits uint8
	Dst     [4]byte
	DstBits uint8
}

// monitorRuleWireLen is the fixed on-wire size of one MonitorRule.
const monitorRuleWireLen = 14

// TelemetryMod (controller → switch) replaces the switch's whole monitor
// rule set. It is idempotent and level-triggered: the switch keeps counters
// for rules whose (ID, prefixes) survive the replacement and starts fresh
// ones for new rules. Epoch identifies the controller instance that issued
// the rules; when it changes the switch re-baselines every rule with a full
// export so a failed-over controller never double-counts. IntervalMS sets
// the export cadence (0 keeps the switch's current interval).
type TelemetryMod struct {
	MsgXID
	Epoch      uint64
	IntervalMS uint32
	Rules      []MonitorRule
}

// MsgType implements Message.
func (m *TelemetryMod) MsgType() Type { return TypeTelemetryMod }

// AppendTo implements Message.
func (m *TelemetryMod) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *TelemetryMod) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.Epoch)
	b = binary.BigEndian.AppendUint32(b, m.IntervalMS)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Rules)))
	for i := range m.Rules {
		r := &m.Rules[i]
		b = binary.BigEndian.AppendUint32(b, r.ID)
		b = append(b, r.Src[:]...)
		b = append(b, r.SrcBits)
		b = append(b, r.Dst[:]...)
		b = append(b, r.DstBits)
	}
	return b
}

func (m *TelemetryMod) decodeBody(r *rbuf) error {
	m.Epoch = r.u64()
	m.IntervalMS = r.u32()
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n*monitorRuleWireLen > r.remaining() {
		return fmt.Errorf("rule count %d exceeds body (%d bytes left)", n, r.remaining())
	}
	m.Rules = nil
	if n == 0 {
		return nil
	}
	m.Rules = make([]MonitorRule, n)
	for i := range m.Rules {
		ru := &m.Rules[i]
		ru.ID = r.u32()
		copy(ru.Src[:], r.take(4))
		ru.SrcBits = r.u8()
		copy(ru.Dst[:], r.take(4))
		ru.DstBits = r.u8()
	}
	return nil
}

// TelemetryEntry is one monitored flow's counters inside a TelemetryExport:
// deltas since the last acknowledged export, or absolute values when the
// export carries TelemetryFull.
type TelemetryEntry struct {
	ID      uint32
	Packets uint64
	Bytes   uint64
}

// TelemetryExport (switch → controller) is one batch of per-flow counter
// readings. Entries are varint-encoded so a steady state of small deltas
// costs a few bytes per flow. Seq numbers exports within an epoch; the
// controller acknowledges (Epoch, Seq) and the switch then folds the
// exported deltas into its acknowledged baseline. Unacknowledged deltas are
// simply re-sent grown — the counters are cumulative, so the protocol is
// loss-tolerant without retransmission state.
type TelemetryExport struct {
	MsgXID
	Epoch   uint64
	Seq     uint32
	Flags   uint8
	Entries []TelemetryEntry
}

// Full reports whether the entries carry absolute counter values.
func (m *TelemetryExport) Full() bool { return m.Flags&TelemetryFull != 0 }

// MsgType implements Message.
func (m *TelemetryExport) MsgType() Type { return TypeTelemetryExport }

// AppendTo implements Message.
func (m *TelemetryExport) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *TelemetryExport) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.Epoch)
	b = binary.BigEndian.AppendUint32(b, m.Seq)
	b = append(b, m.Flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		b = binary.AppendUvarint(b, uint64(e.ID))
		b = binary.AppendUvarint(b, e.Packets)
		b = binary.AppendUvarint(b, e.Bytes)
	}
	return b
}

func (m *TelemetryExport) decodeBody(r *rbuf) error {
	m.Epoch = r.u64()
	m.Seq = r.u32()
	m.Flags = r.u8()
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	// Each entry is at least three one-byte varints.
	if n*3 > r.remaining() {
		return fmt.Errorf("entry count %d exceeds body (%d bytes left)", n, r.remaining())
	}
	m.Entries = nil
	if n == 0 {
		return nil
	}
	m.Entries = make([]TelemetryEntry, n)
	for i := range m.Entries {
		e := &m.Entries[i]
		id := r.uvarint()
		if id > 0xffffffff {
			if r.err == nil {
				r.err = fmt.Errorf("entry %d: flow id %d overflows uint32", i, id)
			}
			return nil
		}
		e.ID = uint32(id)
		e.Packets = r.uvarint()
		e.Bytes = r.uvarint()
	}
	return nil
}

// TelemetryAck (controller → switch) acknowledges the export numbered Seq in
// Epoch; the switch advances its delta baseline past it. Acks are cheap and
// cumulative in effect — a lost ack only means the next export repeats a
// delta the controller's max-merge absorbs.
type TelemetryAck struct {
	MsgXID
	Epoch uint64
	Seq   uint32
}

// MsgType implements Message.
func (m *TelemetryAck) MsgType() Type { return TypeTelemetryAck }

// AppendTo implements Message.
func (m *TelemetryAck) AppendTo(b []byte) []byte { return appendMessage(b, m) }

func (m *TelemetryAck) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.Epoch)
	return binary.BigEndian.AppendUint32(b, m.Seq)
}

func (m *TelemetryAck) decodeBody(r *rbuf) error {
	m.Epoch = r.u64()
	m.Seq = r.u32()
	return nil
}

// uvarint reads one unsigned LEB128 varint.
func (r *rbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

package openflow

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// frame hand-builds a wire frame with the given header fields and body,
// letting tests lie about the length field.
func frame(version uint8, t Type, length uint16, xid uint32, body []byte) []byte {
	b := []byte{version, uint8(t), 0, 0, 0, 0, 0, 0}
	binary.BigEndian.PutUint16(b[2:], length)
	binary.BigEndian.PutUint32(b[4:], xid)
	return append(b, body...)
}

// validFrame frames body with a correct length field.
func validFrame(t Type, xid uint32, body []byte) []byte {
	return frame(Version, t, uint16(HeaderLen+len(body)), xid, body)
}

// TestUnmarshalMalformed is the table of truncated/oversized/corrupt frames;
// each must fail with an error — never panic, never succeed.
func TestUnmarshalMalformed(t *testing.T) {
	goodFlowMod := Marshal(&FlowMod{Match: MatchAll(), Command: FlowModAdd,
		BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}}})

	corrupt := func(b []byte, off int, v byte) []byte {
		c := append([]byte(nil), b...)
		c[off] = v
		return c
	}

	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short header", []byte{Version, 0}},
		{"seven header bytes", []byte{Version, 0, 0, 8, 0, 0, 0}},
		{"wrong version", frame(0x04, TypeHello, 8, 1, nil)},
		{"length below header", frame(Version, TypeHello, 4, 1, nil)},
		{"length beyond buffer", frame(Version, TypeHello, 200, 1, nil)},
		{"truncated match in flow-mod", validFrame(TypeFlowMod, 1, make([]byte, MatchLen-1))},
		{"flow-mod body ends inside fixed fields", validFrame(TypeFlowMod, 1, make([]byte, MatchLen+10))},
		{"action length zero", corrupt(goodFlowMod, HeaderLen+MatchLen+24+3, 0)},
		{"action length not multiple of 8", corrupt(goodFlowMod, HeaderLen+MatchLen+24+3, 5)},
		{"action length beyond list", corrupt(goodFlowMod, HeaderLen+MatchLen+24+3, 64)},
		{"unknown action type", corrupt(corrupt(goodFlowMod, HeaderLen+MatchLen+24, 0xee), HeaderLen+MatchLen+24+1, 0xee)},
		{"truncated features port", validFrame(TypeFeaturesReply, 1, make([]byte, 24+PhyPortLen-1))},
		{"truncated packet-in fixed fields", validFrame(TypePacketIn, 1, make([]byte, 5))},
		{"packet-out actions_len beyond body", func() []byte {
			body := make([]byte, 8)
			binary.BigEndian.PutUint32(body[0:], NoBuffer)
			binary.BigEndian.PutUint16(body[4:], PortNone)
			binary.BigEndian.PutUint16(body[6:], 0xffff) // actions_len > remaining
			return validFrame(TypePacketOut, 1, body)
		}()},
		{"truncated flow-removed", validFrame(TypeFlowRemoved, 1, make([]byte, MatchLen+10))},
		{"truncated port-status", validFrame(TypePortStatus, 1, make([]byte, 8+PhyPortLen-4))},
		{"flow stats entry length lies", func() []byte {
			body := make([]byte, 4+4)
			binary.BigEndian.PutUint16(body[0:], StatsFlow)
			binary.BigEndian.PutUint16(body[4:], 200) // entry length > body
			return validFrame(TypeStatsReply, 1, body)
		}()},
		{"flow stats entry length below minimum", func() []byte {
			body := make([]byte, 4+88)
			binary.BigEndian.PutUint16(body[0:], StatsFlow)
			binary.BigEndian.PutUint16(body[4:], 8)
			return validFrame(TypeStatsReply, 1, body)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Unmarshal(tc.in)
			if err == nil {
				t.Fatalf("accepted malformed frame as %T", m)
			}
			if !errors.Is(err, ErrBadMessage) {
				t.Fatalf("error %v does not wrap ErrBadMessage", err)
			}
		})
	}
}

func TestUnmarshalInto(t *testing.T) {
	want := &EchoRequest{Data: []byte("probe")}
	want.SetXID(7)
	wire := Marshal(want)

	var got EchoRequest
	if err := UnmarshalInto(wire, &got); err != nil {
		t.Fatal(err)
	}
	if got.XID() != 7 || !bytes.Equal(got.Data, []byte("probe")) {
		t.Fatalf("got %+v", got)
	}

	// Type mismatch must be rejected.
	var wrong Hello
	if err := UnmarshalInto(wire, &wrong); err == nil {
		t.Fatal("echo frame decoded into Hello")
	}

	// A *Raw target accepts any type and keeps the body byte for byte.
	var raw Raw
	if err := UnmarshalInto(wire, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.MsgType() != TypeEchoRequest || raw.XID() != 7 {
		t.Fatalf("raw = %+v", raw)
	}
	if !bytes.Equal(Marshal(&raw), wire) {
		t.Fatal("raw re-encode differs")
	}
}

// TestUnmarshalIntoOverwritesSlices pins the reuse contract: decoding into a
// message that already holds slice data overwrites it rather than
// accumulating across decodes.
func TestUnmarshalIntoOverwritesSlices(t *testing.T) {
	var fr FeaturesReply
	for i := 1; i <= 3; i++ {
		wire := Marshal(&FeaturesReply{DatapathID: uint64(i),
			Ports: []PhyPort{{PortNo: uint16(i), Name: "eth"}}})
		if err := UnmarshalInto(wire, &fr); err != nil {
			t.Fatal(err)
		}
		if len(fr.Ports) != 1 || fr.Ports[0].PortNo != uint16(i) {
			t.Fatalf("decode %d: ports accumulated: %+v", i, fr.Ports)
		}
	}

	var sr StatsReply
	if err := UnmarshalInto(Marshal(&StatsReply{StatsType: StatsFlow, Flows: []FlowStats{
		{Match: MatchAll(), Priority: 1}, {Match: MatchAll(), Priority: 2},
	}}), &sr); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(Marshal(&StatsReply{StatsType: StatsTable, Tables: []TableStats{
		{TableID: 0, Name: "classifier"},
	}}), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Flows) != 0 || len(sr.Tables) != 1 {
		t.Fatalf("variant fields not overwritten: flows=%d tables=%d", len(sr.Flows), len(sr.Tables))
	}
}

// TestAppendToMatchesMarshal pins the append-style contract: AppendTo onto a
// non-empty prefix appends exactly the Marshal bytes.
func TestAppendToMatchesMarshal(t *testing.T) {
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("x")},
		&ErrorMsg{ErrType: 1, Code: 2, Data: []byte{9}},
		&FeaturesReply{DatapathID: 5, Ports: []PhyPort{{PortNo: 1, Name: "eth1"}}},
		&PacketIn{BufferID: 3, InPort: 2, Data: []byte("frame")},
		&PacketOut{BufferID: NoBuffer, InPort: PortNone,
			Actions: []Action{&ActionOutput{Port: 2}}, Data: []byte("p")},
		&FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
			OutPort: PortNone, Actions: []Action{&ActionOutput{Port: 1}}},
		&StatsRequest{StatsType: StatsDesc},
		&BarrierRequest{},
		&Raw{T: TypeQueueGetConfigReq, Body: []byte{0, 5, 0, 0}},
	}
	for _, m := range msgs {
		m.SetXID(42)
		prefix := []byte("prefix")
		out := m.AppendTo(append([]byte(nil), prefix...))
		if !bytes.Equal(out[:len(prefix)], prefix) {
			t.Fatalf("%v: AppendTo clobbered the prefix", m.MsgType())
		}
		if !bytes.Equal(out[len(prefix):], Marshal(m)) {
			t.Fatalf("%v: AppendTo differs from Marshal", m.MsgType())
		}
	}
}

func TestDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	var want []Message
	for i := 1; i <= 50; i++ {
		m := &EchoRequest{Data: bytes.Repeat([]byte{byte(i)}, i*20)}
		m.SetXID(uint32(i))
		want = append(want, m)
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("message %d: got %+v want %+v", i, got, w)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestDecoderMessagesDoNotAliasScratch pins the reuse contract: a decoded
// message must stay intact after later decodes overwrite the scratch buffer.
func TestDecoderMessagesDoNotAliasScratch(t *testing.T) {
	var buf bytes.Buffer
	first := &PacketIn{BufferID: 1, InPort: 1, Data: bytes.Repeat([]byte{0xAA}, 100)}
	second := &PacketIn{BufferID: 2, InPort: 2, Data: bytes.Repeat([]byte{0xBB}, 100)}
	for _, m := range []Message{first, second} {
		m.SetXID(1)
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	got1, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1.(*PacketIn).Data, first.Data) {
		t.Fatal("first message corrupted by scratch reuse")
	}
}

func TestDecoderTruncatedBody(t *testing.T) {
	b := Marshal(&EchoRequest{Data: []byte("0123456789")})
	dec := NewDecoder(bytes.NewReader(b[:12]))
	if _, err := dec.Decode(); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestWriteBatchSingleWrite(t *testing.T) {
	var msgs []Message
	for i := 1; i <= 20; i++ {
		fm := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
			OutPort: PortNone, Actions: []Action{&ActionOutput{Port: uint16(i)}}}
		fm.SetXID(uint32(i))
		msgs = append(msgs, fm)
	}
	w := &countingWriter{}
	if err := WriteBatch(w, msgs); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("batch took %d writes, want 1", w.writes)
	}
	// The concatenated stream must decode back to the same messages.
	dec := NewDecoder(bytes.NewReader(w.buf.Bytes()))
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d differs after batch round trip", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("trailing bytes after batch: %v", err)
	}
}

func TestMessageWriterStickyError(t *testing.T) {
	w := &failingWriter{}
	mw := NewMessageWriter(w)
	mw.Append(&Hello{})
	if err := mw.Flush(); err == nil {
		t.Fatal("flush to failing writer succeeded")
	}
	mw.Append(&Hello{})
	if err := mw.Flush(); err == nil {
		t.Fatal("error not sticky")
	}
	if w.writes != 1 {
		t.Fatalf("writer called %d times after error, want 1", w.writes)
	}
}

func TestMessageWriterEmptyFlush(t *testing.T) {
	w := &countingWriter{}
	mw := NewMessageWriter(w)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.writes != 0 {
		t.Fatal("empty flush wrote")
	}
}

// TestPumpBatchedCoalesces drives the shared write loop with a pre-filled
// queue and checks the burst reaches the wire in far fewer writes than
// messages while preserving order.
func TestPumpBatchedCoalesces(t *testing.T) {
	const n = 64
	ch := make(chan Message, n)
	for i := 1; i <= n; i++ {
		fm := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
			OutPort: PortNone, Actions: []Action{&ActionOutput{Port: uint16(i)}}}
		fm.SetXID(uint32(i))
		ch <- fm
	}
	stop := make(chan struct{})
	w := &countingWriter{}
	done := make(chan error, 1)
	go func() { done <- PumpBatched(w, ch, stop) }()

	// The queue was full before the pump started, so the first receive
	// drains everything into one batch (the flow-mod burst is ~5KiB, well
	// under the flush threshold).
	deadline := 0
	for len(ch) > 0 && deadline < 1000 {
		deadline++
		netSleep()
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if w.writes >= n/4 {
		t.Fatalf("burst of %d messages took %d writes; batching is not coalescing", n, w.writes)
	}
	dec := NewDecoder(bytes.NewReader(w.buf.Bytes()))
	for i := 1; i <= n; i++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if m.XID() != uint32(i) {
			t.Fatalf("message %d out of order: xid %d", i, m.XID())
		}
	}
}

// TestPumpBatchedFlushesAtBarrier checks a barrier ends its batch rather
// than coalescing messages queued behind it into the same write.
func TestPumpBatchedFlushesAtBarrier(t *testing.T) {
	ch := make(chan Message, 8)
	fm := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer, OutPort: PortNone}
	fm.SetXID(1)
	br := &BarrierRequest{}
	br.SetXID(2)
	after := &Hello{}
	after.SetXID(3)
	ch <- fm
	ch <- br
	ch <- after

	stop := make(chan struct{})
	w := &countingWriter{}
	done := make(chan error, 1)
	go func() { done <- PumpBatched(w, ch, stop) }()
	deadline := 0
	for len(ch) > 0 && deadline < 1000 {
		deadline++
		netSleep()
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if w.writes < 2 {
		t.Fatalf("barrier did not delimit the batch: %d writes", w.writes)
	}
	dec := NewDecoder(bytes.NewReader(w.buf.Bytes()))
	for want := uint32(1); want <= 3; want++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.XID() != want {
			t.Fatalf("xid %d, want %d", m.XID(), want)
		}
	}
}

// TestBatchedLoopsInterop runs the real thing end to end: a PumpBatched
// writer on one side of a pipe, a Decoder on the other.
func TestBatchedLoopsInterop(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	const n = 100
	ch := make(chan Message, n)
	stop := make(chan struct{})
	defer close(stop)
	go PumpBatched(client, ch, stop) //nolint:errcheck

	go func() {
		for i := 1; i <= n; i++ {
			m := &EchoRequest{Data: []byte{byte(i)}}
			m.SetXID(uint32(i))
			ch <- m
		}
	}()

	dec := NewDecoder(server)
	for i := 1; i <= n; i++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if m.XID() != uint32(i) {
			t.Fatalf("message %d: xid %d", i, m.XID())
		}
	}
}

// netSleep is the polling interval of the drain-wait loops.
func netSleep() { time.Sleep(time.Millisecond) }

type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

type failingWriter struct{ writes int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("wire down")
}

package openflow

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"

	"routeflow/internal/pkt"
)

// Wildcard flag bits of ofp_match.wildcards (OpenFlow 1.0 §5.2.3).
const (
	WildcardInPort     uint32 = 1 << 0
	WildcardDlVlan     uint32 = 1 << 1
	WildcardDlSrc      uint32 = 1 << 2
	WildcardDlDst      uint32 = 1 << 3
	WildcardDlType     uint32 = 1 << 4
	WildcardNwProto    uint32 = 1 << 5
	WildcardTpSrc      uint32 = 1 << 6
	WildcardTpDst      uint32 = 1 << 7
	wildcardNwSrcShift        = 8
	wildcardNwDstShift        = 14
	WildcardNwSrcMask  uint32 = 0x3f << wildcardNwSrcShift
	WildcardNwDstMask  uint32 = 0x3f << wildcardNwDstShift
	WildcardDlVlanPcp  uint32 = 1 << 20
	WildcardNwTos      uint32 = 1 << 21
	// WildcardAll wildcards every field.
	WildcardAll uint32 = (1 << 22) - 1
)

// MatchLen is the encoded size of ofp_match.
const MatchLen = 40

// Match is the OpenFlow 1.0 12-tuple flow match. NwSrc/NwDst prefix
// wildcarding is encoded in Wildcards per the spec: the 6-bit subfields
// give the number of low-order bits to ignore (>=32 wildcards the field).
type Match struct {
	Wildcards    uint32
	InPort       uint16
	DlSrc, DlDst pkt.MAC
	DlVlan       uint16
	DlVlanPcp    uint8
	DlType       uint16
	NwTos        uint8
	NwProto      uint8
	NwSrc, NwDst [4]byte
	TpSrc, TpDst uint16
}

// MatchAll returns the fully wildcarded match.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// NwSrcIgnoredBits returns how many low-order bits of NwSrc are ignored
// (0 = exact, >=32 = fully wildcarded).
func (m *Match) NwSrcIgnoredBits() int {
	return int((m.Wildcards & WildcardNwSrcMask) >> wildcardNwSrcShift)
}

// NwDstIgnoredBits returns how many low-order bits of NwDst are ignored.
func (m *Match) NwDstIgnoredBits() int {
	return int((m.Wildcards & WildcardNwDstMask) >> wildcardNwDstShift)
}

// SetNwSrcPrefix sets NwSrc to match the given prefix.
func (m *Match) SetNwSrcPrefix(p netip.Prefix) {
	m.NwSrc = p.Addr().As4()
	ignored := uint32(32 - p.Bits())
	m.Wildcards = m.Wildcards&^WildcardNwSrcMask | ignored<<wildcardNwSrcShift
}

// SetNwDstPrefix sets NwDst to match the given prefix.
func (m *Match) SetNwDstPrefix(p netip.Prefix) {
	m.NwDst = p.Addr().As4()
	ignored := uint32(32 - p.Bits())
	m.Wildcards = m.Wildcards&^WildcardNwDstMask | ignored<<wildcardNwDstShift
}

// NwDstPrefix reports the destination prefix this match selects.
func (m *Match) NwDstPrefix() netip.Prefix {
	bits := 32 - m.NwDstIgnoredBits()
	if bits < 0 {
		bits = 0
	}
	return netip.PrefixFrom(netip.AddrFrom4(m.NwDst), bits).Masked()
}

// FNV-1a 64-bit parameters (hash/fnv, inlined so the hot path stays
// alloc-free and inlinable).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyHash hashes the exact-match key form of m — the canonical identity of
// one microflow, as produced by ExtractKey — into 64 bits suitable for
// indexing a fixed-size exact-match cache. It is alloc-free and runs on the
// dataplane's per-packet path. Wildcards participate in the hash, so a key
// and a wildcarded match never alias unless they are structurally equal;
// Match is comparable, so cache consumers verify candidates with ==.
func (m *Match) KeyHash() uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ (uint64(m.InPort) | uint64(m.DlVlan)<<16 | uint64(m.DlType)<<32 |
		uint64(m.DlVlanPcp)<<48 | uint64(m.NwTos)<<56)) * fnvPrime64
	h = (h ^ (macBits(m.DlSrc) | uint64(m.NwProto)<<48 | uint64(m.Wildcards&0xff)<<56)) * fnvPrime64
	h = (h ^ (macBits(m.DlDst) | uint64(m.TpSrc)<<48)) * fnvPrime64
	h = (h ^ (uint64(addr4ToU32(m.NwSrc)) | uint64(addr4ToU32(m.NwDst))<<32)) * fnvPrime64
	h = (h ^ (uint64(m.TpDst) | uint64(m.Wildcards)<<16)) * fnvPrime64
	// Avalanche finalizer (murmur3 fmix64): FNV's multiply only carries
	// entropy upward, so without this, key fields mixed into high bits
	// would never influence the low bits a power-of-two cache indexes by —
	// same-port microflows differing only in address/port octets would
	// pile into a handful of slots.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func macBits(m pkt.MAC) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

func prefixMask(ignoredBits int) uint32 {
	if ignoredBits >= 32 {
		return 0
	}
	if ignoredBits <= 0 {
		return ^uint32(0)
	}
	return ^uint32(0) << uint(ignoredBits)
}

func addr4ToU32(a [4]byte) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// Covers reports whether m matches the exact packet key k (a Match with no
// wildcards, as produced by ExtractKey). Fields wildcarded in m are ignored;
// all others must be equal, with prefix semantics for nw_src/nw_dst.
func (m *Match) Covers(k *Match) bool {
	w := m.Wildcards
	if w&WildcardInPort == 0 && m.InPort != k.InPort {
		return false
	}
	if w&WildcardDlSrc == 0 && m.DlSrc != k.DlSrc {
		return false
	}
	if w&WildcardDlDst == 0 && m.DlDst != k.DlDst {
		return false
	}
	if w&WildcardDlVlan == 0 && m.DlVlan != k.DlVlan {
		return false
	}
	if w&WildcardDlVlanPcp == 0 && m.DlVlanPcp != k.DlVlanPcp {
		return false
	}
	if w&WildcardDlType == 0 && m.DlType != k.DlType {
		return false
	}
	if w&WildcardNwTos == 0 && m.NwTos != k.NwTos {
		return false
	}
	if w&WildcardNwProto == 0 && m.NwProto != k.NwProto {
		return false
	}
	if mask := prefixMask(m.NwSrcIgnoredBits()); addr4ToU32(m.NwSrc)&mask != addr4ToU32(k.NwSrc)&mask {
		return false
	}
	if mask := prefixMask(m.NwDstIgnoredBits()); addr4ToU32(m.NwDst)&mask != addr4ToU32(k.NwDst)&mask {
		return false
	}
	if w&WildcardTpSrc == 0 && m.TpSrc != k.TpSrc {
		return false
	}
	if w&WildcardTpDst == 0 && m.TpDst != k.TpDst {
		return false
	}
	return true
}

// ExtractKey classifies an Ethernet frame received on inPort into an exact
// match key, following OpenFlow 1.0 header-parsing rules (fields beyond the
// parsed protocol stay zero). It runs on the dataplane's per-packet path and
// does not allocate.
func ExtractKey(inPort uint16, frame []byte) (Match, error) {
	var k Match
	k.InPort = inPort
	var f pkt.Frame
	if err := pkt.DecodeFrameInto(&f, frame); err != nil {
		return k, err
	}
	k.DlSrc, k.DlDst = f.Src, f.Dst
	k.DlType = uint16(f.Type)
	if f.VLANID != 0 {
		k.DlVlan = f.VLANID
	} else {
		k.DlVlan = 0xffff // OFP_VLAN_NONE
	}
	switch f.Type {
	case pkt.EtherTypeIPv4:
		var ip pkt.IPv4
		if err := pkt.DecodeIPv4Into(&ip, f.Payload); err != nil {
			return k, nil // not further classifiable; L2 fields still valid
		}
		k.NwTos = ip.TOS
		k.NwProto = uint8(ip.Proto)
		k.NwSrc = ip.Src.As4()
		k.NwDst = ip.Dst.As4()
		switch ip.Proto {
		case pkt.ProtoUDP:
			var u pkt.UDP
			if err := pkt.DecodeUDPInto(&u, ip.Payload, ip.Src, ip.Dst); err == nil {
				k.TpSrc, k.TpDst = u.SrcPort, u.DstPort
			}
		case pkt.ProtoICMP:
			var m pkt.ICMP
			if err := pkt.DecodeICMPInto(&m, ip.Payload); err == nil {
				k.TpSrc, k.TpDst = uint16(m.Type), uint16(m.Code)
			}
		}
	case pkt.EtherTypeARP:
		var a pkt.ARP
		if err := pkt.DecodeARPInto(&a, f.Payload); err == nil {
			k.NwProto = uint8(a.Op) // OF1.0 carries the ARP opcode in nw_proto
			k.NwSrc = a.SenderIP.As4()
			k.NwDst = a.TargetIP.As4()
		}
	}
	return k, nil
}

func (m *Match) appendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.Wildcards)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.DlSrc[:]...)
	b = append(b, m.DlDst[:]...)
	b = binary.BigEndian.AppendUint16(b, m.DlVlan)
	b = append(b, m.DlVlanPcp, 0)
	b = binary.BigEndian.AppendUint16(b, m.DlType)
	b = append(b, m.NwTos, m.NwProto, 0, 0)
	b = append(b, m.NwSrc[:]...)
	b = append(b, m.NwDst[:]...)
	b = binary.BigEndian.AppendUint16(b, m.TpSrc)
	b = binary.BigEndian.AppendUint16(b, m.TpDst)
	return b
}

func (m *Match) decode(r *rbuf) {
	m.Wildcards = r.u32()
	m.InPort = r.u16()
	copy(m.DlSrc[:], r.take(6))
	copy(m.DlDst[:], r.take(6))
	m.DlVlan = r.u16()
	m.DlVlanPcp = r.u8()
	r.skip(1)
	m.DlType = r.u16()
	m.NwTos = r.u8()
	m.NwProto = r.u8()
	r.skip(2)
	copy(m.NwSrc[:], r.take(4))
	copy(m.NwDst[:], r.take(4))
	m.TpSrc = r.u16()
	m.TpDst = r.u16()
}

// String renders only the non-wildcarded fields.
func (m *Match) String() string {
	if m.Wildcards == WildcardAll {
		return "match{*}"
	}
	var parts []string
	add := func(bit uint32, f string, v any) {
		if m.Wildcards&bit == 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", f, v))
		}
	}
	add(WildcardInPort, "in_port", m.InPort)
	add(WildcardDlSrc, "dl_src", m.DlSrc)
	add(WildcardDlDst, "dl_dst", m.DlDst)
	add(WildcardDlType, "dl_type", fmt.Sprintf("0x%04x", m.DlType))
	add(WildcardNwProto, "nw_proto", m.NwProto)
	if m.NwSrcIgnoredBits() < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%v/%d", netip.AddrFrom4(m.NwSrc), 32-m.NwSrcIgnoredBits()))
	}
	if m.NwDstIgnoredBits() < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%v/%d", netip.AddrFrom4(m.NwDst), 32-m.NwDstIgnoredBits()))
	}
	add(WildcardTpSrc, "tp_src", m.TpSrc)
	add(WildcardTpDst, "tp_dst", m.TpDst)
	return "match{" + strings.Join(parts, ",") + "}"
}

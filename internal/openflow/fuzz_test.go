package openflow

import (
	"bytes"
	"testing"

	"routeflow/internal/pkt"
)

// FuzzUnmarshal throws arbitrary bytes at the decoder. The invariants:
// Unmarshal never panics; when it accepts a frame, re-encoding the decoded
// message and decoding that again must succeed and agree on type and XID
// (a full fixed point is not required — e.g. vendor action padding is
// canonicalized — but the canonical form must be stable).
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: one well-formed frame of every modeled message plus the
	// malformed shapes the table tests cover.
	seeds := []Message{
		&Hello{},
		&ErrorMsg{ErrType: ErrTypeBadRequest, Code: ErrCodeBadRequestEperm, Data: []byte{1, 2}},
		&EchoRequest{Data: []byte("probe")},
		&EchoReply{Data: []byte("probe")},
		&Vendor{VendorID: 0x2320, Data: []byte("nicira")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 0xbeef, NBuffers: 256, NTables: 1,
			Ports: []PhyPort{{PortNo: 1, HWAddr: pkt.LocalMAC(1), Name: "eth1"}}},
		&GetConfigRequest{},
		&GetConfigReply{MissSendLen: 128},
		&SetConfig{MissSendLen: 0xffff},
		&PacketIn{BufferID: NoBuffer, TotalLen: 64, InPort: 3, Data: []byte("frame")},
		&PacketOut{BufferID: NoBuffer, InPort: PortNone,
			Actions: []Action{&ActionOutput{Port: 2}}, Data: []byte("payload")},
		&FlowRemoved{Match: MatchAll(), Cookie: 9, PacketCount: 1},
		&PortStatus{Reason: PortReasonModify, Desc: PhyPort{PortNo: 7, Name: "p7"}},
		&FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
			OutPort: PortNone, Actions: []Action{
				&ActionSetDlSrc{Addr: pkt.LocalMAC(1)},
				&ActionOutput{Port: 4},
			}},
		&FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer,
			OutPort: PortNone, Actions: []Action{
				&ActionMultipath{Buckets: []MultipathBucket{
					{DlSrc: pkt.LocalMAC(1), DlDst: pkt.LocalMAC(2), Port: 2},
					{DlSrc: pkt.LocalMAC(1), DlDst: pkt.LocalMAC(3), Port: 3},
				}},
			}},
		&StatsRequest{StatsType: StatsFlow,
			Flow: &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}},
		&StatsReply{StatsType: StatsDesc, Desc: &DescStats{Manufacturer: "routeflow"}},
		&BarrierRequest{},
		&BarrierReply{},
		&Raw{T: TypeQueueGetConfigReq, Body: []byte{0, 5, 0, 0}},
		&TelemetryMod{Epoch: 7, IntervalMS: 250, Rules: []MonitorRule{
			{ID: 1, Src: [4]byte{10, 1, 0, 0}, SrcBits: 24, Dst: [4]byte{10, 2, 0, 0}, DstBits: 24}}},
		&TelemetryExport{Epoch: 7, Seq: 3, Flags: TelemetryFull,
			Entries: []TelemetryEntry{{ID: 1, Packets: 12, Bytes: 18000}}},
		&TelemetryAck{Epoch: 7, Seq: 3},
	}
	for i, m := range seeds {
		m.SetXID(uint32(i + 1))
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 0, 4})                           // length below header
	f.Add(frame(Version, TypeFlowMod, 200, 1, nil))           // length beyond buffer
	f.Add(validFrame(TypeFlowMod, 1, make([]byte, 45)))       // truncated flow-mod
	f.Add(validFrame(TypeFeaturesReply, 1, make([]byte, 25))) // trailing port bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		wire := Marshal(m)
		m2, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\nwire: %x", err, wire)
		}
		if m2.MsgType() != m.MsgType() || m2.XID() != m.XID() {
			t.Fatalf("type/xid changed across round trip: %v/%d vs %v/%d",
				m.MsgType(), m.XID(), m2.MsgType(), m2.XID())
		}
		if !bytes.Equal(Marshal(m2), wire) {
			t.Fatalf("canonical form is not stable:\n first %x\nsecond %x", wire, Marshal(m2))
		}
	})
}

package scenario

import (
	"time"

	"routeflow/internal/core"
	"routeflow/internal/quagga"
	"routeflow/internal/topo"
)

// gentle widens a spec's timers for larger fabrics: at grid/fat-tree scale
// under the race detector, 20ms hellos would miss dead intervals on a loaded
// single-core runner and read scheduler noise as link loss.
func gentle(s Spec) Spec {
	s.ProbeInterval = 50 * time.Millisecond
	s.LinkTTL = 300 * time.Millisecond
	s.Timers = quagga.Timers{
		Hello:    60 * time.Millisecond,
		Dead:     300 * time.Millisecond,
		SPFDelay: 10 * time.Millisecond,
		// BGP hold is the same order as discovery's link-loss detection
		// (LinkTTL), so a cut border session dies by whichever fires first —
		// hold expiry or the administrative neighbor teardown. Flap damping
		// charges both paths, and its state survives the teardown.
		BGPHold:         300 * time.Millisecond,
		BGPConnectRetry: 75 * time.Millisecond,
	}
	s.ConvergeTimeout = 120 * time.Second
	return s
}

// slowDetect widens discovery's link TTL past the BGP hold time, so a cut
// border link deterministically expires its session (hold timer) before the
// control plane can deconfigure the neighbor.
func slowDetect(s Spec) Spec {
	s.LinkTTL = 3 * s.Timers.BGPHold
	return s
}

// damped slows the flap-damping penalty decay so a scripted flap storm
// reliably drives an eBGP peer over the suppress threshold.
func damped(s Spec) Spec {
	s.Timers.BGPDampHalfLife = 8 * time.Second
	return s
}

// multiASMixed stitches a ring AS and a grid AS with two redundant border
// links — the mixed-generator composite of the inter-domain family.
func multiASMixed() *topo.Graph {
	g, err := topo.MultiAS("multias-ring+grid", []topo.ASMember{
		{ASN: 64512, Graph: topo.Ring(4)},
		{ASN: 64513, Graph: topo.Grid(2, 2)},
	}, []topo.BorderLink{
		{AIndex: 0, ANode: 0, BIndex: 1, BNode: 0},
		{AIndex: 0, ANode: 2, BIndex: 1, BNode: 3},
	})
	if err != nil {
		panic(err) // unreachable: the composite is statically valid
	}
	return g
}

// Curated returns the named scenario suite CI gates on: ≥10 scenarios
// spanning link failure and flap storms, partitions, switch crashes,
// rf-server restarts (steady-state and mid-convergence), RPC loss bursts
// and stream continuity. Specs are rebuilt on every call, so runs never
// share topology state.
func Curated() []Spec {
	return []Spec{
		{
			// The plain failover: one ring link dies, traffic reroutes the
			// long way, the link returns, the network re-optimizes. Telemetry
			// rides along: the monitoring program must follow the reroute and
			// the flow views must conserve counters across the move.
			Name:        "ring4-link-down-up",
			Description: "single ring link fails and returns; reroute then re-optimize",
			Topology:    topo.Ring(4), HostNodes: []int{0, 2}, Seed: 1,
			Telemetry: true,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0},
				{Kind: FaultLinkUp, Link: 0},
			},
		},
		{
			// A flap storm: five down/up cycles paced past LinkTTL, settling
			// once at the end — the declarative pipeline must converge to the
			// final state no matter how the churn interleaved.
			Name:        "ring4-link-flap-storm",
			Description: "five down/up cycles on one link; converge to the final state",
			Topology:    topo.Ring(4), HostNodes: []int{0, 2}, Seed: 2,
			Faults: []Fault{
				{Kind: FaultLinkFlap, Link: 0, Count: 5},
			},
		},
		{
			// The last path between the host pair dies: the network must
			// converge *as a partition* (quiesced, honestly unreachable
			// across the cut — the PR's bugfix regression), then heal.
			Name:        "ring4-partition-heal",
			Description: "last path dies: honest partition, then heal",
			Topology:    topo.Ring(4), HostNodes: []int{0, 2}, Seed: 3,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0, NoSettle: true},
				{Kind: FaultLinkDown, Link: 2},
				{Kind: FaultLinkUp, Link: 0, NoSettle: true},
				{Kind: FaultLinkUp, Link: 2},
			},
		},
		{
			// A transit switch crashes: flow table gone, control session cut.
			// The dialer reconnects, discovery re-learns it, the reconciler
			// rebuilds its VM and flows.
			// Telemetry rides along: the reboot zeroes the monitor's absolute
			// counters, so the stream must re-baseline (FULL below the applied
			// level) without the view ever double counting or running backward.
			Name:        "ring5-switch-crash",
			Description: "transit switch reboots; VM and flows are rebuilt",
			Topology:    topo.Ring(5), HostNodes: []int{0, 3}, Seed: 4,
			Telemetry: true,
			Faults: []Fault{
				{Kind: FaultSwitchCrash, Node: 2},
			},
		},
		{
			// rf-server restart at steady state: only the idle epoch probe
			// can notice; the full desired state must be re-synced.
			Name:        "ring6-server-restart",
			Description: "rf-server restart at steady state; epoch probe triggers re-sync",
			Topology:    topo.Ring(6), HostNodes: []int{0, 3}, Seed: 5,
			Faults: []Fault{
				{Kind: FaultServerRestart},
			},
		},
		{
			// rf-server restart *mid-convergence*: the restart races the
			// initial configuration push; acked-then-lost state must be
			// replayed before the first quiesce.
			Name:        "ring6-server-restart-midconverge",
			Description: "rf-server restart races the initial configuration push",
			Topology:    topo.Ring(6), HostNodes: []int{0, 3}, Seed: 6,
			Faults: []Fault{
				{Kind: FaultServerRestart, PreConverge: true},
				{Kind: FaultLinkFlap, Link: 1, Count: 1},
			},
		},
		{
			// An RPC loss burst (25% of control-channel frames dropped)
			// while a link flaps, then the burst clears: the reconciler
			// carries convergence through the loss and the clean settle
			// confirms nothing stayed wedged.
			Name:        "ring4-rpc-loss-burst",
			Description: "25% control-channel loss burst under a link flap",
			Topology:    topo.Ring(4), HostNodes: []int{0, 2}, Seed: 7,
			Faults: []Fault{
				{Kind: FaultRPCLoss, Rate: 0.25, NoSettle: true},
				{Kind: FaultLinkFlap, Link: 1, Count: 2},
				{Kind: FaultRPCLoss, Rate: 0},
			},
		},
		gentle(Spec{
			// A seed-derived random storm on a 3×3 grid: the schedule is a
			// pure function of the seed, so this leg is as reproducible as
			// the scripted ones.
			Name:        "grid9-random-storm",
			Description: "seed-derived random fault storm on a 3x3 grid",
			Topology:    topo.Grid(3, 3), HostNodes: []int{0, 8}, Seed: 1007,
			RandomFaults: 3,
		}),
		gentle(Spec{
			// Crash the grid's center switch — the highest-degree node —
			// and require full recovery.
			Name:        "grid9-switch-crash",
			Description: "highest-degree grid switch crashes and recovers",
			Topology:    topo.Grid(3, 3), HostNodes: []int{0, 8}, Seed: 9,
			Faults: []Fault{
				{Kind: FaultSwitchCrash, Node: 4},
			},
		}),
		gentle(Spec{
			// Data-center fabric: kill a pod-0 aggregation→core uplink in a
			// k=4 fat-tree. The fabric is single-link redundant, so the
			// settle must report *no* partition and cross-pod hosts stay
			// reachable throughout.
			Name:        "fattree4-core-link-down",
			Description: "fat-tree uplink dies; no partition, cross-pod hosts stay reachable",
			Topology:    topo.FatTree(4), HostNodes: []int{6, 18}, Seed: 10,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0},
				{Kind: FaultLinkUp, Link: 0},
			},
		}),
		{
			// Distributed-controller family: two replicas split the ring and
			// replica 1 is crash-killed *mid-convergence* — before the initial
			// configuration finishes. Its leases lapse, the survivor adopts
			// the orphaned switches (delete-all + replay, fenced by the
			// transfer epoch), and the network must still reach the exact
			// converged state, then absorb a link failure on top.
			// Telemetry rides along: the killed replica's aggregator views die
			// with it, so the survivor must re-own the orphaned flows and
			// rebuild views from FULL re-baselines — counted exactly once.
			Name:        "ring6-master-kill-midconverge",
			Description: "replica killed mid-convergence; survivor adopts its switches and converges",
			Topology:    topo.Ring(6), HostNodes: []int{0, 3}, Seed: 31,
			Telemetry: true,
			Cluster: core.ClusterSpec{
				Replicas:   2,
				LeaseTTL:   500 * time.Millisecond,
				LeaseRenew: 100 * time.Millisecond,
			},
			Faults: []Fault{
				{Kind: FaultReplicaKill, Replica: 1, PreConverge: true},
				{Kind: FaultLinkDown, Link: 2},
				{Kind: FaultLinkUp, Link: 2},
			},
		},
		gentle(Spec{
			// Three replicas shard a 3×3 grid; replica 2 is partitioned from
			// its switches and the coordination service. Its leases lapse, it
			// self-fences (releases its VMs), the survivors take over; the
			// heal triggers the cooperative rebalance that hands its shards
			// back — each handoff a full wipe-and-replay under a fresh epoch.
			Name:        "grid9-replica-partition-heal",
			Description: "partitioned replica self-fences and re-adopts its shards on heal",
			Topology:    topo.Grid(3, 3), HostNodes: []int{0, 8}, Seed: 32,
			Cluster: core.ClusterSpec{
				Replicas:   3,
				LeaseTTL:   500 * time.Millisecond,
				LeaseRenew: 100 * time.Millisecond,
			},
			Faults: []Fault{
				{Kind: FaultReplicaPartition, Replica: 2},
				{Kind: FaultReplicaHeal, Replica: 2},
			},
		}),
		{
			// The paper's workload under churn: a video stream crosses the
			// ring from cold start while an off-path-or-not link flaps twice;
			// the client's sequence gaps must stay inside the budget.
			// Telemetry rides along: conservation is checked while the stream
			// keeps generating monitored traffic — the hardest case for the
			// never-exceeds-absolute and pinned-catch-up pair.
			Name:        "ring4-video-continuity",
			Description: "video stream survives a double link flap within the gap budget",
			Topology:    topo.Ring(4), HostNodes: []int{0, 2}, Seed: 11,
			Telemetry: true,
			Streams:   [][2]int{{0, 2}}, GapBudget: 400,
			Faults: []Fault{
				{Kind: FaultLinkFlap, Link: 1, Count: 2},
			},
		},

		// ——— Inter-domain family: ring of three ring-shaped ASes (nodes
		// 0-2 = AS 64512, 3-5 = AS 64513, 6-8 = AS 64514; links 9/10/11 are
		// the eBGP borders). Routing inside each AS is OSPF; across borders
		// it is eBGP with full-mesh iBGP over loopbacks inside each domain.
		slowDetect(gentle(Spec{
			// Cut the AS0–AS1 border: discovery's detection is slowed past
			// the hold time, so the eBGP session deterministically dies by
			// hold-timer expiry, its routes are withdrawn, and traffic
			// re-selects the longer AS path through the backup domain; the
			// heal re-optimizes.
			Name:        "multias3-border-down-up",
			Description: "eBGP hold expiry on a cut border; path re-selects through the backup AS",
			Topology:    topo.ASRing(3, 3), HostNodes: []int{1, 4}, Seed: 21,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 9},
				{Kind: FaultLinkUp, Link: 9},
			},
		})),
		gentle(Spec{
			// Cut both of AS0's borders: the domain is honestly partitioned
			// from the rest of the internetwork — cross-AS pings must fail,
			// the sessions must drop, and the heal restores everything.
			Name:        "multias3-as-partition-honesty",
			Description: "double border cut isolates one AS; partition is honest, heal recovers",
			Topology:    topo.ASRing(3, 3), HostNodes: []int{1, 4}, Seed: 22,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 9, NoSettle: true},
				{Kind: FaultLinkDown, Link: 11},
				{Kind: FaultLinkUp, Link: 9, NoSettle: true},
				{Kind: FaultLinkUp, Link: 11},
			},
		}),
		damped(gentle(Spec{
			// A flapping eBGP peer: three losses of Established charge the
			// damping penalty past suppression, so the flapped border's
			// routes stay excluded while traffic holds the backup-AS path;
			// the network still converges (and later reuses the peer).
			Name:        "multias3-ebgp-flap-damping",
			Description: "flapping eBGP border is damped; traffic rides the backup AS meanwhile",
			Topology:    topo.ASRing(3, 3), HostNodes: []int{1, 4}, Seed: 23,
			Faults: []Fault{
				{Kind: FaultLinkFlap, Link: 9, Count: 3},
			},
		})),
		gentle(Spec{
			// Mixed-generator composite (ring AS + grid AS, two redundant
			// borders): crash a border router; its VM, eBGP session and
			// flows are rebuilt while the second border carries traffic.
			Name:        "multias-mixed-border-crash",
			Description: "border router crash in a ring+grid composite; redundant border carries on",
			Topology:    multiASMixed(), HostNodes: []int{1, 6}, Seed: 24,
			Faults: []Fault{
				{Kind: FaultSwitchCrash, Node: 0},
			},
		}),

		// ——— Traffic-engineering family: the online optimizer migrates
		// Zipf-skewed, time-shifting load across equal-cost paths while the
		// scheduled faults race it. Every invariant — no-loop, no-blackhole,
		// flow/pin consistency, telemetry placement and conservation — must
		// hold at every quiesce point with the optimizer live.
		gentle(Spec{
			// A k=4 fat-tree under a shifting hot spot: the fleet's heavy
			// hitters walk across host pairs while a pod-0 uplink dies and
			// returns — the TE loop races rerouting, and a TE pin whose path
			// loses the link must fall back instead of blackholing.
			Name:        "fattree4-te-hotlink-shift",
			Description: "TE migrates shifting hot flows while a fat-tree uplink dies and returns",
			Topology:    topo.FatTree(4), HostNodes: []int{6, 7, 18, 19}, Seed: 40,
			TE: true, FleetStreams: 400,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0},
				{Kind: FaultLinkUp, Link: 0},
			},
		}),
		gentle(Spec{
			// Two replicas shard a 3×3 grid with TE running; replica 1 is
			// killed. The survivor adopts its switches, re-seeds their pins
			// from the deployment's assignment state, and the optimizer keeps
			// going — counters exactly-once across the failover.
			Name:        "grid9-te-master-kill",
			Description: "TE keeps optimizing through a master replica kill",
			Topology:    topo.Grid(3, 3), HostNodes: []int{0, 2, 6, 8}, Seed: 41,
			TE: true, FleetStreams: 300,
			Cluster: core.ClusterSpec{
				Replicas:   2,
				LeaseTTL:   500 * time.Millisecond,
				LeaseRenew: 100 * time.Millisecond,
			},
			Faults: []Fault{
				{Kind: FaultReplicaKill, Replica: 1},
			},
		}),
	}
}

// Names lists the curated scenario names in suite order (the CI matrix).
func Names() []string {
	specs := Curated()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns a fresh spec for one curated scenario.
func ByName(name string) (Spec, bool) {
	for _, s := range Curated() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

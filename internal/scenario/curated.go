package scenario

import (
	"time"

	"routeflow/internal/quagga"
	"routeflow/internal/topo"
)

// gentle widens a spec's timers for larger fabrics: at grid/fat-tree scale
// under the race detector, 20ms hellos would miss dead intervals on a loaded
// single-core runner and read scheduler noise as link loss.
func gentle(s Spec) Spec {
	s.ProbeInterval = 50 * time.Millisecond
	s.LinkTTL = 300 * time.Millisecond
	s.Timers = quagga.Timers{
		Hello:    60 * time.Millisecond,
		Dead:     300 * time.Millisecond,
		SPFDelay: 10 * time.Millisecond,
	}
	s.ConvergeTimeout = 120 * time.Second
	return s
}

// Curated returns the named scenario suite CI gates on: ≥10 scenarios
// spanning link failure and flap storms, partitions, switch crashes,
// rf-server restarts (steady-state and mid-convergence), RPC loss bursts
// and stream continuity. Specs are rebuilt on every call, so runs never
// share topology state.
func Curated() []Spec {
	return []Spec{
		{
			// The plain failover: one ring link dies, traffic reroutes the
			// long way, the link returns, the network re-optimizes.
			Name:     "ring4-link-down-up",
			Topology: topo.Ring(4), HostNodes: []int{0, 2}, Seed: 1,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0},
				{Kind: FaultLinkUp, Link: 0},
			},
		},
		{
			// A flap storm: five down/up cycles paced past LinkTTL, settling
			// once at the end — the declarative pipeline must converge to the
			// final state no matter how the churn interleaved.
			Name:     "ring4-link-flap-storm",
			Topology: topo.Ring(4), HostNodes: []int{0, 2}, Seed: 2,
			Faults: []Fault{
				{Kind: FaultLinkFlap, Link: 0, Count: 5},
			},
		},
		{
			// The last path between the host pair dies: the network must
			// converge *as a partition* (quiesced, honestly unreachable
			// across the cut — the PR's bugfix regression), then heal.
			Name:     "ring4-partition-heal",
			Topology: topo.Ring(4), HostNodes: []int{0, 2}, Seed: 3,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0, NoSettle: true},
				{Kind: FaultLinkDown, Link: 2},
				{Kind: FaultLinkUp, Link: 0, NoSettle: true},
				{Kind: FaultLinkUp, Link: 2},
			},
		},
		{
			// A transit switch crashes: flow table gone, control session cut.
			// The dialer reconnects, discovery re-learns it, the reconciler
			// rebuilds its VM and flows.
			Name:     "ring5-switch-crash",
			Topology: topo.Ring(5), HostNodes: []int{0, 3}, Seed: 4,
			Faults: []Fault{
				{Kind: FaultSwitchCrash, Node: 2},
			},
		},
		{
			// rf-server restart at steady state: only the idle epoch probe
			// can notice; the full desired state must be re-synced.
			Name:     "ring6-server-restart",
			Topology: topo.Ring(6), HostNodes: []int{0, 3}, Seed: 5,
			Faults: []Fault{
				{Kind: FaultServerRestart},
			},
		},
		{
			// rf-server restart *mid-convergence*: the restart races the
			// initial configuration push; acked-then-lost state must be
			// replayed before the first quiesce.
			Name:     "ring6-server-restart-midconverge",
			Topology: topo.Ring(6), HostNodes: []int{0, 3}, Seed: 6,
			Faults: []Fault{
				{Kind: FaultServerRestart, PreConverge: true},
				{Kind: FaultLinkFlap, Link: 1, Count: 1},
			},
		},
		{
			// An RPC loss burst (25% of control-channel frames dropped)
			// while a link flaps, then the burst clears: the reconciler
			// carries convergence through the loss and the clean settle
			// confirms nothing stayed wedged.
			Name:     "ring4-rpc-loss-burst",
			Topology: topo.Ring(4), HostNodes: []int{0, 2}, Seed: 7,
			Faults: []Fault{
				{Kind: FaultRPCLoss, Rate: 0.25, NoSettle: true},
				{Kind: FaultLinkFlap, Link: 1, Count: 2},
				{Kind: FaultRPCLoss, Rate: 0},
			},
		},
		gentle(Spec{
			// A seed-derived random storm on a 3×3 grid: the schedule is a
			// pure function of the seed, so this leg is as reproducible as
			// the scripted ones.
			Name:     "grid9-random-storm",
			Topology: topo.Grid(3, 3), HostNodes: []int{0, 8}, Seed: 1007,
			RandomFaults: 3,
		}),
		gentle(Spec{
			// Crash the grid's center switch — the highest-degree node —
			// and require full recovery.
			Name:     "grid9-switch-crash",
			Topology: topo.Grid(3, 3), HostNodes: []int{0, 8}, Seed: 9,
			Faults: []Fault{
				{Kind: FaultSwitchCrash, Node: 4},
			},
		}),
		gentle(Spec{
			// Data-center fabric: kill a pod-0 aggregation→core uplink in a
			// k=4 fat-tree. The fabric is single-link redundant, so the
			// settle must report *no* partition and cross-pod hosts stay
			// reachable throughout.
			Name:     "fattree4-core-link-down",
			Topology: topo.FatTree(4), HostNodes: []int{6, 18}, Seed: 10,
			Faults: []Fault{
				{Kind: FaultLinkDown, Link: 0},
				{Kind: FaultLinkUp, Link: 0},
			},
		}),
		{
			// The paper's workload under churn: a video stream crosses the
			// ring from cold start while an off-path-or-not link flaps twice;
			// the client's sequence gaps must stay inside the budget.
			Name:     "ring4-video-continuity",
			Topology: topo.Ring(4), HostNodes: []int{0, 2}, Seed: 11,
			Streams: [][2]int{{0, 2}}, GapBudget: 400,
			Faults: []Fault{
				{Kind: FaultLinkFlap, Link: 1, Count: 2},
			},
		},
	}
}

// Names lists the curated scenario names in suite order (the CI matrix).
func Names() []string {
	specs := Curated()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns a fresh spec for one curated scenario.
func ByName(name string) (Spec, bool) {
	for _, s := range Curated() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

package scenario

import (
	"reflect"
	"strings"
	"testing"

	"routeflow/internal/topo"
)

func TestRandomScheduleDeterministic(t *testing.T) {
	g := topo.Ring(6)
	a := RandomSchedule(g, 8, 42)
	b := RandomSchedule(g, 8, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := RandomSchedule(g, 8, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every fault must reference valid topology elements and every down must
	// be paired with an up on the same link.
	downs := map[int]int{}
	for _, f := range a {
		switch f.Kind {
		case FaultLinkDown:
			downs[f.Link]++
		case FaultLinkUp:
			downs[f.Link]--
		case FaultLinkFlap:
			if f.Link < 0 || f.Link >= g.NumLinks() {
				t.Fatalf("flap references unknown link: %v", f)
			}
		case FaultSwitchCrash:
			if f.Node < 0 || f.Node >= g.NumNodes() {
				t.Fatalf("crash references unknown node: %v", f)
			}
		}
	}
	for link, n := range downs {
		if n != 0 {
			t.Fatalf("link %d left with unbalanced down/up (%d)", link, n)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Name: "no-topo"}); err == nil {
		t.Fatal("nil topology accepted")
	}
	bad := Spec{Name: "bad-link", Topology: topo.Ring(3),
		Faults: []Fault{{Kind: FaultLinkDown, Link: 99}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	badNode := Spec{Name: "bad-node", Topology: topo.Ring(3),
		Faults: []Fault{{Kind: FaultSwitchCrash, Node: -1}}}
	if _, err := Run(badNode); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	badKind := Spec{Name: "bad-kind", Topology: topo.Ring(3),
		Faults: []Fault{{Kind: "meteor-strike"}}}
	if _, err := Run(badKind); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	badStream := Spec{Name: "bad-stream", Topology: topo.Ring(3),
		HostNodes: []int{0}, Streams: [][2]int{{0, 2}}}
	if _, err := Run(badStream); err == nil {
		t.Fatal("stream to a non-host node accepted")
	}
}

func TestFaultString(t *testing.T) {
	cases := map[string]Fault{
		"link-down link=3":         {Kind: FaultLinkDown, Link: 3},
		"link-up link=0":           {Kind: FaultLinkUp},
		"link-flap link=1 count=3": {Kind: FaultLinkFlap, Link: 1},
		"link-flap link=1 count=5": {Kind: FaultLinkFlap, Link: 1, Count: 5},
		"switch-crash node=7":      {Kind: FaultSwitchCrash, Node: 7},
		"server-restart":           {Kind: FaultServerRestart},
		"rpc-loss rate=0.25":       {Kind: FaultRPCLoss, Rate: 0.25},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestCuratedSuiteShape(t *testing.T) {
	specs := Curated()
	if len(specs) < 10 {
		t.Fatalf("curated suite has %d scenarios, want >= 10", len(specs))
	}
	seen := map[string]bool{}
	classes := map[FaultKind]bool{}
	for _, s := range specs {
		if s.Name == "" || seen[s.Name] {
			t.Fatalf("curated scenario with empty or duplicate name: %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := s.withDefaults(); err != nil {
			t.Fatalf("curated scenario %s invalid: %v", s.Name, err)
		}
		for _, f := range s.Faults {
			classes[f.Kind] = true
		}
		if s.RandomFaults > 0 {
			classes["random"] = true
		}
	}
	for _, required := range []FaultKind{FaultLinkDown, FaultLinkFlap,
		FaultSwitchCrash, FaultServerRestart, FaultRPCLoss} {
		if !classes[required] {
			t.Fatalf("curated suite exercises no %s fault", required)
		}
	}
	// The partition regression scenario must exist and cut more than one link
	// before settling.
	part, ok := ByName("ring4-partition-heal")
	if !ok {
		t.Fatal("partition scenario missing")
	}
	cuts := 0
	for _, f := range part.Faults {
		if f.Kind == FaultLinkDown {
			cuts++
		}
	}
	if cuts < 2 {
		t.Fatalf("partition scenario cuts %d links; cannot partition a ring", cuts)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName invented a scenario")
	}
	if names := Names(); len(names) != len(specs) || names[0] != specs[0].Name {
		t.Fatalf("Names() inconsistent with Curated(): %v", names)
	}
}

func TestResultAggregation(t *testing.T) {
	r := &Result{Phases: []Phase{
		{Fault: "initial", Checks: []Check{{Name: "no-blackhole", OK: true}}},
		{Fault: "link-down link=0", Checks: []Check{
			{Name: "no-loop", OK: false, Detail: "loop at 3"},
		}},
	}}
	if r.AllOK() {
		t.Fatal("failed check not detected")
	}
	failed := r.FailedChecks()
	if len(failed) != 1 || !strings.Contains(failed[0], "no-loop") {
		t.Fatalf("FailedChecks = %v", failed)
	}
	r.Events = []string{"a", "b"}
	if r.EventLog() != "a\nb" {
		t.Fatalf("EventLog = %q", r.EventLog())
	}
}

package scenario

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"routeflow/internal/core"
	"routeflow/internal/ofswitch"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// runChecks evaluates the invariant battery at a quiesce point, in a fixed
// order (the event log depends on it). No-blackhole runs first: its pings
// prime ARP caches and host /32 fast-path flows, which the later flow-table
// walk then exercises.
func (r *runner) runChecks() []Check {
	checks := []Check{r.checkNoBlackhole()}
	checks = append(checks, r.checkFlowConsistency(), r.checkNoLoop())
	if r.spec.Telemetry {
		checks = append(checks, r.checkTelemetryPlacement(), r.checkTelemetryConservation())
	}
	return checks
}

func verdict(name string, fails []string) Check {
	if len(fails) == 0 {
		return Check{Name: name, OK: true}
	}
	return Check{Name: name, OK: false, Detail: strings.Join(fails, "; ")}
}

// checkNoBlackhole requires every host pair in the same live component to
// exchange traffic within the ping budget — and, just as importantly, every
// pair split by a partition to honestly *fail*: connectivity across an
// administrative cut would mean stale flows are still forwarding.
func (r *runner) checkNoBlackhole() Check {
	hosts := r.d.HostNodes()
	var fails []string
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			ha, okA := r.d.Host(a)
			hb, okB := r.d.Host(b)
			if !okA || !okB {
				fails = append(fails, fmt.Sprintf("host %d or %d missing", a, b))
				continue
			}
			if r.d.SameLiveComponent(a, b) {
				deadline := time.Now().Add(r.spec.PingBudget)
				var lastErr error
				ok := false
				for {
					if _, lastErr = ha.Ping(hb.Addr(), r.spec.PingTimeout); lastErr == nil {
						ok = true
						break
					}
					if time.Now().After(deadline) {
						break
					}
				}
				if !ok {
					fails = append(fails, fmt.Sprintf("%d->%d unreachable: %v", a, b, lastErr))
				}
			} else if _, err := ha.Ping(hb.Addr(), r.spec.PingTimeout); err == nil {
				fails = append(fails, fmt.Sprintf("%d->%d reachable across a partition", a, b))
			}
		}
	}
	return verdict("no-blackhole", fails)
}

// probeKey builds the classifier key a probe frame toward dst would carry.
func probeKey(src, dst netip.Addr, inPort uint16) (openflow.Match, error) {
	u := &pkt.UDP{SrcPort: 9, DstPort: 9, Payload: []byte("rfchaos-probe")}
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: src, Dst: dst,
		Payload: u.Marshal(src, dst)}
	f := &pkt.Frame{Dst: pkt.LocalMAC(1), Src: pkt.LocalMAC(2),
		Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	return openflow.ExtractKey(inPort, f.Marshal())
}

// firstOutput returns the first output action's port.
func firstOutput(actions []openflow.Action) (uint16, bool) {
	for _, a := range actions {
		if o, ok := a.(*openflow.ActionOutput); ok {
			return o.Port, true
		}
	}
	return 0, false
}

// resolveMultipath replaces each ECMP group with the bucket the key's hash
// selects, mirroring the switch's classify-time resolution, so the walk
// follows the same concrete path a real frame with this key would take.
func resolveMultipath(actions []openflow.Action, key *openflow.Match) []openflow.Action {
	resolved := false
	for _, a := range actions {
		if _, ok := a.(*openflow.ActionMultipath); ok {
			resolved = true
		}
	}
	if !resolved {
		return actions
	}
	h := key.KeyHash()
	out := make([]openflow.Action, 0, len(actions)+2)
	for _, a := range actions {
		mp, ok := a.(*openflow.ActionMultipath)
		if !ok {
			out = append(out, a)
			continue
		}
		if len(mp.Buckets) == 0 {
			continue // empty group drops
		}
		bk := mp.Bucket(h)
		out = append(out,
			&openflow.ActionSetDlSrc{Addr: bk.DlSrc},
			&openflow.ActionSetDlDst{Addr: bk.DlDst},
			&openflow.ActionOutput{Port: bk.Port})
	}
	return out
}

// matchActions resolves key against a priority-ordered flow-table snapshot,
// returning the matched entry's actions with ECMP groups resolved.
func matchActions(flows []ofswitch.FlowInfo, key *openflow.Match) ([]openflow.Action, bool) {
	for i := range flows {
		if flows[i].Match.Covers(key) {
			return resolveMultipath(flows[i].Actions, key), true
		}
	}
	return nil, false
}

// matchFlow resolves key against a priority-ordered flow-table snapshot.
func matchFlow(flows []ofswitch.FlowInfo, key *openflow.Match) (outPort uint16, ok bool) {
	acts, ok := matchActions(flows, key)
	if !ok {
		return 0, false
	}
	return firstOutput(acts)
}

// checkNoLoop walks the installed flow tables for every directed host pair:
// starting at the source's switch, follow the matched output port across the
// live topology. A revisited switch or an exhausted TTL is a forwarding
// loop. Misses (punt path), dead links and host-port emissions all terminate
// the walk — they may be blackholes, which checkNoBlackhole owns, but they
// are not loops.
func (r *runner) checkNoLoop() Check {
	const ttl = 64
	hosts := r.d.HostNodes()
	var fails []string
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if msg := r.walkFlows(a, b, ttl); msg != "" {
				fails = append(fails, msg)
			}
		}
	}
	return verdict("no-loop", fails)
}

func (r *runner) walkFlows(src, dst, ttl int) string {
	ha, okA := r.d.Host(src)
	hb, okB := r.d.Host(dst)
	if !okA || !okB {
		return ""
	}
	srcPort, _ := r.d.Graph().HostPort(src)
	key, err := probeKey(ha.Addr(), hb.Addr(), uint16(srcPort))
	if err != nil {
		return fmt.Sprintf("probe key %d->%d: %v", src, dst, err)
	}
	node := src
	visited := make(map[int]bool)
	for hop := 0; ; hop++ {
		if hop >= ttl {
			return fmt.Sprintf("%d->%d: TTL exhausted after %d hops", src, dst, ttl)
		}
		if visited[node] {
			return fmt.Sprintf("%d->%d: forwarding loop revisits switch %d", src, dst, node)
		}
		visited[node] = true
		sw, ok := r.d.Switch(node)
		if !ok {
			return ""
		}
		acts, ok := matchActions(sw.FlowTable(), &key)
		if !ok {
			return "" // table miss (punt path) — not a loop
		}
		out, ok := firstOutput(acts)
		if !ok {
			return "" // matched drop — not a loop
		}
		// Apply the entry's MAC rewrites to the walked key: the next hop's
		// ECMP hash sees the rewritten frame, and the walk must agree with it.
		for _, a := range acts {
			switch s := a.(type) {
			case *openflow.ActionSetDlSrc:
				key.DlSrc = s.Addr
			case *openflow.ActionSetDlDst:
				key.DlDst = s.Addr
			}
		}
		li, isTransit := r.linkAt[[2]int{node, int(out)}]
		if !isTransit {
			return "" // emitted on a host port (delivery) or into the void
		}
		if !r.d.LinkIsUp(li) {
			return "" // frame dies on the dead link
		}
		peerNode, peerPort, ok := r.d.Graph().Peer(node, int(out))
		if !ok {
			return ""
		}
		key.InPort = uint16(peerPort)
		node = peerNode
	}
}

// checkFlowConsistency diffs every switch's installed flow table against the
// RF platform's desired state. The installs are asynchronous (non-blocking
// sends repaired by a resync loop), so the check retries briefly before
// declaring divergence.
func (r *runner) checkFlowConsistency() Check {
	deadline := time.Now().Add(10 * time.Second)
	var gap string
	for {
		gap = r.flowConsistencyGap()
		if gap == "" {
			return Check{Name: "flow-consistency", OK: true}
		}
		if time.Now().After(deadline) {
			return Check{Name: "flow-consistency", OK: false, Detail: gap}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *runner) flowConsistencyGap() string {
	type flowID struct {
		match    openflow.Match
		priority uint16
	}
	for _, n := range r.d.Graph().Nodes() {
		sw, ok := r.d.Switch(n.ID)
		if !ok {
			continue
		}
		// In a cluster the switch's table must mirror its *master's* desired
		// state; an orphaned shard (master dead, lease not yet lapsed) is by
		// definition not converged.
		platform, ok := r.d.OwnerPlatform(core.DPIDForNode(n.ID))
		if !ok {
			return fmt.Sprintf("node %d: no live master for its shard", n.ID)
		}
		desired := platform.DesiredFlows(core.DPIDForNode(n.ID))
		installed := sw.FlowTable()
		if len(installed) != len(desired) {
			return fmt.Sprintf("node %d: %d flows installed, %d desired", n.ID, len(installed), len(desired))
		}
		have := make(map[flowID]string, len(installed))
		for _, fi := range installed {
			have[flowID{fi.Match, fi.Priority}] = actionSig(fi.Actions)
		}
		for _, fm := range desired {
			sig, ok := have[flowID{fm.Match, fm.Priority}]
			if !ok {
				return fmt.Sprintf("node %d: desired flow %v prio=%d not installed",
					n.ID, fm.Match.NwDstPrefix(), fm.Priority)
			}
			if want := actionSig(fm.Actions); want != sig {
				return fmt.Sprintf("node %d: flow %v prio=%d actions %s, want %s",
					n.ID, fm.Match.NwDstPrefix(), fm.Priority, sig, want)
			}
		}
	}
	return ""
}

// actionSig renders an action list to a comparable signature. ECMP groups
// compare by their full bucket sets — two groups with the same first bucket
// but different alternates are different flows.
func actionSig(actions []openflow.Action) string {
	var b strings.Builder
	for _, a := range actions {
		fmt.Fprintf(&b, "%v;", a)
	}
	return b.String()
}

// checkStreamStart requires every stream's first frame to have arrived.
func (r *runner) checkStreamStart() Check {
	var fails []string
	for i, c := range r.clients {
		if err := c.AwaitFirstFrame(r.spec.ConvergeTimeout); err != nil {
			fails = append(fails, fmt.Sprintf("stream %d: %v", i, err))
		}
	}
	return verdict("stream-start", fails)
}

// checkStreams enforces the gap budget at the end of the run and records
// per-stream statistics in the result.
func (r *runner) checkStreams() Check {
	var fails []string
	for i, c := range r.clients {
		st := c.Stats()
		r.res.Streams = append(r.res.Streams, st)
		if st.Frames == 0 {
			fails = append(fails, fmt.Sprintf("stream %d: no video", i))
		} else if st.Gaps > r.spec.GapBudget {
			fails = append(fails, fmt.Sprintf("stream %d: %d gaps exceed budget %d",
				i, st.Gaps, r.spec.GapBudget))
		}
	}
	return verdict("stream-continuity", fails)
}

// Package scenario is the deterministic chaos harness of the reproduction:
// it composes a topology, a scripted or seed-derived fault schedule (link
// failures and flap storms, switch crashes with control-channel reconnect,
// rf-server restarts, RPC loss bursts) and a library of invariant checkers
// evaluated at quiesce points — convergence on the live topology,
// no-blackhole (every reachable host pair routed, every partitioned pair
// honestly unreachable), no-loop (a TTL-bounded walk of the installed flow
// tables), flow-table/desired-state consistency, and video-stream
// continuity within a gap budget.
//
// Runs are reproducible: the same Spec (same seed) produces a byte-identical
// event log. The log therefore records the *logical* schedule and outcomes —
// faults injected, convergence and partition state, invariant verdicts —
// never measured durations, which live in the Result alongside it.
package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/core"
	"routeflow/internal/quagga"
	"routeflow/internal/stream"
	"routeflow/internal/topo"
)

// FaultKind names a fault class.
type FaultKind string

// The fault classes the harness can inject.
const (
	FaultLinkDown      FaultKind = "link-down"      // cut one inter-switch link
	FaultLinkUp        FaultKind = "link-up"        // restore one inter-switch link
	FaultLinkFlap      FaultKind = "link-flap"      // Count down/up cycles, paced past LinkTTL
	FaultSwitchCrash   FaultKind = "switch-crash"   // reboot a switch: table + control session lost
	FaultServerRestart FaultKind = "server-restart" // crash-restart the rf-server RPC endpoint
	FaultRPCLoss       FaultKind = "rpc-loss"       // set the control-channel drop rate to Rate

	// The replica fault classes require a clustered spec (Cluster.Replicas > 1).
	FaultReplicaKill      FaultKind = "replica-kill"      // crash one rf-controller replica for good
	FaultReplicaPartition FaultKind = "replica-partition" // cut a replica from switches + coordination
	FaultReplicaHeal      FaultKind = "replica-heal"      // heal a partitioned replica
)

// Fault is one scheduled fault.
type Fault struct {
	Kind    FaultKind
	Link    int     // link index in Topology.Links() (link faults)
	Node    int     // graph node (switch-crash)
	Replica int     // rf-controller replica (replica faults)
	Count   int     // flap cycles (link-flap; 0 = 3)
	Rate    float64 // drop probability (rpc-loss)
	// PreConverge injects the fault right after Start, before the initial
	// convergence — e.g. an rf-server restart mid-configuration.
	PreConverge bool
	// NoSettle skips the quiesce + invariant pass after this fault, so
	// compound faults (a partition needs two cuts) settle once.
	NoSettle bool
}

// String renders the fault for the deterministic event log.
func (f Fault) String() string {
	switch f.Kind {
	case FaultLinkDown, FaultLinkUp:
		return fmt.Sprintf("%s link=%d", f.Kind, f.Link)
	case FaultLinkFlap:
		return fmt.Sprintf("%s link=%d count=%d", f.Kind, f.Link, f.flapCount())
	case FaultSwitchCrash:
		return fmt.Sprintf("%s node=%d", f.Kind, f.Node)
	case FaultRPCLoss:
		return fmt.Sprintf("%s rate=%.2f", f.Kind, f.Rate)
	case FaultReplicaKill, FaultReplicaPartition, FaultReplicaHeal:
		return fmt.Sprintf("%s replica=%d", f.Kind, f.Replica)
	default:
		return string(f.Kind)
	}
}

func (f Fault) flapCount() int {
	if f.Count <= 0 {
		return 3
	}
	return f.Count
}

// Spec describes one scenario. The zero durations and timers default to the
// compressed test-grade values the curated suite runs at.
type Spec struct {
	Name string
	// Description is a one-line operator summary (rfchaos -list).
	Description string
	Topology    *topo.Graph
	HostNodes   []int
	// Seed drives every random choice: the fault schedule (when RandomFaults
	// is used) and injected RPC loss decisions.
	Seed int64
	// Faults is the scripted schedule; when empty and RandomFaults > 0, a
	// schedule is derived deterministically from Seed.
	Faults       []Fault
	RandomFaults int

	// Cluster sizes the distributed rf-controller (zero value = the single
	// controller). Replica faults require Replicas > 1.
	Cluster core.ClusterSpec

	// TimeScale > 1 runs the deployment on a scaled clock (protocol time
	// compressed); the default 1 uses the system clock with the compressed
	// timers below, like the integration tests.
	TimeScale     float64
	BootDelay     time.Duration
	ProbeInterval time.Duration
	LinkTTL       time.Duration
	Timers        quagga.Timers
	RPCDropRate   float64       // steady-state drop rate (bursts via FaultRPCLoss)
	ResyncProbe   time.Duration // reconciler idle epoch probe (restart detection)

	// Streams runs one video stream per (server, client) host-node pair from
	// cold start; GapBudget bounds tolerated sequence gaps per stream
	// (0 = DefaultGapBudget).
	Streams   [][2]int
	GapBudget uint64

	// Telemetry turns on the streaming-stats pipeline and its invariant pair
	// at every quiesce point: balanced single-observer placement and
	// exactly-once counter aggregation (conservation, no double counting —
	// across flow repair, switch reboot and master failover).
	Telemetry bool
	// TelemetryInterval is the switches' export period (0 = 25ms, compressed
	// like the protocol timers above).
	TelemetryInterval time.Duration

	// TE turns on the online traffic-engineering loop (implies Telemetry):
	// hot links shed their largest movable flows onto colder equal-cost
	// paths, and every invariant must keep holding while the optimizer
	// migrates pins under the scheduled faults.
	TE bool
	// TEInterval paces optimization rounds (0 = 100ms, compressed).
	TEInterval time.Duration
	// FleetStreams runs a Zipf-skewed fleet of this many UDP microflows
	// across every ordered host pair for the whole run (0 = none), giving
	// the TE loop genuinely uneven, time-shifting load to optimize.
	FleetStreams int

	ConvergeTimeout time.Duration // per quiesce point, wall time
	PingTimeout     time.Duration // per ping attempt, wall time
	PingBudget      time.Duration // total per host pair, wall time
}

// DefaultGapBudget is the per-stream sequence-gap tolerance when the spec
// does not set one: faults on or near the path inevitably drop frames.
const DefaultGapBudget = 250

func (s Spec) withDefaults() (Spec, error) {
	if s.Topology == nil {
		return s, fmt.Errorf("scenario %s: Topology is required", s.Name)
	}
	if s.Name == "" {
		s.Name = s.Topology.Name()
	}
	if s.BootDelay <= 0 {
		s.BootDelay = 50 * time.Millisecond
	}
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = 10 * time.Millisecond
	}
	if s.LinkTTL <= 0 {
		s.LinkTTL = 6 * s.ProbeInterval
	}
	if s.Timers == (quagga.Timers{}) {
		s.Timers = quagga.Timers{
			Hello:    20 * time.Millisecond,
			Dead:     100 * time.Millisecond,
			SPFDelay: 5 * time.Millisecond,
		}
	}
	if s.Timers.BGPHold == 0 {
		// Only meaningful on AS-annotated topologies; compressed to the same
		// scale as the OSPF timers.
		s.Timers.BGPHold = 300 * time.Millisecond
		s.Timers.BGPConnectRetry = 50 * time.Millisecond
	}
	if s.ResyncProbe <= 0 {
		s.ResyncProbe = 150 * time.Millisecond
	}
	if s.ConvergeTimeout <= 0 {
		s.ConvergeTimeout = 60 * time.Second
	}
	if s.PingTimeout <= 0 {
		s.PingTimeout = 2 * time.Second
	}
	if s.PingBudget <= 0 {
		s.PingBudget = 30 * time.Second
	}
	if s.GapBudget == 0 {
		s.GapBudget = DefaultGapBudget
	}
	if s.TelemetryInterval <= 0 {
		s.TelemetryInterval = 25 * time.Millisecond
	}
	if s.TE {
		s.Telemetry = true
		if s.TEInterval <= 0 {
			s.TEInterval = 100 * time.Millisecond
		}
	}
	nLinks, nNodes := s.Topology.NumLinks(), s.Topology.NumNodes()
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultLinkDown, FaultLinkUp, FaultLinkFlap:
			if f.Link < 0 || f.Link >= nLinks {
				return s, fmt.Errorf("scenario %s: fault %v references unknown link", s.Name, f)
			}
		case FaultSwitchCrash:
			if f.Node < 0 || f.Node >= nNodes {
				return s, fmt.Errorf("scenario %s: fault %v references unknown node", s.Name, f)
			}
		case FaultServerRestart, FaultRPCLoss:
		case FaultReplicaKill, FaultReplicaPartition, FaultReplicaHeal:
			if s.Cluster.Replicas <= 1 {
				return s, fmt.Errorf("scenario %s: fault %v requires Cluster.Replicas > 1", s.Name, f)
			}
			if f.Replica < 0 || f.Replica >= s.Cluster.Replicas {
				return s, fmt.Errorf("scenario %s: fault %v references unknown replica", s.Name, f)
			}
		default:
			return s, fmt.Errorf("scenario %s: unknown fault kind %q", s.Name, f.Kind)
		}
	}
	hostSet := map[int]bool{}
	for _, h := range s.HostNodes {
		hostSet[h] = true
	}
	for _, p := range s.Streams {
		if !hostSet[p[0]] || !hostSet[p[1]] {
			return s, fmt.Errorf("scenario %s: stream %v endpoints must be host nodes", s.Name, p)
		}
	}
	return s, nil
}

// RandomSchedule derives a deterministic fault schedule from seed. Every
// generated fault returns the topology to full health (downs are paired with
// ups, crashes reconnect, restarts re-sync), so arbitrarily long schedules
// compose.
func RandomSchedule(g *topo.Graph, n int, seed int64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	var out []Fault
	for i := 0; i < n; i++ {
		kind := rng.Intn(4)
		if g.NumLinks() == 0 && kind < 2 {
			kind = 2 + rng.Intn(2)
		}
		switch kind {
		case 0:
			out = append(out, Fault{Kind: FaultLinkFlap, Link: rng.Intn(g.NumLinks()),
				Count: 1 + rng.Intn(3)})
		case 1:
			l := rng.Intn(g.NumLinks())
			out = append(out,
				Fault{Kind: FaultLinkDown, Link: l},
				Fault{Kind: FaultLinkUp, Link: l})
		case 2:
			out = append(out, Fault{Kind: FaultSwitchCrash, Node: rng.Intn(g.NumNodes())})
		case 3:
			out = append(out, Fault{Kind: FaultServerRestart})
		}
	}
	return out
}

// Check is one invariant verdict.
type Check struct {
	Name   string
	OK     bool
	Detail string // empty when OK; diagnostics otherwise (not in the event log)
}

// Phase is the outcome of one quiesce point.
type Phase struct {
	Fault       string        // the fault that preceded it ("initial", "final")
	Converged   time.Duration // protocol time since scenario start (0 on timeout)
	Partitioned bool
	Checks      []Check
}

// Result is the structured outcome of one scenario run.
type Result struct {
	Name            string
	Seed            int64
	InitialConverge time.Duration // protocol time to the first quiesce
	Phases          []Phase
	Streams         []stream.ClientStats
	// Events is the deterministic event log: same Spec → byte-identical.
	Events []string
}

// FailedChecks lists every failed invariant as "phase/check: detail".
func (r *Result) FailedChecks() []string {
	var out []string
	for _, ph := range r.Phases {
		for _, c := range ph.Checks {
			if !c.OK {
				out = append(out, fmt.Sprintf("%s/%s: %s", ph.Fault, c.Name, c.Detail))
			}
		}
	}
	return out
}

// AllOK reports whether every invariant at every quiesce point held.
func (r *Result) AllOK() bool { return len(r.FailedChecks()) == 0 }

// EventLog returns the event log as one newline-joined string.
func (r *Result) EventLog() string { return strings.Join(r.Events, "\n") }

// runner carries one run's state.
type runner struct {
	spec    Spec
	clk     clock.Clock
	d       *core.Deployment
	res     *Result
	clients []*stream.Client
	// linkAt maps (node, port) to the link index, for the flow-table walk.
	linkAt map[[2]int]int
}

func (r *runner) logf(format string, args ...any) {
	r.res.Events = append(r.res.Events, fmt.Sprintf(format, args...))
}

// Run executes one scenario. The returned error covers harness failures
// (invalid spec, deployment refused to assemble); invariant violations and
// convergence timeouts are reported in the Result, never as an error.
func Run(spec Spec) (*Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	faults := spec.Faults
	if len(faults) == 0 && spec.RandomFaults > 0 {
		faults = RandomSchedule(spec.Topology, spec.RandomFaults, spec.Seed)
	}
	var clk clock.Clock = clock.System()
	if spec.TimeScale > 1 {
		clk = clock.Scaled(spec.TimeScale)
	}
	d, err := core.NewDeployment(core.Options{
		Topology:          spec.Topology,
		Clock:             clk,
		HostNodes:         spec.HostNodes,
		BootDelay:         spec.BootDelay,
		Timers:            spec.Timers,
		ProbeInterval:     spec.ProbeInterval,
		LinkTTL:           spec.LinkTTL,
		RPCDropRate:       spec.RPCDropRate,
		RPCDropSeed:       spec.Seed,
		ResyncProbe:       spec.ResyncProbe,
		Cluster:           spec.Cluster,
		Telemetry:         spec.Telemetry,
		TelemetryInterval: spec.TelemetryInterval,
		TelemetrySpan:     2 * time.Second,
		TE:                spec.TE,
		TEInterval:        spec.TEInterval,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	r := &runner{
		spec:   spec,
		clk:    clk,
		d:      d,
		res:    &Result{Name: spec.Name, Seed: spec.Seed},
		linkAt: make(map[[2]int]int),
	}
	for i, l := range spec.Topology.Links() {
		r.linkAt[[2]int{l.A, l.APort}] = i
		r.linkAt[[2]int{l.B, l.BPort}] = i
	}
	r.logf("scenario %s seed=%d topology=%s hosts=%v streams=%d faults=%d",
		spec.Name, spec.Seed, spec.Topology, spec.HostNodes, len(spec.Streams), len(faults))

	// Streams start cold, before the network exists — the paper's ordering.
	for _, p := range spec.Streams {
		srv, ok := d.Host(p[0])
		if !ok {
			return nil, fmt.Errorf("scenario %s: no host at stream server node %d", spec.Name, p[0])
		}
		cli, ok := d.Host(p[1])
		if !ok {
			return nil, fmt.Errorf("scenario %s: no host at stream client node %d", spec.Name, p[1])
		}
		client, err := stream.NewClient(cli, 0, clk)
		if err != nil {
			return nil, err
		}
		defer client.Close()
		r.clients = append(r.clients, client)
		server, err := stream.NewServer(stream.ServerConfig{Host: srv, Dst: cli.Addr(), Clock: clk})
		if err != nil {
			return nil, err
		}
		server.Start()
		defer server.Stop()
	}

	// The fleet is built now but started only after initial convergence:
	// thousands of microflows over an unconfigured network would all punt,
	// and the packet-in flood would starve the very control plane that is
	// trying to bring the network up. The faults still race it.
	var fleet *stream.Fleet
	if spec.FleetStreams > 0 {
		var pairs [][2]int
		for _, s := range spec.HostNodes {
			for _, t := range spec.HostNodes {
				if s != t {
					pairs = append(pairs, [2]int{s, t})
				}
			}
		}
		fleet = stream.NewFleet(stream.FleetConfig{
			Clock:          clk,
			Pairs:          pairs,
			Streams:        spec.FleetStreams,
			Seed:           spec.Seed,
			Tick:           10 * time.Millisecond,
			PacketsPerTick: 16,
			Shift:          time.Second, // hot spots migrate as the run progresses
			Send: func(pair [2]int, srcPort, dstPort uint16, payload []byte) error {
				src, okS := d.Host(pair[0])
				dst, okD := d.Host(pair[1])
				if !okS || !okD {
					return fmt.Errorf("scenario: fleet pair %v has no hosts", pair)
				}
				return src.SendUDP(dst.Addr(), srcPort, dstPort, payload)
			},
		})
		defer fleet.Stop()
	}

	if err := d.Start(); err != nil {
		return nil, err
	}
	for _, f := range faults {
		if f.PreConverge {
			r.logf("fault (pre-converge) %s", f)
			if err := r.inject(f); err != nil {
				return r.res, err
			}
		}
	}

	conv, err := d.AwaitConverged(spec.ConvergeTimeout)
	r.res.InitialConverge = conv
	if err != nil {
		r.logf("initial convergence TIMEOUT")
		r.res.Phases = append(r.res.Phases, Phase{Fault: "initial",
			Checks: []Check{{Name: "converge", OK: false, Detail: err.Error()}}})
		return r.res, nil
	}
	r.logf("initial convergence ok partitioned=%v", d.Partitioned())
	if fleet != nil {
		fleet.Run()
	}
	initial := Phase{Fault: "initial", Converged: conv, Partitioned: d.Partitioned()}
	initial.Checks = r.runChecks()
	if len(r.clients) > 0 {
		initial.Checks = append(initial.Checks, r.checkStreamStart())
	}
	r.logChecks(initial.Checks)
	r.res.Phases = append(r.res.Phases, initial)

	for _, f := range faults {
		if f.PreConverge {
			continue
		}
		r.logf("fault %s", f)
		if err := r.inject(f); err != nil {
			return r.res, err
		}
		if f.NoSettle {
			continue
		}
		r.settle(f.String())
	}

	if len(r.clients) > 0 {
		// Let some post-fault video accumulate before judging continuity.
		r.clk.Sleep(3 * time.Second)
		final := Phase{Fault: "final", Converged: d.Elapsed(), Partitioned: d.Partitioned(),
			Checks: []Check{r.checkStreams()}}
		r.logChecks(final.Checks)
		r.res.Phases = append(r.res.Phases, final)
	}
	r.logf("done: %d failed checks", len(r.res.FailedChecks()))
	return r.res, nil
}

// awaitDisruption waits — bounded — for the convergence gap to open after a
// fault. The control plane needs a moment to *observe* some faults: a
// crashed switch's session teardown rides on goroutine scheduling, and a
// restarted rf-server is only noticed at the next epoch probe. Polling
// convergence immediately could sample that blind window and "converge" on
// the pre-fault state, running the invariants against a system that has not
// reacted yet. A fault that never opens the gap within the budget (an
// rpc-loss rate change, say) has no quiesce of its own to wait for.
func (r *runner) awaitDisruption() {
	budget := 2*r.spec.ResyncProbe + 20*r.spec.ProbeInterval
	if budget < 500*time.Millisecond {
		budget = 500 * time.Millisecond
	}
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if r.d.ConvergenceGap() != "" {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// settle awaits convergence after a fault and runs the invariant battery.
func (r *runner) settle(faultLabel string) {
	r.awaitDisruption()
	conv, err := r.d.AwaitConverged(r.spec.ConvergeTimeout)
	ph := Phase{Fault: faultLabel, Partitioned: r.d.Partitioned()}
	if err != nil {
		ph.Checks = []Check{{Name: "converge", OK: false, Detail: err.Error()}}
		r.logf("settle after %s: convergence TIMEOUT", faultLabel)
	} else {
		ph.Converged = conv
		r.logf("settle after %s: converged partitioned=%v", faultLabel, ph.Partitioned)
		ph.Checks = r.runChecks()
		r.logChecks(ph.Checks)
	}
	r.res.Phases = append(r.res.Phases, ph)
}

func (r *runner) logChecks(checks []Check) {
	for _, c := range checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL"
		}
		r.logf("invariant %s: %s", c.Name, verdict)
	}
}

// inject applies one fault to the running deployment.
func (r *runner) inject(f Fault) error {
	switch f.Kind {
	case FaultLinkDown:
		return r.d.SetLinkUp(f.Link, false)
	case FaultLinkUp:
		return r.d.SetLinkUp(f.Link, true)
	case FaultLinkFlap:
		for i := 0; i < f.flapCount(); i++ {
			if err := r.d.SetLinkUp(f.Link, false); err != nil {
				return err
			}
			// Hold the link down past LinkTTL so discovery notices the loss,
			// then restore and let a couple of probe rounds re-learn it.
			r.clk.Sleep(r.spec.LinkTTL + 2*r.spec.ProbeInterval)
			if err := r.d.SetLinkUp(f.Link, true); err != nil {
				return err
			}
			r.clk.Sleep(2 * r.spec.ProbeInterval)
		}
		return nil
	case FaultSwitchCrash:
		return r.d.CrashSwitch(f.Node)
	case FaultServerRestart:
		r.d.RestartRFServer()
		return nil
	case FaultRPCLoss:
		r.d.SetRPCLossRate(f.Rate)
		return nil
	case FaultReplicaKill:
		return r.d.KillReplica(f.Replica)
	case FaultReplicaPartition:
		return r.d.SetReplicaPartitioned(f.Replica, true)
	case FaultReplicaHeal:
		return r.d.SetReplicaPartitioned(f.Replica, false)
	default:
		return fmt.Errorf("scenario: unknown fault kind %q", f.Kind)
	}
}

package scenario

// The telemetry invariant pair. Both retry briefly before failing, like
// checkFlowConsistency: placement recomputation and export streaming are
// asynchronous level-triggered loops, so a quiesced network may still be a
// refresh interval away from a settled monitoring program.

import (
	"fmt"
	"time"

	"routeflow/internal/telemetry"
)

const telemetryCheckBudget = 15 * time.Second

// checkTelemetryPlacement verifies the Floware structural properties at a
// quiesce point: every host pair in the same live component is placed on a
// path of live links with its monitor on that path; partitioned pairs are
// honestly unplaced; and each placed flow's rule is installed on exactly one
// switch — the single-observer property that makes double counting
// structurally impossible.
func (r *runner) checkTelemetryPlacement() Check {
	deadline := time.Now().Add(telemetryCheckBudget)
	var gap string
	for {
		gap = r.telemetryPlacementGap()
		if gap == "" {
			return Check{Name: "telemetry-placement", OK: true}
		}
		if time.Now().After(deadline) {
			return Check{Name: "telemetry-placement", OK: false, Detail: gap}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *runner) telemetryPlacementGap() string {
	pls := r.d.TelemetryPlacements()
	if len(pls) == 0 {
		return "no placements computed"
	}
	linkOf := make(map[telemetry.LinkKey]int)
	for i, l := range r.d.Graph().Links() {
		linkOf[telemetry.MakeLinkKey(l.A, l.B)] = i
	}
	// Where is each flow's rule actually installed?
	ruleAt := make(map[uint32][]int)
	for _, n := range r.d.Graph().Nodes() {
		sw, ok := r.d.Switch(n.ID)
		if !ok {
			continue
		}
		for _, mc := range sw.MonitorCounters() {
			ruleAt[mc.Rule.ID] = append(ruleAt[mc.Rule.ID], n.ID)
		}
	}
	for _, pl := range pls {
		if !r.d.SameLiveComponent(pl.SrcNode, pl.DstNode) {
			if pl.Path != nil {
				return fmt.Sprintf("flow %d (%d→%d) placed across a partition", pl.ID, pl.SrcNode, pl.DstNode)
			}
			if len(ruleAt[pl.ID]) > 0 {
				return fmt.Sprintf("flow %d unplaced but its rule survives on switches %v", pl.ID, ruleAt[pl.ID])
			}
			continue
		}
		if pl.Path == nil || pl.Monitor < 0 {
			return fmt.Sprintf("flow %d (%d→%d) unplaced despite a live path", pl.ID, pl.SrcNode, pl.DstNode)
		}
		onPath := false
		for _, n := range pl.Path {
			if n == pl.Monitor {
				onPath = true
			}
		}
		if !onPath {
			return fmt.Sprintf("flow %d monitored off-path at %d (path %v)", pl.ID, pl.Monitor, pl.Path)
		}
		for _, lk := range telemetry.PathLinks(pl.Path) {
			li, ok := linkOf[lk]
			if !ok || !r.d.LinkIsUp(li) {
				return fmt.Sprintf("flow %d path %v crosses dead link %v", pl.ID, pl.Path, lk)
			}
		}
		switch at := ruleAt[pl.ID]; {
		case len(at) == 0:
			return fmt.Sprintf("flow %d rule not installed anywhere (want switch %d)", pl.ID, pl.Monitor)
		case len(at) > 1:
			return fmt.Sprintf("flow %d observed at %d switches %v — double counting", pl.ID, len(at), at)
		case at[0] != pl.Monitor:
			return fmt.Sprintf("flow %d rule on switch %d, placement says %d", pl.ID, at[0], pl.Monitor)
		}
	}
	return ""
}

// checkTelemetryConservation verifies the exactly-once stream discipline
// against ground truth. For every placed flow it pins the monitor switch's
// absolute counter at check start, then requires the aggregated view to
// (a) never exceed the switch's current absolute — a view above ground truth
// means a delta was applied twice, the failure mode resyncs and master
// failovers would hit — and (b) catch up to the pinned level within the
// budget — counters may not be lost either. Both halves hold even while
// streams keep generating traffic, because the pin is a fixed target.
func (r *runner) checkTelemetryConservation() Check {
	pinned := make(map[uint32]uint64)
	for _, n := range r.d.Graph().Nodes() {
		if sw, ok := r.d.Switch(n.ID); ok {
			for _, mc := range sw.MonitorCounters() {
				pinned[mc.Rule.ID] = mc.Packets
			}
		}
	}
	deadline := time.Now().Add(telemetryCheckBudget)
	var gap string
	for {
		gap = r.telemetryConservationGap(pinned)
		if gap == "" {
			return Check{Name: "telemetry-conservation", OK: true}
		}
		if time.Now().After(deadline) {
			return Check{Name: "telemetry-conservation", OK: false, Detail: gap}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *runner) telemetryConservationGap(pinned map[uint32]uint64) string {
	snap := r.d.TelemetrySnapshot()
	views := make(map[uint32]telemetry.FlowStat, len(snap.Flows))
	for _, f := range snap.Flows {
		views[f.ID] = f
	}
	for _, pl := range r.d.TelemetryPlacements() {
		if pl.Monitor < 0 {
			continue
		}
		sw, ok := r.d.Switch(pl.Monitor)
		if !ok {
			continue
		}
		var abs uint64
		found := false
		for _, mc := range sw.MonitorCounters() {
			if mc.Rule.ID == pl.ID {
				abs, found = mc.Packets, true
			}
		}
		if !found {
			return fmt.Sprintf("flow %d: rule missing on monitor switch %d", pl.ID, pl.Monitor)
		}
		v, ok := views[pl.ID]
		if !ok {
			return fmt.Sprintf("flow %d: no aggregated view", pl.ID)
		}
		// (a) No double counting: the view may never run ahead of the
		// switch's absolute truth. (Read abs after the view, so a racing
		// export can only make abs larger.)
		if v.Packets > abs {
			for _, mc := range sw.MonitorCounters() {
				if mc.Rule.ID == pl.ID {
					abs = mc.Packets
				}
			}
			if v.Packets > abs {
				return fmt.Sprintf("flow %d: view %d packets EXCEEDS switch absolute %d — double counted",
					pl.ID, v.Packets, abs)
			}
		}
		// (b) Conservation: the view catches up to the level the switch had
		// already seen when the check began.
		if want := pinned[pl.ID]; v.Packets < want {
			return fmt.Sprintf("flow %d: view %d packets lags pinned absolute %d", pl.ID, v.Packets, want)
		}
	}
	return ""
}

// Package discovery implements the LLDP-based topology discovery module the
// paper's topology controller runs (the NOX discovery application, [3] in
// the paper). Every probe interval it packet-outs an LLDP frame on every
// port of every connected switch, encoding the origin (datapath ID, port).
// When such a frame arrives as a packet-in at a different switch, the
// (origin, ingress) pair identifies one link. Links age out when probes stop
// arriving; switch joins and leaves, link appearance and link loss are
// published as an event stream — the exact triggers the paper's automatic
// configuration framework consumes ("on detection of a new switch", "on
// detection of a new link").
package discovery

import (
	"fmt"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// Defaults.
const (
	DefaultProbeInterval = time.Second
	DefaultLinkTTL       = 3 * DefaultProbeInterval
	eventQueueDepth      = 4096
)

// EventType discriminates discovery events.
type EventType int

// Event kinds.
const (
	SwitchUp EventType = iota
	SwitchDown
	LinkUp
	LinkDown
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case SwitchUp:
		return "switch-up"
	case SwitchDown:
		return "switch-down"
	case LinkUp:
		return "link-up"
	case LinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Link is a bidirectional link in canonical form: ADPID < BDPID, or for the
// degenerate same-switch case APort < BPort.
type Link struct {
	ADPID uint64
	APort uint16
	BDPID uint64
	BPort uint16
}

// Canonical returns l with endpoints ordered — the form links take in the
// discovery view, so external callers can compare against Links().
func (l Link) Canonical() Link { return l.canonical() }

// canonical returns l with endpoints ordered.
func (l Link) canonical() Link {
	if l.ADPID > l.BDPID || (l.ADPID == l.BDPID && l.APort > l.BPort) {
		return Link{ADPID: l.BDPID, APort: l.BPort, BDPID: l.ADPID, BPort: l.APort}
	}
	return l
}

// String renders the link.
func (l Link) String() string {
	return fmt.Sprintf("%016x:%d <-> %016x:%d", l.ADPID, l.APort, l.BDPID, l.BPort)
}

// Event is one discovery observation.
type Event struct {
	Type  EventType
	DPID  uint64             // SwitchUp / SwitchDown
	Ports []openflow.PhyPort // SwitchUp: the switch's data ports
	Link  Link               // LinkUp / LinkDown
}

// Discovery is the topology discovery application. Wire its Callbacks into a
// ctlkit.Controller and Run it.
type Discovery struct {
	clk           clock.Clock
	probeInterval time.Duration
	linkTTL       time.Duration

	mu       sync.Mutex
	switches map[uint64]*swState
	// missed counts probe rounds since the last LLDP arrival per canonical
	// link. Aging is round-based, not wall-time-based: a starved prober
	// (CPU stall, scheduling gap) stops the aging clock too, so links do
	// not flap just because the emulation fell behind the wall clock.
	missed map[Link]int
	events chan Event

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type swState struct {
	conn  *ctlkit.SwitchConn
	ports []openflow.PhyPort
}

// Option tweaks discovery behaviour.
type Option func(*Discovery)

// WithProbeInterval sets the LLDP probe period.
func WithProbeInterval(d time.Duration) Option {
	return func(disc *Discovery) { disc.probeInterval = d }
}

// WithLinkTTL sets how long a link survives without fresh probes.
func WithLinkTTL(d time.Duration) Option {
	return func(disc *Discovery) { disc.linkTTL = d }
}

// New creates the discovery module.
func New(clk clock.Clock, opts ...Option) *Discovery {
	if clk == nil {
		clk = clock.System()
	}
	d := &Discovery{
		clk:           clk,
		probeInterval: DefaultProbeInterval,
		linkTTL:       DefaultLinkTTL,
		switches:      make(map[uint64]*swState),
		missed:        make(map[Link]int),
		events:        make(chan Event, eventQueueDepth),
		stop:          make(chan struct{}),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Events returns the discovery event stream. Consumers must drain it; the
// queue is deep but bounded, and a full queue drops the oldest events.
func (d *Discovery) Events() <-chan Event { return d.events }

// Callbacks returns the ctlkit callbacks that feed this module.
func (d *Discovery) Callbacks() ctlkit.Callbacks {
	return ctlkit.Callbacks{
		SwitchUp:   d.onSwitchUp,
		SwitchDown: d.onSwitchDown,
		PacketIn:   d.onPacketIn,
		PortStatus: d.onPortStatus,
	}
}

// Run starts probing and aging until Stop.
func (d *Discovery) Run() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		tick := d.clk.NewTicker(d.probeInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C():
				d.probeAll()
				d.ageLinks()
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts probing.
func (d *Discovery) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// Switches returns the connected datapath IDs.
func (d *Discovery) Switches() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.switches))
	for dpid := range d.switches {
		out = append(out, dpid)
	}
	return out
}

// Links returns the currently live links (canonical form).
func (d *Discovery) Links() []Link {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Link, 0, len(d.missed))
	for l := range d.missed {
		out = append(out, l)
	}
	return out
}

// emit publishes an event, dropping the oldest when the queue is full so
// discovery never deadlocks against a slow consumer.
func (d *Discovery) emit(ev Event) {
	for {
		select {
		case d.events <- ev:
			return
		default:
			select {
			case <-d.events:
			default:
			}
		}
	}
}

func (d *Discovery) onSwitchUp(sc *ctlkit.SwitchConn) {
	feats := sc.Features()
	d.mu.Lock()
	d.switches[sc.DPID()] = &swState{conn: sc, ports: feats.Ports}
	d.mu.Unlock()
	d.emit(Event{Type: SwitchUp, DPID: sc.DPID(), Ports: feats.Ports})
	// Probe immediately: neighbours discover the new switch's links without
	// waiting for the next tick, which is what makes cold-start fast.
	d.probeSwitch(sc, feats.Ports)
}

func (d *Discovery) onSwitchDown(sc *ctlkit.SwitchConn) {
	dpid := sc.DPID()
	d.mu.Lock()
	delete(d.switches, dpid)
	var dead []Link
	for l := range d.missed {
		if l.ADPID == dpid || l.BDPID == dpid {
			dead = append(dead, l)
			delete(d.missed, l)
		}
	}
	d.mu.Unlock()
	for _, l := range dead {
		d.emit(Event{Type: LinkDown, Link: l})
	}
	d.emit(Event{Type: SwitchDown, DPID: dpid})
}

func (d *Discovery) onPortStatus(sc *ctlkit.SwitchConn, ps *openflow.PortStatus) {
	if ps.Desc.State&openflow.PortStateDown == 0 && ps.Reason != openflow.PortReasonDelete {
		return
	}
	dpid, port := sc.DPID(), ps.Desc.PortNo
	d.mu.Lock()
	var dead []Link
	for l := range d.missed {
		if (l.ADPID == dpid && l.APort == port) || (l.BDPID == dpid && l.BPort == port) {
			dead = append(dead, l)
			delete(d.missed, l)
		}
	}
	d.mu.Unlock()
	for _, l := range dead {
		d.emit(Event{Type: LinkDown, Link: l})
	}
}

func (d *Discovery) onPacketIn(sc *ctlkit.SwitchConn, pi *openflow.PacketIn) {
	f, err := pkt.DecodeFrame(pi.Data)
	if err != nil || f.Type != pkt.EtherTypeLLDP {
		return // not ours; under FlowVisor slicing we only see LLDP anyway
	}
	lldp, err := pkt.DecodeLLDP(f.Payload)
	if err != nil {
		return
	}
	srcDPID, srcPort, err := lldp.Origin()
	if err != nil {
		return
	}
	link := Link{ADPID: srcDPID, APort: srcPort, BDPID: sc.DPID(), BPort: pi.InPort}.canonical()
	d.mu.Lock()
	_, known := d.missed[link]
	d.missed[link] = 0
	d.mu.Unlock()
	if !known {
		d.emit(Event{Type: LinkUp, Link: link})
	}
}

func (d *Discovery) probeAll() {
	d.mu.Lock()
	targets := make([]*swState, 0, len(d.switches))
	for _, st := range d.switches {
		targets = append(targets, st)
	}
	d.mu.Unlock()
	for _, st := range targets {
		d.probeSwitch(st.conn, st.ports)
	}
}

func (d *Discovery) probeSwitch(sc *ctlkit.SwitchConn, ports []openflow.PhyPort) {
	ttlSec := uint16(d.linkTTL / time.Second)
	if ttlSec == 0 {
		ttlSec = 1
	}
	for _, p := range ports {
		if p.PortNo >= openflow.PortMax {
			continue
		}
		lldp := pkt.NewLLDP(sc.DPID(), p.PortNo, ttlSec)
		frame := &pkt.Frame{
			Dst:     pkt.LLDPMulticast,
			Src:     p.HWAddr,
			Type:    pkt.EtherTypeLLDP,
			Payload: lldp.Marshal(),
		}
		// Blocking send, deliberately: a congested control channel pauses
		// the prober (and with it round-based aging) instead of dropping
		// probes and mass-expiring live links.
		_ = sc.Send(&openflow.PacketOut{
			BufferID: openflow.NoBuffer,
			InPort:   openflow.PortNone,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: p.PortNo}},
			Data:     frame.Marshal(),
		})
	}
}

// ageLinks expires links that missed too many consecutive probe rounds.
// It runs right after probeAll on the same tick, so the aging clock only
// advances when probes were actually issued: an emulation stalled past
// several probe intervals of wall time does not mass-expire its links.
func (d *Discovery) ageLinks() {
	ttlRounds := int(d.linkTTL / d.probeInterval)
	if ttlRounds < 1 {
		ttlRounds = 1
	}
	d.mu.Lock()
	var dead []Link
	for l := range d.missed {
		d.missed[l]++
		if d.missed[l] > ttlRounds {
			dead = append(dead, l)
			delete(d.missed, l)
		}
	}
	d.mu.Unlock()
	for _, l := range dead {
		d.emit(Event{Type: LinkDown, Link: l})
	}
}

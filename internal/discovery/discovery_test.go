package discovery

import (
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/pkt"
)

// rig is a discovery controller plus a two-switch network:
//
//	s1(port1) <-> (port1)s2 ; each switch also has a free port 2.
type rig struct {
	t    *testing.T
	d    *Discovery
	ctl  *ctlkit.Controller
	net  *netemu.Network
	s1   *ofswitch.Switch
	s2   *ofswitch.Switch
	x12a *netemu.Endpoint // s1 side of the inter-switch cable
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.System()
	d := New(clk, WithProbeInterval(20*time.Millisecond), WithLinkTTL(100*time.Millisecond))
	ctl := ctlkit.New("topology", clk, d.Callbacks(), ctlkit.WithEchoInterval(0))
	l := ctlkit.NewMemListener("topo")
	t.Cleanup(func() { l.Close() })
	go ctl.Serve(l)
	t.Cleanup(ctl.Stop)
	d.Run()
	t.Cleanup(d.Stop)

	n := netemu.NewNetwork(clk)
	t.Cleanup(n.Close)

	s1 := ofswitch.New(ofswitch.Config{DPID: 1, Name: "s1", Clock: clk})
	s2 := ofswitch.New(ofswitch.Config{DPID: 2, Name: "s2", Clock: clk})
	a, b := n.NewCable(netemu.CableOpts{NameA: "s1:1", NameB: "s2:1",
		MACA: pkt.LocalMAC(0x0101), MACB: pkt.LocalMAC(0x0201)})
	mustNoErr(t, s1.AttachPort(1, a))
	mustNoErr(t, s2.AttachPort(1, b))
	// A stub port on each switch (nothing on the far side).
	c, _ := n.NewCable(netemu.CableOpts{NameA: "s1:2", NameB: "stub1", MACA: pkt.LocalMAC(0x0102)})
	e, _ := n.NewCable(netemu.CableOpts{NameA: "s2:2", NameB: "stub2", MACA: pkt.LocalMAC(0x0202)})
	mustNoErr(t, s1.AttachPort(2, c))
	mustNoErr(t, s2.AttachPort(2, e))

	for _, sw := range []*ofswitch.Switch{s1, s2} {
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		mustNoErr(t, sw.Start(conn))
	}
	t.Cleanup(s1.Stop)
	t.Cleanup(s2.Stop)
	return &rig{t: t, d: d, ctl: ctl, net: n, s1: s1, s2: s2, x12a: a}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// waitEvent drains the stream until an event satisfies pred.
func (r *rig) waitEvent(what string, pred func(Event) bool) Event {
	r.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-r.d.Events():
			if pred(ev) {
				return ev
			}
		case <-deadline:
			r.t.Fatalf("timed out waiting for %s", what)
		}
	}
}

func TestSwitchUpEvents(t *testing.T) {
	r := newRig(t)
	seen := map[uint64]bool{}
	for len(seen) < 2 {
		ev := r.waitEvent("switch-up", func(e Event) bool { return e.Type == SwitchUp })
		seen[ev.DPID] = true
		if len(ev.Ports) != 2 {
			t.Fatalf("switch %x ports = %d", ev.DPID, len(ev.Ports))
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("seen = %v", seen)
	}
}

func TestLinkDiscovered(t *testing.T) {
	r := newRig(t)
	ev := r.waitEvent("link-up", func(e Event) bool { return e.Type == LinkUp })
	want := Link{ADPID: 1, APort: 1, BDPID: 2, BPort: 1}
	if ev.Link != want {
		t.Fatalf("link = %v, want %v", ev.Link, want)
	}
	// Exactly one canonical link; both probe directions collapse onto it.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if links := r.d.Links(); len(links) != 1 {
			t.Fatalf("links = %v", links)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(r.d.Switches()); got != 2 {
		t.Fatalf("switches = %d", got)
	}
}

func TestLinkAgesOutAfterFailure(t *testing.T) {
	r := newRig(t)
	r.waitEvent("link-up", func(e Event) bool { return e.Type == LinkUp })
	// Cut the cable: probes stop crossing; port-status also fires.
	r.x12a.SetLinkUp(false)
	ev := r.waitEvent("link-down", func(e Event) bool { return e.Type == LinkDown })
	want := Link{ADPID: 1, APort: 1, BDPID: 2, BPort: 1}
	if ev.Link != want {
		t.Fatalf("down link = %v", ev.Link)
	}
	// An LLDP frame already in flight when the cable was cut may re-add the
	// link momentarily; with probes no longer crossing, round-based aging
	// must expire it for good.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(r.d.Links()) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("links after down = %v", r.d.Links())
}

func TestLinkReappearsAfterRestore(t *testing.T) {
	r := newRig(t)
	r.waitEvent("link-up", func(e Event) bool { return e.Type == LinkUp })
	r.x12a.SetLinkUp(false)
	r.waitEvent("link-down", func(e Event) bool { return e.Type == LinkDown })
	r.x12a.SetLinkUp(true)
	r.waitEvent("link-up again", func(e Event) bool { return e.Type == LinkUp })
}

func TestSwitchDownRemovesLinks(t *testing.T) {
	r := newRig(t)
	r.waitEvent("link-up", func(e Event) bool { return e.Type == LinkUp })
	r.s2.Stop()
	sawLinkDown, sawSwitchDown := false, false
	for !sawLinkDown || !sawSwitchDown {
		ev := r.waitEvent("teardown events", func(e Event) bool {
			return e.Type == LinkDown || e.Type == SwitchDown
		})
		switch ev.Type {
		case LinkDown:
			sawLinkDown = true
		case SwitchDown:
			if ev.DPID != 2 {
				t.Fatalf("switch-down dpid = %x", ev.DPID)
			}
			sawSwitchDown = true
		}
	}
	if len(r.d.Switches()) != 1 {
		t.Fatalf("switches = %v", r.d.Switches())
	}
}

func TestEventTypeString(t *testing.T) {
	for ty, want := range map[EventType]string{
		SwitchUp: "switch-up", SwitchDown: "switch-down",
		LinkUp: "link-up", LinkDown: "link-down", EventType(9): "EventType(9)",
	} {
		if got := ty.String(); got != want {
			t.Fatalf("%d: %s != %s", ty, got, want)
		}
	}
}

func TestLinkCanonical(t *testing.T) {
	a := Link{ADPID: 5, APort: 2, BDPID: 3, BPort: 7}.canonical()
	if a.ADPID != 3 || a.APort != 7 || a.BDPID != 5 || a.BPort != 2 {
		t.Fatalf("canonical = %+v", a)
	}
	b := Link{ADPID: 3, APort: 9, BDPID: 3, BPort: 4}.canonical()
	if b.APort != 4 || b.BPort != 9 {
		t.Fatalf("same-dpid canonical = %+v", b)
	}
	if a.String() == "" {
		t.Fatal("empty link string")
	}
}

func TestEmitDropsOldestWhenFull(t *testing.T) {
	d := New(clock.System())
	// Fill the queue beyond capacity without a consumer.
	for i := 0; i < eventQueueDepth+10; i++ {
		d.emit(Event{Type: SwitchUp, DPID: uint64(i)})
	}
	// The oldest events must be gone; the newest survive.
	first := <-d.Events()
	if first.DPID == 0 {
		t.Fatal("oldest event survived a full queue")
	}
}

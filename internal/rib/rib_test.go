package rib

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestAddAndLookupLPM(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.0.0.0/8"), NextHop: ip("1.1.1.1"), Iface: "eth0", Source: SourceOSPF, Metric: 20})
	r.Add(Route{Prefix: pfx("10.1.0.0/16"), NextHop: ip("2.2.2.2"), Iface: "eth1", Source: SourceOSPF, Metric: 20})
	r.Add(Route{Prefix: pfx("10.1.2.0/24"), NextHop: ip("3.3.3.3"), Iface: "eth2", Source: SourceOSPF, Metric: 20})

	cases := map[string]string{
		"10.1.2.3": "3.3.3.3", // /24 wins
		"10.1.9.9": "2.2.2.2", // /16
		"10.9.9.9": "1.1.1.1", // /8
	}
	for probe, want := range cases {
		rt, ok := r.Lookup(ip(probe))
		if !ok || rt.NextHop != ip(want) {
			t.Fatalf("lookup(%s) = %v, %v; want via %s", probe, rt, ok, want)
		}
	}
	if _, ok := r.Lookup(ip("192.168.1.1")); ok {
		t.Fatal("lookup outside table succeeded")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestDefaultRoute(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("0.0.0.0/0"), NextHop: ip("9.9.9.9"), Source: SourceStatic})
	rt, ok := r.Lookup(ip("203.0.113.77"))
	if !ok || rt.NextHop != ip("9.9.9.9") {
		t.Fatalf("default route lookup = %v, %v", rt, ok)
	}
}

func TestAdminDistancePreference(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.0.0.0/24"), NextHop: ip("5.5.5.5"), Source: SourceOSPF, Metric: 10})
	r.Add(Route{Prefix: pfx("10.0.0.0/24"), Iface: "eth0", Source: SourceConnected})
	rt, _ := r.Lookup(ip("10.0.0.1"))
	if rt.Source != SourceConnected {
		t.Fatalf("best = %v, want connected", rt)
	}
	// Removing the connected route falls back to OSPF.
	r.Remove(pfx("10.0.0.0/24"), SourceConnected, netip.Addr{})
	rt, _ = r.Lookup(ip("10.0.0.1"))
	if rt.Source != SourceOSPF {
		t.Fatalf("best after removal = %v", rt)
	}
}

// TestCrossSourcePreferenceTable pins the full cross-source preference
// order — Connected < Static < eBGP < OSPF < iBGP — before any protocol
// engine depends on it. Every ordered pair of distinct sources is exercised
// in both insertion orders.
func TestCrossSourcePreferenceTable(t *testing.T) {
	order := []Source{SourceConnected, SourceStatic, SourceEBGP, SourceOSPF, SourceIBGP}
	names := []string{"connected", "static", "ebgp", "ospf", "ibgp"}
	for i, s := range order {
		if got := s.String(); got != names[i] {
			t.Errorf("Source(%d).String() = %q, want %q", int(s), got, names[i])
		}
	}
	for i, hi := range order {
		for j, lo := range order {
			if i == j {
				continue
			}
			a := Route{Prefix: pfx("10.0.0.0/24"), NextHop: ip("1.1.1.1"), Source: hi}
			b := Route{Prefix: pfx("10.0.0.0/24"), NextHop: ip("2.2.2.2"), Source: lo}
			wantWin := hi
			if j < i {
				wantWin = lo
			}
			if got := better(a, b); got != (wantWin == hi) {
				t.Errorf("better(%v, %v) = %v, want winner %v", hi, lo, got, wantWin)
			}
			// End-to-end through reselection, both insertion orders.
			for _, routes := range [][]Route{{a, b}, {b, a}} {
				r := New()
				for _, rt := range routes {
					if err := r.Add(rt); err != nil {
						t.Fatal(err)
					}
				}
				best, ok := r.Lookup(ip("10.0.0.9"))
				if !ok || best.Source != wantWin {
					t.Errorf("sources (%v, %v): best = %v, want %v", hi, lo, best.Source, wantWin)
				}
			}
		}
	}
}

// TestBGPSourceWithdrawal exercises the engine's withdraw-on-session-loss RIB
// operation: purging one BGP source falls back to the next-best candidate.
func TestBGPSourceWithdrawal(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.7.0.0/24"), NextHop: ip("1.1.1.1"), Source: SourceEBGP})
	r.Add(Route{Prefix: pfx("10.7.0.0/24"), NextHop: ip("2.2.2.2"), Source: SourceIBGP})
	r.Add(Route{Prefix: pfx("10.7.0.0/24"), NextHop: ip("3.3.3.3"), Source: SourceOSPF, Metric: 5})
	if rt, _ := r.Lookup(ip("10.7.0.1")); rt.Source != SourceEBGP {
		t.Fatalf("best = %v, want ebgp", rt)
	}
	r.PurgeSource(SourceEBGP)
	if rt, _ := r.Lookup(ip("10.7.0.1")); rt.Source != SourceOSPF {
		t.Fatalf("best after eBGP purge = %v, want ospf", rt)
	}
	r.PurgeSource(SourceOSPF)
	if rt, _ := r.Lookup(ip("10.7.0.1")); rt.Source != SourceIBGP {
		t.Fatalf("best after ospf purge = %v, want ibgp", rt)
	}
}

func TestMetricTiebreak(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.2.0.0/16"), NextHop: ip("8.8.8.8"), Source: SourceOSPF, Metric: 30})
	r.Add(Route{Prefix: pfx("10.2.0.0/16"), NextHop: ip("7.7.7.7"), Source: SourceOSPF, Metric: 10})
	rt, _ := r.Lookup(ip("10.2.3.4"))
	if rt.NextHop != ip("7.7.7.7") {
		t.Fatalf("best = %v, want metric 10", rt)
	}
}

func TestWatcherEvents(t *testing.T) {
	r := New()
	var events []Event
	r.Watch(func(ev Event) { events = append(events, ev) })

	r.Add(Route{Prefix: pfx("10.3.0.0/16"), NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 20})
	r.Add(Route{Prefix: pfx("10.3.0.0/16"), NextHop: ip("2.2.2.2"), Source: SourceOSPF, Metric: 5})
	r.Remove(pfx("10.3.0.0/16"), SourceOSPF, ip("2.2.2.2"))
	r.Remove(pfx("10.3.0.0/16"), SourceOSPF, ip("1.1.1.1"))

	want := []EventType{RouteAdded, RouteReplaced, RouteReplaced, RouteRemoved}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i, ty := range want {
		if events[i].Type != ty {
			t.Fatalf("event %d = %v, want %v", i, events[i].Type, ty)
		}
	}
	if events[1].Old.NextHop != ip("1.1.1.1") {
		t.Fatalf("replaced old = %v", events[1].Old)
	}
}

func TestNoEventOnIdenticalReAdd(t *testing.T) {
	r := New()
	n := 0
	r.Watch(func(Event) { n++ })
	rt := Route{Prefix: pfx("10.4.0.0/16"), NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 7}
	r.Add(rt)
	r.Add(rt)
	if n != 1 {
		t.Fatalf("events = %d, want 1", n)
	}
}

func TestReplaceSource(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.5.0.0/16"), Iface: "eth0", Source: SourceConnected})
	r.ReplaceSource(SourceOSPF, []Route{
		{Prefix: pfx("10.6.0.0/16"), NextHop: ip("1.1.1.1"), Metric: 10},
		{Prefix: pfx("10.7.0.0/16"), NextHop: ip("1.1.1.1"), Metric: 20},
	})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	// Second SPF run drops 10.7 and adds 10.8.
	r.ReplaceSource(SourceOSPF, []Route{
		{Prefix: pfx("10.6.0.0/16"), NextHop: ip("1.1.1.1"), Metric: 10},
		{Prefix: pfx("10.8.0.0/16"), NextHop: ip("2.2.2.2"), Metric: 5},
	})
	if _, ok := r.Lookup(ip("10.7.1.1")); ok {
		t.Fatal("stale OSPF route survived ReplaceSource")
	}
	if rt, ok := r.Lookup(ip("10.8.1.1")); !ok || rt.NextHop != ip("2.2.2.2") {
		t.Fatalf("new route = %v, %v", rt, ok)
	}
	// The connected route must be untouched.
	if rt, ok := r.Lookup(ip("10.5.1.1")); !ok || rt.Source != SourceConnected {
		t.Fatalf("connected = %v, %v", rt, ok)
	}
}

func TestPurgeSource(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.5.0.0/16"), Iface: "eth0", Source: SourceConnected})
	r.Add(Route{Prefix: pfx("10.6.0.0/16"), NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 1})
	r.PurgeSource(SourceOSPF)
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRejectIPv6(t *testing.T) {
	r := New()
	if err := r.Add(Route{Prefix: pfx("fd00::/64"), Source: SourceStatic}); err == nil {
		t.Fatal("IPv6 route accepted")
	}
	if _, ok := r.Lookup(ip("::1")); ok {
		t.Fatal("IPv6 lookup succeeded")
	}
}

func TestBestSorted(t *testing.T) {
	r := New()
	r.Add(Route{Prefix: pfx("10.9.0.0/16"), NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 1})
	r.Add(Route{Prefix: pfx("10.1.0.0/16"), NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 1})
	best := r.Best()
	if len(best) != 2 || best[0].Prefix != pfx("10.1.0.0/16") {
		t.Fatalf("best = %v", best)
	}
}

func TestRouteStringer(t *testing.T) {
	rt := Route{Prefix: pfx("10.0.0.0/8"), NextHop: ip("1.2.3.4"), Iface: "eth1",
		Source: SourceOSPF, Metric: 20}
	if rt.String() == "" || SourceOSPF.String() != "ospf" || Source(42).String() != "proto-42" {
		t.Fatal("stringers broken")
	}
	conn := Route{Prefix: pfx("10.0.0.0/8"), Iface: "eth0", Source: SourceConnected}
	if conn.String() == "" || SourceConnected.String() != "connected" {
		t.Fatal("connected stringer broken")
	}
	if SourceStatic.String() != "static" {
		t.Fatal("static stringer")
	}
}

// TestLookupAllTieOrdering pins the equal-cost contract: candidates tied on
// (source, metric) all surface through LookupAll/BestPaths, ordered by
// next-hop address with the primary (better()'s winner) first, and lower
// metric or admin distance still collapses the set to a single winner.
func TestLookupAllTieOrdering(t *testing.T) {
	r := New()
	p := pfx("10.10.0.0/16")
	r.Add(Route{Prefix: p, NextHop: ip("3.3.3.3"), Iface: "eth3", Source: SourceOSPF, Metric: 10})
	r.Add(Route{Prefix: p, NextHop: ip("1.1.1.1"), Iface: "eth1", Source: SourceOSPF, Metric: 10})
	r.Add(Route{Prefix: p, NextHop: ip("2.2.2.2"), Iface: "eth2", Source: SourceOSPF, Metric: 10})
	// Higher metric: not part of the equal-cost set.
	r.Add(Route{Prefix: p, NextHop: ip("0.0.0.9"), Iface: "eth9", Source: SourceOSPF, Metric: 20})

	all := r.LookupAll(ip("10.10.3.4"))
	if len(all) != 3 {
		t.Fatalf("LookupAll = %v, want 3 equal-cost paths", all)
	}
	for i, want := range []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"} {
		if all[i].NextHop != ip(want) {
			t.Fatalf("path %d = %v, want via %s", i, all[i], want)
		}
	}
	// The primary must agree with Lookup.
	if rt, ok := r.Lookup(ip("10.10.3.4")); !ok || rt != all[0] {
		t.Fatalf("Lookup = %v, LookupAll[0] = %v", rt, all[0])
	}
	if bp := r.BestPaths(p); !pathsEqual(bp, all) {
		t.Fatalf("BestPaths = %v, want %v", bp, all)
	}
	// A better admin distance collapses the set.
	r.Add(Route{Prefix: p, NextHop: ip("7.7.7.7"), Iface: "eth7", Source: SourceStatic})
	if all := r.LookupAll(ip("10.10.3.4")); len(all) != 1 || all[0].NextHop != ip("7.7.7.7") {
		t.Fatalf("after static add LookupAll = %v, want only static", all)
	}
	// No covering route → nil.
	if all := r.LookupAll(ip("192.0.2.1")); all != nil {
		t.Fatalf("LookupAll outside table = %v", all)
	}
	if bp := r.BestPaths(pfx("192.0.2.0/24")); bp != nil {
		t.Fatalf("BestPaths outside table = %v", bp)
	}
}

// TestWithdrawOneAlternate proves withdrawing one member of an equal-cost
// set falls back to the survivors (with an event), and withdrawing the last
// removes the prefix.
func TestWithdrawOneAlternate(t *testing.T) {
	r := New()
	p := pfx("10.11.0.0/16")
	r.Add(Route{Prefix: p, NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 10})
	r.Add(Route{Prefix: p, NextHop: ip("2.2.2.2"), Source: SourceOSPF, Metric: 10})

	r.Remove(p, SourceOSPF, ip("1.1.1.1"))
	all := r.LookupAll(ip("10.11.0.1"))
	if len(all) != 1 || all[0].NextHop != ip("2.2.2.2") {
		t.Fatalf("after withdrawing 1.1.1.1: %v", all)
	}
	r.Remove(p, SourceOSPF, ip("2.2.2.2"))
	if all := r.LookupAll(ip("10.11.0.1")); all != nil {
		t.Fatalf("after withdrawing all: %v", all)
	}
}

// TestWatcherEventsCarryPaths pins the multipath watcher contract: every
// Added/Replaced event carries the full equal-cost set (primary first), the
// set changing fires Replaced even when the primary is unchanged, and
// re-adding an existing member stays silent.
func TestWatcherEventsCarryPaths(t *testing.T) {
	r := New()
	var events []Event
	r.Watch(func(ev Event) { events = append(events, ev) })
	p := pfx("10.12.0.0/16")

	a := Route{Prefix: p, NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: 10}
	b := Route{Prefix: p, NextHop: ip("2.2.2.2"), Source: SourceOSPF, Metric: 10}
	r.Add(a)
	r.Add(b) // primary (1.1.1.1) unchanged, set grows → Replaced
	r.Add(b) // identical re-add → no event
	r.Remove(p, SourceOSPF, b.NextHop)
	r.Remove(p, SourceOSPF, a.NextHop)

	want := []EventType{RouteAdded, RouteReplaced, RouteReplaced, RouteRemoved}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %d", events, len(want))
	}
	for i, ty := range want {
		if events[i].Type != ty {
			t.Fatalf("event %d = %v, want %v", i, events[i].Type, ty)
		}
	}
	if len(events[0].Paths) != 1 || events[0].Paths[0] != a {
		t.Fatalf("added paths = %v", events[0].Paths)
	}
	grown := events[1]
	if grown.Route != a || grown.Old != a {
		t.Fatalf("set-grow event primary = %v old = %v, want %v", grown.Route, grown.Old, a)
	}
	if len(grown.Paths) != 2 || grown.Paths[0] != a || grown.Paths[1] != b {
		t.Fatalf("set-grow paths = %v", grown.Paths)
	}
	if shrunk := events[2]; len(shrunk.Paths) != 1 || shrunk.Paths[0] != a {
		t.Fatalf("set-shrink paths = %v", shrunk.Paths)
	}
	if events[3].Paths != nil {
		t.Fatalf("removed event has paths: %v", events[3].Paths)
	}
}

// TestReplaceSourceMultipath proves an SPF publishing several next hops for
// one prefix lands them all as one equal-cost set, and the next run shrinks
// it.
func TestReplaceSourceMultipath(t *testing.T) {
	r := New()
	p := pfx("10.13.0.0/16")
	r.ReplaceSource(SourceOSPF, []Route{
		{Prefix: p, NextHop: ip("1.1.1.1"), Metric: 10},
		{Prefix: p, NextHop: ip("2.2.2.2"), Metric: 10},
	})
	if all := r.LookupAll(ip("10.13.0.1")); len(all) != 2 {
		t.Fatalf("LookupAll = %v, want 2", all)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1 prefix", r.Len())
	}
	r.ReplaceSource(SourceOSPF, []Route{
		{Prefix: p, NextHop: ip("2.2.2.2"), Metric: 10},
	})
	all := r.LookupAll(ip("10.13.0.1"))
	if len(all) != 1 || all[0].NextHop != ip("2.2.2.2") {
		t.Fatalf("after shrink LookupAll = %v", all)
	}
}

// Property: the trie LPM result always equals a brute-force scan over the
// best routes.
func TestLPMMatchesBruteForceQuick(t *testing.T) {
	prop := func(seeds []uint32, probeRaw uint32) bool {
		r := New()
		var routes []Route
		for i, s := range seeds {
			if i >= 24 {
				break
			}
			bits := int(s % 33)
			addr := netip.AddrFrom4([4]byte{byte(s >> 24), byte(s >> 16), byte(s >> 8), byte(s)})
			p := netip.PrefixFrom(addr, bits).Masked()
			rt := Route{Prefix: p, NextHop: ip("1.1.1.1"), Source: SourceOSPF, Metric: uint32(i)}
			r.Add(rt)
			routes = append(routes, rt)
		}
		probe := netip.AddrFrom4([4]byte{byte(probeRaw >> 24), byte(probeRaw >> 16), byte(probeRaw >> 8), byte(probeRaw)})
		got, ok := r.Lookup(probe)

		// Brute force over the RIB's own best set (dedup prefixes).
		var want *Route
		for _, rt := range r.Best() {
			if rt.Prefix.Contains(probe) {
				if want == nil || rt.Prefix.Bits() > want.Prefix.Bits() {
					c := rt
					want = &c
				}
			}
		}
		if want == nil {
			return !ok
		}
		return ok && got.Prefix == want.Prefix
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package rib implements the routing information base each virtual machine's
// routing stack maintains — the analogue of the zebra RIB plus kernel FIB in
// a Quagga-based RouteFlow VM. Routes from several sources (connected,
// static, OSPF) compete per prefix by administrative distance and metric;
// the winning route set is queryable by longest-prefix match and every
// best-route change is published to watchers, which is exactly the hook the
// RF-server uses to translate VM routes into OpenFlow flow entries.
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Source identifies where a route came from; the value is its
// administrative distance (lower wins), mirroring Quagga's defaults.
type Source int

// Route sources. The values are Quagga's default administrative distances,
// which pins the cross-source preference order:
// Connected < Static < eBGP < OSPF < iBGP.
const (
	SourceConnected Source = 0
	SourceStatic    Source = 1
	SourceEBGP      Source = 20
	SourceOSPF      Source = 110
	SourceIBGP      Source = 200
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceConnected:
		return "connected"
	case SourceStatic:
		return "static"
	case SourceEBGP:
		return "ebgp"
	case SourceOSPF:
		return "ospf"
	case SourceIBGP:
		return "ibgp"
	default:
		return fmt.Sprintf("proto-%d", int(s))
	}
}

// Route is one candidate path to a prefix.
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // invalid (zero) for connected routes
	Iface   string     // outgoing interface name
	Source  Source
	Metric  uint32
}

// String renders the route in `show ip route` style.
func (r Route) String() string {
	via := "directly connected"
	if r.NextHop.IsValid() {
		via = "via " + r.NextHop.String()
	}
	return fmt.Sprintf("%v [%d/%d] %s, %s", r.Prefix, int(r.Source), r.Metric, via, r.Iface)
}

// EventType discriminates best-route changes.
type EventType int

// Event kinds.
const (
	RouteAdded EventType = iota
	RouteRemoved
	RouteReplaced
)

// Event is one best-route change.
type Event struct {
	Type EventType
	// Route is the new best route (Added/Replaced) or the departed one
	// (Removed).
	Route Route
	// Old is the previous best for Replaced events.
	Old Route
}

// Watcher consumes best-route changes. Watchers run synchronously under the
// RIB's lock: keep them fast and non-reentrant.
type Watcher func(Event)

// RIB is a concurrent routing table.
type RIB struct {
	mu         sync.RWMutex
	candidates map[netip.Prefix][]Route
	best       map[netip.Prefix]Route
	trie       *trieNode
	watchers   []Watcher
}

// New creates an empty RIB.
func New() *RIB {
	return &RIB{
		candidates: make(map[netip.Prefix][]Route),
		best:       make(map[netip.Prefix]Route),
		trie:       &trieNode{},
	}
}

// Watch registers a best-route watcher.
func (r *RIB) Watch(w Watcher) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watchers = append(r.watchers, w)
}

// Add inserts or updates a candidate route (keyed by prefix+source+nexthop).
func (r *RIB) Add(rt Route) error {
	if !rt.Prefix.Addr().Is4() {
		return fmt.Errorf("rib: %v is not IPv4", rt.Prefix)
	}
	rt.Prefix = rt.Prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.candidates[rt.Prefix]
	replaced := false
	for i := range list {
		if list[i].Source == rt.Source && list[i].NextHop == rt.NextHop {
			list[i] = rt
			replaced = true
			break
		}
	}
	if !replaced {
		list = append(list, rt)
	}
	r.candidates[rt.Prefix] = list
	r.reselectLocked(rt.Prefix)
	return nil
}

// Remove deletes the candidate matching prefix+source+nexthop.
func (r *RIB) Remove(prefix netip.Prefix, src Source, nextHop netip.Addr) {
	prefix = prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.candidates[prefix]
	out := list[:0]
	for _, c := range list {
		if !(c.Source == src && c.NextHop == nextHop) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		delete(r.candidates, prefix)
	} else {
		r.candidates[prefix] = out
	}
	r.reselectLocked(prefix)
}

// PurgeSource removes every candidate from one source (e.g. when an OSPF
// recomputation replaces the whole route set).
func (r *RIB) PurgeSource(src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for prefix, list := range r.candidates {
		out := list[:0]
		for _, c := range list {
			if c.Source != src {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			delete(r.candidates, prefix)
		} else {
			r.candidates[prefix] = out
		}
		r.reselectLocked(prefix)
	}
}

// ReplaceSource atomically swaps the full route set of one source, emitting
// only the net changes — the operation OSPF performs after each SPF run.
func (r *RIB) ReplaceSource(src Source, routes []Route) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[netip.Prefix]bool{}
	for _, rt := range routes {
		rt.Prefix = rt.Prefix.Masked()
		rt.Source = src
		seen[rt.Prefix] = true
		list := r.candidates[rt.Prefix]
		replaced := false
		for i := range list {
			if list[i].Source == src {
				list[i] = rt
				replaced = true
				break
			}
		}
		if !replaced {
			list = append(list, rt)
		}
		r.candidates[rt.Prefix] = list
		r.reselectLocked(rt.Prefix)
	}
	for prefix, list := range r.candidates {
		if seen[prefix] {
			continue
		}
		out := list[:0]
		changed := false
		for _, c := range list {
			if c.Source == src {
				changed = true
				continue
			}
			out = append(out, c)
		}
		if !changed {
			continue
		}
		if len(out) == 0 {
			delete(r.candidates, prefix)
		} else {
			r.candidates[prefix] = out
		}
		r.reselectLocked(prefix)
	}
}

// better orders candidate routes (true = a preferred over b).
func better(a, b Route) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	// Deterministic tiebreak so reselection is stable.
	return a.NextHop.String() < b.NextHop.String()
}

// reselectLocked recomputes the best route for prefix and notifies watchers.
func (r *RIB) reselectLocked(prefix netip.Prefix) {
	list := r.candidates[prefix]
	old, hadOld := r.best[prefix]
	if len(list) == 0 {
		if hadOld {
			delete(r.best, prefix)
			r.trie.remove(prefix)
			r.notifyLocked(Event{Type: RouteRemoved, Route: old})
		}
		return
	}
	bestIdx := 0
	for i := 1; i < len(list); i++ {
		if better(list[i], list[bestIdx]) {
			bestIdx = i
		}
	}
	nb := list[bestIdx]
	if hadOld && old == nb {
		return
	}
	r.best[prefix] = nb
	r.trie.insert(prefix, nb)
	if hadOld {
		r.notifyLocked(Event{Type: RouteReplaced, Route: nb, Old: old})
	} else {
		r.notifyLocked(Event{Type: RouteAdded, Route: nb})
	}
}

func (r *RIB) notifyLocked(ev Event) {
	for _, w := range r.watchers {
		w(ev)
	}
}

// Lookup returns the best route for ip by longest-prefix match.
func (r *RIB) Lookup(ip netip.Addr) (Route, bool) {
	if !ip.Is4() {
		return Route{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trie.lookup(ip)
}

// Best returns the current best routes sorted by prefix.
func (r *RIB) Best() []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Route, 0, len(r.best))
	for _, rt := range r.best {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// Len returns the number of best routes.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.best)
}

// trieNode is a binary LPM trie over IPv4 prefixes.
type trieNode struct {
	child [2]*trieNode
	route *Route
}

func addrBit(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-uint(i%8))) & 1
}

func (n *trieNode) insert(p netip.Prefix, rt Route) {
	cur := n
	for i := 0; i < p.Bits(); i++ {
		bit := addrBit(p.Addr(), i)
		if cur.child[bit] == nil {
			cur.child[bit] = &trieNode{}
		}
		cur = cur.child[bit]
	}
	cur.route = &rt
}

func (n *trieNode) remove(p netip.Prefix) {
	cur := n
	for i := 0; i < p.Bits(); i++ {
		bit := addrBit(p.Addr(), i)
		if cur.child[bit] == nil {
			return
		}
		cur = cur.child[bit]
	}
	cur.route = nil
}

func (n *trieNode) lookup(ip netip.Addr) (Route, bool) {
	var best *Route
	cur := n
	for i := 0; ; i++ {
		if cur.route != nil {
			best = cur.route
		}
		if i >= 32 {
			break
		}
		next := cur.child[addrBit(ip, i)]
		if next == nil {
			break
		}
		cur = next
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Package rib implements the routing information base each virtual machine's
// routing stack maintains — the analogue of the zebra RIB plus kernel FIB in
// a Quagga-based RouteFlow VM. Routes from several sources (connected,
// static, OSPF) compete per prefix by administrative distance and metric;
// the winning route set is queryable by longest-prefix match and every
// best-route change is published to watchers, which is exactly the hook the
// RF-server uses to translate VM routes into OpenFlow flow entries.
//
// Candidates tied on (source, metric) with the winner form the prefix's
// equal-cost best set — the ECMP alternates exposed through LookupAll /
// BestPaths and carried on every watcher event, which is what lets the
// RF-server install multipath flow entries.
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Source identifies where a route came from; the value is its
// administrative distance (lower wins), mirroring Quagga's defaults.
type Source int

// Route sources. The values are Quagga's default administrative distances,
// which pins the cross-source preference order:
// Connected < Static < eBGP < OSPF < iBGP.
const (
	SourceConnected Source = 0
	SourceStatic    Source = 1
	SourceEBGP      Source = 20
	SourceOSPF      Source = 110
	SourceIBGP      Source = 200
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceConnected:
		return "connected"
	case SourceStatic:
		return "static"
	case SourceEBGP:
		return "ebgp"
	case SourceOSPF:
		return "ospf"
	case SourceIBGP:
		return "ibgp"
	default:
		return fmt.Sprintf("proto-%d", int(s))
	}
}

// Route is one candidate path to a prefix.
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // invalid (zero) for connected routes
	Iface   string     // outgoing interface name
	Source  Source
	Metric  uint32
}

// String renders the route in `show ip route` style.
func (r Route) String() string {
	via := "directly connected"
	if r.NextHop.IsValid() {
		via = "via " + r.NextHop.String()
	}
	return fmt.Sprintf("%v [%d/%d] %s, %s", r.Prefix, int(r.Source), r.Metric, via, r.Iface)
}

// EventType discriminates best-route changes.
type EventType int

// Event kinds.
const (
	RouteAdded EventType = iota
	RouteRemoved
	RouteReplaced
)

// Event is one best-route change. A Replaced event fires whenever the
// equal-cost best *set* changes, even if the primary route is unchanged —
// gaining or losing an alternate matters to a multipath consumer exactly as
// much as a primary swap.
type Event struct {
	Type EventType
	// Route is the new primary route (Added/Replaced) or the departed one
	// (Removed).
	Route Route
	// Old is the previous primary for Replaced events.
	Old Route
	// Paths is the full equal-cost best set for Added/Replaced events,
	// primary first, alternates ordered by next-hop address. It is a copy:
	// watchers may retain it. Carrying the set in the event lets watchers
	// (which run under the RIB's lock) consume alternates without calling
	// back into the RIB.
	Paths []Route
}

// Watcher consumes best-route changes. Watchers run synchronously under the
// RIB's lock: keep them fast and non-reentrant.
type Watcher func(Event)

// RIB is a concurrent routing table.
type RIB struct {
	mu         sync.RWMutex
	candidates map[netip.Prefix][]Route
	// best holds the equal-cost best set per prefix: every candidate tied on
	// (source, metric) with the winner, primary first, alternates ordered by
	// next-hop address. Slices are replaced wholesale on reselection, never
	// mutated in place, so readers may hold them across the lock.
	best     map[netip.Prefix][]Route
	trie     *trieNode
	watchers []Watcher
}

// New creates an empty RIB.
func New() *RIB {
	return &RIB{
		candidates: make(map[netip.Prefix][]Route),
		best:       make(map[netip.Prefix][]Route),
		trie:       &trieNode{},
	}
}

// Watch registers a best-route watcher.
func (r *RIB) Watch(w Watcher) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watchers = append(r.watchers, w)
}

// Add inserts or updates a candidate route (keyed by prefix+source+nexthop).
func (r *RIB) Add(rt Route) error {
	if !rt.Prefix.Addr().Is4() {
		return fmt.Errorf("rib: %v is not IPv4", rt.Prefix)
	}
	rt.Prefix = rt.Prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.candidates[rt.Prefix]
	replaced := false
	for i := range list {
		if list[i].Source == rt.Source && list[i].NextHop == rt.NextHop {
			list[i] = rt
			replaced = true
			break
		}
	}
	if !replaced {
		list = append(list, rt)
	}
	r.candidates[rt.Prefix] = list
	r.reselectLocked(rt.Prefix)
	return nil
}

// Remove deletes the candidate matching prefix+source+nexthop.
func (r *RIB) Remove(prefix netip.Prefix, src Source, nextHop netip.Addr) {
	prefix = prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.candidates[prefix]
	out := list[:0]
	for _, c := range list {
		if !(c.Source == src && c.NextHop == nextHop) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		delete(r.candidates, prefix)
	} else {
		r.candidates[prefix] = out
	}
	r.reselectLocked(prefix)
}

// PurgeSource removes every candidate from one source (e.g. when an OSPF
// recomputation replaces the whole route set).
func (r *RIB) PurgeSource(src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for prefix, list := range r.candidates {
		out := list[:0]
		for _, c := range list {
			if c.Source != src {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			delete(r.candidates, prefix)
		} else {
			r.candidates[prefix] = out
		}
		r.reselectLocked(prefix)
	}
}

// ReplaceSource atomically swaps the full route set of one source, emitting
// only the net changes — the operation OSPF performs after each SPF run. The
// set may carry several routes for one prefix (distinct next hops): they all
// become candidates, which is how an ECMP-aware SPF publishes equal-cost
// paths.
func (r *RIB) ReplaceSource(src Source, routes []Route) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byPrefix := map[netip.Prefix][]Route{}
	for _, rt := range routes {
		rt.Prefix = rt.Prefix.Masked()
		rt.Source = src
		list := byPrefix[rt.Prefix]
		dup := false
		for i := range list {
			if list[i].NextHop == rt.NextHop {
				list[i] = rt
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, rt)
		}
		byPrefix[rt.Prefix] = list
	}
	touched := map[netip.Prefix]bool{}
	for prefix := range byPrefix {
		touched[prefix] = true
	}
	for prefix, list := range r.candidates {
		for _, c := range list {
			if c.Source == src {
				touched[prefix] = true
				break
			}
		}
	}
	for prefix := range touched {
		list := r.candidates[prefix]
		out := list[:0]
		for _, c := range list {
			if c.Source != src {
				out = append(out, c)
			}
		}
		out = append(out, byPrefix[prefix]...)
		if len(out) == 0 {
			delete(r.candidates, prefix)
		} else {
			r.candidates[prefix] = out
		}
		r.reselectLocked(prefix)
	}
}

// better orders candidate routes (true = a preferred over b).
func better(a, b Route) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	// Deterministic tiebreak so reselection is stable.
	return a.NextHop.String() < b.NextHop.String()
}

// selectBest reduces a candidate list to its equal-cost best set: every
// route tied with the winner on (source, metric), sorted by next-hop address
// so the primary (index 0) matches better()'s deterministic tiebreak.
func selectBest(list []Route) []Route {
	if len(list) == 0 {
		return nil
	}
	top := list[0]
	for _, c := range list[1:] {
		if better(c, top) {
			top = c
		}
	}
	sel := make([]Route, 0, len(list))
	for _, c := range list {
		if c.Source == top.Source && c.Metric == top.Metric {
			sel = append(sel, c)
		}
	}
	sort.Slice(sel, func(i, j int) bool {
		return sel[i].NextHop.String() < sel[j].NextHop.String()
	})
	return sel
}

func pathsEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reselectLocked recomputes the equal-cost best set for prefix and notifies
// watchers when the set changed.
func (r *RIB) reselectLocked(prefix netip.Prefix) {
	old := r.best[prefix]
	sel := selectBest(r.candidates[prefix])
	if pathsEqual(old, sel) {
		return
	}
	if len(sel) == 0 {
		delete(r.best, prefix)
		r.trie.remove(prefix)
		r.notifyLocked(Event{Type: RouteRemoved, Route: old[0]})
		return
	}
	r.best[prefix] = sel
	r.trie.insert(prefix, sel)
	ev := Event{Type: RouteAdded, Route: sel[0], Paths: append([]Route(nil), sel...)}
	if len(old) > 0 {
		ev.Type = RouteReplaced
		ev.Old = old[0]
	}
	r.notifyLocked(ev)
}

func (r *RIB) notifyLocked(ev Event) {
	for _, w := range r.watchers {
		w(ev)
	}
}

// Lookup returns the primary best route for ip by longest-prefix match.
func (r *RIB) Lookup(ip netip.Addr) (Route, bool) {
	if !ip.Is4() {
		return Route{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trie.lookup(ip)
}

// LookupAll returns the full equal-cost best set for ip by longest-prefix
// match — primary first, alternates ordered by next-hop address — or nil if
// no route covers ip. The returned slice is a copy.
func (r *RIB) LookupAll(ip netip.Addr) []Route {
	if !ip.Is4() {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	rts := r.trie.lookupAll(ip)
	if len(rts) == 0 {
		return nil
	}
	return append([]Route(nil), rts...)
}

// BestPaths returns the equal-cost best set for an exact prefix (primary
// first), or nil if the prefix has no route. The returned slice is a copy.
func (r *RIB) BestPaths(prefix netip.Prefix) []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rts := r.best[prefix.Masked()]
	if len(rts) == 0 {
		return nil
	}
	return append([]Route(nil), rts...)
}

// Best returns the current primary best routes sorted by prefix.
func (r *RIB) Best() []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Route, 0, len(r.best))
	for _, rts := range r.best {
		out = append(out, rts[0])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// Len returns the number of best routes.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.best)
}

// trieNode is a binary LPM trie over IPv4 prefixes. Each terminal node holds
// the prefix's equal-cost best set (primary first), shared with RIB.best —
// the slices are replaced on reselection, never mutated, so storing them
// without copying is safe.
type trieNode struct {
	child  [2]*trieNode
	routes []Route
}

func addrBit(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-uint(i%8))) & 1
}

func (n *trieNode) insert(p netip.Prefix, rts []Route) {
	cur := n
	for i := 0; i < p.Bits(); i++ {
		bit := addrBit(p.Addr(), i)
		if cur.child[bit] == nil {
			cur.child[bit] = &trieNode{}
		}
		cur = cur.child[bit]
	}
	cur.routes = rts
}

func (n *trieNode) remove(p netip.Prefix) {
	cur := n
	for i := 0; i < p.Bits(); i++ {
		bit := addrBit(p.Addr(), i)
		if cur.child[bit] == nil {
			return
		}
		cur = cur.child[bit]
	}
	cur.routes = nil
}

func (n *trieNode) lookup(ip netip.Addr) (Route, bool) {
	rts := n.lookupAll(ip)
	if len(rts) == 0 {
		return Route{}, false
	}
	return rts[0], true
}

func (n *trieNode) lookupAll(ip netip.Addr) []Route {
	var best []Route
	cur := n
	for i := 0; ; i++ {
		if cur.routes != nil {
			best = cur.routes
		}
		if i >= 32 {
			break
		}
		next := cur.child[addrBit(ip, i)]
		if next == nil {
			break
		}
		cur = next
	}
	return best
}

package gui

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

func dpidFor(node int) uint64 { return uint64(node) + 1 }

func newDash() *Dashboard {
	return New(topo.Ring(4), dpidFor)
}

func TestAllRedInitially(t *testing.T) {
	d := newDash()
	sts := d.Statuses()
	if len(sts) != 4 {
		t.Fatalf("statuses = %d", len(sts))
	}
	for _, s := range sts {
		if s.State != "red" {
			t.Fatalf("initial state = %s", s.State)
		}
	}
	if d.GreenCount() != 0 {
		t.Fatal("green count nonzero")
	}
}

func TestTransitions(t *testing.T) {
	d := newDash()
	d.Update(dpidFor(1), vnet.StateBooting)
	d.Update(dpidFor(2), vnet.StateUp)
	sts := d.Statuses()
	if sts[1].State != "booting" || sts[2].State != "green" || sts[0].State != "red" {
		t.Fatalf("states = %+v", sts)
	}
	if d.GreenCount() != 1 {
		t.Fatalf("green = %d", d.GreenCount())
	}
	if len(d.Log()) != 2 {
		t.Fatalf("log = %v", d.Log())
	}
	d.Update(dpidFor(2), vnet.StateDestroyed)
	if d.Statuses()[2].State != "red" {
		t.Fatal("destroyed should render red")
	}
}

func TestRenderANSI(t *testing.T) {
	d := newDash()
	d.Update(dpidFor(0), vnet.StateUp)
	out := d.RenderANSI()
	if !strings.Contains(out, "1/4 switches configured") {
		t.Fatalf("banner missing:\n%s", out)
	}
	if !strings.Contains(out, ansiGreen) || !strings.Contains(out, ansiRed) {
		t.Fatal("colours missing")
	}
}

func TestHTTPStatusJSON(t *testing.T) {
	d := newDash()
	d.Update(dpidFor(3), vnet.StateUp)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/status.json", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	var sts []SwitchStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 4 || sts[3].State != "green" {
		t.Fatalf("json = %+v", sts)
	}
}

func TestHTTPLogAndHTMLAndNotFound(t *testing.T) {
	d := newDash()
	d.Update(dpidFor(0), vnet.StateBooting)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/log.json", nil))
	var lines []string
	if err := json.Unmarshal(rec.Body.Bytes(), &lines); err != nil || len(lines) != 1 {
		t.Fatalf("log = %v, %v", lines, err)
	}
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), "RouteFlow") {
		t.Fatal("html missing")
	}
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("code = %d", rec.Code)
	}
}

func TestNamedTopology(t *testing.T) {
	d := New(topo.PanEuropean(), dpidFor)
	sts := d.Statuses()
	if sts[0].Name != "Amsterdam" {
		t.Fatalf("name = %s", sts[0].Name)
	}
	if len(sts) != 28 {
		t.Fatalf("switches = %d", len(sts))
	}
}

func TestLogBounded(t *testing.T) {
	d := newDash()
	for i := 0; i < 600; i++ {
		d.Update(dpidFor(i%4), vnet.StateUp)
	}
	if len(d.Log()) > 256 {
		t.Fatalf("log grew to %d", len(d.Log()))
	}
}

// Package gui reproduces the paper's demonstration GUI (§3): switches are
// shown red until the RPC server has configured them (created their VM) and
// green afterwards. Two renderings are provided — an ANSI terminal view for
// the demo binary and an HTTP/JSON endpoint (with a minimal HTML page) so
// the state can be watched from a browser, substituting for the paper's
// desktop GUI.
package gui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// SwitchStatus is one switch's view-model.
type SwitchStatus struct {
	Node  int       `json:"node"`
	Name  string    `json:"name"`
	DPID  uint64    `json:"dpid"`
	State string    `json:"state"` // "red" | "booting" | "green"
	Since time.Time `json:"since"`
}

// Dashboard tracks per-switch configuration state.
type Dashboard struct {
	mu     sync.Mutex
	graph  *topo.Graph
	dpids  map[uint64]int // dpid → node
	states map[uint64]vnet.State
	since  map[uint64]time.Time
	log    []string
}

// New creates a dashboard for a topology; dpidForNode maps nodes to
// datapath IDs (core.DPIDForNode in deployments).
func New(g *topo.Graph, dpidForNode func(int) uint64) *Dashboard {
	d := &Dashboard{
		graph:  g,
		dpids:  make(map[uint64]int),
		states: make(map[uint64]vnet.State),
		since:  make(map[uint64]time.Time),
	}
	for _, n := range g.Nodes() {
		d.dpids[dpidForNode(n.ID)] = n.ID
	}
	return d
}

// Update records a state transition; wire it to rf's OnStatus.
func (d *Dashboard) Update(dpid uint64, st vnet.State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.states[dpid] = st
	d.since[dpid] = time.Now()
	node := d.dpids[dpid]
	name := fmt.Sprintf("n%d", node)
	if n, ok := d.graph.Node(node); ok {
		name = n.Name
	}
	d.log = append(d.log, fmt.Sprintf("%s: switch %s (dpid %x) -> %s",
		time.Now().Format("15:04:05.000"), name, dpid, colour(st)))
	if len(d.log) > 256 {
		d.log = d.log[len(d.log)-256:]
	}
}

func colour(st vnet.State) string {
	switch st {
	case vnet.StateUp:
		return "green"
	case vnet.StateBooting:
		return "booting"
	default:
		return "red"
	}
}

// Statuses returns all switches sorted by node ID.
func (d *Dashboard) Statuses() []SwitchStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]SwitchStatus, 0, len(d.dpids))
	for dpid, node := range d.dpids {
		name := fmt.Sprintf("n%d", node)
		if n, ok := d.graph.Node(node); ok && n.Name != "" {
			name = n.Name
		}
		st, ok := d.states[dpid]
		state := "red"
		if ok {
			state = colour(st)
		}
		out = append(out, SwitchStatus{
			Node: node, Name: name, DPID: dpid, State: state, Since: d.since[dpid],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// GreenCount returns how many switches are configured.
func (d *Dashboard) GreenCount() int {
	n := 0
	for _, s := range d.Statuses() {
		if s.State == "green" {
			n++
		}
	}
	return n
}

// ANSI terminal colours.
const (
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiReset  = "\x1b[0m"
)

// RenderANSI draws the switch grid with terminal colours (the demo's GUI).
func (d *Dashboard) RenderANSI() string {
	var b strings.Builder
	statuses := d.Statuses()
	green := 0
	for _, s := range statuses {
		if s.State == "green" {
			green++
		}
	}
	fmt.Fprintf(&b, "RouteFlow automatic configuration — %d/%d switches configured\n",
		green, len(statuses))
	for i, s := range statuses {
		var tint, mark string
		switch s.State {
		case "green":
			tint, mark = ansiGreen, "●"
		case "booting":
			tint, mark = ansiYellow, "◐"
		default:
			tint, mark = ansiRed, "○"
		}
		fmt.Fprintf(&b, "%s%s %-12s%s", tint, mark, s.Name, ansiReset)
		if (i+1)%4 == 0 {
			b.WriteByte('\n')
		}
	}
	if len(statuses)%4 != 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// Log returns the recent transition log.
func (d *Dashboard) Log() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.log...)
}

// ServeHTTP implements http.Handler: "/" renders HTML, "/status.json" the
// JSON view-model, "/log.json" the transition log.
func (d *Dashboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/status.json":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Statuses())
	case "/log.json":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Log())
	case "/":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		d.renderHTML(w)
	default:
		http.NotFound(w, r)
	}
}

func (d *Dashboard) renderHTML(w http.ResponseWriter) {
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8">
<title>RouteFlow auto-configuration</title>
<style>
body{font-family:sans-serif;background:#111;color:#eee}
.sw{display:inline-block;margin:6px;padding:10px 14px;border-radius:6px;min-width:8em;text-align:center}
.red{background:#a22}.booting{background:#a82}.green{background:#2a5}
</style><h1>RouteFlow automatic configuration</h1><div id=grid></div>
<script>
async function tick(){
 const r=await fetch('/status.json');const s=await r.json();
 document.getElementById('grid').innerHTML =
   s.map(x=>`+"`<span class=\"sw ${x.state}\">${x.name}<br><small>${x.state}</small></span>`"+`).join('');
}
setInterval(tick,500);tick();
</script>`)
}

package rpcconf

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"

	"routeflow/internal/ctlkit"
)

func pipeRig(t *testing.T, h Handler) (*Client, *Server) {
	t.Helper()
	l := ctlkit.NewMemListener("rpc")
	t.Cleanup(func() { l.Close() })
	srv := NewServer(h)
	go srv.Serve(l)
	t.Cleanup(srv.Stop)
	c := NewClient(func() (net.Conn, error) { return l.Dial() }, nil)
	t.Cleanup(c.Close)
	return c, srv
}

func TestSwitchUpDelivery(t *testing.T) {
	var mu sync.Mutex
	var got []*Message
	c, srv := pipeRig(t, func(m *Message) error {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		return nil
	})
	if err := c.Send(SwitchUp(0xA, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(SwitchDown(0xA)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("messages = %d", len(got))
	}
	if got[0].Kind != KindSwitchUp || got[0].DPID != 0xA || got[0].Ports != 4 {
		t.Fatalf("msg0 = %+v", got[0])
	}
	if got[1].Kind != KindSwitchDown {
		t.Fatalf("msg1 = %+v", got[1])
	}
	if srv.Applied() != 2 {
		t.Fatalf("applied = %d", srv.Applied())
	}
}

func TestLinkUpCarriesAddresses(t *testing.T) {
	var got *Message
	c, _ := pipeRig(t, func(m *Message) error { got = m; return nil })
	a := netip.MustParsePrefix("172.16.0.1/30")
	b := netip.MustParsePrefix("172.16.0.2/30")
	if err := c.Send(LinkUp(1, 2, 3, 4, a, b)); err != nil {
		t.Fatal(err)
	}
	pa, err := got.AAddrPrefix()
	if err != nil || pa != a {
		t.Fatalf("aAddr = %v, %v", pa, err)
	}
	pb, err := got.BAddrPrefix()
	if err != nil || pb != b {
		t.Fatalf("bAddr = %v, %v", pb, err)
	}
	if got.ADPID != 1 || got.APort != 2 || got.BDPID != 3 || got.BPort != 4 {
		t.Fatalf("endpoints = %+v", got)
	}
}

func TestLinkDown(t *testing.T) {
	var got *Message
	c, _ := pipeRig(t, func(m *Message) error { got = m; return nil })
	if err := c.Send(LinkDown(9, 1, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindLinkDown || got.ADPID != 9 || got.BDPID != 8 {
		t.Fatalf("msg = %+v", got)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	c, srv := pipeRig(t, func(m *Message) error {
		return errors.New("vm creation failed")
	})
	err := c.Send(SwitchUp(1, 1))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v", err)
	}
	if srv.Applied() != 0 {
		t.Fatal("failed message counted as applied")
	}
}

func TestClientRedialsAfterServerConnLoss(t *testing.T) {
	l := ctlkit.NewMemListener("rpc")
	defer l.Close()
	var applied int
	srv := NewServer(func(m *Message) error { applied++; return nil })
	go srv.Serve(l)
	defer srv.Stop()

	var dialCount int
	c := NewClient(func() (net.Conn, error) {
		dialCount++
		return l.Dial()
	}, nil)
	defer c.Close()

	if err := c.Send(SwitchUp(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection under it; the next send must redial.
	c.Close()
	if err := c.Send(SwitchUp(2, 1)); err != nil {
		t.Fatal(err)
	}
	if dialCount < 2 {
		t.Fatalf("dials = %d, want >= 2", dialCount)
	}
	if applied != 2 {
		t.Fatalf("applied = %d", applied)
	}
}

func TestClientGivesUpEventually(t *testing.T) {
	c := NewClient(func() (net.Conn, error) {
		return nil, errors.New("connection refused")
	}, nil, WithRetry(0, 3))
	if err := c.Send(SwitchUp(1, 1)); err == nil {
		t.Fatal("send with unreachable server succeeded")
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	var seqs []uint64
	c, _ := pipeRig(t, func(m *Message) error {
		seqs = append(seqs, m.Seq)
		return nil
	})
	for i := 0; i < 5; i++ {
		if err := c.Send(SwitchUp(uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	var mu sync.Mutex
	seen := map[uint64]bool{}
	c, _ := pipeRig(t, func(m *Message) error {
		mu.Lock()
		seen[m.Seq] = true
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Send(SwitchUp(uint64(i), 2)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(seen) != 16 {
		t.Fatalf("distinct seqs = %d", len(seen))
	}
}

func TestEpochSurvivesInAcksAndChangesOnRestart(t *testing.T) {
	l1 := ctlkit.NewMemListener("rpc1")
	defer l1.Close()
	srv1 := NewServer(func(m *Message) error { return nil })
	go srv1.Serve(l1)

	l2 := ctlkit.NewMemListener("rpc2")
	defer l2.Close()
	srv2 := NewServer(func(m *Message) error { return nil })
	go srv2.Serve(l2)
	defer srv2.Stop()

	var mu sync.Mutex
	target := l1
	c := NewClient(func() (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		return target.Dial()
	}, nil)
	defer c.Close()

	if c.Epoch() != 0 {
		t.Fatal("epoch before first ack")
	}
	if err := c.Send(Probe()); err != nil {
		t.Fatal(err)
	}
	e1 := c.Epoch()
	if e1 != srv1.Epoch() || e1 == 0 {
		t.Fatalf("epoch = %d, want server's %d", e1, srv1.Epoch())
	}
	// "Restart": the first incarnation dies, a fresh one takes over.
	mu.Lock()
	target = l2
	mu.Unlock()
	srv1.Stop()
	if err := c.Send(Probe()); err != nil {
		t.Fatal(err)
	}
	if e2 := c.Epoch(); e2 == e1 || e2 != srv2.Epoch() {
		t.Fatalf("epoch after restart = %d, want %d (was %d)", e2, srv2.Epoch(), e1)
	}
}

func TestFlakyDialerDropsButClientConverges(t *testing.T) {
	l := ctlkit.NewMemListener("rpc")
	defer l.Close()
	var mu sync.Mutex
	applied := 0
	srv := NewServer(func(m *Message) error {
		mu.Lock()
		applied++
		mu.Unlock()
		return nil
	})
	go srv.Serve(l)
	defer srv.Stop()

	dial := FlakyDialer(func() (net.Conn, error) { return l.Dial() }, 0.4, 42)
	c := NewClient(dial, nil, WithRetry(0, 50))
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Send(SwitchUp(uint64(i+1), 1)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if applied != 20 {
		t.Fatalf("applied = %d, want 20 (each message exactly once despite drops)", applied)
	}
}

// TestStaleAndDuplicateSeqHandling pins the server's total-order contract:
// a duplicate of an applied message is acked without re-applying, an
// out-of-order stale message (zombie handler after a redial) is skipped,
// and a retry of a *failed* apply is re-applied, not deduplicated.
func TestStaleAndDuplicateSeqHandling(t *testing.T) {
	l := ctlkit.NewMemListener("rpc")
	defer l.Close()
	var mu sync.Mutex
	var applied []uint64
	failNext := false
	srv := NewServer(func(m *Message) error {
		mu.Lock()
		defer mu.Unlock()
		if failNext {
			failNext = false
			return errors.New("transient apply failure")
		}
		applied = append(applied, m.DPID)
		return nil
	})
	go srv.Serve(l)
	defer srv.Stop()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exchange := func(seq, dpid uint64) ack {
		m := SwitchUp(dpid, 1)
		m.Seq = seq
		if err := writeFrame(conn, m); err != nil {
			t.Fatal(err)
		}
		var a ack
		if err := readFrame(conn, &a); err != nil {
			t.Fatal(err)
		}
		return a
	}

	if a := exchange(1, 0xA); a.Err != "" {
		t.Fatalf("seq 1: %v", a.Err)
	}
	if a := exchange(1, 0xA); a.Err != "" { // duplicate retry: ack, no re-apply
		t.Fatalf("dup seq 1: %v", a.Err)
	}
	if a := exchange(3, 0xC); a.Err != "" {
		t.Fatalf("seq 3: %v", a.Err)
	}
	if a := exchange(2, 0xB); a.Err != "" { // zombie: skipped silently
		t.Fatalf("stale seq 2: %v", a.Err)
	}
	mu.Lock()
	failNext = true
	mu.Unlock()
	if a := exchange(4, 0xD); a.Err == "" { // first attempt fails...
		t.Fatal("expected transient failure")
	}
	if a := exchange(4, 0xD); a.Err != "" { // ...retry must re-apply
		t.Fatalf("retry of failed seq 4: %v", a.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{0xA, 0xC, 0xD}
	if len(applied) != len(want) {
		t.Fatalf("applied = %x, want %x", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("applied = %x, want %x", applied, want)
		}
	}
	if srv.Applied() != 3 {
		t.Fatalf("Applied() = %d, want 3", srv.Applied())
	}
}

func TestBadFrameRejected(t *testing.T) {
	l := ctlkit.NewMemListener("rpc")
	defer l.Close()
	srv := NewServer(func(m *Message) error { return nil })
	go srv.Serve(l)
	defer srv.Stop()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header announcing 2 MiB must close the connection.
	if _, err := conn.Write([]byte{0x00, 0x20, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept oversized-frame connection open")
	}
}

// TestLossInjectorRateChange pins the variable-rate loss contract behind RPC
// loss bursts: rate 1 drops every write on an already-handed-out
// connection, dropping the rate to 0 makes redials lossless again, and a
// zero rate consumes no randomness (so lossless scenarios stay
// deterministic regardless of write counts).
func TestLossInjectorRateChange(t *testing.T) {
	l := ctlkit.NewMemListener("rpc")
	defer l.Close()
	srv := NewServer(func(m *Message) error { return nil })
	go srv.Serve(l)
	defer srv.Stop()

	li := NewLossInjector(0, 7)
	dial := li.Dialer(func() (net.Conn, error) { return l.Dial() })
	c := NewClient(dial, nil, WithRetry(0, 3))
	defer c.Close()
	if err := c.Send(Probe()); err != nil {
		t.Fatalf("lossless send: %v", err)
	}
	if li.Rate() != 0 {
		t.Fatalf("rate = %v, want 0", li.Rate())
	}

	li.SetRate(1.0) // total loss: every attempt must fail
	if err := c.Send(Probe()); err == nil {
		t.Fatal("send succeeded under 100% loss")
	}
	li.SetRate(0)
	if err := c.Send(Probe()); err != nil {
		t.Fatalf("send after clearing the burst: %v", err)
	}
}

// Package rpcconf implements the configuration RPC of the paper's framework:
// the channel between the RPC client (fed by the topology controller) and
// the RPC server (embedded in the RF-controller). The paper's two message
// kinds are modelled faithfully — switch detection carries the datapath ID
// and port count; link detection carries the two (dpid, port) endpoints and
// the VM interface addresses computed by the topology controller — plus the
// teardown counterparts needed for dynamic networks.
//
// Wire format: length-prefixed JSON over any net.Conn (in-memory pipe or
// TCP). The client queues and retries, so configuration messages survive a
// briefly unavailable server, and every message is acknowledged so callers
// can await application.
package rpcconf

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
)

// Kind discriminates configuration messages.
type Kind string

// Message kinds.
const (
	KindSwitchUp   Kind = "switch-up"
	KindSwitchDown Kind = "switch-down"
	KindLinkUp     Kind = "link-up"
	KindLinkDown   Kind = "link-down"
	// Host attachment is the administrator-supplied part of the
	// configuration (the paper's topology controller holds "a very small
	// part of configurations from the administrator"): which switch ports
	// face end hosts and the gateway address the VM interface should carry.
	KindHostUp   Kind = "host-up"
	KindHostDown Kind = "host-down"
	// Probe carries no configuration; it exists so a reconciler can read the
	// server's epoch while idle and detect restarts (state loss) that would
	// otherwise go unnoticed until the next real change.
	KindProbe Kind = "probe"
)

// Message is one configuration command. Fields are populated per Kind.
type Message struct {
	Kind Kind   `json:"kind"`
	Seq  uint64 `json:"seq"`

	// Switch messages: the paper's "ID of the switch and the number of
	// switch ports".
	DPID  uint64 `json:"dpid,omitempty"`
	Ports int    `json:"ports,omitempty"`

	// Link messages: endpoints plus the addresses for both VM interfaces.
	ADPID uint64 `json:"aDpid,omitempty"`
	APort uint16 `json:"aPort,omitempty"`
	BDPID uint64 `json:"bDpid,omitempty"`
	BPort uint16 `json:"bPort,omitempty"`
	AAddr string `json:"aAddr,omitempty"` // CIDR, e.g. "172.16.0.1/30"
	BAddr string `json:"bAddr,omitempty"`

	// AS annotations of the inter-domain pipeline. A switch message carries
	// the switch's AS (its VM runs bgpd next to ospfd); a link message
	// carries both endpoint ASes, and when they differ the link is an eBGP
	// border: the interfaces go OSPF-passive and each VM gains the other as
	// an eBGP neighbor. Zero means the flat single-domain default.
	ASN  uint32 `json:"asn,omitempty"`
	AASN uint32 `json:"aAsn,omitempty"`
	BASN uint32 `json:"bAsn,omitempty"`
}

// AAddrPrefix parses AAddr.
func (m *Message) AAddrPrefix() (netip.Prefix, error) { return netip.ParsePrefix(m.AAddr) }

// BAddrPrefix parses BAddr.
func (m *Message) BAddrPrefix() (netip.Prefix, error) { return netip.ParsePrefix(m.BAddr) }

// ack confirms application of one message. Epoch identifies the server
// incarnation: a change between two acks means the server restarted (and
// lost its applied state) in between, so previously acknowledged
// configuration must be re-synced.
type ack struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch,omitempty"`
	Err   string `json:"err,omitempty"`
}

const maxFrame = 1 << 20

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	// Single Write: header and body leave in one frame, so injected
	// per-write loss (Flaky) drops whole messages, never half a frame.
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("rpcconf: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Handler applies one configuration message on the server side (the
// RF-controller). Returning an error propagates to the client's Send.
type Handler func(*Message) error

// epochCounter hands every Server a distinct incarnation number, so a
// restarted server (a fresh Server on the same listener) is distinguishable
// from the one that acknowledged earlier configuration.
var epochCounter atomic.Uint64

// Server is the RPC server embedded in the RF-controller.
type Server struct {
	handler Handler
	epoch   uint64
	wg      sync.WaitGroup
	mu      sync.Mutex
	stopped bool
	applied uint64
	conns   map[net.Conn]struct{}

	// applyMu serializes message application across connections and
	// lastSeq drops stale re-deliveries: a client that redials after a
	// transport error can leave a zombie handler goroutine holding an old
	// message on the abandoned connection; without total ordering that
	// stale apply could overwrite newer configuration.
	applyMu sync.Mutex
	lastSeq uint64
}

// NewServer creates a server applying messages with handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, epoch: epochCounter.Add(1),
		conns: make(map[net.Conn]struct{})}
}

// Epoch returns this server incarnation's identifier (stamped on every ack).
func (s *Server) Epoch() uint64 { return s.epoch }

// Applied returns how many messages were applied successfully.
func (s *Server) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Serve accepts client connections until the listener closes. The Listener
// interface matches ctlkit's (Accept/Close/Addr).
func (s *Server) Serve(l interface {
	Accept() (net.Conn, error)
}) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// Stop closes every active connection and waits for the handlers to finish
// — a stopped (or restarted) server must not keep acknowledging with a
// stale incarnation.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) handleConn(conn net.Conn) {
	for {
		var m Message
		if err := readFrame(conn, &m); err != nil {
			return
		}
		a := ack{Seq: m.Seq, Epoch: s.epoch}
		s.applyMu.Lock()
		stale := m.Seq != 0 && m.Seq <= s.lastSeq
		var err error
		if !stale {
			if err = s.handler(&m); err == nil {
				// Only successful applies advance the dedup horizon: a
				// retried message whose first attempt failed must be
				// re-applied, not deduplicated into a phantom success.
				s.lastSeq = m.Seq
			}
		}
		s.applyMu.Unlock()
		if err != nil {
			a.Err = err.Error()
		} else if !stale {
			s.mu.Lock()
			s.applied++
			s.mu.Unlock()
		}
		if err := writeFrame(conn, a); err != nil {
			return
		}
	}
}

// DefaultAckTimeout bounds one request/ack exchange (wall time). A wedged
// server-side apply must surface as a retryable transport error, never
// block the sender forever. It is a last-resort liveness bound, set well
// above any legitimate apply latency so it fires only on true wedges.
const DefaultAckTimeout = 10 * time.Second

// Client is the RPC client co-located with the topology controller. It owns
// one connection, re-dialing on failure, and delivers messages in order.
type Client struct {
	dial       func() (net.Conn, error)
	clk        clock.Clock
	retry      time.Duration
	retries    int
	ackTimeout time.Duration

	mu    sync.Mutex
	conn  net.Conn
	seq   uint64
	epoch uint64 // last server epoch observed in an ack
}

// ClientOption tweaks the client.
type ClientOption func(*Client)

// WithRetry sets the redial pause and attempt count per message.
func WithRetry(pause time.Duration, attempts int) ClientOption {
	return func(c *Client) { c.retry, c.retries = pause, attempts }
}

// WithAckTimeout bounds one write+ack exchange in wall time (0 disables).
func WithAckTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.ackTimeout = d }
}

// NewClient creates a client that connects lazily via dial.
func NewClient(dial func() (net.Conn, error), clk clock.Clock, opts ...ClientOption) *Client {
	if clk == nil {
		clk = clock.System()
	}
	c := &Client{dial: dial, clk: clk, retry: 100 * time.Millisecond, retries: 5,
		ackTimeout: DefaultAckTimeout}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ErrRemote wraps handler-side failures.
var ErrRemote = errors.New("rpcconf: remote handler failed")

// Send delivers one message and waits for its acknowledgement, redialing and
// retrying on transport errors. It is safe for concurrent use; messages are
// serialized in call order.
func (c *Client) Send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	m.Seq = c.seq
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			c.clk.Sleep(c.retry)
		}
		if c.conn == nil {
			conn, err := c.dial()
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		}
		if c.ackTimeout > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(c.ackTimeout))
		}
		if err := writeFrame(c.conn, m); err != nil {
			c.resetConn()
			lastErr = err
			continue
		}
		var a ack
		if err := readFrame(c.conn, &a); err != nil {
			c.resetConn()
			lastErr = err
			continue
		}
		if c.ackTimeout > 0 {
			_ = c.conn.SetDeadline(time.Time{})
		}
		if a.Seq != m.Seq {
			c.resetConn()
			lastErr = fmt.Errorf("rpcconf: ack for %d, want %d", a.Seq, m.Seq)
			continue
		}
		if a.Epoch != 0 {
			c.epoch = a.Epoch
		}
		if a.Err != "" {
			return fmt.Errorf("%w: %s", ErrRemote, a.Err)
		}
		return nil
	}
	return fmt.Errorf("rpcconf: giving up after %d attempts: %w", c.retries, lastErr)
}

func (c *Client) resetConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetConn()
}

// Epoch returns the server incarnation observed in the most recent ack (zero
// before any ack). A change between two observations means the server
// restarted and lost its applied state.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Convenience constructors mirroring the paper's configuration triggers.

// SwitchUp builds the "new switch detected" message.
func SwitchUp(dpid uint64, ports int) *Message {
	return &Message{Kind: KindSwitchUp, DPID: dpid, Ports: ports}
}

// SwitchUpAS is SwitchUp with the switch's autonomous system annotated.
func SwitchUpAS(dpid uint64, ports int, asn uint32) *Message {
	return &Message{Kind: KindSwitchUp, DPID: dpid, Ports: ports, ASN: asn}
}

// SwitchDown builds the switch-removal message.
func SwitchDown(dpid uint64) *Message {
	return &Message{Kind: KindSwitchDown, DPID: dpid}
}

// LinkUp builds the "new link detected" message with the interface
// addresses the topology controller computed.
func LinkUp(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16, aAddr, bAddr netip.Prefix) *Message {
	return &Message{Kind: KindLinkUp,
		ADPID: aDPID, APort: aPort, BDPID: bDPID, BPort: bPort,
		AAddr: aAddr.String(), BAddr: bAddr.String()}
}

// LinkUpAS is LinkUp with both endpoint autonomous systems annotated.
func LinkUpAS(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16,
	aAddr, bAddr netip.Prefix, aASN, bASN uint32) *Message {
	m := LinkUp(aDPID, aPort, bDPID, bPort, aAddr, bAddr)
	m.AASN, m.BASN = aASN, bASN
	return m
}

// LinkDown builds the link-removal message.
func LinkDown(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16) *Message {
	return &Message{Kind: KindLinkDown, ADPID: aDPID, APort: aPort, BDPID: bDPID, BPort: bPort}
}

// HostUp builds the host-attachment message: the VM interface mirroring
// (dpid, port) becomes the gateway gw for the host subnet.
func HostUp(dpid uint64, port uint16, gw netip.Prefix) *Message {
	return &Message{Kind: KindHostUp, ADPID: dpid, APort: port, AAddr: gw.String()}
}

// HostDown reverses HostUp.
func HostDown(dpid uint64, port uint16) *Message {
	return &Message{Kind: KindHostDown, ADPID: dpid, APort: port}
}

// Probe builds the no-op epoch probe.
func Probe() *Message { return &Message{Kind: KindProbe} }

// FlakyDialer wraps dial so every connection it hands out drops each written
// frame with probability rate and then closes itself — the loss model of a
// failing control channel. The rng is seeded deterministically so failure
// scenarios are reproducible.
func FlakyDialer(dial func() (net.Conn, error), rate float64, seed int64) func() (net.Conn, error) {
	return NewLossInjector(rate, seed).Dialer(dial)
}

// LossInjector is a FlakyDialer whose drop probability can be changed while
// connections are live — the knob behind RPC loss *bursts* in failure
// scenarios (lossless steady state, a lossy window, lossless again). The rng
// is shared by every connection the injector wraps and seeded
// deterministically.
type LossInjector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate atomic.Uint64 // math.Float64bits of the drop probability
}

// NewLossInjector creates an injector dropping frames with probability rate.
func NewLossInjector(rate float64, seed int64) *LossInjector {
	li := &LossInjector{rng: rand.New(rand.NewSource(seed))}
	li.SetRate(rate)
	return li
}

// SetRate changes the drop probability; connections already handed out
// observe the new rate on their next write.
func (li *LossInjector) SetRate(rate float64) { li.rate.Store(math.Float64bits(rate)) }

// Rate returns the current drop probability.
func (li *LossInjector) Rate() float64 { return math.Float64frombits(li.rate.Load()) }

// drop decides one frame's fate. Rate zero consumes no randomness, so a
// scenario that never enables loss stays byte-for-byte deterministic.
func (li *LossInjector) drop() bool {
	rate := li.Rate()
	if rate <= 0 {
		return false
	}
	li.mu.Lock()
	d := li.rng.Float64() < rate
	li.mu.Unlock()
	return d
}

// Dialer wraps dial so every handed-out connection is subject to this
// injector's (variable) loss rate.
func (li *LossInjector) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return &flakyConn{Conn: conn, li: li}, nil
	}
}

type flakyConn struct {
	net.Conn
	li *LossInjector
}

var errInjectedDrop = errors.New("rpcconf: injected frame drop")

func (f *flakyConn) Write(p []byte) (int, error) {
	if f.li.drop() {
		// Close so the peer observes the loss instead of blocking forever on
		// a frame that will never arrive.
		f.Conn.Close()
		return 0, errInjectedDrop
	}
	return f.Conn.Write(p)
}

// Package rpcconf implements the configuration RPC of the paper's framework:
// the channel between the RPC client (fed by the topology controller) and
// the RPC server (embedded in the RF-controller). The paper's two message
// kinds are modelled faithfully — switch detection carries the datapath ID
// and port count; link detection carries the two (dpid, port) endpoints and
// the VM interface addresses computed by the topology controller — plus the
// teardown counterparts needed for dynamic networks.
//
// Wire format: length-prefixed JSON over any net.Conn (in-memory pipe or
// TCP). The client queues and retries, so configuration messages survive a
// briefly unavailable server, and every message is acknowledged so callers
// can await application.
package rpcconf

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"routeflow/internal/clock"
)

// Kind discriminates configuration messages.
type Kind string

// Message kinds.
const (
	KindSwitchUp   Kind = "switch-up"
	KindSwitchDown Kind = "switch-down"
	KindLinkUp     Kind = "link-up"
	KindLinkDown   Kind = "link-down"
	// Host attachment is the administrator-supplied part of the
	// configuration (the paper's topology controller holds "a very small
	// part of configurations from the administrator"): which switch ports
	// face end hosts and the gateway address the VM interface should carry.
	KindHostUp   Kind = "host-up"
	KindHostDown Kind = "host-down"
)

// Message is one configuration command. Fields are populated per Kind.
type Message struct {
	Kind Kind   `json:"kind"`
	Seq  uint64 `json:"seq"`

	// Switch messages: the paper's "ID of the switch and the number of
	// switch ports".
	DPID  uint64 `json:"dpid,omitempty"`
	Ports int    `json:"ports,omitempty"`

	// Link messages: endpoints plus the addresses for both VM interfaces.
	ADPID uint64 `json:"aDpid,omitempty"`
	APort uint16 `json:"aPort,omitempty"`
	BDPID uint64 `json:"bDpid,omitempty"`
	BPort uint16 `json:"bPort,omitempty"`
	AAddr string `json:"aAddr,omitempty"` // CIDR, e.g. "172.16.0.1/30"
	BAddr string `json:"bAddr,omitempty"`
}

// AAddrPrefix parses AAddr.
func (m *Message) AAddrPrefix() (netip.Prefix, error) { return netip.ParsePrefix(m.AAddr) }

// BAddrPrefix parses BAddr.
func (m *Message) BAddrPrefix() (netip.Prefix, error) { return netip.ParsePrefix(m.BAddr) }

type ack struct {
	Seq uint64 `json:"seq"`
	Err string `json:"err,omitempty"`
}

const maxFrame = 1 << 20

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("rpcconf: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Handler applies one configuration message on the server side (the
// RF-controller). Returning an error propagates to the client's Send.
type Handler func(*Message) error

// Server is the RPC server embedded in the RF-controller.
type Server struct {
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	stopped bool
	applied uint64
}

// NewServer creates a server applying messages with handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler}
}

// Applied returns how many messages were applied successfully.
func (s *Server) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Serve accepts client connections until the listener closes. The Listener
// interface matches ctlkit's (Accept/Close/Addr).
func (s *Server) Serve(l interface {
	Accept() (net.Conn, error)
}) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Stop waits for connection handlers to finish (connections themselves are
// closed by their clients or listeners).
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

func (s *Server) handleConn(conn net.Conn) {
	for {
		var m Message
		if err := readFrame(conn, &m); err != nil {
			return
		}
		a := ack{Seq: m.Seq}
		if err := s.handler(&m); err != nil {
			a.Err = err.Error()
		} else {
			s.mu.Lock()
			s.applied++
			s.mu.Unlock()
		}
		if err := writeFrame(conn, a); err != nil {
			return
		}
	}
}

// Client is the RPC client co-located with the topology controller. It owns
// one connection, re-dialing on failure, and delivers messages in order.
type Client struct {
	dial    func() (net.Conn, error)
	clk     clock.Clock
	retry   time.Duration
	retries int

	mu   sync.Mutex
	conn net.Conn
	seq  uint64
}

// ClientOption tweaks the client.
type ClientOption func(*Client)

// WithRetry sets the redial pause and attempt count per message.
func WithRetry(pause time.Duration, attempts int) ClientOption {
	return func(c *Client) { c.retry, c.retries = pause, attempts }
}

// NewClient creates a client that connects lazily via dial.
func NewClient(dial func() (net.Conn, error), clk clock.Clock, opts ...ClientOption) *Client {
	if clk == nil {
		clk = clock.System()
	}
	c := &Client{dial: dial, clk: clk, retry: 100 * time.Millisecond, retries: 5}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ErrRemote wraps handler-side failures.
var ErrRemote = errors.New("rpcconf: remote handler failed")

// Send delivers one message and waits for its acknowledgement, redialing and
// retrying on transport errors. It is safe for concurrent use; messages are
// serialized in call order.
func (c *Client) Send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	m.Seq = c.seq
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			c.clk.Sleep(c.retry)
		}
		if c.conn == nil {
			conn, err := c.dial()
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		}
		if err := writeFrame(c.conn, m); err != nil {
			c.resetConn()
			lastErr = err
			continue
		}
		var a ack
		if err := readFrame(c.conn, &a); err != nil {
			c.resetConn()
			lastErr = err
			continue
		}
		if a.Seq != m.Seq {
			c.resetConn()
			lastErr = fmt.Errorf("rpcconf: ack for %d, want %d", a.Seq, m.Seq)
			continue
		}
		if a.Err != "" {
			return fmt.Errorf("%w: %s", ErrRemote, a.Err)
		}
		return nil
	}
	return fmt.Errorf("rpcconf: giving up after %d attempts: %w", c.retries, lastErr)
}

func (c *Client) resetConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetConn()
}

// Convenience constructors mirroring the paper's configuration triggers.

// SwitchUp builds the "new switch detected" message.
func SwitchUp(dpid uint64, ports int) *Message {
	return &Message{Kind: KindSwitchUp, DPID: dpid, Ports: ports}
}

// SwitchDown builds the switch-removal message.
func SwitchDown(dpid uint64) *Message {
	return &Message{Kind: KindSwitchDown, DPID: dpid}
}

// LinkUp builds the "new link detected" message with the interface
// addresses the topology controller computed.
func LinkUp(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16, aAddr, bAddr netip.Prefix) *Message {
	return &Message{Kind: KindLinkUp,
		ADPID: aDPID, APort: aPort, BDPID: bDPID, BPort: bPort,
		AAddr: aAddr.String(), BAddr: bAddr.String()}
}

// LinkDown builds the link-removal message.
func LinkDown(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16) *Message {
	return &Message{Kind: KindLinkDown, ADPID: aDPID, APort: aPort, BDPID: bDPID, BPort: bPort}
}

// HostUp builds the host-attachment message: the VM interface mirroring
// (dpid, port) becomes the gateway gw for the host subnet.
func HostUp(dpid uint64, port uint16, gw netip.Prefix) *Message {
	return &Message{Kind: KindHostUp, ADPID: dpid, APort: port, AAddr: gw.String()}
}

// HostDown reverses HostUp.
func HostDown(dpid uint64, port uint16) *Message {
	return &Message{Kind: KindHostDown, ADPID: dpid, APort: port}
}

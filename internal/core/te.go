package core

// The deployment's traffic-engineering manager: an online re-optimization
// loop over the streaming-telemetry utilization view. Each round it builds
// the optimizer's state — measured link rates against the modeled link
// capacity, and every placed flow with its current path and its live
// equal-cost alternates — and asks the te.Engine for migrations. Accepted
// moves become path assignments; the telemetry placement refresh turns
// assignments into (a) the path the flow's counters are charged along and
// (b) path-pin flow entries pushed through each master replica's desired-
// state discipline, so the charged path and the forwarded path stay one and
// the same. Assignments whose path loses a link are dropped, falling the
// pair back to shortest-path ECMP — a TE decision can go stale, never
// blackhole.

import (
	"sort"
	"time"

	"routeflow/internal/te"
	"routeflow/internal/telemetry"
	"routeflow/internal/topo"
)

const (
	teDefaultInterval    = time.Second
	teDefaultCapacityBPS = 1 << 20 // modeled link capacity: 1 MiB/s
	// teMaxCandidates caps the equal-cost walks enumerated per pair; fat
	// trees explode combinatorially and a handful of alternates is enough
	// spread for the optimizer.
	teMaxCandidates = 6
)

// TEEnabled reports whether the traffic-engineering loop runs.
func (d *Deployment) TEEnabled() bool { return d.opts.TE }

func (d *Deployment) teCapacity() float64 {
	if d.opts.TELinkCapacityBPS > 0 {
		return d.opts.TELinkCapacityBPS
	}
	return teDefaultCapacityBPS
}

// teLoop re-optimizes until the deployment closes. It shares the telemetry
// manager's stop signal: TE without telemetry cannot exist.
func (d *Deployment) teLoop() {
	defer d.telWG.Done()
	iv := d.opts.TEInterval
	if iv <= 0 {
		iv = teDefaultInterval
	}
	tick := d.clk.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-d.telStop:
			return
		case <-tick.C():
		}
		d.refreshTE()
	}
}

// refreshTE runs one optimization round.
func (d *Deployment) refreshTE() {
	pls := d.TelemetryPlacements()
	if len(pls) == 0 {
		return
	}
	snap := d.TelemetrySnapshot()
	linkUp := d.linkUpFunc()
	live := make(map[telemetry.LinkKey]bool, d.graph.NumLinks())
	for _, l := range d.graph.Links() {
		if linkUp(l) {
			live[telemetry.MakeLinkKey(l.A, l.B)] = true
		}
	}

	capBPS := d.teCapacity()
	st := te.State{
		Links:           make(map[telemetry.LinkKey]te.Link, len(snap.Links)),
		DefaultCapacity: capBPS,
	}
	for _, ls := range snap.Links {
		st.Links[ls.Link] = te.Link{Rate: ls.RateBPS, Capacity: capBPS}
	}
	rate := make(map[telemetry.FlowID]float64, len(snap.Flows))
	for _, fs := range snap.Flows {
		rate[fs.ID] = fs.RateBPS
	}
	for _, pl := range pls {
		if pl.Path == nil {
			continue
		}
		st.Flows = append(st.Flows, te.Flow{
			Pair:       [2]int{pl.SrcNode, pl.DstNode},
			Rate:       rate[pl.ID],
			Path:       pl.Path,
			Candidates: EqualCostPaths(d.graph, pl.SrcNode, pl.DstNode, linkUp, teMaxCandidates),
		})
	}

	d.teMu.Lock()
	// Drop assignments the topology no longer carries: the pair falls back
	// to its live shortest path on the next placement refresh.
	for pair, path := range d.teAssigned {
		ok := len(path) >= 2
		for i := 1; ok && i < len(path); i++ {
			ok = live[telemetry.MakeLinkKey(path[i-1], path[i])]
		}
		if !ok {
			delete(d.teAssigned, pair)
		}
	}
	moves := d.teEngine.Plan(st)
	for _, mv := range moves {
		d.teAssigned[mv.Pair] = append([]int(nil), mv.To...)
		d.teMoves++
	}
	d.teMu.Unlock()
	if len(moves) > 0 {
		// Apply immediately: re-place (and re-pin) under the new paths
		// instead of waiting out the placement refresh tick.
		d.refreshTelemetry()
	}
}

// teAssignedPaths snapshots the optimizer's pair→path overrides for the
// placement computation; nil when TE is off.
func (d *Deployment) teAssignedPaths() map[[2]int][]int {
	if !d.opts.TE {
		return nil
	}
	d.teMu.Lock()
	defer d.teMu.Unlock()
	out := make(map[[2]int][]int, len(d.teAssigned))
	for k, v := range d.teAssigned {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// TEAssignments returns the optimizer's current path overrides per directed
// host pair (empty until a move is decided).
func (d *Deployment) TEAssignments() map[[2]int][]int { return d.teAssignedPathsAlways() }

func (d *Deployment) teAssignedPathsAlways() map[[2]int][]int {
	d.teMu.Lock()
	defer d.teMu.Unlock()
	out := make(map[[2]int][]int, len(d.teAssigned))
	for k, v := range d.teAssigned {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// TEMoveCount returns the total migrations decided since start.
func (d *Deployment) TEMoveCount() uint64 {
	d.teMu.Lock()
	defer d.teMu.Unlock()
	return d.teMoves
}

// EqualCostPaths enumerates min-hop walks from src to dst over live links,
// in deterministic (ascending-neighbor) order, capped at max. The current
// shortest path is always among them because the BFS layering admits every
// minimal walk.
func EqualCostPaths(g *topo.Graph, src, dst int, linkUp func(topo.Link) bool, max int) [][]int {
	n := g.NumNodes()
	if src == dst || src < 0 || dst < 0 || src >= n || dst >= n {
		return nil
	}
	adj := make([][]int, n)
	for _, l := range g.Links() {
		if linkUp != nil && !linkUp(l) {
			continue
		}
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	if dist[src] == -1 {
		return nil
	}
	var out [][]int
	var walk []int
	var dfs func(u int)
	dfs = func(u int) {
		if len(out) >= max {
			return
		}
		walk = append(walk, u)
		if u == dst {
			out = append(out, append([]int(nil), walk...))
		} else {
			for _, v := range adj[u] {
				if dist[v] == dist[u]-1 {
					dfs(v)
				}
			}
		}
		walk = walk[:len(walk)-1]
	}
	dfs(src)
	return out
}

package core

import (
	"testing"
	"time"

	"routeflow/internal/topo"
)

// clusterOptions compresses the lease timers the way fastOptions compresses
// the protocol timers.
func clusterOptions(g *topo.Graph, replicas int, hostNodes ...int) Options {
	opts := fastOptions(g, hostNodes...)
	opts.Cluster = ClusterSpec{
		Replicas:   replicas,
		LeaseTTL:   300 * time.Millisecond,
		LeaseRenew: 100 * time.Millisecond,
	}
	return opts
}

func TestClusterValidation(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g)
	opts.Cluster.Replicas = 2
	opts.NoFlowVisor = true
	if _, err := NewDeployment(opts); err == nil {
		t.Fatal("NoFlowVisor with Replicas > 1 accepted")
	}

	d, err := NewDeployment(fastOptions(g))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.KillReplica(0); err == nil {
		t.Fatal("KillReplica accepted on a single-controller deployment")
	}
	if err := d.SetReplicaPartitioned(0, true); err == nil {
		t.Fatal("SetReplicaPartitioned accepted on a single-controller deployment")
	}
	if d.NumReplicas() != 1 {
		t.Fatalf("NumReplicas = %d, want 1", d.NumReplicas())
	}
	if m := d.MasterOf(0); m != 0 {
		t.Fatalf("single-controller MasterOf = %d, want 0", m)
	}
}

func TestClusterShardsGroupByAS(t *testing.T) {
	// 2 ASes × 2 switches: the AS is the shard unit, so an iBGP mesh never
	// straddles replicas. Flat rings shard per switch.
	g := topo.ASRing(2, 2)
	d, err := NewDeployment(clusterOptions(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := len(d.shardDPIDs); got != 2 {
		t.Fatalf("AS ring produced %d shards, want 2", got)
	}
	for _, n := range g.Nodes() {
		a, b := d.shardOf[DPIDForNode(n.ID)], int(n.AS-g.Nodes()[0].AS)
		if a != b {
			t.Fatalf("node %d (AS %d) in shard %d, want %d", n.ID, n.AS, a, b)
		}
	}

	flat, err := NewDeployment(clusterOptions(topo.Ring(4), 2))
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if got := len(flat.shardDPIDs); got != 4 {
		t.Fatalf("flat ring produced %d shards, want 4", got)
	}
}

// TestClusteredRingConvergesAndFailsOver is the end-to-end mastership story:
// two replicas split a flat ring, the network converges, replica 1 is
// crash-killed, its leases lapse, its switches re-home to replica 0, and the
// network reconverges with traffic flowing.
func TestClusteredRingConvergesAndFailsOver(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(clusterOptions(g, 2, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Modulo policy: shard (= node, flat ring) i belongs to replica i%2.
	for node := 0; node < 4; node++ {
		if m := d.MasterOf(node); m != node%2 {
			t.Fatalf("node %d mastered by %d, want %d", node, m, node%2)
		}
	}
	if owned := d.Replicas()[1].Owned(); len(owned) != 2 {
		t.Fatalf("replica 1 owns %v, want 2 nodes", owned)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	awaitPing := func(phase string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		var lastErr error
		for time.Now().Before(deadline) {
			if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
				return
			}
		}
		t.Fatalf("no connectivity %s: %v", phase, lastErr)
	}
	awaitPing("before failover")

	if err := d.KillReplica(1); err != nil {
		t.Fatal(err)
	}
	if err := d.KillReplica(1); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := d.KillReplica(0); err == nil {
		t.Fatal("killing the last live replica accepted")
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 4; node++ {
		if m := d.MasterOf(node); m != 0 {
			t.Fatalf("node %d mastered by %d after failover, want 0", node, m)
		}
	}
	if alive := d.Replicas()[1].Alive(); alive {
		t.Fatal("killed replica reports alive")
	}
	awaitPing("after failover")
}

// TestClusterPartitionAndHeal cuts replica 1 off from its switches and the
// coordination service: its leases lapse, it self-fences (releases its VMs),
// the survivor takes over, and after the heal the cooperative rebalance hands
// the shards back.
func TestClusterPartitionAndHeal(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(clusterOptions(g, 2, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := d.SetReplicaPartitioned(1, true); err != nil {
		t.Fatal(err)
	}
	if !d.Replicas()[1].Partitioned() {
		t.Fatal("replica 1 not marked partitioned")
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 4; node++ {
		if m := d.MasterOf(node); m != 0 {
			t.Fatalf("node %d mastered by %d under partition, want 0", node, m)
		}
	}

	if err := d.SetReplicaPartitioned(1, false); err != nil {
		t.Fatal(err)
	}
	// The heal must rebalance shards back to replica 1 and reconverge.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if d.MasterOf(1) == 1 && d.MasterOf(3) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m := d.MasterOf(1); m != 1 {
		t.Fatalf("node 1 mastered by %d after heal, want 1", m)
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	dl := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(dl) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("no connectivity after heal: %v", lastErr)
}

// TestClusteredMultiASConverges runs the inter-domain topology on three
// replicas: every AS's iBGP mesh lives on one platform, eBGP crosses
// platforms over the emulated data plane, and the cluster converges like the
// single controller does.
func TestClusteredMultiASConverges(t *testing.T) {
	g := topo.ASRing(3, 2)
	opts := clusterOptions(g, 3, 0, 5)
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Shard s (= AS index s) on replica s%3 — with 3 shards and 3 replicas,
	// each AS has its own master.
	seen := map[int]bool{}
	for _, n := range g.Nodes() {
		m := d.MasterOf(n.ID)
		if m < 0 {
			t.Fatalf("node %d has no master", n.ID)
		}
		seen[m] = true
		for _, p := range g.Nodes() {
			if p.AS == n.AS && d.MasterOf(p.ID) != m {
				t.Fatalf("AS %d split across replicas %d and %d", n.AS, m, d.MasterOf(p.ID))
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 masters in use, saw %v", seen)
	}
	h0, _ := d.Host(0)
	h5, _ := d.Host(5)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h5.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("no cross-AS connectivity: %v", lastErr)
}

// Package core implements the paper's contribution: the framework that
// configures RouteFlow automatically (Fig. 2). It contains
//
//   - the topology controller application: the LLDP discovery module plus
//     the logic that turns discovery events into *declared desired state* —
//     "on detection of a new switch" declare {dpid, #ports}; "on detection
//     of a new link" allocate unique IP addresses from the administrator's
//     range and declare them. A reconciler (internal/intent) continuously
//     diffs the declared state against what the rf-server has acknowledged
//     and (re)issues configuration RPCs with exponential backoff, so a
//     dropped message delays convergence instead of wedging it;
//   - the manual-configuration cost model the paper uses for Fig. 3's
//     baseline (5 min VM creation + 2 min mapping + 8 min routing
//     configuration per switch);
//   - Deployment, the orchestration that assembles a full system — emulated
//     switches, FlowVisor, both controllers, the RPC pair, end hosts — from
//     a topology, and the experiment instrumentation (time to configured,
//     time to converged) used to regenerate the paper's figures.
package core

import (
	"fmt"
	"net/netip"
	"sync"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/intent"
	"routeflow/internal/ipam"
	"routeflow/internal/rpcconf"
)

// HostAttachment is administrator input: a switch port facing an end host
// and the gateway address its VM interface must carry.
type HostAttachment struct {
	DPID    uint64
	Port    uint16
	Gateway netip.Prefix
}

// declared is the registry record of one desired-state item — the raw
// material an ownership transfer re-declares into the new owner's store.
type declared struct {
	up, down *rpcconf.Message
}

// TopologyController is the paper's topology controller, refactored from
// fire-and-forget RPCs to declarative configuration: discovery + IP
// computation feed desired-state stores, and the embedded reconcilers
// drive the RF-controller replicas to them. With one replica (the paper's
// deployment) there is exactly one store and one reconciler; with N the
// controller scopes each item to the store(s) of the replica(s) mastering
// its switches and re-homes items on ownership transfer.
type TopologyController struct {
	clk     clock.Clock
	disc    *discovery.Discovery
	ctl     *ctlkit.Controller
	alloc   *ipam.Allocator
	stores  []*intent.Store
	recs    []*intent.Reconciler
	ownerOf func(dpid uint64) (int, bool)

	mu       sync.Mutex
	linkNets map[discovery.Link][2]netip.Prefix // allocated link endpoint addrs
	hosts    map[uint64][]HostAttachment
	// registry holds every currently declared item, independent of which
	// store carries it right now: the source of truth Rehome re-scopes from.
	registry map[intent.Key]declared
	// asns annotates datapaths with their autonomous system (empty = flat
	// single-domain). Declared switch and link messages carry it so the
	// RF-controller can derive per-VM BGP configuration.
	asns map[uint64]uint32

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	errMu    sync.Mutex
	lastErrs []string // ring of recent delivery failures (diagnostics)

	// Errs observes RPC delivery failures (buffered; drops when full). With
	// the reconciler in place these are retried, so entries here are
	// telemetry, not lost configuration.
	Errs chan error
}

// NewTopologyController builds the controller application. disc supplies
// events (its Callbacks must be wired into ctl by the caller — Deployment
// does this — so the same Discovery instance can also serve a merged
// controller); senders carry configuration messages to the RPC server of
// each RF-controller replica (one store + reconciler per sender). ownerOf
// maps a datapath to the replica currently mastering it; nil sends
// everything to replica 0 (the single-controller deployment).
func NewTopologyController(clk clock.Clock, disc *discovery.Discovery, ctl *ctlkit.Controller,
	senders []intent.Sender, pool netip.Prefix, subnetBits int, hosts []HostAttachment,
	ownerOf func(dpid uint64) (int, bool), recOpts ...intent.Option) (*TopologyController, error) {
	if clk == nil {
		clk = clock.System()
	}
	if subnetBits == 0 {
		subnetBits = 30
	}
	if len(senders) == 0 {
		return nil, fmt.Errorf("core: topology controller needs at least one RPC sender")
	}
	if ownerOf == nil {
		ownerOf = func(uint64) (int, bool) { return 0, true }
	}
	alloc, err := ipam.New(pool, subnetBits)
	if err != nil {
		return nil, err
	}
	tc := &TopologyController{
		clk:      clk,
		disc:     disc,
		ctl:      ctl,
		alloc:    alloc,
		ownerOf:  ownerOf,
		linkNets: make(map[discovery.Link][2]netip.Prefix),
		hosts:    make(map[uint64][]HostAttachment),
		registry: make(map[intent.Key]declared),
		asns:     make(map[uint64]uint32),
		stop:     make(chan struct{}),
		Errs:     make(chan error, 64),
	}
	for _, h := range hosts {
		tc.hosts[h.DPID] = append(tc.hosts[h.DPID], h)
	}
	for _, snd := range senders {
		store := intent.NewStore()
		opts := append([]intent.Option{intent.WithOnError(tc.report)}, recOpts...)
		tc.stores = append(tc.stores, store)
		tc.recs = append(tc.recs, intent.NewReconciler(clk, store, snd, opts...))
	}
	return tc, nil
}

// keyOwnedBy reports whether replica r is (one of) the master(s) of a key's
// switches: a link item belongs to the store of each endpoint's master.
func (tc *TopologyController) keyOwnedBy(k intent.Key, r int) bool {
	if k.Kind == intent.KindLink {
		if o, ok := tc.ownerOf(k.ADPID); ok && o == r {
			return true
		}
		if o, ok := tc.ownerOf(k.BDPID); ok && o == r {
			return true
		}
		return false
	}
	o, ok := tc.ownerOf(k.DPID)
	return ok && o == r
}

// declare records an item in the registry and declares it into the store of
// every replica mastering it. An item whose switches currently have no live
// master stays registry-only until Rehome places it.
func (tc *TopologyController) declare(k intent.Key, up, down *rpcconf.Message) {
	tc.mu.Lock()
	tc.registry[k] = declared{up, down}
	tc.mu.Unlock()
	for r, s := range tc.stores {
		if tc.keyOwnedBy(k, r) {
			s.Declare(k, up, down)
		}
	}
}

// remove drops an item from the registry and removes it from every store.
func (tc *TopologyController) remove(k intent.Key) {
	tc.mu.Lock()
	delete(tc.registry, k)
	tc.mu.Unlock()
	for _, s := range tc.stores {
		s.Remove(k)
	}
}

// Rehome re-scopes desired state after an ownership change: every store
// drops the items it no longer masters (outright, no teardowns — including
// wedged deletions a dead replica could never deliver) and every registry
// item is re-declared into its current master's store. Declares are
// idempotent, so items that did not move are untouched.
func (tc *TopologyController) Rehome() {
	tc.mu.Lock()
	reg := make(map[intent.Key]declared, len(tc.registry))
	for k, d := range tc.registry {
		reg[k] = d
	}
	tc.mu.Unlock()
	for r, s := range tc.stores {
		r := r
		s.Retain(func(k intent.Key) bool { return tc.keyOwnedBy(k, r) })
	}
	for k, d := range reg {
		for r, s := range tc.stores {
			if tc.keyOwnedBy(k, r) {
				s.Declare(k, d.up, d.down)
			}
		}
	}
}

// SetASNs installs the administrator's AS annotation (dpid → AS number).
// Call before Run; an empty or nil map keeps the flat single-domain
// behaviour. Like the host attachments, this is part of the "very small part
// of configurations from the administrator" — everything else is derived.
func (tc *TopologyController) SetASNs(asns map[uint64]uint32) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for dpid, asn := range asns {
		tc.asns[dpid] = asn
	}
}

func (tc *TopologyController) asnOf(dpid uint64) uint32 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.asns[dpid]
}

// Run consumes discovery events and starts the reconcilers until Stop. It
// returns immediately.
func (tc *TopologyController) Run() {
	tc.disc.Run()
	for _, rec := range tc.recs {
		rec.Run()
	}
	tc.wg.Add(1)
	go func() {
		defer tc.wg.Done()
		for {
			select {
			case ev := <-tc.disc.Events():
				tc.handle(ev)
			case <-tc.stop:
				return
			}
		}
	}()
}

// Stop halts event processing and the reconcilers.
func (tc *TopologyController) Stop() {
	tc.stopOnce.Do(func() { close(tc.stop) })
	tc.disc.Stop()
	tc.wg.Wait()
	for _, rec := range tc.recs {
		rec.Stop()
	}
}

// StopReconciler halts one replica's reconciler — the controller-death path:
// a dead replica must stop writing immediately, while its store lingers
// until the lease lapses and Rehome drains it.
func (tc *TopologyController) StopReconciler(i int) {
	if i >= 0 && i < len(tc.recs) {
		tc.recs[i].Stop()
	}
}

func (tc *TopologyController) report(err error) {
	if err == nil {
		return
	}
	tc.errMu.Lock()
	tc.lastErrs = append(tc.lastErrs, err.Error())
	if len(tc.lastErrs) > 4 {
		tc.lastErrs = tc.lastErrs[len(tc.lastErrs)-4:]
	}
	tc.errMu.Unlock()
	select {
	case tc.Errs <- err:
	default:
	}
}

// LastErrors returns the most recent delivery failures (diagnostics).
func (tc *TopologyController) LastErrors() []string {
	tc.errMu.Lock()
	defer tc.errMu.Unlock()
	return append([]string(nil), tc.lastErrs...)
}

// handle translates one discovery observation into desired-state changes.
// Declarations are idempotent, so a re-announced switch or a flapping link
// converges to its final state no matter how the events interleave.
func (tc *TopologyController) handle(ev discovery.Event) {
	switch ev.Type {
	case discovery.SwitchUp:
		dpid := ev.DPID
		// The paper's switch configuration message: dpid + port count.
		tc.declare(intent.SwitchKey(dpid),
			rpcconf.SwitchUpAS(dpid, len(ev.Ports), tc.asnOf(dpid)), rpcconf.SwitchDown(dpid))
		tc.mu.Lock()
		hosts := tc.hosts[dpid]
		tc.mu.Unlock()
		for _, h := range hosts {
			tc.declare(intent.HostKey(h.DPID, h.Port),
				rpcconf.HostUp(h.DPID, h.Port, h.Gateway),
				rpcconf.HostDown(h.DPID, h.Port))
		}
	case discovery.SwitchDown:
		tc.mu.Lock()
		hosts := tc.hosts[ev.DPID]
		tc.mu.Unlock()
		for _, h := range hosts {
			tc.remove(intent.HostKey(h.DPID, h.Port))
		}
		tc.remove(intent.SwitchKey(ev.DPID))
	case discovery.LinkUp:
		l := ev.Link
		tc.mu.Lock()
		ends, ok := tc.linkNets[l]
		if !ok {
			aEnd, bEnd, err := tc.alloc.LinkAddrs()
			if err != nil {
				tc.mu.Unlock()
				tc.report(fmt.Errorf("core: link %v: %w", l, err))
				return
			}
			ends = [2]netip.Prefix{aEnd, bEnd}
			tc.linkNets[l] = ends
		}
		tc.mu.Unlock()
		tc.declare(intent.LinkKey(l.ADPID, l.APort, l.BDPID, l.BPort),
			rpcconf.LinkUpAS(l.ADPID, l.APort, l.BDPID, l.BPort, ends[0], ends[1],
				tc.asnOf(l.ADPID), tc.asnOf(l.BDPID)),
			rpcconf.LinkDown(l.ADPID, l.APort, l.BDPID, l.BPort))
	case discovery.LinkDown:
		l := ev.Link
		tc.mu.Lock()
		ends, ok := tc.linkNets[l]
		delete(tc.linkNets, l)
		tc.mu.Unlock()
		if ok {
			tc.report(tc.alloc.Release(ends[0].Masked()))
		}
		tc.remove(intent.LinkKey(l.ADPID, l.APort, l.BDPID, l.BPort))
	}
}

// Allocator exposes the IP allocator (tests, GUI).
func (tc *TopologyController) Allocator() *ipam.Allocator { return tc.alloc }

// Store exposes replica 0's desired-state store (convergence checks, tests,
// GUI) — the whole store in a single-controller deployment.
func (tc *TopologyController) Store() *intent.Store { return tc.stores[0] }

// Stores exposes every replica's desired-state store.
func (tc *TopologyController) Stores() []*intent.Store { return tc.stores }

// Reconciler exposes replica 0's reconciliation engine.
func (tc *TopologyController) Reconciler() *intent.Reconciler { return tc.recs[0] }

// Package core implements the paper's contribution: the framework that
// configures RouteFlow automatically (Fig. 2). It contains
//
//   - the topology controller application: the LLDP discovery module plus
//     the logic that turns discovery events into *declared desired state* —
//     "on detection of a new switch" declare {dpid, #ports}; "on detection
//     of a new link" allocate unique IP addresses from the administrator's
//     range and declare them. A reconciler (internal/intent) continuously
//     diffs the declared state against what the rf-server has acknowledged
//     and (re)issues configuration RPCs with exponential backoff, so a
//     dropped message delays convergence instead of wedging it;
//   - the manual-configuration cost model the paper uses for Fig. 3's
//     baseline (5 min VM creation + 2 min mapping + 8 min routing
//     configuration per switch);
//   - Deployment, the orchestration that assembles a full system — emulated
//     switches, FlowVisor, both controllers, the RPC pair, end hosts — from
//     a topology, and the experiment instrumentation (time to configured,
//     time to converged) used to regenerate the paper's figures.
package core

import (
	"fmt"
	"net/netip"
	"sync"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/intent"
	"routeflow/internal/ipam"
	"routeflow/internal/rpcconf"
)

// HostAttachment is administrator input: a switch port facing an end host
// and the gateway address its VM interface must carry.
type HostAttachment struct {
	DPID    uint64
	Port    uint16
	Gateway netip.Prefix
}

// TopologyController is the paper's topology controller, refactored from
// fire-and-forget RPCs to declarative configuration: discovery + IP
// computation feed a desired-state store, and the embedded reconciler
// drives the RF-controller to it.
type TopologyController struct {
	clk   clock.Clock
	disc  *discovery.Discovery
	ctl   *ctlkit.Controller
	alloc *ipam.Allocator
	store *intent.Store
	rec   *intent.Reconciler

	mu       sync.Mutex
	linkNets map[discovery.Link][2]netip.Prefix // allocated link endpoint addrs
	hosts    map[uint64][]HostAttachment
	// asns annotates datapaths with their autonomous system (empty = flat
	// single-domain). Declared switch and link messages carry it so the
	// RF-controller can derive per-VM BGP configuration.
	asns map[uint64]uint32

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	errMu    sync.Mutex
	lastErrs []string // ring of recent delivery failures (diagnostics)

	// Errs observes RPC delivery failures (buffered; drops when full). With
	// the reconciler in place these are retried, so entries here are
	// telemetry, not lost configuration.
	Errs chan error
}

// NewTopologyController builds the controller application. disc supplies
// events (its Callbacks must be wired into ctl by the caller — Deployment
// does this — so the same Discovery instance can also serve a merged
// controller); client carries configuration messages to the RPC server.
func NewTopologyController(clk clock.Clock, disc *discovery.Discovery, ctl *ctlkit.Controller,
	client *rpcconf.Client, pool netip.Prefix, subnetBits int, hosts []HostAttachment,
	recOpts ...intent.Option) (*TopologyController, error) {
	if clk == nil {
		clk = clock.System()
	}
	if subnetBits == 0 {
		subnetBits = 30
	}
	alloc, err := ipam.New(pool, subnetBits)
	if err != nil {
		return nil, err
	}
	tc := &TopologyController{
		clk:      clk,
		disc:     disc,
		ctl:      ctl,
		alloc:    alloc,
		store:    intent.NewStore(),
		linkNets: make(map[discovery.Link][2]netip.Prefix),
		hosts:    make(map[uint64][]HostAttachment),
		asns:     make(map[uint64]uint32),
		stop:     make(chan struct{}),
		Errs:     make(chan error, 64),
	}
	for _, h := range hosts {
		tc.hosts[h.DPID] = append(tc.hosts[h.DPID], h)
	}
	opts := append([]intent.Option{intent.WithOnError(tc.report)}, recOpts...)
	tc.rec = intent.NewReconciler(clk, tc.store, client, opts...)
	return tc, nil
}

// SetASNs installs the administrator's AS annotation (dpid → AS number).
// Call before Run; an empty or nil map keeps the flat single-domain
// behaviour. Like the host attachments, this is part of the "very small part
// of configurations from the administrator" — everything else is derived.
func (tc *TopologyController) SetASNs(asns map[uint64]uint32) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for dpid, asn := range asns {
		tc.asns[dpid] = asn
	}
}

func (tc *TopologyController) asnOf(dpid uint64) uint32 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.asns[dpid]
}

// Run consumes discovery events and starts the reconciler until Stop. It
// returns immediately.
func (tc *TopologyController) Run() {
	tc.disc.Run()
	tc.rec.Run()
	tc.wg.Add(1)
	go func() {
		defer tc.wg.Done()
		for {
			select {
			case ev := <-tc.disc.Events():
				tc.handle(ev)
			case <-tc.stop:
				return
			}
		}
	}()
}

// Stop halts event processing and the reconciler.
func (tc *TopologyController) Stop() {
	tc.stopOnce.Do(func() { close(tc.stop) })
	tc.disc.Stop()
	tc.wg.Wait()
	tc.rec.Stop()
}

func (tc *TopologyController) report(err error) {
	if err == nil {
		return
	}
	tc.errMu.Lock()
	tc.lastErrs = append(tc.lastErrs, err.Error())
	if len(tc.lastErrs) > 4 {
		tc.lastErrs = tc.lastErrs[len(tc.lastErrs)-4:]
	}
	tc.errMu.Unlock()
	select {
	case tc.Errs <- err:
	default:
	}
}

// LastErrors returns the most recent delivery failures (diagnostics).
func (tc *TopologyController) LastErrors() []string {
	tc.errMu.Lock()
	defer tc.errMu.Unlock()
	return append([]string(nil), tc.lastErrs...)
}

// handle translates one discovery observation into desired-state changes.
// Declarations are idempotent, so a re-announced switch or a flapping link
// converges to its final state no matter how the events interleave.
func (tc *TopologyController) handle(ev discovery.Event) {
	switch ev.Type {
	case discovery.SwitchUp:
		dpid := ev.DPID
		// The paper's switch configuration message: dpid + port count.
		tc.store.Declare(intent.SwitchKey(dpid),
			rpcconf.SwitchUpAS(dpid, len(ev.Ports), tc.asnOf(dpid)), rpcconf.SwitchDown(dpid))
		tc.mu.Lock()
		hosts := tc.hosts[dpid]
		tc.mu.Unlock()
		for _, h := range hosts {
			tc.store.Declare(intent.HostKey(h.DPID, h.Port),
				rpcconf.HostUp(h.DPID, h.Port, h.Gateway),
				rpcconf.HostDown(h.DPID, h.Port))
		}
	case discovery.SwitchDown:
		tc.mu.Lock()
		hosts := tc.hosts[ev.DPID]
		tc.mu.Unlock()
		for _, h := range hosts {
			tc.store.Remove(intent.HostKey(h.DPID, h.Port))
		}
		tc.store.Remove(intent.SwitchKey(ev.DPID))
	case discovery.LinkUp:
		l := ev.Link
		tc.mu.Lock()
		ends, ok := tc.linkNets[l]
		if !ok {
			aEnd, bEnd, err := tc.alloc.LinkAddrs()
			if err != nil {
				tc.mu.Unlock()
				tc.report(fmt.Errorf("core: link %v: %w", l, err))
				return
			}
			ends = [2]netip.Prefix{aEnd, bEnd}
			tc.linkNets[l] = ends
		}
		tc.mu.Unlock()
		tc.store.Declare(intent.LinkKey(l.ADPID, l.APort, l.BDPID, l.BPort),
			rpcconf.LinkUpAS(l.ADPID, l.APort, l.BDPID, l.BPort, ends[0], ends[1],
				tc.asnOf(l.ADPID), tc.asnOf(l.BDPID)),
			rpcconf.LinkDown(l.ADPID, l.APort, l.BDPID, l.BPort))
	case discovery.LinkDown:
		l := ev.Link
		tc.mu.Lock()
		ends, ok := tc.linkNets[l]
		delete(tc.linkNets, l)
		tc.mu.Unlock()
		if ok {
			tc.report(tc.alloc.Release(ends[0].Masked()))
		}
		tc.store.Remove(intent.LinkKey(l.ADPID, l.APort, l.BDPID, l.BPort))
	}
}

// Allocator exposes the IP allocator (tests, GUI).
func (tc *TopologyController) Allocator() *ipam.Allocator { return tc.alloc }

// Store exposes the desired-state store (convergence checks, tests, GUI).
func (tc *TopologyController) Store() *intent.Store { return tc.store }

// Reconciler exposes the reconciliation engine.
func (tc *TopologyController) Reconciler() *intent.Reconciler { return tc.rec }

// Package core implements the paper's contribution: the framework that
// configures RouteFlow automatically (Fig. 2). It contains
//
//   - the topology controller application: the LLDP discovery module plus
//     the logic that turns discovery events into configuration messages —
//     "on detection of a new switch" send {dpid, #ports}; "on detection of
//     a new link" allocate unique IP addresses from the administrator's
//     range and send them — dispatched through the RPC client;
//   - the manual-configuration cost model the paper uses for Fig. 3's
//     baseline (5 min VM creation + 2 min mapping + 8 min routing
//     configuration per switch);
//   - Deployment, the orchestration that assembles a full system — emulated
//     switches, FlowVisor, both controllers, the RPC pair, end hosts — from
//     a topology, and the experiment instrumentation (time to configured,
//     time to converged) used to regenerate the paper's figures.
package core

import (
	"fmt"
	"net/netip"
	"sync"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/ipam"
	"routeflow/internal/rpcconf"
)

// HostAttachment is administrator input: a switch port facing an end host
// and the gateway address its VM interface must carry.
type HostAttachment struct {
	DPID    uint64
	Port    uint16
	Gateway netip.Prefix
}

// TopologyController is the paper's topology controller: discovery + IP
// computation + the RPC client feeding the RF-controller.
type TopologyController struct {
	clk    clock.Clock
	disc   *discovery.Discovery
	ctl    *ctlkit.Controller
	client *rpcconf.Client
	alloc  *ipam.Allocator

	mu       sync.Mutex
	linkNets map[discovery.Link]netip.Prefix
	hosts    map[uint64][]HostAttachment
	sent     map[uint64]bool // switch-up delivered

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	// Errs receives RPC delivery failures (buffered; drops when full).
	Errs chan error
}

// NewTopologyController builds the controller application. disc supplies
// events (its Callbacks must be wired into ctl by the caller — Deployment
// does this — so the same Discovery instance can also serve a merged
// controller); client carries configuration messages to the RPC server.
func NewTopologyController(clk clock.Clock, disc *discovery.Discovery, ctl *ctlkit.Controller,
	client *rpcconf.Client, pool netip.Prefix, subnetBits int, hosts []HostAttachment) (*TopologyController, error) {
	if clk == nil {
		clk = clock.System()
	}
	if subnetBits == 0 {
		subnetBits = 30
	}
	alloc, err := ipam.New(pool, subnetBits)
	if err != nil {
		return nil, err
	}
	tc := &TopologyController{
		clk:      clk,
		disc:     disc,
		ctl:      ctl,
		client:   client,
		alloc:    alloc,
		linkNets: make(map[discovery.Link]netip.Prefix),
		hosts:    make(map[uint64][]HostAttachment),
		sent:     make(map[uint64]bool),
		stop:     make(chan struct{}),
		Errs:     make(chan error, 64),
	}
	for _, h := range hosts {
		tc.hosts[h.DPID] = append(tc.hosts[h.DPID], h)
	}
	return tc, nil
}

// Run consumes discovery events until Stop. Call in a goroutine or rely on
// the internal one (Run returns immediately).
func (tc *TopologyController) Run() {
	tc.disc.Run()
	tc.wg.Add(1)
	go func() {
		defer tc.wg.Done()
		for {
			select {
			case ev := <-tc.disc.Events():
				tc.handle(ev)
			case <-tc.stop:
				return
			}
		}
	}()
}

// Stop halts event processing.
func (tc *TopologyController) Stop() {
	tc.stopOnce.Do(func() { close(tc.stop) })
	tc.disc.Stop()
	tc.wg.Wait()
}

func (tc *TopologyController) report(err error) {
	if err == nil {
		return
	}
	select {
	case tc.Errs <- err:
	default:
	}
}

func (tc *TopologyController) handle(ev discovery.Event) {
	switch ev.Type {
	case discovery.SwitchUp:
		// The paper's switch configuration message: dpid + port count.
		tc.report(tc.client.Send(rpcconf.SwitchUp(ev.DPID, len(ev.Ports))))
		tc.mu.Lock()
		first := !tc.sent[ev.DPID]
		tc.sent[ev.DPID] = true
		hosts := tc.hosts[ev.DPID]
		tc.mu.Unlock()
		if first {
			for _, h := range hosts {
				tc.report(tc.client.Send(rpcconf.HostUp(h.DPID, h.Port, h.Gateway)))
			}
		}
	case discovery.SwitchDown:
		tc.mu.Lock()
		tc.sent[ev.DPID] = false
		tc.mu.Unlock()
		tc.report(tc.client.Send(rpcconf.SwitchDown(ev.DPID)))
	case discovery.LinkUp:
		aEnd, bEnd, err := tc.alloc.LinkAddrs()
		if err != nil {
			tc.report(fmt.Errorf("core: link %v: %w", ev.Link, err))
			return
		}
		tc.mu.Lock()
		tc.linkNets[ev.Link] = aEnd.Masked()
		tc.mu.Unlock()
		l := ev.Link
		tc.report(tc.client.Send(rpcconf.LinkUp(l.ADPID, l.APort, l.BDPID, l.BPort, aEnd, bEnd)))
	case discovery.LinkDown:
		tc.mu.Lock()
		sub, ok := tc.linkNets[ev.Link]
		delete(tc.linkNets, ev.Link)
		tc.mu.Unlock()
		if ok {
			tc.report(tc.alloc.Release(sub))
		}
		l := ev.Link
		tc.report(tc.client.Send(rpcconf.LinkDown(l.ADPID, l.APort, l.BDPID, l.BPort)))
	}
}

// Allocator exposes the IP allocator (tests, GUI).
func (tc *TopologyController) Allocator() *ipam.Allocator { return tc.alloc }

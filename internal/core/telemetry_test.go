package core

import (
	"testing"
	"time"

	"routeflow/internal/telemetry"
	"routeflow/internal/topo"
)

// TestTelemetryEndToEnd drives real host traffic through a deployment with
// the streaming-telemetry pipeline on and checks the controller-side views:
// every directed host pair is placed on its path, the monitor switch's
// exports reach the aggregator, and both the flow view and every on-path
// link view account for the traffic.
func TestTelemetryEndToEnd(t *testing.T) {
	g := topo.Line(3) // 0 - 1 - 2: a single path, so charging is exact
	opts := fastOptions(g, 0, 2)
	opts.Telemetry = true
	opts.TelemetryInterval = 20 * time.Millisecond
	opts.TelemetrySpan = 2 * time.Second
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Both directed pairs are placed, each monitored on its own path.
	pls := d.TelemetryPlacements()
	if len(pls) != 2 {
		t.Fatalf("placements = %+v", pls)
	}
	for _, pl := range pls {
		if pl.Path == nil || pl.Monitor < 0 {
			t.Fatalf("flow %d unplaced: %+v", pl.ID, pl)
		}
	}

	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("host0 could not reach host2: %v", lastErr)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := h0.SendUDP(h2.Addr(), 1234, 9000, []byte("telemetry-load")); err != nil {
			t.Fatal(err)
		}
	}

	// The 0→2 flow view (ID 1: host pairs in sorted order) and the views of
	// both links on its path must catch up with the exports.
	for {
		snap := d.TelemetrySnapshot()
		var pkts uint64
		for _, f := range snap.Flows {
			if f.SrcNode == 0 && f.DstNode == 2 {
				pkts = f.Packets
				if f.ID != 1 {
					t.Fatalf("0→2 flow has ID %d, want 1", f.ID)
				}
			}
		}
		if pkts >= n {
			var l01, l12 uint64
			for _, ls := range snap.Links {
				switch ls.Link {
				case telemetry.MakeLinkKey(0, 1):
					l01 = ls.Packets
				case telemetry.MakeLinkKey(1, 2):
					l12 = ls.Packets
				}
			}
			if l01 < n || l12 < n {
				t.Fatalf("link views lag the flow view: 0-1=%d 1-2=%d flow=%d", l01, l12, pkts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flow view stuck at %d/%d packets; snapshot=%+v", pkts, n, snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

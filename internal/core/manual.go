package core

import "time"

// ManualModel is the paper's manual-configuration cost model (§2.1): per
// switch, an administrator spends 5 minutes creating the VM (writing VM
// configuration, installing a Linux distribution and packages like Quagga),
// 2 minutes mapping switch interfaces to VM interfaces, and 8 minutes
// writing the routing configuration. Fig. 3's manual series is this model
// evaluated over ring sizes; §1's "typically 7 hours for 28 switches"
// is ManualModel{}.Total(28).
type ManualModel struct {
	VMCreation    time.Duration // default 5 min
	Mapping       time.Duration // default 2 min
	RoutingConfig time.Duration // default 8 min
}

// DefaultManualModel returns the paper's stated figures.
func DefaultManualModel() ManualModel {
	return ManualModel{
		VMCreation:    5 * time.Minute,
		Mapping:       2 * time.Minute,
		RoutingConfig: 8 * time.Minute,
	}
}

// PerSwitch returns the administrator time for one switch.
func (m ManualModel) PerSwitch() time.Duration {
	mm := m.withDefaults()
	return mm.VMCreation + mm.Mapping + mm.RoutingConfig
}

// Total returns the administrator time for n switches.
func (m ManualModel) Total(n int) time.Duration {
	return time.Duration(n) * m.PerSwitch()
}

func (m ManualModel) withDefaults() ManualModel {
	d := DefaultManualModel()
	if m.VMCreation > 0 {
		d.VMCreation = m.VMCreation
	}
	if m.Mapping > 0 {
		d.Mapping = m.Mapping
	}
	if m.RoutingConfig > 0 {
		d.RoutingConfig = m.RoutingConfig
	}
	return d
}

package core

// The deployment's telemetry placement manager: it owns the monitoring
// program the RF platforms push to their switches. Every refresh it takes
// the flow population (all directed host pairs), computes a Floware-balanced
// placement over the links that are administratively up, splits the program
// by mastership, and hands each live replica its share. The program epoch
// bumps whenever the computed program changes — placements moved, a link
// died, a shard re-homed — which makes every affected switch re-baseline its
// export stream under the new epoch, so views stay exactly-once across
// failover (the chaos invariants hold the system to this).

import (
	"fmt"
	"strings"
	"time"

	"routeflow/internal/openflow"
	"routeflow/internal/rf"
	"routeflow/internal/telemetry"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// telemetryRefreshInterval paces placement recomputation (protocol time).
// Refreshes that compute an unchanged program push nothing.
const telemetryRefreshInterval = 500 * time.Millisecond

// telemetryPairs lists the monitored flows: every ordered pair of host
// nodes, in a fixed order so flow IDs are stable across refreshes.
func (d *Deployment) telemetryPairs() [][2]int {
	nodes := d.HostNodes()
	var out [][2]int
	for _, s := range nodes {
		for _, t := range nodes {
			if s != t {
				out = append(out, [2]int{s, t})
			}
		}
	}
	return out
}

// monitorRuleFor compiles one placement into the switch-side match rule:
// traffic from the source host subnet to the destination host subnet.
func monitorRuleFor(pl telemetry.Placement) openflow.MonitorRule {
	r := openflow.MonitorRule{ID: pl.ID}
	src := HostSubnet(pl.SrcNode)
	dst := HostSubnet(pl.DstNode)
	r.Src = src.Addr().As4()
	r.SrcBits = uint8(src.Bits())
	r.Dst = dst.Addr().As4()
	r.DstBits = uint8(dst.Bits())
	return r
}

// linkUpFunc returns the live-link predicate over the deployment's cables.
func (d *Deployment) linkUpFunc() func(topo.Link) bool {
	linkIdx := make(map[topo.Link]int, d.graph.NumLinks())
	for i, l := range d.graph.Links() {
		linkIdx[l] = i
	}
	return func(l topo.Link) bool { return d.LinkIsUp(linkIdx[l]) }
}

// refreshTelemetry recomputes the monitoring program and, when it changed,
// pushes each live replica its share under a bumped epoch. Path pins are
// re-derived and diff-pushed every refresh — under ECMP the pins are what
// hold each monitored pair to the path its counters are charged along, and
// the unconditional push re-seeds a failover successor's empty pin program.
func (d *Deployment) refreshTelemetry() {
	pairs := d.telemetryPairs()
	if len(pairs) == 0 {
		return
	}
	d.telPushMu.Lock()
	defer d.telPushMu.Unlock()
	linkUp := d.linkUpFunc()
	pls := telemetry.ComputePlacementsAssigned(d.graph, pairs, linkUp, d.teAssignedPaths())

	// Path pins, split by mastership of each transit switch: every placed
	// pair is held to its charged path by an explicit flow entry per hop
	// (the destination switch delivers through its host flow). SetPins
	// diffs internally, so an unchanged program pushes nothing.
	nrep := len(d.reps)
	ports := make(map[[2]int][2]uint16, 2*d.graph.NumLinks())
	for _, l := range d.graph.Links() {
		ports[[2]int{l.A, l.B}] = [2]uint16{uint16(l.APort), uint16(l.BPort)}
		ports[[2]int{l.B, l.A}] = [2]uint16{uint16(l.BPort), uint16(l.APort)}
	}
	pinsFor := make([][]rf.PinFlow, nrep)
	for _, pl := range pls {
		for i := 0; i+1 < len(pl.Path); i++ {
			u, v := pl.Path[i], pl.Path[i+1]
			pp, ok := ports[[2]int{u, v}]
			if !ok {
				continue
			}
			dpid := DPIDForNode(u)
			r, owned := d.ownerOfDPID(dpid)
			if !owned || !d.reps[r].alive.Load() || d.reps[r].partitioned.Load() {
				continue
			}
			pinsFor[r] = append(pinsFor[r], rf.PinFlow{
				DPID:    dpid,
				Src:     HostSubnet(pl.SrcNode),
				Dst:     HostSubnet(pl.DstNode),
				DlSrc:   vnet.MAC(dpid, pp[0]),
				DlDst:   vnet.MAC(DPIDForNode(v), pp[1]),
				OutPort: pp[0],
			})
		}
	}
	for i, rep := range d.reps {
		if rep.alive.Load() {
			rep.platform.SetPins(pinsFor[i])
		}
	}

	// Split by mastership of the monitor switch. A flow whose monitor is
	// currently orphaned (master dead, lease not yet lapsed) is left out
	// this round; the rehome changes the program and the next refresh
	// re-places it on the successor.
	flows := make([][]telemetry.Placement, nrep)
	rules := make([]map[uint64][]openflow.MonitorRule, nrep)
	var sig strings.Builder
	for _, pl := range pls {
		if pl.Monitor < 0 {
			continue
		}
		dpid := DPIDForNode(pl.Monitor)
		r, ok := d.ownerOfDPID(dpid)
		if !ok || !d.reps[r].alive.Load() || d.reps[r].partitioned.Load() {
			continue
		}
		flows[r] = append(flows[r], pl)
		if rules[r] == nil {
			rules[r] = make(map[uint64][]openflow.MonitorRule)
		}
		rules[r][dpid] = append(rules[r][dpid], monitorRuleFor(pl))
		fmt.Fprintf(&sig, "%d@%d>%d;%v|", pl.ID, pl.Monitor, r, pl.Path)
	}

	d.telMu.Lock()
	changed := sig.String() != d.telSig
	if changed {
		d.telEpoch++
		d.telSig = sig.String()
		d.telPlaced = pls
	}
	epoch := d.telEpoch
	d.telMu.Unlock()
	if !changed {
		return // dropped pushes are repaired by each platform's repair loop
	}
	for i, rep := range d.reps {
		if !rep.alive.Load() {
			continue
		}
		rep.platform.SetTelemetry(rf.TelemetryProgram{
			Epoch:       epoch,
			Interval:    d.opts.TelemetryInterval,
			Span:        d.opts.TelemetrySpan,
			Flows:       flows[i],
			MonitorDPID: func(node int) uint64 { return DPIDForNode(node) },
			Rules:       rules[i],
		})
	}
}

// telemetryLoop re-evaluates the program until the deployment closes.
func (d *Deployment) telemetryLoop() {
	defer d.telWG.Done()
	tick := d.clk.NewTicker(telemetryRefreshInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.telStop:
			return
		case <-tick.C():
		}
		d.refreshTelemetry()
	}
}

// TelemetryEnabled reports whether the streaming-telemetry pipeline runs.
func (d *Deployment) TelemetryEnabled() bool { return d.opts.Telemetry }

// TelemetryPlacements returns the current monitoring placement — one entry
// per monitored flow (directed host pair), with its live path and observing
// switch. Empty until telemetry is enabled and the first program computed.
func (d *Deployment) TelemetryPlacements() []telemetry.Placement {
	d.telMu.Lock()
	defer d.telMu.Unlock()
	out := make([]telemetry.Placement, len(d.telPlaced))
	copy(out, d.telPlaced)
	return out
}

// TelemetrySnapshot merges the per-replica flow and link views into the
// cluster-wide picture. Replicas own disjoint flow sets (each aggregates
// only flows monitored on switches it masters), so the merge is exact.
func (d *Deployment) TelemetrySnapshot() telemetry.Snapshot {
	parts := make([]telemetry.Snapshot, 0, len(d.reps))
	for _, rep := range d.reps {
		if rep.alive.Load() {
			parts = append(parts, rep.platform.TelemetrySnapshot())
		}
	}
	return telemetry.Merge(parts...)
}

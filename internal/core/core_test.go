package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"routeflow/internal/quagga"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// fastOptions returns deployment options with compressed protocol timers so
// an integration test runs in well under a second of wall time per phase.
func fastOptions(g *topo.Graph, hostNodes ...int) Options {
	return Options{
		Topology:      g,
		HostNodes:     hostNodes,
		BootDelay:     50 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		LinkTTL:       60 * time.Millisecond,
		Timers: quagga.Timers{
			Hello:    20 * time.Millisecond,
			Dead:     100 * time.Millisecond,
			SPFDelay: 5 * time.Millisecond,
		},
	}
}

func TestManualModel(t *testing.T) {
	m := DefaultManualModel()
	if m.PerSwitch() != 15*time.Minute {
		t.Fatalf("per switch = %v", m.PerSwitch())
	}
	// The paper's headline: 7 hours for 28 switches.
	if m.Total(28) != 7*time.Hour {
		t.Fatalf("total(28) = %v, want 7h", m.Total(28))
	}
	// Zero-value model inherits defaults.
	var z ManualModel
	if z.Total(1) != 15*time.Minute {
		t.Fatalf("zero-value total = %v", z.Total(1))
	}
	custom := ManualModel{VMCreation: time.Minute}
	if custom.PerSwitch() != time.Minute+2*time.Minute+8*time.Minute {
		t.Fatalf("custom = %v", custom.PerSwitch())
	}
}

func TestDPIDAndSubnetHelpers(t *testing.T) {
	if DPIDForNode(0) != 1 || DPIDForNode(27) != 28 {
		t.Fatal("dpid mapping")
	}
	if HostSubnet(0) != netip.MustParsePrefix("10.1.0.0/24") {
		t.Fatalf("host subnet = %v", HostSubnet(0))
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(Options{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := NewDeployment(Options{Topology: topo.Ring(3), HostNodes: []int{99}}); err == nil {
		t.Fatal("bad host node accepted")
	}
}

func TestRingAutoConfigurationEndToEnd(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	statuses := make(chan vnet.State, 64)
	d.opts.OnStatus = nil // set via Options normally; validated in another test
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	_ = statuses

	// Phase 1: every switch gets its VM (green) — the Fig. 3 metric.
	cfgTime, err := d.AwaitConfigured(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cfgTime <= 0 {
		t.Fatalf("configuration time = %v", cfgTime)
	}
	if d.Platform().NumVMs() != 4 {
		t.Fatalf("VMs = %d", d.Platform().NumVMs())
	}

	// Phase 2: OSPF adjacencies on all ring links.
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The RPC server must have written config files for each VM.
	files, ok := d.Platform().ConfigFiles(DPIDForNode(1))
	if !ok {
		t.Fatal("no config files for node 1")
	}
	for _, name := range []string{"zebra.conf", "ospfd.conf", "bgpd.conf"} {
		if files[name] == "" {
			t.Fatalf("%s missing", name)
		}
	}
	if !strings.Contains(files["ospfd.conf"], "router ospf") {
		t.Fatal("ospfd.conf lacks router stanza")
	}

	// Phase 3: actual dataplane connectivity — host 0 pings host 2 across
	// two OSPF-routed hops.
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("host0 could not reach host2: %v", lastErr)
	}

	// Fast-path flows must exist by now (host /32s and OSPF prefixes).
	if d.Platform().FlowCount(DPIDForNode(0)) == 0 {
		t.Fatal("no flows installed on switch 0")
	}
	// The FlowVisor carried both slices' traffic.
	if c, ok := d.FlowVisor().Counters("topology"); !ok || c.PacketIns == 0 {
		t.Fatalf("topology slice counters = %+v, %v", c, ok)
	}
	if c, ok := d.FlowVisor().Counters("rf"); !ok || c.ToSwitch == 0 {
		t.Fatalf("rf slice counters = %+v, %v", c, ok)
	}
}

func TestStatusCallbackLifecycle(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g)
	events := make(chan vnet.State, 32)
	opts.OnStatus = func(dpid uint64, st vnet.State) { events <- st }
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConfigured(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// We must have seen booting (red) before up (green).
	sawBooting, sawUp := false, false
	for {
		select {
		case st := <-events:
			if st == vnet.StateBooting {
				sawBooting = true
			}
			if st == vnet.StateUp {
				sawUp = true
			}
			if sawBooting && sawUp {
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("status events incomplete: booting=%v up=%v", sawBooting, sawUp)
		}
	}
}

func TestMergedControllerAblation(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g, 0, 1)
	opts.NoFlowVisor = true
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if d.FlowVisor() != nil {
		t.Fatal("merged deployment created a FlowVisor")
	}
	if _, err := d.AwaitConfigured(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	h0, _ := d.Host(0)
	h1, _ := d.Host(1)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h1.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("merged ablation never carried traffic: %v", lastErr)
}

func TestLinkFailureReconvergence(t *testing.T) {
	// Ring of 4: cut one link; OSPF must route around it.
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := h0.Ping(h2.Addr(), 2*time.Second); err == nil {
			break
		}
	}
	// Cut the 0-1 link (index 0 in ring construction).
	if err := d.SetLinkUp(0, false); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLinkUp(99, false); err == nil {
		t.Fatal("bogus link index accepted")
	}
	// Traffic must recover via the other ring direction after OSPF
	// reconverges (dead interval + SPF + flow reinstall).
	deadline = time.Now().Add(20 * time.Second)
	var lastErr error
	recovered := false
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no connectivity after link failure: %v", lastErr)
	}
}

func TestTopologyControllerAllocatorExposed(t *testing.T) {
	g := topo.Ring(3)
	d, err := NewDeployment(fastOptions(g))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Three ring links → three /30 allocations.
	if got := len(d.TopologyController().Allocator().Allocated()); got != 3 {
		t.Fatalf("allocated subnets = %d, want 3", got)
	}
	if d.Graph().NumNodes() != 3 {
		t.Fatal("graph accessor")
	}
	if _, ok := d.Switch(0); !ok {
		t.Fatal("switch accessor")
	}
	if _, ok := d.Host(0); ok {
		t.Fatal("host accessor should be empty (none configured)")
	}
	if _, ok := d.HostGateway(0); ok {
		t.Fatal("gateway accessor should be empty")
	}
	if err := d.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

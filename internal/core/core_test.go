package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"routeflow/internal/quagga"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// fastOptions returns deployment options with compressed protocol timers so
// an integration test runs in well under a second of wall time per phase.
func fastOptions(g *topo.Graph, hostNodes ...int) Options {
	return Options{
		Topology:      g,
		HostNodes:     hostNodes,
		BootDelay:     50 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		LinkTTL:       60 * time.Millisecond,
		Timers: quagga.Timers{
			Hello:    20 * time.Millisecond,
			Dead:     100 * time.Millisecond,
			SPFDelay: 5 * time.Millisecond,
			// BGP timers only matter on AS-annotated topologies; compressed
			// to the same scale as the OSPF timers.
			BGPHold:         300 * time.Millisecond,
			BGPConnectRetry: 50 * time.Millisecond,
		},
	}
}

func TestManualModel(t *testing.T) {
	m := DefaultManualModel()
	if m.PerSwitch() != 15*time.Minute {
		t.Fatalf("per switch = %v", m.PerSwitch())
	}
	// The paper's headline: 7 hours for 28 switches.
	if m.Total(28) != 7*time.Hour {
		t.Fatalf("total(28) = %v, want 7h", m.Total(28))
	}
	// Zero-value model inherits defaults.
	var z ManualModel
	if z.Total(1) != 15*time.Minute {
		t.Fatalf("zero-value total = %v", z.Total(1))
	}
	custom := ManualModel{VMCreation: time.Minute}
	if custom.PerSwitch() != time.Minute+2*time.Minute+8*time.Minute {
		t.Fatalf("custom = %v", custom.PerSwitch())
	}
}

func TestDPIDAndSubnetHelpers(t *testing.T) {
	if DPIDForNode(0) != 1 || DPIDForNode(27) != 28 {
		t.Fatal("dpid mapping")
	}
	if HostSubnet(0) != netip.MustParsePrefix("10.1.0.0/24") {
		t.Fatalf("host subnet = %v", HostSubnet(0))
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(Options{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := NewDeployment(Options{Topology: topo.Ring(3), HostNodes: []int{99}}); err == nil {
		t.Fatal("bad host node accepted")
	}
}

func TestRingAutoConfigurationEndToEnd(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	statuses := make(chan vnet.State, 64)
	d.opts.OnStatus = nil // set via Options normally; validated in another test
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	_ = statuses

	// Phase 1: every switch gets its VM (green) — the Fig. 3 metric.
	cfgTime, err := d.AwaitConfigured(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cfgTime <= 0 {
		t.Fatalf("configuration time = %v", cfgTime)
	}
	if d.Platform().NumVMs() != 4 {
		t.Fatalf("VMs = %d", d.Platform().NumVMs())
	}

	// Phase 2: OSPF adjacencies on all ring links.
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The RPC server must have written config files for each VM.
	files, ok := d.Platform().ConfigFiles(DPIDForNode(1))
	if !ok {
		t.Fatal("no config files for node 1")
	}
	for _, name := range []string{"zebra.conf", "ospfd.conf", "bgpd.conf"} {
		if files[name] == "" {
			t.Fatalf("%s missing", name)
		}
	}
	if !strings.Contains(files["ospfd.conf"], "router ospf") {
		t.Fatal("ospfd.conf lacks router stanza")
	}

	// Phase 3: actual dataplane connectivity — host 0 pings host 2 across
	// two OSPF-routed hops.
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("host0 could not reach host2: %v", lastErr)
	}

	// Fast-path flows must exist by now (host /32s and OSPF prefixes).
	if d.Platform().FlowCount(DPIDForNode(0)) == 0 {
		t.Fatal("no flows installed on switch 0")
	}
	// The FlowVisor carried both slices' traffic.
	if c, ok := d.FlowVisor().Counters("topology"); !ok || c.PacketIns == 0 {
		t.Fatalf("topology slice counters = %+v, %v", c, ok)
	}
	if c, ok := d.FlowVisor().Counters("rf"); !ok || c.ToSwitch == 0 {
		t.Fatalf("rf slice counters = %+v, %v", c, ok)
	}
}

func TestStatusCallbackLifecycle(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g)
	events := make(chan vnet.State, 32)
	opts.OnStatus = func(dpid uint64, st vnet.State) { events <- st }
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConfigured(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// We must have seen booting (red) before up (green).
	sawBooting, sawUp := false, false
	for {
		select {
		case st := <-events:
			if st == vnet.StateBooting {
				sawBooting = true
			}
			if st == vnet.StateUp {
				sawUp = true
			}
			if sawBooting && sawUp {
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("status events incomplete: booting=%v up=%v", sawBooting, sawUp)
		}
	}
}

func TestMergedControllerAblation(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g, 0, 1)
	opts.NoFlowVisor = true
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if d.FlowVisor() != nil {
		t.Fatal("merged deployment created a FlowVisor")
	}
	if _, err := d.AwaitConfigured(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	h0, _ := d.Host(0)
	h1, _ := d.Host(1)
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h1.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("merged ablation never carried traffic: %v", lastErr)
}

func TestLinkFailureReconvergence(t *testing.T) {
	// Ring of 4: cut one link; OSPF must route around it.
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := h0.Ping(h2.Addr(), 2*time.Second); err == nil {
			break
		}
	}
	// Cut the 0-1 link (index 0 in ring construction).
	if err := d.SetLinkUp(0, false); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLinkUp(99, false); err == nil {
		t.Fatal("bogus link index accepted")
	}
	// Traffic must recover via the other ring direction after OSPF
	// reconverges (dead interval + SPF + flow reinstall).
	deadline = time.Now().Add(20 * time.Second)
	var lastErr error
	recovered := false
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no connectivity after link failure: %v", lastErr)
	}
}

// TestPanEuropeanConvergesUnderRPCDrops is the acceptance scenario of the
// reconciliation refactor: with 20% of RPC frames dropped on the control
// channel (and the client's own retries cut to a single attempt so the
// reconciler carries the load), a full pan-European deployment still
// reaches configured *and* converged — including host gateway subnets.
// Under the fire-and-forget design a single dropped HostUp wedged a host
// gateway forever.
func TestPanEuropeanConvergesUnderRPCDrops(t *testing.T) {
	g := topo.PanEuropean()
	opts := fastOptions(g, 0, 27)
	// Gentler timers than the ring-4 tests: 28 switches × 41 links under
	// the race detector's slowdown must not miss dead intervals.
	opts.ProbeInterval = 50 * time.Millisecond
	opts.LinkTTL = 300 * time.Millisecond
	opts.Timers = quagga.Timers{
		Hello:    60 * time.Millisecond,
		Dead:     300 * time.Millisecond,
		SPFDelay: 10 * time.Millisecond,
	}
	opts.RPCDropRate = 0.2
	opts.RPCDropSeed = 7
	opts.RPCAttempts = 1                           // no short-horizon retry: reconciler only
	opts.ReconcilerBackoff = time.Millisecond * 20 // keep retry latency test-sized
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConfigured(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := d.TopologyController().Store().Statistics()
	if st.Failures == 0 {
		t.Fatalf("drop injection never exercised the reconciler: %+v", st)
	}
	// Bounded retries: convergence must come from backoff-paced repair, not
	// a hot resend loop. 28 switches + 41 links + 2 hosts ≈ 71 items; at a
	// 20% drop rate a generous ceiling is a few sends per item.
	if st.Sends > 1000 {
		t.Fatalf("unbounded retry storm: %+v", st)
	}
	// Converged now implies host gateways are routable: the demo's actual
	// payload path must come up.
	h0, _ := d.Host(0)
	h27, _ := d.Host(27)
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h27.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("hosts unreachable after converged under drops: %v", lastErr)
}

// TestLinkFlapStormReconverges flaps an inter-switch link repeatedly; the
// declarative pipeline must settle back to a fully converged, routable
// network every time the storm ends.
func TestLinkFlapStormReconverges(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.SetLinkUp(0, false); err != nil {
			t.Fatal(err)
		}
		time.Sleep(80 * time.Millisecond) // past LinkTTL: discovery sees the loss
		if err := d.SetLinkUp(0, true); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("never reconverged after flap storm: %v", err)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("no connectivity after flap storm: %v", lastErr)
}

// TestConvergedImpliesHostGatewaysRouted pins the AwaitConverged contract:
// once it returns, every VM holds a route to every host gateway and the
// gateway interfaces carry their addresses.
func TestConvergedImpliesHostGatewaysRouted(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{1, 3} {
		gw, _ := d.HostGateway(node)
		for _, n := range d.Graph().Nodes() {
			vm, ok := d.Platform().VM(DPIDForNode(n.ID))
			if !ok {
				t.Fatalf("no VM for node %d", n.ID)
			}
			if _, ok := vm.RIB().Lookup(gw); !ok {
				t.Fatalf("node %d has no route to gateway %v after converged", n.ID, gw)
			}
		}
	}
}

func TestTopologyControllerAllocatorExposed(t *testing.T) {
	g := topo.Ring(3)
	d, err := NewDeployment(fastOptions(g))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Three ring links → three /30 allocations.
	if got := len(d.TopologyController().Allocator().Allocated()); got != 3 {
		t.Fatalf("allocated subnets = %d, want 3", got)
	}
	if d.Graph().NumNodes() != 3 {
		t.Fatal("graph accessor")
	}
	if _, ok := d.Switch(0); !ok {
		t.Fatal("switch accessor")
	}
	if _, ok := d.Host(0); ok {
		t.Fatal("host accessor should be empty (none configured)")
	}
	if _, ok := d.HostGateway(0); ok {
		t.Fatal("gateway accessor should be empty")
	}
	if err := d.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

// TestPartitionedConvergenceIsHonest is the regression test for the
// last-path-dies audit: when link failures split the topology,
// AwaitConverged must neither spin until its timeout nor pretend the network
// fully converged. It returns once every component has quiesced,
// Partitioned() reports the split, cross-partition traffic honestly fails,
// and healing the links restores full convergence and connectivity.
func TestPartitionedConvergenceIsHonest(t *testing.T) {
	g := topo.Ring(4) // links: 0:(0-1) 1:(1-2) 2:(2-3) 3:(3-0)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Partitioned() {
		t.Fatal("intact ring reported partitioned")
	}

	// Cut links 0 and 2: components {0,3} and {1,2} — host 0 and host 2 land
	// on opposite sides, so the last path between them is gone.
	for _, li := range []int{0, 2} {
		if err := d.SetLinkUp(li, false); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("partitioned-but-quiesced network never converged (wedge-indistinguishable): %v", err)
	}
	if time.Since(start) > 25*time.Second {
		t.Fatal("convergence on partition consumed nearly the whole timeout — it spun, not settled")
	}
	if !d.Partitioned() {
		t.Fatal("partition not reported after cutting the last path")
	}
	if comps := d.LiveComponents(); len(comps) != 2 {
		t.Fatalf("live components = %v, want 2", comps)
	}
	if d.SameLiveComponent(0, 2) || !d.SameLiveComponent(0, 3) || !d.SameLiveComponent(1, 2) {
		t.Fatalf("component labeling wrong: %v", d.LiveComponents())
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	if _, err := h0.Ping(h2.Addr(), 2*time.Second); err == nil {
		t.Fatal("ping crossed a partition after convergence reported the split")
	}

	// Heal and require full convergence plus connectivity again.
	for _, li := range []int{0, 2} {
		if err := d.SetLinkUp(li, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("never reconverged after healing: %v", err)
	}
	if d.Partitioned() {
		t.Fatal("healed ring still reported partitioned")
	}
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("no connectivity after heal: %v", lastErr)
}

// TestCrashSwitchRecovers reboots a transit switch: flow table and control
// session are lost, the dialer reconnects, and the deployment reconverges
// with traffic restored.
func TestCrashSwitchRecovers(t *testing.T) {
	g := topo.Ring(4)
	d, err := NewDeployment(fastOptions(g, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashSwitch(99); err == nil {
		t.Fatal("bogus node accepted")
	}
	if _, err := d.AwaitConverged(40 * time.Second); err != nil {
		t.Fatalf("never reconverged after switch crash: %v", err)
	}
	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if _, lastErr = h0.Ping(h2.Addr(), 2*time.Second); lastErr == nil {
			return
		}
	}
	t.Fatalf("no connectivity after switch crash recovery: %v", lastErr)
}

// TestRFServerRestartResyncs crash-restarts the rf-server RPC endpoint at
// steady state; the reconciler's idle probe detects the epoch change and
// re-syncs, so the deployment reconverges without any topology change.
func TestRFServerRestartResyncs(t *testing.T) {
	g := topo.Ring(3)
	opts := fastOptions(g, 0)
	opts.ResyncProbe = 100 * time.Millisecond
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	d.RestartRFServer()
	// The restart cut every RPC connection and zeroed the new incarnation's
	// applied counter; the reconciler's idle probe observes the fresh epoch
	// and must replay the full desired state (3 switches + 3 links + 1 host).
	deadline := time.Now().Add(20 * time.Second)
	for d.RPCServerApplied() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("re-sync never replayed desired state: applied=%d", d.RPCServerApplied())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := d.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("never reconverged after rf-server restart: %v", err)
	}
}

// TestMultiASInterDomainColdBoot is the inter-domain acceptance bar: a ring
// of three ring-shaped ASes cold-boots — zero manual configuration beyond
// the AS annotation and host list — to full inter-domain reachability.
// Every VM runs bgpd next to ospfd, border links come up OSPF-passive with
// eBGP sessions, same-AS VMs mesh over iBGP loopbacks, and every host pair
// across AS boundaries exchanges traffic.
func TestMultiASInterDomainColdBoot(t *testing.T) {
	g := topo.ASRing(3, 3)  // 9 switches, ASes 64512..64514, 3 border links
	hosts := []int{1, 4, 7} // one host per AS
	d, err := NewDeployment(fastOptions(g, hosts...))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(120 * time.Second); err != nil {
		t.Fatalf("inter-domain convergence: %v", err)
	}
	if d.Partitioned() {
		t.Fatal("healthy multi-AS network reports a partition")
	}

	// Every VM in an AS runs a bgpd speaker; border routers hold an
	// Established eBGP session and the generated bgpd.conf names it.
	for _, n := range g.Nodes() {
		vm, ok := d.Platform().VM(DPIDForNode(n.ID))
		if !ok || vm.Router().BGP() == nil {
			t.Fatalf("node %d: no bgpd", n.ID)
		}
	}
	files, ok := d.Platform().ConfigFiles(DPIDForNode(0))
	if !ok || !strings.Contains(files["bgpd.conf"], "router bgp 64512") {
		t.Fatalf("border router bgpd.conf not generated:\n%s", files["bgpd.conf"])
	}
	if !strings.Contains(files["bgpd.conf"], "redistribute ospf") {
		t.Fatalf("bgpd.conf missing redistribution:\n%s", files["bgpd.conf"])
	}
	if !strings.Contains(files["ospfd.conf"], "passive-interface") {
		t.Fatalf("border ospfd.conf missing passive-interface:\n%s", files["ospfd.conf"])
	}

	// Cross-AS host reachability, every directed pair.
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			ha, _ := d.Host(a)
			hb, _ := d.Host(b)
			deadline := time.Now().Add(20 * time.Second)
			var lastErr error
			for {
				if _, lastErr = ha.Ping(hb.Addr(), 2*time.Second); lastErr == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("host %d cannot reach host %d across AS boundary: %v", a, b, lastErr)
				}
			}
		}
	}

	// The learned inter-domain routes carry the BGP administrative
	// distances: an interior VM (node 2, AS 64512) reaches a remote AS's
	// host subnet via iBGP.
	vm2, _ := d.Platform().VM(DPIDForNode(2))
	rt, ok := vm2.RIB().Lookup(netip.MustParseAddr("10.5.0.100"))
	if !ok {
		t.Fatal("interior VM has no route to the remote AS host subnet")
	}
	if rt.Source.String() != "ibgp" && rt.Source.String() != "ebgp" {
		t.Fatalf("remote host subnet learned via %v, want BGP", rt.Source)
	}
}

// TestMultiASBorderFailureReroutesViaBackupAS cuts the AS0–AS1 border of a
// 3-AS ring: traffic between the two domains must re-select the path through
// the backup AS, then re-optimize when the border heals.
func TestMultiASBorderFailureReroutesViaBackupAS(t *testing.T) {
	g := topo.ASRing(3, 3)
	border01 := -1
	for i, l := range g.Links() {
		if g.IsBorderLink(i) && g.AS(l.A) == 64512 && g.AS(l.B) == 64513 {
			border01 = i
		}
	}
	if border01 < 0 {
		t.Fatal("no AS0-AS1 border link found")
	}
	hosts := []int{1, 4}
	d, err := NewDeployment(fastOptions(g, hosts...))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(120 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	if err := d.SetLinkUp(border01, false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(120 * time.Second); err != nil {
		t.Fatalf("convergence after border cut: %v", err)
	}
	if d.Partitioned() {
		t.Fatal("border cut must not partition the AS ring (backup AS exists)")
	}
	h1, _ := d.Host(1)
	h4, _ := d.Host(4)
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for {
		if _, lastErr = h1.Ping(h4.Addr(), 2*time.Second); lastErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no path via backup AS after border cut: %v", lastErr)
		}
	}

	if err := d.SetLinkUp(border01, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitConverged(120 * time.Second); err != nil {
		t.Fatalf("convergence after border heal: %v", err)
	}

	// The border session loss must have charged flap damping, and that
	// state must have survived the discovery pipeline's neighbor
	// remove/re-add cycle (the Downs counter is restored with the peer).
	vm0, _ := d.Platform().VM(DPIDForNode(0))
	sawDown := false
	for _, sess := range vm0.Router().BGP().Sessions() {
		if !sess.IBGP && sess.Downs >= 1 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("border session loss left no damping trace — the penalty died with the deconfigured neighbor")
	}
}

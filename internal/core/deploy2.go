package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"routeflow/internal/openflow"

	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/flowvisor"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/rf"
	"routeflow/internal/topo"
)

// mergeCallbacks composes two callback sets; both receive every event.
func mergeCallbacks(a, b ctlkit.Callbacks) ctlkit.Callbacks {
	return ctlkit.Callbacks{
		SwitchUp: func(sc *ctlkit.SwitchConn) {
			if a.SwitchUp != nil {
				a.SwitchUp(sc)
			}
			if b.SwitchUp != nil {
				b.SwitchUp(sc)
			}
		},
		SwitchDown: func(sc *ctlkit.SwitchConn) {
			if a.SwitchDown != nil {
				a.SwitchDown(sc)
			}
			if b.SwitchDown != nil {
				b.SwitchDown(sc)
			}
		},
		PacketIn: func(sc *ctlkit.SwitchConn, pi *openflow.PacketIn) {
			if a.PacketIn != nil {
				a.PacketIn(sc, pi)
			}
			if b.PacketIn != nil {
				b.PacketIn(sc, pi)
			}
		},
		PortStatus: func(sc *ctlkit.SwitchConn, ps *openflow.PortStatus) {
			if a.PortStatus != nil {
				a.PortStatus(sc, ps)
			}
			if b.PortStatus != nil {
				b.PortStatus(sc, ps)
			}
		},
		FlowRemoved: func(sc *ctlkit.SwitchConn, fr *openflow.FlowRemoved) {
			if a.FlowRemoved != nil {
				a.FlowRemoved(sc, fr)
			}
			if b.FlowRemoved != nil {
				b.FlowRemoved(sc, fr)
			}
		},
		Error: func(sc *ctlkit.SwitchConn, em *openflow.ErrorMsg) {
			if a.Error != nil {
				a.Error(sc, em)
			}
			if b.Error != nil {
				b.Error(sc, em)
			}
		},
		Telemetry: func(sc *ctlkit.SwitchConn, ex *openflow.TelemetryExport) {
			if a.Telemetry != nil {
				a.Telemetry(sc, ex)
			}
			if b.Telemetry != nil {
				b.Telemetry(sc, ex)
			}
		},
	}
}

// platformCallbacks adapts the RF platform for a merged controller.
func platformCallbacks(p *rf.Platform) ctlkit.Callbacks { return p.Callbacks() }

// Graph returns the deployment's topology.
func (d *Deployment) Graph() *topo.Graph { return d.graph }

// Platform returns the RF-controller platform — the one platform of a
// single-controller deployment, replica 0 of a cluster. Cluster-aware
// callers should resolve a switch's master with OwnerPlatform instead.
func (d *Deployment) Platform() *rf.Platform { return d.reps[0].platform }

// Discovery returns the topology controller's discovery module.
func (d *Deployment) Discovery() *discovery.Discovery { return d.disc }

// TopologyController returns the auto-configuration application.
func (d *Deployment) TopologyController() *TopologyController { return d.tc }

// FlowVisor returns the proxy, or nil in the merged ablation.
func (d *Deployment) FlowVisor() *flowvisor.FlowVisor { return d.fv }

// Switch returns the emulated switch for a graph node.
func (d *Deployment) Switch(node int) (*ofswitch.Switch, bool) {
	sw, ok := d.switches[DPIDForNode(node)]
	return sw, ok
}

// Host returns the end host attached at a graph node (if configured).
func (d *Deployment) Host(node int) (*netemu.Host, bool) {
	h, ok := d.hosts[node]
	return h, ok
}

// HostGateway returns the gateway address the VM serves for a host node.
func (d *Deployment) HostGateway(node int) (netip.Addr, bool) {
	g, ok := d.hostGWs[node]
	return g, ok
}

// SetLinkUp raises or cuts an inter-switch link by its index in
// Graph().Links() — the failure-injection hook.
func (d *Deployment) SetLinkUp(linkIndex int, up bool) error {
	eps, ok := d.cables[linkIndex]
	if !ok {
		return fmt.Errorf("core: no link %d", linkIndex)
	}
	eps[0].SetLinkUp(up)
	return nil
}

// LinkIsUp reports whether inter-switch link linkIndex is administratively
// up (false also for unknown indices).
func (d *Deployment) LinkIsUp(linkIndex int) bool {
	eps, ok := d.cables[linkIndex]
	return ok && eps[0].LinkUp()
}

// HostNodes returns the graph nodes carrying an end host, ascending.
func (d *Deployment) HostNodes() []int {
	out := make([]int, 0, len(d.hosts))
	for n := range d.hosts {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// liveComponentIDs labels every graph node with the connected component it
// belongs to when only administratively-up links are considered.
func (d *Deployment) liveComponentIDs() []int {
	n := d.graph.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	adj := make([][]int, n)
	for i, l := range d.graph.Links() {
		if d.LinkIsUp(i) {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
	}
	next := 0
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = next
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp
}

// LiveComponents returns the connected components of the live topology
// (administratively-up links only), each sorted, in first-node order.
func (d *Deployment) LiveComponents() [][]int {
	comp := d.liveComponentIDs()
	var out [][]int
	for node, c := range comp {
		for c >= len(out) {
			out = append(out, nil)
		}
		out[c] = append(out[c], node)
	}
	return out
}

// Partitioned reports whether administrative link failures have split the
// topology into more than one component. AwaitConverged succeeds on a
// partitioned-but-quiesced network; this is how callers tell that case apart
// from full convergence.
func (d *Deployment) Partitioned() bool { return len(d.LiveComponents()) > 1 }

// SameLiveComponent reports whether two graph nodes are connected in the
// live topology.
func (d *Deployment) SameLiveComponent(a, b int) bool {
	comp := d.liveComponentIDs()
	if a < 0 || b < 0 || a >= len(comp) || b >= len(comp) {
		return false
	}
	return comp[a] == comp[b]
}

// CrashSwitch reboots the emulated switch at a graph node: flow table and
// buffered packets are lost, the control session is cut, and the switch
// redials. Discovery observes the loss, the reconciler tears down and then
// rebuilds the switch's configuration, and AwaitConverged reports when the
// network has healed.
func (d *Deployment) CrashSwitch(node int) error {
	sw, ok := d.switches[DPIDForNode(node)]
	if !ok {
		return fmt.Errorf("core: no switch at node %d", node)
	}
	sw.Reboot()
	return nil
}

// RestartRFServer crash-restarts the rf-server's RPC endpoint: the current
// incarnation stops (live connections cut, dedup horizon and epoch lost) and
// a fresh one starts. The reconciler notices the epoch change on its next
// ack or idle probe and re-syncs the full desired state; the rf apply paths
// are idempotent, so the system reconverges.
func (d *Deployment) RestartRFServer() {
	for _, rep := range d.reps {
		if rep.alive.Load() && !rep.partitioned.Load() {
			rep.restartServer()
		}
	}
}

// SetRPCLossRate changes the control-channel frame-drop probability while
// the system runs — the RPC loss *burst* fault. The drop decisions stay
// seeded by Options.RPCDropSeed.
func (d *Deployment) SetRPCLossRate(rate float64) {
	for _, rep := range d.reps {
		rep.loss.SetRate(rate)
	}
}

// RPCServerApplied returns how many configuration messages the *current*
// rf-server incarnations have applied, summed across live replicas (a
// RestartRFServer resets it) — the observable that proves a post-restart
// re-sync actually replayed state.
func (d *Deployment) RPCServerApplied() uint64 {
	var total uint64
	for _, rep := range d.reps {
		if rep.alive.Load() {
			total += rep.applied()
		}
	}
	return total
}

// Elapsed returns protocol time since Start (on a scaled clock this is
// already protocol time, not wall time).
func (d *Deployment) Elapsed() time.Duration { return d.clk.Since(d.startedAt) }

// pollUntil polls cond every millisecond of wall time until it holds or the
// protocol-time budget is exhausted. It returns the protocol time elapsed
// since Start.
func (d *Deployment) pollUntil(timeout time.Duration, what string, cond func() bool) (time.Duration, error) {
	deadline := d.clk.Now().Add(timeout)
	for {
		if cond() {
			return d.Elapsed(), nil
		}
		if d.clk.Now().After(deadline) {
			return d.Elapsed(), fmt.Errorf("core: timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(time.Millisecond)
	}
}

// AwaitConfigured blocks until every switch is green — it has a running VM
// (the paper's configuration criterion) — and returns the protocol time
// from Start to that moment (the Fig. 3 "automatic" measurement).
func (d *Deployment) AwaitConfigured(timeout time.Duration) (time.Duration, error) {
	return d.pollUntil(timeout, "all switches configured", func() bool {
		for dpid := range d.switches {
			p, _, ok := d.ownerPlatform(dpid)
			if !ok || !p.Configured(dpid) {
				return false
			}
		}
		return true
	})
}

// AwaitConverged blocks until the system is *actually* converged on its
// current live topology and returns the protocol time since Start.
// Converged means:
//
//   - every declared configuration item has been acknowledged by the
//     rf-server (the desired-state store drained);
//   - discovery's link view agrees with the administrative state of every
//     cable — a freshly cut (or restored) link the control plane has not yet
//     processed blocks convergence instead of slipping past it;
//   - every VM's OSPF has exactly one Full adjacency per *live* inter-switch
//     link — neither missing adjacencies nor stale ones on dead links;
//   - every host gateway is configured on its VM and every VM *in the same
//     live component* has a route to the host subnet — so "converged" can no
//     longer report success while a reachable host is unreachable (the
//     pre-refactor demo flake).
//
// A partitioned network therefore converges honestly: AwaitConverged returns
// once every component has quiesced, and Partitioned() distinguishes that
// state from full convergence. Unreachability across a partition is the
// correct outcome, not a wedge — and a wedge (a component that never
// quiesces) still times out with a diagnostic.
func (d *Deployment) AwaitConverged(timeout time.Duration) (time.Duration, error) {
	el, err := d.pollUntil(timeout, "OSPF convergence", func() bool {
		return d.convergenceGap() == ""
	})
	if err != nil {
		if gap := d.convergenceGap(); gap != "" {
			err = fmt.Errorf("%w (%s)", err, gap)
		}
	}
	return el, err
}

// ConvergenceGap names the first unmet convergence condition, or "" when
// converged on the live topology — the diagnostic behind AwaitConverged.
func (d *Deployment) ConvergenceGap() string { return d.convergenceGap() }

func (d *Deployment) convergenceGap() string {
	for i, st := range d.tc.Stores() {
		if !st.Converged() {
			return fmt.Sprintf("intent store %d not drained: %+v pending=%v lastErrs=%v",
				i, st.Statistics(), st.PendingItems(), d.tc.LastErrors())
		}
	}
	// Discovery must have caught up with the administrative link state:
	// otherwise a just-cut link still has its intent acked and its routes
	// installed, and we would declare a stale view "converged".
	discovered := make(map[discovery.Link]bool)
	for _, l := range d.disc.Links() {
		discovered[l] = true
	}
	// Live degrees split by domain role: OSPF owns intra-AS adjacencies,
	// BGP owns border sessions. On a flat (unannotated) topology every link
	// is intra-AS and the border side vanishes.
	liveIntra := make([]int, d.graph.NumNodes())
	liveBorder := make([]int, d.graph.NumNodes())
	for i, l := range d.graph.Links() {
		key := discovery.Link{
			ADPID: DPIDForNode(l.A), APort: uint16(l.APort),
			BDPID: DPIDForNode(l.B), BPort: uint16(l.BPort),
		}.Canonical()
		up := d.LinkIsUp(i)
		if up != discovered[key] {
			return fmt.Sprintf("discovery lags link %d (%v): administratively up=%v, discovered=%v",
				i, key, up, discovered[key])
		}
		if up {
			if d.graph.IsBorderLink(i) {
				liveBorder[l.A]++
				liveBorder[l.B]++
			} else {
				liveIntra[l.A]++
				liveIntra[l.B]++
			}
		}
	}
	comp := d.liveComponentIDs()
	for _, n := range d.graph.Nodes() {
		vm, ok := d.vmOf(DPIDForNode(n.ID))
		if !ok {
			return fmt.Sprintf("node %d has no VM on its master (master=%d)", n.ID, d.MasterOf(n.ID))
		}
		if full := vm.Router().OSPF().FullNeighbors(); full != liveIntra[n.ID] {
			return fmt.Sprintf("node %d OSPF %d/%d live adjacencies Full; ports=%v neighbors=%q",
				n.ID, full, liveIntra[n.ID], vm.ConfiguredPorts(), vm.Router().ShowOSPFNeighbors())
		}
		if n.AS != 0 {
			speaker := vm.Router().BGP()
			if speaker == nil {
				return fmt.Sprintf("node %d (AS %d) has no bgpd", n.ID, n.AS)
			}
			// Exactly one Established session per live border link plus one
			// per same-AS peer in the same live component (the iBGP mesh).
			// Sessions across a partition or a dead border must have dropped
			// (hold expiry) — stale Established sessions block convergence,
			// mirroring the stale-adjacency rule above.
			want := liveBorder[n.ID]
			for _, m := range d.graph.Nodes() {
				if m.ID != n.ID && m.AS == n.AS && comp[m.ID] == comp[n.ID] {
					want++
				}
			}
			if got := speaker.EstablishedCount(); got != want {
				return fmt.Sprintf("node %d (AS %d) BGP %d/%d sessions Established: %+v",
					n.ID, n.AS, got, want, speaker.Sessions())
			}
		}
	}
	for node, gw := range d.hostGWs {
		vm, ok := d.vmOf(DPIDForNode(node))
		if !ok {
			return fmt.Sprintf("host node %d has no VM on its master", node)
		}
		hostPort, ok := d.graph.HostPort(node)
		if !ok {
			return fmt.Sprintf("host node %d has no host port in the graph", node)
		}
		addr, ok := vm.InterfaceAddr(uint16(hostPort))
		if !ok || addr.Addr() != gw {
			return fmt.Sprintf("host node %d gateway %v not configured (got %v)", node, gw, addr)
		}
		for _, n := range d.graph.Nodes() {
			if comp[n.ID] != comp[node] {
				continue // honestly unreachable across the partition
			}
			peer, ok := d.vmOf(DPIDForNode(n.ID))
			if !ok {
				return fmt.Sprintf("node %d has no VM on its master", n.ID)
			}
			if _, ok := peer.RIB().Lookup(gw); !ok {
				return fmt.Sprintf("node %d has no route to host gateway %v", n.ID, gw)
			}
		}
	}
	return ""
}

// Close tears the whole system down.
func (d *Deployment) Close() {
	d.telStopOnce.Do(func() { close(d.telStop) })
	d.telWG.Wait()
	if d.tc != nil {
		d.tc.Stop()
	}
	if d.coord != nil {
		d.coord.Stop()
	}
	if d.fv != nil {
		d.fv.Stop()
	}
	for _, fv := range d.fvs {
		fv.Stop()
	}
	if d.topoCtl != nil {
		d.topoCtl.Stop()
	}
	for _, rep := range d.reps {
		rep.platform.Stop()
		rep.cli.Close()
		rep.closeServer()
		if rep.rfLn != nil {
			rep.rfLn.Close()
		}
	}
	for _, l := range d.listeners {
		l.Close()
	}
	for _, sw := range d.switches {
		sw.Stop()
	}
	for _, h := range d.hosts {
		h.Close()
	}
	if d.net != nil {
		d.net.Close()
	}
}

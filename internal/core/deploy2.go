package core

import (
	"fmt"
	"net/netip"
	"time"

	"routeflow/internal/openflow"

	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/flowvisor"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/rf"
	"routeflow/internal/topo"
)

// mergeCallbacks composes two callback sets; both receive every event.
func mergeCallbacks(a, b ctlkit.Callbacks) ctlkit.Callbacks {
	return ctlkit.Callbacks{
		SwitchUp: func(sc *ctlkit.SwitchConn) {
			if a.SwitchUp != nil {
				a.SwitchUp(sc)
			}
			if b.SwitchUp != nil {
				b.SwitchUp(sc)
			}
		},
		SwitchDown: func(sc *ctlkit.SwitchConn) {
			if a.SwitchDown != nil {
				a.SwitchDown(sc)
			}
			if b.SwitchDown != nil {
				b.SwitchDown(sc)
			}
		},
		PacketIn: func(sc *ctlkit.SwitchConn, pi *openflow.PacketIn) {
			if a.PacketIn != nil {
				a.PacketIn(sc, pi)
			}
			if b.PacketIn != nil {
				b.PacketIn(sc, pi)
			}
		},
		PortStatus: func(sc *ctlkit.SwitchConn, ps *openflow.PortStatus) {
			if a.PortStatus != nil {
				a.PortStatus(sc, ps)
			}
			if b.PortStatus != nil {
				b.PortStatus(sc, ps)
			}
		},
		FlowRemoved: func(sc *ctlkit.SwitchConn, fr *openflow.FlowRemoved) {
			if a.FlowRemoved != nil {
				a.FlowRemoved(sc, fr)
			}
			if b.FlowRemoved != nil {
				b.FlowRemoved(sc, fr)
			}
		},
		Error: func(sc *ctlkit.SwitchConn, em *openflow.ErrorMsg) {
			if a.Error != nil {
				a.Error(sc, em)
			}
			if b.Error != nil {
				b.Error(sc, em)
			}
		},
	}
}

// platformCallbacks adapts the RF platform for a merged controller.
func platformCallbacks(p *rf.Platform) ctlkit.Callbacks { return p.Callbacks() }

// Graph returns the deployment's topology.
func (d *Deployment) Graph() *topo.Graph { return d.graph }

// Platform returns the RF-controller platform.
func (d *Deployment) Platform() *rf.Platform { return d.platform }

// Discovery returns the topology controller's discovery module.
func (d *Deployment) Discovery() *discovery.Discovery { return d.disc }

// TopologyController returns the auto-configuration application.
func (d *Deployment) TopologyController() *TopologyController { return d.tc }

// FlowVisor returns the proxy, or nil in the merged ablation.
func (d *Deployment) FlowVisor() *flowvisor.FlowVisor { return d.fv }

// Switch returns the emulated switch for a graph node.
func (d *Deployment) Switch(node int) (*ofswitch.Switch, bool) {
	sw, ok := d.switches[DPIDForNode(node)]
	return sw, ok
}

// Host returns the end host attached at a graph node (if configured).
func (d *Deployment) Host(node int) (*netemu.Host, bool) {
	h, ok := d.hosts[node]
	return h, ok
}

// HostGateway returns the gateway address the VM serves for a host node.
func (d *Deployment) HostGateway(node int) (netip.Addr, bool) {
	g, ok := d.hostGWs[node]
	return g, ok
}

// SetLinkUp raises or cuts an inter-switch link by its index in
// Graph().Links() — the failure-injection hook.
func (d *Deployment) SetLinkUp(linkIndex int, up bool) error {
	eps, ok := d.cables[linkIndex]
	if !ok {
		return fmt.Errorf("core: no link %d", linkIndex)
	}
	eps[0].SetLinkUp(up)
	return nil
}

// Elapsed returns protocol time since Start (on a scaled clock this is
// already protocol time, not wall time).
func (d *Deployment) Elapsed() time.Duration { return d.clk.Since(d.startedAt) }

// pollUntil polls cond every millisecond of wall time until it holds or the
// protocol-time budget is exhausted. It returns the protocol time elapsed
// since Start.
func (d *Deployment) pollUntil(timeout time.Duration, what string, cond func() bool) (time.Duration, error) {
	deadline := d.clk.Now().Add(timeout)
	for {
		if cond() {
			return d.Elapsed(), nil
		}
		if d.clk.Now().After(deadline) {
			return d.Elapsed(), fmt.Errorf("core: timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(time.Millisecond)
	}
}

// AwaitConfigured blocks until every switch is green — it has a running VM
// (the paper's configuration criterion) — and returns the protocol time
// from Start to that moment (the Fig. 3 "automatic" measurement).
func (d *Deployment) AwaitConfigured(timeout time.Duration) (time.Duration, error) {
	return d.pollUntil(timeout, "all switches configured", func() bool {
		for dpid := range d.switches {
			if !d.platform.Configured(dpid) {
				return false
			}
		}
		return true
	})
}

// AwaitConverged blocks until the system is *actually* converged and
// returns the protocol time since Start. Converged means:
//
//   - every declared configuration item has been acknowledged by the
//     rf-server (the desired-state store drained);
//   - every VM's OSPF has a Full adjacency on every inter-switch link;
//   - every host gateway is configured on its VM and every VM has a route
//     to every host subnet — so "converged" can no longer report success
//     while a host is unreachable (the pre-refactor demo flake).
func (d *Deployment) AwaitConverged(timeout time.Duration) (time.Duration, error) {
	el, err := d.pollUntil(timeout, "OSPF convergence", func() bool {
		return d.convergenceGap() == ""
	})
	if err != nil {
		if gap := d.convergenceGap(); gap != "" {
			err = fmt.Errorf("%w (%s)", err, gap)
		}
	}
	return el, err
}

// convergenceGap names the first unmet convergence condition, or "" when
// fully converged — the diagnostic behind AwaitConverged.
func (d *Deployment) convergenceGap() string {
	if !d.tc.Store().Converged() {
		return fmt.Sprintf("intent store not drained: %+v pending=%v lastErrs=%v",
			d.tc.Store().Statistics(), d.tc.Store().PendingItems(), d.tc.LastErrors())
	}
	for _, n := range d.graph.Nodes() {
		vm, ok := d.platform.VM(DPIDForNode(n.ID))
		if !ok {
			return fmt.Sprintf("node %d has no VM", n.ID)
		}
		if full, deg := vm.Router().OSPF().FullNeighbors(), d.graph.Degree(n.ID); full < deg {
			return fmt.Sprintf("node %d OSPF %d/%d adjacencies Full; ports=%v neighbors=%q",
				n.ID, full, deg, vm.ConfiguredPorts(), vm.Router().ShowOSPFNeighbors())
		}
	}
	for node, gw := range d.hostGWs {
		vm, ok := d.platform.VM(DPIDForNode(node))
		if !ok {
			return fmt.Sprintf("host node %d has no VM", node)
		}
		hostPort, ok := d.graph.HostPort(node)
		if !ok {
			return fmt.Sprintf("host node %d has no host port in the graph", node)
		}
		addr, ok := vm.InterfaceAddr(uint16(hostPort))
		if !ok || addr.Addr() != gw {
			return fmt.Sprintf("host node %d gateway %v not configured (got %v)", node, gw, addr)
		}
		for _, n := range d.graph.Nodes() {
			peer, ok := d.platform.VM(DPIDForNode(n.ID))
			if !ok {
				return fmt.Sprintf("node %d has no VM", n.ID)
			}
			if _, ok := peer.RIB().Lookup(gw); !ok {
				return fmt.Sprintf("node %d has no route to host gateway %v", n.ID, gw)
			}
		}
	}
	return ""
}

// Close tears the whole system down.
func (d *Deployment) Close() {
	if d.tc != nil {
		d.tc.Stop()
	}
	if d.fv != nil {
		d.fv.Stop()
	}
	if d.topoCtl != nil {
		d.topoCtl.Stop()
	}
	if d.platform != nil {
		d.platform.Stop()
	}
	if d.rpcCli != nil {
		d.rpcCli.Close()
	}
	if d.rpcSrv != nil {
		d.rpcSrv.Stop()
	}
	for _, l := range d.listeners {
		l.Close()
	}
	for _, sw := range d.switches {
		sw.Stop()
	}
	for _, h := range d.hosts {
		h.Close()
	}
	if d.net != nil {
		d.net.Close()
	}
}

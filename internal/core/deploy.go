package core

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/flowvisor"
	"routeflow/internal/intent"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/pkt"
	"routeflow/internal/quagga"
	"routeflow/internal/rf"
	"routeflow/internal/rpcconf"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// Options configures a Deployment.
type Options struct {
	// Topology is the physical network to emulate (required).
	Topology *topo.Graph
	// Clock drives every timer; use clock.Scaled to compress protocol time.
	Clock clock.Clock
	// Pool is the administrator's IP range for the virtual environment.
	// Default 172.16.0.0/16.
	Pool netip.Prefix
	// HostNodes lists graph nodes that get an attached end host. Host n
	// receives 10.(n+1).0.100/24 with the VM gateway at 10.(n+1).0.1.
	HostNodes []int
	// BootDelay models VM creation (default rf.DefaultBootDelay).
	BootDelay time.Duration
	// Timers for the VM routing daemons (zero = RFC defaults).
	Timers quagga.Timers
	// ProbeInterval / LinkTTL tune discovery (zero = package defaults).
	ProbeInterval time.Duration
	LinkTTL       time.Duration
	// NoFlowVisor connects every switch to both controllers through a
	// merged controller instead of the slicing proxy (ablation A1/A2).
	NoFlowVisor bool
	// OnStatus observes per-switch configuration state (GUI).
	OnStatus func(dpid uint64, state vnet.State)
	// RPCDropRate injects control-channel loss: each frame written by the
	// RPC client is dropped (and its connection cut) with this probability.
	// The reconciler must converge regardless — the failure scenario the
	// fire-and-forget design could not survive.
	RPCDropRate float64
	// RPCDropSeed makes injected loss reproducible (used when RPCDropRate
	// is non-zero).
	RPCDropSeed int64
	// RPCAttempts bounds the RPC client's short-horizon retries per send
	// (0 = package default). Long-horizon retry is the reconciler's job, so
	// loss tests set this low to exercise it.
	RPCAttempts int
	// ReconcilerBackoff overrides the reconciler's first retry delay
	// (0 = intent.DefaultBackoffBase). The ceiling stays proportional.
	ReconcilerBackoff time.Duration
	// ResyncProbe overrides the reconciler's idle epoch-probe period — how
	// quickly an rf-server restart is detected when no configuration is in
	// flight (0 = intent.DefaultResyncProbe).
	ResyncProbe time.Duration
}

// Deployment is a fully wired automatic-configuration system under test: the
// paper's Fig. 2 plus the emulated data plane it manages.
type Deployment struct {
	opts  Options
	clk   clock.Clock
	graph *topo.Graph

	net      *netemu.Network
	switches map[uint64]*ofswitch.Switch
	hosts    map[int]*netemu.Host
	hostGWs  map[int]netip.Addr
	hostEPs  map[int]*netemu.Endpoint
	cables   map[int][2]*netemu.Endpoint // link index → endpoints

	fv       *flowvisor.FlowVisor
	topoCtl  *ctlkit.Controller
	disc     *discovery.Discovery
	tc       *TopologyController
	platform *rf.Platform
	rpcCli   *rpcconf.Client
	loss     *rpcconf.LossInjector

	// The RPC server can be crash-restarted mid-run (the rf-server failure
	// scenario): rpcMu guards the current incarnation, rpcLn the listener the
	// client's dialer reads on every dial.
	rpcMu  sync.Mutex
	rpcSrv *rpcconf.Server
	rpcLn  atomic.Pointer[ctlkit.MemListener]

	listeners []*ctlkit.MemListener

	startedAt time.Time
	mu        sync.Mutex
	started   bool
}

// DPIDForNode maps a graph node to its datapath ID (node IDs are 0-based;
// dpid 0 is avoided by convention).
func DPIDForNode(node int) uint64 { return uint64(node) + 1 }

// HostSubnet returns the conventional host subnet for a graph node.
func HostSubnet(node int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", node+1))
}

// NewDeployment assembles (but does not start) a system.
func NewDeployment(opts Options) (*Deployment, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("core: Options.Topology is required")
	}
	if opts.Clock == nil {
		opts.Clock = clock.System()
	}
	if !opts.Pool.IsValid() {
		opts.Pool = netip.MustParsePrefix("172.16.0.0/16")
	}
	d := &Deployment{
		opts:     opts,
		clk:      opts.Clock,
		graph:    opts.Topology,
		net:      netemu.NewNetwork(opts.Clock),
		switches: make(map[uint64]*ofswitch.Switch),
		hosts:    make(map[int]*netemu.Host),
		hostGWs:  make(map[int]netip.Addr),
		hostEPs:  make(map[int]*netemu.Endpoint),
		cables:   make(map[int][2]*netemu.Endpoint),
	}
	if err := d.build(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

func (d *Deployment) build() error {
	g := d.graph
	// Switches.
	for _, n := range g.Nodes() {
		dpid := DPIDForNode(n.ID)
		d.switches[dpid] = ofswitch.New(ofswitch.Config{
			DPID: dpid, Name: fmt.Sprintf("s%d", n.ID), Clock: d.clk,
		})
	}
	// Inter-switch cables.
	for i, l := range g.Links() {
		aDPID, bDPID := DPIDForNode(l.A), DPIDForNode(l.B)
		epA, epB := d.net.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("s%d:%d", l.A, l.APort),
			NameB: fmt.Sprintf("s%d:%d", l.B, l.BPort),
			MACA:  pkt.LocalMAC(aDPID<<16 | uint64(l.APort)),
			MACB:  pkt.LocalMAC(bDPID<<16 | uint64(l.BPort)),
		})
		if err := d.switches[aDPID].AttachPort(uint16(l.APort), epA); err != nil {
			return err
		}
		if err := d.switches[bDPID].AttachPort(uint16(l.BPort), epB); err != nil {
			return err
		}
		d.cables[i] = [2]*netemu.Endpoint{epA, epB}
	}
	// Hosts and their admin configuration.
	var admin []HostAttachment
	for _, node := range d.opts.HostNodes {
		n, ok := g.Node(node)
		if !ok {
			return fmt.Errorf("core: host node %d not in topology", node)
		}
		port, err := g.SetHost(n.ID)
		if err != nil {
			return err
		}
		dpid := DPIDForNode(n.ID)
		sub := HostSubnet(n.ID)
		gw := netip.PrefixFrom(sub.Addr().Next(), sub.Bits()) // .1
		hostIP := sub.Addr()
		for i := 0; i < 100; i++ {
			hostIP = hostIP.Next()
		}
		swEP, hostEP := d.net.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("s%d:%d", n.ID, port),
			NameB: fmt.Sprintf("h%d", n.ID),
			MACA:  pkt.LocalMAC(dpid<<16 | uint64(port)),
			MACB:  pkt.LocalMAC(0x7f<<32 | dpid),
		})
		if err := d.switches[dpid].AttachPort(uint16(port), swEP); err != nil {
			return err
		}
		host, err := netemu.NewHost(netemu.HostConfig{
			Name:    fmt.Sprintf("h%d", n.ID),
			Addr:    netip.PrefixFrom(hostIP, sub.Bits()),
			Gateway: gw.Addr(),
		}, hostEP, d.clk)
		if err != nil {
			return err
		}
		d.hosts[node] = host
		d.hostGWs[node] = gw.Addr()
		d.hostEPs[node] = hostEP
		admin = append(admin, HostAttachment{
			DPID: dpid, Port: uint16(port), Gateway: gw,
		})
	}

	// RF-controller platform + embedded RPC server.
	platform, err := rf.New(rf.Config{
		Clock:     d.clk,
		Pool:      d.opts.Pool,
		BootDelay: d.opts.BootDelay,
		Timers:    d.opts.Timers,
		OnStatus:  d.opts.OnStatus,
	})
	if err != nil {
		return err
	}
	d.platform = platform
	d.rpcSrv = rpcconf.NewServer(platform.RPCHandler())
	rpcL := ctlkit.NewMemListener("rpc-server")
	d.rpcLn.Store(rpcL)
	go d.rpcSrv.Serve(rpcL)
	// The dialer reads the listener through the atomic pointer so an
	// rf-server restart (RestartRFServer) transparently redirects redials to
	// the new incarnation. Loss is always injected through a LossInjector so
	// scenarios can raise and clear the drop rate mid-run; rate zero costs
	// one atomic load per write.
	d.loss = rpcconf.NewLossInjector(d.opts.RPCDropRate, d.opts.RPCDropSeed)
	rpcDial := d.loss.Dialer(func() (net.Conn, error) { return d.rpcLn.Load().Dial() })
	var cliOpts []rpcconf.ClientOption
	if d.opts.RPCAttempts > 0 {
		cliOpts = append(cliOpts, rpcconf.WithRetry(100*time.Millisecond, d.opts.RPCAttempts))
	}
	d.rpcCli = rpcconf.NewClient(rpcDial, d.clk, cliOpts...)

	// Topology controller: discovery + RPC client.
	var discOpts []discovery.Option
	if d.opts.ProbeInterval > 0 {
		discOpts = append(discOpts, discovery.WithProbeInterval(d.opts.ProbeInterval))
	}
	if d.opts.LinkTTL > 0 {
		discOpts = append(discOpts, discovery.WithLinkTTL(d.opts.LinkTTL))
	}
	d.disc = discovery.New(d.clk, discOpts...)

	if d.opts.NoFlowVisor {
		// Merged ablation: one controller process hosts both applications.
		merged := mergeCallbacks(d.disc.Callbacks(), platformCallbacks(platform))
		d.topoCtl = ctlkit.New("merged-controller", d.clk, merged)
		platform.UseController(d.topoCtl)
	} else {
		d.topoCtl = ctlkit.New("topology-controller", d.clk, d.disc.Callbacks())
	}
	var recOpts []intent.Option
	if d.opts.ReconcilerBackoff > 0 {
		recOpts = append(recOpts,
			intent.WithBackoff(d.opts.ReconcilerBackoff, 50*d.opts.ReconcilerBackoff))
	}
	if d.opts.ResyncProbe > 0 {
		recOpts = append(recOpts, intent.WithResyncProbe(d.opts.ResyncProbe))
	}
	d.tc, err = NewTopologyController(d.clk, d.disc, d.topoCtl, d.rpcCli,
		d.opts.Pool, 30, admin, recOpts...)
	if err != nil {
		return err
	}
	// AS annotations from the topology become administrator input to the
	// controller: switch and link declarations carry them, and the
	// RF-controller derives every VM's BGP configuration from there.
	asns := make(map[uint64]uint32)
	for _, n := range g.Nodes() {
		if n.AS > 0xffff {
			// Reject here, not deep in the VM boot path, where the error
			// would put the reconciler into a permanent retry loop.
			return fmt.Errorf("core: node %d AS %d exceeds 16 bits (the BGP engine speaks classic 2-byte ASNs)", n.ID, n.AS)
		}
		if n.AS != 0 {
			asns[DPIDForNode(n.ID)] = n.AS
		}
	}
	d.tc.SetASNs(asns)
	return nil
}

// Start connects everything and begins automatic configuration. It returns
// immediately; use the Await helpers to observe progress.
func (d *Deployment) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("core: deployment already started")
	}
	d.started = true
	d.startedAt = d.clk.Now()
	d.mu.Unlock()

	var swDial func() (net.Conn, error)
	if d.opts.NoFlowVisor {
		ctlL := ctlkit.NewMemListener("merged")
		d.listeners = append(d.listeners, ctlL)
		go d.topoCtl.Serve(ctlL)
		swDial = ctlL.Dial
	} else {
		topoL := ctlkit.NewMemListener("topology-controller")
		rfL := ctlkit.NewMemListener("rf-controller")
		fvL := ctlkit.NewMemListener("flowvisor")
		d.listeners = append(d.listeners, topoL, rfL, fvL)
		go d.topoCtl.Serve(topoL)
		go d.platform.Controller().Serve(rfL)
		d.fv = flowvisor.New("fv", []flowvisor.Slice{
			flowvisor.LLDPSlice("topology", topoL.Dial),
			flowvisor.DefaultSlice("rf", rfL.Dial),
		})
		go d.fv.Serve(fvL)
		swDial = fvL.Dial
	}
	d.tc.Run()

	for _, sw := range d.switches {
		// StartDialer, not Start: a switch whose control session dies (echo
		// keepalive cut under load, proxy restart) redials instead of
		// leaving the node dark forever — the discovery/intent pipeline
		// then re-declares it and the reconciler re-configures it.
		if err := sw.StartDialer(func() (io.ReadWriteCloser, error) { return swDial() }); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/cluster"
	"routeflow/internal/ctlkit"
	"routeflow/internal/discovery"
	"routeflow/internal/flowvisor"
	"routeflow/internal/intent"
	"routeflow/internal/ipam"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/pkt"
	"routeflow/internal/quagga"
	"routeflow/internal/rf"
	"routeflow/internal/rpcconf"
	"routeflow/internal/te"
	"routeflow/internal/telemetry"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// Options configures a Deployment.
type Options struct {
	// Topology is the physical network to emulate (required).
	Topology *topo.Graph
	// Clock drives every timer; use clock.Scaled to compress protocol time.
	Clock clock.Clock
	// Pool is the administrator's IP range for the virtual environment.
	// Default 172.16.0.0/16.
	Pool netip.Prefix
	// HostNodes lists graph nodes that get an attached end host. Host n
	// receives 10.(n+1).0.100/24 with the VM gateway at 10.(n+1).0.1.
	HostNodes []int
	// BootDelay models VM creation (default rf.DefaultBootDelay).
	BootDelay time.Duration
	// Timers for the VM routing daemons (zero = RFC defaults).
	Timers quagga.Timers
	// ProbeInterval / LinkTTL tune discovery (zero = package defaults).
	ProbeInterval time.Duration
	LinkTTL       time.Duration
	// NoFlowVisor connects every switch to both controllers through a
	// merged controller instead of the slicing proxy (ablation A1/A2).
	NoFlowVisor bool
	// OnStatus observes per-switch configuration state (GUI).
	OnStatus func(dpid uint64, state vnet.State)
	// RPCDropRate injects control-channel loss: each frame written by the
	// RPC client is dropped (and its connection cut) with this probability.
	// The reconciler must converge regardless — the failure scenario the
	// fire-and-forget design could not survive.
	RPCDropRate float64
	// RPCDropSeed makes injected loss reproducible (used when RPCDropRate
	// is non-zero).
	RPCDropSeed int64
	// RPCAttempts bounds the RPC client's short-horizon retries per send
	// (0 = package default). Long-horizon retry is the reconciler's job, so
	// loss tests set this low to exercise it.
	RPCAttempts int
	// ReconcilerBackoff overrides the reconciler's first retry delay
	// (0 = intent.DefaultBackoffBase). The ceiling stays proportional.
	ReconcilerBackoff time.Duration
	// ResyncProbe overrides the reconciler's idle epoch-probe period — how
	// quickly an rf-server restart is detected when no configuration is in
	// flight (0 = intent.DefaultResyncProbe).
	ResyncProbe time.Duration
	// Cluster sizes the distributed RF-controller. The zero value (or
	// Replicas ≤ 1) runs the paper's single rf-server with none of the
	// cluster machinery instantiated.
	Cluster ClusterSpec
	// RPCApplyDelay models the per-message work of the paper's RPC server
	// (VM cloning, config-file writes) inside each replica's apply lock —
	// the serialized cost that sharding the switch population divides.
	RPCApplyDelay time.Duration
	// Telemetry enables the streaming-stats pipeline: every directed host
	// pair becomes a monitored flow, observed at exactly one switch on its
	// live path (Floware-balanced placement), with per-flow counter deltas
	// streamed to the flow's master replica and rolled into per-flow and
	// per-link utilization views (TelemetrySnapshot).
	Telemetry bool
	// TelemetryInterval is the switches' export period
	// (0 = ofswitch.DefaultTelemetryInterval).
	TelemetryInterval time.Duration
	// TelemetrySpan is the rolling-window length of the utilization views
	// (0 = 5s).
	TelemetrySpan time.Duration
	// StatefulOffload enables the switches' XFSM-style local state machines
	// (MAC learning + microflow pinning): steady traffic is handled inside
	// the datapath without consulting the flow table, and learned flows are
	// never punted. Off by default — offloaded packets bypass per-flow
	// counters, a deliberate hardware-offload-style semantic trade.
	StatefulOffload bool
	// TE enables the online traffic-engineering loop: telemetry link
	// utilization is re-optimized every TEInterval, migrating the largest
	// movable flows off hot links onto colder equal-cost paths via pinned
	// flow entries. Implies Telemetry.
	TE bool
	// TEInterval paces optimization rounds (0 = 1s).
	TEInterval time.Duration
	// TEConfig tunes the optimizer (zero fields take te defaults).
	TEConfig te.Config
	// TELinkCapacityBPS is the modeled capacity of every link in bytes/sec
	// for utilization math (0 = 1 MiB/s).
	TELinkCapacityBPS float64
}

// Deployment is a fully wired automatic-configuration system under test: the
// paper's Fig. 2 plus the emulated data plane it manages.
type Deployment struct {
	opts  Options
	clk   clock.Clock
	graph *topo.Graph

	net      *netemu.Network
	switches map[uint64]*ofswitch.Switch
	hosts    map[int]*netemu.Host
	hostGWs  map[int]netip.Addr
	hostEPs  map[int]*netemu.Endpoint
	cables   map[int][2]*netemu.Endpoint // link index → endpoints

	fv      *flowvisor.FlowVisor // shared proxy (single-controller mode)
	fvs     []*flowvisor.FlowVisor
	topoCtl *ctlkit.Controller
	disc    *discovery.Discovery
	tc      *TopologyController

	// reps holds one rf-controller instance per replica; single-controller
	// deployments have exactly one. The cluster fields stay nil/empty unless
	// Cluster.Replicas > 1.
	reps       []*replica
	coord      *cluster.Coordinator
	shardOf    map[uint64]int // dpid → shard index
	shardDPIDs [][]uint64     // shard index → member dpids, ascending

	listeners []*ctlkit.MemListener

	// Telemetry placement-manager state (telemetry.go).
	telStop     chan struct{}
	telStopOnce sync.Once
	telWG       sync.WaitGroup
	telMu       sync.Mutex
	telEpoch    uint64
	telSig      string
	telPlaced   []telemetry.Placement
	// telPushMu serializes whole refreshTelemetry runs: the placement loop
	// and the TE loop both call it, and program pushes must reach the
	// platforms in epoch order.
	telPushMu sync.Mutex

	// Traffic-engineering state (te.go).
	teMu       sync.Mutex
	teEngine   *te.Engine
	teAssigned map[[2]int][]int
	teMoves    uint64

	startedAt time.Time
	mu        sync.Mutex
	started   bool
}

// DPIDForNode maps a graph node to its datapath ID (node IDs are 0-based;
// dpid 0 is avoided by convention).
func DPIDForNode(node int) uint64 { return uint64(node) + 1 }

// HostSubnet returns the conventional host subnet for a graph node.
func HostSubnet(node int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", node+1))
}

// NewDeployment assembles (but does not start) a system.
func NewDeployment(opts Options) (*Deployment, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("core: Options.Topology is required")
	}
	if opts.Clock == nil {
		opts.Clock = clock.System()
	}
	if !opts.Pool.IsValid() {
		opts.Pool = netip.MustParsePrefix("172.16.0.0/16")
	}
	if opts.TE {
		opts.Telemetry = true // TE consumes the telemetry utilization view
	}
	d := &Deployment{
		opts:     opts,
		clk:      opts.Clock,
		graph:    opts.Topology,
		net:      netemu.NewNetwork(opts.Clock),
		switches: make(map[uint64]*ofswitch.Switch),
		hosts:    make(map[int]*netemu.Host),
		hostGWs:  make(map[int]netip.Addr),
		hostEPs:  make(map[int]*netemu.Endpoint),
		cables:   make(map[int][2]*netemu.Endpoint),
		telStop:  make(chan struct{}),
	}
	if opts.TE {
		d.teEngine = te.New(opts.TEConfig)
		d.teAssigned = make(map[[2]int][]int)
	}
	if err := d.build(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

func (d *Deployment) build() error {
	g := d.graph
	// Switches.
	for _, n := range g.Nodes() {
		dpid := DPIDForNode(n.ID)
		d.switches[dpid] = ofswitch.New(ofswitch.Config{
			DPID: dpid, Name: fmt.Sprintf("s%d", n.ID), Clock: d.clk,
			StatefulOffload: d.opts.StatefulOffload,
		})
	}
	// Inter-switch cables.
	for i, l := range g.Links() {
		aDPID, bDPID := DPIDForNode(l.A), DPIDForNode(l.B)
		epA, epB := d.net.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("s%d:%d", l.A, l.APort),
			NameB: fmt.Sprintf("s%d:%d", l.B, l.BPort),
			MACA:  pkt.LocalMAC(aDPID<<16 | uint64(l.APort)),
			MACB:  pkt.LocalMAC(bDPID<<16 | uint64(l.BPort)),
		})
		if err := d.switches[aDPID].AttachPort(uint16(l.APort), epA); err != nil {
			return err
		}
		if err := d.switches[bDPID].AttachPort(uint16(l.BPort), epB); err != nil {
			return err
		}
		d.cables[i] = [2]*netemu.Endpoint{epA, epB}
	}
	// Hosts and their admin configuration.
	var admin []HostAttachment
	for _, node := range d.opts.HostNodes {
		n, ok := g.Node(node)
		if !ok {
			return fmt.Errorf("core: host node %d not in topology", node)
		}
		port, err := g.SetHost(n.ID)
		if err != nil {
			return err
		}
		dpid := DPIDForNode(n.ID)
		sub := HostSubnet(n.ID)
		gw := netip.PrefixFrom(sub.Addr().Next(), sub.Bits()) // .1
		hostIP := sub.Addr()
		for i := 0; i < 100; i++ {
			hostIP = hostIP.Next()
		}
		swEP, hostEP := d.net.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("s%d:%d", n.ID, port),
			NameB: fmt.Sprintf("h%d", n.ID),
			MACA:  pkt.LocalMAC(dpid<<16 | uint64(port)),
			MACB:  pkt.LocalMAC(0x7f<<32 | dpid),
		})
		if err := d.switches[dpid].AttachPort(uint16(port), swEP); err != nil {
			return err
		}
		host, err := netemu.NewHost(netemu.HostConfig{
			Name:    fmt.Sprintf("h%d", n.ID),
			Addr:    netip.PrefixFrom(hostIP, sub.Bits()),
			Gateway: gw.Addr(),
		}, hostEP, d.clk)
		if err != nil {
			return err
		}
		d.hosts[node] = host
		d.hostGWs[node] = gw.Addr()
		d.hostEPs[node] = hostEP
		admin = append(admin, HostAttachment{
			DPID: dpid, Port: uint16(port), Gateway: gw,
		})
	}

	// RF-controller replicas, each with its own embedded RPC server. One
	// replica is the paper's single rf-server; more than one is the
	// distributed controller: every platform is sharded, router IDs derive
	// from datapath IDs (VM creation order varies by replica), and a lease
	// coordinator arbitrates shard ownership.
	nrep := d.opts.Cluster.Replicas
	if nrep <= 0 {
		nrep = 1
	}
	if nrep > 1 && d.opts.NoFlowVisor {
		return fmt.Errorf("core: NoFlowVisor is incompatible with Cluster.Replicas > 1 (mastership routes each switch to its master through its own proxy)")
	}
	var ridFor func(uint64) netip.Addr
	if nrep > 1 {
		rids := ipam.NewRouterIDs(netip.MustParseAddr("10.255.0.1"))
		ridFor = func(dpid uint64) netip.Addr { return rids.At(dpid - 1) }
	}
	var cliOpts []rpcconf.ClientOption
	if d.opts.RPCAttempts > 0 {
		cliOpts = append(cliOpts, rpcconf.WithRetry(100*time.Millisecond, d.opts.RPCAttempts))
	}
	senders := make([]intent.Sender, nrep)
	for i := 0; i < nrep; i++ {
		platform, err := rf.New(rf.Config{
			Clock:       d.clk,
			Pool:        d.opts.Pool,
			BootDelay:   d.opts.BootDelay,
			Timers:      d.opts.Timers,
			OnStatus:    d.opts.OnStatus,
			Sharded:     nrep > 1,
			RouterIDFor: ridFor,
			ApplyDelay:  d.opts.RPCApplyDelay,
		})
		if err != nil {
			return err
		}
		rep := &replica{id: i, platform: platform}
		rep.alive.Store(true)
		rep.rpcSrv = rpcconf.NewServer(platform.RPCHandler())
		rpcL := ctlkit.NewMemListener(fmt.Sprintf("rpc-server-%d", i))
		rep.rpcLn.Store(rpcL)
		go rep.rpcSrv.Serve(rpcL)
		// The dialer reads the listener through the atomic pointer so an
		// rf-server restart (RestartRFServer) transparently redirects redials
		// to the new incarnation, and gates on liveness so a dead or
		// partitioned replica is unreachable mid-dial. Loss is always injected
		// through a LossInjector so scenarios can raise and clear the drop
		// rate mid-run; the seed is offset per replica to keep multi-replica
		// loss runs reproducible (replica 0 keeps the historical stream).
		rep.loss = rpcconf.NewLossInjector(d.opts.RPCDropRate, d.opts.RPCDropSeed+int64(i))
		rpcDial := rep.loss.Dialer(func() (net.Conn, error) {
			if !rep.alive.Load() {
				return nil, fmt.Errorf("core: replica %d is dead", rep.id)
			}
			if rep.partitioned.Load() {
				return nil, fmt.Errorf("core: replica %d is partitioned", rep.id)
			}
			return rep.rpcLn.Load().Dial()
		})
		rep.cli = rpcconf.NewClient(rpcDial, d.clk, cliOpts...)
		senders[i] = rep.cli
		d.reps = append(d.reps, rep)
	}
	if nrep > 1 {
		d.computeShards()
		coord, err := cluster.New(cluster.Config{
			Shards:   len(d.shardDPIDs),
			Replicas: nrep,
			Policy:   d.opts.Cluster.Policy,
			LeaseTTL: d.opts.Cluster.LeaseTTL,
			Renew:    d.opts.Cluster.LeaseRenew,
			Clock:    d.clk,
			OnChange: d.onAssignments,
		})
		if err != nil {
			return err
		}
		d.coord = coord
	}

	// Topology controller: discovery + RPC client.
	var discOpts []discovery.Option
	if d.opts.ProbeInterval > 0 {
		discOpts = append(discOpts, discovery.WithProbeInterval(d.opts.ProbeInterval))
	}
	if d.opts.LinkTTL > 0 {
		discOpts = append(discOpts, discovery.WithLinkTTL(d.opts.LinkTTL))
	}
	d.disc = discovery.New(d.clk, discOpts...)

	if d.opts.NoFlowVisor {
		// Merged ablation: one controller process hosts both applications.
		merged := mergeCallbacks(d.disc.Callbacks(), platformCallbacks(d.reps[0].platform))
		d.topoCtl = ctlkit.New("merged-controller", d.clk, merged)
		d.reps[0].platform.UseController(d.topoCtl)
	} else {
		d.topoCtl = ctlkit.New("topology-controller", d.clk, d.disc.Callbacks())
	}
	var recOpts []intent.Option
	if d.opts.ReconcilerBackoff > 0 {
		recOpts = append(recOpts,
			intent.WithBackoff(d.opts.ReconcilerBackoff, 50*d.opts.ReconcilerBackoff))
	}
	if d.opts.ResyncProbe > 0 {
		recOpts = append(recOpts, intent.WithResyncProbe(d.opts.ResyncProbe))
	}
	var ownerOf func(uint64) (int, bool)
	if d.clustered() {
		ownerOf = d.ownerOfDPID
	}
	var err error
	d.tc, err = NewTopologyController(d.clk, d.disc, d.topoCtl, senders,
		d.opts.Pool, 30, admin, ownerOf, recOpts...)
	if err != nil {
		return err
	}
	// AS annotations from the topology become administrator input to the
	// controller: switch and link declarations carry them, and the
	// RF-controller derives every VM's BGP configuration from there.
	asns := make(map[uint64]uint32)
	for _, n := range g.Nodes() {
		if n.AS > 0xffff {
			// Reject here, not deep in the VM boot path, where the error
			// would put the reconciler into a permanent retry loop.
			return fmt.Errorf("core: node %d AS %d exceeds 16 bits (the BGP engine speaks classic 2-byte ASNs)", n.ID, n.AS)
		}
		if n.AS != 0 {
			asns[DPIDForNode(n.ID)] = n.AS
		}
	}
	d.tc.SetASNs(asns)
	return nil
}

// Start connects everything and begins automatic configuration. It returns
// immediately; use the Await helpers to observe progress.
func (d *Deployment) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("core: deployment already started")
	}
	d.started = true
	d.startedAt = d.clk.Now()
	d.mu.Unlock()

	dialFor := make(map[uint64]func() (net.Conn, error), len(d.switches))
	switch {
	case d.opts.NoFlowVisor:
		ctlL := ctlkit.NewMemListener("merged")
		d.listeners = append(d.listeners, ctlL)
		go d.topoCtl.Serve(ctlL)
		for dpid := range d.switches {
			dialFor[dpid] = ctlL.Dial
		}
	case !d.clustered():
		topoL := ctlkit.NewMemListener("topology-controller")
		rfL := ctlkit.NewMemListener("rf-controller")
		fvL := ctlkit.NewMemListener("flowvisor")
		d.listeners = append(d.listeners, topoL, rfL, fvL)
		go d.topoCtl.Serve(topoL)
		go d.reps[0].platform.Controller().Serve(rfL)
		d.fv = flowvisor.New("fv", []flowvisor.Slice{
			flowvisor.LLDPSlice("topology", topoL.Dial),
			flowvisor.DefaultSlice("rf", rfL.Dial),
		})
		go d.fv.Serve(fvL)
		for dpid := range d.switches {
			dialFor[dpid] = fvL.Dial
		}
	default:
		// Distributed controller: one topology controller sees every switch,
		// but each switch's rf slice must follow mastership. Every replica
		// serves its own switch-facing listener, and every switch gets its
		// own proxy whose rf slice dials the switch's *current* master — so a
		// failover is just the old session dying and the redial landing on
		// the successor.
		topoL := ctlkit.NewMemListener("topology-controller")
		d.listeners = append(d.listeners, topoL)
		go d.topoCtl.Serve(topoL)
		for _, rep := range d.reps {
			rep.rfLn = ctlkit.NewMemListener(fmt.Sprintf("rf-controller-%d", rep.id))
			go rep.platform.Controller().Serve(rep.rfLn)
		}
		// Initial shard assignment happens synchronously inside Run: every
		// platform has adopted its shards before any switch connects.
		d.coord.Run()
		for dpid := range d.switches {
			fv := flowvisor.New(fmt.Sprintf("fv-%x", dpid), []flowvisor.Slice{
				flowvisor.LLDPSlice("topology", topoL.Dial),
				flowvisor.DefaultSlice("rf", func() (net.Conn, error) { return d.dialRFMaster(dpid) }),
			})
			d.fvs = append(d.fvs, fv)
			fvL := ctlkit.NewMemListener(fmt.Sprintf("flowvisor-%x", dpid))
			d.listeners = append(d.listeners, fvL)
			go fv.Serve(fvL)
			dialFor[dpid] = fvL.Dial
		}
	}
	d.tc.Run()
	if d.opts.Telemetry {
		// Seed the monitoring program before any switch connects (in cluster
		// mode shard ownership is already settled by coord.Run above), then
		// keep re-evaluating it against link state and mastership.
		d.refreshTelemetry()
		d.telWG.Add(1)
		go d.telemetryLoop()
		if d.opts.TE {
			d.telWG.Add(1)
			go d.teLoop()
		}
	}

	for dpid, sw := range d.switches {
		// StartDialer, not Start: a switch whose control session dies (echo
		// keepalive cut under load, proxy restart, mastership transfer)
		// redials instead of leaving the node dark forever — the
		// discovery/intent pipeline then re-declares it and the reconciler
		// re-configures it on its current master.
		swDial := dialFor[dpid]
		if err := sw.StartDialer(func() (io.ReadWriteCloser, error) { return swDial() }); err != nil {
			return err
		}
	}
	return nil
}

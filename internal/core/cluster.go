package core

// The distributed RF-controller: a Deployment can run N rf-controller
// replicas, each mastering a shard of the switch population under a
// lease-based coordinator (internal/cluster). The shard unit is the AS
// group — every switch of one autonomous system shares a replica, so the
// iBGP full mesh stays co-located — and flat (AS-less) switches shard
// individually. Replicas: 1 (the default) degenerates to the paper's single
// rf-server with none of the cluster machinery instantiated.

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/cluster"
	"routeflow/internal/ctlkit"
	"routeflow/internal/rf"
	"routeflow/internal/rpcconf"
	"routeflow/internal/vnet"
)

// ClusterSpec sizes the distributed RF-controller.
type ClusterSpec struct {
	// Replicas is the number of rf-controller instances (0 or 1 = the
	// single-controller deployment).
	Replicas int
	// Policy selects the shard→replica assignment rule (default modulo).
	Policy cluster.Policy
	// LeaseTTL is how long a silent replica keeps its shards
	// (default cluster.DefaultLeaseTTL, protocol time).
	LeaseTTL time.Duration
	// LeaseRenew is the heartbeat/evaluation period (default LeaseTTL/3).
	LeaseRenew time.Duration
}

// replica is one rf-controller instance: its platform, its RPC server
// incarnation, and the client the topology controller reaches it through.
type replica struct {
	id       int
	platform *rf.Platform
	cli      *rpcconf.Client
	loss     *rpcconf.LossInjector
	rfLn     *ctlkit.MemListener // switch-facing listener (cluster mode)

	// The RPC server can be crash-restarted mid-run: rpcMu guards the
	// current incarnation, rpcLn the listener the client's dialer reads on
	// every dial.
	rpcMu  sync.Mutex
	rpcSrv *rpcconf.Server
	rpcLn  atomic.Pointer[ctlkit.MemListener]

	alive       atomic.Bool
	partitioned atomic.Bool
}

// restartServer crash-restarts this replica's RPC endpoint (fresh epoch,
// dedup horizon lost).
func (r *replica) restartServer() {
	r.rpcMu.Lock()
	defer r.rpcMu.Unlock()
	if old := r.rpcLn.Load(); old != nil {
		old.Close()
	}
	if r.rpcSrv != nil {
		r.rpcSrv.Stop()
	}
	nl := ctlkit.NewMemListener(fmt.Sprintf("rpc-server-%d", r.id))
	r.rpcSrv = rpcconf.NewServer(r.platform.RPCHandler())
	r.rpcLn.Store(nl)
	go r.rpcSrv.Serve(nl)
}

func (r *replica) applied() uint64 {
	r.rpcMu.Lock()
	defer r.rpcMu.Unlock()
	if r.rpcSrv == nil {
		return 0
	}
	return r.rpcSrv.Applied()
}

func (r *replica) closeServer() {
	r.rpcMu.Lock()
	if ln := r.rpcLn.Load(); ln != nil {
		ln.Close()
	}
	if r.rpcSrv != nil {
		r.rpcSrv.Stop()
	}
	r.rpcMu.Unlock()
}

// clustered reports whether the deployment runs more than one replica.
func (d *Deployment) clustered() bool { return d.coord != nil }

// computeShards derives the shard map from the topology: AS groups first
// (ascending by ASN), then flat nodes (ascending by node ID) — a
// deterministic order so shard indexes, and therefore the modulo
// assignment, are reproducible.
func (d *Deployment) computeShards() {
	byAS := make(map[uint32][]uint64)
	var flat []uint64
	for _, n := range d.graph.Nodes() {
		dpid := DPIDForNode(n.ID)
		if n.AS != 0 {
			byAS[n.AS] = append(byAS[n.AS], dpid)
		} else {
			flat = append(flat, dpid)
		}
	}
	asns := make([]uint32, 0, len(byAS))
	for asn := range byAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
	d.shardOf = make(map[uint64]int)
	d.shardDPIDs = nil
	add := func(dpids []uint64) {
		s := len(d.shardDPIDs)
		sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
		d.shardDPIDs = append(d.shardDPIDs, dpids)
		for _, dpid := range dpids {
			d.shardOf[dpid] = s
		}
	}
	for _, asn := range asns {
		add(byAS[asn])
	}
	for _, dpid := range flat {
		add([]uint64{dpid})
	}
}

// ownerOfDPID resolves a switch's current master replica. In a
// single-controller deployment replica 0 masters everything.
func (d *Deployment) ownerOfDPID(dpid uint64) (int, bool) {
	if !d.clustered() {
		return 0, true
	}
	shard, ok := d.shardOf[dpid]
	if !ok {
		return -1, false
	}
	return d.coord.Owner(shard)
}

// ownerPlatform resolves the platform currently mastering a switch; ok is
// false when the switch's shard is orphaned (owner dead with no successor
// yet) or the owner is killed or partitioned — a master that cannot reach
// its switches is no master, even while its lease is still ticking down.
func (d *Deployment) ownerPlatform(dpid uint64) (*rf.Platform, int, bool) {
	r, ok := d.ownerOfDPID(dpid)
	if !ok {
		return nil, -1, false
	}
	rep := d.reps[r]
	if !rep.alive.Load() || rep.partitioned.Load() {
		return nil, r, false
	}
	return rep.platform, r, true
}

// vmOf resolves the VM mirroring a switch on its current master.
func (d *Deployment) vmOf(dpid uint64) (*vnet.VM, bool) {
	p, _, ok := d.ownerPlatform(dpid)
	if !ok {
		return nil, false
	}
	return p.VM(dpid)
}

// OwnerPlatform returns the RF platform mastering a switch — the platform
// whose desired flows the switch's table must mirror. In a
// single-controller deployment this is always the one platform; in a
// cluster it follows mastership, and ok is false while a shard is orphaned
// between its master's death and the lease-lapse rehome.
func (d *Deployment) OwnerPlatform(dpid uint64) (*rf.Platform, bool) {
	p, _, ok := d.ownerPlatform(dpid)
	return p, ok
}

// MasterOf returns the replica index currently mastering a graph node's
// switch (-1 while orphaned).
func (d *Deployment) MasterOf(node int) int {
	r, ok := d.ownerOfDPID(DPIDForNode(node))
	if !ok {
		return -1
	}
	return r
}

// NumReplicas returns how many rf-controller replicas the deployment runs.
func (d *Deployment) NumReplicas() int { return len(d.reps) }

// Replica is the public handle of one rf-controller replica.
type Replica struct {
	d  *Deployment
	id int
}

// Replicas returns a handle per rf-controller replica.
func (d *Deployment) Replicas() []Replica {
	out := make([]Replica, len(d.reps))
	for i := range d.reps {
		out[i] = Replica{d: d, id: i}
	}
	return out
}

// Replica returns the handle of one replica.
func (d *Deployment) Replica(i int) (Replica, bool) {
	if i < 0 || i >= len(d.reps) {
		return Replica{}, false
	}
	return Replica{d: d, id: i}, true
}

// ID returns the replica index.
func (r Replica) ID() int { return r.id }

// Platform returns the replica's RF platform.
func (r Replica) Platform() *rf.Platform { return r.d.reps[r.id].platform }

// Alive reports whether the replica process is running (false after
// KillReplica).
func (r Replica) Alive() bool { return r.d.reps[r.id].alive.Load() }

// Partitioned reports whether the replica is currently cut off from its
// switches and the coordination service.
func (r Replica) Partitioned() bool { return r.d.reps[r.id].partitioned.Load() }

// Owned returns the graph nodes whose switches this replica currently
// masters, ascending.
func (r Replica) Owned() []int {
	var out []int
	for _, n := range r.d.graph.Nodes() {
		if m, ok := r.d.ownerOfDPID(DPIDForNode(n.ID)); ok && m == r.id {
			out = append(out, n.ID)
		}
	}
	sort.Ints(out)
	return out
}

// onAssignments reacts to a batch of ownership transfers from the
// coordinator: released switches are torn down on their previous master
// (which also cuts their control sessions, forcing a re-dial to the new
// master), adopted switches are fenced in on the new one, and the topology
// controller re-scopes desired state.
func (d *Deployment) onAssignments(batch []cluster.Assignment) {
	for _, a := range batch {
		for _, dpid := range d.shardDPIDs[a.Shard] {
			if a.Prev >= 0 && a.Prev != a.Replica && d.reps[a.Prev].alive.Load() {
				d.reps[a.Prev].platform.Release(dpid)
			}
			if a.Replica >= 0 {
				d.reps[a.Replica].platform.Adopt(dpid)
			}
		}
	}
	if d.tc != nil {
		d.tc.Rehome()
	}
}

// dialRFMaster connects a switch's rf slice to its current master replica.
// While a shard is orphaned (or its master dead/partitioned) the dial
// fails; the switch's session supervisor keeps re-dialing with backoff and
// lands on the new master after the rehome.
func (d *Deployment) dialRFMaster(dpid uint64) (net.Conn, error) {
	r, ok := d.ownerOfDPID(dpid)
	if !ok {
		return nil, fmt.Errorf("core: switch %016x has no live master", dpid)
	}
	rep := d.reps[r]
	if !rep.alive.Load() || rep.partitioned.Load() {
		return nil, fmt.Errorf("core: replica %d is unavailable", r)
	}
	ln := rep.rfLn
	if ln == nil {
		return nil, fmt.Errorf("core: replica %d has no switch listener", r)
	}
	return ln.Dial()
}

// KillReplica crash-stops one rf-controller replica: its reconciler and RPC
// server die, its VMs are destroyed, and every control session it held is
// cut. Its shards stay ostensibly owned until the lease lapses, then
// re-home to the survivors — the master-death failure the cluster exists to
// absorb. The last live replica cannot be killed.
func (d *Deployment) KillReplica(i int) error {
	if !d.clustered() {
		return fmt.Errorf("core: KillReplica requires a clustered deployment")
	}
	if i < 0 || i >= len(d.reps) {
		return fmt.Errorf("core: no replica %d", i)
	}
	live := 0
	for _, rep := range d.reps {
		if rep.alive.Load() {
			live++
		}
	}
	rep := d.reps[i]
	if !rep.alive.Load() {
		return fmt.Errorf("core: replica %d is already dead", i)
	}
	if live <= 1 {
		return fmt.Errorf("core: refusing to kill the last live replica")
	}
	if !rep.alive.CompareAndSwap(true, false) {
		return fmt.Errorf("core: replica %d is already dead", i)
	}
	d.coord.SetLive(i, false)
	d.tc.StopReconciler(i)
	rep.closeServer()
	rep.cli.Close()
	rep.platform.Stop()
	if rep.rfLn != nil {
		rep.rfLn.Close()
	}
	return nil
}

// SetReplicaPartitioned cuts (or heals) a replica's connectivity: to its
// switches, to the RPC channel from the topology controller, and to the
// coordination service — so its heartbeats stop and its leases lapse. On
// lease expiry the replica steps down (its in-process platform releases the
// shards, modeling lease-based self-fencing) and the survivors take over;
// on heal it rejoins and the cooperative rebalance hands its shards back.
func (d *Deployment) SetReplicaPartitioned(i int, partitioned bool) error {
	if !d.clustered() {
		return fmt.Errorf("core: SetReplicaPartitioned requires a clustered deployment")
	}
	if i < 0 || i >= len(d.reps) {
		return fmt.Errorf("core: no replica %d", i)
	}
	rep := d.reps[i]
	if !rep.alive.Load() {
		return fmt.Errorf("core: replica %d is dead", i)
	}
	if rep.partitioned.Swap(partitioned) == partitioned {
		return nil
	}
	d.coord.SetLive(i, !partitioned)
	if partitioned {
		// Cut every control session the replica holds; redials fail at the
		// dialer gate until the heal.
		for dpid := range d.switches {
			if sc, ok := rep.platform.Controller().Switch(dpid); ok {
				sc.Close()
			}
		}
		rep.cli.Close()
	}
	return nil
}

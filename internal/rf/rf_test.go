package rf

import (
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/quagga"
	"routeflow/internal/rpcconf"
	"routeflow/internal/vnet"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Config{
		Pool:      netip.MustParsePrefix("172.16.0.0/16"),
		BootDelay: 5 * time.Millisecond,
		Timers: quagga.Timers{Hello: 20 * time.Millisecond,
			Dead: 80 * time.Millisecond, SPFDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func apply(t *testing.T, p *Platform, m *rpcconf.Message) {
	t.Helper()
	if err := p.RPCHandler()(m); err != nil {
		t.Fatalf("%s: %v", m.Kind, err)
	}
}

func waitConfigured(t *testing.T, p *Platform, dpid uint64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if p.Configured(dpid) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("switch %x never configured", dpid)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Pool: netip.MustParsePrefix("fd00::/64")}); err == nil {
		t.Fatal("IPv6 pool accepted")
	}
}

func TestSwitchUpCreatesVM(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(0xA, 3))
	vm, ok := p.VM(0xA)
	if !ok || vm.Ports() != 3 {
		t.Fatalf("vm = %v, %v", vm, ok)
	}
	waitConfigured(t, p, 0xA)
	if p.NumVMs() != 1 {
		t.Fatal("vm count")
	}
	// Idempotent re-announcement.
	apply(t, p, rpcconf.SwitchUp(0xA, 3))
	if p.NumVMs() != 1 {
		t.Fatal("duplicate switch-up created a second VM")
	}
	files, ok := p.ConfigFiles(0xA)
	if !ok || files["zebra.conf"] == "" {
		t.Fatal("config files missing after switch-up")
	}
}

func TestLinkUpConfiguresBothVMs(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(1, 2))
	apply(t, p, rpcconf.SwitchUp(2, 2))
	waitConfigured(t, p, 1)
	waitConfigured(t, p, 2)
	a := netip.MustParsePrefix("172.16.0.1/30")
	b := netip.MustParsePrefix("172.16.0.2/30")
	apply(t, p, rpcconf.LinkUp(1, 1, 2, 1, a, b))

	vmA, _ := p.VM(1)
	vmB, _ := p.VM(2)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, okA := vmA.InterfaceAddr(1); okA {
			break
		}
		time.Sleep(time.Millisecond)
	}
	addrA, okA := vmA.InterfaceAddr(1)
	addrB, okB := vmB.InterfaceAddr(1)
	if !okA || !okB || addrA != a || addrB != b {
		t.Fatalf("addrs = %v/%v %v/%v", addrA, okA, addrB, okB)
	}
	// The generated ospfd.conf must cover the pool.
	files, _ := p.ConfigFiles(1)
	if files["ospfd.conf"] == "" {
		t.Fatal("ospfd.conf missing")
	}
	// Unknown VM in link-up is an error.
	if err := p.RPCHandler()(rpcconf.LinkUp(1, 2, 99, 1, a, b)); err == nil {
		t.Fatal("link-up with ghost VM accepted")
	}
}

func TestHostUpConfiguresGateway(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(5, 2))
	waitConfigured(t, p, 5)
	gw := netip.MustParsePrefix("10.5.0.1/24")
	apply(t, p, rpcconf.HostUp(5, 2, gw))
	vm, _ := p.VM(5)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := vm.InterfaceAddr(2); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr, ok := vm.InterfaceAddr(2); !ok || addr != gw {
		t.Fatalf("gateway = %v, %v", addr, ok)
	}
	apply(t, p, rpcconf.HostDown(5, 2))
	if _, ok := vm.InterfaceAddr(2); ok {
		t.Fatal("gateway survived host-down")
	}
	// host-up for unknown VM errors; host-down is tolerant.
	if err := p.RPCHandler()(rpcconf.HostUp(42, 1, gw)); err == nil {
		t.Fatal("host-up for ghost VM accepted")
	}
	apply(t, p, rpcconf.HostDown(42, 1))
}

func TestSwitchDownDestroysVM(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(7, 1))
	waitConfigured(t, p, 7)
	vm, _ := p.VM(7)
	apply(t, p, rpcconf.SwitchDown(7))
	if p.NumVMs() != 0 || p.Configured(7) {
		t.Fatal("vm survived switch-down")
	}
	if vm.State() != vnet.StateDestroyed {
		t.Fatalf("vm state = %v", vm.State())
	}
	apply(t, p, rpcconf.SwitchDown(7)) // idempotent
}

func TestUnknownMessageKind(t *testing.T) {
	p := newPlatform(t)
	if err := p.RPCHandler()(&rpcconf.Message{Kind: "frobnicate"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// The reconciler's epoch probe is a no-op, never an error.
	apply(t, p, rpcconf.Probe())
}

// TestReApplyConverges exercises the reconciler's contract with the apply
// side: re-delivering SwitchUp, LinkUp and HostUp (duplicate acks lost,
// server re-synced after restart, …) must converge, not error.
func TestReApplyConverges(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(1, 2))
	apply(t, p, rpcconf.SwitchUp(2, 2))
	waitConfigured(t, p, 1)
	waitConfigured(t, p, 2)
	a := netip.MustParsePrefix("172.16.0.1/30")
	b := netip.MustParsePrefix("172.16.0.2/30")
	gw := netip.MustParsePrefix("10.1.0.1/24")
	for i := 0; i < 3; i++ {
		apply(t, p, rpcconf.SwitchUp(1, 2))
		apply(t, p, rpcconf.LinkUp(1, 1, 2, 1, a, b))
		apply(t, p, rpcconf.HostUp(1, 2, gw))
	}
	vmA, _ := p.VM(1)
	if addr, ok := vmA.InterfaceAddr(1); !ok || addr != a {
		t.Fatalf("link addr after re-applies = %v, %v", addr, ok)
	}
	if addr, ok := vmA.InterfaceAddr(2); !ok || addr != gw {
		t.Fatalf("gateway after re-applies = %v, %v", addr, ok)
	}
	if p.NumVMs() != 2 {
		t.Fatalf("VMs after re-applies = %d", p.NumVMs())
	}
}

// TestHostUpBeyondAnnouncedPorts is the rf-level regression for the ROADMAP
// flake: a HostUp naming a port number past the announced port count must
// grow the interface instead of wedging the gateway forever.
func TestHostUpBeyondAnnouncedPorts(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(3, 1)) // announces a single port
	waitConfigured(t, p, 3)
	gw := netip.MustParsePrefix("10.3.0.1/24")
	apply(t, p, rpcconf.HostUp(3, 5, gw)) // host hangs off port 5
	vm, _ := p.VM(3)
	if addr, ok := vm.InterfaceAddr(5); !ok || addr != gw {
		t.Fatalf("gateway on grown port = %v, %v", addr, ok)
	}
}

func TestStatusCallbackSequence(t *testing.T) {
	states := make(chan vnet.State, 8)
	p, err := New(Config{
		Pool:      netip.MustParsePrefix("172.16.0.0/16"),
		BootDelay: 10 * time.Millisecond,
		OnStatus:  func(dpid uint64, st vnet.State) { states <- st },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.RPCHandler()(rpcconf.SwitchUp(3, 1)); err != nil {
		t.Fatal(err)
	}
	want := []vnet.State{vnet.StateBooting, vnet.StateUp}
	for _, w := range want {
		select {
		case got := <-states:
			if got != w {
				t.Fatalf("state = %v, want %v", got, w)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("missing status %v", w)
		}
	}
	if err := p.RPCHandler()(rpcconf.SwitchDown(3)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-states:
		if got != vnet.StateDestroyed {
			t.Fatalf("state = %v", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("missing destroyed status")
	}
}

func TestPortOfIface(t *testing.T) {
	if p, ok := portOfIface("eth7"); !ok || p != 7 {
		t.Fatal("eth7")
	}
	if _, ok := portOfIface("lo"); ok {
		t.Fatal("lo parsed")
	}
	if _, ok := portOfIface("ethx"); ok {
		t.Fatal("ethx parsed")
	}
}

func TestFlowCountStartsZero(t *testing.T) {
	p := newPlatform(t)
	apply(t, p, rpcconf.SwitchUp(9, 1))
	if p.FlowCount(9) != 0 {
		t.Fatal("flows before any routes")
	}
}

package rf

// The platform's half of the streaming-telemetry pipeline: it carries the
// monitoring program (which switch observes which flows, at what epoch) down
// to the switches as TELEMETRY_MOD, feeds the switches' TELEMETRY_EXPORT
// streams into a telemetry.Aggregator, and answers each export with the ack
// that lets the switch advance its delta baseline. Program pushes ride the
// same non-blocking-send + repair-loop discipline as flow state: a dropped
// TELEMETRY_MOD marks the switch dirty and the next resync re-pushes it, so
// the program is level-triggered end to end.

import (
	"time"

	"routeflow/internal/ctlkit"
	"routeflow/internal/openflow"
	"routeflow/internal/telemetry"
)

// TelemetryProgram is one platform's monitoring workload: the flows whose
// monitor switch this platform masters, and the compiled per-switch rules.
type TelemetryProgram struct {
	// Epoch fences export streams. Every program push carries it to the
	// switches; a switch seeing a new epoch resets its stream state and
	// re-baselines with a FULL export. Epoch 0 means "no program" — the
	// platform sends nothing and ignores exports.
	Epoch uint64
	// Interval is the switches' export period (0 = switch default).
	Interval time.Duration
	// Span is the aggregator's rolling-window length (0 = 5s).
	Span time.Duration
	// Flows are the placements whose monitor switch this platform owns.
	Flows []telemetry.Placement
	// MonitorDPID maps a placement's monitor node to its switch DPID.
	MonitorDPID func(node int) uint64
	// Rules holds the compiled match rules per switch DPID. A switch that
	// had rules in the previous program and none here receives an empty
	// TELEMETRY_MOD retiring them (full-replace semantics).
	Rules map[uint64][]openflow.MonitorRule
}

// SetTelemetry installs a monitoring program, pushing TELEMETRY_MOD to every
// affected connected switch. The aggregator survives program changes: flows
// whose monitor switch is unchanged keep their views and totals, and the
// epoch advances in place so the re-baselining FULLs charge only gains.
func (p *Platform) SetTelemetry(prog TelemetryProgram) {
	p.telMu.Lock()
	if p.telAgg == nil {
		p.telAgg = telemetry.NewAggregator(p.clk, prog.Epoch, prog.Span)
	} else {
		p.telAgg.SetEpoch(prog.Epoch)
	}
	p.telAgg.SetFlows(prog.Flows, prog.MonitorDPID)
	// Push to the union of old and new rule-bearing switches: one that
	// dropped out of the program must see the (empty) replacement.
	dpids := make(map[uint64]bool, len(prog.Rules))
	for dpid := range prog.Rules {
		dpids[dpid] = true
	}
	for dpid := range p.telProg.Rules {
		dpids[dpid] = true
	}
	p.telProg = prog
	mods := make(map[uint64]*openflow.TelemetryMod, len(dpids))
	for dpid := range dpids {
		mods[dpid] = p.telemetryModLocked(dpid)
	}
	p.telMu.Unlock()
	for dpid, tm := range mods {
		if tm == nil {
			continue
		}
		sc, ok := p.ctl.Switch(dpid)
		if !ok {
			continue // the reconnect replay in onSwitchUp covers it
		}
		if err := sc.TrySend(tm); err != nil {
			p.markDirty(dpid)
		}
	}
}

// telemetryModLocked builds the program-push message for one switch, or nil
// when no program is active. Callers hold telMu.
func (p *Platform) telemetryModLocked(dpid uint64) *openflow.TelemetryMod {
	if p.telProg.Epoch == 0 {
		return nil
	}
	return &openflow.TelemetryMod{
		Epoch:      p.telProg.Epoch,
		IntervalMS: uint32(p.telProg.Interval / time.Millisecond),
		Rules:      append([]openflow.MonitorRule(nil), p.telProg.Rules[dpid]...),
	}
}

// telemetryMod is telemetryModLocked for callers not holding telMu.
func (p *Platform) telemetryMod(dpid uint64) *openflow.TelemetryMod {
	p.telMu.Lock()
	defer p.telMu.Unlock()
	return p.telemetryModLocked(dpid)
}

// onTelemetry consumes one export and answers with the ack that advances the
// switch's delta baseline. A dropped ack is safe: the switch times the rule
// out of sync and re-baselines with an idempotent FULL.
func (p *Platform) onTelemetry(sc *ctlkit.SwitchConn, ex *openflow.TelemetryExport) {
	p.telMu.Lock()
	agg := p.telAgg
	p.telMu.Unlock()
	if agg == nil {
		return
	}
	if ack := agg.HandleExport(sc.DPID(), ex); ack != nil {
		_ = sc.TrySend(ack)
	}
}

// TelemetrySnapshot returns this platform's current flow and link views
// (empty before any program is set). In a cluster each replica covers only
// the flows it owns; merge replica snapshots with telemetry.Merge.
func (p *Platform) TelemetrySnapshot() telemetry.Snapshot {
	p.telMu.Lock()
	agg := p.telAgg
	p.telMu.Unlock()
	if agg == nil {
		return telemetry.Snapshot{}
	}
	return agg.Snapshot()
}

// dropTelemetryRules forgets a released switch's rules so repair-loop
// resyncs on this (former master) replica stop re-pushing them. The new
// master's program, under its own epoch, supersedes them on the switch.
func (p *Platform) dropTelemetryRules(dpid uint64) {
	p.telMu.Lock()
	delete(p.telProg.Rules, dpid)
	p.telMu.Unlock()
}

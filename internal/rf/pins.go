package rf

// Traffic-engineering path pins: explicit per-pair flow entries the TE
// optimizer lays over the RIB-derived routes. A pin matches one (source
// subnet, destination subnet) pair at a priority above every prefix route
// and below the host /32 fast path, and forwards along the TE-assigned
// path hop with the usual MAC rewrite — so a pinned pair follows exactly
// the path telemetry charges it to, while unpinned traffic keeps riding
// the ECMP route flows. Pins are desired state: they ride the same
// non-blocking-send + repair-loop + reconnect-replay discipline as route
// flows, and die with the switch on Release/teardown.

import (
	"net/netip"

	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// PinFlowPriority sits above any prefix route (100+bits, at most 132 for a
// /32) and below the host fast path (500): a pin steers transit hops while
// delivery at the destination edge switch stays with the learned-host flow.
const PinFlowPriority = 400

// PinFlow is one TE path pin: on switch DPID, IPv4 traffic from Src to Dst
// is rewritten to DlSrc/DlDst and forwarded out OutPort.
type PinFlow struct {
	DPID         uint64
	Src, Dst     netip.Prefix
	DlSrc, DlDst pkt.MAC
	OutPort      uint16
}

type pinKey struct{ src, dst netip.Prefix }

// SetPins replaces the whole pin program (full-replace semantics, like
// SetTelemetry): pins that disappeared are deleted from their switches, new
// or changed ones are (re)installed — an add with identical match and
// priority replaces in place on the switch — and unchanged ones are left
// alone. Dropped sends mark the switch dirty for repair.
func (p *Platform) SetPins(pins []PinFlow) {
	next := make(map[uint64]map[pinKey]PinFlow)
	for _, pf := range pins {
		if next[pf.DPID] == nil {
			next[pf.DPID] = make(map[pinKey]PinFlow)
		}
		next[pf.DPID][pinKey{pf.Src, pf.Dst}] = pf
	}
	type change struct {
		dpid uint64
		mods []*openflow.FlowMod
	}
	var changes []change
	p.mu.Lock()
	dpids := make(map[uint64]bool, len(next)+len(p.pins))
	for dpid := range next {
		dpids[dpid] = true
	}
	for dpid := range p.pins {
		dpids[dpid] = true
	}
	for dpid := range dpids {
		old, nw := p.pins[dpid], next[dpid]
		ch := change{dpid: dpid}
		for k, pf := range old {
			if _, keep := nw[k]; !keep {
				ch.mods = append(ch.mods, pinDelete(pf))
			}
		}
		for k, pf := range nw {
			if old[k] != pf {
				ch.mods = append(ch.mods, pinFlowMod(pf))
			}
		}
		if len(ch.mods) > 0 {
			p.flowGen[dpid]++
			changes = append(changes, ch)
		}
	}
	p.pins = next
	p.mu.Unlock()
	for _, ch := range changes {
		sc, ok := p.ctl.Switch(ch.dpid)
		if !ok {
			continue // the reconnect replay in onSwitchUp covers it
		}
		for _, fm := range ch.mods {
			if err := sc.TrySend(fm); err != nil {
				p.markDirty(ch.dpid)
			}
		}
	}
}

// Pins snapshots the active pin program in unspecified order (stats, tests).
func (p *Platform) Pins() []PinFlow {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []PinFlow
	for _, m := range p.pins {
		for _, pf := range m {
			out = append(out, pf)
		}
	}
	return out
}

func pinMatch(pf PinFlow) openflow.Match {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = uint16(pkt.EtherTypeIPv4)
	m.SetNwSrcPrefix(pf.Src)
	m.SetNwDstPrefix(pf.Dst)
	return m
}

func pinFlowMod(pf PinFlow) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    pinMatch(pf),
		Command:  openflow.FlowModAdd,
		Priority: PinFlowPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionSetDlSrc{Addr: pf.DlSrc},
			&openflow.ActionSetDlDst{Addr: pf.DlDst},
			&openflow.ActionOutput{Port: pf.OutPort},
		},
	}
}

func pinDelete(pf PinFlow) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    pinMatch(pf),
		Command:  openflow.FlowModDeleteStrict,
		Priority: PinFlowPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}
}

// pinModsLocked builds the install messages for one switch's pins (resync
// and reconnect replay). Callers hold mu.
func (p *Platform) pinModsLocked(dpid uint64) []*openflow.FlowMod {
	out := make([]*openflow.FlowMod, 0, len(p.pins[dpid]))
	for _, pf := range p.pins[dpid] {
		out = append(out, pinFlowMod(pf))
	}
	return out
}

// Package rf implements the RouteFlow control platform of the paper's
// RF-controller (Fig. 1): the rf-server that owns one virtual machine per
// switch and the 1:1 mapping between VM interfaces and switch ports; the
// rf-proxy data path that punts packet-ins into the mirrored VM interface
// and packet-outs the VM's own frames; and the route translation that turns
// every FIB change inside a VM into OpenFlow flow entries on its physical
// switch (match on destination prefix, rewrite source/destination MACs, and
// forward out the mapped port). The package also embeds the paper's RPC
// server: configuration messages from the topology controller create VMs,
// map them to switches, address their interfaces and write their routing
// configuration files.
package rf

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/ipam"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
	"routeflow/internal/quagga"
	"routeflow/internal/rib"
	"routeflow/internal/rpcconf"
	"routeflow/internal/telemetry"
	"routeflow/internal/vnet"
)

// Defaults.
const (
	DefaultBootDelay = 2 * time.Second // modeled LXC clone + daemon start
	DefaultLinkCost  = 10
	hostFlowPriority = 500 // above any prefix flow (100..132 + bits)
	// flowRepairInterval paces the flow-table resync of switches whose
	// non-blocking sends dropped messages (protocol time).
	flowRepairInterval = 500 * time.Millisecond
)

// Config configures the platform.
type Config struct {
	Clock clock.Clock
	// Pool is the administrator's IP range for the virtual environment; it
	// becomes the OSPF network statement of every VM.
	Pool netip.Prefix
	// RouterIDStart seeds VM router IDs.
	RouterIDStart netip.Addr
	// BootDelay models VM creation time.
	BootDelay time.Duration
	// Timers are the routing daemons' protocol timers (zero = RFC
	// defaults).
	Timers quagga.Timers
	// OnStatus, if set, observes per-switch configuration state changes
	// (the red/green GUI signal). May be called concurrently.
	OnStatus func(dpid uint64, state vnet.State)
	// Sharded marks this platform as one replica of a distributed
	// RF-controller: it only materialises state for switches it has been
	// told to Adopt, and fences configuration messages for everything else.
	// Off (the default), the platform owns every switch — the paper's
	// single rf-server.
	Sharded bool
	// RouterIDFor, if set, derives a switch's router ID from its datapath
	// ID instead of consuming the sequential RouterIDStart allocator.
	// Sharded deployments need this: the ID must not depend on which
	// replica creates the VM or in what order.
	RouterIDFor func(dpid uint64) netip.Addr
	// ApplyDelay models the per-message work of the paper's RPC server (VM
	// cloning, config-file writes). It is served inside the RPC server's
	// apply lock, so it serialises within one replica but parallelises
	// across replicas — the quantity sharding exists to divide.
	ApplyDelay time.Duration
}

type addrOwner struct {
	dpid uint64
	port uint16
}

// Platform is the RF-controller application state.
type Platform struct {
	cfg Config
	clk clock.Clock
	ctl *ctlkit.Controller

	rids *ipam.RouterIDs

	mu        sync.Mutex
	vms       map[uint64]*vnet.VM
	asns      map[uint64]uint32 // AS per switch (0 = flat domain)
	addrIndex map[netip.Addr]addrOwner
	// portAddr records the address assigned to every link/host endpoint the
	// platform has been told about — including endpoints mastered by another
	// replica, whose VM does not exist here but whose address the teardown
	// path still needs for eBGP unpeering.
	portAddr map[addrOwner]netip.Prefix
	// owned is the set of adopted switches (Sharded mode only).
	owned map[uint64]bool
	// needsWipe marks freshly adopted switches whose physical flow table may
	// hold a previous master's entries; the first resync wipes before
	// replaying.
	needsWipe map[uint64]bool
	flows     map[uint64]map[netip.Prefix]*openflow.FlowMod // desired state
	// pins is the TE path-pin program (pins.go), desired state alongside
	// flows: per switch, per (src,dst) pair, the pinned hop.
	pins map[uint64]map[pinKey]PinFlow
	// dirty marks switches whose flow state may have diverged from desired
	// (a non-blocking send was dropped); the repair loop resyncs them.
	dirty map[uint64]bool
	// flowGen counts desired-flow mutations per switch so a resync can
	// detect a concurrent install/remove racing its snapshot.
	flowGen map[uint64]uint64

	// telMu guards the telemetry program and aggregator (see telemetry.go);
	// it is separate from mu so export handling never contends with the RPC
	// apply path.
	telMu   sync.Mutex
	telProg TelemetryProgram
	telAgg  *telemetry.Aggregator

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates the platform and its embedded controller runtime.
func New(cfg Config) (*Platform, error) {
	if !cfg.Pool.Addr().Is4() {
		return nil, fmt.Errorf("rf: pool %v is not IPv4", cfg.Pool)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if !cfg.RouterIDStart.IsValid() {
		cfg.RouterIDStart = netip.MustParseAddr("10.255.0.1")
	}
	if cfg.BootDelay <= 0 {
		cfg.BootDelay = DefaultBootDelay
	}
	p := &Platform{
		cfg:       cfg,
		clk:       cfg.Clock,
		rids:      ipam.NewRouterIDs(cfg.RouterIDStart),
		vms:       make(map[uint64]*vnet.VM),
		asns:      make(map[uint64]uint32),
		addrIndex: make(map[netip.Addr]addrOwner),
		portAddr:  make(map[addrOwner]netip.Prefix),
		owned:     make(map[uint64]bool),
		needsWipe: make(map[uint64]bool),
		flows:     make(map[uint64]map[netip.Prefix]*openflow.FlowMod),
		pins:      make(map[uint64]map[pinKey]PinFlow),
		dirty:     make(map[uint64]bool),
		flowGen:   make(map[uint64]uint64),
		stop:      make(chan struct{}),
	}
	p.ctl = ctlkit.New("rf-controller", cfg.Clock, ctlkit.Callbacks{
		SwitchUp:  p.onSwitchUp,
		PacketIn:  p.onPacketIn,
		Telemetry: p.onTelemetry,
	})
	p.wg.Add(1)
	go p.flowRepairLoop()
	return p, nil
}

// Controller returns the ctlkit runtime (serve it on the FlowVisor-facing
// listener).
func (p *Platform) Controller() *ctlkit.Controller { return p.ctl }

// Stop halts the platform.
func (p *Platform) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.ctl.Stop()
	p.mu.Lock()
	vms := make([]*vnet.VM, 0, len(p.vms))
	for _, vm := range p.vms {
		vms = append(vms, vm)
	}
	p.mu.Unlock()
	for _, vm := range vms {
		vm.Destroy()
	}
}

// VM returns the VM mirroring dpid.
func (p *Platform) VM(dpid uint64) (*vnet.VM, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	vm, ok := p.vms[dpid]
	return vm, ok
}

// NumVMs returns how many VMs exist.
func (p *Platform) NumVMs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.vms)
}

// Configured reports the paper's green condition: the switch has a
// corresponding VM and it is up.
func (p *Platform) Configured(dpid uint64) bool {
	vm, ok := p.VM(dpid)
	return ok && vm.State() == vnet.StateUp
}

// ConfigFiles returns the generated routing configuration files of a VM
// (zebra.conf, ospfd.conf, bgpd.conf) — the files the paper's RPC server
// writes. They are rendered from the VM's running configuration, so
// everything applied since creation (boot-deferred interfaces, BGP
// neighbors learned as border links came up) is always reflected. ok is
// false once the VM is gone.
func (p *Platform) ConfigFiles(dpid uint64) (map[string]string, bool) {
	p.mu.Lock()
	vm := p.vms[dpid]
	p.mu.Unlock()
	if vm == nil {
		return nil, false
	}
	return vm.Router().Config().Files(), true
}

// Owns reports whether this platform masters dpid. A non-sharded platform
// masters everything.
func (p *Platform) Owns(dpid uint64) bool {
	if !p.cfg.Sharded {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.owned[dpid]
}

// Adopt grants this replica mastership of a switch. The switch's first
// resync wipes the physical flow table before replaying desired state — a
// previous master may have left entries behind. No-op unless Sharded.
func (p *Platform) Adopt(dpid uint64) {
	if !p.cfg.Sharded {
		return
	}
	p.mu.Lock()
	p.owned[dpid] = true
	p.needsWipe[dpid] = true
	// If the switch's session already landed here (re-adoption after a
	// brief loss), the repair loop must run the wipe now, not on reconnect.
	p.dirty[dpid] = true
	p.mu.Unlock()
}

// Release revokes mastership: the switch's VM and flow state are torn down
// locally (no RPC teardown — the new master owns the switch's fate) and any
// live control session is cut so the switch re-dials, landing on its new
// master. No-op unless Sharded.
func (p *Platform) Release(dpid uint64) {
	if !p.cfg.Sharded {
		return
	}
	p.mu.Lock()
	delete(p.owned, dpid)
	delete(p.needsWipe, dpid)
	p.mu.Unlock()
	p.dropTelemetryRules(dpid)
	p.teardownSwitch(dpid)
	if sc, ok := p.ctl.Switch(dpid); ok {
		sc.Close()
	}
}

// owns is the handler-side fence.
func (p *Platform) owns(dpid uint64) bool {
	if !p.cfg.Sharded {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.owned[dpid]
}

// RPCHandler returns the configuration-message handler for rpcconf.Server —
// the paper's RPC server embedded in the RF-controller.
func (p *Platform) RPCHandler() rpcconf.Handler {
	return func(m *rpcconf.Message) error {
		if d := p.cfg.ApplyDelay; d > 0 && m.Kind != rpcconf.KindProbe {
			// Modeled apply cost, held inside the server's apply lock.
			p.clk.Sleep(d)
		}
		switch m.Kind {
		case rpcconf.KindSwitchUp:
			return p.handleSwitchUp(m)
		case rpcconf.KindSwitchDown:
			return p.handleSwitchDown(m)
		case rpcconf.KindLinkUp:
			return p.handleLinkUp(m)
		case rpcconf.KindLinkDown:
			return p.handleLinkDown(m)
		case rpcconf.KindHostUp:
			return p.handleHostUp(m)
		case rpcconf.KindHostDown:
			return p.handleHostDown(m)
		case rpcconf.KindProbe:
			return nil // epoch probe: the ack itself is the answer
		default:
			return fmt.Errorf("rf: unknown configuration message %q", m.Kind)
		}
	}
}

func (p *Platform) handleSwitchUp(m *rpcconf.Message) error {
	if !p.owns(m.DPID) {
		// Mastership fence: a stale reconciler (or one racing a rehome)
		// must not materialise a VM on the wrong replica. The error makes
		// the sender retry; the ownership transfer drops the item from the
		// non-owner's store.
		return fmt.Errorf("rf: switch-up %016x: not the master of this switch", m.DPID)
	}
	p.mu.Lock()
	if _, dup := p.vms[m.DPID]; dup {
		p.mu.Unlock()
		return nil // idempotent: re-announcements are harmless
	}
	p.mu.Unlock()

	vm, err := vnet.New(vnet.Config{
		DPID:      m.DPID,
		Ports:     m.Ports,
		RouterID:  p.routerID(m.DPID),
		Clock:     p.clk,
		BootDelay: p.cfg.BootDelay,
		Timers:    p.cfg.Timers,
		ASN:       m.ASN,
	})
	if err != nil {
		return fmt.Errorf("rf: creating VM for %016x: %w", m.DPID, err)
	}
	dpid := m.DPID
	vm.OnTransmit(func(port uint16, frame []byte) {
		_ = p.ctl.PacketOut(dpid, openflow.PortNone,
			[]openflow.Action{&openflow.ActionOutput{Port: port}}, frame)
	})
	vm.OnFIB(func(ev rib.Event) { p.onFIBEvent(dpid, ev) })
	vm.OnHostLearned(func(h vnet.HostLearned) { p.onHostLearned(dpid, h) })
	if cb := p.cfg.OnStatus; cb != nil {
		vm.OnReady(func() { cb(dpid, vnet.StateUp) })
		cb(dpid, vnet.StateBooting)
	}

	p.mu.Lock()
	p.vms[dpid] = vm
	p.asns[dpid] = m.ASN
	var ibgpPeers []*vnet.VM
	if m.ASN != 0 {
		// Full-mesh iBGP inside the AS: peer the new VM with every existing
		// same-AS VM on loopbacks (router IDs), both directions. Route
		// reflection is the road-mapped follow-on once meshes grow.
		for peerDPID, peerASN := range p.asns {
			if peerDPID != dpid && peerASN == m.ASN {
				ibgpPeers = append(ibgpPeers, p.vms[peerDPID])
			}
		}
	}
	if p.flows[dpid] == nil {
		p.flows[dpid] = make(map[netip.Prefix]*openflow.FlowMod)
	}
	p.mu.Unlock()
	rid := vm.Router().Config().RouterID
	for _, peer := range ibgpPeers {
		peerRID := peer.Router().Config().RouterID
		vm.Router().AddBGPNeighbor(peerRID, m.ASN)
		peer.Router().AddBGPNeighbor(rid, m.ASN)
	}
	return nil
}

func (p *Platform) handleSwitchDown(m *rpcconf.Message) error {
	p.teardownSwitch(m.DPID)
	return nil
}

// routerID derives a VM's router ID: dpid-keyed when RouterIDFor is set
// (sharded determinism), sequential otherwise.
func (p *Platform) routerID(dpid uint64) netip.Addr {
	if f := p.cfg.RouterIDFor; f != nil {
		return f(dpid)
	}
	return p.rids.Next()
}

// teardownSwitch removes every trace of a switch from this platform: its VM
// (destroyed), desired flows, address and endpoint indexes, and its seat in
// the AS's iBGP mesh. Shared by the RPC switch-down path and Release.
func (p *Platform) teardownSwitch(dpid uint64) {
	p.mu.Lock()
	vm, ok := p.vms[dpid]
	asn := p.asns[dpid]
	delete(p.vms, dpid)
	delete(p.asns, dpid)
	delete(p.flows, dpid)
	delete(p.pins, dpid)
	p.flowGen[dpid]++
	for a, o := range p.addrIndex {
		if o.dpid == dpid {
			delete(p.addrIndex, a)
		}
	}
	for o := range p.portAddr {
		if o.dpid == dpid {
			delete(p.portAddr, o)
		}
	}
	var ibgpPeers []*vnet.VM
	if ok && asn != 0 {
		for peerDPID, peerASN := range p.asns {
			if peerASN == asn {
				ibgpPeers = append(ibgpPeers, p.vms[peerDPID])
			}
		}
	}
	p.mu.Unlock()
	if ok {
		// Unpeer the departed VM from the AS's iBGP mesh.
		rid := vm.Router().Config().RouterID
		for _, peer := range ibgpPeers {
			peer.Router().RemoveBGPNeighbor(rid)
		}
		vm.Destroy()
		if cb := p.cfg.OnStatus; cb != nil {
			cb(dpid, vnet.StateDestroyed)
		}
	}
}

func (p *Platform) handleLinkUp(m *rpcconf.Message) error {
	aAddr, err := m.AAddrPrefix()
	if err != nil {
		return fmt.Errorf("rf: link-up aAddr: %w", err)
	}
	bAddr, err := m.BAddrPrefix()
	if err != nil {
		return fmt.Errorf("rf: link-up bAddr: %w", err)
	}
	ownA, ownB := p.owns(m.ADPID), p.owns(m.BDPID)
	if !ownA && !ownB {
		return fmt.Errorf("rf: link-up %016x-%016x: neither endpoint mastered by this replica",
			m.ADPID, m.BDPID)
	}
	p.mu.Lock()
	vmA, okA := p.vms[m.ADPID]
	vmB, okB := p.vms[m.BDPID]
	p.mu.Unlock()
	// Every mastered endpoint must have its VM (switch-up sorts first); an
	// endpoint mastered elsewhere is that replica's business.
	if (ownA && !okA) || (ownB && !okB) {
		return fmt.Errorf("rf: link-up %016x-%016x references unknown VM", m.ADPID, m.BDPID)
	}
	if m.AASN != 0 && m.BASN != 0 && m.AASN != m.BASN {
		// eBGP border link: OSPF stays inside each domain (passive
		// interfaces), and each VM gains the far end as an eBGP neighbor —
		// the multi-AS analogue of the paper's link configuration message.
		if ownA {
			if err := vmA.ConfigureBorderInterface(m.APort, aAddr, DefaultLinkCost); err != nil {
				return err
			}
		}
		if ownB {
			if err := vmB.ConfigureBorderInterface(m.BPort, bAddr, DefaultLinkCost); err != nil {
				return err
			}
		}
		if ownA {
			vmA.Router().AddBGPNeighbor(bAddr.Addr(), m.BASN)
		}
		if ownB {
			vmB.Router().AddBGPNeighbor(aAddr.Addr(), m.AASN)
		}
	} else {
		if ownA {
			if err := vmA.ConfigureInterface(m.APort, aAddr, DefaultLinkCost, p.cfg.Pool); err != nil {
				return err
			}
		}
		if ownB {
			if err := vmB.ConfigureInterface(m.BPort, bAddr, DefaultLinkCost, p.cfg.Pool); err != nil {
				return err
			}
		}
	}
	// Index BOTH endpoint addresses regardless of mastership: routeToFlow
	// resolves next hops that may live on a remote replica's switch, and
	// the teardown path unpeers eBGP using the far side's address.
	p.mu.Lock()
	p.addrIndex[aAddr.Addr()] = addrOwner{m.ADPID, m.APort}
	p.addrIndex[bAddr.Addr()] = addrOwner{m.BDPID, m.BPort}
	p.portAddr[addrOwner{m.ADPID, m.APort}] = aAddr
	p.portAddr[addrOwner{m.BDPID, m.BPort}] = bAddr
	p.mu.Unlock()
	return nil
}

func (p *Platform) handleLinkDown(m *rpcconf.Message) error {
	p.mu.Lock()
	vmA := p.vms[m.ADPID]
	vmB := p.vms[m.BDPID]
	aAddr, aOK := p.portAddr[addrOwner{m.ADPID, m.APort}]
	bAddr, bOK := p.portAddr[addrOwner{m.BDPID, m.BPort}]
	p.mu.Unlock()
	// Unpeer any eBGP session that ran over the link before the addresses
	// go away (no-op on intra-AS links and BGP-less VMs). The far side's
	// address comes from the platform's endpoint records, not its VM — on a
	// sharded replica the far VM may be mastered elsewhere.
	if vmB != nil && aOK {
		vmB.Router().RemoveBGPNeighbor(aAddr.Addr())
	}
	if vmA != nil && bOK {
		vmA.Router().RemoveBGPNeighbor(bAddr.Addr())
	}
	if vmA != nil {
		if addr, ok := vmA.InterfaceAddr(m.APort); ok {
			p.unindexAddr(addr.Addr(), m.ADPID, m.APort)
		}
		vmA.DeconfigureInterface(m.APort)
	}
	if vmB != nil {
		if addr, ok := vmB.InterfaceAddr(m.BPort); ok {
			p.unindexAddr(addr.Addr(), m.BDPID, m.BPort)
		}
		vmB.DeconfigureInterface(m.BPort)
	}
	p.mu.Lock()
	delete(p.portAddr, addrOwner{m.ADPID, m.APort})
	delete(p.portAddr, addrOwner{m.BDPID, m.BPort})
	p.mu.Unlock()
	return nil
}

// unindexAddr removes an address→interface mapping only when it still
// belongs to the interface being torn down. A teardown is reconciled
// asynchronously, so by the time it applies the subnet may have been
// recycled onto another link — whose index entry must survive.
func (p *Platform) unindexAddr(addr netip.Addr, dpid uint64, port uint16) {
	p.mu.Lock()
	if p.addrIndex[addr] == (addrOwner{dpid, port}) {
		delete(p.addrIndex, addr)
	}
	p.mu.Unlock()
}

func (p *Platform) handleHostUp(m *rpcconf.Message) error {
	gw, err := m.AAddrPrefix()
	if err != nil {
		return fmt.Errorf("rf: host-up gateway: %w", err)
	}
	if !p.owns(m.ADPID) {
		return fmt.Errorf("rf: host-up %016x: not the master of this switch", m.ADPID)
	}
	p.mu.Lock()
	vm, ok := p.vms[m.ADPID]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("rf: host-up references unknown VM %016x", m.ADPID)
	}
	// The host subnet itself becomes an OSPF network so the stub is
	// advertised to the rest of the domain.
	if err := vm.ConfigureInterface(m.APort, gw, DefaultLinkCost, gw.Masked()); err != nil {
		return err
	}
	p.mu.Lock()
	p.addrIndex[gw.Addr()] = addrOwner{m.ADPID, m.APort}
	p.portAddr[addrOwner{m.ADPID, m.APort}] = gw
	p.mu.Unlock()
	return nil
}

func (p *Platform) handleHostDown(m *rpcconf.Message) error {
	p.mu.Lock()
	vm, ok := p.vms[m.ADPID]
	p.mu.Unlock()
	if !ok {
		return nil
	}
	if addr, ok := vm.InterfaceAddr(m.APort); ok {
		p.unindexAddr(addr.Addr(), m.ADPID, m.APort)
	}
	vm.DeconfigureInterface(m.APort)
	p.mu.Lock()
	delete(p.portAddr, addrOwner{m.ADPID, m.APort})
	p.mu.Unlock()
	return nil
}

// onSwitchUp raises the miss send length so punted frames arrive whole, and
// replays the desired flow state after (re)connects. Sends are non-blocking
// (a congested connection must not wedge the controller); anything dropped
// is repaired by the flow-repair loop.
func (p *Platform) onSwitchUp(sc *ctlkit.SwitchConn) {
	// Raise the miss send length before anything else, even on the wipe
	// path: hellos punt whole at the 128-byte default, but multi-LSA
	// LSUpdates do not, and a truncated one-shot database dump at boot
	// wedges OSPF until the next adjacency event.
	if err := sc.TrySend(&openflow.SetConfig{MissSendLen: 0xffff}); err != nil {
		p.markDirty(sc.DPID())
	}
	p.mu.Lock()
	wipe := p.needsWipe[sc.DPID()]
	p.mu.Unlock()
	if wipe {
		// Freshly adopted switch: its table may hold the previous master's
		// flows, so the repair loop must delete-all before replaying. A
		// plain replay here would leave stale entries live.
		p.markDirty(sc.DPID())
		return
	}
	p.mu.Lock()
	pending := make([]*openflow.FlowMod, 0, len(p.flows[sc.DPID()]))
	for _, fm := range p.flows[sc.DPID()] {
		cp := *fm
		pending = append(pending, &cp)
	}
	pending = append(pending, p.pinModsLocked(sc.DPID())...)
	p.mu.Unlock()
	for _, fm := range pending {
		fm.SetXID(0)
		if err := sc.TrySend(fm); err != nil {
			p.markDirty(sc.DPID())
		}
	}
	// Re-push the monitoring program: a (re)connected switch has no stream
	// state, and its counters only flow once it holds the current rules.
	if tm := p.telemetryMod(sc.DPID()); tm != nil {
		if err := sc.TrySend(tm); err != nil {
			p.markDirty(sc.DPID())
		}
	}
}

// markDirty schedules a flow-table resync for dpid.
func (p *Platform) markDirty(dpid uint64) {
	p.mu.Lock()
	p.dirty[dpid] = true
	p.mu.Unlock()
}

// flowRepairLoop is the level-triggered safety net under the non-blocking
// switch sends: whenever a FlowMod or SetConfig was dropped on a congested
// connection, the switch is marked dirty and periodically resynced from
// desired state (delete-all + full replay) until a resync goes through
// cleanly. Disconnected switches are skipped — the reconnect replay in
// onSwitchUp covers them.
func (p *Platform) flowRepairLoop() {
	defer p.wg.Done()
	tick := p.clk.NewTicker(flowRepairInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C():
		}
		p.mu.Lock()
		dirty := make([]uint64, 0, len(p.dirty))
		for dpid := range p.dirty {
			dirty = append(dirty, dpid)
			delete(p.dirty, dpid)
		}
		p.mu.Unlock()
		for _, dpid := range dirty {
			if !p.resyncFlows(dpid) {
				p.markDirty(dpid) // try again next tick
			}
		}
	}
}

// resyncFlows rewrites one switch's flow table from desired state. It
// reports false when any send was dropped (the caller re-marks the switch).
func (p *Platform) resyncFlows(dpid uint64) bool {
	sc, ok := p.ctl.Switch(dpid)
	if !ok {
		// A pending adoption wipe must survive until the switch connects;
		// an ordinary drop is covered by the reconnect replay.
		p.mu.Lock()
		wipe := p.needsWipe[dpid]
		p.mu.Unlock()
		return !wipe
	}
	if err := sc.TrySend(&openflow.SetConfig{MissSendLen: 0xffff}); err != nil {
		return false
	}
	// Delete everything, then replay desired state: stale entries from
	// dropped removeFlow deletions (or a previous master) cannot survive a
	// resync.
	if err := sc.TrySend(&openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FlowModDelete,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}); err != nil {
		return false
	}
	p.mu.Lock()
	delete(p.needsWipe, dpid) // the wipe reached the switch
	gen := p.flowGen[dpid]
	pending := make([]*openflow.FlowMod, 0, len(p.flows[dpid]))
	for _, fm := range p.flows[dpid] {
		cp := *fm
		pending = append(pending, &cp)
	}
	pending = append(pending, p.pinModsLocked(dpid)...)
	p.mu.Unlock()
	ok = true
	for _, fm := range pending {
		fm.SetXID(0)
		if err := sc.TrySend(fm); err != nil {
			ok = false
		}
	}
	// The monitoring program rides the same repair discipline as flows: a
	// TELEMETRY_MOD dropped anywhere (initial push, reconnect replay) is
	// re-pushed here until one lands.
	if tm := p.telemetryMod(dpid); tm != nil {
		if err := sc.TrySend(tm); err != nil {
			ok = false
		}
	}
	// A desired-state mutation racing this resync may have interleaved its
	// own send with our replay (e.g. a withdrawal deleted on the switch,
	// then resurrected by our stale snapshot). Declare the resync dirty so
	// the next tick replays from the newer state.
	p.mu.Lock()
	if p.flowGen[dpid] != gen {
		ok = false
	}
	p.mu.Unlock()
	return ok
}

// onPacketIn punts non-LLDP frames into the mirrored VM interface.
func (p *Platform) onPacketIn(sc *ctlkit.SwitchConn, pi *openflow.PacketIn) {
	f, err := pkt.DecodeFrame(pi.Data)
	if err != nil || f.Type == pkt.EtherTypeLLDP {
		return
	}
	vm, ok := p.VM(sc.DPID())
	if !ok {
		return
	}
	vm.Inject(pi.InPort, pi.Data)
}

// portOfIface parses "eth<N>".
func portOfIface(name string) (uint16, bool) {
	num, ok := strings.CutPrefix(name, "eth")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(num, 10, 16)
	if err != nil {
		return 0, false
	}
	return uint16(v), true
}

// onFIBEvent translates VM route changes into switch flow entries.
func (p *Platform) onFIBEvent(dpid uint64, ev rib.Event) {
	rt := ev.Route
	if rt.Source == rib.SourceConnected {
		// Connected subnets stay on the punt path until hosts are learned.
		return
	}
	switch ev.Type {
	case rib.RouteAdded, rib.RouteReplaced:
		fm, ok := p.routeToFlow(dpid, rt, ev.Paths)
		if !ok {
			return
		}
		p.installFlow(dpid, rt.Prefix, fm)
	case rib.RouteRemoved:
		p.removeFlow(dpid, rt.Prefix)
	}
}

// routeToFlow builds the flow entry for one VM route set. paths is the full
// equal-cost set (primary first); when empty the single route rt stands
// alone. One viable next hop yields the classic rewrite+output triple —
// byte-identical to the pre-ECMP install — while several yield a multipath
// action whose bucket the switch selects per microflow key hash, so equal-
// cost alternates share load without ever reordering one flow.
func (p *Platform) routeToFlow(dpid uint64, rt rib.Route, paths []rib.Route) (*openflow.FlowMod, bool) {
	if len(paths) == 0 {
		paths = []rib.Route{rt}
	}
	var buckets []openflow.MultipathBucket
	p.mu.Lock()
	for _, path := range paths {
		port, ok := portOfIface(path.Iface)
		if !ok || !path.NextHop.IsValid() {
			continue
		}
		owner, known := p.addrIndex[path.NextHop]
		if !known {
			continue // next hop is not a VM interface we assigned
		}
		buckets = append(buckets, openflow.MultipathBucket{
			DlSrc: vnet.MAC(dpid, port),
			DlDst: vnet.MAC(owner.dpid, owner.port),
			Port:  port,
		})
	}
	p.mu.Unlock()
	if len(buckets) == 0 {
		return nil, false
	}
	match := openflow.MatchAll()
	match.Wildcards &^= openflow.WildcardDlType
	match.DlType = uint16(pkt.EtherTypeIPv4)
	match.SetNwDstPrefix(rt.Prefix)
	fm := &openflow.FlowMod{
		Match:    match,
		Command:  openflow.FlowModAdd,
		Priority: uint16(100 + rt.Prefix.Bits()),
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}
	if len(buckets) == 1 {
		fm.Actions = []openflow.Action{
			&openflow.ActionSetDlSrc{Addr: buckets[0].DlSrc},
			&openflow.ActionSetDlDst{Addr: buckets[0].DlDst},
			&openflow.ActionOutput{Port: buckets[0].Port},
		}
	} else {
		fm.Actions = []openflow.Action{&openflow.ActionMultipath{Buckets: buckets}}
	}
	return fm, true
}

func (p *Platform) installFlow(dpid uint64, prefix netip.Prefix, fm *openflow.FlowMod) {
	p.mu.Lock()
	if p.flows[dpid] == nil {
		p.flows[dpid] = make(map[netip.Prefix]*openflow.FlowMod)
	}
	p.flows[dpid][prefix] = fm
	p.flowGen[dpid]++
	p.mu.Unlock()
	if sc, ok := p.ctl.Switch(dpid); ok {
		// TrySend: the RPC apply path and FIB hooks must never block on a
		// stalled switch; a drop marks the switch for flow repair.
		cp := *fm
		if err := sc.TrySend(&cp); err != nil {
			p.markDirty(dpid)
		}
	}
}

func (p *Platform) removeFlow(dpid uint64, prefix netip.Prefix) {
	p.mu.Lock()
	fm := p.flows[dpid][prefix]
	delete(p.flows[dpid], prefix)
	p.flowGen[dpid]++
	p.mu.Unlock()
	if fm == nil {
		return
	}
	if sc, ok := p.ctl.Switch(dpid); ok {
		del := &openflow.FlowMod{
			Match:    fm.Match,
			Command:  openflow.FlowModDeleteStrict,
			Priority: fm.Priority,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
		}
		if err := sc.TrySend(del); err != nil {
			p.markDirty(dpid)
		}
	}
}

// onHostLearned installs the /32 fast-path flow toward a directly attached
// host.
func (p *Platform) onHostLearned(dpid uint64, h vnet.HostLearned) {
	match := openflow.MatchAll()
	match.Wildcards &^= openflow.WildcardDlType
	match.DlType = uint16(pkt.EtherTypeIPv4)
	prefix := netip.PrefixFrom(h.IP, 32)
	match.SetNwDstPrefix(prefix)
	fm := &openflow.FlowMod{
		Match:    match,
		Command:  openflow.FlowModAdd,
		Priority: hostFlowPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionSetDlSrc{Addr: vnet.MAC(dpid, h.Port)},
			&openflow.ActionSetDlDst{Addr: h.MAC},
			&openflow.ActionOutput{Port: h.Port},
		},
	}
	p.installFlow(dpid, prefix, fm)
}

// FlowCount reports the desired flow count for a switch (tests, GUI).
func (p *Platform) FlowCount(dpid uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.flows[dpid])
}

// DesiredFlows snapshots the desired flow entries for a switch — the state
// the platform is driving the physical flow table toward. Invariant checkers
// diff this against the switch's installed table. Actions are deep-copied so
// holders may inspect them while FIB events keep mutating the live set.
func (p *Platform) DesiredFlows(dpid uint64) []*openflow.FlowMod {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*openflow.FlowMod, 0, len(p.flows[dpid])+len(p.pins[dpid]))
	for _, fm := range p.flows[dpid] {
		cp := *fm
		cp.Actions = openflow.CloneActions(fm.Actions)
		out = append(out, &cp)
	}
	out = append(out, p.pinModsLocked(dpid)...)
	return out
}

// Callbacks exposes the platform's controller event handlers so a merged
// deployment (no FlowVisor) can host them on a shared controller runtime.
func (p *Platform) Callbacks() ctlkit.Callbacks {
	return ctlkit.Callbacks{SwitchUp: p.onSwitchUp, PacketIn: p.onPacketIn, Telemetry: p.onTelemetry}
}

// UseController substitutes the controller runtime the platform sends
// through; used by the merged-controller ablation. Call before any switch
// connects.
func (p *Platform) UseController(c *ctlkit.Controller) { p.ctl = c }

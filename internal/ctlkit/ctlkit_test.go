package ctlkit

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// startSwitch wires a fresh software switch (with nPorts loopback-ish ports)
// to the controller's listener.
func startSwitch(t *testing.T, dpid uint64, nPorts int, l *MemListener) (*ofswitch.Switch, []*netemu.Endpoint) {
	t.Helper()
	n := netemu.NewNetwork(clock.System())
	t.Cleanup(n.Close)
	sw := ofswitch.New(ofswitch.Config{DPID: dpid})
	far := make([]*netemu.Endpoint, 0, nPorts)
	for i := 1; i <= nPorts; i++ {
		a, b := n.NewCable(netemu.CableOpts{
			NameA: "sw", NameB: "far",
			MACA: pkt.LocalMAC(dpid<<8 | uint64(i)), MACB: pkt.LocalMAC(0xFF00 | uint64(i))})
		if err := sw.AttachPort(uint16(i), a); err != nil {
			t.Fatal(err)
		}
		far = append(far, b)
	}
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Start(conn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Stop)
	return sw, far
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMemListenerDialAccept(t *testing.T) {
	l := NewMemListener("ctl")
	defer l.Close()
	if l.Addr() != "mem://ctl" {
		t.Fatalf("addr = %s", l.Addr())
	}
	done := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
		} else {
			c.Close()
		}
		close(done)
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
}

func TestMemListenerClose(t *testing.T) {
	l := NewMemListener("x")
	l.Close()
	if _, err := l.Accept(); err != ErrListenerClosed {
		t.Fatalf("accept after close: %v", err)
	}
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial after close succeeded")
	}
	l.Close() // idempotent
}

func TestHandshakeRegistersSwitch(t *testing.T) {
	up := make(chan uint64, 1)
	ctl := New("test", nil, Callbacks{
		SwitchUp: func(sw *SwitchConn) { up <- sw.DPID() },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()

	startSwitch(t, 0xBEEF, 3, l)
	select {
	case dpid := <-up:
		if dpid != 0xBEEF {
			t.Fatalf("dpid = %x", dpid)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("switch never came up")
	}
	sc, ok := ctl.Switch(0xBEEF)
	if !ok {
		t.Fatal("switch not registered")
	}
	if len(sc.Features().Ports) != 3 {
		t.Fatalf("ports = %d", len(sc.Features().Ports))
	}
	if ctl.NumSwitches() != 1 || len(ctl.Switches()) != 1 {
		t.Fatal("switch accounting wrong")
	}
}

func TestSwitchDownCallback(t *testing.T) {
	down := make(chan uint64, 1)
	ctl := New("test", nil, Callbacks{
		SwitchDown: func(sw *SwitchConn) { down <- sw.DPID() },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()

	sw, _ := startSwitch(t, 0x11, 1, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	sw.Stop()
	select {
	case dpid := <-down:
		if dpid != 0x11 {
			t.Fatalf("dpid = %x", dpid)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no down callback")
	}
	waitFor(t, "deregistration", func() bool { return ctl.NumSwitches() == 0 })
}

func TestBarrierRoundTrip(t *testing.T) {
	ctl := New("test", nil, Callbacks{})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	startSwitch(t, 7, 1, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	sc, _ := ctl.Switch(7)
	if err := sc.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestStats(t *testing.T) {
	ctl := New("test", nil, Callbacks{})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	startSwitch(t, 8, 2, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	sc, _ := ctl.Switch(8)
	rep, err := sc.Request(&openflow.StatsRequest{StatsType: openflow.StatsDesc})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := rep.(*openflow.StatsReply)
	if !ok || sr.Desc == nil {
		t.Fatalf("reply = %#v", rep)
	}
}

func TestPacketInCallbackAndPacketOut(t *testing.T) {
	pins := make(chan *openflow.PacketIn, 8)
	ctl := New("test", nil, Callbacks{
		PacketIn: func(sw *SwitchConn, pi *openflow.PacketIn) { pins <- pi },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	_, far := startSwitch(t, 9, 2, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })

	rx := make(chan []byte, 1)
	far[1].SetReceiver(func(f []byte) { rx <- append([]byte(nil), f...) })

	// Inject a frame on far side of port 1: no flows → packet-in.
	f := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: pkt.LocalMAC(0xF1),
		Type: pkt.EtherTypeARP,
		Payload: pkt.NewARPRequest(pkt.LocalMAC(0xF1),
			addr("10.0.0.1"), addr("10.0.0.2")).Marshal()}
	far[0].Send(f.Marshal())
	var pi *openflow.PacketIn
	select {
	case pi = <-pins:
	case <-time.After(3 * time.Second):
		t.Fatal("no packet-in")
	}
	if pi.InPort != 1 {
		t.Fatalf("in_port = %d", pi.InPort)
	}
	// Answer with a packet-out to port 2.
	if err := ctl.PacketOut(9, pi.InPort,
		[]openflow.Action{&openflow.ActionOutput{Port: 2}}, f.Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rx:
	case <-time.After(3 * time.Second):
		t.Fatal("packet-out never reached port 2")
	}
}

func TestFlowModAddHelper(t *testing.T) {
	ctl := New("test", nil, Callbacks{})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	sw, _ := startSwitch(t, 10, 2, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Priority: 4,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	if err := ctl.FlowModAdd(10, fm); err != nil {
		t.Fatal(err)
	}
	sc, _ := ctl.Switch(10)
	if err := sc.Barrier(); err != nil {
		t.Fatal(err)
	}
	if sw.NumFlows() != 1 {
		t.Fatalf("flows = %d", sw.NumFlows())
	}
	if err := ctl.FlowModAdd(0xDEAD, fm); err == nil {
		t.Fatal("flow-mod to unknown dpid succeeded")
	}
}

func TestPortStatusCallback(t *testing.T) {
	statuses := make(chan *openflow.PortStatus, 4)
	ctl := New("test", nil, Callbacks{
		PortStatus: func(sw *SwitchConn, ps *openflow.PortStatus) { statuses <- ps },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	_, far := startSwitch(t, 11, 1, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	far[0].SetLinkUp(false)
	select {
	case ps := <-statuses:
		if ps.Desc.State&openflow.PortStateDown == 0 {
			t.Fatal("port not reported down")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no port status")
	}
}

func TestErrorCallback(t *testing.T) {
	errs := make(chan *openflow.ErrorMsg, 1)
	ctl := New("test", nil, Callbacks{
		Error: func(sw *SwitchConn, em *openflow.ErrorMsg) { errs <- em },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	startSwitch(t, 12, 1, l)
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	sc, _ := ctl.Switch(12)
	// Vendor messages draw a bad-request error from our switch. Send with an
	// explicit xid not registered as pending so it reaches the callback.
	v := &openflow.Vendor{VendorID: 1}
	v.SetXID(0xABCD)
	if err := sc.Send(v); err != nil {
		t.Fatal(err)
	}
	select {
	case em := <-errs:
		if em.ErrType != openflow.ErrTypeBadRequest {
			t.Fatalf("error = %+v", em)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no error callback")
	}
}

func TestKeepaliveClosesDeadSwitch(t *testing.T) {
	// A raw connection that never answers echoes must be dropped after 3
	// missed keepalives. Short intervals keep the test quick.
	ctl := New("test", nil, Callbacks{},
		WithEchoInterval(30*time.Millisecond),
		WithRequestTimeout(20*time.Millisecond))
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	// Play just enough of the switch role: hello + features reply, then mute.
	go func() {
		_ = openflow.WriteMessage(conn, &openflow.Hello{})
		for {
			m, err := openflow.ReadMessage(conn)
			if err != nil {
				return
			}
			if fr, ok := m.(*openflow.FeaturesRequest); ok {
				rep := &openflow.FeaturesReply{DatapathID: 0x5117}
				rep.SetXID(fr.XID())
				_ = openflow.WriteMessage(conn, rep)
			}
			// Echo requests deliberately ignored.
		}
	}()
	waitFor(t, "switch up", func() bool { return ctl.NumSwitches() == 1 })
	waitFor(t, "dead switch dropped", func() bool { return ctl.NumSwitches() == 0 })
}

func TestDuplicateDPIDReplacesOldConnection(t *testing.T) {
	var downs atomic.Int32
	ctl := New("test", nil, Callbacks{
		SwitchDown: func(*SwitchConn) { downs.Add(1) },
	})
	l := NewMemListener("ctl")
	defer l.Close()
	go ctl.Serve(l)
	defer ctl.Stop()
	startSwitch(t, 0x77, 1, l)
	waitFor(t, "first up", func() bool { return ctl.NumSwitches() == 1 })
	startSwitch(t, 0x77, 1, l) // same dpid reconnects
	waitFor(t, "old conn replaced", func() bool { return downs.Load() >= 1 })
	if ctl.NumSwitches() != 1 {
		t.Fatalf("switches = %d", ctl.NumSwitches())
	}
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

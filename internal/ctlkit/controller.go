package ctlkit

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/openflow"
)

// Defaults for connection supervision.
const (
	DefaultEchoInterval   = 5 * time.Second
	DefaultRequestTimeout = 10 * time.Second
	writeQueueDepth       = 1024
)

// Callbacks are the controller application's event surface. All callbacks
// run on the owning switch connection's reader goroutine: a blocking
// callback stalls only that switch.
type Callbacks struct {
	SwitchUp    func(sw *SwitchConn)
	SwitchDown  func(sw *SwitchConn)
	PacketIn    func(sw *SwitchConn, pi *openflow.PacketIn)
	PortStatus  func(sw *SwitchConn, ps *openflow.PortStatus)
	FlowRemoved func(sw *SwitchConn, fr *openflow.FlowRemoved)
	Error       func(sw *SwitchConn, em *openflow.ErrorMsg)
	// Telemetry receives the switch's streaming counter exports
	// (TELEMETRY_EXPORT). The handler is expected to answer with a
	// TelemetryAck so the switch can advance its delta baseline.
	Telemetry func(sw *SwitchConn, ex *openflow.TelemetryExport)
}

// Controller manages switch connections for a controller application.
type Controller struct {
	name string
	clk  clock.Clock
	cb   Callbacks

	echoInterval   time.Duration
	requestTimeout time.Duration

	mu       sync.RWMutex
	switches map[uint64]*SwitchConn
	stopped  bool

	wg sync.WaitGroup
}

// Option tweaks controller behaviour.
type Option func(*Controller)

// WithEchoInterval overrides the keepalive period (0 disables keepalive).
func WithEchoInterval(d time.Duration) Option {
	return func(c *Controller) { c.echoInterval = d }
}

// WithRequestTimeout overrides the synchronous request timeout.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Controller) { c.requestTimeout = d }
}

// New creates a controller runtime. Callbacks may be partially populated.
func New(name string, clk clock.Clock, cb Callbacks, opts ...Option) *Controller {
	if clk == nil {
		clk = clock.System()
	}
	c := &Controller{
		name:           name,
		clk:            clk,
		cb:             cb,
		echoInterval:   DefaultEchoInterval,
		requestTimeout: DefaultRequestTimeout,
		switches:       make(map[uint64]*SwitchConn),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the controller's name.
func (c *Controller) Name() string { return c.name }

// Serve accepts and handles switch connections until the listener closes.
// It blocks; run it in a goroutine.
func (c *Controller) Serve(l Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// Stop disconnects all switches and waits for their handlers.
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	conns := make([]*SwitchConn, 0, len(c.switches))
	for _, sc := range c.switches {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		sc.Close()
	}
	c.wg.Wait()
}

// Switch returns the connection for dpid, if connected.
func (c *Controller) Switch(dpid uint64) (*SwitchConn, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc, ok := c.switches[dpid]
	return sc, ok
}

// Switches returns all connected switches.
func (c *Controller) Switches() []*SwitchConn {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*SwitchConn, 0, len(c.switches))
	for _, sc := range c.switches {
		out = append(out, sc)
	}
	return out
}

// NumSwitches returns the number of connected switches.
func (c *Controller) NumSwitches() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.switches)
}

// handleConn performs the handshake and runs the dispatch loop.
func (c *Controller) handleConn(conn net.Conn) {
	sc := &SwitchConn{
		ctl:     c,
		conn:    conn,
		dec:     openflow.NewDecoder(conn),
		out:     make(chan openflow.Message, writeQueueDepth),
		pending: make(map[uint32]chan openflow.Message),
		closed:  make(chan struct{}),
	}
	go sc.writeLoop()
	defer sc.Close()

	if err := sc.handshake(); err != nil {
		return
	}

	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if old, dup := c.switches[sc.dpid]; dup {
		old.Close()
	}
	c.switches[sc.dpid] = sc
	c.mu.Unlock()

	if c.cb.SwitchUp != nil {
		c.cb.SwitchUp(sc)
	}

	if c.echoInterval > 0 {
		sc.keepaliveWG.Add(1)
		go sc.keepaliveLoop(c.echoInterval)
	}

	sc.readLoop()

	c.mu.Lock()
	if c.switches[sc.dpid] == sc {
		delete(c.switches, sc.dpid)
	}
	c.mu.Unlock()
	if c.cb.SwitchDown != nil {
		c.cb.SwitchDown(sc)
	}
}

// SwitchConn is one connected datapath.
type SwitchConn struct {
	ctl      *Controller
	conn     net.Conn
	dec      *openflow.Decoder // reader-goroutine only; reuses its frame buffer
	dpid     uint64
	features openflow.FeaturesReply

	out     chan openflow.Message
	xid     atomic.Uint32
	pendMu  sync.Mutex
	pending map[uint32]chan openflow.Message

	closeOnce   sync.Once
	closed      chan struct{}
	keepaliveWG sync.WaitGroup
}

// DPID returns the datapath ID learned in the handshake.
func (sc *SwitchConn) DPID() uint64 { return sc.dpid }

// Features returns the features reply from the handshake.
func (sc *SwitchConn) Features() openflow.FeaturesReply { return sc.features }

// Controller returns the owning controller runtime.
func (sc *SwitchConn) Controller() *Controller { return sc.ctl }

// Close tears the connection down.
func (sc *SwitchConn) Close() {
	sc.closeOnce.Do(func() {
		close(sc.closed)
		sc.conn.Close()
	})
}

// Done is closed when the connection is torn down.
func (sc *SwitchConn) Done() <-chan struct{} { return sc.closed }

// writeLoop batches queued messages into single writes; flow-mod bursts from
// the RF-controller coalesce here instead of costing one syscall-equivalent
// write each.
func (sc *SwitchConn) writeLoop() {
	if err := openflow.PumpBatched(sc.conn, sc.out, sc.closed); err != nil {
		sc.Close()
	}
}

// nextXID returns a fresh nonzero transaction ID.
func (sc *SwitchConn) nextXID() uint32 {
	for {
		if x := sc.xid.Add(1); x != 0 {
			return x
		}
	}
}

// Send enqueues a message, assigning a transaction ID if it has none.
func (sc *SwitchConn) Send(m openflow.Message) error {
	if m.XID() == 0 {
		m.SetXID(sc.nextXID())
	}
	select {
	case sc.out <- m:
		return nil
	case <-sc.closed:
		return fmt.Errorf("ctlkit: switch %016x disconnected", sc.dpid)
	}
}

// ErrSendQueueFull reports a TrySend against a full outbound queue.
var ErrSendQueueFull = errors.New("ctlkit: switch send queue full")

// TrySend enqueues a message without ever blocking: a full queue (stalled
// switch or proxy) returns ErrSendQueueFull instead of wedging the caller.
// Control applications whose state is level-triggered (flow replay on
// reconnect, periodic probes, routing protocol timers) must use this so a
// single stuck switch cannot deadlock an apply path.
func (sc *SwitchConn) TrySend(m openflow.Message) error {
	if m.XID() == 0 {
		m.SetXID(sc.nextXID())
	}
	select {
	case sc.out <- m:
		return nil
	case <-sc.closed:
		return fmt.Errorf("ctlkit: switch %016x disconnected", sc.dpid)
	default:
		return fmt.Errorf("%w: %016x", ErrSendQueueFull, sc.dpid)
	}
}

// Request sends m and waits for the reply bearing the same transaction ID.
func (sc *SwitchConn) Request(m openflow.Message) (openflow.Message, error) {
	if m.XID() == 0 {
		m.SetXID(sc.nextXID())
	}
	ch := make(chan openflow.Message, 1)
	sc.pendMu.Lock()
	sc.pending[m.XID()] = ch
	sc.pendMu.Unlock()
	defer func() {
		sc.pendMu.Lock()
		delete(sc.pending, m.XID())
		sc.pendMu.Unlock()
	}()
	if err := sc.Send(m); err != nil {
		return nil, err
	}
	select {
	case rep := <-ch:
		if em, isErr := rep.(*openflow.ErrorMsg); isErr {
			return rep, em
		}
		return rep, nil
	case <-sc.ctl.clk.After(sc.ctl.requestTimeout):
		return nil, fmt.Errorf("ctlkit: request %v to %016x timed out", m.MsgType(), sc.dpid)
	case <-sc.closed:
		return nil, fmt.Errorf("ctlkit: switch %016x disconnected", sc.dpid)
	}
}

// Barrier performs a barrier round trip.
func (sc *SwitchConn) Barrier() error {
	rep, err := sc.Request(&openflow.BarrierRequest{})
	if err != nil {
		return err
	}
	if _, ok := rep.(*openflow.BarrierReply); !ok {
		return fmt.Errorf("ctlkit: barrier answered with %v", rep.MsgType())
	}
	return nil
}

// handshake: send HELLO + FEATURES_REQUEST, wait for FEATURES_REPLY
// (tolerating the switch's HELLO and interleaved messages). Writes go
// through the writer goroutine so a peer that also writes first — as every
// OpenFlow switch does — cannot deadlock a synchronous transport.
func (sc *SwitchConn) handshake() error {
	if err := sc.Send(&openflow.Hello{}); err != nil {
		return err
	}
	freq := &openflow.FeaturesRequest{}
	freq.SetXID(sc.nextXID())
	if err := sc.Send(freq); err != nil {
		return err
	}
	for {
		m, err := sc.dec.Decode()
		if err != nil {
			return err
		}
		switch msg := m.(type) {
		case *openflow.Hello:
			// fine, either order
		case *openflow.FeaturesReply:
			sc.dpid = msg.DatapathID
			sc.features = *msg
			return nil
		case *openflow.ErrorMsg:
			return fmt.Errorf("ctlkit: handshake error: %v", msg)
		case *openflow.EchoRequest:
			rep := &openflow.EchoReply{Data: msg.Data}
			rep.SetXID(msg.XID())
			if err := sc.Send(rep); err != nil {
				return err
			}
		default:
			// Pre-handshake noise is ignored.
		}
	}
}

func (sc *SwitchConn) readLoop() {
	for {
		m, err := sc.dec.Decode()
		if err != nil {
			sc.Close()
			return
		}
		sc.dispatch(m)
	}
}

func (sc *SwitchConn) dispatch(m openflow.Message) {
	// Request/reply rendezvous first.
	if x := m.XID(); x != 0 {
		sc.pendMu.Lock()
		ch := sc.pending[x]
		sc.pendMu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
			return
		}
	}
	cb := sc.ctl.cb
	switch msg := m.(type) {
	case *openflow.EchoRequest:
		rep := &openflow.EchoReply{Data: msg.Data}
		rep.SetXID(msg.XID())
		_ = sc.Send(rep)
	case *openflow.PacketIn:
		if cb.PacketIn != nil {
			cb.PacketIn(sc, msg)
		}
	case *openflow.PortStatus:
		if cb.PortStatus != nil {
			cb.PortStatus(sc, msg)
		}
	case *openflow.FlowRemoved:
		if cb.FlowRemoved != nil {
			cb.FlowRemoved(sc, msg)
		}
	case *openflow.ErrorMsg:
		if cb.Error != nil {
			cb.Error(sc, msg)
		}
	case *openflow.TelemetryExport:
		if cb.Telemetry != nil {
			cb.Telemetry(sc, msg)
		}
	default:
		// Unsolicited replies and unknown types are dropped, per spec
		// guidance to be liberal in what we accept.
	}
}

func (sc *SwitchConn) keepaliveLoop(interval time.Duration) {
	defer sc.keepaliveWG.Done()
	tick := sc.ctl.clk.NewTicker(interval)
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-tick.C():
			req := &openflow.EchoRequest{Data: []byte(sc.ctl.name)}
			if _, err := sc.Request(req); err != nil {
				misses++
				if misses >= 3 {
					sc.Close()
					return
				}
				continue
			}
			misses = 0
		case <-sc.closed:
			return
		}
	}
}

// ErrNotConnected reports a helper called for an unconnected dpid.
var ErrNotConnected = errors.New("ctlkit: switch not connected")

// FlowModAdd is a convenience for installing a flow on a dpid.
func (c *Controller) FlowModAdd(dpid uint64, fm *openflow.FlowMod) error {
	sc, ok := c.Switch(dpid)
	if !ok {
		return fmt.Errorf("%w: %016x", ErrNotConnected, dpid)
	}
	fm.Command = openflow.FlowModAdd
	if fm.BufferID == 0 {
		fm.BufferID = openflow.NoBuffer
	}
	if fm.OutPort == 0 {
		fm.OutPort = openflow.PortNone
	}
	return sc.Send(fm)
}

// PacketOut injects a frame at a dpid.
func (c *Controller) PacketOut(dpid uint64, inPort uint16, actions []openflow.Action, data []byte) error {
	sc, ok := c.Switch(dpid)
	if !ok {
		return fmt.Errorf("%w: %016x", ErrNotConnected, dpid)
	}
	// Blocking send: packet-outs carry protocol traffic (OSPF hellos, ARP)
	// whose loss triggers expensive reconvergence; blocking here is the
	// backpressure that paces producers under congestion.
	return sc.Send(&openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   inPort,
		Actions:  actions,
		Data:     data,
	})
}

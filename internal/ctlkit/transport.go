// Package ctlkit is the controller framework both controllers in the paper's
// architecture are built on (the topology controller and the RF-controller),
// and the substrate FlowVisor reuses for its listening side. It provides:
//
//   - a transport abstraction with an in-memory implementation (net.Pipe
//     cables, the default for emulation) so deployments need no real TCP
//     ports, while remaining compatible with net.Listener;
//   - per-switch connection handling: OpenFlow 1.0 handshake (hello,
//     features), echo keepalive, transaction-ID management and synchronous
//     request/reply helpers;
//   - an event callback surface (switch up/down, packet-in, port-status,
//     flow-removed, error) that controller applications build on.
package ctlkit

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrListenerClosed is returned by Accept after Close.
var ErrListenerClosed = errors.New("ctlkit: listener closed")

// Listener accepts switch connections. *MemListener implements it in-process;
// adaptTCP wraps a net.Listener.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
	Addr() string
}

// MemListener is an in-process Listener. Dial returns the client half of a
// net.Pipe whose server half is handed to Accept — the emulation's
// replacement for TCP between switches, FlowVisor and controllers.
type MemListener struct {
	name string
	ch   chan net.Conn
	once sync.Once
	done chan struct{}
}

// NewMemListener creates a listener with the given display address.
func NewMemListener(name string) *MemListener {
	return &MemListener{name: name, ch: make(chan net.Conn, 16), done: make(chan struct{})}
}

// Accept returns the next dialed connection.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Dial connects to the listener, returning the client side.
func (l *MemListener) Dial() (net.Conn, error) {
	select {
	case <-l.done:
		return nil, fmt.Errorf("ctlkit: dial %s: %w", l.name, ErrListenerClosed)
	default:
	}
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("ctlkit: dial %s: %w", l.name, ErrListenerClosed)
	}
}

// Close stops the listener; blocked Accepts return ErrListenerClosed.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr returns the display address.
func (l *MemListener) Addr() string { return "mem://" + l.name }

// NetListener adapts a net.Listener (e.g. TCP) to the Listener interface.
type NetListener struct{ L net.Listener }

// Accept implements Listener.
func (n NetListener) Accept() (net.Conn, error) { return n.L.Accept() }

// Close implements Listener.
func (n NetListener) Close() error { return n.L.Close() }

// Addr implements Listener.
func (n NetListener) Addr() string { return n.L.Addr().String() }

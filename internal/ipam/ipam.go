// Package ipam allocates the IP addressing the paper's topology controller
// derives from its one piece of administrator input: "a range of IP
// addresses for the virtual environment". Each discovered link gets its own
// point-to-point subnet (a /30 by default) whose two usable addresses are
// assigned to the VM interfaces at either end; each VM also gets a unique
// router ID. Allocation is deterministic, released subnets are reused, and
// exhaustion is an explicit error.
package ipam

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Errors.
var (
	ErrExhausted  = errors.New("ipam: address pool exhausted")
	ErrNotAlloced = errors.New("ipam: subnet not allocated from this pool")
)

// Allocator hands out fixed-size subnets from one pool.
type Allocator struct {
	pool       netip.Prefix
	subnetBits int

	mu    sync.Mutex
	next  uint64          // next fresh block index
	freed []uint64        // released block indexes, reused LIFO
	live  map[uint64]bool // currently allocated
	total uint64          // number of blocks in the pool
}

// New creates an allocator carving subnets of subnetBits length (e.g. 30)
// out of pool (e.g. 172.16.0.0/16).
func New(pool netip.Prefix, subnetBits int) (*Allocator, error) {
	if !pool.Addr().Is4() {
		return nil, fmt.Errorf("ipam: pool %v is not IPv4", pool)
	}
	if subnetBits < pool.Bits() || subnetBits > 30 {
		return nil, fmt.Errorf("ipam: subnet /%d does not fit pool %v (must be %d..30)",
			subnetBits, pool, pool.Bits())
	}
	return &Allocator{
		pool:       pool.Masked(),
		subnetBits: subnetBits,
		live:       make(map[uint64]bool),
		total:      uint64(1) << uint(subnetBits-pool.Bits()),
	}, nil
}

// Pool returns the configured pool.
func (a *Allocator) Pool() netip.Prefix { return a.pool }

// SubnetBits returns the configured subnet size.
func (a *Allocator) SubnetBits() int { return a.subnetBits }

// Free returns how many subnets remain allocatable.
func (a *Allocator) Free() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - uint64(len(a.live))
}

// Allocated returns the live subnets in ascending order.
func (a *Allocator) Allocated() []netip.Prefix {
	a.mu.Lock()
	idx := make([]uint64, 0, len(a.live))
	for i := range a.live {
		idx = append(idx, i)
	}
	a.mu.Unlock()
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	out := make([]netip.Prefix, len(idx))
	for i, n := range idx {
		out[i] = a.subnetAt(n)
	}
	return out
}

func (a *Allocator) subnetAt(idx uint64) netip.Prefix {
	base := addrToU32(a.pool.Addr())
	step := uint32(1) << uint(32-a.subnetBits)
	return netip.PrefixFrom(u32ToAddr(base+uint32(idx)*step), a.subnetBits)
}

// AllocSubnet returns the next free subnet.
func (a *Allocator) AllocSubnet() (netip.Prefix, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var idx uint64
	switch {
	case len(a.freed) > 0:
		idx = a.freed[len(a.freed)-1]
		a.freed = a.freed[:len(a.freed)-1]
	case a.next < a.total:
		idx = a.next
		a.next++
	default:
		return netip.Prefix{}, fmt.Errorf("%w: %v in /%d blocks", ErrExhausted, a.pool, a.subnetBits)
	}
	a.live[idx] = true
	return a.subnetAt(idx), nil
}

// Release returns a subnet to the pool.
func (a *Allocator) Release(p netip.Prefix) error {
	if p.Bits() != a.subnetBits || !a.pool.Contains(p.Addr()) {
		return fmt.Errorf("%w: %v", ErrNotAlloced, p)
	}
	step := uint32(1) << uint(32-a.subnetBits)
	idx := uint64((addrToU32(p.Addr()) - addrToU32(a.pool.Addr())) / step)
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.live[idx] {
		return fmt.Errorf("%w: %v (double release?)", ErrNotAlloced, p)
	}
	delete(a.live, idx)
	a.freed = append(a.freed, idx)
	return nil
}

// LinkAddrs allocates one subnet and returns its two endpoint addresses
// (lowest two usable) with the subnet's prefix length — the pair the
// configuration message assigns to the VM interfaces of a link.
func (a *Allocator) LinkAddrs() (aEnd, bEnd netip.Prefix, err error) {
	sub, err := a.AllocSubnet()
	if err != nil {
		return netip.Prefix{}, netip.Prefix{}, err
	}
	base := addrToU32(sub.Addr())
	first, second := base, base+1
	if sub.Bits() <= 30 {
		// For /30 and shorter, skip the network address.
		first, second = base+1, base+2
	}
	return netip.PrefixFrom(u32ToAddr(first), sub.Bits()),
		netip.PrefixFrom(u32ToAddr(second), sub.Bits()), nil
}

// RouterIDs hands out unique 32-bit router identifiers rendered as
// dotted-quad addresses (conventionally from a loopback range).
type RouterIDs struct {
	mu   sync.Mutex
	base uint32
	next uint32
}

// NewRouterIDs creates a router-ID sequence starting at start.
func NewRouterIDs(start netip.Addr) *RouterIDs {
	return &RouterIDs{base: addrToU32(start)}
}

// Next returns the next router ID.
func (r *RouterIDs) Next() netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.base + r.next
	r.next++
	return u32ToAddr(id)
}

// At returns the i-th router ID of the sequence without consuming it.
// Sharded deployments derive a switch's router ID from its datapath ID this
// way, so the ID is stable no matter which controller replica creates the
// VM or in what order.
func (r *RouterIDs) At(i uint64) netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	return u32ToAddr(r.base + uint32(i))
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

package ipam

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAllocSubnetSequence(t *testing.T) {
	a, err := New(netip.MustParsePrefix("172.16.0.0/24"), 30)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a.AllocSubnet()
	s2, _ := a.AllocSubnet()
	if s1.String() != "172.16.0.0/30" || s2.String() != "172.16.0.4/30" {
		t.Fatalf("subnets = %v, %v", s1, s2)
	}
	if a.Free() != 62 {
		t.Fatalf("free = %d", a.Free())
	}
}

func TestLinkAddrsSkipNetwork(t *testing.T) {
	a, _ := New(netip.MustParsePrefix("10.100.0.0/16"), 30)
	x, y, err := a.LinkAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if x.String() != "10.100.0.1/30" || y.String() != "10.100.0.2/30" {
		t.Fatalf("link addrs = %v, %v", x, y)
	}
	// Both ends must be in the same /30.
	if x.Masked() != y.Masked() {
		t.Fatal("endpoints in different subnets")
	}
}

func TestExhaustion(t *testing.T) {
	a, _ := New(netip.MustParsePrefix("192.168.0.0/28"), 30)
	for i := 0; i < 4; i++ {
		if _, err := a.AllocSubnet(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.AllocSubnet(); err == nil {
		t.Fatal("expected exhaustion")
	}
	if a.Free() != 0 {
		t.Fatalf("free = %d", a.Free())
	}
}

func TestReleaseAndReuse(t *testing.T) {
	a, _ := New(netip.MustParsePrefix("192.168.0.0/28"), 30)
	s1, _ := a.AllocSubnet()
	a.AllocSubnet() //nolint:errcheck
	if err := a.Release(s1); err != nil {
		t.Fatal(err)
	}
	got, err := a.AllocSubnet()
	if err != nil {
		t.Fatal(err)
	}
	if got != s1 {
		t.Fatalf("reuse = %v, want %v", got, s1)
	}
	if err := a.Release(netip.MustParsePrefix("1.2.3.0/30")); err == nil {
		t.Fatal("foreign release accepted")
	}
	a.Release(s1) //nolint:errcheck
	if err := a.Release(s1); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestAllocatedListing(t *testing.T) {
	a, _ := New(netip.MustParsePrefix("172.16.0.0/24"), 30)
	a.AllocSubnet() //nolint:errcheck
	a.AllocSubnet() //nolint:errcheck
	list := a.Allocated()
	if len(list) != 2 || list[0].String() != "172.16.0.0/30" {
		t.Fatalf("allocated = %v", list)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(netip.MustParsePrefix("fd00::/64"), 96); err == nil {
		t.Fatal("IPv6 pool accepted")
	}
	if _, err := New(netip.MustParsePrefix("10.0.0.0/24"), 31); err == nil {
		t.Fatal("/31 accepted (no usable pair)")
	}
	if _, err := New(netip.MustParsePrefix("10.0.0.0/24"), 16); err == nil {
		t.Fatal("subnet larger than pool accepted")
	}
}

func TestAccessors(t *testing.T) {
	a, _ := New(netip.MustParsePrefix("10.0.0.0/16"), 30)
	if a.Pool().String() != "10.0.0.0/16" || a.SubnetBits() != 30 {
		t.Fatal("accessors wrong")
	}
}

func TestRouterIDs(t *testing.T) {
	r := NewRouterIDs(netip.MustParseAddr("10.255.0.1"))
	a, b := r.Next(), r.Next()
	if a.String() != "10.255.0.1" || b.String() != "10.255.0.2" {
		t.Fatalf("ids = %v, %v", a, b)
	}
}

// Property: every allocated subnet is unique, inside the pool, and of the
// requested size — across interleaved alloc/release sequences.
func TestUniquenessQuick(t *testing.T) {
	pool := netip.MustParsePrefix("172.20.0.0/20")
	prop := func(ops []bool) bool {
		a, err := New(pool, 30)
		if err != nil {
			return false
		}
		live := map[netip.Prefix]bool{}
		var order []netip.Prefix
		for _, alloc := range ops {
			if alloc || len(order) == 0 {
				s, err := a.AllocSubnet()
				if err != nil {
					return false // pool is large enough for any quick input
				}
				if live[s] {
					return false // duplicate!
				}
				if !pool.Contains(s.Addr()) || s.Bits() != 30 {
					return false
				}
				live[s] = true
				order = append(order, s)
			} else {
				s := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, s)
				if err := a.Release(s); err != nil {
					return false
				}
			}
		}
		return a.Free() == (1<<10)-uint64(len(live))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package topo

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestRingStructure(t *testing.T) {
	for _, n := range []int{3, 4, 8, 28} {
		g := Ring(n)
		if g.NumNodes() != n {
			t.Fatalf("ring(%d): %d nodes", n, g.NumNodes())
		}
		if g.NumLinks() != n {
			t.Fatalf("ring(%d): %d links, want %d", n, g.NumLinks(), n)
		}
		if !g.Connected() {
			t.Fatalf("ring(%d) not connected", n)
		}
		for i := 0; i < n; i++ {
			if g.Degree(i) != 2 {
				t.Fatalf("ring(%d): node %d degree %d", n, i, g.Degree(i))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ring(%d): %v", n, err)
		}
	}
}

func TestRingDiameter(t *testing.T) {
	if d := Ring(8).Diameter(); d != 4 {
		t.Fatalf("ring(8) diameter = %d, want 4", d)
	}
	if d := Ring(7).Diameter(); d != 3 {
		t.Fatalf("ring(7) diameter = %d, want 3", d)
	}
}

func TestRingTwoNodes(t *testing.T) {
	g := Ring(2)
	if g.NumLinks() != 1 {
		t.Fatalf("ring(2) should have a single link, got %d", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLine(t *testing.T) {
	g := Line(5)
	if g.NumLinks() != 4 || !g.Connected() || g.Diameter() != 4 {
		t.Fatalf("line(5): links=%d connected=%v diameter=%d",
			g.NumLinks(), g.Connected(), g.Diameter())
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 {
		t.Fatalf("star hub degree = %d", g.Degree(0))
	}
	if g.Diameter() != 2 {
		t.Fatalf("star diameter = %d", g.Diameter())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// links = (w-1)*h + w*(h-1) = 2*4 + 3*3 = 17
	if g.NumLinks() != 17 {
		t.Fatalf("grid links = %d, want 17", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
}

func TestTree(t *testing.T) {
	g := Tree(2, 3) // complete binary tree, depth 3: 15 nodes
	if g.NumNodes() != 15 || g.NumLinks() != 14 {
		t.Fatalf("tree(2,3): %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("tree not connected")
	}
}

func TestFullMesh(t *testing.T) {
	g := FullMesh(5)
	if g.NumLinks() != 10 {
		t.Fatalf("mesh(5) links = %d", g.NumLinks())
	}
	if g.Diameter() != 1 {
		t.Fatalf("mesh diameter = %d", g.Diameter())
	}
}

func TestRandomConnectedQuick(t *testing.T) {
	prop := func(n8, m8 uint8, seed int64) bool {
		n := int(n8%20) + 2
		m := int(m8 % 40)
		g := Random(n, m, seed)
		return g.Connected() && g.Validate() == nil && g.NumLinks() >= n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(12, 20, 7), Random(12, 20, 7)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("Random with same seed produced different graphs")
	}
}

func TestPanEuropeanInvariants(t *testing.T) {
	g := PanEuropean()
	if g.NumNodes() != 28 {
		t.Fatalf("pan-European nodes = %d, want 28", g.NumNodes())
	}
	if g.NumLinks() != 41 {
		t.Fatalf("pan-European links = %d, want 41", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("pan-European not connected")
	}
	if g.MinDegree() < 2 {
		t.Fatalf("pan-European min degree = %d, want >= 2", g.MinDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByName("Lisbon"); !ok {
		t.Fatal("Lisbon missing")
	}
	if d := g.Diameter(); d < 4 || d > 10 {
		t.Fatalf("pan-European diameter = %d, outside plausible range", d)
	}
}

func TestPeerLookup(t *testing.T) {
	g := Ring(4)
	// Node 0 port 1 connects to node 1 (its port 1); node 0 port 2 to node 3.
	if n, p, ok := g.Peer(0, 1); !ok || n != 1 || p != 1 {
		t.Fatalf("Peer(0,1) = (%d,%d,%v)", n, p, ok)
	}
	if n, _, ok := g.Peer(0, 2); !ok || n != 3 {
		t.Fatalf("Peer(0,2) node = %d, want 3", n)
	}
	if _, _, ok := g.Peer(0, 99); ok {
		t.Fatal("Peer on unused port should fail")
	}
}

func TestHostPortAllocation(t *testing.T) {
	g := Ring(3)
	before := g.Ports(0)
	port, err := g.SetHost(0)
	if err != nil {
		t.Fatal(err)
	}
	if port != before+1 {
		t.Fatalf("host port = %d, want %d", port, before+1)
	}
	if g.Ports(0) != before+1 {
		t.Fatalf("Ports after host = %d", g.Ports(0))
	}
	if _, err := g.SetHost(99); err == nil {
		t.Fatal("SetHost on unknown node should error")
	}
}

// TestSetHostIdempotent is the regression test for the graph-corruption
// half of the ROADMAP flake: re-announcing a host attachment must return
// the already-assigned port, not burn a fresh one.
func TestSetHostIdempotent(t *testing.T) {
	g := Ring(3)
	first, err := g.SetHost(0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := g.SetHost(0)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("re-announced host port = %d, want %d", again, first)
	}
	if g.Ports(0) != 3 { // two ring links + one host port, not two
		t.Fatalf("ports = %d, want 3", g.Ports(0))
	}
	if hp, ok := g.HostPort(0); !ok || hp != first {
		t.Fatalf("HostPort = %d, %v", hp, ok)
	}
	if _, ok := g.HostPort(1); ok {
		t.Fatal("HostPort on hostless node")
	}
	// Links added after the host attachment must not collide with its port.
	if _, err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New("x")
	a := g.AddNode("a")
	if _, err := g.AddLink(a, a, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddLink(a, 42, 1); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := PanEuropean()
	g.SetHost(0) //nolint:errcheck
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %v vs %v", back.String(), g.String())
	}
	if back.Name() != g.Name() {
		t.Fatal("name lost")
	}
	// Peer relationships must survive.
	for _, l := range g.Links() {
		n, p, ok := back.Peer(l.A, l.APort)
		if !ok || n != l.B || p != l.BPort {
			t.Fatalf("peer lost for link %+v", l)
		}
	}
	// Host flag and port accounting must survive.
	n0, _ := back.Node(0)
	if !n0.Host {
		t.Fatal("host flag lost")
	}
	if back.Ports(0) != g.Ports(0) {
		t.Fatalf("ports(0) = %d, want %d", back.Ports(0), g.Ports(0))
	}
}

func TestJSONRoundTripQuick(t *testing.T) {
	prop := func(n8, m8 uint8, seed int64) bool {
		g := Random(int(n8%15)+2, int(m8%30), seed)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		d2, _ := json.Marshal(&back)
		return string(data) == string(d2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	dot := Ring(3).DOT()
	if !strings.Contains(dot, "graph \"ring-3\"") {
		t.Fatalf("DOT missing header: %s", dot)
	}
	if !strings.Contains(dot, "--") {
		t.Fatal("DOT missing edges")
	}
}

func TestShortestPath(t *testing.T) {
	g := Ring(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Fatalf("path 0->3 on ring(6) = %v, want 4 hops", p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if got := g.ShortestPath(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("trivial path = %v", got)
	}
	if g.ShortestPath(-1, 2) != nil {
		t.Fatal("invalid src should give nil")
	}
}

func TestShortestPathRespectsWeights(t *testing.T) {
	g := New("w")
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddLink(a, c, 10) //nolint:errcheck
	g.AddLink(a, b, 1)  //nolint:errcheck
	g.AddLink(b, c, 1)  //nolint:errcheck
	p := g.ShortestPath(a, c)
	if len(p) != 3 || p[1] != b {
		t.Fatalf("weighted path = %v, want a-b-c", p)
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New("two-islands")
	g.AddNode("a")
	g.AddNode("b")
	d := g.HopDistances(0)
	if d[1] != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d[1])
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
}

func TestNodeLookups(t *testing.T) {
	g := Ring(3)
	if _, ok := g.Node(5); ok {
		t.Fatal("Node(5) should not exist")
	}
	if _, ok := g.Node(-1); ok {
		t.Fatal("Node(-1) should not exist")
	}
	if _, ok := g.NodeByName("nope"); ok {
		t.Fatal("NodeByName(nope) should not exist")
	}
	n, ok := g.Node(2)
	if !ok || n.Name != "n2" {
		t.Fatalf("Node(2) = %+v", n)
	}
}

func TestSortedNodeNames(t *testing.T) {
	g := New("names")
	g.AddNode("zeta")
	g.AddNode("alpha")
	names := g.SortedNodeNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("sorted names = %v", names)
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		g := FatTree(k)
		half := k / 2
		wantNodes := half*half + k*k // (k/2)² cores + k pods × (agg+edge)
		wantLinks := k * half * half * 2
		if g.NumNodes() != wantNodes {
			t.Fatalf("FatTree(%d): %d nodes, want %d", k, g.NumNodes(), wantNodes)
		}
		if g.NumLinks() != wantLinks {
			t.Fatalf("FatTree(%d): %d links, want %d", k, g.NumLinks(), wantLinks)
		}
		if !g.Connected() {
			t.Fatalf("FatTree(%d) disconnected", k)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("FatTree(%d) invalid: %v", k, err)
		}
		// Cores and aggs have degree k; edges uplink to their pod's k/2 aggs.
		for _, n := range g.Nodes() {
			want := k
			if n.ID >= half*half && (n.ID-half*half)%k >= half {
				want = half // edge switch
			}
			if d := g.Degree(n.ID); d != want {
				t.Fatalf("FatTree(%d) node %s degree %d, want %d", k, n.Name, d, want)
			}
		}
		edges := FatTreeEdges(k)
		if len(edges) != k*half {
			t.Fatalf("FatTreeEdges(%d) = %d entries, want %d", k, len(edges), k*half)
		}
		for _, id := range edges {
			n, ok := g.Node(id)
			if !ok || len(n.Name) < 4 || n.Name[len(n.Name)-5:len(n.Name)-1] != "edge" {
				t.Fatalf("FatTreeEdges(%d): node %d = %+v is not an edge switch", k, id, n)
			}
		}
	}
}

func TestFatTreeOddKRoundsUp(t *testing.T) {
	if g := FatTree(3); g.NumNodes() != FatTree(4).NumNodes() {
		t.Fatalf("FatTree(3) = %v, want the k=4 fabric", g)
	}
	if g := FatTree(0); g.NumNodes() != FatTree(2).NumNodes() {
		t.Fatalf("FatTree(0) = %v, want the k=2 fabric", g)
	}
}

func TestFatTreeSurvivesAnySingleLink(t *testing.T) {
	// The redundancy claim the chaos scenarios rely on, checked structurally
	// for k=4: removing any one link leaves the fabric connected.
	base := FatTree(4)
	for skip := 0; skip < base.NumLinks(); skip++ {
		g := New("probe")
		for range base.Nodes() {
			g.AddNode("")
		}
		for i, l := range base.Links() {
			if i == skip {
				continue
			}
			if _, err := g.AddLink(l.A, l.B, 1); err != nil {
				t.Fatal(err)
			}
		}
		if !g.Connected() {
			t.Fatalf("removing link %d partitions the k=4 fat-tree", skip)
		}
	}
}

package topo

import (
	"fmt"
)

// ASMember is one autonomous system of a MultiAS composite: a member graph
// (ring, grid, fat-tree, anything) and the AS number annotated onto every
// one of its nodes.
type ASMember struct {
	ASN   uint32
	Graph *Graph
}

// BorderLink joins two member ASes of a MultiAS composite by index: node
// ANode of member AIndex to node BNode of member BIndex. The link becomes an
// eBGP border link; its endpoints become border routers.
type BorderLink struct {
	AIndex, ANode int
	BIndex, BNode int
	Weight        float64
}

// MultiAS stitches member graphs into one inter-domain topology: every
// member keeps its internal structure (links, weights, layout) under fresh
// node IDs, every node is annotated with its member's ASN, and the border
// links join the domains. Node names are prefixed "as<asn>-" so operators
// can read the composite. The construction is purely deterministic: the same
// members and borders produce an identical graph.
func MultiAS(name string, members []ASMember, borders []BorderLink) (*Graph, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("topo: MultiAS needs at least one member")
	}
	seen := map[uint32]bool{}
	for i, m := range members {
		if m.ASN == 0 {
			return nil, fmt.Errorf("topo: member %d has AS 0 (reserved for the flat default)", i)
		}
		if m.ASN > 0xffff {
			return nil, fmt.Errorf("topo: member AS %d exceeds 16 bits (the BGP engine speaks classic 2-byte ASNs)", m.ASN)
		}
		if seen[m.ASN] {
			return nil, fmt.Errorf("topo: duplicate AS %d", m.ASN)
		}
		seen[m.ASN] = true
		if m.Graph == nil || m.Graph.NumNodes() == 0 {
			return nil, fmt.Errorf("topo: member AS %d has no graph", m.ASN)
		}
	}
	g := New(name)
	// offsets[i] is the composite ID of member i's node 0.
	offsets := make([]int, len(members))
	for i, m := range members {
		offsets[i] = g.NumNodes()
		for _, n := range m.Graph.Nodes() {
			id := g.AddNode(fmt.Sprintf("as%d-%s", m.ASN, n.Name))
			g.nodes[id].X, g.nodes[id].Y = n.X, n.Y
			g.nodes[id].AS = m.ASN
		}
		for _, l := range m.Graph.Links() {
			if _, err := g.AddLink(offsets[i]+l.A, offsets[i]+l.B, l.Weight); err != nil {
				return nil, err
			}
		}
	}
	for _, b := range borders {
		if b.AIndex < 0 || b.AIndex >= len(members) || b.BIndex < 0 || b.BIndex >= len(members) {
			return nil, fmt.Errorf("topo: border link references unknown member (%d, %d)", b.AIndex, b.BIndex)
		}
		if b.AIndex == b.BIndex {
			return nil, fmt.Errorf("topo: border link stays inside member %d", b.AIndex)
		}
		if b.ANode < 0 || b.ANode >= members[b.AIndex].Graph.NumNodes() ||
			b.BNode < 0 || b.BNode >= members[b.BIndex].Graph.NumNodes() {
			return nil, fmt.Errorf("topo: border link references unknown node (%d:%d, %d:%d)",
				b.AIndex, b.ANode, b.BIndex, b.BNode)
		}
		if _, err := g.AddLink(offsets[b.AIndex]+b.ANode, offsets[b.BIndex]+b.BNode, b.Weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ASRing joins asCount ring-shaped ASes (Ring(asSize) each, AS numbers
// 64512, 64513, …) into a ring of domains: AS i's node 0 connects to AS
// i+1's node asSize/2, so consecutive domains attach at different border
// routers and every AS pair keeps a backup path through the other side of
// the domain ring. With asCount == 2 a single border link joins the two
// domains. This is the multi-AS analogue of the paper's Fig. 3 rings — the
// convergence-vs-AS-count experiment sweeps asCount.
func ASRing(asCount, asSize int) *Graph {
	if asCount < 2 {
		asCount = 2
	}
	if asSize < 1 {
		asSize = 1
	}
	members := make([]ASMember, asCount)
	for i := range members {
		members[i] = ASMember{ASN: uint32(64512 + i), Graph: Ring(asSize)}
	}
	var borders []BorderLink
	for i := 0; i < asCount; i++ {
		next := (i + 1) % asCount
		if asCount == 2 && i == 1 {
			break // avoid a parallel second border on the 2-AS ring
		}
		borders = append(borders, BorderLink{
			AIndex: i, ANode: 0,
			BIndex: next, BNode: (asSize / 2) % asSize,
			Weight: 1,
		})
	}
	g, err := MultiAS(fmt.Sprintf("asring-%dx%d", asCount, asSize), members, borders)
	if err != nil {
		panic(err) // unreachable: inputs are clamped valid by construction
	}
	return g
}

// Package topo models network topologies as undirected multigraphs with
// per-endpoint port numbers, exactly the view an OpenFlow controller builds
// from discovery: a set of datapaths and a set of (dpid, port)↔(dpid, port)
// links. It provides the generators used by the paper's evaluation — ring
// topologies of varying size for the Fig. 3 configuration-time sweep and the
// 28-node pan-European reference network for the demo — plus generic
// generators (line, star, grid, tree, mesh, random) and graph utilities
// (connectivity, shortest paths, diameter, DOT/JSON export).
package topo

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Node is a vertex of the topology: one OpenFlow switch.
type Node struct {
	ID   int     `json:"id"`             // dense index, 0-based
	Name string  `json:"name"`           // human-readable label
	X    float64 `json:"x,omitempty"`    // optional layout hint
	Y    float64 `json:"y,omitempty"`    // optional layout hint
	Host bool    `json:"host,omitempty"` // true if an end host should attach here
	// AS is the autonomous system the switch belongs to; 0 means the flat
	// single-domain default. Links between nodes of different non-zero ASes
	// are eBGP border links.
	AS uint32 `json:"as,omitempty"`
}

// Link is an undirected edge between two nodes. APort and BPort are the
// 1-based switch port numbers at each end; port numbers are unique per node.
type Link struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	APort  int     `json:"aPort"`
	BPort  int     `json:"bPort"`
	Weight float64 `json:"weight,omitempty"` // metric (e.g. km); 1 if unset
}

// Graph is an undirected topology. The zero value is an empty graph ready
// for AddNode/AddLink.
type Graph struct {
	name  string
	nodes []Node
	links []Link
	// ports[n] is the next free port number on node n (ports are 1-based).
	ports []int
	// hostPorts[n] is the port consumed by node n's host attachment
	// (0 = none), making SetHost idempotent.
	hostPorts []int
	// adj[n] lists link indices incident to node n.
	adj [][]int
}

// New returns an empty named graph.
func New(name string) *Graph { return &Graph{name: name} }

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Nodes returns a copy of the node list.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Links returns a copy of the link list.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) (Node, bool) {
	if id < 0 || id >= len(g.nodes) {
		return Node{}, false
	}
	return g.nodes[id], true
}

// NodeByName returns the first node whose Name matches.
func (g *Graph) NodeByName(name string) (Node, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// AddNode appends a node and returns its ID. An empty name is replaced by
// "n<id>".
func (g *Graph) AddNode(name string) int {
	id := len(g.nodes)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	g.nodes = append(g.nodes, Node{ID: id, Name: name})
	g.ports = append(g.ports, 1)
	g.hostPorts = append(g.hostPorts, 0)
	g.adj = append(g.adj, nil)
	return id
}

// SetHost marks a node as having an attached end host. The host consumes the
// next free port number on the switch; that port is returned. SetHost is
// idempotent: re-announcing the same attachment returns the port already
// assigned instead of consuming another one (re-announcement used to corrupt
// the graph's port accounting — the root-cause family of the pan-European
// demo flake).
func (g *Graph) SetHost(id int) (port int, err error) {
	if id < 0 || id >= len(g.nodes) {
		return 0, fmt.Errorf("topo: no node %d", id)
	}
	if g.nodes[id].Host {
		return g.hostPorts[id], nil
	}
	g.nodes[id].Host = true
	port = g.ports[id]
	g.ports[id]++
	g.hostPorts[id] = port
	return port, nil
}

// HostPort returns the port consumed by a node's host attachment (ok=false
// when the node has no host).
func (g *Graph) HostPort(id int) (port int, ok bool) {
	if id < 0 || id >= len(g.hostPorts) || g.hostPorts[id] == 0 {
		return 0, false
	}
	return g.hostPorts[id], true
}

// SetAS places a node in an autonomous system (0 = flat default).
func (g *Graph) SetAS(id int, asn uint32) {
	if id >= 0 && id < len(g.nodes) {
		g.nodes[id].AS = asn
	}
}

// AS returns the autonomous system of a node (0 for unknown nodes or the
// flat default).
func (g *Graph) AS(id int) uint32 {
	if id < 0 || id >= len(g.nodes) {
		return 0
	}
	return g.nodes[id].AS
}

// ASNs returns the distinct non-zero AS numbers present, ascending.
func (g *Graph) ASNs() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, n := range g.nodes {
		if n.AS != 0 && !seen[n.AS] {
			seen[n.AS] = true
			out = append(out, n.AS)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsBorderLink reports whether link i joins two different non-zero ASes —
// an eBGP border link.
func (g *Graph) IsBorderLink(i int) bool {
	if i < 0 || i >= len(g.links) {
		return false
	}
	l := g.links[i]
	a, b := g.nodes[l.A].AS, g.nodes[l.B].AS
	return a != 0 && b != 0 && a != b
}

// SetXY places a node for GUI layout.
func (g *Graph) SetXY(id int, x, y float64) {
	if id >= 0 && id < len(g.nodes) {
		g.nodes[id].X, g.nodes[id].Y = x, y
	}
}

// AddLink connects nodes a and b, consuming the next free port on each, and
// returns the link's index. Self-loops are rejected; parallel links are
// allowed (they get distinct ports).
func (g *Graph) AddLink(a, b int, weight float64) (int, error) {
	if a == b {
		return 0, fmt.Errorf("topo: self-loop on node %d", a)
	}
	if a < 0 || a >= len(g.nodes) || b < 0 || b >= len(g.nodes) {
		return 0, fmt.Errorf("topo: link %d-%d references unknown node", a, b)
	}
	if weight <= 0 {
		weight = 1
	}
	l := Link{A: a, B: b, APort: g.ports[a], BPort: g.ports[b], Weight: weight}
	g.ports[a]++
	g.ports[b]++
	idx := len(g.links)
	g.links = append(g.links, l)
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
	return idx, nil
}

// Degree returns the number of links incident to node id (host attachments
// not counted).
func (g *Graph) Degree(id int) int {
	if id < 0 || id >= len(g.adj) {
		return 0
	}
	return len(g.adj[id])
}

// Ports returns the number of ports in use on node id, including any host
// port. OpenFlow switches report this as their port count.
func (g *Graph) Ports(id int) int {
	if id < 0 || id >= len(g.ports) {
		return 0
	}
	return g.ports[id] - 1
}

// Neighbors returns the IDs of nodes adjacent to id, in link order.
func (g *Graph) Neighbors(id int) []int {
	var out []int
	for _, li := range g.adj[id] {
		l := g.links[li]
		if l.A == id {
			out = append(out, l.B)
		} else {
			out = append(out, l.A)
		}
	}
	return out
}

// IncidentLinks returns indices of links touching node id.
func (g *Graph) IncidentLinks(id int) []int {
	out := make([]int, len(g.adj[id]))
	copy(out, g.adj[id])
	return out
}

// Peer resolves the far end of a link from one endpoint: given (node, port)
// it returns the remote node and port. ok is false if no link uses that
// (node, port) pair.
func (g *Graph) Peer(node, port int) (peerNode, peerPort int, ok bool) {
	for _, li := range g.adj[node] {
		l := g.links[li]
		if l.A == node && l.APort == port {
			return l.B, l.BPort, true
		}
		if l.B == node && l.BPort == port {
			return l.A, l.APort, true
		}
	}
	return 0, 0, false
}

// Connected reports whether every node is reachable from node 0 (an empty
// graph is connected).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(n) {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(g.nodes)
}

// MinDegree returns the smallest node degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if len(g.nodes) == 0 {
		return 0
	}
	min := g.Degree(0)
	for i := 1; i < len(g.nodes); i++ {
		if d := g.Degree(i); d < min {
			min = d
		}
	}
	return min
}

// HopDistances returns the hop count from src to every node (-1 if
// unreachable), by BFS.
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.nodes) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(n) {
			if dist[nb] < 0 {
				dist[nb] = dist[n] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Diameter returns the longest shortest-path hop count between any node
// pair, or -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if len(g.nodes) == 0 {
		return -1
	}
	max := 0
	for i := range g.nodes {
		for _, d := range g.HopDistances(i) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// ShortestPath returns a minimum-weight node path from src to dst using
// Dijkstra over link weights, or nil if unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	n := len(g.nodes)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil
	}
	const inf = 1 << 62
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, float64(inf)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, li := range g.adj[u] {
			l := g.links[li]
			v := l.B
			if v == u {
				v = l.A
			}
			if nd := dist[u] + l.Weight; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
			}
		}
	}
	if dist[dst] >= inf {
		return nil
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Validate checks structural invariants: port uniqueness per node, index
// bounds, adjacency consistency.
func (g *Graph) Validate() error {
	type np struct{ n, p int }
	seen := make(map[np]bool)
	for i, l := range g.links {
		if l.A < 0 || l.A >= len(g.nodes) || l.B < 0 || l.B >= len(g.nodes) {
			return fmt.Errorf("topo: link %d out of range", i)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: link %d is a self-loop", i)
		}
		for _, e := range []np{{l.A, l.APort}, {l.B, l.BPort}} {
			if e.p < 1 {
				return fmt.Errorf("topo: link %d has non-positive port", i)
			}
			if seen[e] {
				return fmt.Errorf("topo: port %d on node %d used twice", e.p, e.n)
			}
			seen[e] = true
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.name)
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  %d [label=%q];\n", n.ID, n.Name)
	}
	for _, l := range g.links {
		fmt.Fprintf(&b, "  %d -- %d [taillabel=%q, headlabel=%q];\n",
			l.A, l.B, fmt.Sprint(l.APort), fmt.Sprint(l.BPort))
	}
	b.WriteString("}\n")
	return b.String()
}

type graphJSON struct {
	Name  string     `json:"name"`
	Nodes []Node     `json:"nodes"`
	Links []linkJSON `json:"links"`
}

type linkJSON struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	APort  int     `json:"aPort"`
	BPort  int     `json:"bPort"`
	Weight float64 `json:"weight"`
}

// MarshalJSON encodes the graph (name, nodes, links with explicit ports).
func (g *Graph) MarshalJSON() ([]byte, error) {
	gj := graphJSON{Name: g.name, Nodes: g.nodes}
	for _, l := range g.links {
		gj.Links = append(gj.Links, linkJSON{l.A, l.B, l.APort, l.BPort, l.Weight})
	}
	return json.Marshal(gj)
}

// UnmarshalJSON decodes a graph and re-derives adjacency and port counters.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	ng := New(gj.Name)
	for _, n := range gj.Nodes {
		id := ng.AddNode(n.Name)
		ng.nodes[id].X, ng.nodes[id].Y, ng.nodes[id].Host, ng.nodes[id].AS = n.X, n.Y, n.Host, n.AS
	}
	for _, l := range gj.Links {
		if l.A < 0 || l.A >= len(ng.nodes) || l.B < 0 || l.B >= len(ng.nodes) {
			return errors.New("topo: link references unknown node")
		}
		idx := len(ng.links)
		ng.links = append(ng.links, Link{l.A, l.B, l.APort, l.BPort, l.Weight})
		ng.adj[l.A] = append(ng.adj[l.A], idx)
		ng.adj[l.B] = append(ng.adj[l.B], idx)
		if l.APort >= ng.ports[l.A] {
			ng.ports[l.A] = l.APort + 1
		}
		if l.BPort >= ng.ports[l.B] {
			ng.ports[l.B] = l.BPort + 1
		}
	}
	// Host ports sit after link ports; re-reserve them.
	for i, n := range ng.nodes {
		if n.Host {
			ng.hostPorts[i] = ng.ports[i]
			ng.ports[i]++
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d links", g.name, len(g.nodes), len(g.links))
}

// SortedNodeNames returns all node names in lexical order (test helper).
func (g *Graph) SortedNodeNames() []string {
	names := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}

// Ring returns the n-node ring used by the paper's Fig. 3 experiments.
func Ring(n int) *Graph {
	g := New(fmt.Sprintf("ring-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 0; i < n && n > 1; i++ {
		next := (i + 1) % n
		if n == 2 && i == 1 {
			break // avoid a duplicate parallel link on the 2-ring
		}
		g.AddLink(i, next, 1) //nolint:errcheck // indices are in range by construction
	}
	return g
}

// Line returns a linear chain of n nodes.
func Line(n int) *Graph {
	g := New(fmt.Sprintf("line-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(i, i+1, 1) //nolint:errcheck
	}
	return g
}

// Star returns a hub-and-spoke topology: node 0 is the hub of n-1 leaves.
func Star(n int) *Graph {
	g := New(fmt.Sprintf("star-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 1; i < n; i++ {
		g.AddLink(0, i, 1) //nolint:errcheck
	}
	return g
}

// Grid returns a w×h mesh grid.
func Grid(w, h int) *Graph {
	g := New(fmt.Sprintf("grid-%dx%d", w, h))
	for i := 0; i < w*h; i++ {
		g.AddNode("")
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				g.AddLink(id, id+1, 1) //nolint:errcheck
			}
			if y+1 < h {
				g.AddLink(id, id+w, 1) //nolint:errcheck
			}
		}
	}
	return g
}

// Tree returns a complete k-ary tree of the given depth (depth 0 is a single
// root).
func Tree(fanout, depth int) *Graph {
	g := New(fmt.Sprintf("tree-%d-%d", fanout, depth))
	root := g.AddNode("")
	var grow func(parent, d int)
	grow = func(parent, d int) {
		if d >= depth {
			return
		}
		for i := 0; i < fanout; i++ {
			c := g.AddNode("")
			g.AddLink(parent, c, 1) //nolint:errcheck
			grow(c, d+1)
		}
	}
	grow(root, 0)
	return g
}

// FullMesh returns the complete graph on n nodes.
func FullMesh(n int) *Graph {
	g := New(fmt.Sprintf("mesh-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddLink(i, j, 1) //nolint:errcheck
		}
	}
	return g
}

// Random returns a connected random graph with n nodes and m links (m is
// clamped to at least n-1 and at most n(n-1)/2), deterministic for a given
// seed: a random spanning tree plus random extra edges.
func Random(n, m int, seed int64) *Graph {
	g := New(fmt.Sprintf("rand-%d-%d", n, m))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	if n <= 1 {
		return g
	}
	if m < n-1 {
		m = n - 1
	}
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	// Random spanning tree: connect each node to a random earlier node.
	order := rng.Perm(n)
	have := map[[2]int]bool{}
	addEdge := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		if a == b || have[[2]int{a, b}] {
			return false
		}
		have[[2]int{a, b}] = true
		g.AddLink(a, b, 1) //nolint:errcheck
		return true
	}
	for i := 1; i < n; i++ {
		addEdge(order[i], order[rng.Intn(i)])
	}
	for g.NumLinks() < m {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

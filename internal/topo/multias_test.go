package topo

import (
	"encoding/json"
	"testing"
)

func TestMultiASStructure(t *testing.T) {
	g, err := MultiAS("m", []ASMember{
		{ASN: 100, Graph: Ring(4)},
		{ASN: 200, Graph: Grid(2, 2)},
		{ASN: 300, Graph: Line(3)},
	}, []BorderLink{
		{AIndex: 0, ANode: 0, BIndex: 1, BNode: 0},
		{AIndex: 1, ANode: 3, BIndex: 2, BNode: 0},
		{AIndex: 2, ANode: 2, BIndex: 0, BNode: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4+4+3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Ring(4)=4 links, Grid(2,2)=4, Line(3)=2, plus 3 borders.
	if g.NumLinks() != 4+4+2+3 {
		t.Fatalf("links = %d", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("composite disconnected")
	}

	// Every node carries its member's ASN and a prefixed name.
	wantAS := []uint32{100, 100, 100, 100, 200, 200, 200, 200, 300, 300, 300}
	for i, want := range wantAS {
		if got := g.AS(i); got != want {
			t.Fatalf("node %d AS = %d, want %d", i, got, want)
		}
	}
	if n, _ := g.Node(4); n.Name != "as200-n0" {
		t.Fatalf("node 4 name = %q", n.Name)
	}
	if asns := g.ASNs(); len(asns) != 3 || asns[0] != 100 || asns[2] != 300 {
		t.Fatalf("ASNs = %v", asns)
	}

	// Exactly the three stitched links are border links, and each joins two
	// distinct ASes; intra-AS links are preserved as non-border.
	borders := 0
	for i, l := range g.Links() {
		inter := g.AS(l.A) != g.AS(l.B)
		if g.IsBorderLink(i) != inter {
			t.Fatalf("link %d border=%v but ASes %d-%d", i, g.IsBorderLink(i), g.AS(l.A), g.AS(l.B))
		}
		if inter {
			borders++
		}
	}
	if borders != 3 {
		t.Fatalf("border links = %d, want 3", borders)
	}

	// Intra-AS connectivity survives when border links are ignored: walk
	// member 0's ring without leaving AS 100.
	dist := g.HopDistances(0)
	for i := 0; i < 4; i++ {
		if dist[i] < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

func TestMultiASRejects(t *testing.T) {
	if _, err := MultiAS("x", nil, nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := MultiAS("x", []ASMember{{ASN: 0, Graph: Ring(3)}}, nil); err == nil {
		t.Fatal("AS 0 accepted")
	}
	if _, err := MultiAS("x", []ASMember{{ASN: 1 << 16, Graph: Ring(3)}}, nil); err == nil {
		t.Fatal("4-byte AS accepted (wire format is 2-byte)")
	}
	if _, err := MultiAS("x", []ASMember{
		{ASN: 1, Graph: Ring(3)}, {ASN: 1, Graph: Ring(3)},
	}, nil); err == nil {
		t.Fatal("duplicate AS accepted")
	}
	members := []ASMember{{ASN: 1, Graph: Ring(3)}, {ASN: 2, Graph: Ring(3)}}
	if _, err := MultiAS("x", members, []BorderLink{{AIndex: 0, ANode: 0, BIndex: 0, BNode: 1}}); err == nil {
		t.Fatal("intra-member border accepted")
	}
	if _, err := MultiAS("x", members, []BorderLink{{AIndex: 0, ANode: 9, BIndex: 1, BNode: 0}}); err == nil {
		t.Fatal("out-of-range border node accepted")
	}
}

// TestMultiASDeterminism: the same spec must produce byte-identical graphs
// (the chaos harness depends on link indices being stable).
func TestMultiASDeterminism(t *testing.T) {
	build := func() *Graph {
		g, err := MultiAS("det", []ASMember{
			{ASN: 10, Graph: Ring(5)},
			{ASN: 20, Graph: FatTree(4)},
		}, []BorderLink{{AIndex: 0, ANode: 2, BIndex: 1, BNode: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same spec, different graphs:\n%s\n%s", a, b)
	}
	// AS annotations survive a JSON round trip.
	var rt Graph
	if err := json.Unmarshal(a, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.AS(0) != 10 || rt.AS(5) != 20 {
		t.Fatalf("AS lost in round trip: %d, %d", rt.AS(0), rt.AS(5))
	}
	if !rt.IsBorderLink(rt.NumLinks() - 1) {
		t.Fatal("border link lost in round trip")
	}
}

func TestASRing(t *testing.T) {
	g := ASRing(3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 || !g.Connected() {
		t.Fatalf("asring: %v connected=%v", g, g.Connected())
	}
	borders := 0
	for i := range g.Links() {
		if g.IsBorderLink(i) {
			borders++
		}
	}
	if borders != 3 {
		t.Fatalf("borders = %d, want 3", borders)
	}
	// Cutting any single border keeps the composite connected (backup path
	// through the ring of ASes) — verified structurally: every border
	// endpoint has degree ≥ 2.
	for i, l := range g.Links() {
		if g.IsBorderLink(i) {
			if g.Degree(l.A) < 2 || g.Degree(l.B) < 2 {
				t.Fatalf("border %d endpoint degree too low", i)
			}
		}
	}
	// Two ASes get exactly one border link.
	g2 := ASRing(2, 3)
	borders = 0
	for i := range g2.Links() {
		if g2.IsBorderLink(i) {
			borders++
		}
	}
	if borders != 1 {
		t.Fatalf("2-AS ring borders = %d, want 1", borders)
	}
}

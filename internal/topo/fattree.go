package topo

import "fmt"

// FatTree returns the classic k-ary fat-tree of data-center networking
// (Al-Fares et al.): k pods, each with k/2 aggregation and k/2 edge switches,
// interconnected through (k/2)² core switches. Every edge switch reaches
// every core through k/2 disjoint aggregation paths, which is what makes the
// topology interesting for failure scenarios — any single inter-switch link
// can die without partitioning the fabric.
//
// k must be even and at least 2; odd values are rounded up. Node IDs are
// assigned cores first (0 .. (k/2)²-1), then per pod: aggregation switches,
// then edge switches.
func FatTree(k int) *Graph {
	if k < 2 {
		k = 2
	}
	if k%2 != 0 {
		k++
	}
	half := k / 2
	g := New(fmt.Sprintf("fattree-%d", k))

	cores := make([]int, half*half)
	for i := range cores {
		cores[i] = g.AddNode(fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		aggs := make([]int, half)
		for a := range aggs {
			aggs[a] = g.AddNode(fmt.Sprintf("p%d-agg%d", p, a))
			// Aggregation switch a of every pod connects to the a-th group of
			// k/2 core switches.
			for c := 0; c < half; c++ {
				g.AddLink(aggs[a], cores[a*half+c], 1) //nolint:errcheck // indices in range by construction
			}
		}
		for e := 0; e < half; e++ {
			edge := g.AddNode(fmt.Sprintf("p%d-edge%d", p, e))
			for _, agg := range aggs {
				g.AddLink(edge, agg, 1) //nolint:errcheck
			}
		}
	}
	return g
}

// FatTreeEdges returns the node IDs of the edge switches of a fat-tree built
// by FatTree(k), in pod order — the natural attachment points for end hosts.
func FatTreeEdges(k int) []int {
	if k < 2 {
		k = 2
	}
	if k%2 != 0 {
		k++
	}
	half := k / 2
	out := make([]int, 0, k*half)
	base := half * half // cores come first
	podSize := k        // k/2 agg + k/2 edge per pod
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			out = append(out, base+p*podSize+half+e)
		}
	}
	return out
}

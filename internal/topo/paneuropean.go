package topo

// PanEuropean returns the 28-node pan-European reference topology used by
// the paper's demonstration (§3). The paper cites Maesschalck et al.,
// "Pan-European optical transport networks: an availability-based
// comparison" (Photonic Network Communications, 2003); this is a faithful
// reconstruction of that basic reference network's 28 cities with a
// 41-link, degree≥2, geographically consistent fibre plan. The exact edge
// list of the original is not machine-readable from the citation, so the
// reconstruction preserves its published structural parameters (28 nodes,
// 41 links, average degree ≈ 2.9) — the properties that matter for the
// demo's discovery, configuration and convergence behaviour.
//
// Link weights are approximate great-circle distances in units of 100 km,
// so OSPF path costs roughly follow geography.
func PanEuropean() *Graph {
	g := New("pan-european-28")
	cities := []struct {
		name string
		x, y float64 // rough map coordinates (lon, -lat) for layout
	}{
		{"Amsterdam", 4.9, -52.4}, {"Athens", 23.7, -38.0},
		{"Barcelona", 2.2, -41.4}, {"Belgrade", 20.5, -44.8},
		{"Berlin", 13.4, -52.5}, {"Bordeaux", -0.6, -44.8},
		{"Brussels", 4.4, -50.8}, {"Budapest", 19.0, -47.5},
		{"Copenhagen", 12.6, -55.7}, {"Dublin", -6.3, -53.3},
		{"Frankfurt", 8.7, -50.1}, {"Glasgow", -4.3, -55.9},
		{"Hamburg", 10.0, -53.6}, {"Krakow", 19.9, -50.1},
		{"Lisbon", -9.1, -38.7}, {"London", -0.1, -51.5},
		{"Lyon", 4.8, -45.8}, {"Madrid", -3.7, -40.4},
		{"Milan", 9.2, -45.5}, {"Munich", 11.6, -48.1},
		{"Oslo", 10.8, -59.9}, {"Paris", 2.4, -48.9},
		{"Prague", 14.4, -50.1}, {"Rome", 12.5, -41.9},
		{"Stockholm", 18.1, -59.3}, {"Strasbourg", 7.8, -48.6},
		{"Vienna", 16.4, -48.2}, {"Zurich", 8.5, -47.4},
	}
	for _, c := range cities {
		id := g.AddNode(c.name)
		g.SetXY(id, c.x, c.y)
	}
	links := []struct {
		a, b string
		d    float64 // ~distance, 100 km units
	}{
		{"Glasgow", "Dublin", 3.0}, {"Glasgow", "Amsterdam", 7.0},
		{"Dublin", "London", 4.6}, {"London", "Amsterdam", 3.6},
		{"London", "Paris", 3.4}, {"Paris", "Brussels", 2.6},
		{"Brussels", "Amsterdam", 1.7}, {"Amsterdam", "Hamburg", 3.7},
		{"Brussels", "Frankfurt", 3.2}, {"Paris", "Strasbourg", 4.0},
		{"Paris", "Lyon", 3.9}, {"Paris", "Bordeaux", 5.0},
		{"Bordeaux", "Madrid", 5.5}, {"Madrid", "Lisbon", 5.0},
		{"Lisbon", "Bordeaux", 7.9}, {"Madrid", "Barcelona", 5.1},
		{"Barcelona", "Lyon", 4.4}, {"Lyon", "Zurich", 3.3},
		{"Zurich", "Strasbourg", 1.8}, {"Strasbourg", "Frankfurt", 1.9},
		{"Frankfurt", "Hamburg", 3.9}, {"Frankfurt", "Munich", 3.0},
		{"Zurich", "Milan", 2.2}, {"Milan", "Munich", 3.5},
		{"Milan", "Rome", 4.8}, {"Rome", "Athens", 10.5},
		{"Athens", "Belgrade", 8.1}, {"Belgrade", "Budapest", 3.2},
		{"Budapest", "Krakow", 2.9}, {"Krakow", "Prague", 4.0},
		{"Budapest", "Vienna", 2.2}, {"Vienna", "Munich", 3.6},
		{"Vienna", "Prague", 2.5}, {"Prague", "Berlin", 2.8},
		{"Berlin", "Hamburg", 2.6}, {"Berlin", "Munich", 5.0},
		{"Hamburg", "Copenhagen", 2.9}, {"Copenhagen", "Oslo", 4.8},
		{"Oslo", "Stockholm", 4.2}, {"Stockholm", "Copenhagen", 5.2},
		{"Berlin", "Stockholm", 8.1},
	}
	for _, l := range links {
		a, okA := g.NodeByName(l.a)
		b, okB := g.NodeByName(l.b)
		if !okA || !okB {
			panic("topo: pan-European link references unknown city " + l.a + "/" + l.b)
		}
		if _, err := g.AddLink(a.ID, b.ID, l.d); err != nil {
			panic("topo: pan-European: " + err.Error())
		}
	}
	return g
}

package quagga

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ospf"
	"routeflow/internal/rib"
)

// Timers collects the protocol timers a Router passes to its daemons.
type Timers struct {
	Hello    time.Duration
	Dead     time.Duration
	SPFDelay time.Duration
}

// Router is the assembled routing control platform of one VM: a RIB shared
// by a zebra-like connected-route manager and an ospfd instance built from
// the parsed configuration files.
type Router struct {
	cfg  *Config
	clk  clock.Clock
	rib  *rib.RIB
	ospf *ospf.Instance

	mu       sync.Mutex
	attached map[string]InterfaceConfig
	ospfIfcs map[string]*ospf.Interface
}

// NewRouter builds a router from configuration (parse + validate first).
func NewRouter(cfg *Config, clk clock.Clock, timers Timers) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.System()
	}
	r := rib.New()
	inst, err := ospf.New(ospf.Config{
		RouterID:      cfg.RouterID,
		RIB:           r,
		Clock:         clk,
		HelloInterval: timers.Hello,
		DeadInterval:  timers.Dead,
		SPFDelay:      timers.SPFDelay,
	})
	if err != nil {
		return nil, err
	}
	return &Router{cfg: cfg, clk: clk, rib: r, ospf: inst,
		attached: make(map[string]InterfaceConfig),
		ospfIfcs: make(map[string]*ospf.Interface)}, nil
}

// RIB returns the router's RIB (the VM's FIB view).
func (r *Router) RIB() *rib.RIB { return r.rib }

// OSPF returns the ospfd instance.
func (r *Router) OSPF() *ospf.Instance { return r.ospf }

// Config returns the router's configuration.
func (r *Router) Config() *Config { return r.cfg }

// Hostname returns the configured hostname.
func (r *Router) Hostname() string { return r.cfg.Hostname }

// ospfEnabled reports whether addr falls inside any `network ... area`
// statement.
func (r *Router) ospfEnabled(addr netip.Addr) bool {
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, n := range r.cfg.Networks {
		if n.Contains(addr) {
			return true
		}
	}
	return false
}

// Attach brings up a configured interface: the connected route is installed
// and, if the address is covered by an OSPF network statement, the
// interface joins the OSPF process using send as its transmit path. The
// returned interface is nil when OSPF is not enabled on it.
func (r *Router) Attach(name string, send ospf.SendFunc) (*ospf.Interface, error) {
	var ic *InterfaceConfig
	r.cfg.mu.RLock()
	for i := range r.cfg.Interfaces {
		if r.cfg.Interfaces[i].Name == name {
			// Copy: a concurrent AddInterfaceConfig may regrow the slice.
			cp := r.cfg.Interfaces[i]
			ic = &cp
			break
		}
	}
	r.cfg.mu.RUnlock()
	if ic == nil {
		return nil, fmt.Errorf("quagga: interface %s not in configuration", name)
	}
	r.mu.Lock()
	if _, dup := r.attached[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("quagga: interface %s already attached", name)
	}
	r.attached[name] = *ic
	r.mu.Unlock()

	if err := r.rib.Add(rib.Route{
		Prefix: ic.Address.Masked(),
		Iface:  name,
		Source: rib.SourceConnected,
	}); err != nil {
		return nil, err
	}
	if !r.ospfEnabled(ic.Address.Addr()) {
		return nil, nil
	}
	ifc, err := r.ospf.AddInterface(name, ic.Address, ic.Cost, send)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.ospfIfcs[name] = ifc
	r.mu.Unlock()
	return ifc, nil
}

// Detach tears an interface down: OSPF leaves it and the connected route is
// withdrawn.
func (r *Router) Detach(name string) {
	r.mu.Lock()
	ic, ok := r.attached[name]
	delete(r.attached, name)
	r.mu.Unlock()
	if !ok {
		return
	}
	r.ospf.RemoveInterface(name)
	r.mu.Lock()
	delete(r.ospfIfcs, name)
	r.mu.Unlock()
	r.rib.Remove(ic.Address.Masked(), rib.SourceConnected, netip.Addr{})
}

// AddInterfaceConfig upserts an interface stanza into the running
// configuration (the RPC server reconfigures VMs dynamically as links are
// discovered and re-applies configuration on reconciliation). An existing
// stanza with the same name is replaced, so re-applies converge instead of
// erroring. Attach must still be called to bring the interface up.
func (r *Router) AddInterfaceConfig(ic InterfaceConfig) error {
	if !ic.Address.IsValid() || !ic.Address.Addr().Is4() {
		return fmt.Errorf("quagga: interface %s needs an IPv4 address", ic.Name)
	}
	r.cfg.mu.Lock()
	defer r.cfg.mu.Unlock()
	for i, ex := range r.cfg.Interfaces {
		if ex.Name == ic.Name {
			r.cfg.Interfaces[i] = ic
			return nil
		}
	}
	r.cfg.Interfaces = append(r.cfg.Interfaces, ic)
	return nil
}

// AddNetwork appends an OSPF network statement at runtime.
func (r *Router) AddNetwork(p netip.Prefix) {
	r.cfg.mu.Lock()
	defer r.cfg.mu.Unlock()
	for _, ex := range r.cfg.Networks {
		if ex == p {
			return
		}
	}
	r.cfg.Networks = append(r.cfg.Networks, p)
}

// Attached reports whether the named interface is currently up (brought up
// by Attach and not since Detach-ed).
func (r *Router) Attached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.attached[name]
	return ok
}

// InterfaceAddr returns the configured address of an interface.
func (r *Router) InterfaceAddr(name string) (netip.Prefix, bool) {
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, ic := range r.cfg.Interfaces {
		if ic.Name == name {
			return ic.Address, true
		}
	}
	return netip.Prefix{}, false
}

// Start launches the daemons.
func (r *Router) Start() { r.ospf.Start() }

// Stop halts the daemons.
func (r *Router) Stop() { r.ospf.Stop() }

// ShowIPRoute renders the RIB in vtysh `show ip route` style.
func (r *Router) ShowIPRoute() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip route\n", r.cfg.Hostname)
	codes := map[rib.Source]string{
		rib.SourceConnected: "C",
		rib.SourceStatic:    "S",
		rib.SourceOSPF:      "O",
	}
	for _, rt := range r.rib.Best() {
		code := codes[rt.Source]
		if code == "" {
			code = "?"
		}
		fmt.Fprintf(&b, "%s>* %s\n", code, rt)
	}
	return b.String()
}

// ShowOSPFNeighbors renders `show ip ospf neighbor`.
func (r *Router) ShowOSPFNeighbors() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip ospf neighbor\n", r.cfg.Hostname)
	nbs := r.ospf.Neighbors()
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].Interface < nbs[j].Interface })
	for _, n := range nbs {
		fmt.Fprintf(&b, "%-15s %-6s %-15s %s\n", n.RouterID, n.State, n.Addr, n.Interface)
	}
	return b.String()
}

// OSPFInterface returns the attached OSPF interface with the given name, or
// nil when the interface is not attached or not OSPF-enabled.
func (r *Router) OSPFInterface(name string) *ospf.Interface {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ospfIfcs[name]
}

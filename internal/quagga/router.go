package quagga

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"routeflow/internal/bgp"
	"routeflow/internal/clock"
	"routeflow/internal/ospf"
	"routeflow/internal/rib"
)

// Timers collects the protocol timers a Router passes to its daemons.
type Timers struct {
	Hello    time.Duration
	Dead     time.Duration
	SPFDelay time.Duration
	// BGP session timers (zero = RFC 4271 defaults): the hold time bounds
	// session liveness (keepalives go out every hold/3) and connect-retry
	// paces session (re)establishment. BGPDampHalfLife is the flap-damping
	// penalty half-life (zero = 2× hold).
	BGPHold         time.Duration
	BGPConnectRetry time.Duration
	BGPDampHalfLife time.Duration
}

// LoopbackIface is the conventional name of the loopback a BGP-enabled VM
// carries: the router ID as a /32, advertised into OSPF as a stub so iBGP
// sessions can peer on loopbacks like real deployments do.
const LoopbackIface = "lo"

// Router is the assembled routing control platform of one VM: a RIB shared
// by a zebra-like connected-route manager, an ospfd instance and (when the
// configuration carries a `router bgp` stanza) a bgpd speaker, all built
// from the parsed configuration files.
type Router struct {
	cfg  *Config
	clk  clock.Clock
	rib  *rib.RIB
	ospf *ospf.Instance
	bgp  *bgp.Speaker

	mu       sync.Mutex
	attached map[string]InterfaceConfig
	ospfIfcs map[string]*ospf.Interface
	bgpSend  bgp.SendFunc
}

// NewRouter builds a router from configuration (parse + validate first).
func NewRouter(cfg *Config, clk clock.Clock, timers Timers) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.System()
	}
	r := rib.New()
	inst, err := ospf.New(ospf.Config{
		RouterID:      cfg.RouterID,
		RIB:           r,
		Clock:         clk,
		HelloInterval: timers.Hello,
		DeadInterval:  timers.Dead,
		SPFDelay:      timers.SPFDelay,
	})
	if err != nil {
		return nil, err
	}
	rt := &Router{cfg: cfg, clk: clk, rib: r, ospf: inst,
		attached: make(map[string]InterfaceConfig),
		ospfIfcs: make(map[string]*ospf.Interface)}
	if cfg.BGP != nil {
		speaker, err := bgp.New(bgp.Config{
			ASN:          cfg.BGP.ASN,
			RouterID:     cfg.RouterID,
			RIB:          r,
			Clock:        clk,
			Send:         rt.sendBGP,
			LocalAddr:    rt.bgpLocalAddr,
			HoldTime:     timers.BGPHold,
			ConnectRetry: timers.BGPConnectRetry,
			DampHalfLife: timers.BGPDampHalfLife,
			Redistribute: redistributeSources(cfg.BGP.Redistribute),
			Networks:     cfg.BGP.Networks,
		})
		if err != nil {
			return nil, err
		}
		rt.bgp = speaker
		for _, n := range cfg.BGP.Neighbors {
			speaker.AddNeighbor(n.Addr, n.ASN)
		}
		// The loopback: connected /32 on the router ID plus an OSPF stub
		// advertisement, so iBGP peers can reach us by router ID through the
		// IGP. The interface has no port; its OSPF side never forms an
		// adjacency (send is a no-op).
		loop := netip.PrefixFrom(cfg.RouterID, 32)
		if err := r.Add(rib.Route{Prefix: loop, Iface: LoopbackIface,
			Source: rib.SourceConnected}); err != nil {
			return nil, err
		}
		if _, err := inst.AddInterface(LoopbackIface, loop, 1,
			func(netip.Addr, []byte) {}); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// redistributeSources maps bgpd.conf redistribute statements to RIB sources.
func redistributeSources(protos []string) []rib.Source {
	var out []rib.Source
	for _, p := range protos {
		switch p {
		case "connected":
			out = append(out, rib.SourceConnected)
		case "static":
			out = append(out, rib.SourceStatic)
		case "ospf":
			out = append(out, rib.SourceOSPF)
		}
	}
	return out
}

// sendBGP forwards a speaker message through the transport installed by the
// VM (SetBGPTransport). Messages before the transport exists are dropped —
// the FSM retries.
func (r *Router) sendBGP(src, dst netip.Addr, payload []byte) {
	r.mu.Lock()
	send := r.bgpSend
	r.mu.Unlock()
	if send != nil {
		send(src, dst, payload)
	}
}

// SetBGPTransport installs the function that carries BGP messages onto the
// network (the VM's TCP-like channel originate path).
func (r *Router) SetBGPTransport(send bgp.SendFunc) {
	r.mu.Lock()
	r.bgpSend = send
	r.mu.Unlock()
}

// bgpLocalAddr picks the session-local address for a peer: the interface
// address sharing a subnet with the peer (directly connected eBGP), else the
// router ID (loopback iBGP peering).
func (r *Router) bgpLocalAddr(peer netip.Addr) netip.Addr {
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, ic := range r.cfg.Interfaces {
		if ic.Address.IsValid() && ic.Address.Masked().Contains(peer) {
			return ic.Address.Addr()
		}
	}
	return r.cfg.RouterID
}

// RIB returns the router's RIB (the VM's FIB view).
func (r *Router) RIB() *rib.RIB { return r.rib }

// OSPF returns the ospfd instance.
func (r *Router) OSPF() *ospf.Instance { return r.ospf }

// BGP returns the bgpd speaker, or nil when the configuration has no
// `router bgp` stanza.
func (r *Router) BGP() *bgp.Speaker { return r.bgp }

// DeliverBGP hands a received BGP message (port-179 TCP payload) to bgpd.
func (r *Router) DeliverBGP(src netip.Addr, payload []byte) {
	if r.bgp != nil {
		r.bgp.Deliver(src, payload)
	}
}

// AddBGPNeighbor upserts a neighbor into the running configuration and the
// live speaker (the RPC server reconfigures border VMs as eBGP links are
// discovered and iBGP meshes grow). No-op on a BGP-less router.
func (r *Router) AddBGPNeighbor(addr netip.Addr, remoteASN uint32) {
	if r.bgp == nil {
		return
	}
	r.cfg.mu.Lock()
	found := false
	for i, n := range r.cfg.BGP.Neighbors {
		if n.Addr == addr {
			r.cfg.BGP.Neighbors[i].ASN = remoteASN
			found = true
			break
		}
	}
	if !found {
		r.cfg.BGP.Neighbors = append(r.cfg.BGP.Neighbors, BGPNeighbor{Addr: addr, ASN: remoteASN})
	}
	r.cfg.mu.Unlock()
	r.bgp.AddNeighbor(addr, remoteASN)
}

// RemoveBGPNeighbor removes a neighbor from configuration and speaker.
func (r *Router) RemoveBGPNeighbor(addr netip.Addr) {
	if r.bgp == nil {
		return
	}
	r.cfg.mu.Lock()
	nbs := r.cfg.BGP.Neighbors[:0]
	for _, n := range r.cfg.BGP.Neighbors {
		if n.Addr != addr {
			nbs = append(nbs, n)
		}
	}
	r.cfg.BGP.Neighbors = nbs
	r.cfg.mu.Unlock()
	r.bgp.RemoveNeighbor(addr)
}

// IsLocalAddr reports whether addr is one of the router's own addresses
// (any configured interface or the loopback of a BGP-enabled router).
func (r *Router) IsLocalAddr(addr netip.Addr) bool {
	if r.bgp != nil && addr == r.cfg.RouterID {
		return true
	}
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, ic := range r.cfg.Interfaces {
		if ic.Address.IsValid() && ic.Address.Addr() == addr {
			return true
		}
	}
	return false
}

// Config returns the router's configuration.
func (r *Router) Config() *Config { return r.cfg }

// Hostname returns the configured hostname.
func (r *Router) Hostname() string { return r.cfg.Hostname }

// ospfEnabled reports whether addr falls inside any `network ... area`
// statement.
func (r *Router) ospfEnabled(addr netip.Addr) bool {
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, n := range r.cfg.Networks {
		if n.Contains(addr) {
			return true
		}
	}
	return false
}

// Attach brings up a configured interface: the connected route is installed
// and, if the address is covered by an OSPF network statement, the
// interface joins the OSPF process using send as its transmit path. The
// returned interface is nil when OSPF is not enabled on it.
func (r *Router) Attach(name string, send ospf.SendFunc) (*ospf.Interface, error) {
	var ic *InterfaceConfig
	r.cfg.mu.RLock()
	for i := range r.cfg.Interfaces {
		if r.cfg.Interfaces[i].Name == name {
			// Copy: a concurrent AddInterfaceConfig may regrow the slice.
			cp := r.cfg.Interfaces[i]
			ic = &cp
			break
		}
	}
	r.cfg.mu.RUnlock()
	if ic == nil {
		return nil, fmt.Errorf("quagga: interface %s not in configuration", name)
	}
	r.mu.Lock()
	if _, dup := r.attached[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("quagga: interface %s already attached", name)
	}
	r.attached[name] = *ic
	r.mu.Unlock()

	if err := r.rib.Add(rib.Route{
		Prefix: ic.Address.Masked(),
		Iface:  name,
		Source: rib.SourceConnected,
	}); err != nil {
		return nil, err
	}
	if ic.Passive || !r.ospfEnabled(ic.Address.Addr()) {
		return nil, nil
	}
	ifc, err := r.ospf.AddInterface(name, ic.Address, ic.Cost, send)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.ospfIfcs[name] = ifc
	r.mu.Unlock()
	return ifc, nil
}

// Detach tears an interface down: OSPF leaves it and the connected route is
// withdrawn.
func (r *Router) Detach(name string) {
	r.mu.Lock()
	ic, ok := r.attached[name]
	delete(r.attached, name)
	r.mu.Unlock()
	if !ok {
		return
	}
	r.ospf.RemoveInterface(name)
	r.mu.Lock()
	delete(r.ospfIfcs, name)
	r.mu.Unlock()
	r.rib.Remove(ic.Address.Masked(), rib.SourceConnected, netip.Addr{})
}

// AddInterfaceConfig upserts an interface stanza into the running
// configuration (the RPC server reconfigures VMs dynamically as links are
// discovered and re-applies configuration on reconciliation). An existing
// stanza with the same name is replaced, so re-applies converge instead of
// erroring. Attach must still be called to bring the interface up.
func (r *Router) AddInterfaceConfig(ic InterfaceConfig) error {
	if !ic.Address.IsValid() || !ic.Address.Addr().Is4() {
		return fmt.Errorf("quagga: interface %s needs an IPv4 address", ic.Name)
	}
	r.cfg.mu.Lock()
	defer r.cfg.mu.Unlock()
	for i, ex := range r.cfg.Interfaces {
		if ex.Name == ic.Name {
			r.cfg.Interfaces[i] = ic
			return nil
		}
	}
	r.cfg.Interfaces = append(r.cfg.Interfaces, ic)
	return nil
}

// AddNetwork appends an OSPF network statement at runtime.
func (r *Router) AddNetwork(p netip.Prefix) {
	r.cfg.mu.Lock()
	defer r.cfg.mu.Unlock()
	for _, ex := range r.cfg.Networks {
		if ex == p {
			return
		}
	}
	r.cfg.Networks = append(r.cfg.Networks, p)
}

// Attached reports whether the named interface is currently up (brought up
// by Attach and not since Detach-ed).
func (r *Router) Attached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.attached[name]
	return ok
}

// InterfaceAddr returns the configured address of an interface.
func (r *Router) InterfaceAddr(name string) (netip.Prefix, bool) {
	r.cfg.mu.RLock()
	defer r.cfg.mu.RUnlock()
	for _, ic := range r.cfg.Interfaces {
		if ic.Name == name {
			return ic.Address, true
		}
	}
	return netip.Prefix{}, false
}

// Start launches the daemons.
func (r *Router) Start() {
	r.ospf.Start()
	if r.bgp != nil {
		r.bgp.Start()
	}
}

// Stop halts the daemons.
func (r *Router) Stop() {
	r.ospf.Stop()
	if r.bgp != nil {
		r.bgp.Stop()
	}
}

// ShowIPRoute renders the RIB in vtysh `show ip route` style.
func (r *Router) ShowIPRoute() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip route\n", r.cfg.Hostname)
	codes := map[rib.Source]string{
		rib.SourceConnected: "C",
		rib.SourceStatic:    "S",
		rib.SourceOSPF:      "O",
		rib.SourceEBGP:      "B",
		rib.SourceIBGP:      "B",
	}
	for _, rt := range r.rib.Best() {
		code := codes[rt.Source]
		if code == "" {
			code = "?"
		}
		fmt.Fprintf(&b, "%s>* %s\n", code, rt)
	}
	return b.String()
}

// ShowOSPFNeighbors renders `show ip ospf neighbor`.
func (r *Router) ShowOSPFNeighbors() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip ospf neighbor\n", r.cfg.Hostname)
	nbs := r.ospf.Neighbors()
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].Interface < nbs[j].Interface })
	for _, n := range nbs {
		fmt.Fprintf(&b, "%-15s %-6s %-15s %s\n", n.RouterID, n.State, n.Addr, n.Interface)
	}
	return b.String()
}

// OSPFInterface returns the attached OSPF interface with the given name, or
// nil when the interface is not attached or not OSPF-enabled.
func (r *Router) OSPFInterface(name string) *ospf.Interface {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ospfIfcs[name]
}

package quagga

import (
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"routeflow/internal/rib"
)

var updateGolden = flag.Bool("update", false, "rewrite golden configuration files")

func sampleConfig() *Config {
	return &Config{
		Hostname: "vm-0000000000000001",
		RouterID: netip.MustParseAddr("10.255.0.1"),
		Interfaces: []InterfaceConfig{
			{Name: "eth1", Address: netip.MustParsePrefix("172.16.0.1/30"), Cost: 10},
			{Name: "eth2", Address: netip.MustParsePrefix("172.16.0.5/30"), Cost: 20},
		},
		Networks: []netip.Prefix{netip.MustParsePrefix("172.16.0.0/16")},
		BGP: &BGPConfig{ASN: 65001, Neighbors: []BGPNeighbor{
			{Addr: netip.MustParseAddr("172.16.0.2"), ASN: 65002},
		}},
	}
}

func TestZebraConfRendering(t *testing.T) {
	z := sampleConfig().ZebraConf()
	for _, want := range []string{
		"hostname vm-0000000000000001",
		"interface eth1",
		"ip address 172.16.0.1/30",
		"interface eth2",
	} {
		if !strings.Contains(z, want) {
			t.Fatalf("zebra.conf missing %q:\n%s", want, z)
		}
	}
}

func TestOSPFConfRendering(t *testing.T) {
	o := sampleConfig().OSPFConf()
	for _, want := range []string{
		"router ospf",
		"ospf router-id 10.255.0.1",
		"network 172.16.0.0/16 area 0.0.0.0",
		"ip ospf cost 10",
		"ip ospf cost 20",
	} {
		if !strings.Contains(o, want) {
			t.Fatalf("ospfd.conf missing %q:\n%s", want, o)
		}
	}
}

func TestBGPConfRendering(t *testing.T) {
	c := sampleConfig()
	b := c.BGPConf()
	for _, want := range []string{"router bgp 65001", "neighbor 172.16.0.2 remote-as 65002"} {
		if !strings.Contains(b, want) {
			t.Fatalf("bgpd.conf missing %q:\n%s", want, b)
		}
	}
	c.BGP = nil
	if !strings.Contains(c.BGPConf(), "bgp disabled") {
		t.Fatal("disabled BGP placeholder missing")
	}
}

// goldenConfig is a border router's full configuration: OSPF-active and
// passive interfaces, BGP networks, neighbors and redistribution — every
// directive the three renderers can emit.
func goldenConfig() *Config {
	return &Config{
		Hostname: "vm-000000000000000a",
		RouterID: netip.MustParseAddr("10.255.0.7"),
		Interfaces: []InterfaceConfig{
			{Name: "eth1", Address: netip.MustParsePrefix("172.16.0.1/30"), Cost: 10},
			{Name: "eth2", Address: netip.MustParsePrefix("172.16.0.5/30"), Cost: 20, Passive: true},
			{Name: "eth3", Address: netip.MustParsePrefix("10.7.0.1/24"), Cost: 10},
		},
		Networks: []netip.Prefix{
			netip.MustParsePrefix("172.16.0.0/16"),
			netip.MustParsePrefix("10.7.0.0/24"),
		},
		BGP: &BGPConfig{
			ASN: 64512,
			Neighbors: []BGPNeighbor{
				{Addr: netip.MustParseAddr("172.16.0.6"), ASN: 64513},
				{Addr: netip.MustParseAddr("10.255.0.9"), ASN: 64512},
			},
			Networks:     []netip.Prefix{netip.MustParsePrefix("10.255.0.7/32")},
			Redistribute: []string{"ospf", "connected"},
		},
	}
}

// TestGoldenConfRendering pins the byte-exact output of all three
// configuration renderers against checked-in golden files (refresh
// deliberately with `go test ./internal/quagga -run Golden -update`).
func TestGoldenConfRendering(t *testing.T) {
	c := goldenConfig()
	renders := map[string]string{
		"zebra.conf.golden": c.ZebraConf(),
		"ospfd.conf.golden": c.OSPFConf(),
		"bgpd.conf.golden":  c.BGPConf(),
	}
	for name, got := range renders {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden file:\n--- got ---\n%s--- want ---\n%s",
				name, got, want)
		}
	}
	// The golden configuration must round-trip through the parser.
	parsed, err := Parse(renders["zebra.conf.golden"] + renders["ospfd.conf.golden"] + renders["bgpd.conf.golden"])
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Validate(); err != nil {
		t.Fatal(err)
	}
	if parsed.BGP == nil || parsed.BGP.ASN != 64512 ||
		len(parsed.BGP.Neighbors) != 2 || len(parsed.BGP.Networks) != 1 ||
		len(parsed.BGP.Redistribute) != 2 {
		t.Fatalf("bgp round trip = %+v", parsed.BGP)
	}
	var passive int
	for _, ic := range parsed.Interfaces {
		if ic.Passive {
			passive++
			if ic.Name != "eth2" {
				t.Fatalf("wrong passive interface %q", ic.Name)
			}
		}
	}
	if passive != 1 {
		t.Fatalf("%d passive interfaces round-tripped, want 1", passive)
	}
}

func TestFilesMap(t *testing.T) {
	files := sampleConfig().Files()
	for _, name := range []string{"zebra.conf", "ospfd.conf", "bgpd.conf"} {
		if files[name] == "" {
			t.Fatalf("%s missing", name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := sampleConfig()
	text := orig.ZebraConf() + orig.OSPFConf() + orig.BGPConf()
	got, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hostname != orig.Hostname || got.RouterID != orig.RouterID {
		t.Fatalf("identity = %s/%v", got.Hostname, got.RouterID)
	}
	if len(got.Interfaces) != 2 {
		t.Fatalf("interfaces = %+v", got.Interfaces)
	}
	if got.Interfaces[0].Address != orig.Interfaces[0].Address ||
		got.Interfaces[0].Cost != orig.Interfaces[0].Cost {
		t.Fatalf("iface0 = %+v", got.Interfaces[0])
	}
	if len(got.Networks) != 1 || got.Networks[0] != orig.Networks[0] {
		t.Fatalf("networks = %v", got.Networks)
	}
	if got.BGP == nil || got.BGP.ASN != 65001 || len(got.BGP.Neighbors) != 1 {
		t.Fatalf("bgp = %+v", got.BGP)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"interface",             // missing name
		"ip address 1.2.3.4/24", // ip outside interface stanza
		"interface e0\nip address bogus",
		"router rip",               // unsupported process
		"network 1.0.0.0/8 area 0", // network outside router ospf
		"router ospf\nnetwork nope area 0.0.0.0",
		"flurble",
		"router bgp abc",
		"router bgp 1\nneighbor x remote-as 2",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestValidate(t *testing.T) {
	c := sampleConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Config embeds a lock, so build each bad variant fresh instead of
	// copying the sample by value.
	bad := sampleConfig()
	bad.Hostname = ""
	if bad.Validate() == nil {
		t.Fatal("missing hostname accepted")
	}
	bad = sampleConfig()
	bad.Networks = []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}
	if bad.Validate() == nil {
		t.Fatal("uncovered network accepted")
	}
	bad = sampleConfig()
	bad.Interfaces = append([]InterfaceConfig{}, c.Interfaces...)
	bad.Interfaces = append(bad.Interfaces, c.Interfaces[0])
	if bad.Validate() == nil {
		t.Fatal("duplicate interface accepted")
	}
	bad = sampleConfig()
	bad.Interfaces = []InterfaceConfig{{Name: "e0"}}
	bad.Networks = nil
	if bad.Validate() == nil {
		t.Fatal("unaddressed interface accepted")
	}
}

func fastTimers() Timers {
	return Timers{Hello: 20 * time.Millisecond, Dead: 80 * time.Millisecond,
		SPFDelay: 5 * time.Millisecond}
}

func TestRouterAttachInstallsConnected(t *testing.T) {
	r, err := NewRouter(sampleConfig(), nil, fastTimers())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ifc, err := r.Attach("eth1", func(netip.Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if ifc == nil {
		t.Fatal("eth1 is inside the OSPF network statement; expected an OSPF interface")
	}
	rt, ok := r.RIB().Lookup(netip.MustParseAddr("172.16.0.2"))
	if !ok || rt.Source != rib.SourceConnected || rt.Iface != "eth1" {
		t.Fatalf("connected route = %v, %v", rt, ok)
	}
	if _, err := r.Attach("eth1", nil); err == nil {
		t.Fatal("double attach accepted")
	}
	if _, err := r.Attach("ghost", nil); err == nil {
		t.Fatal("unknown interface accepted")
	}
}

func TestRouterOSPFScopedByNetworkStatement(t *testing.T) {
	cfg := sampleConfig()
	cfg.Interfaces = append(cfg.Interfaces, InterfaceConfig{
		Name: "mgmt0", Address: netip.MustParsePrefix("192.168.50.1/24")})
	r, err := NewRouter(cfg, nil, fastTimers())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ifc, err := r.Attach("mgmt0", func(netip.Addr, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if ifc != nil {
		t.Fatal("mgmt0 outside network statements must not join OSPF")
	}
}

func TestRouterDetach(t *testing.T) {
	r, _ := NewRouter(sampleConfig(), nil, fastTimers())
	defer r.Stop()
	r.Attach("eth1", func(netip.Addr, []byte) {}) //nolint:errcheck
	r.Detach("eth1")
	if _, ok := r.RIB().Lookup(netip.MustParseAddr("172.16.0.1")); ok {
		t.Fatal("connected route survived detach")
	}
	r.Detach("eth1") // idempotent
}

func TestRouterShowCommands(t *testing.T) {
	r, _ := NewRouter(sampleConfig(), nil, fastTimers())
	defer r.Stop()
	r.Attach("eth1", func(netip.Addr, []byte) {}) //nolint:errcheck
	routes := r.ShowIPRoute()
	if !strings.Contains(routes, "C>*") || !strings.Contains(routes, "172.16.0.0/30") {
		t.Fatalf("show ip route:\n%s", routes)
	}
	if !strings.Contains(r.ShowOSPFNeighbors(), "show ip ospf neighbor") {
		t.Fatal("neighbor header missing")
	}
	if r.Hostname() != "vm-0000000000000001" {
		t.Fatal("hostname accessor")
	}
	if _, ok := r.InterfaceAddr("eth1"); !ok {
		t.Fatal("InterfaceAddr")
	}
	if _, ok := r.InterfaceAddr("nope"); ok {
		t.Fatal("InterfaceAddr ghost")
	}
}

func TestTwoRoutersConvergeFromGeneratedConfigs(t *testing.T) {
	// End to end inside quagga: generate configs for two routers sharing a
	// /30, parse them back, build routers, wire the OSPF interfaces
	// directly, and expect OSPF routes.
	mk := func(host, id, addr string, lan string) *Config {
		return &Config{
			Hostname: host,
			RouterID: netip.MustParseAddr(id),
			Interfaces: []InterfaceConfig{
				{Name: "eth1", Address: netip.MustParsePrefix(addr), Cost: 10},
				{Name: "lan0", Address: netip.MustParsePrefix(lan), Cost: 10},
			},
			Networks: []netip.Prefix{
				netip.MustParsePrefix("172.16.0.0/16"),
				netip.MustParsePrefix("10.0.0.0/8"),
			},
		}
	}
	cfgA, err := Parse(mk("vm-a", "10.255.0.1", "172.16.0.1/30", "10.1.0.1/24").ZebraConf() +
		mk("vm-a", "10.255.0.1", "172.16.0.1/30", "10.1.0.1/24").OSPFConf())
	if err != nil {
		t.Fatal(err)
	}
	cfgB := mk("vm-b", "10.255.0.2", "172.16.0.2/30", "10.2.0.1/24")

	ra, err := NewRouter(cfgA, nil, fastTimers())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRouter(cfgB, nil, fastTimers())
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Stop()
	defer rb.Stop()

	abCh := make(chan []byte, 256)
	baCh := make(chan []byte, 256)
	ifcA, err := ra.Attach("eth1", func(_ netip.Addr, p []byte) { abCh <- p })
	if err != nil || ifcA == nil {
		t.Fatalf("attach A: %v %v", ifcA, err)
	}
	ifcB, err := rb.Attach("eth1", func(_ netip.Addr, p []byte) { baCh <- p })
	if err != nil || ifcB == nil {
		t.Fatalf("attach B: %v %v", ifcB, err)
	}
	ra.Attach("lan0", func(netip.Addr, []byte) {}) //nolint:errcheck
	rb.Attach("lan0", func(netip.Addr, []byte) {}) //nolint:errcheck
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case p := <-abCh:
				ifcB.Deliver(netip.MustParseAddr("172.16.0.1"), p)
			case p := <-baCh:
				ifcA.Deliver(netip.MustParseAddr("172.16.0.2"), p)
			case <-done:
				return
			}
		}
	}()
	ra.Start()
	rb.Start()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt, ok := ra.RIB().Lookup(netip.MustParseAddr("10.2.0.5")); ok &&
			rt.Source == rib.SourceOSPF {
			if !strings.Contains(ra.ShowIPRoute(), "O>*") {
				t.Fatal("show ip route missing OSPF code")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("routers built from generated configs never exchanged routes")
}

// Package ospf implements the OSPFv2 routing protocol the paper's virtual
// machines run (the ospfd of the Quagga routing control platform, §2.1 "we
// ... use OSPF as a routing protocol"). The implementation speaks real OSPF
// wire formats — Hello packets and Link State Updates carrying Router-LSAs
// with RFC 905 Fletcher checksums — over point-to-point interfaces, runs the
// neighbor state machine (Down → Init → Full with hello/dead timers), floods
// and ages LSAs, and computes routes with Dijkstra SPF into the VM's RIB.
//
// Simplifications relative to RFC 2328, documented for reviewers: only
// point-to-point interfaces (RouteFlow's virtual links are p2p, so no
// DR/BDR election is ever needed); adjacencies skip the DBD/LSR negotiation
// and instead exchange full LSDBs on reaching Full (equivalent outcome on
// p2p links); a single area (0.0.0.0); Router-LSAs only (sufficient to
// route every link subnet in a p2p mesh). Timer semantics — HelloInterval,
// RouterDeadInterval, SPF delay — follow the RFC and dominate convergence
// time exactly as in the paper's testbed.
package ospf

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"routeflow/internal/pkt"
)

// Protocol constants.
const (
	ProtoVersion = 2
	headerLen    = 24

	typeHello    = 1
	typeLSUpdate = 4

	// AllSPFRouters is the OSPF multicast group.
	AllSPFRouters = "224.0.0.5"

	// MaxAge is the LSA expiry age in seconds.
	MaxAge = 3600
	// InitialSeq is the first LSA sequence number (RFC 2328 §12.1.6).
	InitialSeq = 0x80000001
)

// header is the common 24-byte OSPF packet header (area 0, null auth).
type header struct {
	Type     uint8
	RouterID uint32
}

func u32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

func addr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

func marshalPacket(h header, body []byte) []byte {
	b := make([]byte, headerLen+len(body))
	b[0] = ProtoVersion
	b[1] = h.Type
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	binary.BigEndian.PutUint32(b[4:], h.RouterID)
	// area ID 0.0.0.0, checksum 0 (filled below), autype 0, auth 0.
	copy(b[headerLen:], body)
	binary.BigEndian.PutUint16(b[12:], pkt.Checksum(b))
	return b
}

func parsePacket(b []byte) (header, []byte, error) {
	if len(b) < headerLen {
		return header{}, nil, fmt.Errorf("ospf: packet of %d bytes", len(b))
	}
	if b[0] != ProtoVersion {
		return header{}, nil, fmt.Errorf("ospf: version %d", b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < headerLen || length > len(b) {
		return header{}, nil, fmt.Errorf("ospf: length %d of %d", length, len(b))
	}
	if pkt.Checksum(b[:length]) != 0 {
		return header{}, nil, fmt.Errorf("ospf: header checksum mismatch")
	}
	h := header{Type: b[1], RouterID: binary.BigEndian.Uint32(b[4:])}
	return h, b[headerLen:length], nil
}

// hello is the OSPF Hello body for p2p interfaces.
type hello struct {
	NetMask       uint32
	HelloInterval uint16
	DeadInterval  uint32
	Neighbors     []uint32 // router IDs heard on this interface
}

func (h *hello) marshal() []byte {
	b := make([]byte, 20+4*len(h.Neighbors))
	binary.BigEndian.PutUint32(b[0:], h.NetMask)
	binary.BigEndian.PutUint16(b[4:], h.HelloInterval)
	b[6] = 0x02 // options: E-bit
	b[7] = 1    // router priority
	binary.BigEndian.PutUint32(b[8:], h.DeadInterval)
	// DR and BDR stay 0.0.0.0 on p2p links.
	for i, n := range h.Neighbors {
		binary.BigEndian.PutUint32(b[20+4*i:], n)
	}
	return b
}

func parseHello(b []byte) (*hello, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("ospf: hello of %d bytes", len(b))
	}
	h := &hello{
		NetMask:       binary.BigEndian.Uint32(b[0:]),
		HelloInterval: binary.BigEndian.Uint16(b[4:]),
		DeadInterval:  binary.BigEndian.Uint32(b[8:]),
	}
	for off := 20; off+4 <= len(b); off += 4 {
		h.Neighbors = append(h.Neighbors, binary.BigEndian.Uint32(b[off:]))
	}
	return h, nil
}

// Router-LSA link types (RFC 2328 §A.4.2).
const (
	linkP2P  = 1
	linkStub = 3
)

// rlaLink is one link advertised in a Router-LSA.
type rlaLink struct {
	ID     uint32 // p2p: neighbor router ID; stub: network address
	Data   uint32 // p2p: local interface address; stub: network mask
	Type   uint8
	Metric uint16
}

// lsa is a Router-LSA (the only type this implementation originates).
type lsa struct {
	Age       uint16
	AdvRouter uint32 // == Link State ID for Router-LSAs
	Seq       uint32
	Links     []rlaLink
}

const lsaHeaderLen = 20

// marshal encodes the LSA with its Fletcher checksum.
func (l *lsa) marshal() []byte {
	b := make([]byte, lsaHeaderLen+4+12*len(l.Links))
	binary.BigEndian.PutUint16(b[0:], l.Age)
	b[2] = 0x02                                    // options
	b[3] = 1                                       // type: Router-LSA
	binary.BigEndian.PutUint32(b[4:], l.AdvRouter) // link state ID
	binary.BigEndian.PutUint32(b[8:], l.AdvRouter) // advertising router
	binary.BigEndian.PutUint32(b[12:], l.Seq)
	binary.BigEndian.PutUint16(b[18:], uint16(len(b)))
	// body
	binary.BigEndian.PutUint16(b[22:], uint16(len(l.Links)))
	for i, ln := range l.Links {
		off := lsaHeaderLen + 4 + 12*i
		binary.BigEndian.PutUint32(b[off:], ln.ID)
		binary.BigEndian.PutUint32(b[off+4:], ln.Data)
		b[off+8] = ln.Type
		binary.BigEndian.PutUint16(b[off+10:], ln.Metric)
	}
	binary.BigEndian.PutUint16(b[16:], fletcher16(b[2:], 14))
	return b
}

func parseLSA(b []byte) (*lsa, int, error) {
	if len(b) < lsaHeaderLen {
		return nil, 0, fmt.Errorf("ospf: lsa header of %d bytes", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[18:]))
	if length < lsaHeaderLen || length > len(b) {
		return nil, 0, fmt.Errorf("ospf: lsa length %d of %d", length, len(b))
	}
	if b[3] != 1 {
		// Unknown LSA types are skipped by the caller.
		return nil, length, nil
	}
	if got := fletcher16(b[2:length], 14); got != binary.BigEndian.Uint16(b[16:]) {
		return nil, 0, fmt.Errorf("ospf: lsa fletcher checksum mismatch")
	}
	l := &lsa{
		Age:       binary.BigEndian.Uint16(b[0:]),
		AdvRouter: binary.BigEndian.Uint32(b[8:]),
		Seq:       binary.BigEndian.Uint32(b[12:]),
	}
	if length < lsaHeaderLen+4 {
		return nil, 0, fmt.Errorf("ospf: router lsa without body")
	}
	n := int(binary.BigEndian.Uint16(b[22:]))
	if lsaHeaderLen+4+12*n > length {
		return nil, 0, fmt.Errorf("ospf: router lsa link count %d overflows", n)
	}
	for i := 0; i < n; i++ {
		off := lsaHeaderLen + 4 + 12*i
		l.Links = append(l.Links, rlaLink{
			ID:     binary.BigEndian.Uint32(b[off:]),
			Data:   binary.BigEndian.Uint32(b[off+4:]),
			Type:   b[off+8],
			Metric: binary.BigEndian.Uint16(b[off+10:]),
		})
	}
	return l, length, nil
}

// marshalLSUpdate packs LSAs into a Link State Update body.
func marshalLSUpdate(lsas []*lsa) []byte {
	var body []byte
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(lsas)))
	body = append(body, cnt[:]...)
	for _, l := range lsas {
		body = append(body, l.marshal()...)
	}
	return body
}

func parseLSUpdate(b []byte) ([]*lsa, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ospf: ls update of %d bytes", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	var out []*lsa
	for i := 0; i < n; i++ {
		l, consumed, err := parseLSA(b)
		if err != nil {
			return nil, err
		}
		if l != nil {
			out = append(out, l)
		}
		b = b[consumed:]
	}
	return out, nil
}

// fletcher16 computes the RFC 905 Annex B checksum over data with the
// checksum field (2 bytes at checkOff within data) treated as zero, and
// returns the value to place there so the whole block verifies.
func fletcher16(data []byte, checkOff int) uint16 {
	var c0, c1 int
	for i, v := range data {
		x := int(v)
		if i == checkOff || i == checkOff+1 {
			x = 0
		}
		c0 = (c0 + x) % 255
		c1 = (c1 + c0) % 255
	}
	// Compute the check bytes (X, Y) per RFC 905.
	x := ((len(data)-checkOff-1)*c0 - c1) % 255
	if x <= 0 {
		x += 255
	}
	y := 510 - c0 - x
	if y > 255 {
		y -= 255
	}
	return uint16(x)<<8 | uint16(y)
}

package ospf

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/rib"
)

// Default protocol timers (RFC 2328 defaults; the paper's convergence time
// is dominated by these).
const (
	DefaultHelloInterval = 10 * time.Second
	DefaultDeadInterval  = 40 * time.Second
	DefaultSPFDelay      = 200 * time.Millisecond
)

// NeighborState is the (reduced) neighbor FSM state.
type NeighborState int

// Neighbor states.
const (
	NeighborDown NeighborState = iota
	NeighborInit
	NeighborFull
)

// String names the state.
func (s NeighborState) String() string {
	switch s {
	case NeighborDown:
		return "Down"
	case NeighborInit:
		return "Init"
	case NeighborFull:
		return "Full"
	default:
		return fmt.Sprintf("NeighborState(%d)", int(s))
	}
}

// Config configures an OSPF instance (one per VM).
type Config struct {
	RouterID netip.Addr
	RIB      *rib.RIB
	Clock    clock.Clock

	HelloInterval time.Duration
	DeadInterval  time.Duration
	SPFDelay      time.Duration
}

// SendFunc transmits an OSPF payload (IP protocol 89 body) out an
// interface; dst is AllSPFRouters or a neighbor address. The owner (the VM)
// handles IP and Ethernet encapsulation.
type SendFunc func(dst netip.Addr, payload []byte)

// Interface is one OSPF-enabled point-to-point interface.
type Interface struct {
	inst *Instance
	name string
	addr netip.Prefix
	cost uint16
	send SendFunc

	mu       sync.Mutex
	neighbor *neighbor // p2p: at most one
}

type neighbor struct {
	routerID uint32
	addr     netip.Addr
	state    NeighborState
	lastSeen time.Time
}

// NeighborInfo is a snapshot for show commands and tests.
type NeighborInfo struct {
	RouterID  netip.Addr
	Addr      netip.Addr
	Interface string
	State     NeighborState
}

// Instance is one OSPF router.
type Instance struct {
	cfg Config
	clk clock.Clock

	mu     sync.Mutex
	ifaces map[string]*Interface
	lsdb   map[uint32]*lsa
	seq    uint32
	spfAt  time.Time // zero = no SPF scheduled
	spfRun uint64    // count of SPF executions

	started  bool
	stopped  bool
	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates an OSPF instance.
func New(cfg Config) (*Instance, error) {
	if !cfg.RouterID.Is4() {
		return nil, fmt.Errorf("ospf: router ID %v is not IPv4", cfg.RouterID)
	}
	if cfg.RIB == nil {
		return nil, fmt.Errorf("ospf: RIB is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = DefaultHelloInterval
	}
	if cfg.DeadInterval <= 0 {
		cfg.DeadInterval = DefaultDeadInterval
	}
	if cfg.SPFDelay <= 0 {
		cfg.SPFDelay = DefaultSPFDelay
	}
	return &Instance{
		cfg:    cfg,
		clk:    cfg.Clock,
		ifaces: make(map[string]*Interface),
		lsdb:   make(map[uint32]*lsa),
		seq:    InitialSeq,
		stop:   make(chan struct{}),
	}, nil
}

// RouterID returns the configured router ID.
func (i *Instance) RouterID() netip.Addr { return i.cfg.RouterID }

// AddInterface enables OSPF on a p2p interface. Safe before or after Start.
func (i *Instance) AddInterface(name string, addrPfx netip.Prefix, cost uint16, send SendFunc) (*Interface, error) {
	if !addrPfx.Addr().Is4() {
		return nil, fmt.Errorf("ospf: interface %s address %v is not IPv4", name, addrPfx)
	}
	if cost == 0 {
		cost = 10
	}
	ifc := &Interface{inst: i, name: name, addr: addrPfx, cost: cost, send: send}
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, dup := i.ifaces[name]; dup {
		return nil, fmt.Errorf("ospf: interface %s already enabled", name)
	}
	i.ifaces[name] = ifc
	i.originateLocked()
	return ifc, nil
}

// RemoveInterface disables OSPF on an interface.
func (i *Instance) RemoveInterface(name string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, ok := i.ifaces[name]; !ok {
		return
	}
	delete(i.ifaces, name)
	i.originateLocked()
	i.scheduleSPFLocked()
}

// Start launches the hello/dead/aging timers. Starting after Stop is a
// no-op (a VM may still be booting while its deployment is torn down).
func (i *Instance) Start() {
	i.mu.Lock()
	if i.started || i.stopped {
		i.mu.Unlock()
		return
	}
	i.started = true
	// Add under mu so a concurrent Stop either observes the counter or
	// prevents the start entirely — never an Add racing the Wait. The
	// initial hello burst below is fenced by the same WaitGroup: Stop may
	// overlap it but never returns before it finishes.
	i.wg.Add(2)
	i.mu.Unlock()
	go i.timerLoop()
	// First hello goes out immediately; neighbors answer within their next
	// hello, which is what makes cold-start convergence tractable.
	i.sendHellos()
	i.wg.Done()
}

// Stop halts the instance.
func (i *Instance) Stop() {
	i.stopOnce.Do(func() { close(i.stop) })
	i.mu.Lock()
	i.stopped = true
	i.mu.Unlock()
	i.wg.Wait()
}

// Neighbors returns a snapshot of all neighbors.
func (i *Instance) Neighbors() []NeighborInfo {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []NeighborInfo
	for _, ifc := range i.ifaces {
		ifc.mu.Lock()
		if n := ifc.neighbor; n != nil {
			out = append(out, NeighborInfo{
				RouterID: addr(n.routerID), Addr: n.addr,
				Interface: ifc.name, State: n.state,
			})
		}
		ifc.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Interface < out[b].Interface })
	return out
}

// LSDBSize returns the number of LSAs held.
func (i *Instance) LSDBSize() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.lsdb)
}

// SPFRuns returns how many times SPF has executed.
func (i *Instance) SPFRuns() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.spfRun
}

// FullNeighbors counts adjacencies in Full state.
func (i *Instance) FullNeighbors() int {
	n := 0
	for _, nb := range i.Neighbors() {
		if nb.State == NeighborFull {
			n++
		}
	}
	return n
}

func (i *Instance) timerLoop() {
	defer i.wg.Done()
	tick := i.clk.NewTicker(i.cfg.HelloInterval)
	defer tick.Stop()
	agingTick := i.clk.NewTicker(i.cfg.DeadInterval)
	defer agingTick.Stop()
	spfTick := i.clk.NewTicker(i.cfg.SPFDelay)
	defer spfTick.Stop()
	// Anti-entropy runs at a multiple of the aging period: frequent enough
	// to repair one-shot flood loss well inside any convergence budget,
	// rare enough that the full-LSDB resends stay a rounding error in the
	// steady-state packet load of a large fabric.
	const resendEvery = 4
	agingTicks := 0
	for {
		select {
		case <-tick.C():
			i.sendHellos()
			i.checkDeadNeighbors()
		case <-spfTick.C():
			i.maybeRunSPF()
		case <-agingTick.C():
			i.ageLSDB()
			if agingTicks++; agingTicks%resendEvery == 0 {
				i.resendLSDB()
			}
		case <-i.stop:
			return
		}
	}
}

// Deliver hands a received OSPF payload (IP proto 89 body) to the
// interface. Called by the VM's network stack.
func (ifc *Interface) Deliver(src netip.Addr, payload []byte) {
	h, body, err := parsePacket(payload)
	if err != nil || h.RouterID == u32(ifc.inst.cfg.RouterID) {
		return // malformed or our own multicast echo
	}
	switch h.Type {
	case typeHello:
		ifc.handleHello(h, src, body)
	case typeLSUpdate:
		ifc.handleLSUpdate(h, body)
	}
}

// Name returns the interface name.
func (ifc *Interface) Name() string { return ifc.name }

// Addr returns the interface address.
func (ifc *Interface) Addr() netip.Prefix { return ifc.addr }

func (ifc *Interface) handleHello(h header, src netip.Addr, body []byte) {
	hl, err := parseHello(body)
	if err != nil {
		return
	}
	// Timer agreement check (RFC 2328 §10.5), on wire values: the packet
	// carries whole seconds, so compare against what we ourselves advertise
	// (sub-second test timers encode as the same truncated value).
	if hl.HelloInterval != uint16(ifc.inst.cfg.HelloInterval/time.Second) ||
		hl.DeadInterval != uint32(ifc.inst.cfg.DeadInterval/time.Second) {
		return
	}
	inst := ifc.inst
	me := u32(inst.cfg.RouterID)
	seesMe := false
	for _, n := range hl.Neighbors {
		if n == me {
			seesMe = true
			break
		}
	}

	ifc.mu.Lock()
	nb := ifc.neighbor
	if nb == nil || nb.routerID != h.RouterID {
		nb = &neighbor{routerID: h.RouterID, addr: src, state: NeighborInit}
		ifc.neighbor = nb
	}
	nb.lastSeen = inst.clk.Now()
	nb.addr = src
	wasFull := nb.state == NeighborFull
	if seesMe {
		nb.state = NeighborFull
	} else {
		// 1-Way received (RFC 2328 §10.5): the neighbor no longer lists us,
		// so it restarted and lost its adjacency — and its database. Demote
		// to Init; the next two-way hello re-runs the becameFull database
		// exchange. Without the demotion a restarted neighbor whose outage
		// was shorter than the dead interval would never be sent our LSDB.
		nb.state = NeighborInit
	}
	becameFull := !wasFull && nb.state == NeighborFull
	ifc.mu.Unlock()

	if becameFull {
		// Adjacency established: re-originate (the p2p link is now
		// advertisable), send our full LSDB (database exchange stand-in),
		// and answer immediately so the neighbor also reaches Full without
		// waiting a full hello interval.
		inst.mu.Lock()
		inst.originateLocked()
		inst.mu.Unlock()
		if all := inst.snapshotLSDB(); len(all) > 0 {
			ifc.send(src, marshalPacket(header{Type: typeLSUpdate, RouterID: me},
				marshalLSUpdate(all)))
		}
		ifc.sendHello()
		inst.mu.Lock()
		inst.scheduleSPFLocked()
		inst.mu.Unlock()
	}
}

func (ifc *Interface) handleLSUpdate(h header, body []byte) {
	lsas, err := parseLSUpdate(body)
	if err != nil {
		return
	}
	inst := ifc.inst
	me := u32(inst.cfg.RouterID)
	var flood []*lsa
	inst.mu.Lock()
	for _, l := range lsas {
		if l.Age >= MaxAge {
			// Premature aging / flush.
			if cur, ok := inst.lsdb[l.AdvRouter]; ok && cur.Seq <= l.Seq {
				delete(inst.lsdb, l.AdvRouter)
				flood = append(flood, l)
				inst.scheduleSPFLocked()
			}
			continue
		}
		if l.AdvRouter == me {
			// Someone holds an old copy of our LSA; if it is newer than
			// ours, jump past it and re-originate.
			if l.Seq >= inst.seq {
				inst.seq = l.Seq + 1
				inst.originateLocked()
			}
			continue
		}
		cur, ok := inst.lsdb[l.AdvRouter]
		if ok && cur.Seq >= l.Seq {
			continue // stale or duplicate
		}
		inst.lsdb[l.AdvRouter] = l
		// Flood a copy: the stored LSA ages in place under inst.mu while
		// the flood marshals outside it.
		cp := *l
		flood = append(flood, &cp)
		inst.scheduleSPFLocked()
	}
	inst.mu.Unlock()
	if len(flood) > 0 {
		inst.floodExcept(ifc, flood)
	}
}

// snapshotLSDB copies the LSDB in AdvRouter order: the stored LSAs' ages
// are mutated in place under i.mu by ageLSDB, but marshalling happens
// outside the lock.
func (i *Instance) snapshotLSDB() []*lsa {
	i.mu.Lock()
	defer i.mu.Unlock()
	all := make([]*lsa, 0, len(i.lsdb))
	for _, l := range i.lsdb {
		cp := *l
		all = append(all, &cp)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].AdvRouter < all[b].AdvRouter })
	return all
}

// resendLSDB is the level-triggered repair under the event-triggered
// flooding: periodically re-send the full LSDB to every Full neighbor.
// Flooding is otherwise one-shot — a database dump or relayed update that
// dies on a down control session (a switch mid-failover re-dialing its new
// master, a congested punt queue) would never be retransmitted, wedging
// convergence forever. Receivers drop what they already hold (sequence
// dedup), install what the lost packet carried, and relay fresh installs
// onward, so any loss heals within a few dead intervals.
func (i *Instance) resendLSDB() {
	all := i.snapshotLSDB()
	if len(all) == 0 {
		return
	}
	pktBytes := marshalPacket(header{Type: typeLSUpdate, RouterID: u32(i.cfg.RouterID)},
		marshalLSUpdate(all))
	type target struct {
		ifc *Interface
		to  netip.Addr
	}
	i.mu.Lock()
	targets := make([]target, 0, len(i.ifaces))
	for _, ifc := range i.ifaces {
		ifc.mu.Lock()
		if nb := ifc.neighbor; nb != nil && nb.state == NeighborFull {
			targets = append(targets, target{ifc, nb.addr})
		}
		ifc.mu.Unlock()
	}
	i.mu.Unlock()
	for _, t := range targets {
		t.ifc.send(t.to, pktBytes)
	}
}

// floodExcept sends LSAs to every Full neighbor except via the arrival
// interface.
func (i *Instance) floodExcept(skip *Interface, lsas []*lsa) {
	me := u32(i.cfg.RouterID)
	pktBytes := marshalPacket(header{Type: typeLSUpdate, RouterID: me}, marshalLSUpdate(lsas))
	i.mu.Lock()
	targets := make([]*Interface, 0, len(i.ifaces))
	for _, ifc := range i.ifaces {
		if ifc == skip {
			continue
		}
		ifc.mu.Lock()
		ok := ifc.neighbor != nil && ifc.neighbor.state == NeighborFull
		ifc.mu.Unlock()
		if ok {
			targets = append(targets, ifc)
		}
	}
	i.mu.Unlock()
	mcast := netip.MustParseAddr(AllSPFRouters)
	for _, ifc := range targets {
		ifc.send(mcast, pktBytes)
	}
}

// originateLocked rebuilds our Router-LSA, stores it, and floods it.
// Callers hold i.mu.
func (i *Instance) originateLocked() {
	me := u32(i.cfg.RouterID)
	l := &lsa{AdvRouter: me, Seq: i.seq}
	i.seq++
	names := make([]string, 0, len(i.ifaces))
	for name := range i.ifaces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ifc := i.ifaces[name]
		ifc.mu.Lock()
		nb := ifc.neighbor
		if nb != nil && nb.state == NeighborFull {
			l.Links = append(l.Links, rlaLink{
				ID: nb.routerID, Data: u32(ifc.addr.Addr()),
				Type: linkP2P, Metric: ifc.cost,
			})
		}
		ifc.mu.Unlock()
		net := ifc.addr.Masked()
		mask := ^uint32(0) << uint(32-net.Bits())
		l.Links = append(l.Links, rlaLink{
			ID: u32(net.Addr()), Data: mask, Type: linkStub, Metric: ifc.cost,
		})
	}
	i.lsdb[me] = l
	i.scheduleSPFLocked()
	// Flood outside the lock.
	go i.floodExcept(nil, []*lsa{l})
}

func (i *Instance) sendHellos() {
	i.mu.Lock()
	ifaces := make([]*Interface, 0, len(i.ifaces))
	for _, ifc := range i.ifaces {
		ifaces = append(ifaces, ifc)
	}
	i.mu.Unlock()
	for _, ifc := range ifaces {
		ifc.sendHello()
	}
}

func (ifc *Interface) sendHello() {
	inst := ifc.inst
	net := ifc.addr.Masked()
	h := &hello{
		NetMask:       ^uint32(0) << uint(32-net.Bits()),
		HelloInterval: uint16(inst.cfg.HelloInterval / time.Second),
		DeadInterval:  uint32(inst.cfg.DeadInterval / time.Second),
	}
	ifc.mu.Lock()
	if ifc.neighbor != nil {
		h.Neighbors = append(h.Neighbors, ifc.neighbor.routerID)
	}
	ifc.mu.Unlock()
	payload := marshalPacket(header{Type: typeHello, RouterID: u32(inst.cfg.RouterID)}, h.marshal())
	ifc.send(netip.MustParseAddr(AllSPFRouters), payload)
}

func (i *Instance) checkDeadNeighbors() {
	now := i.clk.Now()
	i.mu.Lock()
	ifaces := make([]*Interface, 0, len(i.ifaces))
	for _, ifc := range i.ifaces {
		ifaces = append(ifaces, ifc)
	}
	i.mu.Unlock()
	changed := false
	for _, ifc := range ifaces {
		ifc.mu.Lock()
		if nb := ifc.neighbor; nb != nil && now.Sub(nb.lastSeen) >= i.cfg.DeadInterval {
			ifc.neighbor = nil
			changed = true
		}
		ifc.mu.Unlock()
	}
	if changed {
		i.mu.Lock()
		i.originateLocked()
		i.scheduleSPFLocked()
		i.mu.Unlock()
	}
}

// ageLSDB advances LSA ages and flushes MaxAge LSAs.
func (i *Instance) ageLSDB() {
	step := uint16(i.cfg.DeadInterval / time.Second)
	if step == 0 {
		step = 1
	}
	i.mu.Lock()
	me := u32(i.cfg.RouterID)
	changed := false
	for id, l := range i.lsdb {
		if id == me {
			continue // we refresh our own by re-origination
		}
		l.Age += step
		if l.Age >= MaxAge {
			delete(i.lsdb, id)
			changed = true
		}
	}
	if changed {
		i.scheduleSPFLocked()
	}
	i.mu.Unlock()
}

// scheduleSPFLocked arms the SPF holddown timer. Callers hold i.mu.
func (i *Instance) scheduleSPFLocked() {
	if i.spfAt.IsZero() {
		i.spfAt = i.clk.Now().Add(i.cfg.SPFDelay)
	}
}

// maybeRunSPF runs SPF if the holddown expired. Also invoked on demand from
// tests via RunSPFNow.
func (i *Instance) maybeRunSPF() {
	i.mu.Lock()
	due := !i.spfAt.IsZero() && !i.clk.Now().Before(i.spfAt)
	if due {
		i.spfAt = time.Time{}
	}
	i.mu.Unlock()
	if due {
		i.runSPF()
	}
}

// RunSPFNow forces an immediate SPF computation (tests, vtysh `clear`).
func (i *Instance) RunSPFNow() {
	i.mu.Lock()
	i.spfAt = time.Time{}
	i.mu.Unlock()
	i.runSPF()
}

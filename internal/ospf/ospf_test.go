package ospf

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"routeflow/internal/rib"
)

// fast protocol timers for tests (same ratios as the RFC defaults).
func fastConfig(id string, r *rib.RIB) Config {
	return Config{
		RouterID:      netip.MustParseAddr(id),
		RIB:           r,
		HelloInterval: 20 * time.Millisecond,
		DeadInterval:  80 * time.Millisecond,
		SPFDelay:      5 * time.Millisecond,
	}
}

// pipePair wires two OSPF interfaces with ordered asynchronous delivery and
// a kill switch.
type pipePair struct {
	aliveAB atomic.Bool
	aliveBA atomic.Bool
	ab      chan []byte
	ba      chan []byte
}

func newPipePair() *pipePair {
	p := &pipePair{ab: make(chan []byte, 1024), ba: make(chan []byte, 1024)}
	p.aliveAB.Store(true)
	p.aliveBA.Store(true)
	return p
}

func (p *pipePair) cut() { p.aliveAB.Store(false); p.aliveBA.Store(false) }

// connect links instance a (interface name an, address aAddr) with b.
func connect(t *testing.T, a *Instance, an string, aAddr string,
	b *Instance, bn string, bAddr string, cost uint16) *pipePair {
	t.Helper()
	p := newPipePair()
	apfx, bpfx := netip.MustParsePrefix(aAddr), netip.MustParsePrefix(bAddr)
	aifc, err := a.AddInterface(an, apfx, cost, func(dst netip.Addr, payload []byte) {
		if p.aliveAB.Load() {
			select {
			case p.ab <- payload:
			default:
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bifc, err := b.AddInterface(bn, bpfx, cost, func(dst netip.Addr, payload []byte) {
		if p.aliveBA.Load() {
			select {
			case p.ba <- payload:
			default:
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		for {
			select {
			case m := <-p.ab:
				if p.aliveAB.Load() {
					bifc.Deliver(apfx.Addr(), m)
				}
			case <-done:
				return
			}
		}
	}()
	go func() {
		for {
			select {
			case m := <-p.ba:
				if p.aliveBA.Load() {
					aifc.Deliver(bpfx.Addr(), m)
				}
			case <-done:
				return
			}
		}
	}()
	return p
}

// stubIface adds an interface with no neighbor (a leaf subnet).
func stubIface(t *testing.T, inst *Instance, name, cidr string) {
	t.Helper()
	if _, err := inst.AddInterface(name, netip.MustParsePrefix(cidr), 10,
		func(netip.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
}

func newRouter(t *testing.T, id string) (*Instance, *rib.RIB) {
	t.Helper()
	r := rib.New()
	inst, err := New(fastConfig(id, r))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Stop)
	return inst, r
}

func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHelloWireRoundTrip(t *testing.T) {
	h := &hello{NetMask: 0xfffffffc, HelloInterval: 10, DeadInterval: 40,
		Neighbors: []uint32{0x01010101, 0x02020202}}
	payload := marshalPacket(header{Type: typeHello, RouterID: 0x0a0a0a0a}, h.marshal())
	gh, body, err := parsePacket(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Type != typeHello || gh.RouterID != 0x0a0a0a0a {
		t.Fatalf("header = %+v", gh)
	}
	got, err := parseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetMask != h.NetMask || len(got.Neighbors) != 2 || got.Neighbors[1] != 0x02020202 {
		t.Fatalf("hello = %+v", got)
	}
}

func TestPacketChecksumRejectsCorruption(t *testing.T) {
	payload := marshalPacket(header{Type: typeHello, RouterID: 1}, (&hello{}).marshal())
	payload[headerLen] ^= 0xff
	if _, _, err := parsePacket(payload); err == nil {
		t.Fatal("corrupted packet accepted")
	}
	if _, _, err := parsePacket([]byte{2, 1}); err == nil {
		t.Fatal("runt accepted")
	}
	payload = marshalPacket(header{Type: typeHello, RouterID: 1}, nil)
	payload[0] = 3 // wrong version
	if _, _, err := parsePacket(payload); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLSAWireRoundTrip(t *testing.T) {
	l := &lsa{AdvRouter: 0x0a000001, Seq: InitialSeq, Age: 7, Links: []rlaLink{
		{ID: 0x0a000002, Data: 0xac100001, Type: linkP2P, Metric: 10},
		{ID: 0xac100000, Data: 0xfffffffc, Type: linkStub, Metric: 10},
	}}
	b := l.marshal()
	got, consumed, err := parseLSA(b)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(b) {
		t.Fatalf("consumed = %d of %d", consumed, len(b))
	}
	if got.AdvRouter != l.AdvRouter || got.Seq != l.Seq || len(got.Links) != 2 {
		t.Fatalf("lsa = %+v", got)
	}
	if got.Links[0] != l.Links[0] || got.Links[1] != l.Links[1] {
		t.Fatalf("links = %+v", got.Links)
	}
}

func TestLSAFletcherDetectsCorruption(t *testing.T) {
	l := &lsa{AdvRouter: 1, Seq: InitialSeq,
		Links: []rlaLink{{ID: 2, Data: 3, Type: linkP2P, Metric: 1}}}
	b := l.marshal()
	b[len(b)-1] ^= 0x01 // corrupt metric
	if _, _, err := parseLSA(b); err == nil {
		t.Fatal("corrupted LSA accepted")
	}
}

func TestLSUpdateRoundTrip(t *testing.T) {
	lsas := []*lsa{
		{AdvRouter: 1, Seq: InitialSeq, Links: []rlaLink{{ID: 9, Data: 8, Type: linkStub, Metric: 5}}},
		{AdvRouter: 2, Seq: InitialSeq + 3},
	}
	got, err := parseLSUpdate(marshalLSUpdate(lsas))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].AdvRouter != 1 || got[1].Seq != InitialSeq+3 {
		t.Fatalf("lsas = %+v", got)
	}
}

func TestLSAFletcherQuick(t *testing.T) {
	prop := func(advRouter, seq uint32, id, data uint32, metric uint16) bool {
		l := &lsa{AdvRouter: advRouter, Seq: seq, Links: []rlaLink{
			{ID: id, Data: data, Type: linkP2P, Metric: metric}}}
		got, _, err := parseLSA(l.marshal())
		return err == nil && got.AdvRouter == advRouter && got.Seq == seq &&
			got.Links[0].Metric == metric
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoRouterAdjacencyAndRoutes(t *testing.T) {
	a, ribA := newRouter(t, "10.255.0.1")
	b, ribB := newRouter(t, "10.255.0.2")
	connect(t, a, "eth0", "172.16.0.1/30", b, "eth0", "172.16.0.2/30", 10)
	stubIface(t, a, "lan0", "10.1.0.1/24")
	stubIface(t, b, "lan0", "10.2.0.1/24")
	a.Start()
	b.Start()

	waitCond(t, "adjacency Full on both", 5*time.Second, func() bool {
		return a.FullNeighbors() == 1 && b.FullNeighbors() == 1
	})
	waitCond(t, "A learns B's LAN", 5*time.Second, func() bool {
		rt, ok := ribA.Lookup(netip.MustParseAddr("10.2.0.9"))
		return ok && rt.Source == rib.SourceOSPF && rt.NextHop == netip.MustParseAddr("172.16.0.2")
	})
	waitCond(t, "B learns A's LAN", 5*time.Second, func() bool {
		rt, ok := ribB.Lookup(netip.MustParseAddr("10.1.0.9"))
		return ok && rt.NextHop == netip.MustParseAddr("172.16.0.1")
	})
	if a.LSDBSize() != 2 || b.LSDBSize() != 2 {
		t.Fatalf("lsdb sizes = %d/%d", a.LSDBSize(), b.LSDBSize())
	}
	nbs := a.Neighbors()
	if len(nbs) != 1 || nbs[0].State != NeighborFull ||
		nbs[0].RouterID != netip.MustParseAddr("10.255.0.2") {
		t.Fatalf("neighbors = %+v", nbs)
	}
}

func TestThreeRouterLineTransitRoutes(t *testing.T) {
	a, ribA := newRouter(t, "10.255.0.1")
	b, _ := newRouter(t, "10.255.0.2")
	c, ribC := newRouter(t, "10.255.0.3")
	connect(t, a, "eth0", "172.16.0.1/30", b, "eth0", "172.16.0.2/30", 10)
	connect(t, b, "eth1", "172.16.0.5/30", c, "eth0", "172.16.0.6/30", 10)
	stubIface(t, c, "lan0", "10.3.0.1/24")
	a.Start()
	b.Start()
	c.Start()

	waitCond(t, "A reaches C's LAN via B", 10*time.Second, func() bool {
		rt, ok := ribA.Lookup(netip.MustParseAddr("10.3.0.42"))
		return ok && rt.NextHop == netip.MustParseAddr("172.16.0.2") && rt.Iface == "eth0"
	})
	rt, _ := ribA.Lookup(netip.MustParseAddr("10.3.0.42"))
	// metric: A→B link (10) + B→C link (10) + C stub (10) = 30
	if rt.Metric != 30 {
		t.Fatalf("metric = %d, want 30", rt.Metric)
	}
	// C must also route to the far A–B subnet.
	waitCond(t, "C reaches the A-B subnet", 10*time.Second, func() bool {
		rt, ok := ribC.Lookup(netip.MustParseAddr("172.16.0.1"))
		return ok && rt.NextHop == netip.MustParseAddr("172.16.0.5")
	})
}

func TestCostSteersPathChoice(t *testing.T) {
	// Square: A-B cheap-cheap, A-D-C expensive; A must reach C via B.
	a, ribA := newRouter(t, "10.255.0.1")
	b, _ := newRouter(t, "10.255.0.2")
	c, _ := newRouter(t, "10.255.0.3")
	d, _ := newRouter(t, "10.255.0.4")
	connect(t, a, "eth0", "172.16.0.1/30", b, "eth0", "172.16.0.2/30", 1)
	connect(t, b, "eth1", "172.16.0.5/30", c, "eth0", "172.16.0.6/30", 1)
	connect(t, a, "eth1", "172.16.0.9/30", d, "eth0", "172.16.0.10/30", 100)
	connect(t, d, "eth1", "172.16.0.13/30", c, "eth1", "172.16.0.14/30", 100)
	stubIface(t, c, "lan0", "10.3.0.1/24")
	for _, r := range []*Instance{a, b, c, d} {
		r.Start()
	}
	waitCond(t, "A routes to C via B (cheap path)", 10*time.Second, func() bool {
		rt, ok := ribA.Lookup(netip.MustParseAddr("10.3.0.1"))
		return ok && rt.NextHop == netip.MustParseAddr("172.16.0.2")
	})
}

func TestNeighborDeathWithdrawsRoutes(t *testing.T) {
	a, ribA := newRouter(t, "10.255.0.1")
	b, _ := newRouter(t, "10.255.0.2")
	p := connect(t, a, "eth0", "172.16.0.1/30", b, "eth0", "172.16.0.2/30", 10)
	stubIface(t, b, "lan0", "10.2.0.1/24")
	a.Start()
	b.Start()
	waitCond(t, "route up", 5*time.Second, func() bool {
		_, ok := ribA.Lookup(netip.MustParseAddr("10.2.0.1"))
		return ok
	})
	p.cut()
	waitCond(t, "route withdrawn after dead interval", 5*time.Second, func() bool {
		rt, ok := ribA.Lookup(netip.MustParseAddr("10.2.0.1"))
		return !ok || rt.Source != rib.SourceOSPF
	})
	if a.FullNeighbors() != 0 {
		t.Fatal("neighbor survived dead interval")
	}
}

func TestRingConvergence(t *testing.T) {
	const n = 6
	insts := make([]*Instance, n)
	ribs := make([]*rib.RIB, n)
	for i := 0; i < n; i++ {
		insts[i], ribs[i] = newRouter(t, fmt.Sprintf("10.255.0.%d", i+1))
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		base := i * 4
		connect(t, insts[i], fmt.Sprintf("eth%d-r", i), fmt.Sprintf("172.17.%d.1/30", base),
			insts[j], fmt.Sprintf("eth%d-l", j), fmt.Sprintf("172.17.%d.2/30", base), 10)
	}
	for _, r := range insts {
		r.Start()
	}
	waitCond(t, "full LSDB everywhere", 15*time.Second, func() bool {
		for _, r := range insts {
			if r.LSDBSize() != n {
				return false
			}
		}
		return true
	})
	// Every router must reach every ring subnet.
	waitCond(t, "all subnets routed from router 0", 15*time.Second, func() bool {
		for i := 0; i < n; i++ {
			probe := netip.MustParseAddr(fmt.Sprintf("172.17.%d.2", i*4))
			if _, ok := ribs[0].Lookup(probe); !ok {
				return false
			}
		}
		return true
	})
	if insts[0].SPFRuns() == 0 {
		t.Fatal("SPF never ran")
	}
}

func TestRemoveInterfaceReoriginates(t *testing.T) {
	a, _ := newRouter(t, "10.255.0.1")
	b, ribB := newRouter(t, "10.255.0.2")
	connect(t, a, "eth0", "172.16.0.1/30", b, "eth0", "172.16.0.2/30", 10)
	stubIface(t, a, "lan0", "10.1.0.1/24")
	a.Start()
	b.Start()
	waitCond(t, "B sees A's LAN", 5*time.Second, func() bool {
		_, ok := ribB.Lookup(netip.MustParseAddr("10.1.0.1"))
		return ok
	})
	a.RemoveInterface("lan0")
	waitCond(t, "B withdraws A's LAN", 5*time.Second, func() bool {
		_, ok := ribB.Lookup(netip.MustParseAddr("10.1.0.1"))
		return !ok
	})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{RouterID: netip.MustParseAddr("::1"), RIB: rib.New()}); err == nil {
		t.Fatal("IPv6 router ID accepted")
	}
	if _, err := New(Config{RouterID: netip.MustParseAddr("1.1.1.1")}); err == nil {
		t.Fatal("nil RIB accepted")
	}
	inst, err := New(Config{RouterID: netip.MustParseAddr("1.1.1.1"), RIB: rib.New()})
	if err != nil {
		t.Fatal(err)
	}
	if inst.cfg.HelloInterval != DefaultHelloInterval || inst.cfg.DeadInterval != DefaultDeadInterval {
		t.Fatal("defaults not applied")
	}
	if inst.RouterID() != netip.MustParseAddr("1.1.1.1") {
		t.Fatal("router id accessor")
	}
	if _, err := inst.AddInterface("x", netip.MustParsePrefix("fd00::1/64"), 1, nil); err == nil {
		t.Fatal("IPv6 interface accepted")
	}
	if _, err := inst.AddInterface("x", netip.MustParsePrefix("10.0.0.1/30"), 1, func(netip.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.AddInterface("x", netip.MustParsePrefix("10.0.0.5/30"), 1, func(netip.Addr, []byte) {}); err == nil {
		t.Fatal("duplicate interface accepted")
	}
}

func TestMismatchedTimersIgnored(t *testing.T) {
	r := rib.New()
	inst, _ := New(fastConfig("10.255.0.9", r))
	t.Cleanup(inst.Stop)
	var lastSent atomic.Pointer[[]byte]
	ifc, _ := inst.AddInterface("eth0", netip.MustParsePrefix("172.16.0.1/30"), 1,
		func(dst netip.Addr, p []byte) { lastSent.Store(&p) })
	// A hello advertising RFC-default timers (10s/40s) mismatches our fast
	// test timers and must be ignored.
	alien := marshalPacket(header{Type: typeHello, RouterID: 0x09090909},
		(&hello{NetMask: 0xfffffffc, HelloInterval: 10, DeadInterval: 40}).marshal())
	ifc.Deliver(netip.MustParseAddr("172.16.0.2"), alien)
	if len(inst.Neighbors()) != 0 {
		t.Fatal("mismatched-timer hello created a neighbor")
	}
}

func TestNeighborStateString(t *testing.T) {
	if NeighborDown.String() != "Down" || NeighborInit.String() != "Init" ||
		NeighborFull.String() != "Full" || NeighborState(9).String() == "" {
		t.Fatal("state strings")
	}
}

package ospf

import (
	"net/netip"

	"routeflow/internal/rib"
)

// runSPF computes shortest paths over the Router-LSA graph (Dijkstra,
// RFC 2328 §16.1 restricted to p2p links) and installs the resulting routes
// into the RIB, replacing the previous OSPF route set.
func (i *Instance) runSPF() {
	i.mu.Lock()
	me := u32(i.cfg.RouterID)
	// Build adjacency: router → (neighbor → cost), requiring both directions
	// (the bidirectionality check of §16.1 step 2b).
	adj := make(map[uint32]map[uint32]uint16, len(i.lsdb))
	linkData := make(map[[2]uint32]uint32) // (from,to) → from's interface addr
	stubs := make(map[uint32][]rlaLink)
	for id, l := range i.lsdb {
		for _, ln := range l.Links {
			switch ln.Type {
			case linkP2P:
				if adj[id] == nil {
					adj[id] = make(map[uint32]uint16)
				}
				adj[id][ln.ID] = ln.Metric
				linkData[[2]uint32{id, ln.ID}] = ln.Data
			case linkStub:
				stubs[id] = append(stubs[id], ln)
			}
		}
	}
	// Local interface lookup: neighbor router ID → our interface.
	nbIface := make(map[uint32]*Interface)
	for _, ifc := range i.ifaces {
		ifc.mu.Lock()
		if nb := ifc.neighbor; nb != nil && nb.state == NeighborFull {
			nbIface[nb.routerID] = ifc
		}
		ifc.mu.Unlock()
	}
	i.spfRun++
	i.mu.Unlock()

	// Dijkstra from me over bidirectional links, tracking ALL equal-cost
	// first hops per destination (ECMP, §16.1's "multiple equal-cost paths"
	// clause). firstHops[v] is final once v is extracted: every shortest-path
	// predecessor of v sits at strictly smaller distance (positive costs), so
	// it was extracted — and its own set finalized — before v, which makes
	// the result independent of tie-breaking in the extraction order.
	const inf = int(^uint(0) >> 1)
	dist := map[uint32]int{me: 0}
	firstHops := map[uint32]map[uint32]bool{} // destination router → first-hop routers
	visited := map[uint32]bool{}
	for {
		// Extract cheapest unvisited.
		var u uint32
		best := inf
		found := false
		for id, d := range dist {
			if !visited[id] && d < best {
				u, best, found = id, d, true
			}
		}
		if !found {
			break
		}
		visited[u] = true
		for v, cost := range adj[u] {
			if _, ok := adj[v][u]; !ok {
				continue // unidirectional: not yet usable
			}
			via := firstHops[u]
			if u == me {
				via = map[uint32]bool{v: true}
			}
			nd := best + int(cost)
			old, seen := dist[v]
			switch {
			case !seen || nd < old:
				dist[v] = nd
				fh := make(map[uint32]bool, len(via))
				for id := range via {
					fh[id] = true
				}
				firstHops[v] = fh
			case nd == old:
				for id := range via {
					firstHops[v][id] = true
				}
			}
		}
	}

	// Routes: for every reachable router's stub links, route the prefix via
	// every equal-cost first hop toward that router. Our own stubs are
	// connected routes, not OSPF's business.
	var routes []rib.Route
	seen := map[netip.Prefix]int{}
	for routerID, d := range dist {
		if routerID == me {
			continue
		}
		for _, st := range stubs[routerID] {
			bits := maskBits(st.Data)
			prefix := netip.PrefixFrom(addr(st.ID), bits).Masked()
			metric := uint32(d) + uint32(st.Metric)
			if old, dup := seen[prefix]; !dup || int(metric) < old {
				seen[prefix] = int(metric)
			}
			for fh := range firstHops[routerID] {
				ifc := nbIface[fh]
				if ifc == nil {
					continue
				}
				// Next hop address: the first-hop router's interface address
				// on the link to us, from its LSA's p2p link data.
				nhRaw, ok := linkData[[2]uint32{fh, me}]
				if !ok {
					continue
				}
				routes = append(routes, rib.Route{
					Prefix:  prefix,
					NextHop: addr(nhRaw),
					Iface:   ifc.name,
					Source:  rib.SourceOSPF,
					Metric:  metric,
				})
			}
		}
	}
	// Keep only the lowest metric per prefix; several routers can advertise
	// one stub prefix (both ends of a link), so dedup by next hop too.
	final := make([]rib.Route, 0, len(routes))
	chosen := map[netip.Prefix]map[netip.Addr]bool{}
	for _, r := range routes {
		if seen[r.Prefix] != int(r.Metric) {
			continue
		}
		if chosen[r.Prefix] == nil {
			chosen[r.Prefix] = map[netip.Addr]bool{}
		}
		if chosen[r.Prefix][r.NextHop] {
			continue
		}
		chosen[r.Prefix][r.NextHop] = true
		final = append(final, r)
	}
	i.cfg.RIB.ReplaceSource(rib.SourceOSPF, final)
}

func maskBits(mask uint32) int {
	bits := 0
	for mask&0x80000000 != 0 {
		bits++
		mask <<= 1
	}
	return bits
}

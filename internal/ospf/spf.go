package ospf

import (
	"net/netip"

	"routeflow/internal/rib"
)

// runSPF computes shortest paths over the Router-LSA graph (Dijkstra,
// RFC 2328 §16.1 restricted to p2p links) and installs the resulting routes
// into the RIB, replacing the previous OSPF route set.
func (i *Instance) runSPF() {
	i.mu.Lock()
	me := u32(i.cfg.RouterID)
	// Build adjacency: router → (neighbor → cost), requiring both directions
	// (the bidirectionality check of §16.1 step 2b).
	adj := make(map[uint32]map[uint32]uint16, len(i.lsdb))
	linkData := make(map[[2]uint32]uint32) // (from,to) → from's interface addr
	stubs := make(map[uint32][]rlaLink)
	for id, l := range i.lsdb {
		for _, ln := range l.Links {
			switch ln.Type {
			case linkP2P:
				if adj[id] == nil {
					adj[id] = make(map[uint32]uint16)
				}
				adj[id][ln.ID] = ln.Metric
				linkData[[2]uint32{id, ln.ID}] = ln.Data
			case linkStub:
				stubs[id] = append(stubs[id], ln)
			}
		}
	}
	// Local interface lookup: neighbor router ID → our interface.
	nbIface := make(map[uint32]*Interface)
	for _, ifc := range i.ifaces {
		ifc.mu.Lock()
		if nb := ifc.neighbor; nb != nil && nb.state == NeighborFull {
			nbIface[nb.routerID] = ifc
		}
		ifc.mu.Unlock()
	}
	i.spfRun++
	i.mu.Unlock()

	// Dijkstra from me over bidirectional links.
	const inf = int(^uint(0) >> 1)
	dist := map[uint32]int{me: 0}
	firstHop := map[uint32]uint32{} // destination router → first-hop router
	visited := map[uint32]bool{}
	for {
		// Extract cheapest unvisited.
		var u uint32
		best := inf
		found := false
		for id, d := range dist {
			if !visited[id] && d < best {
				u, best, found = id, d, true
			}
		}
		if !found {
			break
		}
		visited[u] = true
		for v, cost := range adj[u] {
			back, ok := adj[v][u]
			_ = back
			if !ok {
				continue // unidirectional: not yet usable
			}
			nd := best + int(cost)
			if old, seen := dist[v]; !seen || nd < old {
				dist[v] = nd
				if u == me {
					firstHop[v] = v
				} else {
					firstHop[v] = firstHop[u]
				}
			}
		}
	}

	// Routes: for every reachable router's stub links, route the prefix via
	// the first hop toward that router. Our own stubs are connected routes,
	// not OSPF's business.
	var routes []rib.Route
	seen := map[netip.Prefix]int{}
	for routerID, d := range dist {
		if routerID == me {
			continue
		}
		fh := firstHop[routerID]
		ifc := nbIface[fh]
		if ifc == nil {
			continue
		}
		// Next hop address: the first-hop router's interface address on the
		// link to us, from its LSA's p2p link data.
		nhRaw, ok := linkData[[2]uint32{fh, me}]
		if !ok {
			continue
		}
		nh := addr(nhRaw)
		for _, st := range stubs[routerID] {
			bits := maskBits(st.Data)
			prefix := netip.PrefixFrom(addr(st.ID), bits).Masked()
			metric := uint32(d) + uint32(st.Metric)
			if old, dup := seen[prefix]; dup && old <= int(metric) {
				continue
			}
			seen[prefix] = int(metric)
			routes = append(routes, rib.Route{
				Prefix:  prefix,
				NextHop: nh,
				Iface:   ifc.name,
				Source:  rib.SourceOSPF,
				Metric:  metric,
			})
		}
	}
	// Dedup keeps the lowest metric per prefix: rebuild the final set.
	final := make([]rib.Route, 0, len(routes))
	chosen := map[netip.Prefix]bool{}
	for k := len(routes) - 1; k >= 0; k-- { // later entries replaced earlier
		r := routes[k]
		if chosen[r.Prefix] || seen[r.Prefix] != int(r.Metric) {
			continue
		}
		chosen[r.Prefix] = true
		final = append(final, r)
	}
	i.cfg.RIB.ReplaceSource(rib.SourceOSPF, final)
}

func maskBits(mask uint32) int {
	bits := 0
	for mask&0x80000000 != 0 {
		bits++
		mask <<= 1
	}
	return bits
}

package pkt

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 1}
	macB = MAC{0x02, 0, 0, 0, 0, 2}
	ipA  = netip.MustParseAddr("10.0.0.1")
	ipB  = netip.MustParseAddr("10.0.0.2")
)

func TestMACString(t *testing.T) {
	if got := BroadcastMAC.String(); got != "ff:ff:ff:ff:ff:ff" {
		t.Fatalf("broadcast = %s", got)
	}
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Fatal("broadcast predicates wrong")
	}
	if macA.IsBroadcast() || macA.IsMulticast() {
		t.Fatal("unicast misclassified")
	}
	if !LLDPMulticast.IsMulticast() {
		t.Fatal("LLDP multicast misclassified")
	}
	var zero MAC
	if !zero.IsZero() || macA.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestLocalMACDeterministicUnique(t *testing.T) {
	a, b := LocalMAC(0x0102030405), LocalMAC(0x0102030406)
	if a == b {
		t.Fatal("distinct IDs gave equal MACs")
	}
	if a != LocalMAC(0x0102030405) {
		t.Fatal("LocalMAC not deterministic")
	}
	if a[0] != 0x02 {
		t.Fatal("LocalMAC not locally administered")
	}
	if a.IsMulticast() {
		t.Fatal("LocalMAC must be unicast")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Dst: macB, Src: macA, Type: EtherTypeIPv4, Payload: []byte("hello")}
	got, err := DecodeFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != macB || got.Src != macA || got.Type != EtherTypeIPv4 ||
		string(got.Payload) != "hello" || got.VLANID != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameVLANRoundTrip(t *testing.T) {
	f := &Frame{Dst: macB, Src: macA, VLANID: 42, Type: EtherTypeARP, Payload: []byte{1}}
	b := f.Marshal()
	if len(b) != EthernetHeaderLen+4+1 {
		t.Fatalf("tagged frame length = %d", len(b))
	}
	got, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.VLANID != 42 || got.Type != EtherTypeARP {
		t.Fatalf("vlan round trip: %+v", got)
	}
}

func TestFrameTruncated(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 13)); err == nil {
		t.Fatal("short frame accepted")
	}
	// VLAN tag cut off.
	f := &Frame{Dst: macB, Src: macA, VLANID: 5, Type: EtherTypeIPv4}
	if _, err := DecodeFrame(f.Marshal()[:15]); err == nil {
		t.Fatal("truncated vlan accepted")
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	prop := func(dst, src [6]byte, vlan uint16, et uint16, payload []byte) bool {
		f := &Frame{Dst: MAC(dst), Src: MAC(src), VLANID: vlan & 0x0fff, Type: EtherType(et), Payload: payload}
		if f.Type == EtherTypeVLAN { // nested tags unsupported by design
			f.Type = EtherTypeIPv4
		}
		got, err := DecodeFrame(f.Marshal())
		if err != nil {
			return false
		}
		return got.Dst == f.Dst && got.Src == f.Src && got.VLANID == f.VLANID &&
			got.Type == f.Type && bytes.Equal(got.Payload, f.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEtherTypeString(t *testing.T) {
	for _, tc := range []struct {
		t    EtherType
		want string
	}{{EtherTypeIPv4, "IPv4"}, {EtherTypeARP, "ARP"}, {EtherTypeLLDP, "LLDP"},
		{EtherTypeVLAN, "VLAN"}, {EtherType(0x1234), "EtherType(0x1234)"}} {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("%v != %v", got, tc.want)
		}
	}
}

func TestARPRoundTrip(t *testing.T) {
	req := NewARPRequest(macA, ipA, ipB)
	got, err := DecodeARP(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != ARPRequest || got.SenderHW != macA || got.SenderIP != ipA ||
		got.TargetIP != ipB || !got.TargetHW.IsZero() {
		t.Fatalf("arp request mismatch: %+v", got)
	}
}

func TestARPReply(t *testing.T) {
	req := NewARPRequest(macA, ipA, ipB)
	rep := req.Reply(macB, ipB)
	if rep.Op != ARPReply || rep.SenderHW != macB || rep.SenderIP != ipB {
		t.Fatalf("reply sender wrong: %+v", rep)
	}
	if rep.TargetHW != macA || rep.TargetIP != ipA {
		t.Fatalf("reply target wrong: %+v", rep)
	}
	back, err := DecodeARP(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *rep {
		t.Fatalf("reply round trip: %+v vs %+v", back, rep)
	}
}

func TestARPRejectsGarbage(t *testing.T) {
	if _, err := DecodeARP(make([]byte, 10)); err == nil {
		t.Fatal("short arp accepted")
	}
	b := NewARPRequest(macA, ipA, ipB).Marshal()
	b[0] = 9 // bad htype
	if _, err := DecodeARP(b); err == nil {
		t.Fatal("bad htype accepted")
	}
	b = NewARPRequest(macA, ipA, ipB).Marshal()
	b[4] = 8 // bad hlen
	if _, err := DecodeARP(b); err == nil {
		t.Fatal("bad hlen accepted")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Appending a zero byte must not change the checksum.
	odd := []byte{1, 2, 3}
	even := []byte{1, 2, 3, 0}
	if Checksum(odd) != Checksum(even) {
		t.Fatal("odd-length checksum differs from zero-padded")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := &IPv4{TOS: 0x10, ID: 7, TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB,
		Payload: []byte("payload")}
	got, err := DecodeIPv4(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != ipA || got.Dst != ipB || got.Proto != ProtoUDP || got.TTL != 64 ||
		got.TOS != 0x10 || got.ID != 7 || string(got.Payload) != "payload" {
		t.Fatalf("ipv4 mismatch: %+v", got)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	b := (&IPv4{TTL: 64, Proto: ProtoICMP, Src: ipA, Dst: ipB}).Marshal()
	b[8] = 63 // flip TTL after checksum computed
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4Rejects(t *testing.T) {
	if _, err := DecodeIPv4(make([]byte, 10)); err == nil {
		t.Fatal("short packet accepted")
	}
	b := (&IPv4{TTL: 1, Proto: ProtoUDP, Src: ipA, Dst: ipB}).Marshal()
	b[0] = 0x65 // version 6
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("version 6 accepted")
	}
}

func TestIPv4RoundTripQuick(t *testing.T) {
	prop := func(tos, ttl uint8, id uint16, payload []byte) bool {
		p := &IPv4{TOS: tos, ID: id, TTL: ttl, Proto: ProtoOSPF, Src: ipB, Dst: ipA, Payload: payload}
		got, err := DecodeIPv4(p.Marshal())
		if err != nil {
			return false
		}
		return got.TOS == tos && got.TTL == ttl && got.ID == id &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 5004, DstPort: 5005, Payload: []byte("frame-0001")}
	got, err := DecodeUDP(u.Marshal(ipA, ipB), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5004 || got.DstPort != 5005 || string(got.Payload) != "frame-0001" {
		t.Fatalf("udp mismatch: %+v", got)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	b := (&UDP{SrcPort: 1, DstPort: 2, Payload: []byte("xyz")}).Marshal(ipA, ipB)
	b[len(b)-1] ^= 0xff
	if _, err := DecodeUDP(b, ipA, ipB); err == nil {
		t.Fatal("corrupted udp accepted")
	}
	// Wrong pseudo header must also fail (note: swapping src and dst would
	// NOT fail — the one's-complement sum is commutative — so use a
	// genuinely different address).
	good := (&UDP{SrcPort: 1, DstPort: 2, Payload: []byte("xyz")}).Marshal(ipA, ipB)
	other := netip.MustParseAddr("10.9.9.9")
	if _, err := DecodeUDP(good, other, ipB); err == nil {
		t.Fatal("udp with wrong pseudo header accepted")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	b := (&UDP{SrcPort: 9, DstPort: 10, Payload: []byte("nochk")}).Marshal(ipA, ipB)
	b[6], b[7] = 0, 0 // zero = not computed
	got, err := DecodeUDP(b, ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if got.DstPort != 10 {
		t.Fatalf("dst port = %d", got.DstPort)
	}
}

func TestUDPRoundTripQuick(t *testing.T) {
	prop := func(sp, dp uint16, payload []byte) bool {
		u := &UDP{SrcPort: sp, DstPort: dp, Payload: payload}
		got, err := DecodeUDP(u.Marshal(ipA, ipB), ipA, ipB)
		return err == nil && got.SrcPort == sp && got.DstPort == dp &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	m := &ICMP{Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping")}
	got, err := DecodeICMP(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEchoRequest || got.ID != 77 || got.Seq != 3 || string(got.Payload) != "ping" {
		t.Fatalf("icmp mismatch: %+v", got)
	}
	rep := got.EchoReply()
	if rep.Type != ICMPEchoReply || rep.ID != 77 || rep.Seq != 3 {
		t.Fatalf("echo reply mismatch: %+v", rep)
	}
}

func TestICMPChecksum(t *testing.T) {
	b := (&ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 1}).Marshal()
	b[5] ^= 1
	if _, err := DecodeICMP(b); err == nil {
		t.Fatal("corrupted icmp accepted")
	}
	if _, err := DecodeICMP([]byte{8, 0}); err == nil {
		t.Fatal("short icmp accepted")
	}
}

func TestLLDPRoundTrip(t *testing.T) {
	l := NewLLDP(0xab12, 3, 120)
	l.SysName = "sw-18"
	got, err := DecodeLLDP(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ChassisID != l.ChassisID || got.PortID != "3" || got.TTL != 120 || got.SysName != "sw-18" {
		t.Fatalf("lldp mismatch: %+v", got)
	}
	dpid, port, err := got.Origin()
	if err != nil {
		t.Fatal(err)
	}
	if dpid != 0xab12 || port != 3 {
		t.Fatalf("origin = %x/%d", dpid, port)
	}
}

func TestLLDPOriginErrors(t *testing.T) {
	l := &LLDP{ChassisID: "host-foo", PortID: "1", TTL: 1}
	if _, _, err := l.Origin(); err == nil {
		t.Fatal("non-dpid chassis accepted")
	}
	l = &LLDP{ChassisID: FormatDPID(1), PortID: "not-a-port", TTL: 1}
	if _, _, err := l.Origin(); err == nil {
		t.Fatal("bad port ID accepted")
	}
}

func TestLLDPRejectsMalformed(t *testing.T) {
	if _, err := DecodeLLDP(nil); err == nil {
		t.Fatal("empty lldp accepted")
	}
	// End TLV before the mandatory three.
	if _, err := DecodeLLDP([]byte{0, 0}); err == nil {
		t.Fatal("end-only lldp accepted")
	}
	// Truncated TLV body.
	b := NewLLDP(1, 1, 1).Marshal()
	if _, err := DecodeLLDP(b[:3]); err == nil {
		t.Fatal("truncated TLV accepted")
	}
}

func TestLLDPSkipsUnknownTLV(t *testing.T) {
	l := NewLLDP(9, 2, 60)
	b := l.Marshal()
	// Splice an unknown TLV (type 8, len 2) before the End TLV.
	end := b[len(b)-2:]
	body := b[:len(b)-2]
	spliced := append(append(append([]byte{}, body...), 8<<1, 2, 0xde, 0xad), end...)
	got, err := DecodeLLDP(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if got.PortID != "2" {
		t.Fatalf("port = %s", got.PortID)
	}
}

func TestParseDPID(t *testing.T) {
	if _, err := ParseDPID("dpid:zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	v, err := ParseDPID(FormatDPID(0xdeadbeef))
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("parse = %x, %v", v, err)
	}
	if !strings.HasPrefix(FormatDPID(5), "dpid:") {
		t.Fatal("format prefix missing")
	}
}

func TestLLDPRoundTripQuick(t *testing.T) {
	prop := func(dpid uint64, port uint16, ttl uint16) bool {
		got, err := DecodeLLDP(NewLLDP(dpid, port, ttl).Marshal())
		if err != nil {
			return false
		}
		d, p, err := got.Origin()
		return err == nil && d == dpid && p == port && got.TTL == ttl
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	seg := &TCP{SrcPort: 179, DstPort: 179, Seq: 42, Ack: 7,
		Flags: TCPPsh | TCPAck, Window: 512, Payload: []byte("bgp message")}
	got, err := DecodeTCP(seg.Marshal(ipA, ipB), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 179 || got.DstPort != 179 || got.Seq != 42 || got.Ack != 7 ||
		got.Flags != (TCPPsh|TCPAck) || got.Window != 512 ||
		string(got.Payload) != "bgp message" {
		t.Fatalf("tcp mismatch: %+v", got)
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	b := (&TCP{SrcPort: 179, DstPort: 179, Payload: []byte("x")}).Marshal(ipA, ipB)
	b[4]++ // corrupt seq after checksum computed
	if _, err := DecodeTCP(b, ipA, ipB); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	// Wrong pseudo-header addresses must also fail.
	other := netip.MustParseAddr("198.51.100.7")
	if _, err := DecodeTCP((&TCP{Payload: []byte("y")}).Marshal(ipA, ipB), ipA, other); err == nil {
		t.Fatal("segment accepted under wrong pseudo-header")
	}
}

func TestTCPRejectsTruncation(t *testing.T) {
	if _, err := DecodeTCP(make([]byte, TCPHeaderLen-1), ipA, ipB); err == nil {
		t.Fatal("short segment accepted")
	}
	b := (&TCP{Payload: []byte("z")}).Marshal(ipA, ipB)
	b[12] = 0xf0 // data offset past the segment end
	if _, err := DecodeTCP(b, netip.Addr{}, netip.Addr{}); err == nil {
		t.Fatal("bad data offset accepted")
	}
}

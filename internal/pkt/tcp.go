package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TCPHeaderLen is the fixed header length this codec emits (no options).
const TCPHeaderLen = 20

// TCP control flags.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCP is one TCP segment of the vnet's TCP-like channels: a standard 20-byte
// header (no options) around an opaque payload. The emulated cables deliver
// in order and without loss, so the routing stacks that ride on this —
// bgpd's port-179 sessions — treat one segment as one protocol message and
// leave retransmission to their own session FSMs; the sequence numbers exist
// so a receiver can drop duplicates and the wire format stays faithful.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// Marshal serializes the segment with a checksum over the given
// pseudo-header addresses.
func (t *TCP) Marshal(src, dst netip.Addr) []byte {
	b := make([]byte, TCPHeaderLen+len(t.Payload))
	binary.BigEndian.PutUint16(b[0:], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:], t.DstPort)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = (TCPHeaderLen / 4) << 4 // data offset in 32-bit words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:], t.Window)
	copy(b[TCPHeaderLen:], t.Payload)
	sum := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	binary.BigEndian.PutUint16(b[16:], finishChecksum(sum))
	return b
}

// DecodeTCP parses a TCP segment. If src and dst are valid IPv4 addresses
// the checksum is verified.
func DecodeTCP(b []byte, src, dst netip.Addr) (*TCP, error) {
	var t TCP
	if err := DecodeTCPInto(&t, b, src, dst); err != nil {
		return nil, err
	}
	return &t, nil
}

// DecodeTCPInto is DecodeTCP decoding into a caller-provided segment; with a
// stack-allocated TCP it does not allocate. t.Payload aliases b.
func DecodeTCPInto(t *TCP, b []byte, src, dst netip.Addr) error {
	if len(b) < TCPHeaderLen {
		return fmt.Errorf("%w: tcp header", ErrTruncated)
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return fmt.Errorf("%w: tcp data offset %d of %d", ErrTruncated, off, len(b))
	}
	if src.Is4() && dst.Is4() {
		sum := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
		if got := finishChecksum(sum); got != 0 {
			return fmt.Errorf("pkt: tcp checksum mismatch")
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:])
	t.DstPort = binary.BigEndian.Uint16(b[2:])
	t.Seq = binary.BigEndian.Uint32(b[4:])
	t.Ack = binary.BigEndian.Uint32(b[8:])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:])
	t.Payload = b[off:]
	return nil
}

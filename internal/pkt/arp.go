package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an IPv4-over-Ethernet ARP packet (HTYPE=1, PTYPE=0x0800).
type ARP struct {
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP netip.Addr
}

const arpLen = 28

// Marshal serializes the ARP packet.
func (a *ARP) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:], 1)                     // HTYPE ethernet
	binary.BigEndian.PutUint16(b[2:], uint16(EtherTypeIPv4)) // PTYPE
	b[4], b[5] = 6, 4                                        // HLEN, PLEN
	binary.BigEndian.PutUint16(b[6:], a.Op)                  //
	copy(b[8:14], a.SenderHW[:])                             //
	sip, tip := mustAddr4(a.SenderIP), mustAddr4(a.TargetIP) //
	copy(b[14:18], sip[:])                                   //
	copy(b[18:24], a.TargetHW[:])                            //
	copy(b[24:28], tip[:])                                   //
	return b
}

// DecodeARP parses an IPv4-over-Ethernet ARP packet.
func DecodeARP(b []byte) (*ARP, error) {
	var a ARP
	if err := DecodeARPInto(&a, b); err != nil {
		return nil, err
	}
	return &a, nil
}

// DecodeARPInto is DecodeARP decoding into a caller-provided packet; with a
// stack-allocated ARP it does not allocate.
func DecodeARPInto(a *ARP, b []byte) error {
	if len(b) < arpLen {
		return fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, arpLen, len(b))
	}
	if ht := binary.BigEndian.Uint16(b[0:]); ht != 1 {
		return fmt.Errorf("pkt: unsupported ARP hardware type %d", ht)
	}
	if pt := EtherType(binary.BigEndian.Uint16(b[2:])); pt != EtherTypeIPv4 {
		return fmt.Errorf("pkt: unsupported ARP protocol type %v", pt)
	}
	if b[4] != 6 || b[5] != 4 {
		return fmt.Errorf("pkt: unsupported ARP address lengths %d/%d", b[4], b[5])
	}
	a.Op = binary.BigEndian.Uint16(b[6:])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	return nil
}

// NewARPRequest builds a who-has request for target sent from (hw, ip).
func NewARPRequest(hw MAC, ip, target netip.Addr) *ARP {
	return &ARP{Op: ARPRequest, SenderHW: hw, SenderIP: ip, TargetIP: target}
}

// Reply builds the matching is-at reply from the responder's address pair.
func (a *ARP) Reply(hw MAC, ip netip.Addr) *ARP {
	return &ARP{
		Op:       ARPReply,
		SenderHW: hw, SenderIP: ip,
		TargetHW: a.SenderHW, TargetIP: a.SenderIP,
	}
}

package pkt

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
)

// TestDecrementTTLMatchesFullRecompute drives the RFC 1624 incremental
// checksum update across random headers and cross-checks every result
// against a from-scratch RFC 1071 recompute. One's-complement arithmetic
// has classic edge cases (the two zero representations, carry folding), so
// the corpus is random rather than hand-picked.
func TestDecrementTTLMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1624))
	for i := 0; i < 10000; i++ {
		p := &IPv4{
			TOS:     uint8(rng.Intn(256)),
			ID:      uint16(rng.Intn(1 << 16)),
			Flags:   uint8(rng.Intn(8)),
			FragOff: uint16(rng.Intn(1 << 13)),
			TTL:     uint8(1 + rng.Intn(255)),
			Proto:   IPProto(rng.Intn(256)),
			Src:     netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			Dst:     netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			Payload: make([]byte, rng.Intn(64)),
		}
		b := p.Marshal()
		if !DecrementTTL(b) {
			t.Fatalf("DecrementTTL refused a valid header: %+v", p)
		}
		if b[8] != p.TTL-1 {
			t.Fatalf("TTL = %d, want %d", b[8], p.TTL-1)
		}
		// The incremental checksum must verify like any other header...
		if Checksum(b[:IPv4HeaderLen]) != 0 {
			t.Fatalf("incremental checksum does not verify (TTL %d→%d, header %x)",
				p.TTL, b[8], b[:IPv4HeaderLen])
		}
		// ...and equal the full recompute bit for bit.
		got := binary.BigEndian.Uint16(b[10:12])
		binary.BigEndian.PutUint16(b[10:12], 0)
		want := Checksum(b[:IPv4HeaderLen])
		if got != want {
			t.Fatalf("incremental checksum %04x, full recompute %04x (TTL %d→%d)",
				got, want, p.TTL, b[8])
		}
		binary.BigEndian.PutUint16(b[10:12], got)
		// The packet must still decode (checksum verified inside).
		q, err := DecodeIPv4(b)
		if err != nil {
			t.Fatalf("decode after decrement: %v", err)
		}
		if q.TTL != p.TTL-1 || q.Src != p.Src || q.Dst != p.Dst || q.Proto != p.Proto {
			t.Fatalf("decode mismatch: got %+v want %+v", q, p)
		}
	}
}

func TestDecrementTTLRefusals(t *testing.T) {
	// Too short.
	if DecrementTTL(make([]byte, IPv4HeaderLen-1)) {
		t.Fatal("accepted truncated header")
	}
	// Wrong version.
	b := (&IPv4{TTL: 5, Proto: ProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}).Marshal()
	b[0] = 0x65
	if DecrementTTL(b) {
		t.Fatal("accepted IPv6 version nibble")
	}
	// TTL already zero must not wrap.
	b = (&IPv4{TTL: 0, Proto: ProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}).Marshal()
	if DecrementTTL(b) {
		t.Fatal("decremented TTL 0")
	}
	if b[8] != 0 {
		t.Fatalf("TTL mutated on refusal: %d", b[8])
	}
}

package pkt

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// LLDP TLV types (IEEE 802.1AB).
const (
	lldpTLVEnd       = 0
	lldpTLVChassisID = 1
	lldpTLVPortID    = 2
	lldpTLVTTL       = 3
	lldpTLVSysName   = 5
)

// LLDP chassis/port ID subtypes used here.
const (
	lldpChassisLocal = 7 // locally assigned string
	lldpPortLocal    = 7 // locally assigned string
)

// LLDP is the discovery PDU the topology controller floods out of every
// switch port, NOX-discovery style: the chassis ID carries the origin
// datapath ID, the port ID the origin port number. When the frame comes back
// in a packet-in from a different switch, the (chassis, port) pair plus the
// ingress (dpid, port) identify one unidirectional link.
type LLDP struct {
	ChassisID string // "dpid:%016x" by convention
	PortID    string // decimal port number by convention
	TTL       uint16 // seconds the advertisement stays valid
	SysName   string // optional
}

// NewLLDP builds the discovery PDU for (dpid, port).
func NewLLDP(dpid uint64, port uint16, ttl uint16) *LLDP {
	return &LLDP{
		ChassisID: FormatDPID(dpid),
		PortID:    strconv.Itoa(int(port)),
		TTL:       ttl,
	}
}

// FormatDPID renders a datapath ID the way the discovery module encodes it
// into LLDP chassis IDs.
func FormatDPID(dpid uint64) string { return fmt.Sprintf("dpid:%016x", dpid) }

// ParseDPID reverses FormatDPID.
func ParseDPID(s string) (uint64, error) {
	rest, ok := strings.CutPrefix(s, "dpid:")
	if !ok {
		return 0, fmt.Errorf("pkt: chassis ID %q has no dpid prefix", s)
	}
	v, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("pkt: chassis ID %q: %v", s, err)
	}
	return v, nil
}

// Origin decodes the (dpid, port) pair the PDU advertises.
func (l *LLDP) Origin() (dpid uint64, port uint16, err error) {
	dpid, err = ParseDPID(l.ChassisID)
	if err != nil {
		return 0, 0, err
	}
	p, err := strconv.ParseUint(l.PortID, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("pkt: port ID %q: %v", l.PortID, err)
	}
	return dpid, uint16(p), nil
}

func appendTLV(b []byte, typ uint8, val []byte) []byte {
	hdr := uint16(typ)<<9 | uint16(len(val))&0x1ff
	var h [2]byte
	binary.BigEndian.PutUint16(h[:], hdr)
	b = append(b, h[:]...)
	return append(b, val...)
}

// Marshal serializes the PDU as a TLV sequence terminated by End-of-LLDPDU.
func (l *LLDP) Marshal() []byte {
	var b []byte
	b = appendTLV(b, lldpTLVChassisID, append([]byte{lldpChassisLocal}, l.ChassisID...))
	b = appendTLV(b, lldpTLVPortID, append([]byte{lldpPortLocal}, l.PortID...))
	var ttl [2]byte
	binary.BigEndian.PutUint16(ttl[:], l.TTL)
	b = appendTLV(b, lldpTLVTTL, ttl[:])
	if l.SysName != "" {
		b = appendTLV(b, lldpTLVSysName, []byte(l.SysName))
	}
	b = appendTLV(b, lldpTLVEnd, nil)
	return b
}

// DecodeLLDP parses a TLV sequence. The mandatory chassis ID, port ID and
// TTL TLVs must appear first and in order, per 802.1AB.
func DecodeLLDP(b []byte) (*LLDP, error) {
	var l LLDP
	seen := 0
	for len(b) >= 2 {
		hdr := binary.BigEndian.Uint16(b)
		typ := uint8(hdr >> 9)
		length := int(hdr & 0x1ff)
		b = b[2:]
		if len(b) < length {
			return nil, fmt.Errorf("%w: lldp TLV %d", ErrTruncated, typ)
		}
		val := b[:length]
		b = b[length:]
		switch typ {
		case lldpTLVEnd:
			if seen < 3 {
				return nil, fmt.Errorf("pkt: lldp ended after %d mandatory TLVs", seen)
			}
			return &l, nil
		case lldpTLVChassisID:
			if seen != 0 || length < 1 {
				return nil, fmt.Errorf("pkt: lldp chassis TLV out of order")
			}
			l.ChassisID = string(val[1:])
			seen++
		case lldpTLVPortID:
			if seen != 1 || length < 1 {
				return nil, fmt.Errorf("pkt: lldp port TLV out of order")
			}
			l.PortID = string(val[1:])
			seen++
		case lldpTLVTTL:
			if seen != 2 || length < 2 {
				return nil, fmt.Errorf("pkt: lldp TTL TLV out of order")
			}
			l.TTL = binary.BigEndian.Uint16(val)
			seen++
		case lldpTLVSysName:
			l.SysName = string(val)
		default:
			// Unknown optional TLVs are skipped.
		}
	}
	return nil, fmt.Errorf("%w: lldp without end TLV", ErrTruncated)
}

package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a UDP datagram. The checksum covers the IPv4 pseudo header, so
// marshalling needs the enclosing packet's addresses.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Marshal serializes the datagram with a checksum computed over the given
// pseudo-header addresses.
func (u *UDP) Marshal(src, dst netip.Addr) []byte {
	b := make([]byte, UDPHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)))
	copy(b[UDPHeaderLen:], u.Payload)
	sum := pseudoHeaderSum(src, dst, ProtoUDP, len(b))
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	ck := finishChecksum(sum)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(b[6:], ck)
	return b
}

// DecodeUDP parses a UDP datagram. If src and dst are valid IPv4 addresses
// the checksum is verified (a zero checksum means "not computed" and is
// accepted, per RFC 768).
func DecodeUDP(b []byte, src, dst netip.Addr) (*UDP, error) {
	var u UDP
	if err := DecodeUDPInto(&u, b, src, dst); err != nil {
		return nil, err
	}
	return &u, nil
}

// DecodeUDPInto is DecodeUDP decoding into a caller-provided datagram; with
// a stack-allocated UDP it does not allocate. u.Payload aliases b.
func DecodeUDPInto(u *UDP, b []byte, src, dst netip.Addr) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("%w: udp header", ErrTruncated)
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < UDPHeaderLen || length > len(b) {
		return fmt.Errorf("%w: udp length %d of %d", ErrTruncated, length, len(b))
	}
	if ck := binary.BigEndian.Uint16(b[6:]); ck != 0 && src.Is4() && dst.Is4() {
		sum := pseudoHeaderSum(src, dst, ProtoUDP, length)
		for i := 0; i+1 < length; i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if length%2 == 1 {
			sum += uint32(b[length-1]) << 8
		}
		if got := finishChecksum(sum); got != 0 {
			return fmt.Errorf("pkt: udp checksum mismatch")
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:])
	u.DstPort = binary.BigEndian.Uint16(b[2:])
	u.Payload = b[UDPHeaderLen:length]
	return nil
}

// Package pkt implements the packet layers the system puts on the wire:
// Ethernet II framing, ARP, IPv4 (with header checksums), UDP, ICMP echo and
// LLDP (IEEE 802.1AB TLVs, as used by the NOX-style topology discovery
// module). The design follows the gopacket layering conventions — every
// layer decodes from bytes and serializes back to bytes, and round-tripping
// is a tested invariant — but is dependency-free and limited to the
// protocols this reproduction needs.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// MAC is a 48-bit Ethernet address. Being an array it is comparable and can
// key maps, following the gopacket Endpoint rationale.
type MAC [6]byte

// Well-known addresses.
var (
	// BroadcastMAC is ff:ff:ff:ff:ff:ff.
	BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	// LLDPMulticast is the 802.1AB nearest-bridge group address LLDP
	// frames are sent to.
	LLDPMulticast = MAC{0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}
)

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IsZero reports whether m is all zeros (unset).
func (m MAC) IsZero() bool { return m == MAC{} }

// LocalMAC derives a deterministic locally-administered unicast MAC from a
// 40-bit identifier; the system uses it to number switch ports and VM
// interfaces ("02:" prefix = locally administered, unicast).
func LocalMAC(id uint64) MAC {
	var m MAC
	m[0] = 0x02
	m[1] = byte(id >> 32)
	m[2] = byte(id >> 24)
	m[3] = byte(id >> 16)
	m[4] = byte(id >> 8)
	m[5] = byte(id)
	return m
}

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes used by the system.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
	EtherTypeLLDP EtherType = 0x88cc
)

// String names the well-known EtherTypes.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "VLAN"
	case EtherTypeLLDP:
		return "LLDP"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// EthernetHeaderLen is the length of an untagged Ethernet II header.
const EthernetHeaderLen = 14

// Frame is an Ethernet II frame. VLANID is nonzero only when an 802.1Q tag
// is present (VLANID 0 with a tag is not supported; the system never emits
// priority-tagged frames).
type Frame struct {
	Dst, Src MAC
	VLANID   uint16 // 0 = untagged
	Type     EtherType
	Payload  []byte
}

// Marshal serializes the frame (no FCS, like a kernel-space frame).
func (f *Frame) Marshal() []byte {
	n := EthernetHeaderLen + len(f.Payload)
	if f.VLANID != 0 {
		n += 4
	}
	b := make([]byte, n)
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	off := 12
	if f.VLANID != 0 {
		binary.BigEndian.PutUint16(b[off:], uint16(EtherTypeVLAN))
		binary.BigEndian.PutUint16(b[off+2:], f.VLANID&0x0fff)
		off += 4
	}
	binary.BigEndian.PutUint16(b[off:], uint16(f.Type))
	copy(b[off+2:], f.Payload)
	return b
}

// ErrTruncated is returned when a buffer is too short for the layer being
// decoded.
var ErrTruncated = errors.New("pkt: truncated packet")

// DecodeFrame parses an Ethernet II frame, unwrapping at most one 802.1Q
// tag. The returned frame's Payload aliases b.
func DecodeFrame(b []byte) (*Frame, error) {
	var f Frame
	if err := DecodeFrameInto(&f, b); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeFrameInto is DecodeFrame decoding into a caller-provided Frame; with
// a stack-allocated Frame it does not allocate, which matters on the
// per-packet dataplane path. f.Payload aliases b.
func DecodeFrameInto(f *Frame, b []byte) error {
	if len(b) < EthernetHeaderLen {
		return fmt.Errorf("%w: ethernet header needs %d bytes, have %d",
			ErrTruncated, EthernetHeaderLen, len(b))
	}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	et := EtherType(binary.BigEndian.Uint16(b[12:14]))
	off := 14
	f.VLANID = 0
	if et == EtherTypeVLAN {
		if len(b) < 18 {
			return fmt.Errorf("%w: vlan tag", ErrTruncated)
		}
		f.VLANID = binary.BigEndian.Uint16(b[14:16]) & 0x0fff
		et = EtherType(binary.BigEndian.Uint16(b[16:18]))
		off = 18
	}
	f.Type = et
	f.Payload = b[off:]
	return nil
}

// mustAddr4 converts a netip.Addr to its 4-byte form, panicking on non-IPv4;
// callers validate first.
func mustAddr4(a netip.Addr) [4]byte {
	if !a.Is4() {
		panic("pkt: address is not IPv4: " + a.String())
	}
	return a.As4()
}

package pkt

import (
	"encoding/binary"
	"fmt"
)

// ICMP types the system understands.
const (
	ICMPEchoReply   uint8 = 0
	ICMPUnreachable uint8 = 3
	ICMPEchoRequest uint8 = 8
	ICMPTimeExceed  uint8 = 11
)

// ICMP is an ICMPv4 message; for echo messages ID and Seq are meaningful,
// for errors they carry the unused field.
type ICMP struct {
	Type, Code uint8
	ID, Seq    uint16
	Payload    []byte
}

const icmpHeaderLen = 8

// Marshal serializes the message with its checksum.
func (m *ICMP) Marshal() []byte {
	b := make([]byte, icmpHeaderLen+len(m.Payload))
	b[0], b[1] = m.Type, m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[icmpHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// DecodeICMP parses and checksum-verifies an ICMPv4 message.
func DecodeICMP(b []byte) (*ICMP, error) {
	var m ICMP
	if err := DecodeICMPInto(&m, b); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeICMPInto is DecodeICMP decoding into a caller-provided message; with
// a stack-allocated ICMP it does not allocate. m.Payload aliases b.
func DecodeICMPInto(m *ICMP, b []byte) error {
	if len(b) < icmpHeaderLen {
		return fmt.Errorf("%w: icmp header", ErrTruncated)
	}
	if Checksum(b) != 0 {
		return fmt.Errorf("pkt: icmp checksum mismatch")
	}
	m.Type, m.Code = b[0], b[1]
	m.ID = binary.BigEndian.Uint16(b[4:])
	m.Seq = binary.BigEndian.Uint16(b[6:])
	m.Payload = b[icmpHeaderLen:]
	return nil
}

// EchoReply builds the reply to an echo request, mirroring ID, Seq and
// payload.
func (m *ICMP) EchoReply() *ICMP {
	return &ICMP{Type: ICMPEchoReply, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
}

package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPProto identifies the transport protocol of an IPv4 packet.
type IPProto uint8

// Protocol numbers used by the system.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
	ProtoOSPF IPProto = 89
)

// String names the known protocols.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	case ProtoOSPF:
		return "OSPF"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 packet with an option-less header.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Proto    IPProto
	Src, Dst netip.Addr
	Payload  []byte
}

// Checksum computes the RFC 1071 internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Marshal serializes the packet, computing total length and header checksum.
func (p *IPv4) Marshal() []byte {
	b := make([]byte, IPv4HeaderLen+len(p.Payload))
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(p.Flags)<<13|p.FragOff&0x1fff)
	b[8] = p.TTL
	b[9] = uint8(p.Proto)
	src, dst := mustAddr4(p.Src), mustAddr4(p.Dst)
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], p.Payload)
	return b
}

// DecodeIPv4 parses an IPv4 packet and verifies the header checksum. Options
// are skipped; the returned Payload aliases b.
func DecodeIPv4(b []byte) (*IPv4, error) {
	var p IPv4
	if err := DecodeIPv4Into(&p, b); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeIPv4Into is DecodeIPv4 decoding into a caller-provided packet; with
// a stack-allocated IPv4 it does not allocate. p.Payload aliases b.
func DecodeIPv4Into(p *IPv4, b []byte) error {
	if len(b) < IPv4HeaderLen {
		return fmt.Errorf("%w: ipv4 header", ErrTruncated)
	}
	if v := b[0] >> 4; v != 4 {
		return fmt.Errorf("pkt: IP version %d, want 4", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("%w: ipv4 IHL %d", ErrTruncated, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return fmt.Errorf("pkt: ipv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return fmt.Errorf("%w: ipv4 total length %d of %d", ErrTruncated, total, len(b))
	}
	p.TOS = b[1]
	p.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	p.Flags = uint8(ff >> 13)
	p.FragOff = ff & 0x1fff
	p.TTL = b[8]
	p.Proto = IPProto(b[9])
	p.Src = netip.AddrFrom4([4]byte(b[12:16]))
	p.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	p.Payload = b[ihl:total]
	return nil
}

// DecrementTTL decrements the TTL of the IPv4 header at the start of b in
// place and repairs the header checksum incrementally per RFC 1624 Eqn. 3
// (HC' = ~(~HC + ~m + m')), avoiding the full header re-checksum — and the
// packet re-marshal it used to force — on the per-hop forwarding path. It
// reports false, leaving b untouched, when b does not start with an IPv4
// header or the TTL is already zero.
func DecrementTTL(b []byte) bool {
	if len(b) < IPv4HeaderLen || b[0]>>4 != 4 || b[8] == 0 {
		return false
	}
	// m is the 16-bit header word holding TTL (high byte) and protocol.
	m := uint32(binary.BigEndian.Uint16(b[8:10]))
	b[8]--
	m1 := uint32(binary.BigEndian.Uint16(b[8:10]))
	hc := uint32(binary.BigEndian.Uint16(b[10:12]))
	sum := ^hc&0xffff + ^m&0xffff + m1
	sum = (sum & 0xffff) + (sum >> 16)
	sum = (sum & 0xffff) + (sum >> 16)
	binary.BigEndian.PutUint16(b[10:12], ^uint16(sum))
	return true
}

// pseudoHeaderSum computes the one's-complement sum of the IPv4 pseudo
// header used by UDP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto IPProto, length int) uint32 {
	s, d := mustAddr4(src), mustAddr4(dst)
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(s[0:2])) + uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2])) + uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

package ofswitch

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/openflow"
)

// Telemetry on the switch: the controller installs monitor rules with
// TELEMETRY_MOD (each rule a src/dst IPv4 prefix pair with a flow ID), the
// dataplane charges one dedicated counter pair per rule, and an exporter
// loop streams counter deltas back as TELEMETRY_EXPORT batches.
//
// Charging rides the two-tier pipeline: a microflow's monitor counter is
// resolved once, at cache fill (classify holds the read lock anyway; the
// rules of one switch are disjoint, so a linear scan finds the at-most-one
// match), cached in the published mfEntry, and thereafter charged with two
// atomic adds on the cache-hit path — the forwarding path stays lock-free
// and allocation-free no matter how many flows are monitored.
//
// The export protocol is stop-and-wait per rule with a full-resync escape
// hatch: a rule's delta is in flight until the controller acknowledges the
// export's (epoch, seq), at which point the switch folds the delta into its
// acknowledged baseline. A rule whose export goes unacknowledged (lost ack,
// controller stall) times out back to the unsynced state and re-baselines
// with an absolute FULL export, which the controller merges by maximum —
// deltas are therefore applied at most once, and any loss is repaired by an
// idempotent absolute, never by re-adding. Session death and epoch change
// (controller failover) unsync every rule the same way.
//
// The stateful-offload steer path (offload.go) bypasses the flow table and
// with it these counters; monitored traffic on an offloaded microflow is
// invisible to telemetry. Deployments that want exact telemetry keep
// offload off — the caveat is documented on SetStatefulOffload.

// DefaultTelemetryInterval is the export cadence before the controller sets
// one (protocol time).
const DefaultTelemetryInterval = 500 * time.Millisecond

// telAckTimeoutTicks is how many export intervals an unacknowledged export
// may stay in flight before its rules fall back to a FULL re-baseline.
const telAckTimeoutTicks = 3

// telMaxEntriesPerExport chunks one tick's entries across messages so a
// frame stays far below the 64 KiB OpenFlow ceiling (worst-case entry is 25
// varint bytes).
const telMaxEntriesPerExport = 2048

// telCounter is one monitor rule's packet/byte counter pair.
type telCounter struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
}

func (c *telCounter) add(n, nBytes uint64) {
	c.packets.Add(n)
	c.bytes.Add(nBytes)
}

// monRule is one compiled monitor rule: the wire spec plus pre-masked
// prefixes for the classify-time compare.
type monRule struct {
	spec         openflow.MonitorRule
	src, srcMask uint32
	dst, dstMask uint32
	ctr          *telCounter
}

// monitorSet is an immutable compiled rule set; replacement swaps the whole
// set under the table write lock and invalidates the microflow cache so
// stale counter pointers die with their cache lines.
type monitorSet struct {
	rules []monRule
}

func prefixMask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

func compileMonRule(spec openflow.MonitorRule, ctr *telCounter) monRule {
	sm, dm := prefixMask(spec.SrcBits), prefixMask(spec.DstBits)
	return monRule{
		spec: spec,
		src:  binary.BigEndian.Uint32(spec.Src[:]) & sm, srcMask: sm,
		dst: binary.BigEndian.Uint32(spec.Dst[:]) & dm, dstMask: dm,
		ctr: ctr,
	}
}

// match resolves key to its monitor counter, or nil. Runs on the classify
// slow path only; installed rules are disjoint so the first hit is the hit.
func (ms *monitorSet) match(key *openflow.Match) *telCounter {
	if key.DlType != 0x0800 {
		return nil
	}
	src := binary.BigEndian.Uint32(key.NwSrc[:])
	dst := binary.BigEndian.Uint32(key.NwDst[:])
	for i := range ms.rules {
		r := &ms.rules[i]
		if src&r.srcMask == r.src && dst&r.dstMask == r.dst {
			return r.ctr
		}
	}
	return nil
}

// setMonitors replaces the table's monitor rule set. Counters carry over
// for rules whose (ID, prefixes) survive the replacement — a level-triggered
// re-send of the same rules is a no-op — and start at zero for new rules.
func (t *flowTable) setMonitors(rules []openflow.MonitorRule) {
	old := t.mon.Load()
	var set *monitorSet
	if len(rules) > 0 {
		set = &monitorSet{rules: make([]monRule, 0, len(rules))}
		for _, spec := range rules {
			var ctr *telCounter
			if old != nil {
				for i := range old.rules {
					if old.rules[i].spec == spec {
						ctr = old.rules[i].ctr
						break
					}
				}
			}
			if ctr == nil {
				ctr = &telCounter{}
			}
			set.rules = append(set.rules, compileMonRule(spec, ctr))
		}
	}
	if set == nil && old == nil {
		return
	}
	t.mu.Lock()
	t.mon.Store(set)
	t.invalidateLocked()
	t.mu.Unlock()
}

// MonitorCounterInfo is a read-only snapshot of one monitor rule's absolute
// counters, for tests and invariant checks.
type MonitorCounterInfo struct {
	Rule    openflow.MonitorRule
	Packets uint64
	Bytes   uint64
}

// monitorCounters snapshots the live rule set's absolute counters.
func (t *flowTable) monitorCounters() []MonitorCounterInfo {
	ms := t.mon.Load()
	if ms == nil {
		return nil
	}
	out := make([]MonitorCounterInfo, len(ms.rules))
	for i := range ms.rules {
		r := &ms.rules[i]
		out[i] = MonitorCounterInfo{Rule: r.spec,
			Packets: r.ctr.packets.Load(), Bytes: r.ctr.bytes.Load()}
	}
	return out
}

// MonitorCounters returns the switch's installed monitor rules with their
// absolute counters (what the telemetry stream's acknowledged view
// converges to).
func (s *Switch) MonitorCounters() []MonitorCounterInfo {
	return s.table.monitorCounters()
}

// telRuleState is the exporter's per-rule bookkeeping.
type telRuleState struct {
	spec        openflow.MonitorRule
	basePackets uint64 // counters the controller has acknowledged
	baseBytes   uint64
	synced      bool // false → next export carries absolutes (FULL)
	inflight    bool // an unacknowledged export covers this rule
}

// telPending is one unacknowledged export chunk: the absolute counter
// snapshot it reported, advanced into the baselines when its ack arrives.
type telPending struct {
	sentAt time.Time
	snaps  []telSnap
}

type telSnap struct {
	id             uint32
	packets, bytes uint64
}

// telState is the switch's exporter state, touched by the control loop
// (TELEMETRY_MOD/ACK) and the export tick.
type telState struct {
	mu       sync.Mutex
	epoch    uint64
	interval time.Duration
	seq      uint32
	rules    map[uint32]*telRuleState
	pending  map[uint32]*telPending // seq → chunk
	// poke wakes the export loop out of its armed timer: a program push must
	// take effect (first FULL, new interval) now, not after the stale timer
	// — which may be the 500ms default while the new cadence is 20ms.
	poke chan struct{}
}

// wake nudges the export loop (non-blocking; a pending nudge coalesces).
func (ts *telState) wake() {
	select {
	case ts.poke <- struct{}{}:
	default:
	}
}

func (ts *telState) currentInterval() time.Duration {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.interval <= 0 {
		return DefaultTelemetryInterval
	}
	return ts.interval
}

// unsyncLocked drops every rule back to the FULL re-baseline state; called
// on session loss and ack timeout.
func (ts *telState) unsyncLocked() {
	for _, r := range ts.rules {
		r.synced = false
		r.inflight = false
	}
	ts.pending = nil
}

// telSessionDown marks the control session lost: everything in flight is
// forgotten and the next connected tick re-baselines with FULL exports.
func (s *Switch) telSessionDown() {
	s.tel.mu.Lock()
	s.tel.unsyncLocked()
	s.tel.mu.Unlock()
}

// handleTelemetryMod applies a full monitor rule-set replacement.
func (s *Switch) handleTelemetryMod(m *openflow.TelemetryMod) {
	s.table.setMonitors(m.Rules)
	ts := &s.tel
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if m.IntervalMS > 0 {
		ts.interval = time.Duration(m.IntervalMS) * time.Millisecond
	}
	if m.Epoch != ts.epoch {
		// A new controller instance owns the stream: restart the protocol so
		// its aggregator is re-baselined by absolutes, never fed deltas it
		// has no baseline for.
		ts.epoch = m.Epoch
		ts.seq = 0
		ts.rules = nil
		ts.pending = nil
	}
	prev := ts.rules
	ts.rules = make(map[uint32]*telRuleState, len(m.Rules))
	for _, spec := range m.Rules {
		if old, ok := prev[spec.ID]; ok && old.spec == spec {
			ts.rules[spec.ID] = old // identical rule: stream state survives
			continue
		}
		ts.rules[spec.ID] = &telRuleState{spec: spec}
	}
	// Pending chunks may reference dropped rules; their acks just no-op.
	ts.wake()
}

// handleTelemetryAck folds an acknowledged export into the baselines.
func (s *Switch) handleTelemetryAck(m *openflow.TelemetryAck) {
	ts := &s.tel
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if m.Epoch != ts.epoch {
		return
	}
	p := ts.pending[m.Seq]
	if p == nil {
		return
	}
	delete(ts.pending, m.Seq)
	for _, snap := range p.snaps {
		r := ts.rules[snap.id]
		if r == nil {
			continue
		}
		r.basePackets, r.baseBytes = snap.packets, snap.bytes
		r.synced = true
		r.inflight = false
	}
}

// telemetryLoop drives the export cadence until Stop.
func (s *Switch) telemetryLoop() {
	defer s.wg.Done()
	for {
		t := s.clk.NewTimer(s.tel.currentInterval())
		select {
		case <-s.stop:
			t.Stop()
			return
		case <-s.tel.poke:
			// A fresh program: export its first FULLs immediately and re-arm
			// with its interval.
			t.Stop()
			s.telemetryTick()
		case <-t.C():
			s.telemetryTick()
		}
	}
}

// telemetryTick builds and sends this interval's exports: FULL absolutes
// for unsynced rules, deltas for synced ones, nothing for idle ones.
func (s *Switch) telemetryTick() {
	abs := s.table.monitorCounters()
	ts := &s.tel
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.rules) == 0 {
		return
	}
	now := s.clk.Now()
	timeout := time.Duration(telAckTimeoutTicks) * ts.currentIntervalLocked()
	for seq, p := range ts.pending {
		if now.Sub(p.sentAt) >= timeout {
			delete(ts.pending, seq)
			for _, snap := range p.snaps {
				if r := ts.rules[snap.id]; r != nil {
					r.synced = false
					r.inflight = false
				}
			}
		}
	}
	var full, delta []openflow.TelemetryEntry
	var fullSnaps, deltaSnaps []telSnap
	for _, mc := range abs {
		r := ts.rules[mc.Rule.ID]
		if r == nil || r.inflight {
			continue
		}
		snap := telSnap{id: mc.Rule.ID, packets: mc.Packets, bytes: mc.Bytes}
		if !r.synced {
			full = append(full, openflow.TelemetryEntry{ID: mc.Rule.ID,
				Packets: mc.Packets, Bytes: mc.Bytes})
			fullSnaps = append(fullSnaps, snap)
		} else if mc.Packets != r.basePackets || mc.Bytes != r.baseBytes {
			delta = append(delta, openflow.TelemetryEntry{ID: mc.Rule.ID,
				Packets: mc.Packets - r.basePackets, Bytes: mc.Bytes - r.baseBytes})
			deltaSnaps = append(deltaSnaps, snap)
		}
	}
	s.sendExportsLocked(now, openflow.TelemetryFull, full, fullSnaps)
	s.sendExportsLocked(now, 0, delta, deltaSnaps)
}

func (ts *telState) currentIntervalLocked() time.Duration {
	if ts.interval <= 0 {
		return DefaultTelemetryInterval
	}
	return ts.interval
}

// sendExportsLocked chunks entries into export messages; each successfully
// queued chunk becomes a pending record and marks its rules in flight.
func (s *Switch) sendExportsLocked(now time.Time, flags uint8, entries []openflow.TelemetryEntry, snaps []telSnap) {
	ts := &s.tel
	for len(entries) > 0 {
		n := len(entries)
		if n > telMaxEntriesPerExport {
			n = telMaxEntriesPerExport
		}
		ts.seq++
		ex := &openflow.TelemetryExport{Epoch: ts.epoch, Seq: ts.seq,
			Flags: flags, Entries: entries[:n]}
		if s.send(ex) != nil {
			ts.seq--
			return // not connected or queue full; retried whole next tick
		}
		if ts.pending == nil {
			ts.pending = make(map[uint32]*telPending)
		}
		ts.pending[ts.seq] = &telPending{sentAt: now, snaps: snaps[:n]}
		for _, snap := range snaps[:n] {
			if r := ts.rules[snap.id]; r != nil {
				r.inflight = true
			}
		}
		entries, snaps = entries[n:], snaps[n:]
	}
}

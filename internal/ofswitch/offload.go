package ofswitch

// Stateful offload: XFSM-style local state machines in the switch, after
// the OpenState idea ("Towards Wire-speed Platform-agnostic Control of
// OpenFlow Switches") — steady traffic whose behaviour the switch has
// already learned is handled entirely inside the datapath, without
// consulting the flow table and without punting to the controller.
//
// Two machines are implemented:
//
//   - MAC learning: every frame's source MAC is learned against its ingress
//     port (one atomic word per binding). A frame whose unicast destination
//     is a learned MAC forwards straight to the learned port — a learned
//     flow is NEVER punted, even when the flow table has no matching entry.
//   - Port-pair pinning: when a frame's microflow resolves to a plain
//     single-output decision — from the MAC machine, or from a flow-table
//     entry with exactly one output action and no rewrites — the (exact
//     key → output port) pair is pinned. Subsequent frames of that
//     microflow short-circuit everything: no flow-table consult, no
//     per-flow counter updates (like hardware offload, offloaded packets
//     are invisible to software flow stats; port counters still advance).
//
// Offload is a deliberate semantic trade and is OFF by default: enabling it
// gives the switch learning-switch behaviour for unicast traffic the
// controller never programmed, and flow-table packet/byte counters stop
// advancing for pinned traffic. Flows with rewrite actions are never
// pinned, so routed (MAC-rewriting) paths keep their exact OpenFlow
// semantics even with offload enabled. Pins are generation-checked against
// the microflow cache shard of the delivering port, so any flow-mod
// invalidates them wholesale and the next packet re-learns under the new
// table; the MAC table survives flow-mods (pure L2 state) but is wiped by
// Reboot and by disabling offload.

import (
	"sync/atomic"

	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// MAC-table and pin-table geometry: direct-mapped power-of-two arrays, like
// the microflow cache. Collisions simply overwrite — both tables are
// caches, not authorities.
const (
	olMACBits = 10
	olMACSize = 1 << olMACBits
	olMACMask = olMACSize - 1

	olPinBits = 10
	olPinSize = 1 << olPinBits
	olPinMask = olPinSize - 1
)

// olPin is one pinned microflow: an exact key resolved to its output port,
// valid for one generation of the delivering port's cache shard.
type olPin struct {
	key openflow.Match
	gen uint64
	out uint16
}

// olShard is the per-core slice of the pin table plus its hit counters,
// padded so shards never share a cache line through their counters.
type olShard struct {
	pinHits atomic.Uint64
	macHits atomic.Uint64
	_       [48]byte
	pins    [olPinSize]atomic.Pointer[olPin]
}

// offloadState is the per-switch offload layer. It is allocated on first
// enable; the dataplane reaches it through an atomic pointer so the default
// (offload never enabled) path pays one nil-check per frame.
type offloadState struct {
	enabled atomic.Bool
	// macs packs each learned binding into one word: macBits(mac)<<16|port.
	// Zero means empty (ports are 1-based and the zero MAC is never
	// learned), so learning, lookup and wipe are single atomic word ops.
	macs   [olMACSize]atomic.Uint64
	shards []olShard
	mask   uint32
}

func newOffloadState(nShards int) *offloadState {
	return &offloadState{shards: make([]olShard, nShards), mask: uint32(nShards - 1)}
}

// macHash indexes the MAC table; fmix64 avalanches so adjacent
// locally-administered MACs (which differ only in low octets) spread.
func macHash(mac pkt.MAC) uint32 {
	h := uint64(mac[0])<<40 | uint64(mac[1])<<32 | uint64(mac[2])<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h)
}

func macWord(mac pkt.MAC) uint64 {
	return (uint64(mac[0])<<40 | uint64(mac[1])<<32 | uint64(mac[2])<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])) << 16
}

// learn records srcMAC→port. The common steady-state case (binding already
// correct) is a single atomic load.
func (o *offloadState) learn(src pkt.MAC, port uint16) {
	if src.IsZero() || src.IsMulticast() {
		return
	}
	w := macWord(src) | uint64(port)
	slot := &o.macs[macHash(src)&olMACMask]
	if slot.Load() != w {
		slot.Store(w)
	}
}

// learnedPort reports the port a MAC was learned on.
func (o *offloadState) learnedPort(mac pkt.MAC) (uint16, bool) {
	w := o.macs[macHash(mac)&olMACMask].Load()
	if w == 0 || w&^0xffff != macWord(mac) {
		return 0, false
	}
	return uint16(w & 0xffff), true
}

func (o *offloadState) shardFor(port uint16) *olShard {
	return &o.shards[uint32(port)&o.mask]
}

// pin records key→out under the current generation of the delivering
// port's cache shard; a later flow-mod bumps that generation and the pin
// dies with every cache line.
func (o *offloadState) pin(t *flowTable, key *openflow.Match, out uint16) {
	gen := t.shardFor(key.InPort).gen.Load()
	sh := o.shardFor(key.InPort)
	sh.pins[uint32(key.KeyHash())&olPinMask].Store(&olPin{key: *key, gen: gen, out: out})
}

// steer runs the offload machines for a run of n frames sharing one
// microflow key: source learning, then the pin machine, then the L2 machine
// (which installs a pin of its own so the next packet of the flow takes the
// shortest path). One steer decides the whole run — that is the batch-path
// amortization. ok=false falls through to the flow table.
func (o *offloadState) steer(t *flowTable, key *openflow.Match, n uint64) (uint16, bool) {
	o.learn(key.DlSrc, key.InPort)
	sh := o.shardFor(key.InPort)
	if p := sh.pins[uint32(key.KeyHash())&olPinMask].Load(); p != nil &&
		p.gen == t.shardFor(key.InPort).gen.Load() && p.key == *key {
		sh.pinHits.Add(n)
		return p.out, true
	}
	dst := key.DlDst
	if dst.IsBroadcast() || dst.IsMulticast() {
		return 0, false
	}
	out, ok := o.learnedPort(dst)
	if !ok || out == key.InPort {
		return 0, false
	}
	sh.macHits.Add(n)
	o.pin(t, key, out)
	return out, true
}

// observe watches a flow-table decision for pinnability: exactly one
// output action to a physical port and nothing else. Rewriting flows are
// deliberately never pinned — their per-packet mutations and counters must
// keep flowing through the table pipeline.
func (o *offloadState) observe(t *flowTable, key *openflow.Match, actions []openflow.Action) {
	if len(actions) != 1 {
		return
	}
	out, ok := actions[0].(*openflow.ActionOutput)
	if !ok || out.Port == 0 || out.Port >= openflow.PortMax {
		return
	}
	o.pin(t, key, out.Port)
}

// reset wipes both machines (switch reboot, offload disable).
func (o *offloadState) reset() {
	for i := range o.macs {
		o.macs[i].Store(0)
	}
	for s := range o.shards {
		for i := range o.shards[s].pins {
			o.shards[s].pins[i].Store(nil)
		}
	}
}

// OffloadStats reports the offload machines' hit counters.
type OffloadStats struct {
	PinHits uint64 // frames forwarded by a pinned microflow
	MACHits uint64 // frames forwarded by the MAC learning machine
}

// SetStatefulOffload enables or disables the stateful offload layer. The
// layer starts disabled — the paper-faithful pipeline — and disabling it
// again wipes all learned state, so re-enabling starts cold.
func (s *Switch) SetStatefulOffload(on bool) {
	ol := s.offload.Load()
	if on {
		if ol == nil {
			ol = newOffloadState(len(s.table.shards))
			if !s.offload.CompareAndSwap(nil, ol) {
				ol = s.offload.Load()
			}
		}
		ol.enabled.Store(true)
		return
	}
	if ol != nil {
		ol.enabled.Store(false)
		ol.reset()
	}
}

// StatefulOffloadEnabled reports whether the offload layer is active.
func (s *Switch) StatefulOffloadEnabled() bool {
	ol := s.offload.Load()
	return ol != nil && ol.enabled.Load()
}

// OffloadStats returns the offload hit counters (zero when never enabled).
func (s *Switch) OffloadStats() OffloadStats {
	ol := s.offload.Load()
	if ol == nil {
		return OffloadStats{}
	}
	var st OffloadStats
	for i := range ol.shards {
		st.PinHits += ol.shards[i].pinHits.Load()
		st.MACHits += ol.shards[i].macHits.Load()
	}
	return st
}

//go:build !race

package ofswitch

const raceEnabled = false

package ofswitch

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// harness wires one switch with two data ports to a fake controller over
// net.Pipe and to two raw endpoints acting as hosts.
type harness struct {
	t    *testing.T
	sw   *Switch
	net  *netemu.Network
	h1   *netemu.Endpoint // far end of port 1
	h2   *netemu.Endpoint // far end of port 2
	conn net.Conn         // controller side of the pipe
	msgs chan openflow.Message
}

func newHarness(t *testing.T, clk clock.Clock) *harness {
	t.Helper()
	if clk == nil {
		clk = clock.System()
	}
	n := netemu.NewNetwork(clk)
	t.Cleanup(n.Close)
	sw := New(Config{DPID: 0x2a, Name: "s1", Clock: clk, MissSendLen: 64})
	p1, h1 := n.NewCable(netemu.CableOpts{NameA: "s1:1", NameB: "h1",
		MACA: pkt.LocalMAC(0x11), MACB: pkt.LocalMAC(0xA1)})
	p2, h2 := n.NewCable(netemu.CableOpts{NameA: "s1:2", NameB: "h2",
		MACA: pkt.LocalMAC(0x12), MACB: pkt.LocalMAC(0xA2)})
	if err := sw.AttachPort(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(2, p2); err != nil {
		t.Fatal(err)
	}
	swConn, ctlConn := net.Pipe()
	if err := sw.Start(swConn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Stop)
	h := &harness{t: t, sw: sw, net: n, h1: h1, h2: h2, conn: ctlConn,
		msgs: make(chan openflow.Message, 256)}
	go func() {
		for {
			m, err := openflow.ReadMessage(ctlConn)
			if err != nil {
				close(h.msgs)
				return
			}
			h.msgs <- m
		}
	}()
	// Consume the switch's HELLO and answer it.
	if m := h.expect(openflow.TypeHello); m == nil {
		t.Fatal("no hello from switch")
	}
	h.send(&openflow.Hello{})
	return h
}

func (h *harness) send(m openflow.Message) {
	h.t.Helper()
	if err := openflow.WriteMessage(h.conn, m); err != nil {
		h.t.Fatalf("controller send: %v", err)
	}
}

// expect waits for the next message of the given type, discarding others.
func (h *harness) expect(t openflow.Type) openflow.Message {
	h.t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case m, ok := <-h.msgs:
			if !ok {
				h.t.Fatal("connection closed while waiting")
			}
			if m.MsgType() == t {
				return m
			}
		case <-deadline:
			h.t.Fatalf("timed out waiting for %v", t)
		}
	}
}

// expectFrame waits for a frame on ep.
func expectFrame(t *testing.T, ch <-chan []byte, what string) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(3 * time.Second):
		t.Fatalf("no frame: %s", what)
		return nil
	}
}

func capture(ep *netemu.Endpoint) <-chan []byte {
	ch := make(chan []byte, 64)
	ep.SetReceiver(func(f []byte) { ch <- append([]byte(nil), f...) })
	return ch
}

func udpFrame(src, dst pkt.MAC, srcIP, dstIP string, sport, dport uint16, payload string) []byte {
	s, d := netip.MustParseAddr(srcIP), netip.MustParseAddr(dstIP)
	u := &pkt.UDP{SrcPort: sport, DstPort: dport, Payload: []byte(payload)}
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: s, Dst: d,
		Payload: u.Marshal(s, d)}
	f := &pkt.Frame{Dst: dst, Src: src, Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	return f.Marshal()
}

func TestHandshakeAndFeatures(t *testing.T) {
	h := newHarness(t, nil)
	req := &openflow.FeaturesRequest{}
	req.SetXID(77)
	h.send(req)
	m := h.expect(openflow.TypeFeaturesReply).(*openflow.FeaturesReply)
	if m.XID() != 77 || m.DatapathID != 0x2a || len(m.Ports) != 2 {
		t.Fatalf("features = %+v", m)
	}
	if m.Ports[0].PortNo != 1 || m.Ports[1].PortNo != 2 {
		t.Fatalf("port order = %v,%v", m.Ports[0].PortNo, m.Ports[1].PortNo)
	}
	if m.Ports[0].Name != "s1-eth1" {
		t.Fatalf("port name = %q", m.Ports[0].Name)
	}
}

func TestEchoKeepalive(t *testing.T) {
	h := newHarness(t, nil)
	req := &openflow.EchoRequest{Data: []byte("ka")}
	req.SetXID(5)
	h.send(req)
	rep := h.expect(openflow.TypeEchoReply).(*openflow.EchoReply)
	if rep.XID() != 5 || string(rep.Data) != "ka" {
		t.Fatalf("echo = %+v", rep)
	}
}

func TestGetSetConfig(t *testing.T) {
	h := newHarness(t, nil)
	h.send(&openflow.SetConfig{MissSendLen: 100})
	h.send(&openflow.GetConfigRequest{})
	rep := h.expect(openflow.TypeGetConfigReply).(*openflow.GetConfigReply)
	if rep.MissSendLen != 100 {
		t.Fatalf("miss_send_len = %d", rep.MissSendLen)
	}
}

func TestPacketInOnMissIsBufferedAndTruncated(t *testing.T) {
	h := newHarness(t, nil)
	long := make([]byte, 300)
	f := &pkt.Frame{Dst: pkt.LocalMAC(0xA2), Src: pkt.LocalMAC(0xA1),
		Type: pkt.EtherTypeIPv4, Payload: long}
	h.h1.Send(f.Marshal())
	pin := h.expect(openflow.TypePacketIn).(*openflow.PacketIn)
	if pin.InPort != 1 || pin.Reason != openflow.PacketInReasonNoMatch {
		t.Fatalf("packet-in = %+v", pin)
	}
	if pin.BufferID == openflow.NoBuffer {
		t.Fatal("expected buffered packet-in")
	}
	if len(pin.Data) != 64 {
		t.Fatalf("miss data len = %d, want 64 (miss_send_len)", len(pin.Data))
	}
	if int(pin.TotalLen) != 14+300 {
		t.Fatalf("total len = %d", pin.TotalLen)
	}
}

func TestFlowModForwardsTraffic(t *testing.T) {
	h := newHarness(t, nil)
	rx2 := capture(h.h2)
	fm := &openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FlowModAdd,
		Priority: 100, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	h.send(fm)
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)

	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 1, 2, "pp")
	h.h1.Send(frame)
	got := expectFrame(t, rx2, "forwarded frame")
	if string(got) != string(frame) {
		t.Fatal("frame modified by pure output action")
	}
	flows := h.sw.FlowTable()
	if len(flows) != 1 || flows[0].Packets != 1 {
		t.Fatalf("flow stats = %+v", flows)
	}
}

func TestPriorityWins(t *testing.T) {
	h := newHarness(t, nil)
	rx1 := capture(h.h1)
	rx2 := capture(h.h2)
	// Low priority: everything to port 2. High priority: UDP back out port 1.
	low := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 10, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	hiMatch := openflow.MatchAll()
	hiMatch.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto
	hiMatch.DlType = uint16(pkt.EtherTypeIPv4)
	hiMatch.NwProto = uint8(pkt.ProtoUDP)
	hi := &openflow.FlowMod{Match: hiMatch, Command: openflow.FlowModAdd,
		Priority: 200, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortInPort}}}
	h.send(low)
	h.send(hi)
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)

	udp := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 5, 6, "x")
	h.h1.Send(udp)
	expectFrame(t, rx1, "udp hairpinned to in-port by high-priority flow")

	arp := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: pkt.LocalMAC(0xA1),
		Type: pkt.EtherTypeARP, Payload: pkt.NewARPRequest(pkt.LocalMAC(0xA1),
			netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")).Marshal()}
	h.h1.Send(arp.Marshal())
	expectFrame(t, rx2, "arp forwarded by low-priority flow")
}

func TestRewriteActionsFixChecksums(t *testing.T) {
	h := newHarness(t, nil)
	rx2 := capture(h.h2)
	newDst := pkt.LocalMAC(0xDD)
	fm := &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionSetDlDst{Addr: newDst},
			&openflow.ActionSetNwDst{Addr: [4]byte{192, 168, 9, 9}},
			&openflow.ActionSetTpDst{Port: 9999},
			&openflow.ActionOutput{Port: 2},
		},
	}
	h.send(fm)
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	h.h1.Send(udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 7, 8, "data"))

	got := expectFrame(t, rx2, "rewritten frame")
	f, err := pkt.DecodeFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != newDst {
		t.Fatalf("dl_dst = %v", f.Dst)
	}
	ip, err := pkt.DecodeIPv4(f.Payload) // verifies IP checksum
	if err != nil {
		t.Fatal(err)
	}
	if ip.Dst != netip.MustParseAddr("192.168.9.9") {
		t.Fatalf("nw_dst = %v", ip.Dst)
	}
	u, err := pkt.DecodeUDP(ip.Payload, ip.Src, ip.Dst) // verifies UDP checksum
	if err != nil {
		t.Fatal(err)
	}
	if u.DstPort != 9999 || string(u.Payload) != "data" {
		t.Fatalf("udp = %+v", u)
	}
}

func TestPacketOutInlineAndFlood(t *testing.T) {
	h := newHarness(t, nil)
	rx1 := capture(h.h1)
	rx2 := capture(h.h2)
	frame := udpFrame(pkt.LocalMAC(1), pkt.LocalMAC(2), "1.1.1.1", "2.2.2.2", 1, 2, "po")
	po := &openflow.PacketOut{BufferID: openflow.NoBuffer, InPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
		Data:    frame}
	h.send(po)
	expectFrame(t, rx1, "flood to port 1")
	expectFrame(t, rx2, "flood to port 2")
}

func TestPacketOutBufferRelease(t *testing.T) {
	h := newHarness(t, nil)
	rx2 := capture(h.h2)
	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 3, 4, "buffered")
	h.h1.Send(frame)
	pin := h.expect(openflow.TypePacketIn).(*openflow.PacketIn)
	if pin.BufferID == openflow.NoBuffer {
		t.Fatal("expected buffered")
	}
	po := &openflow.PacketOut{BufferID: pin.BufferID, InPort: pin.InPort,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(po)
	got := expectFrame(t, rx2, "released buffer")
	if string(got) != string(frame) {
		t.Fatal("released frame differs")
	}
	// Releasing again must produce a buffer-unknown error.
	h.send(po)
	em := h.expect(openflow.TypeError).(*openflow.ErrorMsg)
	if em.ErrType != openflow.ErrTypeBadRequest || em.Code != openflow.ErrCodeBadRequestBufUnknown {
		t.Fatalf("error = %+v", em)
	}
}

func TestFlowModBufferRelease(t *testing.T) {
	h := newHarness(t, nil)
	rx2 := capture(h.h2)
	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 3, 4, "fmrel")
	h.h1.Send(frame)
	pin := h.expect(openflow.TypePacketIn).(*openflow.PacketIn)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 1, BufferID: pin.BufferID, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	got := expectFrame(t, rx2, "buffer released via flow-mod")
	if string(got) != string(frame) {
		t.Fatal("released frame differs")
	}
}

func TestFlowDeleteSendsFlowRemoved(t *testing.T) {
	h := newHarness(t, nil)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 5, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Flags:   openflow.FlowModFlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	del := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone}
	h.send(del)
	fr := h.expect(openflow.TypeFlowRemoved).(*openflow.FlowRemoved)
	if fr.Reason != openflow.FlowRemovedDelete || fr.Priority != 5 {
		t.Fatalf("flow removed = %+v", fr)
	}
	if h.sw.NumFlows() != 0 {
		t.Fatal("table not empty after delete")
	}
}

func TestFlowDeleteOutPortFilter(t *testing.T) {
	h := newHarness(t, nil)
	for _, port := range []uint16{1, 2} {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardInPort
		m.InPort = port // distinct matches so they coexist
		h.send(&openflow.FlowMod{Match: m, Command: openflow.FlowModAdd,
			Priority: 5, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: port}}})
	}
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	if h.sw.NumFlows() != 2 {
		t.Fatalf("flows = %d", h.sw.NumFlows())
	}
	// Delete only flows outputting to port 2.
	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
		BufferID: openflow.NoBuffer, OutPort: 2})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	flows := h.sw.FlowTable()
	if len(flows) != 1 {
		t.Fatalf("flows after filtered delete = %d", len(flows))
	}
	if out := flows[0].Actions[0].(*openflow.ActionOutput); out.Port != 1 {
		t.Fatalf("survivor outputs to %d", out.Port)
	}
}

func TestIdleTimeoutExpiry(t *testing.T) {
	clk := clock.Scaled(50)
	h := newHarness(t, clk)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 5, IdleTimeout: 2, BufferID: openflow.NoBuffer,
		OutPort: openflow.PortNone, Flags: openflow.FlowModFlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	fr := h.expect(openflow.TypeFlowRemoved).(*openflow.FlowRemoved)
	if fr.Reason != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("reason = %d", fr.Reason)
	}
	if h.sw.NumFlows() != 0 {
		t.Fatal("expired flow still installed")
	}
}

func TestHardTimeoutExpiry(t *testing.T) {
	clk := clock.Scaled(50)
	h := newHarness(t, clk)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 5, HardTimeout: 2, BufferID: openflow.NoBuffer,
		OutPort: openflow.PortNone, Flags: openflow.FlowModFlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	fr := h.expect(openflow.TypeFlowRemoved).(*openflow.FlowRemoved)
	if fr.Reason != openflow.FlowRemovedHardTimeout {
		t.Fatalf("reason = %d", fr.Reason)
	}
}

func TestOverlapCheck(t *testing.T) {
	h := newHarness(t, nil)
	a := openflow.MatchAll()
	a.Wildcards &^= openflow.WildcardDlType
	a.DlType = 0x0800
	h.send(&openflow.FlowMod{Match: a, Command: openflow.FlowModAdd, Priority: 7,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}}})
	// Wider match at same priority overlaps.
	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 7, Flags: openflow.FlowModFlagCheckOverlap,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}})
	em := h.expect(openflow.TypeError).(*openflow.ErrorMsg)
	if em.ErrType != openflow.ErrTypeFlowModFailed || em.Code != openflow.ErrCodeFlowModOverlap {
		t.Fatalf("error = %+v", em)
	}
	if h.sw.NumFlows() != 1 {
		t.Fatalf("flows = %d", h.sw.NumFlows())
	}
}

func TestModifyActions(t *testing.T) {
	h := newHarness(t, nil)
	rx1 := capture(h.h1)
	rx2 := capture(h.h2)
	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 5, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	h.h1.Send(udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 1, 2, "a"))
	expectFrame(t, rx2, "pre-modify path")

	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModModify,
		Priority: 5, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortInPort}}})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	h.h1.Send(udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 1, 2, "b"))
	expectFrame(t, rx1, "post-modify hairpin")
}

func TestModifyMissBehavesAsAdd(t *testing.T) {
	h := newHarness(t, nil)
	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModModify,
		Priority: 9, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	if h.sw.NumFlows() != 1 {
		t.Fatalf("flows = %d", h.sw.NumFlows())
	}
}

func TestStatsEndToEnd(t *testing.T) {
	h := newHarness(t, nil)
	h.send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 3, Cookie: 0xFEED, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	h.h1.Send(udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 1, 2, "st"))

	h.send(&openflow.StatsRequest{StatsType: openflow.StatsDesc})
	desc := h.expect(openflow.TypeStatsReply).(*openflow.StatsReply)
	if desc.Desc == nil || desc.Desc.Datapath != "s1" {
		t.Fatalf("desc = %+v", desc.Desc)
	}

	h.send(&openflow.StatsRequest{StatsType: openflow.StatsFlow,
		Flow: &openflow.FlowStatsRequest{Match: openflow.MatchAll(), TableID: 0xff,
			OutPort: openflow.PortNone}})
	fs := h.expect(openflow.TypeStatsReply).(*openflow.StatsReply)
	if len(fs.Flows) != 1 || fs.Flows[0].Cookie != 0xFEED {
		t.Fatalf("flow stats = %+v", fs.Flows)
	}

	h.send(&openflow.StatsRequest{StatsType: openflow.StatsTable})
	ts := h.expect(openflow.TypeStatsReply).(*openflow.StatsReply)
	if len(ts.Tables) != 1 || ts.Tables[0].ActiveCount != 1 {
		t.Fatalf("table stats = %+v", ts.Tables)
	}

	h.send(&openflow.StatsRequest{StatsType: openflow.StatsPort,
		Port: &openflow.PortStatsRequest{PortNo: openflow.PortNone}})
	ps := h.expect(openflow.TypeStatsReply).(*openflow.StatsReply)
	if len(ps.Ports) != 2 {
		t.Fatalf("port stats = %+v", ps.Ports)
	}
}

func TestPortStatusOnLinkChange(t *testing.T) {
	h := newHarness(t, nil)
	h.h1.SetLinkUp(false)
	ps := h.expect(openflow.TypePortStatus).(*openflow.PortStatus)
	if ps.Desc.PortNo != 1 || ps.Desc.State&openflow.PortStateDown == 0 {
		t.Fatalf("port status = %+v", ps)
	}
	h.h1.SetLinkUp(true)
	ps = h.expect(openflow.TypePortStatus).(*openflow.PortStatus)
	if ps.Desc.State&openflow.PortStateDown != 0 {
		t.Fatal("port still down after link restore")
	}
}

func TestUnknownMessageGetsError(t *testing.T) {
	h := newHarness(t, nil)
	v := &openflow.Vendor{VendorID: 42, Data: []byte("???")}
	v.SetXID(123)
	h.send(v)
	em := h.expect(openflow.TypeError).(*openflow.ErrorMsg)
	if em.XID() != 123 || em.ErrType != openflow.ErrTypeBadRequest {
		t.Fatalf("error = %+v xid=%d", em, em.XID())
	}
}

func TestAttachPortValidation(t *testing.T) {
	sw := New(Config{DPID: 1})
	n := netemu.NewNetwork(nil)
	defer n.Close()
	a, _ := n.NewCable(netemu.CableOpts{})
	if err := sw.AttachPort(0, a); err == nil {
		t.Fatal("port 0 accepted")
	}
	if err := sw.AttachPort(openflow.PortFlood, a); err == nil {
		t.Fatal("reserved port accepted")
	}
	if err := sw.AttachPort(1, a); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(1, a); err == nil {
		t.Fatal("duplicate port accepted")
	}
	if len(sw.Ports()) != 1 {
		t.Fatal("port list wrong")
	}
}

func TestDoubleStartFails(t *testing.T) {
	sw := New(Config{DPID: 9})
	c1, _ := net.Pipe()
	defer c1.Close()
	go func() { // drain the hello
		openflow.ReadMessage(c1) //nolint:errcheck
	}()
	swSide, ctl := net.Pipe()
	go func() {
		for {
			if _, err := openflow.ReadMessage(ctl); err != nil {
				return
			}
		}
	}()
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	defer sw.Stop()
	if err := sw.Start(swSide); err == nil {
		t.Fatal("second start succeeded")
	}
}

// TestRebootWipesDataplaneState pins crash semantics: Reboot drops every
// installed flow (no flow-removed notifications — a crashed switch sends
// nothing) and forgets buffered packets, so a buffer release after the
// crash is an error, not a stale transmission.
func TestRebootWipesDataplaneState(t *testing.T) {
	h := newHarness(t, nil)
	h.send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Flags:    openflow.FlowModFlagSendFlowRem,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	if h.sw.NumFlows() != 1 {
		t.Fatalf("flows = %d, want 1", h.sw.NumFlows())
	}
	// Park a packet in the buffer pool via a table miss... the flow above
	// matches everything, so delete it first to force the punt.
	h.send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
	})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)
	h.h1.Send(udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2),
		"10.0.0.1", "10.0.0.2", 1000, 2000, "buffered"))
	pi := h.expect(openflow.TypePacketIn).(*openflow.PacketIn)

	// Reinstall a flow so Reboot has both a table and a buffer to wipe.
	h.send(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Flags:    openflow.FlowModFlagSendFlowRem,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	})
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)

	h.sw.Reboot()
	if h.sw.NumFlows() != 0 {
		t.Fatalf("flows after reboot = %d, want 0", h.sw.NumFlows())
	}
	// The control session died with the crash.
	if _, ok := <-h.msgs; ok {
		// Drain anything queued before the close; the channel must close.
		for range h.msgs {
		}
	}
	// A Start-managed switch stays down after Reboot (only StartDialer
	// reconnects); releasing the pre-crash buffer must go nowhere.
	out := capture(h.h2)
	if got, ok := h.sw.takeBuffer(pi.BufferID); ok {
		t.Fatalf("buffer %d survived the reboot: %+v", pi.BufferID, got)
	}
	select {
	case f := <-out:
		t.Fatalf("unexpected frame after reboot: %d bytes", len(f))
	case <-time.After(50 * time.Millisecond):
	}
}

// Package ofswitch implements a software OpenFlow 1.0 switch — the
// reproduction's stand-in for the Open vSwitch instances the paper runs in
// Linux network namespaces. A Switch owns netemu endpoints as its ports,
// classifies arriving frames against a priority-ordered flow table, executes
// the standard OpenFlow 1.0 actions (including L2/L3 rewrites with checksum
// repair), punts table misses to its controller as packet-ins, and speaks
// the full control protocol: handshake, flow-mods with idle/hard timeouts
// and flow-removed notifications, packet-out, port-status, barrier, and
// desc/flow/aggregate/table/port statistics.
package ofswitch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/openflow"
)

// flowEntry is one installed flow. The immutable identity fields are written
// once under the table write lock; the hot-path counters are per-entry
// atomics so cached lookups never take a lock.
type flowEntry struct {
	match       openflow.Match
	priority    uint16
	cookie      uint64
	idleTimeout uint16
	hardTimeout uint16
	flags       uint16
	// actions is replaced wholesale (never mutated in place) under the
	// table write lock; readers capture the slice under the read lock or
	// from a microflow cache entry published after the capture.
	actions []openflow.Action

	created  time.Time
	lastUsed atomic.Int64 // UnixNano of the last matched packet; 0 = never
	packets  atomic.Uint64
	bytes    atomic.Uint64
	seq      uint64 // insertion order tiebreak
}

// hit records one matched packet. Lock-free: it runs on the dataplane for
// every forwarded frame, concurrently across all ports of the switch.
func (e *flowEntry) hit(frameLen int, nowNanos int64) {
	e.hitN(1, uint64(frameLen), nowNanos)
}

// hitN records a run of n matched packets totalling nBytes in one set of
// atomic updates — the batch path charges a whole same-key run at once.
func (e *flowEntry) hitN(n, nBytes uint64, nowNanos int64) {
	e.packets.Add(n)
	e.bytes.Add(nBytes)
	e.lastUsed.Store(nowNanos)
}

// FlowInfo is a read-only snapshot of one flow entry, for tests and the GUI.
// Actions is a deep copy: holders may inspect it at leisure while flow-mods
// keep rewriting the live entry.
type FlowInfo struct {
	Match       openflow.Match
	Priority    uint16
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Actions     []openflow.Action
	Packets     uint64
	Bytes       uint64
	Age         time.Duration
}

// Microflow cache geometry: per shard, a fixed, power-of-two direct-mapped
// array so the fast path is one masked hash and one atomic pointer load.
// The cache is sharded by the delivering port (one shard per core, see
// newFlowTable) so parallel forwarding on different ports fills and probes
// disjoint slot arrays instead of bouncing one array's cache lines — and,
// because each shard has its own generation counter, disjoint generation
// words too.
const (
	mfCacheBits = 10
	mfCacheSize = 1 << mfCacheBits
	mfCacheMask = mfCacheSize - 1

	// mfMaxShards caps the shard count; beyond this the slot arrays stop
	// paying for themselves in memory per switch.
	mfMaxShards = 16
)

// mfEntry is one microflow cache line: an exact packet key resolved to its
// matching flow and that flow's action list, valid for one table generation.
// Entries are immutable after publication; invalidation is wholesale via the
// table generation counter, so flow-mod semantics never depend on finding
// and scrubbing individual lines.
type mfEntry struct {
	key     openflow.Match
	gen     uint64
	flow    *flowEntry
	actions []openflow.Action
	// mon is the telemetry counter of the monitor rule covering this
	// microflow, resolved once at cache fill (nil when unmonitored). The
	// cache-hit path charges it with two atomic adds — monitoring rides the
	// existing zero-alloc fast path instead of adding a second classifier.
	mon *telCounter
}

// mfShard is one per-core slice of the microflow cache: its own generation
// counter (padded onto a private cache line so invalidation and hit checks
// on different shards never contend) and its own direct-mapped slot array.
type mfShard struct {
	gen   atomic.Uint64
	_     [56]byte
	slots [mfCacheSize]atomic.Pointer[mfEntry]
}

// tableCounters is one shard of the table-level counters, padded to a cache
// line. Every forwarded packet bumps lookups/matched; a single shared
// counter would make all ports of a switch bounce one cache line per packet
// — the very contention the lock-free hit path exists to avoid — so shards
// are picked by ingress port and summed on demand.
type tableCounters struct {
	lookups   atomic.Uint64
	matched   atomic.Uint64
	cacheHits atomic.Uint64
	_         [40]byte
}

// counterShards must be a power of two.
const counterShards = 8

// flowTable is a single OpenFlow 1.0 table with a two-tier lookup pipeline.
//
// Tier 1 is an exact-match microflow cache (the Open vSwitch idea): a
// direct-mapped array indexed by a hash of the packet's exact header key,
// consulted with only atomic loads. A hit yields the pre-resolved action
// list and bumps per-entry atomic counters — the steady-state forwarding
// path takes zero locks and is O(1) in the number of installed flows.
//
// Tier 2 is the priority-ordered linear classifier, demoted to a cache-fill
// slow path behind the read half of an RWMutex. Flow-mods, expiry and other
// mutations take the write lock and bump every shard's generation, which
// atomically invalidates every cache line; the next packet of each
// microflow re-classifies and refills. This keeps OF 1.0 semantics exact: a
// barrier'd flow-mod is observed by the very next lookup.
type flowTable struct {
	mu      sync.RWMutex
	entries []*flowEntry
	seq     uint64

	// shards is the microflow cache, one shard per core (sized at
	// construction from GOMAXPROCS, rounded up to a power of two), selected
	// by the delivering port's shard ID so each port goroutine works a
	// private slot array.
	shards    []mfShard
	shardMask uint32
	counters  [counterShards]tableCounters

	// mon is the installed monitor rule set (telemetry.go), replaced
	// wholesale under the write lock; nil when nothing is monitored so the
	// unmonitored pipeline pays one pointer load per cache fill and nothing
	// on cache hits.
	mon atomic.Pointer[monitorSet]

	// disableCache forces every lookup through the tier-2 classifier; a
	// benchmark/test knob to measure the cache against its slow path.
	disableCache bool
}

// newFlowTable sizes the microflow cache shards to the core count: one
// shard per GOMAXPROCS, rounded up to a power of two (so shard selection is
// a mask), capped at mfMaxShards.
func newFlowTable() *flowTable {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < mfMaxShards {
		n <<= 1
	}
	return &flowTable{shards: make([]mfShard, n), shardMask: uint32(n - 1)}
}

// shardFor returns the microflow cache shard owned by the delivering port.
func (t *flowTable) shardFor(port uint16) *mfShard {
	return &t.shards[uint32(port)&t.shardMask]
}

// sortLocked restores the priority ordering after insertion.
func (t *flowTable) sortLocked() {
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].priority != t.entries[j].priority {
			return t.entries[i].priority > t.entries[j].priority
		}
		return t.entries[i].seq < t.entries[j].seq
	})
}

// invalidateLocked marks every microflow cache line stale by bumping every
// shard's generation. Callers hold the write lock; each bump publishes
// after the mutation it covers because the shard generation is re-read
// under the read lock (or re-checked against a line's recorded generation)
// by every consumer.
func (t *flowTable) invalidateLocked() {
	for i := range t.shards {
		t.shards[i].gen.Add(1)
	}
}

// lookup resolves key to the action list of the highest-priority covering
// flow, updating that flow's counters, or reports ok=false for a table miss
// (the punt path — misses are never cached, so a controller installing a
// flow takes effect on the next packet). The returned slice must not be
// mutated. lookup is lookupN for a single frame.
func (t *flowTable) lookup(key *openflow.Match, frameLen int, nowNanos int64) ([]openflow.Action, bool) {
	return t.lookupN(key, 1, uint64(frameLen), nowNanos)
}

// lookupN is lookup for a run of n same-key frames totalling nBytes: one
// cache probe (or one classifier scan) and one set of counter updates cover
// the whole run — the batch path's per-unique-key amortization.
func (t *flowTable) lookupN(key *openflow.Match, n, nBytes uint64, nowNanos int64) ([]openflow.Action, bool) {
	c := &t.counters[key.InPort&(counterShards-1)]
	c.lookups.Add(n)
	var shard *mfShard
	var slot *atomic.Pointer[mfEntry]
	if !t.disableCache {
		shard = t.shardFor(key.InPort)
		slot = &shard.slots[uint32(key.KeyHash())&mfCacheMask]
		if ce := slot.Load(); ce != nil && ce.gen == shard.gen.Load() && ce.key == *key {
			c.matched.Add(n)
			c.cacheHits.Add(n)
			ce.flow.hitN(n, nBytes, nowNanos)
			if ce.mon != nil {
				ce.mon.add(n, nBytes)
			}
			return ce.actions, true
		}
	}
	return t.classify(key, n, nBytes, nowNanos, shard, slot, c)
}

// classify is the tier-2 slow path: scan the priority-ordered entries under
// the read lock, then publish the resolution into the caller's cache slot.
// The shard generation is captured under the read lock, so a mutation
// racing the publication leaves a line that is already stale — never a
// wrong hit. The counter update also happens under the read lock, so on
// this path a concurrent delete/expiry cannot snapshot flow-removed totals
// until the packet is counted. (The tier-1 hit path counts lock-free after
// its generation check; a packet racing the removal there may miss the
// notification totals — indistinguishable from the packet arriving just
// after removal, which OpenFlow permits.)
func (t *flowTable) classify(key *openflow.Match, n, nBytes uint64, nowNanos int64, shard *mfShard, slot *atomic.Pointer[mfEntry], c *tableCounters) ([]openflow.Action, bool) {
	t.mu.RLock()
	var gen uint64
	if shard != nil {
		gen = shard.gen.Load()
	}
	for _, e := range t.entries {
		if e.match.Covers(key) {
			actions := e.actions
			if hasMultipath(actions) {
				actions = resolveMultipath(actions, key)
			}
			c.matched.Add(n)
			e.hitN(n, nBytes, nowNanos)
			var mc *telCounter
			if ms := t.mon.Load(); ms != nil {
				if mc = ms.match(key); mc != nil {
					mc.add(n, nBytes)
				}
			}
			if slot != nil {
				slot.Store(&mfEntry{key: *key, gen: gen, flow: e, actions: actions, mon: mc})
			}
			t.mu.RUnlock()
			return actions, true
		}
	}
	t.mu.RUnlock()
	return nil, false
}

// hasMultipath reports whether the action list carries a multipath action.
// The scan runs only on slow paths (classify, packet-out); the cached hit
// path never sees one because resolution happens before publication.
func hasMultipath(actions []openflow.Action) bool {
	for _, a := range actions {
		if _, ok := a.(*openflow.ActionMultipath); ok {
			return true
		}
	}
	return false
}

// resolveMultipath replaces every multipath action with the concrete
// rewrite+output triple of the bucket selected by the microflow key's hash.
// Resolution happens once per microflow at cache fill, so the published
// cache line holds only standard OF 1.0 actions: the zero-alloc hit path
// and the batch rewrite planner never see a select group, the bucket choice
// is stable per flow (same key, same hash, same bucket — a flow never
// reorders across equal-cost paths), and distinct microflows spread across
// the buckets. The key hash differs hop to hop (in-port and rewritten MACs
// feed it), so cascaded switches do not polarize onto one path.
func resolveMultipath(actions []openflow.Action, key *openflow.Match) []openflow.Action {
	h := key.KeyHash()
	out := make([]openflow.Action, 0, len(actions)+2)
	for _, a := range actions {
		mp, ok := a.(*openflow.ActionMultipath)
		if !ok {
			out = append(out, a)
			continue
		}
		if len(mp.Buckets) == 0 {
			continue // degenerate group: no viable path, drop the action
		}
		bk := mp.Bucket(h)
		out = append(out,
			&openflow.ActionSetDlSrc{Addr: bk.DlSrc},
			&openflow.ActionSetDlDst{Addr: bk.DlDst},
			&openflow.ActionOutput{Port: bk.Port},
		)
	}
	return out
}

// cacheHitCount sums the per-shard cache-hit counters (tests).
func (t *flowTable) cacheHitCount() uint64 {
	var n uint64
	for i := range t.counters {
		n += t.counters[i].cacheHits.Load()
	}
	return n
}

// cachedEntry reports the live cache line for key, if any (tests). The
// probe uses the same shard the delivering port (key.InPort) would.
func (t *flowTable) cachedEntry(key *openflow.Match) *mfEntry {
	shard := t.shardFor(key.InPort)
	ce := shard.slots[uint32(key.KeyHash())&mfCacheMask].Load()
	if ce == nil || ce.gen != shard.gen.Load() || ce.key != *key {
		return nil
	}
	return ce
}

// sameStrict reports ofp "strict" identity: equal match and priority.
func sameStrict(a *flowEntry, match *openflow.Match, priority uint16) bool {
	return a.priority == priority && a.match == *match
}

// overlaps approximates the OFPFF_CHECK_OVERLAP test: two entries of equal
// priority overlap when one's match covers a packet the other also covers.
// Exact overlap computation needs field-by-field intersection; covering in
// either direction is the common case and what this switch enforces.
func overlaps(a, b *flowEntry) bool {
	if a.priority != b.priority {
		return false
	}
	return a.match.Covers(&b.match) || b.match.Covers(&a.match)
}

// add installs a flow per FlowModAdd semantics. It returns an *ErrorMsg
// payload when the table must refuse (overlap check).
func (t *flowTable) add(e *flowEntry, checkOverlap bool) *openflow.ErrorMsg {
	t.mu.Lock()
	defer t.mu.Unlock()
	if checkOverlap {
		for _, ex := range t.entries {
			if overlaps(ex, e) && !sameStrict(ex, &e.match, e.priority) {
				return &openflow.ErrorMsg{ErrType: openflow.ErrTypeFlowModFailed,
					Code: openflow.ErrCodeFlowModOverlap}
			}
		}
	}
	defer t.invalidateLocked()
	// Identical match+priority replaces the existing entry (counters reset).
	for i, ex := range t.entries {
		if sameStrict(ex, &e.match, e.priority) {
			t.seq++
			e.seq = ex.seq
			t.entries[i] = e
			return nil
		}
	}
	t.seq++
	e.seq = t.seq
	t.entries = append(t.entries, e)
	t.sortLocked()
	return nil
}

// modify updates actions of matching flows; strict compares match+priority
// exactly, loose updates every flow whose match is covered by m. Returns the
// number updated; if none and the command is MODIFY, OF 1.0 says add it.
func (t *flowTable) modify(m *openflow.Match, priority uint16, actions []openflow.Action, strict bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if strict {
			if sameStrict(e, m, priority) {
				e.actions = actions
				n++
			}
		} else if m.Covers(&e.match) {
			e.actions = actions
			n++
		}
	}
	if n > 0 {
		t.invalidateLocked()
	}
	return n
}

// deleteFlows removes flows per FlowModDelete semantics. outPort filters to
// flows with an output action to that port (PortNone = no filter). Removed
// entries are returned so the switch can emit flow-removed notifications.
func (t *flowTable) deleteFlows(m *openflow.Match, priority uint16, outPort uint16, strict bool) []*flowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var kept []*flowEntry
	var removed []*flowEntry
	for _, e := range t.entries {
		match := false
		if strict {
			match = sameStrict(e, m, priority)
		} else {
			match = m.Covers(&e.match)
		}
		if match && outPort != openflow.PortNone {
			match = false
			for _, a := range e.actions {
				if out, ok := a.(*openflow.ActionOutput); ok && out.Port == outPort {
					match = true
					break
				}
				if mp, ok := a.(*openflow.ActionMultipath); ok {
					for _, bk := range mp.Buckets {
						if bk.Port == outPort {
							match = true
							break
						}
					}
				}
				if match {
					break
				}
			}
		}
		if match {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	if len(removed) > 0 {
		t.entries = kept
		t.invalidateLocked()
	}
	return removed
}

// expire removes entries past their idle or hard timeout. Idle accounting
// reads the per-entry atomic lastUsed stamp, which cached hits keep fresh —
// a flow carrying steady traffic through the microflow cache never idles
// out.
func (t *flowTable) expire(now time.Time) []*flowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var kept, removed []*flowEntry
	for _, e := range t.entries {
		expired := false
		if e.hardTimeout > 0 && now.Sub(e.created) >= time.Duration(e.hardTimeout)*time.Second {
			expired = true
		}
		if !expired && e.idleTimeout > 0 {
			ref := e.created
			if n := e.lastUsed.Load(); n != 0 {
				ref = time.Unix(0, n)
			}
			if now.Sub(ref) >= time.Duration(e.idleTimeout)*time.Second {
				expired = true
			}
		}
		if expired {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	if len(removed) > 0 {
		t.entries = kept
		t.invalidateLocked()
	}
	return removed
}

// snapshot returns FlowInfo for all entries in table order. Actions are
// deep-copied: the live slices keep being replaced by concurrent flow-mods
// while the snapshot holder (GUI, stats) reads its copy.
func (t *flowTable) snapshot(now time.Time) []FlowInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FlowInfo, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, FlowInfo{
			Match: e.match, Priority: e.priority, Cookie: e.cookie,
			IdleTimeout: e.idleTimeout, HardTimeout: e.hardTimeout,
			Actions: openflow.CloneActions(e.actions),
			Packets: e.packets.Load(), Bytes: e.bytes.Load(),
			Age: now.Sub(e.created),
		})
	}
	return out
}

func (t *flowTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

func (t *flowTable) stats() (lookups, matched uint64, active int) {
	t.mu.RLock()
	active = len(t.entries)
	t.mu.RUnlock()
	for i := range t.counters {
		lookups += t.counters[i].lookups.Load()
		matched += t.counters[i].matched.Load()
	}
	return lookups, matched, active
}

func (e *flowEntry) String() string {
	return fmt.Sprintf("flow{prio=%d %v}", e.priority, &e.match)
}

// Package ofswitch implements a software OpenFlow 1.0 switch — the
// reproduction's stand-in for the Open vSwitch instances the paper runs in
// Linux network namespaces. A Switch owns netemu endpoints as its ports,
// classifies arriving frames against a priority-ordered flow table, executes
// the standard OpenFlow 1.0 actions (including L2/L3 rewrites with checksum
// repair), punts table misses to its controller as packet-ins, and speaks
// the full control protocol: handshake, flow-mods with idle/hard timeouts
// and flow-removed notifications, packet-out, port-status, barrier, and
// desc/flow/aggregate/table/port statistics.
package ofswitch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"routeflow/internal/openflow"
)

// flowEntry is one installed flow.
type flowEntry struct {
	match       openflow.Match
	priority    uint16
	cookie      uint64
	idleTimeout uint16
	hardTimeout uint16
	flags       uint16
	actions     []openflow.Action

	created  time.Time
	lastUsed time.Time
	packets  uint64
	bytes    uint64
	seq      uint64 // insertion order tiebreak
}

// FlowInfo is a read-only snapshot of one flow entry, for tests and the GUI.
type FlowInfo struct {
	Match       openflow.Match
	Priority    uint16
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Actions     []openflow.Action
	Packets     uint64
	Bytes       uint64
	Age         time.Duration
}

// flowTable is a single OpenFlow 1.0 table: entries ordered by priority
// (descending), then insertion order.
type flowTable struct {
	mu      sync.RWMutex
	entries []*flowEntry
	seq     uint64
	lookups uint64
	matched uint64
}

// sortLocked restores the priority ordering after insertion.
func (t *flowTable) sortLocked() {
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].priority != t.entries[j].priority {
			return t.entries[i].priority > t.entries[j].priority
		}
		return t.entries[i].seq < t.entries[j].seq
	})
}

// lookup returns the highest-priority entry covering key, updating counters.
func (t *flowTable) lookup(key *openflow.Match, frameLen int, now time.Time) *flowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	for _, e := range t.entries {
		if e.match.Covers(key) {
			t.matched++
			e.packets++
			e.bytes += uint64(frameLen)
			e.lastUsed = now
			return e
		}
	}
	return nil
}

// sameStrict reports ofp "strict" identity: equal match and priority.
func sameStrict(a *flowEntry, match *openflow.Match, priority uint16) bool {
	return a.priority == priority && a.match == *match
}

// overlaps approximates the OFPFF_CHECK_OVERLAP test: two entries of equal
// priority overlap when one's match covers a packet the other also covers.
// Exact overlap computation needs field-by-field intersection; covering in
// either direction is the common case and what this switch enforces.
func overlaps(a, b *flowEntry) bool {
	if a.priority != b.priority {
		return false
	}
	return a.match.Covers(&b.match) || b.match.Covers(&a.match)
}

// add installs a flow per FlowModAdd semantics. It returns an *ErrorMsg
// payload when the table must refuse (overlap check).
func (t *flowTable) add(e *flowEntry, checkOverlap bool) *openflow.ErrorMsg {
	t.mu.Lock()
	defer t.mu.Unlock()
	if checkOverlap {
		for _, ex := range t.entries {
			if overlaps(ex, e) && !sameStrict(ex, &e.match, e.priority) {
				return &openflow.ErrorMsg{ErrType: openflow.ErrTypeFlowModFailed,
					Code: openflow.ErrCodeFlowModOverlap}
			}
		}
	}
	// Identical match+priority replaces the existing entry (counters reset).
	for i, ex := range t.entries {
		if sameStrict(ex, &e.match, e.priority) {
			t.seq++
			e.seq = ex.seq
			t.entries[i] = e
			return nil
		}
	}
	t.seq++
	e.seq = t.seq
	t.entries = append(t.entries, e)
	t.sortLocked()
	return nil
}

// modify updates actions of matching flows; strict compares match+priority
// exactly, loose updates every flow whose match is covered by m. Returns the
// number updated; if none and the command is MODIFY, OF 1.0 says add it.
func (t *flowTable) modify(m *openflow.Match, priority uint16, actions []openflow.Action, strict bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if strict {
			if sameStrict(e, m, priority) {
				e.actions = actions
				n++
			}
		} else if m.Covers(&e.match) {
			e.actions = actions
			n++
		}
	}
	return n
}

// deleteFlows removes flows per FlowModDelete semantics. outPort filters to
// flows with an output action to that port (PortNone = no filter). Removed
// entries are returned so the switch can emit flow-removed notifications.
func (t *flowTable) deleteFlows(m *openflow.Match, priority uint16, outPort uint16, strict bool) []*flowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var kept []*flowEntry
	var removed []*flowEntry
	for _, e := range t.entries {
		match := false
		if strict {
			match = sameStrict(e, m, priority)
		} else {
			match = m.Covers(&e.match)
		}
		if match && outPort != openflow.PortNone {
			match = false
			for _, a := range e.actions {
				if out, ok := a.(*openflow.ActionOutput); ok && out.Port == outPort {
					match = true
					break
				}
			}
		}
		if match {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

// expire removes entries past their idle or hard timeout.
func (t *flowTable) expire(now time.Time) []*flowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var kept, removed []*flowEntry
	for _, e := range t.entries {
		expired := false
		if e.hardTimeout > 0 && now.Sub(e.created) >= time.Duration(e.hardTimeout)*time.Second {
			expired = true
		}
		if !expired && e.idleTimeout > 0 {
			ref := e.lastUsed
			if ref.IsZero() {
				ref = e.created
			}
			if now.Sub(ref) >= time.Duration(e.idleTimeout)*time.Second {
				expired = true
			}
		}
		if expired {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return removed
}

// snapshot returns FlowInfo for all entries in table order.
func (t *flowTable) snapshot(now time.Time) []FlowInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FlowInfo, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, FlowInfo{
			Match: e.match, Priority: e.priority, Cookie: e.cookie,
			IdleTimeout: e.idleTimeout, HardTimeout: e.hardTimeout,
			Actions: e.actions, Packets: e.packets, Bytes: e.bytes,
			Age: now.Sub(e.created),
		})
	}
	return out
}

func (t *flowTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

func (t *flowTable) stats() (lookups, matched uint64, active int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups, t.matched, len(t.entries)
}

func (e *flowEntry) String() string {
	return fmt.Sprintf("flow{prio=%d %v}", e.priority, &e.match)
}

package ofswitch

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"

	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// benchSwitch builds a switch with `ports` data ports (peer endpoints are
// sinks with no receiver) and a table of `flows` entries shaped like the
// RF-server's installs: dst-prefix matches with MAC-rewrite + output
// actions. The entry matching benchFrame's microflow is the lowest-priority
// one, so the tier-2 classifier pays the full O(flows) scan for it — the
// cost profile of a routed switch whose busiest flow sits under the host
// (/32) routes.
func benchSwitch(tb testing.TB, ports, flows int) *Switch {
	tb.Helper()
	sw := New(Config{DPID: 0xBE, Name: "bench"})
	n := netemu.NewNetwork(nil)
	if t, ok := tb.(interface{ Cleanup(func()) }); ok {
		t.Cleanup(n.Close)
	}
	for p := 1; p <= ports; p++ {
		a, _ := n.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("bench:%d", p), MACA: pkt.LocalMAC(uint64(p))})
		if err := sw.AttachPort(uint16(p), a); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < flows-1; i++ {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlType
		m.DlType = uint16(pkt.EtherTypeIPv4)
		m.SetNwDstPrefix(netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24))
		if err := sw.table.add(tableEntry(m, uint16(20000-i), 2), false); err != nil {
			tb.Fatal(err)
		}
	}
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = uint16(pkt.EtherTypeIPv4)
	m.SetNwDstPrefix(netip.MustParsePrefix("10.0.0.0/8"))
	e := tableEntry(m, 1, 2)
	e.actions = []openflow.Action{
		&openflow.ActionSetDlSrc{Addr: pkt.LocalMAC(0x51)},
		&openflow.ActionSetDlDst{Addr: pkt.LocalMAC(0xD1)},
		&openflow.ActionOutput{Port: 2},
	}
	if err := sw.table.add(e, false); err != nil {
		tb.Fatal(err)
	}
	return sw
}

// benchFrameFor returns a UDP frame whose microflow is unique per (port, i).
func benchFrameFor(port uint16, i int) []byte {
	return udpFrame(pkt.LocalMAC(uint64(0xA0+port)), pkt.LocalMAC(0xD1),
		fmt.Sprintf("10.%d.0.1", port), fmt.Sprintf("10.200.%d.9", i%256),
		uint16(1000+i%64), 5004, "benchpayload-benchpayload")
}

// BenchmarkSwitchForwardCached measures steady-state single-flow forwarding
// through the two-tier pipeline: exact-match cache hit, lock-free counters,
// in-place MAC rewrite, pooled emission. The contract is 0 allocs/op (see
// TestSwitchForwardAllocBudget) and ns/op far below the tier-2-only path.
func BenchmarkSwitchForwardCached(b *testing.B) {
	for _, flows := range []int{1, 128, 256} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			sw := benchSwitch(b, 2, flows)
			frame := benchFrameFor(1, 0)
			for i := 0; i < 2048; i++ { // warm cache, pool and inbox
				sw.handleFrame(1, frame)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.handleFrame(1, frame)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkSwitchForwardTier2Only is the before picture: the same frames
// with the microflow cache disabled, so every packet pays the read-locked
// priority scan. The flows-128 variant is the honest comparison — cache
// hit cost is O(1) while the classifier is O(flows).
func BenchmarkSwitchForwardTier2Only(b *testing.B) {
	for _, flows := range []int{1, 128, 256} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			sw := benchSwitch(b, 2, flows)
			sw.table.disableCache = true
			frame := benchFrameFor(1, 0)
			for i := 0; i < 2048; i++ {
				sw.handleFrame(1, frame)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.handleFrame(1, frame)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkSwitchForwardParallel hammers one switch from all ports at once
// — the §3 demo shape, where every port of a core switch carries a video
// stream. With per-entry atomic counters the ports scale instead of
// serializing on the old table mutex; pkts/s is the aggregate rate.
func BenchmarkSwitchForwardParallel(b *testing.B) {
	const ports = 8
	for _, flowsPerPort := range []int{1, 16} {
		b.Run(fmt.Sprintf("ports=%d,flows=%d", ports, flowsPerPort), func(b *testing.B) {
			sw := benchSwitch(b, ports, 64)
			frames := make([][][]byte, ports)
			for p := 0; p < ports; p++ {
				frames[p] = make([][]byte, flowsPerPort)
				for i := 0; i < flowsPerPort; i++ {
					frames[p][i] = benchFrameFor(uint16(p+1), i)
					for j := 0; j < 64; j++ {
						sw.handleFrame(uint16(p+1), frames[p][i])
					}
				}
			}
			var next atomic.Uint32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine frame copies: handleFrame rewrites MACs in
				// place, and with GOMAXPROCS > ports two goroutines share a
				// port.
				p := int(next.Add(1)-1) % ports
				mine := make([][]byte, flowsPerPort)
				for i := range mine {
					mine[i] = append([]byte(nil), frames[p][i]...)
				}
				i := 0
				for pb.Next() {
					sw.handleFrame(uint16(p+1), mine[i%flowsPerPort])
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkSwitchForwardBatch measures the burst dataplane: a MaxBurst-long
// same-flow burst costs one cache probe, one batched counter update and one
// rewrite plan, against the per-frame costs of the single path.
func BenchmarkSwitchForwardBatch(b *testing.B) {
	for _, flows := range []int{1, 128} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			sw := benchSwitch(b, 2, flows)
			burst := make([][]byte, netemu.MaxBurst)
			for i := range burst {
				burst[i] = benchFrameFor(1, 0)
			}
			for i := 0; i < 64; i++ { // warm cache, pool and inbox
				sw.handleBatch(1, burst)
			}
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for n < b.N {
				sw.handleBatch(1, burst)
				n += len(burst)
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkSwitchForwardOffload measures the stateful-offload fast path: a
// pinned microflow forwards without consulting the flow table or touching
// its counters.
func BenchmarkSwitchForwardOffload(b *testing.B) {
	sw := benchSwitch(b, 2, 64)
	sw.SetStatefulOffload(true)
	burst := make([][]byte, netemu.MaxBurst)
	for i := range burst {
		// 172.16/12 entries are plain single-output flows → pinnable.
		burst[i] = udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xD1),
			"10.1.0.1", "172.16.0.9", 1000, 5004, "benchpayload-benchpayload")
	}
	for i := 0; i < 64; i++ { // warm the pin machine
		sw.handleBatch(1, burst)
	}
	if st := sw.OffloadStats(); st.PinHits == 0 {
		b.Fatalf("warmup never hit the pin machine: %+v", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		sw.handleBatch(1, burst)
		n += len(burst)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "pkts/s")
}

// TestSwitchForwardAllocBudget is the alloc gate for the steady-state
// forwarding path: classify, cached lookup, counter update, in-place
// rewrite, pooled emit — zero heap allocations per packet.
func TestSwitchForwardAllocBudget(t *testing.T) {
	sw := benchSwitch(t, 2, 16)
	frame := benchFrameFor(1, 0)
	for i := 0; i < 4096; i++ { // warm cache, buffer pool and peer inbox
		sw.handleFrame(1, frame)
	}
	avg := testing.AllocsPerRun(1000, func() {
		sw.handleFrame(1, frame)
	})
	if avg > 0 {
		t.Fatalf("steady-state forward allocates %.2f allocs/op, budget is 0", avg)
	}
}

// TestSwitchForwardAllocBudgetECMP is the same zero-alloc gate with an
// equal-cost multipath flow carrying the traffic: bucket selection happens
// once at cache fill, so the steady-state path must stay allocation-free
// with ECMP enabled.
func TestSwitchForwardAllocBudgetECMP(t *testing.T) {
	sw := benchSwitch(t, 3, 16)
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = uint16(pkt.EtherTypeIPv4)
	m.SetNwDstPrefix(netip.MustParsePrefix("10.0.0.0/8"))
	mp := &openflow.ActionMultipath{Buckets: []openflow.MultipathBucket{
		{DlSrc: pkt.LocalMAC(0x51), DlDst: pkt.LocalMAC(0xD1), Port: 2},
		{DlSrc: pkt.LocalMAC(0x52), DlDst: pkt.LocalMAC(0xD2), Port: 3},
	}}
	if n := sw.table.modify(&m, 1, []openflow.Action{mp}, true); n != 1 {
		t.Fatalf("modify rewired %d flows, want 1", n)
	}
	frame := benchFrameFor(1, 0)
	for i := 0; i < 4096; i++ { // warm cache, buffer pool and peer inbox
		sw.handleFrame(1, frame)
	}
	avg := testing.AllocsPerRun(1000, func() {
		sw.handleFrame(1, frame)
	})
	if avg > 0 {
		t.Fatalf("ECMP steady-state forward allocates %.2f allocs/op, budget is 0", avg)
	}
}

package ofswitch

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// tableEntry builds a flow entry for direct flowTable tests.
func tableEntry(m openflow.Match, prio uint16, outPort uint16) *flowEntry {
	return &flowEntry{
		match: m, priority: prio,
		actions: []openflow.Action{&openflow.ActionOutput{Port: outPort}},
		created: time.Now(),
	}
}

func exactKeyFor(t testing.TB, inPort uint16) openflow.Match {
	t.Helper()
	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.9.0.9", 1000, 2000, "k")
	key, err := openflow.ExtractKey(inPort, frame)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func outPortOf(t testing.TB, actions []openflow.Action) uint16 {
	t.Helper()
	for _, a := range actions {
		if o, ok := a.(*openflow.ActionOutput); ok {
			return o.Port
		}
	}
	t.Fatal("no output action")
	return 0
}

// TestMicroflowCacheHitPath proves the second lookup of a microflow is a
// cache hit resolving to the same actions, with counters accumulating on
// the shared flow entry.
func TestMicroflowCacheHitPath(t *testing.T) {
	tb := newFlowTable()
	key := exactKeyFor(t, 1)
	if err := tb.add(tableEntry(openflow.MatchAll(), 10, 2), false); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	a1, ok := tb.lookup(&key, 100, now)
	if !ok || outPortOf(t, a1) != 2 {
		t.Fatalf("first lookup = %v, %v", a1, ok)
	}
	if tb.cacheHitCount() != 0 {
		t.Fatal("first lookup must be a classifier fill, not a hit")
	}
	if tb.cachedEntry(&key) == nil {
		t.Fatal("lookup did not fill the cache")
	}
	a2, ok := tb.lookup(&key, 50, now)
	if !ok || outPortOf(t, a2) != 2 {
		t.Fatalf("second lookup = %v, %v", a2, ok)
	}
	if tb.cacheHitCount() != 1 {
		t.Fatalf("cacheHits = %d, want 1", tb.cacheHitCount())
	}
	fi := tb.snapshot(time.Now())
	if len(fi) != 1 || fi[0].Packets != 2 || fi[0].Bytes != 150 {
		t.Fatalf("snapshot counters = %+v", fi)
	}
}

// TestMicroflowCacheInvalidation drives every table mutation kind and
// checks that the next lookup after each one re-classifies instead of
// serving the stale pre-mutation resolution.
func TestMicroflowCacheInvalidation(t *testing.T) {
	key := exactKeyFor(t, 1)
	now := time.Now().UnixNano()

	warm := func(t *testing.T, tb *flowTable, wantPort uint16) {
		t.Helper()
		actions, ok := tb.lookup(&key, 10, now)
		if !ok || outPortOf(t, actions) != wantPort {
			t.Fatalf("warm lookup = %v, %v (want port %d)", actions, ok, wantPort)
		}
		if tb.cachedEntry(&key) == nil {
			t.Fatal("cache not filled")
		}
	}

	t.Run("add", func(t *testing.T) {
		tb := newFlowTable()
		if err := tb.add(tableEntry(openflow.MatchAll(), 10, 2), false); err != nil {
			t.Fatal(err)
		}
		warm(t, tb, 2)
		// A higher-priority flow covering the same microflow must win
		// immediately — the OF 1.0 barrier contract.
		if err := tb.add(tableEntry(openflow.MatchAll(), 100, 3), false); err != nil {
			t.Fatal(err)
		}
		if tb.cachedEntry(&key) != nil {
			t.Fatal("add did not invalidate the cache")
		}
		actions, ok := tb.lookup(&key, 10, now)
		if !ok || outPortOf(t, actions) != 3 {
			t.Fatalf("post-add lookup = %v, %v", actions, ok)
		}
	})

	t.Run("modify", func(t *testing.T) {
		tb := newFlowTable()
		if err := tb.add(tableEntry(openflow.MatchAll(), 10, 2), false); err != nil {
			t.Fatal(err)
		}
		warm(t, tb, 2)
		m := openflow.MatchAll()
		if n := tb.modify(&m, 0, []openflow.Action{&openflow.ActionOutput{Port: 7}}, false); n != 1 {
			t.Fatalf("modify touched %d flows", n)
		}
		if tb.cachedEntry(&key) != nil {
			t.Fatal("modify did not invalidate the cache")
		}
		actions, ok := tb.lookup(&key, 10, now)
		if !ok || outPortOf(t, actions) != 7 {
			t.Fatalf("post-modify lookup = %v, %v", actions, ok)
		}
	})

	t.Run("delete", func(t *testing.T) {
		tb := newFlowTable()
		if err := tb.add(tableEntry(openflow.MatchAll(), 10, 2), false); err != nil {
			t.Fatal(err)
		}
		warm(t, tb, 2)
		m := openflow.MatchAll()
		if removed := tb.deleteFlows(&m, 0, openflow.PortNone, false); len(removed) != 1 {
			t.Fatalf("deleted %d flows", len(removed))
		}
		if tb.cachedEntry(&key) != nil {
			t.Fatal("delete did not invalidate the cache")
		}
		if _, ok := tb.lookup(&key, 10, now); ok {
			t.Fatal("lookup matched a deleted flow")
		}
	})

	t.Run("expire", func(t *testing.T) {
		tb := newFlowTable()
		e := tableEntry(openflow.MatchAll(), 10, 2)
		e.hardTimeout = 1
		if err := tb.add(e, false); err != nil {
			t.Fatal(err)
		}
		warm(t, tb, 2)
		if removed := tb.expire(e.created.Add(2 * time.Second)); len(removed) != 1 {
			t.Fatalf("expired %d flows", len(removed))
		}
		if tb.cachedEntry(&key) != nil {
			t.Fatal("expire did not invalidate the cache")
		}
		if _, ok := tb.lookup(&key, 10, now); ok {
			t.Fatal("lookup matched an expired flow")
		}
	})
}

// TestTableMissNotCached proves the punt path bypasses the cache: a miss
// must not leave a cache line, so a subsequently installed flow takes
// effect on the very next packet.
func TestTableMissNotCached(t *testing.T) {
	tb := newFlowTable()
	key := exactKeyFor(t, 1)
	if _, ok := tb.lookup(&key, 10, time.Now().UnixNano()); ok {
		t.Fatal("lookup matched an empty table")
	}
	if tb.shardFor(key.InPort).slots[uint32(key.KeyHash())&mfCacheMask].Load() != nil {
		t.Fatal("miss left a cache line")
	}
	if err := tb.add(tableEntry(openflow.MatchAll(), 1, 2), false); err != nil {
		t.Fatal(err)
	}
	if actions, ok := tb.lookup(&key, 10, time.Now().UnixNano()); !ok || outPortOf(t, actions) != 2 {
		t.Fatalf("lookup after install = %v, %v", actions, ok)
	}
}

// TestIdleTimeoutFedByCachedHits drives traffic through the cached fast
// path and checks the idle-timeout accounting still sees it: the flow must
// survive while packets flow and expire only after they stop.
func TestIdleTimeoutFedByCachedHits(t *testing.T) {
	clk := clock.Scaled(25) // 1 protocol second = 40ms wall
	h := newHarness(t, clk)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 5, IdleTimeout: 2, BufferID: openflow.NoBuffer,
		OutPort: openflow.PortNone, Flags: openflow.FlowModFlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)

	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2), "10.0.0.1", "10.0.0.2", 1, 2, "ka")
	// ~6 protocol seconds of steady traffic against a 2s idle timeout,
	// refreshed every ~0.5 protocol seconds.
	for i := 0; i < 12; i++ {
		h.h1.Send(frame)
		time.Sleep(20 * time.Millisecond)
	}
	if n := h.sw.NumFlows(); n != 1 {
		t.Fatalf("flow idled out under steady cached traffic (flows=%d)", n)
	}
	if hits := h.sw.table.cacheHitCount(); hits == 0 {
		t.Fatal("traffic did not exercise the microflow cache")
	}
	// Stop the traffic: now it must idle out, with the cached packets in
	// the flow-removed totals.
	fr := h.expect(openflow.TypeFlowRemoved).(*openflow.FlowRemoved)
	if fr.Reason != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("reason = %d", fr.Reason)
	}
	if fr.PacketCount != 12 {
		t.Fatalf("flow-removed packets = %d, want 12", fr.PacketCount)
	}
}

// TestSnapshotActionsAreDeepCopies pins the satellite fix: a snapshot taken
// before a loose modify must keep showing the pre-modify actions, and
// mutating a snapshot must never write through to the live table.
func TestSnapshotActionsAreDeepCopies(t *testing.T) {
	tb := newFlowTable()
	if err := tb.add(tableEntry(openflow.MatchAll(), 10, 2), false); err != nil {
		t.Fatal(err)
	}
	snap := tb.snapshot(time.Now())
	m := openflow.MatchAll()
	tb.modify(&m, 0, []openflow.Action{&openflow.ActionOutput{Port: 9}}, false)
	if got := outPortOf(t, snap[0].Actions); got != 2 {
		t.Fatalf("snapshot changed under a concurrent modify: port %d", got)
	}
	// Writing into the snapshot's action must not leak into the table.
	snap2 := tb.snapshot(time.Now())
	snap2[0].Actions[0].(*openflow.ActionOutput).Port = 1234
	if got := outPortOf(t, tb.snapshot(time.Now())[0].Actions); got != 9 {
		t.Fatalf("snapshot mutation leaked into the live table: port %d", got)
	}
}

// TestDataplaneHammer is the -race stress: every port forwards its own
// microflow while a mutator storms the table with add/modify/delete and a
// stats reader snapshots — no locks on the hit path means the race
// detector is the real reviewer here.
func TestDataplaneHammer(t *testing.T) {
	const ports = 4
	sw := New(Config{DPID: 0x99, Name: "hammer"})
	frames := make([][]byte, ports)
	for p := 1; p <= ports; p++ {
		frames[p-1] = udpFrame(pkt.LocalMAC(uint64(p)), pkt.LocalMAC(0xEE),
			fmt.Sprintf("10.0.%d.1", p), "10.99.0.1", uint16(1000+p), 5004, "hammer")
	}
	base := openflow.MatchAll()
	base.Wildcards &^= openflow.WildcardDlType
	base.DlType = uint16(pkt.EtherTypeIPv4)
	base.SetNwDstPrefix(netip.MustParsePrefix("10.99.0.0/16"))
	if err := sw.table.add(&flowEntry{match: base, priority: 5, created: time.Now(),
		actions: []openflow.Action{&openflow.ActionOutput{Port: 42}}}, false); err != nil {
		t.Fatal(err)
	}

	var workers sync.WaitGroup
	for p := 1; p <= ports; p++ {
		workers.Add(1)
		go func(port int) {
			defer workers.Done()
			for i := 0; i < 3000; i++ {
				sw.handleFrame(uint16(port), frames[port-1])
			}
		}(p)
	}
	workers.Add(1)
	go func() { // flow-mod storm
		defer workers.Done()
		for i := 0; i < 500; i++ {
			m := base
			e := &flowEntry{match: m, priority: uint16(10 + i%3), created: time.Now(),
				actions: []openflow.Action{&openflow.ActionOutput{Port: uint16(i%4 + 1)}}}
			_ = sw.table.add(e, false)
			sw.table.modify(&m, e.priority, []openflow.Action{&openflow.ActionOutput{Port: 2}}, true)
			if i%3 == 2 {
				sw.table.deleteFlows(&m, e.priority, openflow.PortNone, true)
			}
		}
	}()
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // stats reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sw.FlowTable()
				_, _, _ = sw.table.stats()
			}
		}
	}()
	workers.Wait()
	close(stop)
	reader.Wait()

	lookups, matched, _ := sw.table.stats()
	if lookups < ports*3000 || matched == 0 {
		t.Fatalf("lookups=%d matched=%d", lookups, matched)
	}
}

// TestMultipathResolvedAtCacheFill proves ECMP select groups are resolved to
// concrete OF 1.0 actions at classify time: the published cache line carries
// no multipath action, a microflow's bucket choice is stable across lookups,
// and distinct microflows spread over the equal-cost buckets.
func TestMultipathResolvedAtCacheFill(t *testing.T) {
	tb := newFlowTable()
	mp := &openflow.ActionMultipath{Buckets: []openflow.MultipathBucket{
		{DlSrc: pkt.LocalMAC(0x10), DlDst: pkt.LocalMAC(0x20), Port: 2},
		{DlSrc: pkt.LocalMAC(0x11), DlDst: pkt.LocalMAC(0x21), Port: 3},
	}}
	if err := tb.add(&flowEntry{match: openflow.MatchAll(), priority: 10,
		actions: []openflow.Action{mp}, created: time.Now()}, false); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()

	key := exactKeyFor(t, 1)
	want := mp.Bucket(key.KeyHash())
	a1, ok := tb.lookup(&key, 100, now)
	if !ok {
		t.Fatal("lookup miss")
	}
	if got := outPortOf(t, a1); got != want.Port {
		t.Fatalf("fill chose port %d, want bucket port %d", got, want.Port)
	}
	ce := tb.cachedEntry(&key)
	if ce == nil {
		t.Fatal("lookup did not fill the cache")
	}
	if hasMultipath(ce.actions) {
		t.Fatal("cache line still carries an unresolved multipath action")
	}
	var src, dst *pkt.MAC
	for _, a := range ce.actions {
		switch act := a.(type) {
		case *openflow.ActionSetDlSrc:
			src = &act.Addr
		case *openflow.ActionSetDlDst:
			dst = &act.Addr
		}
	}
	if src == nil || dst == nil || *src != want.DlSrc || *dst != want.DlDst {
		t.Fatalf("resolved rewrites %v/%v, want %v/%v", src, dst, want.DlSrc, want.DlDst)
	}
	a2, ok := tb.lookup(&key, 50, now)
	if !ok || tb.cacheHitCount() != 1 {
		t.Fatalf("second lookup ok=%v cacheHits=%d, want hit", ok, tb.cacheHitCount())
	}
	if got := outPortOf(t, a2); got != want.Port {
		t.Fatalf("cached hit chose port %d, want %d — flow reordered", got, want.Port)
	}

	// Distinct microflows must cover both buckets, each stably per its own
	// key hash.
	seen := map[uint16]bool{}
	for sport := uint16(1000); sport < 1032; sport++ {
		frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2),
			"10.0.0.1", "10.9.0.9", sport, 2000, "k")
		k, err := openflow.ExtractKey(1, frame)
		if err != nil {
			t.Fatal(err)
		}
		a, ok := tb.lookup(&k, 10, now)
		if !ok {
			t.Fatal("lookup miss")
		}
		p := outPortOf(t, a)
		if wantBk := mp.Bucket(k.KeyHash()); p != wantBk.Port {
			t.Fatalf("sport %d: port %d, want bucket port %d", sport, p, wantBk.Port)
		}
		seen[p] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("32 microflows used only ports %v; want both equal-cost buckets", seen)
	}
}

// TestDeleteFlowsMatchesMultipathOutPort pins the OFPFF delete out_port
// filter against select groups: a delete filtered to a port reachable only
// through a multipath bucket must still remove the flow.
func TestDeleteFlowsMatchesMultipathOutPort(t *testing.T) {
	tb := newFlowTable()
	mp := &openflow.ActionMultipath{Buckets: []openflow.MultipathBucket{
		{DlSrc: pkt.LocalMAC(1), DlDst: pkt.LocalMAC(2), Port: 7},
		{DlSrc: pkt.LocalMAC(1), DlDst: pkt.LocalMAC(3), Port: 8},
	}}
	if err := tb.add(&flowEntry{match: openflow.MatchAll(), priority: 10,
		actions: []openflow.Action{mp}, created: time.Now()}, false); err != nil {
		t.Fatal(err)
	}
	m := openflow.MatchAll()
	if removed := tb.deleteFlows(&m, 0, 9, false); len(removed) != 0 {
		t.Fatalf("delete filtered to port 9 removed %d flows", len(removed))
	}
	if removed := tb.deleteFlows(&m, 0, 8, false); len(removed) != 1 {
		t.Fatalf("delete filtered to bucket port 8 removed %d flows, want 1", len(removed))
	}
}

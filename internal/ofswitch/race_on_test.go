//go:build race

package ofswitch

const raceEnabled = true

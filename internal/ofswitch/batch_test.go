package ofswitch

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// captureSwitch builds a switch whose far-end endpoints record every frame
// the switch emits, per port, in arrival order.
type captureSwitch struct {
	sw   *Switch
	mu   sync.Mutex
	rx   map[uint16][][]byte
	seen int
}

func newCaptureSwitch(t *testing.T, ports int) *captureSwitch {
	t.Helper()
	cs := &captureSwitch{sw: New(Config{DPID: 0xCA, Name: "cap"}), rx: make(map[uint16][][]byte)}
	n := netemu.NewNetwork(nil)
	t.Cleanup(n.Close)
	for p := 1; p <= ports; p++ {
		port := uint16(p)
		a, far := n.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("cap:%d", p), MACA: pkt.LocalMAC(uint64(p))})
		far.SetReceiver(func(frame []byte) {
			cs.mu.Lock()
			cs.rx[port] = append(cs.rx[port], append([]byte(nil), frame...))
			cs.seen++
			cs.mu.Unlock()
		})
		if err := cs.sw.AttachPort(port, a); err != nil {
			t.Fatal(err)
		}
	}
	return cs
}

func (cs *captureSwitch) total() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.seen
}

// installPropertyFlows gives the table one flow per rewrite shape: in-place
// L2 rewrite, plain output, flood, and a full decode-and-remarshal L3
// rewrite. Destinations outside every prefix punt.
func installPropertyFlows(t *testing.T, sw *Switch) {
	t.Helper()
	add := func(dst string, prio uint16, actions ...openflow.Action) {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlType
		m.DlType = uint16(pkt.EtherTypeIPv4)
		m.SetNwDstPrefix(netip.MustParsePrefix(dst))
		e := tableEntry(m, prio, 0)
		e.actions = actions
		if err := sw.table.add(e, false); err != nil {
			t.Fatal(err)
		}
	}
	add("10.0.0.0/8", 100,
		&openflow.ActionSetDlSrc{Addr: pkt.LocalMAC(0x51)},
		&openflow.ActionSetDlDst{Addr: pkt.LocalMAC(0xD1)},
		&openflow.ActionOutput{Port: 2})
	add("172.16.0.0/12", 90, &openflow.ActionOutput{Port: 3})
	add("192.168.0.0/16", 80, &openflow.ActionOutput{Port: openflow.PortFlood})
	add("11.0.0.0/8", 70,
		&openflow.ActionSetNwDst{Addr: [4]byte{99, 9, 9, 9}},
		&openflow.ActionOutput{Port: 4})
}

// propertyFrame picks from a small universe of microflows (so randomized
// bursts contain same-key runs) with a randomized payload (so frames within
// a run still differ byte-for-byte).
func propertyFrame(rng *rand.Rand) (uint16, []byte) {
	dsts := []string{
		"10.1.2.3", "10.7.7.7", // L2-rewrite flow
		"172.16.5.5", "172.17.0.1", // plain output flow
		"192.168.9.1",  // flood flow
		"11.0.0.1",     // full-rewrite flow
		"203.0.113.77", // table miss → punt
	}
	inPort := uint16(1 + rng.Intn(4))
	dst := dsts[rng.Intn(len(dsts))]
	srcMAC := pkt.LocalMAC(uint64(0xA0 + rng.Intn(3)))
	frame := udpFrame(srcMAC, pkt.LocalMAC(0xD1),
		fmt.Sprintf("10.%d.0.1", inPort), dst,
		uint16(1000+rng.Intn(4)), 5004,
		fmt.Sprintf("payload-%d", rng.Intn(1<<20)))
	return inPort, frame
}

// TestBatchPathMatchesSingleFramePath is the equivalence property: over
// randomized bursts spanning every rewrite shape, flood and punt, the batch
// dataplane must emit byte-identical frame sequences per egress port to the
// single-frame dataplane fed the same traffic.
func TestBatchPathMatchesSingleFramePath(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			single := newCaptureSwitch(t, 4)
			batch := newCaptureSwitch(t, 4)
			installPropertyFlows(t, single.sw)
			installPropertyFlows(t, batch.sw)

			const frames = 400
			type inj struct {
				port  uint16
				frame []byte
			}
			seq := make([]inj, frames)
			for i := range seq {
				port, f := propertyFrame(rng)
				seq[i] = inj{port, f}
			}

			// Single-frame path: one handleFrame per frame, in order.
			for _, in := range seq {
				single.sw.handleFrame(in.port, append([]byte(nil), in.frame...))
			}
			// Batch path: consecutive same-port frames chunked into bursts of
			// randomized size (1..MaxBurst).
			for i := 0; i < frames; {
				j := i + 1
				limit := 1 + rng.Intn(netemu.MaxBurst)
				for j < frames && seq[j].port == seq[i].port && j-i < limit {
					j++
				}
				burst := make([][]byte, 0, j-i)
				for _, in := range seq[i:j] {
					burst = append(burst, append([]byte(nil), in.frame...))
				}
				batch.sw.handleBatch(seq[i].port, burst)
				i = j
			}

			// Emission is synchronous into the cable inboxes; wait for the
			// delivery goroutines to drain them.
			deadline := time.Now().Add(5 * time.Second)
			for {
				a, b := single.total(), batch.total()
				if a == b {
					time.Sleep(20 * time.Millisecond)
					if single.total() == a && batch.total() == a {
						break
					}
					continue
				}
				if time.Now().After(deadline) {
					t.Fatalf("capture totals never converged: single=%d batch=%d", a, b)
				}
				time.Sleep(time.Millisecond)
			}

			single.mu.Lock()
			batch.mu.Lock()
			defer single.mu.Unlock()
			defer batch.mu.Unlock()
			for p := uint16(1); p <= 4; p++ {
				sf, bf := single.rx[p], batch.rx[p]
				if len(sf) != len(bf) {
					t.Fatalf("port %d: single path emitted %d frames, batch path %d", p, len(sf), len(bf))
				}
				for i := range sf {
					if !bytes.Equal(sf[i], bf[i]) {
						t.Fatalf("port %d frame %d differs:\nsingle: %x\nbatch:  %x", p, i, sf[i], bf[i])
					}
				}
			}
		})
	}
}

// TestBatchBurstHammer drives all ports of one switch concurrently through
// real cables with SendBatch while flow-mods churn the table — the -race
// exercise for the batch dataplane, run detection and shard invalidation.
func TestBatchBurstHammer(t *testing.T) {
	const ports = 4
	sw := New(Config{DPID: 0xFF, Name: "hammer"})
	n := netemu.NewNetwork(nil)
	t.Cleanup(n.Close)
	far := make([]*netemu.Endpoint, ports)
	for p := 0; p < ports; p++ {
		a, b := n.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("hammer:%d", p+1), MACA: pkt.LocalMAC(uint64(p + 1))})
		if err := sw.AttachPort(uint16(p+1), a); err != nil {
			t.Fatal(err)
		}
		far[p] = b
	}
	installPropertyFlows(t, sw)
	sw.SetStatefulOffload(true)

	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < 50; i++ {
				burst := make([][]byte, 16)
				for j := range burst {
					_, f := propertyFrame(rng)
					burst[j] = f
				}
				far[p].SendBatch(burst)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m := openflow.MatchAll()
			m.Wildcards &^= openflow.WildcardDlType
			m.DlType = uint16(pkt.EtherTypeIPv4)
			m.SetNwDstPrefix(netip.MustParsePrefix("10.0.0.0/8"))
			e := tableEntry(m, uint16(200+i%3), 2)
			if err := sw.table.add(e, false); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// Drain: all sent frames must eventually be accounted for (received or
	// dropped); the hammer's assertion is the race detector.
	time.Sleep(100 * time.Millisecond)
}

// TestSwitchBatchAllocBudget extends the 0 allocs/op gate to the batch
// path: a warm same-flow burst must classify, run-detect, cache-hit,
// rewrite in place and emit without touching the heap.
func TestSwitchBatchAllocBudget(t *testing.T) {
	if raceEnabled {
		// Race instrumentation defeats the escape analysis that keeps the
		// per-burst key array on the stack; the gate runs in the non-race
		// bench job.
		t.Skip("alloc budget not meaningful under -race")
	}
	sw := benchSwitch(t, 2, 16)
	burst := make([][]byte, netemu.MaxBurst)
	for i := range burst {
		burst[i] = benchFrameFor(1, 0)
	}
	for i := 0; i < 64; i++ { // warm cache, pool and inbox
		sw.handleBatch(1, burst)
	}
	avg := testing.AllocsPerRun(500, func() {
		sw.handleBatch(1, burst)
	})
	if avg > 0 {
		t.Fatalf("batch forward allocates %.2f allocs/op, budget is 0", avg)
	}
}

package ofswitch

import (
	"fmt"
	"testing"
	"time"

	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

func monRule10(id uint32) openflow.MonitorRule {
	// Covers the benchSwitch traffic shape: src 10.x.0.1 → dst 10.200.x.x.
	return openflow.MonitorRule{ID: id,
		Src: [4]byte{10, 0, 0, 0}, SrcBits: 8,
		Dst: [4]byte{10, 200, 0, 0}, DstBits: 16}
}

// TestTelemetryMonitorCharging: a monitored microflow charges its rule's
// counters on both the classify fill and the cache-hit path; unmonitored
// traffic does not.
func TestTelemetryMonitorCharging(t *testing.T) {
	sw := benchSwitch(t, 2, 16)
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(7)})
	frame := benchFrameFor(1, 0)
	for i := 0; i < 10; i++ {
		sw.handleFrame(1, frame)
	}
	mc := sw.MonitorCounters()
	if len(mc) != 1 || mc[0].Rule.ID != 7 {
		t.Fatalf("MonitorCounters = %+v", mc)
	}
	if mc[0].Packets != 10 || mc[0].Bytes != uint64(10*len(frame)) {
		t.Fatalf("monitored flow counted %d pkts / %d bytes, want 10 / %d",
			mc[0].Packets, mc[0].Bytes, 10*len(frame))
	}
	// A flow outside the monitored prefixes leaves the counters alone.
	other := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xD1),
		"10.1.0.1", "172.16.3.9", 1000, 5004, "x")
	for i := 0; i < 5; i++ {
		sw.handleFrame(1, other)
	}
	if got := sw.MonitorCounters()[0].Packets; got != 10 {
		t.Fatalf("unmonitored traffic charged the rule: %d pkts", got)
	}
}

// TestTelemetryCounterCarryAcrossMod: re-installing an identical rule keeps
// its counters (level-triggered TELEMETRY_MODs are no-ops); a changed rule
// starts over.
func TestTelemetryCounterCarryAcrossMod(t *testing.T) {
	sw := benchSwitch(t, 2, 16)
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(7)})
	frame := benchFrameFor(1, 0)
	for i := 0; i < 4; i++ {
		sw.handleFrame(1, frame)
	}
	// Same rule plus a new one: rule 7's count survives.
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(7),
		{ID: 8, Src: [4]byte{172, 16, 0, 0}, SrcBits: 12, Dst: [4]byte{10, 0, 0, 0}, DstBits: 8}})
	if got := sw.MonitorCounters()[0].Packets; got != 4 {
		t.Fatalf("identical rule lost its counters: %d pkts, want 4", got)
	}
	// Changed prefix under the same ID: counters reset.
	r := monRule10(7)
	r.DstBits = 24
	sw.table.setMonitors([]openflow.MonitorRule{r})
	if got := sw.MonitorCounters()[0].Packets; got != 0 {
		t.Fatalf("changed rule kept stale counters: %d pkts, want 0", got)
	}
}

// TestTelemetryExportProtocol drives the full wire protocol through the
// controller harness: TELEMETRY_MOD installs a rule, the first export is a
// FULL baseline, the ack advances it, and subsequent traffic arrives as a
// delta whose sum matches the switch's absolute counters.
func TestTelemetryExportProtocol(t *testing.T) {
	h := newHarness(t, nil)
	sw := h.sw

	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = uint16(pkt.EtherTypeIPv4)
	fm := &openflow.FlowMod{Match: m, Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	h.send(fm)
	mod := &openflow.TelemetryMod{Epoch: 5, IntervalMS: 25,
		Rules: []openflow.MonitorRule{{ID: 3,
			Src: [4]byte{10, 1, 0, 0}, SrcBits: 24,
			Dst: [4]byte{10, 2, 0, 0}, DstBits: 24}}}
	mod.SetXID(1)
	h.send(mod)
	h.send(&openflow.BarrierRequest{})
	h.expect(openflow.TypeBarrierReply)

	// Baseline: the unsynced rule exports FULL (counters may still be 0).
	ex := h.expect(openflow.TypeTelemetryExport).(*openflow.TelemetryExport)
	if ex.Epoch != 5 || !ex.Full() || len(ex.Entries) != 1 || ex.Entries[0].ID != 3 {
		t.Fatalf("first export = %+v, want FULL for rule 3 in epoch 5", ex)
	}
	h.send(&openflow.TelemetryAck{Epoch: 5, Seq: ex.Seq})

	frame := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xA2),
		"10.1.0.5", "10.2.0.9", 4000, 5004, "telemetry-payload")
	const pkts = 8
	for i := 0; i < pkts; i++ {
		h.h1.Send(frame)
	}

	// Deltas must account for exactly the monitored traffic; ack each export
	// and accumulate until the totals match.
	var gotPkts, gotBytes uint64
	deadline := time.After(5 * time.Second)
	for gotPkts < pkts {
		select {
		case msg, ok := <-h.msgs:
			if !ok {
				t.Fatal("connection closed")
			}
			ex, isEx := msg.(*openflow.TelemetryExport)
			if !isEx {
				continue
			}
			for _, e := range ex.Entries {
				if e.ID != 3 {
					t.Fatalf("export for unknown rule: %+v", e)
				}
				if ex.Full() {
					gotPkts, gotBytes = e.Packets, e.Bytes
				} else {
					gotPkts += e.Packets
					gotBytes += e.Bytes
				}
			}
			h.send(&openflow.TelemetryAck{Epoch: ex.Epoch, Seq: ex.Seq})
		case <-deadline:
			t.Fatalf("telemetry stream stuck at %d/%d packets", gotPkts, pkts)
		}
	}
	if gotPkts != pkts || gotBytes != uint64(pkts*len(frame)) {
		t.Fatalf("aggregated %d pkts / %d bytes, want %d / %d",
			gotPkts, gotBytes, pkts, pkts*len(frame))
	}
	if mc := sw.MonitorCounters(); mc[0].Packets != pkts {
		t.Fatalf("switch absolute = %d pkts, want %d", mc[0].Packets, pkts)
	}
}

// TestTelemetryEpochChangeRebaselines: a TELEMETRY_MOD with a new epoch —
// controller failover — forces FULL re-baselining so the new aggregator
// never receives deltas against a baseline it does not have.
func TestTelemetryEpochChangeRebaselines(t *testing.T) {
	h := newHarness(t, nil)
	rules := []openflow.MonitorRule{{ID: 3,
		Src: [4]byte{10, 1, 0, 0}, SrcBits: 24, Dst: [4]byte{10, 2, 0, 0}, DstBits: 24}}
	h.send(&openflow.TelemetryMod{Epoch: 1, IntervalMS: 25, Rules: rules})
	ex := h.expect(openflow.TypeTelemetryExport).(*openflow.TelemetryExport)
	if ex.Epoch != 1 || !ex.Full() {
		t.Fatalf("first export = %+v", ex)
	}
	h.send(&openflow.TelemetryAck{Epoch: 1, Seq: ex.Seq})
	// Failover: same rules, new epoch.
	h.send(&openflow.TelemetryMod{Epoch: 2, IntervalMS: 25, Rules: rules})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case msg, ok := <-h.msgs:
			if !ok {
				t.Fatal("connection closed")
			}
			ex, isEx := msg.(*openflow.TelemetryExport)
			if !isEx || ex.Epoch != 2 {
				continue
			}
			if !ex.Full() {
				t.Fatalf("first epoch-2 export not FULL: %+v", ex)
			}
			return
		case <-deadline:
			t.Fatal("no epoch-2 export")
		}
	}
}

// TestSwitchTelemetryForwardAllocBudget10k is the acceptance gate: with
// telemetry monitoring the traffic and 10k+ distinct active microflows
// churning the cache, steady-state forwarding still does not allocate.
func TestSwitchTelemetryForwardAllocBudget10k(t *testing.T) {
	sw := benchSwitch(t, 2, 16)
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(1)})

	// 10240 distinct monitored microflows, delivered in bursts.
	const flows = 10240
	burst := make([][]byte, 0, netemu.MaxBurst)
	var charged uint64
	for i := 0; i < flows; i++ {
		f := udpFrame(pkt.LocalMAC(0xA1), pkt.LocalMAC(0xD1),
			"10.1.0.1", fmt.Sprintf("10.200.%d.%d", (i/256)%256, i%256),
			5004, 5004, "benchpayload-benchpayload")
		burst = append(burst, f)
		charged++
		if len(burst) == netemu.MaxBurst {
			sw.handleBatch(1, burst)
			burst = burst[:0]
		}
	}
	sw.handleBatch(1, burst)
	if got := sw.MonitorCounters()[0].Packets; got != charged {
		t.Fatalf("monitor rule counted %d of %d packets", got, charged)
	}

	// The single-flow steady state on top of that working set: re-warm one
	// microflow's cache line, then hold the 0 allocs/op budget.
	frame := benchFrameFor(1, 0)
	for i := 0; i < 4096; i++ {
		sw.handleFrame(1, frame)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		sw.handleFrame(1, frame)
	}); avg > 0 {
		t.Fatalf("monitored forward allocates %.2f allocs/op, budget is 0", avg)
	}
}

// TestSwitchTelemetryBatchAllocBudget extends the batch-path 0 allocs/op
// gate to monitored traffic.
func TestSwitchTelemetryBatchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budget not meaningful under -race")
	}
	sw := benchSwitch(t, 2, 16)
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(1)})
	burst := make([][]byte, netemu.MaxBurst)
	for i := range burst {
		burst[i] = benchFrameFor(1, 0)
	}
	for i := 0; i < 64; i++ { // warm cache, pool and inbox
		sw.handleBatch(1, burst)
	}
	if avg := testing.AllocsPerRun(500, func() {
		sw.handleBatch(1, burst)
	}); avg > 0 {
		t.Fatalf("monitored batch forward allocates %.2f allocs/op, budget is 0", avg)
	}
	if got := sw.MonitorCounters()[0].Packets; got == 0 {
		t.Fatal("monitor rule never charged on the batch path")
	}
}

// BenchmarkSwitchForwardTelemetry is BenchmarkSwitchForwardCached with the
// packet's flow monitored: the delta between them is the telemetry tax on
// the hot path (two atomic adds on a cache hit).
func BenchmarkSwitchForwardTelemetry(b *testing.B) {
	sw := benchSwitch(b, 2, 128)
	sw.table.setMonitors([]openflow.MonitorRule{monRule10(1)})
	frame := benchFrameFor(1, 0)
	for i := 0; i < 2048; i++ {
		sw.handleFrame(1, frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.handleFrame(1, frame)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

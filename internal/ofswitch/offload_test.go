package ofswitch

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// offloadHarness is a 3-port switch with capture sinks, no controller.
func offloadHarness(t *testing.T) (*Switch, *captureSwitch) {
	t.Helper()
	cs := newCaptureSwitch(t, 3)
	return cs.sw, cs
}

func waitRx(t *testing.T, cs *captureSwitch, port uint16, want int) [][]byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		cs.mu.Lock()
		got := len(cs.rx[port])
		frames := append([][]byte(nil), cs.rx[port]...)
		cs.mu.Unlock()
		if got >= want {
			return frames
		}
		if time.Now().After(deadline) {
			t.Fatalf("port %d received %d frames, want %d", port, got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func macFrame(src, dst pkt.MAC, tag string) []byte {
	return udpFrame(src, dst, "10.0.0.1", "10.0.0.2", 1000, 2000, tag)
}

func TestOffloadOffByDefault(t *testing.T) {
	sw, _ := offloadHarness(t)
	if sw.StatefulOffloadEnabled() {
		t.Fatal("offload enabled on a fresh switch")
	}
	// Traffic must not learn anything: same exchange as the learning test
	// below, but the reply may not be forwarded (empty table → punt only).
	hostA, hostB := pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB)
	sw.handleFrame(1, macFrame(hostA, hostB, "x"))
	sw.handleFrame(2, macFrame(hostB, hostA, "y"))
	time.Sleep(50 * time.Millisecond)
	if st := sw.OffloadStats(); st != (OffloadStats{}) {
		t.Fatalf("offload stats advanced while disabled: %+v", st)
	}
}

// TestOffloadMACLearning: after one punted frame from each host, the switch
// forwards between them with an empty flow table — a learned flow is never
// punted — and the second packet of the flow upgrades to a pin hit.
func TestOffloadMACLearning(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	hostA, hostB := pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB)

	// A transmits on port 1: table miss, punted, but srcMAC learned.
	sw.handleFrame(1, macFrame(hostA, hostB, "hello"))
	// B answers on port 2: dst A is learned → forwarded out port 1.
	sw.handleFrame(2, macFrame(hostB, hostA, "reply-1"))
	got := waitRx(t, cs, 1, 1)
	if string(got[0][pkt.EthernetHeaderLen+28:]) != "reply-1" {
		t.Fatalf("unexpected frame on port 1: %x", got[0])
	}
	if st := sw.OffloadStats(); st.MACHits != 1 {
		t.Fatalf("MACHits = %d, want 1 (stats %+v)", st.MACHits, st)
	}
	// Second packet of the same microflow: pin hit, not another MAC lookup.
	sw.handleFrame(2, macFrame(hostB, hostA, "reply-2"))
	waitRx(t, cs, 1, 2)
	if st := sw.OffloadStats(); st.PinHits != 1 || st.MACHits != 1 {
		t.Fatalf("after second packet stats = %+v, want PinHits=1 MACHits=1", st)
	}
}

// TestOffloadPinInvalidatedByFlowMod: a pin created from a flow-table
// decision dies with the table generation, so a re-routed flow takes the
// new path on its very next packet.
func TestOffloadPinInvalidatedByFlowMod(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	add := func(out uint16, prio uint16) {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlType
		m.DlType = uint16(pkt.EtherTypeIPv4)
		m.SetNwDstPrefix(netip.MustParsePrefix("10.0.0.0/8"))
		if err := sw.table.add(tableEntry(m, prio, out), false); err != nil {
			t.Fatal(err)
		}
	}
	add(2, 10)
	frame := macFrame(pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB), "pinme")
	sw.handleFrame(1, frame) // table hit → observed → pinned to port 2
	sw.handleFrame(1, frame) // pin hit
	waitRx(t, cs, 2, 2)
	if st := sw.OffloadStats(); st.PinHits != 1 {
		t.Fatalf("PinHits = %d, want 1", st.PinHits)
	}
	add(3, 20) // higher-priority re-route; bumps every shard generation
	sw.handleFrame(1, frame)
	got := waitRx(t, cs, 3, 1)
	if string(got[0][pkt.EthernetHeaderLen+28:]) != "pinme" {
		t.Fatalf("unexpected frame on port 3: %x", got[0])
	}
}

// TestOffloadBypassesFlowCounters documents the hardware-offload semantic:
// pinned packets do not advance the flow entry's packet/byte counters.
func TestOffloadBypassesFlowCounters(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = uint16(pkt.EtherTypeIPv4)
	m.SetNwDstPrefix(netip.MustParsePrefix("10.0.0.0/8"))
	if err := sw.table.add(tableEntry(m, 10, 2), false); err != nil {
		t.Fatal(err)
	}
	frame := macFrame(pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB), "count")
	for i := 0; i < 5; i++ {
		sw.handleFrame(1, frame)
	}
	waitRx(t, cs, 2, 5)
	flows := sw.table.snapshot(time.Now())
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	// First packet went through the table (and created the pin); the other
	// four were offloaded and are invisible to the flow counters.
	if flows[0].Packets != 1 {
		t.Fatalf("flow counter = %d packets, want 1 (offloaded traffic must bypass it)", flows[0].Packets)
	}
	if st := sw.OffloadStats(); st.PinHits != 4 {
		t.Fatalf("PinHits = %d, want 4", st.PinHits)
	}
}

// TestOffloadRebootClears: learned state does not survive a power cycle.
func TestOffloadRebootClears(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	hostA, hostB := pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB)
	sw.handleFrame(1, macFrame(hostA, hostB, "x"))
	sw.handleFrame(2, macFrame(hostB, hostA, "y"))
	waitRx(t, cs, 1, 1)

	sw.Reboot()
	if !sw.StatefulOffloadEnabled() {
		t.Fatal("reboot should not disable the offload feature flag")
	}
	sw.handleFrame(2, macFrame(hostB, hostA, "after-reboot"))
	time.Sleep(50 * time.Millisecond)
	cs.mu.Lock()
	n := len(cs.rx[1])
	cs.mu.Unlock()
	if n != 1 {
		t.Fatalf("port 1 saw %d frames after reboot, learned state leaked through the power cycle", n)
	}
}

// TestOffloadDisableWipes: turning the flag off drops all learned state and
// restores the punt-everything pipeline.
func TestOffloadDisableWipes(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	hostA, hostB := pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB)
	sw.handleFrame(1, macFrame(hostA, hostB, "x"))
	sw.handleFrame(2, macFrame(hostB, hostA, "y"))
	waitRx(t, cs, 1, 1)

	sw.SetStatefulOffload(false)
	if sw.StatefulOffloadEnabled() {
		t.Fatal("still enabled")
	}
	sw.handleFrame(2, macFrame(hostB, hostA, "z"))
	time.Sleep(50 * time.Millisecond)
	cs.mu.Lock()
	n := len(cs.rx[1])
	cs.mu.Unlock()
	if n != 1 {
		t.Fatalf("port 1 saw %d frames after disable, want 1", n)
	}
}

// TestOffloadBroadcastStillPunts: multicast and broadcast destinations are
// never handled by the L2 machine (discovery and ARP keep their controller
// path).
func TestOffloadBroadcastStillPunts(t *testing.T) {
	sw, cs := offloadHarness(t)
	sw.SetStatefulOffload(true)
	sw.handleFrame(1, macFrame(pkt.LocalMAC(0xAA), pkt.BroadcastMAC, "bcast"))
	time.Sleep(50 * time.Millisecond)
	for p := uint16(1); p <= 3; p++ {
		cs.mu.Lock()
		n := len(cs.rx[p])
		cs.mu.Unlock()
		if n != 0 {
			t.Fatalf("broadcast leaked out port %d via the offload machines", p)
		}
	}
}

// TestOffloadConfigAndBatch: the Config flag wires the layer up at
// construction, and the batch path takes the same offload decisions.
func TestOffloadConfigAndBatch(t *testing.T) {
	cs := &captureSwitch{sw: New(Config{DPID: 1, Name: "cfg", StatefulOffload: true}),
		rx: make(map[uint16][][]byte)}
	if !cs.sw.StatefulOffloadEnabled() {
		t.Fatal("Config.StatefulOffload ignored")
	}
	n := netemu.NewNetwork(nil)
	t.Cleanup(n.Close)
	for p := 1; p <= 2; p++ {
		port := uint16(p)
		a, far := n.NewCable(netemu.CableOpts{
			NameA: fmt.Sprintf("cfg:%d", p), MACA: pkt.LocalMAC(uint64(p))})
		far.SetReceiver(func(frame []byte) {
			cs.mu.Lock()
			cs.rx[port] = append(cs.rx[port], append([]byte(nil), frame...))
			cs.seen++
			cs.mu.Unlock()
		})
		if err := cs.sw.AttachPort(port, a); err != nil {
			t.Fatal(err)
		}
	}
	hostA, hostB := pkt.LocalMAC(0xAA), pkt.LocalMAC(0xBB)
	cs.sw.handleBatch(1, [][]byte{macFrame(hostA, hostB, "learn")})
	reply := [][]byte{
		macFrame(hostB, hostA, "r1"), macFrame(hostB, hostA, "r2"),
		macFrame(hostB, hostA, "r3"),
	}
	cs.sw.handleBatch(2, reply)
	got := waitRx(t, cs, 1, 3)
	if len(got) != 3 {
		t.Fatalf("got %d frames", len(got))
	}
	// The whole run after the first frame rides the pin machine: the MAC
	// decision is taken once per run, so one MAC hit covers r1..r3.
	if st := cs.sw.OffloadStats(); st.MACHits+st.PinHits != 3 {
		t.Fatalf("offload stats %+v do not cover the 3-frame run", st)
	}
}

package ofswitch

import (
	"net/netip"

	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// rewritePlan classifies an action list's rewrite shape so burst
// forwarding can scan the actions once per run instead of once per frame.
type rewritePlan uint8

const (
	rwNone rewritePlan = iota // no rewrite actions: frame passes through
	rwL2                      // only MAC rewrites: patch the header in place
	rwFull                    // VLAN/L3/L4 rewrites: decode and re-marshal
)

// planRewrites scans the action list and classifies its rewrite shape.
func planRewrites(actions []openflow.Action) rewritePlan {
	plan := rwNone
	for _, a := range actions {
		switch a.(type) {
		case *openflow.ActionSetDlSrc, *openflow.ActionSetDlDst:
			if plan == rwNone {
				plan = rwL2
			}
		case *openflow.ActionOutput, *openflow.ActionEnqueue, *openflow.ActionVendor:
			// Not rewrites; handled (or ignored) by the caller.
		default:
			plan = rwFull
		}
	}
	return plan
}

// applyRewrites returns frame with all non-output actions applied: L2
// address and VLAN rewrites, and L3/L4 rewrites with checksum repair. Output
// actions are collected separately by the caller. The caller must own frame:
// the hot path (pure MAC rewrites, which is what every routed hop executes)
// patches the Ethernet header in place instead of decoding and
// re-marshalling the whole packet; only VLAN/L3/L4 rewrites take the
// rebuild path.
func applyRewrites(frame []byte, actions []openflow.Action) []byte {
	return applyRewritesPlanned(frame, actions, planRewrites(actions))
}

// applyRewritesPlanned is applyRewrites with the action scan hoisted out,
// for callers that apply one action list to a whole run of frames.
func applyRewritesPlanned(frame []byte, actions []openflow.Action, plan rewritePlan) []byte {
	if plan == rwNone {
		return frame
	}
	if plan == rwL2 && len(frame) >= pkt.EthernetHeaderLen {
		for _, a := range actions {
			switch act := a.(type) {
			case *openflow.ActionSetDlSrc:
				copy(frame[6:12], act.Addr[:])
			case *openflow.ActionSetDlDst:
				copy(frame[0:6], act.Addr[:])
			}
		}
		return frame
	}
	f, err := pkt.DecodeFrame(frame)
	if err != nil {
		return frame
	}
	changed := false
	var ip *pkt.IPv4
	ipDirty := false
	ensureIP := func() *pkt.IPv4 {
		if ip == nil && f.Type == pkt.EtherTypeIPv4 {
			ip, _ = pkt.DecodeIPv4(f.Payload)
		}
		return ip
	}
	var udp *pkt.UDP
	udpDirty := false
	ensureUDP := func() *pkt.UDP {
		if p := ensureIP(); p != nil && p.Proto == pkt.ProtoUDP && udp == nil {
			// Decode without checksum verification: earlier actions may
			// already have rewritten the pseudo-header addresses, and the
			// datagram is re-checksummed on marshal anyway.
			udp, _ = pkt.DecodeUDP(p.Payload, netip.Addr{}, netip.Addr{})
		}
		return udp
	}

	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionSetDlSrc:
			f.Src = act.Addr
			changed = true
		case *openflow.ActionSetDlDst:
			f.Dst = act.Addr
			changed = true
		case *openflow.ActionSetVlanVid:
			f.VLANID = act.VlanVid & 0x0fff
			changed = true
		case *openflow.ActionStripVlan:
			f.VLANID = 0
			changed = true
		case *openflow.ActionSetNwSrc:
			if p := ensureIP(); p != nil {
				p.Src = netip.AddrFrom4(act.Addr)
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetNwDst:
			if p := ensureIP(); p != nil {
				p.Dst = netip.AddrFrom4(act.Addr)
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetNwTos:
			if p := ensureIP(); p != nil {
				p.TOS = act.Tos
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetTpSrc:
			if u := ensureUDP(); u != nil {
				u.SrcPort = act.Port
				udpDirty, ipDirty, changed = true, true, true
			}
		case *openflow.ActionSetTpDst:
			if u := ensureUDP(); u != nil {
				u.DstPort = act.Port
				udpDirty, ipDirty, changed = true, true, true
			}
		}
	}
	if !changed {
		return frame
	}
	// L4 rewrites (or L3 address rewrites under UDP, which change the
	// pseudo-header) force a UDP re-marshal; any IP change forces an IP
	// re-marshal with a fresh header checksum.
	if ip != nil && ipDirty {
		if udp == nil && ip.Proto == pkt.ProtoUDP {
			// Address rewrite invalidates the UDP pseudo-header checksum.
			udp, _ = pkt.DecodeUDP(ip.Payload, netip.Addr{}, netip.Addr{})
			udpDirty = udp != nil
		}
		if udp != nil && udpDirty {
			ip.Payload = udp.Marshal(ip.Src, ip.Dst)
		}
		f.Payload = ip.Marshal()
	}
	return f.Marshal()
}

package ofswitch

import (
	"net/netip"

	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// applyRewrites returns frame with all non-output actions applied: L2
// address and VLAN rewrites, and L3/L4 rewrites with checksum repair. Output
// actions are collected separately by the caller. The caller must own frame:
// the hot path (pure MAC rewrites, which is what every routed hop executes)
// patches the Ethernet header in place instead of decoding and
// re-marshalling the whole packet; only VLAN/L3/L4 rewrites take the
// rebuild path.
func applyRewrites(frame []byte, actions []openflow.Action) []byte {
	l2Only := true
	rewrites := false
	for _, a := range actions {
		switch a.(type) {
		case *openflow.ActionSetDlSrc, *openflow.ActionSetDlDst:
			rewrites = true
		case *openflow.ActionOutput, *openflow.ActionEnqueue, *openflow.ActionVendor:
			// Not rewrites; handled (or ignored) by the caller.
		default:
			rewrites, l2Only = true, false
		}
	}
	if !rewrites {
		return frame
	}
	if l2Only && len(frame) >= pkt.EthernetHeaderLen {
		for _, a := range actions {
			switch act := a.(type) {
			case *openflow.ActionSetDlSrc:
				copy(frame[6:12], act.Addr[:])
			case *openflow.ActionSetDlDst:
				copy(frame[0:6], act.Addr[:])
			}
		}
		return frame
	}
	f, err := pkt.DecodeFrame(frame)
	if err != nil {
		return frame
	}
	changed := false
	var ip *pkt.IPv4
	ipDirty := false
	ensureIP := func() *pkt.IPv4 {
		if ip == nil && f.Type == pkt.EtherTypeIPv4 {
			ip, _ = pkt.DecodeIPv4(f.Payload)
		}
		return ip
	}
	var udp *pkt.UDP
	udpDirty := false
	ensureUDP := func() *pkt.UDP {
		if p := ensureIP(); p != nil && p.Proto == pkt.ProtoUDP && udp == nil {
			// Decode without checksum verification: earlier actions may
			// already have rewritten the pseudo-header addresses, and the
			// datagram is re-checksummed on marshal anyway.
			udp, _ = pkt.DecodeUDP(p.Payload, netip.Addr{}, netip.Addr{})
		}
		return udp
	}

	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionSetDlSrc:
			f.Src = act.Addr
			changed = true
		case *openflow.ActionSetDlDst:
			f.Dst = act.Addr
			changed = true
		case *openflow.ActionSetVlanVid:
			f.VLANID = act.VlanVid & 0x0fff
			changed = true
		case *openflow.ActionStripVlan:
			f.VLANID = 0
			changed = true
		case *openflow.ActionSetNwSrc:
			if p := ensureIP(); p != nil {
				p.Src = netip.AddrFrom4(act.Addr)
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetNwDst:
			if p := ensureIP(); p != nil {
				p.Dst = netip.AddrFrom4(act.Addr)
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetNwTos:
			if p := ensureIP(); p != nil {
				p.TOS = act.Tos
				ipDirty, changed = true, true
			}
		case *openflow.ActionSetTpSrc:
			if u := ensureUDP(); u != nil {
				u.SrcPort = act.Port
				udpDirty, ipDirty, changed = true, true, true
			}
		case *openflow.ActionSetTpDst:
			if u := ensureUDP(); u != nil {
				u.DstPort = act.Port
				udpDirty, ipDirty, changed = true, true, true
			}
		}
	}
	if !changed {
		return frame
	}
	// L4 rewrites (or L3 address rewrites under UDP, which change the
	// pseudo-header) force a UDP re-marshal; any IP change forces an IP
	// re-marshal with a fresh header checksum.
	if ip != nil && ipDirty {
		if udp == nil && ip.Proto == pkt.ProtoUDP {
			// Address rewrite invalidates the UDP pseudo-header checksum.
			udp, _ = pkt.DecodeUDP(ip.Payload, netip.Addr{}, netip.Addr{})
			udpDirty = udp != nil
		}
		if udp != nil && udpDirty {
			ip.Payload = udp.Marshal(ip.Src, ip.Dst)
		}
		f.Payload = ip.Marshal()
	}
	return f.Marshal()
}

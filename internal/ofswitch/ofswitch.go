package ofswitch

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/netemu"
	"routeflow/internal/openflow"
)

// Defaults.
const (
	DefaultNumBuffers  = 256
	DefaultMissSendLen = 128
	expireInterval     = time.Second
	// Reconnect backoff (protocol time) for StartDialer sessions.
	reconnectDelayMin = 250 * time.Millisecond
	reconnectDelayMax = 5 * time.Second
)

// Config configures a Switch.
type Config struct {
	DPID        uint64
	Name        string // used in port names and desc stats
	NumBuffers  int
	MissSendLen uint16
	Clock       clock.Clock
	// StatefulOffload enables the XFSM-style local state machines (see
	// offload.go) at construction. Off by default; can also be toggled at
	// runtime with SetStatefulOffload.
	StatefulOffload bool
}

// Switch is a software OpenFlow 1.0 datapath.
type Switch struct {
	dpid       uint64
	name       string
	clk        clock.Clock
	numBuffers int
	// missSendLen is atomic: the control loop rewrites it on SET_CONFIG
	// while dataplane goroutines read it on every table-miss punt.
	missSendLen atomic.Uint32

	table *flowTable

	// tel is the telemetry exporter state (telemetry.go).
	tel telState

	// offload is the stateful offload layer (offload.go); nil until the
	// first enable so the default pipeline pays one pointer load per burst.
	offload atomic.Pointer[offloadState]

	portMu sync.RWMutex
	ports  map[uint16]*swPort

	bufMu    sync.Mutex
	buffers  map[uint32]bufferedPacket
	bufOrder []uint32 // FIFO of live buffer IDs for eviction
	nextBuf  uint32

	connMu  sync.Mutex
	conn    io.ReadWriteCloser
	out     chan openflow.Message
	running bool

	ctlDrops uint64 // messages dropped because the outbound queue was full

	stopOnce sync.Once
	stop     chan struct{}

	wg sync.WaitGroup
}

// outQueueDepth bounds outbound control messages; a stalled controller
// causes packet-in drops (as on a real switch) instead of blocking the
// dataplane.
const outQueueDepth = 1024

type swPort struct {
	no uint16
	ep *netemu.Endpoint
}

type bufferedPacket struct {
	inPort uint16
	frame  []byte
}

// New creates a switch; attach ports with AttachPort, then Start it with a
// controller connection.
func New(cfg Config) *Switch {
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.NumBuffers <= 0 {
		cfg.NumBuffers = DefaultNumBuffers
	}
	if cfg.MissSendLen == 0 {
		cfg.MissSendLen = DefaultMissSendLen
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("sw-%x", cfg.DPID)
	}
	s := &Switch{
		dpid:       cfg.DPID,
		name:       cfg.Name,
		clk:        cfg.Clock,
		numBuffers: cfg.NumBuffers,
		table:      newFlowTable(),
		tel:        telState{poke: make(chan struct{}, 1)},
		ports:      make(map[uint16]*swPort),
		buffers:    make(map[uint32]bufferedPacket),
		stop:       make(chan struct{}),
	}
	s.missSendLen.Store(uint32(cfg.MissSendLen))
	if cfg.StatefulOffload {
		s.SetStatefulOffload(true)
	}
	return s
}

// DPID returns the datapath ID.
func (s *Switch) DPID() uint64 { return s.dpid }

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// AttachPort binds a netemu endpoint as OpenFlow port portNo. The endpoint's
// receiver is taken over by the switch, and link-state transitions become
// port-status messages.
func (s *Switch) AttachPort(portNo uint16, ep *netemu.Endpoint) error {
	if portNo == 0 || portNo >= openflow.PortMax {
		return fmt.Errorf("ofswitch %s: invalid port number %d", s.name, portNo)
	}
	s.portMu.Lock()
	defer s.portMu.Unlock()
	if _, dup := s.ports[portNo]; dup {
		return fmt.Errorf("ofswitch %s: port %d already attached", s.name, portNo)
	}
	p := &swPort{no: portNo, ep: ep}
	s.ports[portNo] = p
	// Batch delivery: the cable hands over its whole inbox burst in one
	// callback, letting the dataplane amortize classification, cache probes
	// and counter updates over runs of same-flow frames.
	ep.SetBatchReceiver(func(frames [][]byte) { s.handleBatch(portNo, frames) })
	ep.OnLinkState(func(up bool) { s.portStateChanged(p, up) })
	return nil
}

// Ports returns the attached port numbers in unspecified order.
func (s *Switch) Ports() []uint16 {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	out := make([]uint16, 0, len(s.ports))
	for no := range s.ports {
		out = append(out, no)
	}
	return out
}

// FlowTable returns a snapshot of installed flows.
func (s *Switch) FlowTable() []FlowInfo { return s.table.snapshot(s.clk.Now()) }

// NumFlows returns the number of installed flows.
func (s *Switch) NumFlows() int { return s.table.len() }

// Start attaches the controller connection (usually to FlowVisor) and runs
// the control loop until Stop or connection error. It sends the initial
// HELLO immediately, per the OpenFlow handshake.
func (s *Switch) Start(conn io.ReadWriteCloser) error {
	s.connMu.Lock()
	if s.running || s.conn != nil {
		s.connMu.Unlock()
		return errors.New("ofswitch: already started")
	}
	s.running = true
	s.conn = conn
	s.out = make(chan openflow.Message, outQueueDepth)
	s.connMu.Unlock()

	if err := s.send(&openflow.Hello{}); err != nil {
		return fmt.Errorf("ofswitch %s: hello: %w", s.name, err)
	}
	s.wg.Add(4)
	go s.writeLoop(conn)
	go s.controlLoop(conn)
	go s.expireLoop()
	go s.telemetryLoop()
	return nil
}

// StartDialer runs the control channel with level-triggered liveness: it
// dials the controller, serves the session until the connection dies
// (transport error, keepalive cut by the controller, FlowVisor restart)
// and then redials with exponential backoff instead of staying dark
// forever — a real switch reconnects; so does this one. Stop ends it.
func (s *Switch) StartDialer(dial func() (io.ReadWriteCloser, error)) error {
	s.connMu.Lock()
	if s.running {
		s.connMu.Unlock()
		return errors.New("ofswitch: already started")
	}
	s.running = true
	s.connMu.Unlock()
	s.wg.Add(3)
	go s.expireLoop()
	go s.telemetryLoop()
	go s.supervise(dial)
	return nil
}

func (s *Switch) supervise(dial func() (io.ReadWriteCloser, error)) {
	defer s.wg.Done()
	delay := reconnectDelayMin
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if conn, err := dial(); err == nil {
			start := s.clk.Now()
			s.runSession(conn)
			if s.clk.Since(start) >= reconnectDelayMax {
				// A session that lived a while was healthy: restart the
				// backoff schedule. Sessions cut immediately (crash-looping
				// proxy, handshake rejection) keep backing off like failed
				// dials: min, 2*min, ... max.
				delay = reconnectDelayMin
			}
		}
		wait := delay
		if delay *= 2; delay > reconnectDelayMax {
			delay = reconnectDelayMax
		}
		t := s.clk.NewTimer(wait)
		select {
		case <-s.stop:
			t.Stop()
			return
		case <-t.C():
		}
	}
}

// runSession drives one controller connection from HELLO to disconnect.
func (s *Switch) runSession(conn io.ReadWriteCloser) {
	out := make(chan openflow.Message, outQueueDepth)
	s.connMu.Lock()
	s.conn = conn
	s.out = out
	s.connMu.Unlock()

	sessEnd := make(chan struct{})
	var endOnce sync.Once
	endSession := func() { endOnce.Do(func() { close(sessEnd) }) }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // a global Stop must also cut this session's connection
		defer wg.Done()
		select {
		case <-s.stop:
		case <-sessEnd:
		}
		conn.Close()
	}()
	go func() {
		defer wg.Done()
		_ = openflow.PumpBatched(conn, out, sessEnd)
		endSession()
	}()
	if err := s.send(&openflow.Hello{}); err == nil {
		dec := openflow.NewDecoder(conn)
		for {
			m, err := dec.Decode()
			if err != nil {
				break
			}
			s.handleControl(m)
		}
	}
	endSession()
	wg.Wait()
	s.connMu.Lock()
	if s.conn == conn {
		s.conn, s.out = nil, nil
	}
	s.connMu.Unlock()
	// Exports in flight on the dead session are lost; re-baseline on the
	// next one.
	s.telSessionDown()
}

// writeLoop batches queued replies and packet-ins into single writes; a
// burst of table-miss punts reaches the controller as one write instead of
// one per packet.
func (s *Switch) writeLoop(conn io.ReadWriteCloser) {
	defer s.wg.Done()
	_ = openflow.PumpBatched(conn, s.out, s.stop)
}

// Reboot models a switch crash and cold restart: the flow table and the
// packet-buffer pool are lost (no flow-removed notifications — nobody is
// there to send them) and the control session is cut. A StartDialer-managed
// switch redials with backoff; the controllers observe switch-down then
// switch-up and replay desired state, which is exactly the recovery path a
// failure scenario wants to exercise. Ports and their cables are untouched.
func (s *Switch) Reboot() {
	all := openflow.MatchAll()
	s.table.deleteFlows(&all, 0, openflow.PortNone, false)
	// Monitor rules and their counters die with the crash; the controller
	// replays its TELEMETRY_MOD on reconnect and re-baselines from zero.
	s.table.setMonitors(nil)
	s.tel.mu.Lock()
	s.tel.rules = nil
	s.tel.pending = nil
	s.tel.mu.Unlock()
	if ol := s.offload.Load(); ol != nil {
		ol.reset() // learned L2/pin state does not survive a power cycle
	}
	s.bufMu.Lock()
	s.buffers = make(map[uint32]bufferedPacket)
	s.bufOrder = nil
	s.bufMu.Unlock()
	s.connMu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.connMu.Unlock()
}

// Stop closes the controller connection and stops background work.
func (s *Switch) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.connMu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

func (s *Switch) send(m openflow.Message) error {
	s.connMu.Lock()
	out := s.out
	s.connMu.Unlock()
	if out == nil {
		return errors.New("ofswitch: not connected")
	}
	select {
	case out <- m:
		return nil
	default:
		s.bufMu.Lock()
		s.ctlDrops++
		s.bufMu.Unlock()
		return errors.New("ofswitch: controller queue full")
	}
}

func (s *Switch) controlLoop(conn io.ReadWriteCloser) {
	defer s.wg.Done()
	defer s.telSessionDown()
	dec := openflow.NewDecoder(conn)
	for {
		m, err := dec.Decode()
		if err != nil {
			return
		}
		s.handleControl(m)
	}
}

func (s *Switch) expireLoop() {
	defer s.wg.Done()
	tick := s.clk.NewTicker(expireInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C():
			now := s.clk.Now()
			for _, e := range s.table.expire(now) {
				if e.flags&openflow.FlowModFlagSendFlowRem != 0 {
					reason := openflow.FlowRemovedIdleTimeout
					if e.hardTimeout > 0 && now.Sub(e.created) >= time.Duration(e.hardTimeout)*time.Second {
						reason = openflow.FlowRemovedHardTimeout
					}
					s.sendFlowRemoved(e, reason, now)
				}
			}
		case <-s.stop:
			return
		}
	}
}

func (s *Switch) sendFlowRemoved(e *flowEntry, reason uint8, now time.Time) {
	dur := now.Sub(e.created)
	_ = s.send(&openflow.FlowRemoved{
		Match: e.match, Cookie: e.cookie, Priority: e.priority, Reason: reason,
		DurationSec:  uint32(dur / time.Second),
		DurationNsec: uint32(dur % time.Second),
		IdleTimeout:  e.idleTimeout,
		PacketCount:  e.packets.Load(), ByteCount: e.bytes.Load(),
	})
}

func (s *Switch) handleControl(m openflow.Message) {
	switch msg := m.(type) {
	case *openflow.Hello:
		// Nothing to do: version negotiation succeeded by construction.
	case *openflow.EchoRequest:
		rep := &openflow.EchoReply{Data: msg.Data}
		rep.SetXID(msg.XID())
		_ = s.send(rep)
	case *openflow.FeaturesRequest:
		rep := s.featuresReply()
		rep.SetXID(msg.XID())
		_ = s.send(rep)
	case *openflow.GetConfigRequest:
		rep := &openflow.GetConfigReply{MissSendLen: uint16(s.missSendLen.Load())}
		rep.SetXID(msg.XID())
		_ = s.send(rep)
	case *openflow.SetConfig:
		if msg.MissSendLen != 0 {
			s.missSendLen.Store(uint32(msg.MissSendLen))
		}
	case *openflow.FlowMod:
		s.handleFlowMod(msg)
	case *openflow.PacketOut:
		s.handlePacketOut(msg)
	case *openflow.StatsRequest:
		s.handleStats(msg)
	case *openflow.BarrierRequest:
		// All preceding messages were processed synchronously in this loop.
		rep := &openflow.BarrierReply{}
		rep.SetXID(msg.XID())
		_ = s.send(rep)
	case *openflow.TelemetryMod:
		s.handleTelemetryMod(msg)
	case *openflow.TelemetryAck:
		s.handleTelemetryAck(msg)
	case *openflow.Vendor:
		s.sendError(msg, openflow.ErrTypeBadRequest, openflow.ErrCodeBadRequestBadType, msg)
	case *openflow.Raw:
		s.sendError(msg, openflow.ErrTypeBadRequest, openflow.ErrCodeBadRequestBadType, msg)
	default:
		// Replies (echo reply, stats reply, ...) are unexpected on a switch;
		// OpenFlow says ignore what you can.
	}
}

func (s *Switch) sendError(req openflow.Message, errType, code uint16, orig openflow.Message) {
	data := openflow.Marshal(orig)
	if len(data) > 64 {
		data = data[:64]
	}
	e := &openflow.ErrorMsg{ErrType: errType, Code: code, Data: data}
	e.SetXID(req.XID())
	_ = s.send(e)
}

func (s *Switch) featuresReply() *openflow.FeaturesReply {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	rep := &openflow.FeaturesReply{
		DatapathID:   s.dpid,
		NBuffers:     uint32(s.numBuffers),
		NTables:      1,
		Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats,
		Actions:      0xfff, // all OF 1.0 standard actions
	}
	for no, p := range s.ports {
		rep.Ports = append(rep.Ports, s.phyPort(no, p))
	}
	// Deterministic order helps tests and humans.
	for i := 0; i < len(rep.Ports); i++ {
		for j := i + 1; j < len(rep.Ports); j++ {
			if rep.Ports[j].PortNo < rep.Ports[i].PortNo {
				rep.Ports[i], rep.Ports[j] = rep.Ports[j], rep.Ports[i]
			}
		}
	}
	return rep
}

func (s *Switch) phyPort(no uint16, p *swPort) openflow.PhyPort {
	var state uint32
	if !p.ep.LinkUp() {
		state = openflow.PortStateDown
	}
	return openflow.PhyPort{
		PortNo: no,
		HWAddr: p.ep.MAC(),
		Name:   fmt.Sprintf("%s-eth%d", s.name, no),
		State:  state,
	}
}

func (s *Switch) portStateChanged(p *swPort, up bool) {
	ps := &openflow.PortStatus{Reason: openflow.PortReasonModify, Desc: s.phyPort(p.no, p)}
	_ = s.send(ps)
}

func (s *Switch) handleFlowMod(m *openflow.FlowMod) {
	switch m.Command {
	case openflow.FlowModAdd:
		e := &flowEntry{
			match: m.Match, priority: m.Priority, cookie: m.Cookie,
			idleTimeout: m.IdleTimeout, hardTimeout: m.HardTimeout,
			flags: m.Flags, actions: m.Actions, created: s.clk.Now(),
		}
		if errMsg := s.table.add(e, m.Flags&openflow.FlowModFlagCheckOverlap != 0); errMsg != nil {
			errMsg.SetXID(m.XID())
			errMsg.Data = openflow.Marshal(m)[:64]
			_ = s.send(errMsg)
			return
		}
	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := m.Command == openflow.FlowModModifyStrict
		if n := s.table.modify(&m.Match, m.Priority, m.Actions, strict); n == 0 {
			// OF 1.0: a modify that matches nothing behaves like an add.
			e := &flowEntry{
				match: m.Match, priority: m.Priority, cookie: m.Cookie,
				idleTimeout: m.IdleTimeout, hardTimeout: m.HardTimeout,
				flags: m.Flags, actions: m.Actions, created: s.clk.Now(),
			}
			_ = s.table.add(e, false)
		}
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := m.Command == openflow.FlowModDeleteStrict
		now := s.clk.Now()
		for _, e := range s.table.deleteFlows(&m.Match, m.Priority, m.OutPort, strict) {
			if e.flags&openflow.FlowModFlagSendFlowRem != 0 {
				s.sendFlowRemoved(e, openflow.FlowRemovedDelete, now)
			}
		}
	}
	// Releasing a buffered packet through the new flow.
	if m.BufferID != openflow.NoBuffer && m.Command == openflow.FlowModAdd {
		if bp, ok := s.takeBuffer(m.BufferID); ok {
			s.forward(bp.inPort, bp.frame, m.Actions)
		}
	}
}

func (s *Switch) handlePacketOut(m *openflow.PacketOut) {
	frame := m.Data
	if m.BufferID != openflow.NoBuffer {
		bp, ok := s.takeBuffer(m.BufferID)
		if !ok {
			s.sendError(m, openflow.ErrTypeBadRequest, openflow.ErrCodeBadRequestBufUnknown, m)
			return
		}
		frame = bp.frame
	}
	if len(frame) == 0 {
		return
	}
	s.forward(m.InPort, frame, m.Actions)
}

func (s *Switch) handleStats(m *openflow.StatsRequest) {
	rep := &openflow.StatsReply{StatsType: m.StatsType}
	rep.SetXID(m.XID())
	switch m.StatsType {
	case openflow.StatsDesc:
		rep.Desc = &openflow.DescStats{
			Manufacturer: "routeflow-repro",
			Hardware:     "netemu virtual datapath",
			Software:     "ofswitch (OpenFlow 1.0)",
			SerialNumber: fmt.Sprintf("%016x", s.dpid),
			Datapath:     s.name,
		}
	case openflow.StatsFlow:
		now := s.clk.Now()
		req := m.Flow
		for _, fi := range s.table.snapshot(now) {
			if req != nil && !req.Match.Covers(&fi.Match) {
				continue
			}
			rep.Flows = append(rep.Flows, openflow.FlowStats{
				TableID: 0, Match: fi.Match,
				DurationSec:  uint32(fi.Age / time.Second),
				DurationNsec: uint32(fi.Age % time.Second),
				Priority:     fi.Priority, IdleTimeout: fi.IdleTimeout,
				HardTimeout: fi.HardTimeout, Cookie: fi.Cookie,
				PacketCount: fi.Packets, ByteCount: fi.Bytes,
				Actions: fi.Actions,
			})
		}
	case openflow.StatsTable:
		lookups, matched, active := s.table.stats()
		rep.Tables = []openflow.TableStats{{
			TableID: 0, Name: "classifier", Wildcards: openflow.WildcardAll,
			MaxEntries: 1 << 20, ActiveCount: uint32(active),
			LookupCount: lookups, MatchedCount: matched,
		}}
	case openflow.StatsPort:
		s.portMu.RLock()
		for no, p := range s.ports {
			if m.Port != nil && m.Port.PortNo != openflow.PortNone && m.Port.PortNo != no {
				continue
			}
			st := p.ep.Stats()
			rep.Ports = append(rep.Ports, openflow.PortStats{
				PortNo:    no,
				RxPackets: st.RxPackets, TxPackets: st.TxPackets,
				RxBytes: st.RxBytes, TxBytes: st.TxBytes,
				TxDropped: st.Drops,
			})
		}
		s.portMu.RUnlock()
	default:
		s.sendError(m, openflow.ErrTypeBadRequest, openflow.ErrCodeBadRequestBadStat, m)
		return
	}
	_ = s.send(rep)
}

// handleFrame is the single-frame dataplane: classify, steer through the
// offload machines if enabled, look up, forward or punt. It runs on the
// delivering port's goroutine (and re-entrantly for OFPP_TABLE packet-outs);
// ports of one switch forward concurrently, serialized only by a
// cache-miss's read lock.
func (s *Switch) handleFrame(inPort uint16, frame []byte) {
	key, err := openflow.ExtractKey(inPort, frame)
	if err != nil {
		return // unparseable runt frame
	}
	ol := s.offload.Load()
	if ol != nil && ol.enabled.Load() {
		if out, ok := ol.steer(s.table, &key, 1); ok {
			s.emit(out, frame)
			return
		}
	} else {
		ol = nil
	}
	if actions, ok := s.table.lookup(&key, len(frame), s.clk.Now().UnixNano()); ok {
		if ol != nil {
			ol.observe(s.table, &key, actions)
		}
		s.forward(inPort, frame, actions)
		return
	}
	s.punt(inPort, frame)
}

// handleBatch is the burst dataplane. Consecutive frames with an identical
// microflow key form a run; each run costs one offload steer or one cache
// probe plus one batched counter update, and its rewrite actions are
// planned once (see planRewrites) instead of re-scanned per frame. Frames
// and the slice are owned by the cable and valid only for this call; every
// egress path copies (Send into the pool, punt into the buffer pool).
func (s *Switch) handleBatch(inPort uint16, frames [][]byte) {
	for len(frames) > netemu.MaxBurst {
		s.handleBatch(inPort, frames[:netemu.MaxBurst])
		frames = frames[netemu.MaxBurst:]
	}
	n := len(frames)
	if n == 0 {
		return
	}
	var keys [netemu.MaxBurst]openflow.Match
	var valid [netemu.MaxBurst]bool
	for i := 0; i < n; i++ {
		k, err := openflow.ExtractKey(inPort, frames[i])
		if err == nil {
			keys[i], valid[i] = k, true
		}
	}
	ol := s.offload.Load()
	if ol != nil && !ol.enabled.Load() {
		ol = nil
	}
	now := s.clk.Now().UnixNano()
	for i := 0; i < n; {
		if !valid[i] {
			i++ // unparseable runt frame
			continue
		}
		j := i + 1
		nBytes := uint64(len(frames[i]))
		for j < n && valid[j] && keys[j] == keys[i] {
			nBytes += uint64(len(frames[j]))
			j++
		}
		s.processRun(inPort, frames[i:j], &keys[i], nBytes, now, ol)
		i = j
	}
}

// processRun forwards one same-key run: the classification decision is made
// once and applied to every frame of the run.
func (s *Switch) processRun(inPort uint16, run [][]byte, key *openflow.Match, nBytes uint64, now int64, ol *offloadState) {
	if ol != nil {
		if out, ok := ol.steer(s.table, key, uint64(len(run))); ok {
			for _, f := range run {
				s.emit(out, f)
			}
			return
		}
	}
	if actions, ok := s.table.lookupN(key, uint64(len(run)), nBytes, now); ok {
		if ol != nil {
			ol.observe(s.table, key, actions)
		}
		s.forwardRun(inPort, run, actions)
		return
	}
	for _, f := range run {
		s.punt(inPort, f)
	}
}

// punt buffers the frame and sends a packet-in to the controller.
func (s *Switch) punt(inPort uint16, frame []byte) {
	s.bufMu.Lock()
	// Like a hardware ring, the oldest unclaimed buffer is recycled when the
	// pool is exhausted (controllers that never release buffers — e.g. pure
	// discovery probes — must not pin memory forever).
	for len(s.buffers) >= s.numBuffers && len(s.bufOrder) > 0 {
		victim := s.bufOrder[0]
		s.bufOrder = s.bufOrder[1:]
		delete(s.buffers, victim)
	}
	s.nextBuf++
	bufID := s.nextBuf
	s.buffers[bufID] = bufferedPacket{inPort: inPort, frame: append([]byte(nil), frame...)}
	s.bufOrder = append(s.bufOrder, bufID)
	s.bufMu.Unlock()

	data := frame
	if msl := int(s.missSendLen.Load()); bufID != openflow.NoBuffer && len(data) > msl {
		data = data[:msl]
	}
	_ = s.send(&openflow.PacketIn{
		BufferID: bufID,
		TotalLen: uint16(len(frame)),
		InPort:   inPort,
		Reason:   openflow.PacketInReasonNoMatch,
		Data:     append([]byte(nil), data...),
	})
}

func (s *Switch) takeBuffer(id uint32) (bufferedPacket, bool) {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	bp, ok := s.buffers[id]
	if ok {
		delete(s.buffers, id)
	}
	return bp, ok
}

// forward applies rewrites then emits the frame on every output target. The
// switch owns frame: rewrite actions may patch it in place (dataplane frames
// are per-delivery copies owned until handleFrame returns; buffered and
// packet-out frames are owned by the releasing message).
func (s *Switch) forward(inPort uint16, frame []byte, actions []openflow.Action) {
	if hasMultipath(actions) {
		// Packet-outs and buffer releases can carry a multipath action
		// verbatim from the controller; resolve it against the frame's own
		// key so the bucket choice agrees with what the flow table would do.
		if key, err := openflow.ExtractKey(inPort, frame); err == nil {
			actions = resolveMultipath(actions, &key)
		}
	}
	out := applyRewrites(frame, actions)
	for _, a := range actions {
		o, ok := a.(*openflow.ActionOutput)
		if !ok {
			continue
		}
		switch o.Port {
		case openflow.PortInPort:
			s.emit(inPort, out)
		case openflow.PortFlood, openflow.PortAll:
			s.flood(inPort, out)
		case openflow.PortController:
			data := out
			if o.MaxLen > 0 && len(data) > int(o.MaxLen) {
				data = data[:o.MaxLen]
			}
			_ = s.send(&openflow.PacketIn{
				BufferID: openflow.NoBuffer,
				TotalLen: uint16(len(out)),
				InPort:   inPort,
				Reason:   openflow.PacketInReasonAction,
				Data:     append([]byte(nil), data...),
			})
		case openflow.PortTable:
			// Re-inject through the flow table (packet-out only).
			s.handleFrame(inPort, out)
		case openflow.PortNormal, openflow.PortLocal, openflow.PortNone:
			// Unsupported targets drop silently.
		default:
			s.emit(o.Port, out)
		}
	}
}

// forwardRun is forward for a same-key run: the action list is scanned and
// the rewrite shape planned once, then applied to each frame.
func (s *Switch) forwardRun(inPort uint16, run [][]byte, actions []openflow.Action) {
	plan := planRewrites(actions)
	for _, frame := range run {
		out := applyRewritesPlanned(frame, actions, plan)
		for _, a := range actions {
			o, ok := a.(*openflow.ActionOutput)
			if !ok {
				continue
			}
			switch o.Port {
			case openflow.PortInPort:
				s.emit(inPort, out)
			case openflow.PortFlood, openflow.PortAll:
				s.flood(inPort, out)
			case openflow.PortController:
				data := out
				if o.MaxLen > 0 && len(data) > int(o.MaxLen) {
					data = data[:o.MaxLen]
				}
				_ = s.send(&openflow.PacketIn{
					BufferID: openflow.NoBuffer,
					TotalLen: uint16(len(out)),
					InPort:   inPort,
					Reason:   openflow.PacketInReasonAction,
					Data:     append([]byte(nil), data...),
				})
			case openflow.PortTable:
				s.handleFrame(inPort, out)
			case openflow.PortNormal, openflow.PortLocal, openflow.PortNone:
				// Unsupported targets drop silently.
			default:
				s.emit(o.Port, out)
			}
		}
	}
}

func (s *Switch) emit(portNo uint16, frame []byte) {
	s.portMu.RLock()
	p := s.ports[portNo]
	s.portMu.RUnlock()
	if p != nil {
		p.ep.Send(frame)
	}
}

func (s *Switch) flood(inPort uint16, frame []byte) {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	for no, p := range s.ports {
		if no != inPort {
			p.ep.Send(frame)
		}
	}
}

package telemetry

import (
	"fmt"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/openflow"
	"routeflow/internal/topo"
)

// allPairs returns every ordered pair of distinct nodes from the list.
func allPairs(nodes []int) [][2]int {
	var out [][2]int
	for _, s := range nodes {
		for _, d := range nodes {
			if s != d {
				out = append(out, [2]int{s, d})
			}
		}
	}
	return out
}

// checkBalance verifies the Floware property: every flow observed at
// exactly one on-path switch, with max per-switch load ≤ 2× the mean over
// path-eligible switches.
func checkBalance(t *testing.T, g *topo.Graph, pairs [][2]int) {
	t.Helper()
	pls := ComputePlacements(g, pairs, nil)
	if len(pls) != len(pairs) {
		t.Fatalf("%d placements for %d pairs", len(pls), len(pairs))
	}
	load := make(map[int]int)
	eligible := make(map[int]bool)
	for _, pl := range pls {
		if pl.Path == nil || pl.Monitor < 0 {
			t.Fatalf("flow %d (%d→%d) unplaced on a connected topology", pl.ID, pl.SrcNode, pl.DstNode)
		}
		onPath := false
		for _, n := range pl.Path {
			eligible[n] = true
			if n == pl.Monitor {
				onPath = true
			}
		}
		if !onPath {
			t.Fatalf("flow %d monitored off-path at %d (path %v)", pl.ID, pl.Monitor, pl.Path)
		}
		load[pl.Monitor]++
	}
	max, total := 0, 0
	for _, l := range load {
		total += l
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(len(eligible))
	if float64(max) > 2*mean {
		t.Fatalf("placement unbalanced: max load %d > 2×mean %.2f (loads %v)", max, mean, load)
	}
}

func TestPlacementBalanceGrid9(t *testing.T) {
	g := topo.Grid(3, 3)
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	checkBalance(t, g, allPairs(nodes))
}

func TestPlacementBalanceFatTree4(t *testing.T) {
	checkBalance(t, topo.FatTree(4), allPairs(topo.FatTreeEdges(4)))
}

func TestPlacementDeterministic(t *testing.T) {
	g := topo.Grid(3, 3)
	pairs := allPairs([]int{0, 4, 8, 2, 6})
	a := ComputePlacements(g, pairs, nil)
	b := ComputePlacements(g, pairs, nil)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("placement is not deterministic")
	}
}

// TestPlacementRoutesAroundDeadLinks: a flow re-paths over live links only,
// and an unreachable pair is reported unplaced instead of guessed.
func TestPlacementRoutesAroundDeadLinks(t *testing.T) {
	g := topo.Line(3) // 0 - 1 - 2
	pls := ComputePlacements(g, [][2]int{{0, 2}}, nil)
	if len(pls[0].Path) != 3 {
		t.Fatalf("line path = %v", pls[0].Path)
	}
	down := func(l topo.Link) bool { return !(l.A == 0 && l.B == 1) && !(l.A == 1 && l.B == 0) }
	pls = ComputePlacements(g, [][2]int{{0, 2}, {1, 2}}, down)
	if pls[0].Path != nil || pls[0].Monitor != -1 {
		t.Fatalf("partitioned pair got placed: %+v", pls[0])
	}
	if pls[1].Path == nil {
		t.Fatalf("live pair unplaced: %+v", pls[1])
	}
}

func mkExport(epoch uint64, seq uint32, full bool, entries ...openflow.TelemetryEntry) *openflow.TelemetryExport {
	var flags uint8
	if full {
		flags = openflow.TelemetryFull
	}
	return &openflow.TelemetryExport{Epoch: epoch, Seq: seq, Flags: flags, Entries: entries}
}

func testAggregator(t *testing.T) *Aggregator {
	t.Helper()
	a := NewAggregator(clock.System(), 9, 5*time.Second)
	a.SetFlows([]Placement{
		{ID: 1, SrcNode: 0, DstNode: 2, Path: []int{0, 1, 2}, Monitor: 1},
	}, func(node int) uint64 { return uint64(node + 1) })
	return a
}

// TestAggregatorExactlyOnce exercises the stream discipline: baseline FULL
// charges nothing, deltas add, an idempotent FULL repair neither loses nor
// double-counts, and a below-baseline FULL (switch reboot) re-anchors.
func TestAggregatorExactlyOnce(t *testing.T) {
	a := testAggregator(t)
	// Baseline with pre-existing counts: inherited, not charged.
	ack := a.HandleExport(2, mkExport(9, 1, true, openflow.TelemetryEntry{ID: 1, Packets: 100, Bytes: 1000}))
	if ack == nil || ack.Seq != 1 || ack.Epoch != 9 {
		t.Fatalf("ack = %+v", ack)
	}
	if f := a.Snapshot().Flows[0]; f.Packets != 100 || f.RatePPS != 0 {
		t.Fatalf("baseline charged the window: %+v", f)
	}
	// Delta applies once.
	a.HandleExport(2, mkExport(9, 2, false, openflow.TelemetryEntry{ID: 1, Packets: 5, Bytes: 50}))
	if f := a.Snapshot().Flows[0]; f.Packets != 105 {
		t.Fatalf("after delta: %+v", f)
	}
	// FULL repair at the same absolute level: no change, no double count.
	a.HandleExport(2, mkExport(9, 3, true, openflow.TelemetryEntry{ID: 1, Packets: 105, Bytes: 1050}))
	if f := a.Snapshot().Flows[0]; f.Packets != 105 {
		t.Fatalf("idempotent FULL moved the view: %+v", f)
	}
	// FULL above the applied level (missed deltas): charges only the gain.
	a.HandleExport(2, mkExport(9, 4, true, openflow.TelemetryEntry{ID: 1, Packets: 110, Bytes: 1100}))
	if f := a.Snapshot().Flows[0]; f.Packets != 110 {
		t.Fatalf("repair FULL: %+v", f)
	}
	// Below-baseline FULL = rebooted switch: view follows the absolute.
	a.HandleExport(2, mkExport(9, 5, true, openflow.TelemetryEntry{ID: 1, Packets: 3, Bytes: 30}))
	if f := a.Snapshot().Flows[0]; f.Packets != 3 {
		t.Fatalf("reboot FULL: %+v", f)
	}
	// Links along the path carried every charged gain: 5 + 5 = 10.
	snap := a.Snapshot()
	if len(snap.Links) != 2 {
		t.Fatalf("links = %+v", snap.Links)
	}
	for _, ls := range snap.Links {
		if ls.Packets != 10 {
			t.Fatalf("link %v charged %d pkts, want 10", ls.Link, ls.Packets)
		}
	}
}

// TestAggregatorIgnoresForeignStreams: wrong epoch, wrong switch, unknown
// flow — none may touch the views.
func TestAggregatorIgnoresForeignStreams(t *testing.T) {
	a := testAggregator(t)
	a.HandleExport(2, mkExport(9, 1, true, openflow.TelemetryEntry{ID: 1, Packets: 7, Bytes: 70}))
	if ack := a.HandleExport(2, mkExport(8, 2, false, openflow.TelemetryEntry{ID: 1, Packets: 99, Bytes: 1})); ack != nil {
		t.Fatal("foreign epoch acked")
	}
	// Same flow reported by a switch that is not its monitor.
	a.HandleExport(3, mkExport(9, 2, false, openflow.TelemetryEntry{ID: 1, Packets: 99, Bytes: 1}))
	// Unknown flow ID.
	a.HandleExport(2, mkExport(9, 3, false, openflow.TelemetryEntry{ID: 42, Packets: 99, Bytes: 1}))
	// A delta before any baseline is unusable and skipped.
	a2 := testAggregator(t)
	a2.HandleExport(2, mkExport(9, 1, false, openflow.TelemetryEntry{ID: 1, Packets: 99, Bytes: 1}))
	if f := a2.Snapshot().Flows[0]; f.Packets != 0 {
		t.Fatalf("unbaselined delta applied: %+v", f)
	}
	if f := a.Snapshot().Flows[0]; f.Packets != 7 {
		t.Fatalf("foreign stream leaked into the view: %+v", f)
	}
}

// TestAggregatorSetFlowsKeepsViews: re-placement keeps a view whose monitor
// stayed put and resets one whose monitor moved.
func TestAggregatorSetFlowsKeepsViews(t *testing.T) {
	a := testAggregator(t)
	a.HandleExport(2, mkExport(9, 1, true, openflow.TelemetryEntry{ID: 1, Packets: 50, Bytes: 500}))
	a.SetFlows([]Placement{
		{ID: 1, SrcNode: 0, DstNode: 2, Path: []int{0, 1, 2}, Monitor: 1},
	}, func(node int) uint64 { return uint64(node + 1) })
	if f := a.Snapshot().Flows[0]; f.Packets != 50 {
		t.Fatalf("unchanged monitor lost its view: %+v", f)
	}
	a.SetFlows([]Placement{
		{ID: 1, SrcNode: 0, DstNode: 2, Path: []int{0, 1, 2}, Monitor: 2},
	}, func(node int) uint64 { return uint64(node + 1) })
	if f := a.Snapshot().Flows[0]; f.Packets != 0 {
		t.Fatalf("moved monitor kept a stale baseline: %+v", f)
	}
}

func TestWindowRates(t *testing.T) {
	w := newWindow(4 * time.Second)
	base := time.Unix(1000, 0)
	w.add(base, 400, 4000)
	pps, bps := w.rate(base)
	if pps != 100 || bps != 1000 {
		t.Fatalf("rate = %v pps %v bps", pps, bps)
	}
	// Far future: everything aged out.
	if pps, _ = w.rate(base.Add(time.Minute)); pps != 0 {
		t.Fatalf("stale samples survived: %v pps", pps)
	}
	// Partial aging: half the window later, the sample still counts.
	w.add(base, 400, 4000)
	if pps, _ = w.rate(base.Add(2 * time.Second)); pps != 100 {
		t.Fatalf("mid-window rate = %v pps", pps)
	}
}

func TestMergeDisjointSnapshots(t *testing.T) {
	l := MakeLinkKey(1, 0)
	s1 := Snapshot{Flows: []FlowStat{{ID: 2, Packets: 5}},
		Links: []LinkStat{{Link: l, Packets: 5, RatePPS: 1}}}
	s2 := Snapshot{Flows: []FlowStat{{ID: 1, Packets: 3}},
		Links: []LinkStat{{Link: l, Packets: 3, RatePPS: 2}, {Link: MakeLinkKey(1, 2), Packets: 3}}}
	m := Merge(s1, s2)
	if len(m.Flows) != 2 || m.Flows[0].ID != 1 || m.Flows[1].ID != 2 {
		t.Fatalf("flows = %+v", m.Flows)
	}
	if len(m.Links) != 2 || m.Links[0].Packets != 8 || m.Links[0].RatePPS != 3 {
		t.Fatalf("links = %+v", m.Links)
	}
}

// TestAggregatorSetEpochMidWindow pins the epoch-advance contract the TE
// loop depends on: bumping the epoch mid rate-window (as every optimizer
// migration does) keeps totals monotone and the window lossless. The old
// epoch's in-flight export is rejected after the bump, the switch's FULL
// re-baseline under the new epoch charges only the genuine gain, and the
// rolling window still holds the pre-bump samples — no reset, no double
// count, no rate dip fabricated by the control plane.
func TestAggregatorSetEpochMidWindow(t *testing.T) {
	clk := clock.NewFake()
	a := NewAggregator(clk, 9, 4*time.Second)
	a.SetFlows([]Placement{
		{ID: 1, SrcNode: 0, DstNode: 2, Path: []int{0, 1, 2}, Monitor: 1},
	}, func(node int) uint64 { return uint64(node + 1) })

	// Baseline, then a charged delta in the first half of the window.
	a.HandleExport(2, mkExport(9, 1, true, openflow.TelemetryEntry{ID: 1, Packets: 100, Bytes: 1000}))
	a.HandleExport(2, mkExport(9, 2, false, openflow.TelemetryEntry{ID: 1, Packets: 40, Bytes: 400}))
	if f := a.Snapshot().Flows[0]; f.Packets != 140 || f.RatePPS != 10 {
		t.Fatalf("pre-bump view: %+v", f)
	}

	// The TE loop moves the flow: epoch bumps mid-window.
	clk.Advance(time.Second)
	a.SetEpoch(10)

	// A straggler export from the old epoch must be refused, not applied.
	if ack := a.HandleExport(2, mkExport(9, 3, false, openflow.TelemetryEntry{ID: 1, Packets: 99, Bytes: 990})); ack != nil {
		t.Fatal("stale-epoch export acked after SetEpoch")
	}
	if f := a.Snapshot().Flows[0]; f.Packets != 140 {
		t.Fatalf("stale-epoch export charged: %+v", f)
	}

	// The switch re-baselines with a FULL under the new epoch. Its absolute
	// includes 20 packets forwarded since the last ack; only that gain may
	// charge, and the total must stay monotone through the transition.
	a.HandleExport(2, mkExport(10, 1, true, openflow.TelemetryEntry{ID: 1, Packets: 160, Bytes: 1600}))
	f := a.Snapshot().Flows[0]
	if f.Packets != 160 || f.Bytes != 1600 {
		t.Fatalf("post-bump total not monotone/lossless: %+v", f)
	}
	// The window still holds both the pre-bump 40 and the post-bump 20:
	// (40 + 20) / 4s = 15 pps. A reset window would read 5.
	if f.RatePPS != 15 {
		t.Fatalf("window lost samples across SetEpoch: %v pps, want 15", f.RatePPS)
	}
	// Links along the path carried the same charges exactly once.
	for _, ls := range a.Snapshot().Links {
		if ls.Packets != 60 {
			t.Fatalf("link %v charged %d pkts across the bump, want 60", ls.Link, ls.Packets)
		}
	}
}

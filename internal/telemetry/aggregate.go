package telemetry

import (
	"sort"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/openflow"
)

// FlowStat is a snapshot of one monitored flow's view.
type FlowStat struct {
	ID      FlowID
	SrcNode int
	DstNode int
	Monitor int   // observing node, -1 when unplaced
	Path    []int // node walk the view charges links along
	Packets uint64
	Bytes   uint64
	RatePPS float64 // windowed packet rate
	RateBPS float64 // windowed byte rate
}

// LinkStat is a snapshot of one link's utilization view, summed over every
// monitored flow whose path crosses it.
type LinkStat struct {
	Link    LinkKey
	Packets uint64
	Bytes   uint64
	RatePPS float64
	RateBPS float64
}

// Snapshot is one aggregator's (or a whole cluster's merged) view.
type Snapshot struct {
	Flows []FlowStat // ascending flow ID
	Links []LinkStat // ascending (A, B)
}

// flowView is the aggregator's per-flow state: the switch-absolute counter
// level it has applied, and the rolling window.
type flowView struct {
	pl      Placement
	monitor uint64 // DPID of the observing switch
	applied struct{ packets, bytes uint64 }
	synced  bool // false until the first FULL establishes a baseline
	win     *window
}

type linkView struct {
	packets, bytes uint64
	win            *window
}

// Aggregator turns one controller instance's TELEMETRY_EXPORT stream into
// per-flow and per-link views. It applies the stream's exactly-once
// discipline: a delta export is added once (the switch's stop-and-wait
// guarantees it is never re-sent as a delta), and a FULL export sets the
// applied absolute idempotently — the first FULL of a view only baselines
// it, so a failed-over controller inherits counts without charging history
// into the current rate window (the no-double-count property the chaos
// invariants check).
//
// One Aggregator serves one epoch: exports from any other epoch are
// ignored, so a replica that lost ownership can never pollute the new
// owner's views.
type Aggregator struct {
	mu    sync.Mutex
	clk   clock.Clock
	epoch uint64
	span  time.Duration
	flows map[FlowID]*flowView
	links map[LinkKey]*linkView
}

// NewAggregator creates an empty aggregator for one epoch. span is the
// rolling-window length (protocol time; 0 = 5s).
func NewAggregator(clk clock.Clock, epoch uint64, span time.Duration) *Aggregator {
	if clk == nil {
		clk = clock.System()
	}
	if span <= 0 {
		span = 5 * time.Second
	}
	return &Aggregator{clk: clk, epoch: epoch, span: span,
		flows: make(map[FlowID]*flowView), links: make(map[LinkKey]*linkView)}
}

// Epoch returns the epoch this aggregator accepts.
func (a *Aggregator) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// SetEpoch moves the aggregator to a new monitoring-program epoch without
// discarding accumulated views. Switches re-baseline on an epoch change by
// sending FULL exports, and a FULL against a synced view charges only the
// gain over the applied level — so advancing the epoch in place is lossless
// and double-count free, whereas recreating the aggregator would zero every
// total on a mere re-placement.
func (a *Aggregator) SetEpoch(e uint64) {
	a.mu.Lock()
	a.epoch = e
	a.mu.Unlock()
}

// SetFlows replaces the set of flows this aggregator owns, keyed by
// placement; monitorDPID maps a placement's monitor node to its switch
// DPID. A flow whose monitor switch is unchanged keeps its view (totals,
// window and baseline); one whose monitor moved starts a fresh view — the
// new switch's counters share no baseline with the old one's.
func (a *Aggregator) SetFlows(pls []Placement, monitorDPID func(node int) uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	next := make(map[FlowID]*flowView, len(pls))
	for _, pl := range pls {
		if pl.Monitor < 0 {
			continue
		}
		dpid := monitorDPID(pl.Monitor)
		if old, ok := a.flows[pl.ID]; ok && old.monitor == dpid {
			old.pl = pl
			next[pl.ID] = old
			continue
		}
		next[pl.ID] = &flowView{pl: pl, monitor: dpid, win: newWindow(a.span)}
	}
	a.flows = next
}

// HandleExport applies one export from the switch with the given DPID and
// returns the ack to send back, or nil when the export is not for this
// aggregator (wrong epoch). Entries for flows this aggregator does not own
// at that switch are skipped — the level-triggered TELEMETRY_MOD push is
// already retiring those rules.
func (a *Aggregator) HandleExport(dpid uint64, ex *openflow.TelemetryExport) *openflow.TelemetryAck {
	a.mu.Lock()
	if ex.Epoch != a.epoch {
		a.mu.Unlock()
		return nil
	}
	now := a.clk.Now()
	for _, e := range ex.Entries {
		fv := a.flows[e.ID]
		if fv == nil || fv.monitor != dpid {
			continue
		}
		var gainPkts, gainBytes uint64
		if ex.Full() {
			if fv.synced {
				if e.Packets > fv.applied.packets {
					gainPkts = e.Packets - fv.applied.packets
				}
				if e.Bytes > fv.applied.bytes {
					gainBytes = e.Bytes - fv.applied.bytes
				}
			}
			// A first FULL (or one below the applied level — the switch
			// rebooted) re-baselines without charging the windows.
			fv.applied.packets, fv.applied.bytes = e.Packets, e.Bytes
			fv.synced = true
		} else {
			if !fv.synced {
				continue // no baseline to apply a delta against
			}
			gainPkts, gainBytes = e.Packets, e.Bytes
			fv.applied.packets += gainPkts
			fv.applied.bytes += gainBytes
		}
		if gainPkts == 0 && gainBytes == 0 {
			continue
		}
		fv.win.add(now, gainPkts, gainBytes)
		for _, lk := range PathLinks(fv.pl.Path) {
			lv := a.links[lk]
			if lv == nil {
				lv = &linkView{win: newWindow(a.span)}
				a.links[lk] = lv
			}
			lv.packets += gainPkts
			lv.bytes += gainBytes
			lv.win.add(now, gainPkts, gainBytes)
		}
	}
	a.mu.Unlock()
	return &openflow.TelemetryAck{Epoch: ex.Epoch, Seq: ex.Seq}
}

// Snapshot returns the current views in deterministic order.
func (a *Aggregator) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clk.Now()
	snap := Snapshot{}
	for id, fv := range a.flows {
		pps, bps := fv.win.rate(now)
		snap.Flows = append(snap.Flows, FlowStat{
			ID: id, SrcNode: fv.pl.SrcNode, DstNode: fv.pl.DstNode,
			Monitor: fv.pl.Monitor, Path: append([]int(nil), fv.pl.Path...),
			Packets: fv.applied.packets, Bytes: fv.applied.bytes,
			RatePPS: pps, RateBPS: bps,
		})
	}
	for lk, lv := range a.links {
		pps, bps := lv.win.rate(now)
		snap.Links = append(snap.Links, LinkStat{
			Link: lk, Packets: lv.packets, Bytes: lv.bytes,
			RatePPS: pps, RateBPS: bps,
		})
	}
	sortSnapshot(&snap)
	return snap
}

// Merge combines disjoint snapshots (e.g. one per cluster replica, each
// covering only the flows it owns) into one.
func Merge(parts ...Snapshot) Snapshot {
	var out Snapshot
	linkAgg := make(map[LinkKey]*LinkStat)
	for _, p := range parts {
		out.Flows = append(out.Flows, p.Flows...)
		for _, ls := range p.Links {
			if agg, ok := linkAgg[ls.Link]; ok {
				agg.Packets += ls.Packets
				agg.Bytes += ls.Bytes
				agg.RatePPS += ls.RatePPS
				agg.RateBPS += ls.RateBPS
			} else {
				c := ls
				linkAgg[ls.Link] = &c
			}
		}
	}
	for _, agg := range linkAgg {
		out.Links = append(out.Links, *agg)
	}
	sortSnapshot(&out)
	return out
}

func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Flows, func(i, j int) bool { return s.Flows[i].ID < s.Flows[j].ID })
	sort.Slice(s.Links, func(i, j int) bool {
		if s.Links[i].Link.A != s.Links[j].Link.A {
			return s.Links[i].Link.A < s.Links[j].Link.A
		}
		return s.Links[i].Link.B < s.Links[j].Link.B
	})
}

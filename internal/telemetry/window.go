package telemetry

import "time"

// windowBuckets is the ring size of a rolling window; rates are averaged
// over windowBuckets × bucket-duration of history.
const windowBuckets = 8

// window is a fixed-size ring of time buckets giving O(1) counter updates
// and O(buckets) rate reads. A bucket covers span/windowBuckets; Add lands
// the sample in the bucket owning now, zeroing any buckets skipped since
// the last touch (bounded by the ring size, so updates stay O(1)).
type window struct {
	span    time.Duration
	bucket  time.Duration
	last    int64 // bucket index of the most recent Add/advance
	packets [windowBuckets]uint64
	bytes   [windowBuckets]uint64
}

func newWindow(span time.Duration) *window {
	if span <= 0 {
		span = 5 * time.Second
	}
	return &window{span: span, bucket: span / windowBuckets, last: -1}
}

func (w *window) idx(now time.Time) int64 {
	return now.UnixNano() / int64(w.bucket)
}

// advance zeroes buckets between the last touch and now.
func (w *window) advance(i int64) {
	if w.last < 0 || i-w.last >= windowBuckets {
		w.packets = [windowBuckets]uint64{}
		w.bytes = [windowBuckets]uint64{}
	} else {
		for j := w.last + 1; j <= i; j++ {
			w.packets[j%windowBuckets] = 0
			w.bytes[j%windowBuckets] = 0
		}
	}
	if i > w.last {
		w.last = i
	}
}

// add charges a sample into the current bucket.
func (w *window) add(now time.Time, packets, bytes uint64) {
	i := w.idx(now)
	w.advance(i)
	w.packets[i%windowBuckets] += packets
	w.bytes[i%windowBuckets] += bytes
}

// rate returns the windowed average packet and byte rates per second.
func (w *window) rate(now time.Time) (pps, bps float64) {
	i := w.idx(now)
	w.advance(i)
	var p, b uint64
	for j := 0; j < windowBuckets; j++ {
		p += w.packets[j]
		b += w.bytes[j]
	}
	secs := w.span.Seconds()
	return float64(p) / secs, float64(b) / secs
}

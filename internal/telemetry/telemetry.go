// Package telemetry is the controller half of the streaming-stats pipeline:
// it decides where in the network each flow is observed and turns the
// switches' TELEMETRY_EXPORT streams into rolling utilization views.
//
// Placement follows Floware's balanced flow monitoring: every flow (a
// directed host pair) is observed at exactly one switch on its live
// shortest path, chosen greedily so the per-switch observation load stays
// even — no switch pays the whole measurement cost, and a topology change
// recomputes the assignment against the links that are actually up.
//
// Aggregation keeps one view per flow and one per link. A flow's counters
// are charged by its monitor switch's exports (deltas applied exactly once,
// absolutes applied idempotently — see the protocol notes on Aggregator);
// every link on the flow's path is charged alongside, which is what turns
// single-point observation into network-wide utilization. Views expose both
// lifetime totals and ring-buffer windowed rates with O(1) update.
package telemetry

import (
	"sort"

	"routeflow/internal/topo"
)

// FlowID names one monitored flow; IDs are stable across switches,
// re-placements and replicas so every layer aggregates by the same key.
type FlowID = uint32

// Placement is one flow's monitoring assignment: the live shortest path
// from SrcNode to DstNode and the switch on it chosen as the observer.
type Placement struct {
	ID      FlowID
	SrcNode int
	DstNode int
	// Path is the node-ID walk src..dst over live links; nil when the pair
	// is partitioned (the flow is unobservable and unplaced).
	Path []int
	// Monitor is the observing node, or -1 when Path is nil.
	Monitor int
}

// LinkKey canonically names an undirected link by its endpoints (A < B).
type LinkKey struct {
	A, B int
}

// MakeLinkKey orders the endpoints.
func MakeLinkKey(a, b int) LinkKey {
	if a > b {
		a, b = b, a
	}
	return LinkKey{A: a, B: b}
}

// PathLinks lists the links a node walk traverses.
func PathLinks(path []int) []LinkKey {
	if len(path) < 2 {
		return nil
	}
	out := make([]LinkKey, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		out = append(out, MakeLinkKey(path[i-1], path[i]))
	}
	return out
}

// ComputePlacements assigns every flow (directed node pair) a monitor
// switch on its live shortest path, balancing observation load: flows are
// placed in ID order, each on the least-loaded switch of its path (ties to
// the lowest node ID). linkUp reports whether a topology link is currently
// usable; nil means all links are up. The result is deterministic for a
// given topology, pair list and link state.
func ComputePlacements(g *topo.Graph, pairs [][2]int, linkUp func(topo.Link) bool) []Placement {
	return ComputePlacementsAssigned(g, pairs, linkUp, nil)
}

// ComputePlacementsAssigned is ComputePlacements with traffic-engineering
// path overrides: assigned maps a directed pair to the node walk the TE
// optimizer pinned it to. An override is honored only while every hop is a
// live link of the topology; a missing or dead override falls back to the
// live shortest path, so the view keeps charging a path that can actually
// carry the traffic.
func ComputePlacementsAssigned(g *topo.Graph, pairs [][2]int, linkUp func(topo.Link) bool, assigned map[[2]int][]int) []Placement {
	out := make([]Placement, 0, len(pairs))
	load := make(map[int]int)
	for i, p := range pairs {
		pl := Placement{ID: FlowID(i + 1), SrcNode: p[0], DstNode: p[1], Monitor: -1}
		if w := assigned[[2]int{p[0], p[1]}]; pathLive(g, p[0], p[1], w, linkUp) {
			pl.Path = append([]int(nil), w...)
		} else {
			pl.Path = livePath(g, p[0], p[1], linkUp)
		}
		if pl.Path != nil {
			best, bestLoad := -1, 0
			for _, n := range pl.Path {
				if best == -1 || load[n] < bestLoad || (load[n] == bestLoad && n < best) {
					best, bestLoad = n, load[n]
				}
			}
			pl.Monitor = best
			load[best]++
		}
		out = append(out, pl)
	}
	return out
}

// pathLive reports whether walk is a usable src..dst path: endpoints match
// and every consecutive hop is a live link of the topology.
func pathLive(g *topo.Graph, src, dst int, walk []int, linkUp func(topo.Link) bool) bool {
	if len(walk) < 1 || walk[0] != src || walk[len(walk)-1] != dst {
		return false
	}
	live := make(map[LinkKey]bool)
	for _, l := range g.Links() {
		if linkUp == nil || linkUp(l) {
			live[MakeLinkKey(l.A, l.B)] = true
		}
	}
	for i := 1; i < len(walk); i++ {
		if !live[MakeLinkKey(walk[i-1], walk[i])] {
			return false
		}
	}
	return true
}

// livePath is a BFS shortest path over live links with deterministic
// tie-breaks (lowest-ID neighbor expands first).
func livePath(g *topo.Graph, src, dst int, linkUp func(topo.Link) bool) []int {
	if src == dst {
		return []int{src}
	}
	n := g.NumNodes()
	if src < 0 || dst < 0 || src >= n || dst >= n {
		return nil
	}
	links := g.Links()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		next := neighborsVia(g, links, u, linkUp)
		for _, v := range next {
			if parent[v] != -1 {
				continue
			}
			parent[v] = u
			if v == dst {
				var path []int
				for w := dst; w != src; w = parent[w] {
					path = append(path, w)
				}
				path = append(path, src)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// neighborsVia lists u's neighbors reachable over live links, sorted for
// determinism.
func neighborsVia(g *topo.Graph, links []topo.Link, u int, linkUp func(topo.Link) bool) []int {
	var out []int
	for _, li := range g.IncidentLinks(u) {
		l := links[li]
		if linkUp != nil && !linkUp(l) {
			continue
		}
		v := l.A
		if v == u {
			v = l.B
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

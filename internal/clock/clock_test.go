package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSystemNowAdvances(t *testing.T) {
	c := System()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("system clock did not advance")
	}
}

func TestSystemSince(t *testing.T) {
	c := System()
	start := c.Now()
	time.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Since returned non-positive duration")
	}
}

func TestScaledFactorOneIsSystem(t *testing.T) {
	if _, ok := Scaled(1).(systemClock); !ok {
		t.Fatal("Scaled(1) should return the system clock")
	}
	if _, ok := Scaled(0).(systemClock); !ok {
		t.Fatal("Scaled(0) should return the system clock")
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := Scaled(100)
	start := time.Now()
	c.Sleep(500 * time.Millisecond) // should take ~5ms of wall time
	wall := time.Since(start)
	if wall > 200*time.Millisecond {
		t.Fatalf("scaled sleep took %v wall time, want ~5ms", wall)
	}
}

func TestScaledNowRunsFast(t *testing.T) {
	c := Scaled(1000)
	a := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Since(a)
	if elapsed < 1*time.Second {
		t.Fatalf("scaled clock advanced only %v in 5ms wall, want >= 1s", elapsed)
	}
}

func TestScaledTimerFires(t *testing.T) {
	c := Scaled(100)
	tm := c.NewTimer(time.Second)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("scaled timer did not fire")
	}
}

func TestScaledTickerFires(t *testing.T) {
	c := Scaled(100)
	tk := c.NewTicker(500 * time.Millisecond)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C():
		case <-time.After(2 * time.Second):
			t.Fatalf("scaled ticker tick %d did not arrive", i)
		}
	}
}

func TestScaledAfter(t *testing.T) {
	c := Scaled(50)
	select {
	case <-c.After(200 * time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("scaled After did not fire")
	}
}

func TestScaledTimerStopAndReset(t *testing.T) {
	c := Scaled(10)
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	tm.Reset(100 * time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("reset timer did not fire")
	}
}

func TestFakeStartsAtFixedEpoch(t *testing.T) {
	a, b := NewFake(), NewFake()
	if !a.Now().Equal(b.Now()) {
		t.Fatal("two fake clocks should start at the same instant")
	}
}

func TestFakeAdvanceMovesNow(t *testing.T) {
	f := NewFake()
	start := f.Now()
	f.Advance(42 * time.Second)
	if got := f.Since(start); got != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", got)
	}
}

func TestFakeAdvanceToPastIsNoop(t *testing.T) {
	f := NewFake()
	now := f.Now()
	f.AdvanceTo(now.Add(-time.Hour))
	if !f.Now().Equal(now) {
		t.Fatal("AdvanceTo into the past must not rewind the clock")
	}
}

func TestFakeTimerFiresOnAdvance(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(10 * time.Second)
	f.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(time.Second)
	select {
	case ts := <-tm.C():
		if got := ts.Sub(NewFake().Now()); got != 10*time.Second {
			t.Fatalf("fired at +%v, want +10s", got)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer should be true")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop should be false")
	}
}

func TestFakeTimerResetAfterFire(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(time.Second)
	f.Advance(time.Second)
	<-tm.C()
	if tm.Reset(time.Second) {
		t.Fatal("Reset after fire should report false")
	}
	f.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire again")
	}
}

func TestFakeTickerPeriodic(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(5 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 4; i++ {
		f.Advance(5 * time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestFakeTickerDropsWhenSlow(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second) // receiver never drains: only 1 buffered tick
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("got %d buffered ticks, want 1 (others dropped)", n)
	}
}

func TestFakeTickerStopRemovesWaiter(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", f.Pending())
	}
	tk.Stop()
	if f.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0", f.Pending())
	}
	tk.Stop() // idempotent
}

func TestFakeFiringOrder(t *testing.T) {
	f := NewFake()
	var order []int
	t1 := f.NewTimer(3 * time.Second)
	t2 := f.NewTimer(1 * time.Second)
	t3 := f.NewTimer(2 * time.Second)
	f.Advance(5 * time.Second)
	drain := func(id int, tm Timer) {
		select {
		case <-tm.C():
			order = append(order, id)
		default:
		}
	}
	// All have fired; the channel sends happened in timestamp order during
	// Advance. Verify each fired exactly once.
	drain(2, t2)
	drain(3, t3)
	drain(1, t1)
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("fire order = %v, want [2 3 1]", order)
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.Sleep(30 * time.Second)
		close(done)
	}()
	// Let the sleeper arm its timer.
	for f.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(30 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

// Property: for any sequence of positive advances, a fake timer fires exactly
// when cumulative time passes its deadline, never before.
func TestFakeTimerNeverFiresEarlyQuick(t *testing.T) {
	prop := func(deadlineMs uint16, stepsMs []uint8) bool {
		f := NewFake()
		deadline := time.Duration(deadlineMs%5000+1) * time.Millisecond
		tm := f.NewTimer(deadline)
		var cum time.Duration
		for _, s := range stepsMs {
			step := time.Duration(s%50+1) * time.Millisecond
			f.Advance(step)
			cum += step
			fired := false
			select {
			case <-tm.C():
				fired = true
			default:
			}
			if fired && cum < deadline {
				return false // fired early
			}
			if fired {
				return true
			}
		}
		return cum < deadline // if never fired, we must not have reached it
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ticker on a fake clock fires floor(total/period) times when
// advanced in one-period steps and drained after each step.
func TestFakeTickerCountQuick(t *testing.T) {
	prop := func(periodMs uint8, n uint8) bool {
		f := NewFake()
		period := time.Duration(periodMs%20+1) * time.Millisecond
		steps := int(n%30) + 1
		tk := f.NewTicker(period)
		defer tk.Stop()
		got := 0
		for i := 0; i < steps; i++ {
			f.Advance(period)
			select {
			case <-tk.C():
				got++
			default:
			}
		}
		return got == steps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

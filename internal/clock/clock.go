// Package clock abstracts time so that every protocol timer in the system
// (OSPF hello/dead intervals, LLDP probe periods, VM boot delays, RPC
// retries) can run against a real clock, a scaled clock that compresses
// experiments, or a manually stepped fake clock for deterministic tests.
//
// The scaled clock is the reproduction's substitute for wall-clock hours:
// dividing every timer by a common factor preserves the ordering and the
// relative magnitudes of all protocol events, so convergence behaviour is
// unchanged while the experiment itself finishes quickly. Durations measured
// on a scaled clock are reported back in protocol time (multiplied by the
// factor) by the experiment harness.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every component in the system.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d of this clock's time.
	Sleep(d time.Duration)
	// NewTicker returns a ticker firing every d of this clock's time.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a timer firing once after d of this clock's time.
	NewTimer(d time.Duration) Timer
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
}

// Ticker is the clock-agnostic analogue of time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer is the clock-agnostic analogue of time.Timer.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// System returns the real wall clock.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (systemClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (systemClock) NewTicker(d time.Duration) Ticker       { return sysTicker{time.NewTicker(d)} }
func (systemClock) NewTimer(d time.Duration) Timer         { return sysTimer{time.NewTimer(d)} }

type sysTicker struct{ t *time.Ticker }

func (s sysTicker) C() <-chan time.Time { return s.t.C }
func (s sysTicker) Stop()               { s.t.Stop() }

type sysTimer struct{ t *time.Timer }

func (s sysTimer) C() <-chan time.Time        { return s.t.C }
func (s sysTimer) Stop() bool                 { return s.t.Stop() }
func (s sysTimer) Reset(d time.Duration) bool { return s.t.Reset(d) }

// Scaled returns a clock that runs factor times faster than the real clock:
// Sleep(10s) on a Scaled(100) clock blocks for 100ms of wall time, and Now
// advances 100 times faster from the moment the clock was created. A factor
// of 1 (or less) behaves like the system clock. Scale durations reported by
// components running on this clock back to protocol time with Unscale.
func Scaled(factor float64) Clock {
	if factor <= 1 {
		return System()
	}
	return &scaledClock{factor: factor, base: time.Now()}
}

type scaledClock struct {
	factor float64
	base   time.Time
}

func (c *scaledClock) Now() time.Time {
	real := time.Since(c.base)
	return c.base.Add(time.Duration(float64(real) * c.factor))
}

func (c *scaledClock) shrink(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	s := time.Duration(float64(d) / c.factor)
	if s <= 0 {
		s = time.Nanosecond
	}
	return s
}

func (c *scaledClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		time.Sleep(c.shrink(d))
		ch <- c.Now()
	}()
	return ch
}

func (c *scaledClock) Sleep(d time.Duration)           { time.Sleep(c.shrink(d)) }
func (c *scaledClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *scaledClock) NewTicker(d time.Duration) Ticker {
	t := time.NewTicker(c.shrink(d))
	return &scaledTicker{clk: c, t: t, out: make(chan time.Time, 1), stop: make(chan struct{})}
}

type scaledTicker struct {
	clk      *scaledClock
	t        *time.Ticker
	out      chan time.Time
	stop     chan struct{}
	stopOnce sync.Once
	once     sync.Once
}

func (s *scaledTicker) C() <-chan time.Time {
	s.once.Do(func() {
		go func() {
			for {
				select {
				case <-s.t.C:
					select {
					case s.out <- s.clk.Now():
					default:
					}
				case <-s.stop:
					return
				}
			}
		}()
	})
	return s.out
}

func (s *scaledTicker) Stop() {
	s.t.Stop()
	s.stopOnce.Do(func() { close(s.stop) })
}

type scaledTimer struct {
	clk *scaledClock
	t   *time.Timer
	out chan time.Time
}

func (c *scaledClock) NewTimer(d time.Duration) Timer {
	st := &scaledTimer{clk: c, out: make(chan time.Time, 1)}
	st.t = time.AfterFunc(c.shrink(d), func() {
		select {
		case st.out <- c.Now():
		default:
		}
	})
	return st
}

func (s *scaledTimer) C() <-chan time.Time { return s.out }
func (s *scaledTimer) Stop() bool          { return s.t.Stop() }
func (s *scaledTimer) Reset(d time.Duration) bool {
	return s.t.Reset(s.clk.shrink(d))
}

// Fake is a manually stepped clock for deterministic tests. Time advances
// only through Advance or AdvanceTo; timers and tickers fire synchronously
// inside those calls, in timestamp order.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
	seq     int
}

type fakeWaiter struct {
	clk      *Fake
	when     time.Time
	period   time.Duration // 0 for one-shot timers
	ch       chan time.Time
	stopped  bool
	seq      int
	deferred bool // detached from the waiter list (fired one-shot)
}

// NewFake returns a Fake clock starting at a fixed, arbitrary epoch so tests
// are reproducible.
func NewFake() *Fake {
	return &Fake{now: time.Date(2013, 8, 12, 0, 0, 0, 0, time.UTC)}
}

// Now returns the fake clock's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// After returns a channel that fires when the fake clock passes now+d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C()
}

// Sleep blocks until the fake clock has been advanced past now+d by another
// goroutine. Calling Sleep from the same goroutine that drives Advance
// deadlocks by construction; tests should use separate goroutines.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// NewTimer returns a one-shot timer on the fake clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.addWaiterLocked(d, 0)
	return (*fakeTimer)(w)
}

// NewTicker returns a periodic ticker on the fake clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.addWaiterLocked(d, d)
	return (*fakeTicker)(w)
}

func (f *Fake) addWaiterLocked(d, period time.Duration) *fakeWaiter {
	f.seq++
	w := &fakeWaiter{
		clk:    f,
		when:   f.now.Add(d),
		period: period,
		ch:     make(chan time.Time, 1),
		seq:    f.seq,
	}
	f.waiters = append(f.waiters, w)
	return w
}

// Advance moves the fake clock forward by d, firing due timers and tickers
// in order.
func (f *Fake) Advance(d time.Duration) { f.AdvanceTo(f.Now().Add(d)) }

// AdvanceTo moves the fake clock to t (no-op if t is in the past), firing due
// timers and tickers in order.
func (f *Fake) AdvanceTo(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		w := f.nextDueLocked(t)
		if w == nil {
			break
		}
		f.now = w.when
		select {
		case w.ch <- w.when:
		default: // receiver not keeping up; drop like time.Ticker does
		}
		if w.period > 0 {
			w.when = w.when.Add(w.period)
		} else {
			w.deferred = true
			f.removeLocked(w)
		}
	}
	if t.After(f.now) {
		f.now = t
	}
}

func (f *Fake) nextDueLocked(limit time.Time) *fakeWaiter {
	var best *fakeWaiter
	for _, w := range f.waiters {
		if w.stopped || w.when.After(limit) {
			continue
		}
		if best == nil || w.when.Before(best.when) ||
			(w.when.Equal(best.when) && w.seq < best.seq) {
			best = w
		}
	}
	return best
}

func (f *Fake) removeLocked(w *fakeWaiter) {
	for i, cand := range f.waiters {
		if cand == w {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// Pending reports how many timers/tickers are armed; useful in tests.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

type fakeTimer fakeWaiter

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	w := (*fakeWaiter)(t)
	w.clk.mu.Lock()
	defer w.clk.mu.Unlock()
	was := !w.stopped && !w.deferred
	w.stopped = true
	if was {
		w.clk.removeLocked(w)
	}
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	w := (*fakeWaiter)(t)
	w.clk.mu.Lock()
	defer w.clk.mu.Unlock()
	was := !w.stopped && !w.deferred
	w.when = w.clk.now.Add(d)
	w.stopped = false
	if w.deferred {
		w.deferred = false
		w.clk.waiters = append(w.clk.waiters, w)
	}
	return was
}

type fakeTicker fakeWaiter

func (t *fakeTicker) C() <-chan time.Time { return t.ch }

func (t *fakeTicker) Stop() {
	w := (*fakeWaiter)(t)
	w.clk.mu.Lock()
	defer w.clk.mu.Unlock()
	if !w.stopped {
		w.stopped = true
		w.clk.removeLocked(w)
	}
}

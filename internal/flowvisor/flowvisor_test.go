package flowvisor

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/netemu"
	"routeflow/internal/ofswitch"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

// stack wires: switch --- flowvisor --- {topo controller, rf controller}.
type stack struct {
	t       *testing.T
	fv      *FlowVisor
	topo    *ctlkit.Controller
	rf      *ctlkit.Controller
	sw      *ofswitch.Switch
	far     []*netemu.Endpoint // far ends of the switch's two data ports
	topoPIs chan *openflow.PacketIn
	rfPIs   chan *openflow.PacketIn
	topoPSs chan *openflow.PortStatus
	rfPSs   chan *openflow.PortStatus
}

func newStack(t *testing.T) *stack {
	t.Helper()
	st := &stack{t: t,
		topoPIs: make(chan *openflow.PacketIn, 64),
		rfPIs:   make(chan *openflow.PacketIn, 64),
		topoPSs: make(chan *openflow.PortStatus, 16),
		rfPSs:   make(chan *openflow.PortStatus, 16),
	}
	topoL := ctlkit.NewMemListener("topo")
	rfL := ctlkit.NewMemListener("rf")
	t.Cleanup(func() { topoL.Close(); rfL.Close() })

	st.topo = ctlkit.New("topo", nil, ctlkit.Callbacks{
		PacketIn:   func(_ *ctlkit.SwitchConn, pi *openflow.PacketIn) { st.topoPIs <- pi },
		PortStatus: func(_ *ctlkit.SwitchConn, ps *openflow.PortStatus) { st.topoPSs <- ps },
	})
	st.rf = ctlkit.New("rf", nil, ctlkit.Callbacks{
		PacketIn:   func(_ *ctlkit.SwitchConn, pi *openflow.PacketIn) { st.rfPIs <- pi },
		PortStatus: func(_ *ctlkit.SwitchConn, ps *openflow.PortStatus) { st.rfPSs <- ps },
	})
	go st.topo.Serve(topoL)
	go st.rf.Serve(rfL)
	t.Cleanup(st.topo.Stop)
	t.Cleanup(st.rf.Stop)

	st.fv = New("fv", []Slice{
		LLDPSlice("topo", topoL.Dial),
		DefaultSlice("rf", rfL.Dial),
	})
	fvL := ctlkit.NewMemListener("fv")
	t.Cleanup(func() { fvL.Close() })
	go st.fv.Serve(fvL)
	t.Cleanup(st.fv.Stop)

	n := netemu.NewNetwork(clock.System())
	t.Cleanup(n.Close)
	st.sw = ofswitch.New(ofswitch.Config{DPID: 0xD1, Name: "d1"})
	for i := uint16(1); i <= 2; i++ {
		a, b := n.NewCable(netemu.CableOpts{
			NameA: "sw", NameB: "far",
			MACA: pkt.LocalMAC(uint64(0xD100 | i)), MACB: pkt.LocalMAC(uint64(0xEE00 | i))})
		if err := st.sw.AttachPort(i, a); err != nil {
			t.Fatal(err)
		}
		st.far = append(st.far, b)
	}
	conn, err := fvL.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.sw.Start(conn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.sw.Stop)

	waitFor(t, "both controllers see the switch", func() bool {
		return st.topo.NumSwitches() == 1 && st.rf.NumSwitches() == 1
	})
	return st
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func lldpFrame(dpid uint64, port uint16) []byte {
	f := &pkt.Frame{Dst: pkt.LLDPMulticast, Src: pkt.LocalMAC(1),
		Type: pkt.EtherTypeLLDP, Payload: pkt.NewLLDP(dpid, port, 60).Marshal()}
	return f.Marshal()
}

func arpFrame() []byte {
	f := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: pkt.LocalMAC(2),
		Type: pkt.EtherTypeARP,
		Payload: pkt.NewARPRequest(pkt.LocalMAC(2), netip.MustParseAddr("10.0.0.1"),
			netip.MustParseAddr("10.0.0.2")).Marshal()}
	return f.Marshal()
}

func TestBothControllersHandshakeThroughProxy(t *testing.T) {
	st := newStack(t)
	tc, _ := st.topo.Switch(0xD1)
	rc, _ := st.rf.Switch(0xD1)
	if tc.DPID() != 0xD1 || rc.DPID() != 0xD1 {
		t.Fatal("dpid mismatch through proxy")
	}
	if len(tc.Features().Ports) != 2 || len(rc.Features().Ports) != 2 {
		t.Fatal("port lists lost in proxy")
	}
}

func TestPacketInSlicing(t *testing.T) {
	st := newStack(t)
	// LLDP in on port 1 → topology slice only.
	st.far[0].Send(lldpFrame(0x99, 4))
	select {
	case pi := <-st.topoPIs:
		if pi.InPort != 1 {
			t.Fatalf("in_port = %d", pi.InPort)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("topology controller did not get the LLDP packet-in")
	}
	select {
	case <-st.rfPIs:
		t.Fatal("rf controller received LLDP")
	case <-time.After(50 * time.Millisecond):
	}

	// ARP in on port 2 → rf slice only.
	st.far[1].Send(arpFrame())
	select {
	case pi := <-st.rfPIs:
		if pi.InPort != 2 {
			t.Fatalf("in_port = %d", pi.InPort)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("rf controller did not get the ARP packet-in")
	}
	select {
	case <-st.topoPIs:
		t.Fatal("topology controller received ARP")
	case <-time.After(50 * time.Millisecond):
	}

	c, _ := st.fv.Counters("topo")
	if c.PacketIns != 1 {
		t.Fatalf("topo packet-ins = %d", c.PacketIns)
	}
}

func TestWritePolicyEnforced(t *testing.T) {
	st := newStack(t)
	fm := &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 1, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}

	// The topology slice may not program flows: expect an EPERM error reply.
	tc, _ := st.topo.Switch(0xD1)
	fmCopy := *fm
	rep, err := tc.Request(&fmCopy)
	if err == nil {
		t.Fatalf("flow-mod through LLDP slice succeeded: %v", rep)
	}
	em, ok := rep.(*openflow.ErrorMsg)
	if !ok || em.Code != openflow.ErrCodeBadRequestEperm {
		t.Fatalf("reply = %#v", rep)
	}
	if st.sw.NumFlows() != 0 {
		t.Fatal("flow installed despite policy")
	}
	c, _ := st.fv.Counters("topo")
	if c.Denied != 1 {
		t.Fatalf("denied = %d", c.Denied)
	}

	// The rf slice may.
	if err := st.rf.FlowModAdd(0xD1, fm); err != nil {
		t.Fatal(err)
	}
	rc, _ := st.rf.Switch(0xD1)
	if err := rc.Barrier(); err != nil {
		t.Fatal(err)
	}
	if st.sw.NumFlows() != 1 {
		t.Fatalf("flows = %d", st.sw.NumFlows())
	}
}

func TestConcurrentStatsXIDDisambiguation(t *testing.T) {
	st := newStack(t)
	tc, _ := st.topo.Switch(0xD1)
	rc, _ := st.rf.Switch(0xD1)
	// Fire many concurrent requests from both slices with colliding local
	// XIDs; every reply must come back to the right requester.
	type res struct {
		who string
		err error
	}
	results := make(chan res, 40)
	for i := 0; i < 20; i++ {
		go func() {
			_, err := tc.Request(&openflow.StatsRequest{StatsType: openflow.StatsDesc})
			results <- res{"topo", err}
		}()
		go func() {
			_, err := rc.Request(&openflow.StatsRequest{StatsType: openflow.StatsTable})
			results <- res{"rf", err}
		}()
	}
	for i := 0; i < 40; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s request %d: %v", r.who, i, r.err)
		}
	}
}

func TestPortStatusBroadcast(t *testing.T) {
	st := newStack(t)
	st.far[0].SetLinkUp(false)
	for _, ch := range []chan *openflow.PortStatus{st.topoPSs, st.rfPSs} {
		select {
		case ps := <-ch:
			if ps.Desc.PortNo != 1 {
				t.Fatalf("port = %d", ps.Desc.PortNo)
			}
		case <-time.After(3 * time.Second):
			t.Fatal("port-status not broadcast to both slices")
		}
	}
}

func TestEchoTerminatesAtProxy(t *testing.T) {
	st := newStack(t)
	tc, _ := st.topo.Switch(0xD1)
	rep, err := tc.Request(&openflow.EchoRequest{Data: []byte("fv?")})
	if err != nil {
		t.Fatal(err)
	}
	er, ok := rep.(*openflow.EchoReply)
	if !ok || string(er.Data) != "fv?" {
		t.Fatalf("echo reply = %#v", rep)
	}
}

func TestSessionTearDownOnSwitchLoss(t *testing.T) {
	st := newStack(t)
	st.sw.Stop()
	waitFor(t, "controllers lose the switch", func() bool {
		return st.topo.NumSwitches() == 0 && st.rf.NumSwitches() == 0
	})
}

func TestUnreachableSliceAbortsSession(t *testing.T) {
	bad := New("fv", []Slice{{
		Name: "gone",
		Dial: func() (net.Conn, error) { return nil, net.ErrClosed },
	}})
	l := ctlkit.NewMemListener("fv2")
	defer l.Close()
	go bad.Serve(l)
	defer bad.Stop()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	// The proxy should close our connection promptly.
	if err := openflow.WriteMessage(conn, &openflow.Hello{}); err == nil {
		if _, err := openflow.ReadMessage(conn); err == nil {
			t.Fatal("session with unreachable slice stayed open")
		}
	}
}

func TestCountersUnknownSlice(t *testing.T) {
	fv := New("x", nil)
	if _, ok := fv.Counters("nope"); ok {
		t.Fatal("counters for unknown slice")
	}
	if fv.String() == "" {
		t.Fatal("empty string")
	}
}

// Package flowvisor implements the FlowVisor component of the paper's
// framework: a transparent OpenFlow 1.0 proxy that lets several controllers
// share one physical switch by slicing the flowspace. In the paper's
// deployment there are two slices — the topology controller owns LLDP
// traffic, the RF-controller owns everything else — and FlowVisor sits
// between every switch and both controllers.
//
// For each switch connection the proxy dials every slice's controller and
// relays messages both ways, rewriting transaction IDs so concurrent
// requests from different slices cannot collide, answering controller echo
// keepalives locally (as the real FlowVisor does), routing packet-ins to the
// slice whose flowspace claims them, broadcasting asynchronous status
// messages, and enforcing per-slice write policies (a slice that may not
// program flows gets an EPERM error back, per FlowVisor semantics).
package flowvisor

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"routeflow/internal/ctlkit"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
)

const writeQueueDepth = 1024

// Slice is one controller's view of the network.
type Slice struct {
	// Name identifies the slice in counters and logs.
	Name string
	// Dial opens a connection to the slice's controller.
	Dial func() (net.Conn, error)
	// OwnsPacketIn claims packet-ins for this slice; slices are evaluated
	// in order and the first claimant wins. nil claims everything.
	OwnsPacketIn func(pi *openflow.PacketIn) bool
	// AllowWrite filters controller→switch messages. nil allows everything.
	// Denied messages are answered with an OpenFlow EPERM error.
	AllowWrite func(m openflow.Message) bool
}

// LLDPSlice returns the topology-controller slice policy: it owns LLDP
// packet-ins and may inject packets and read state, but may not modify the
// flow tables.
func LLDPSlice(name string, dial func() (net.Conn, error)) Slice {
	return Slice{
		Name: name,
		Dial: dial,
		OwnsPacketIn: func(pi *openflow.PacketIn) bool {
			f, err := pkt.DecodeFrame(pi.Data)
			return err == nil && f.Type == pkt.EtherTypeLLDP
		},
		AllowWrite: func(m openflow.Message) bool {
			switch m.(type) {
			case *openflow.FlowMod:
				return false
			default:
				return true
			}
		},
	}
}

// DefaultSlice returns the catch-all slice policy (the RF-controller): every
// remaining packet-in, full write access.
func DefaultSlice(name string, dial func() (net.Conn, error)) Slice {
	return Slice{Name: name, Dial: dial}
}

// Counters reports per-slice forwarding statistics.
type Counters struct {
	ToController uint64 // messages relayed switch → this slice
	ToSwitch     uint64 // messages relayed this slice → switch
	Denied       uint64 // writes rejected by policy
	PacketIns    uint64 // packet-ins routed to this slice
}

// FlowVisor is the proxy. One instance serves many switches.
type FlowVisor struct {
	name   string
	slices []Slice

	mu       sync.Mutex
	sessions map[*session]struct{}
	counters []countersAtomic
	stopped  bool

	wg sync.WaitGroup
}

type countersAtomic struct {
	toController atomic.Uint64
	toSwitch     atomic.Uint64
	denied       atomic.Uint64
	packetIns    atomic.Uint64
}

// New creates a FlowVisor with the given slices (order = packet-in priority).
func New(name string, slices []Slice) *FlowVisor {
	return &FlowVisor{
		name:     name,
		slices:   slices,
		sessions: make(map[*session]struct{}),
		counters: make([]countersAtomic, len(slices)),
	}
}

// Counters returns a snapshot for the named slice.
func (fv *FlowVisor) Counters(slice string) (Counters, bool) {
	for i, s := range fv.slices {
		if s.Name == slice {
			c := &fv.counters[i]
			return Counters{
				ToController: c.toController.Load(),
				ToSwitch:     c.toSwitch.Load(),
				Denied:       c.denied.Load(),
				PacketIns:    c.packetIns.Load(),
			}, true
		}
	}
	return Counters{}, false
}

// Serve accepts switch connections until the listener closes. Run in a
// goroutine.
func (fv *FlowVisor) Serve(l ctlkit.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		fv.mu.Lock()
		if fv.stopped {
			fv.mu.Unlock()
			conn.Close()
			return
		}
		fv.mu.Unlock()
		fv.wg.Add(1)
		go func() {
			defer fv.wg.Done()
			fv.runSession(conn)
		}()
	}
}

// Stop tears down all sessions.
func (fv *FlowVisor) Stop() {
	fv.mu.Lock()
	fv.stopped = true
	for s := range fv.sessions {
		s.close()
	}
	fv.mu.Unlock()
	fv.wg.Wait()
}

// session proxies one switch to all slices.
type session struct {
	fv     *FlowVisor
	swConn net.Conn
	swOut  chan openflow.Message

	ctls []*sliceConn

	xidMu   sync.Mutex
	nextXID uint32
	pending map[uint32]pendEntry

	closeOnce sync.Once
	closed    chan struct{}
}

type sliceConn struct {
	idx  int
	conn net.Conn
	out  chan openflow.Message
}

type pendEntry struct {
	slice int
	orig  uint32
}

func (fv *FlowVisor) runSession(swConn net.Conn) {
	s := &session{
		fv:      fv,
		swConn:  swConn,
		swOut:   make(chan openflow.Message, writeQueueDepth),
		pending: make(map[uint32]pendEntry),
		closed:  make(chan struct{}),
	}
	defer s.close()

	// Dial every slice controller; a slice that cannot be reached aborts the
	// session (the deployment is misconfigured without both controllers).
	for i, sl := range fv.slices {
		conn, err := sl.Dial()
		if err != nil {
			return
		}
		s.ctls = append(s.ctls, &sliceConn{idx: i, conn: conn,
			out: make(chan openflow.Message, writeQueueDepth)})
	}

	fv.mu.Lock()
	if fv.stopped {
		fv.mu.Unlock()
		return
	}
	fv.sessions[s] = struct{}{}
	fv.mu.Unlock()
	defer func() {
		fv.mu.Lock()
		delete(fv.sessions, s)
		fv.mu.Unlock()
	}()

	var wg sync.WaitGroup
	// Writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.writeLoop(s.swConn, s.swOut)
	}()
	for _, sc := range s.ctls {
		wg.Add(1)
		go func(sc *sliceConn) {
			defer wg.Done()
			s.writeLoop(sc.conn, sc.out)
		}(sc)
	}
	// Controller readers.
	for _, sc := range s.ctls {
		wg.Add(1)
		go func(sc *sliceConn) {
			defer wg.Done()
			s.controllerReadLoop(sc)
		}(sc)
	}
	// Switch reader (this goroutine).
	s.switchReadLoop()
	s.close()
	wg.Wait()
}

func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.swConn.Close()
		for _, sc := range s.ctls {
			sc.conn.Close()
		}
	})
}

// writeLoop batches queued messages into single writes (see
// openflow.PumpBatched). Forwarded messages the proxy does not model travel
// as *Raw and re-encode byte for byte straight from their stored body, so
// relaying costs no re-marshal.
func (s *session) writeLoop(conn net.Conn, ch <-chan openflow.Message) {
	if err := openflow.PumpBatched(conn, ch, s.closed); err != nil {
		s.close()
	}
}

func (s *session) enqueue(ch chan<- openflow.Message, m openflow.Message) {
	select {
	case ch <- m:
	case <-s.closed:
	}
}

// rewriteXID allocates a proxy transaction ID mapped back to (slice, orig).
func (s *session) rewriteXID(slice int, orig uint32) uint32 {
	s.xidMu.Lock()
	defer s.xidMu.Unlock()
	for {
		s.nextXID++
		if s.nextXID == 0 {
			continue
		}
		if _, busy := s.pending[s.nextXID]; !busy {
			s.pending[s.nextXID] = pendEntry{slice: slice, orig: orig}
			return s.nextXID
		}
	}
}

// resolveXID maps a switch reply back to its requesting slice. keep retains
// the mapping (multipart stats with the MORE flag).
func (s *session) resolveXID(x uint32, keep bool) (pendEntry, bool) {
	s.xidMu.Lock()
	defer s.xidMu.Unlock()
	pe, ok := s.pending[x]
	if ok && !keep {
		delete(s.pending, x)
	}
	return pe, ok
}

func (s *session) controllerReadLoop(sc *sliceConn) {
	slice := s.fv.slices[sc.idx]
	dec := openflow.NewDecoder(sc.conn)
	for {
		m, err := dec.Decode()
		if err != nil {
			s.close()
			return
		}
		switch msg := m.(type) {
		case *openflow.Hello:
			continue // consumed by the proxy; the switch already said hello
		case *openflow.EchoRequest:
			// Keepalives terminate at the proxy, like real FlowVisor.
			rep := &openflow.EchoReply{Data: msg.Data}
			rep.SetXID(msg.XID())
			s.enqueue(sc.out, rep)
			continue
		}
		if slice.AllowWrite != nil && !slice.AllowWrite(m) {
			s.fv.counters[sc.idx].denied.Add(1)
			em := &openflow.ErrorMsg{
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.ErrCodeBadRequestEperm,
				Data:    truncate(openflow.Marshal(m), 64),
			}
			em.SetXID(m.XID())
			s.enqueue(sc.out, em)
			continue
		}
		m.SetXID(s.rewriteXID(sc.idx, m.XID()))
		s.fv.counters[sc.idx].toSwitch.Add(1)
		s.enqueue(s.swOut, m)
	}
}

func (s *session) switchReadLoop() {
	helloSent := make([]bool, len(s.ctls))
	dec := openflow.NewDecoder(s.swConn)
	for {
		m, err := dec.Decode()
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *openflow.Hello:
			// Relay the switch's hello once to every slice.
			for i, sc := range s.ctls {
				if !helloSent[i] {
					helloSent[i] = true
					h := &openflow.Hello{}
					h.SetXID(msg.XID())
					s.enqueue(sc.out, h)
				}
			}
		case *openflow.EchoRequest:
			rep := &openflow.EchoReply{Data: msg.Data}
			rep.SetXID(msg.XID())
			s.enqueue(s.swOut, rep)
		case *openflow.PacketIn:
			s.routePacketIn(msg)
		case *openflow.PortStatus, *openflow.FlowRemoved, *openflow.TelemetryExport:
			// Asynchronous switch events (including unsolicited telemetry
			// exports) fan out to every slice; each controller's aggregator
			// filters by epoch, so foreign streams are ignored downstream.
			for i, sc := range s.ctls {
				s.fv.counters[i].toController.Add(1)
				s.enqueue(sc.out, m)
			}
		default:
			// Replies: route by transaction ID.
			keep := false
			if sr, ok := m.(*openflow.StatsReply); ok &&
				sr.Flags&openflow.StatsReplyFlagMore != 0 {
				keep = true
			}
			pe, ok := s.resolveXID(m.XID(), keep)
			if !ok {
				continue // unsolicited reply; drop
			}
			m.SetXID(pe.orig)
			s.fv.counters[pe.slice].toController.Add(1)
			s.enqueue(s.ctls[pe.slice].out, m)
		}
	}
}

func (s *session) routePacketIn(pi *openflow.PacketIn) {
	for i, sl := range s.fv.slices {
		if sl.OwnsPacketIn == nil || sl.OwnsPacketIn(pi) {
			s.fv.counters[i].packetIns.Add(1)
			s.fv.counters[i].toController.Add(1)
			s.enqueue(s.ctls[i].out, pi)
			return
		}
	}
	// No slice claims it: dropped, mirroring FlowVisor's default-deny.
}

func truncate(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// String describes the proxy.
func (fv *FlowVisor) String() string {
	return fmt.Sprintf("flowvisor(%s, %d slices)", fv.name, len(fv.slices))
}

package stream

import (
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/netemu"
	"routeflow/internal/pkt"
)

func hostPair(t *testing.T) (*netemu.Host, *netemu.Host) {
	t.Helper()
	n := netemu.NewNetwork(clock.System())
	t.Cleanup(n.Close)
	a, b := n.NewCable(netemu.CableOpts{NameA: "srv", NameB: "cli",
		MACA: pkt.LocalMAC(1), MACB: pkt.LocalMAC(2)})
	srv, err := netemu.NewHost(netemu.HostConfig{Name: "srv",
		Addr: netip.MustParsePrefix("10.0.0.1/24")}, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := netemu.NewHost(netemu.HostConfig{Name: "cli",
		Addr: netip.MustParsePrefix("10.0.0.2/24")}, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func TestStreamDelivery(t *testing.T) {
	srv, cli := hostPair(t)
	c, err := NewClient(cli, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewServer(ServerConfig{Host: srv, Dst: cli.Addr(),
		FrameRate: 200, FrameSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	if err := c.AwaitFirstFrame(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Collect a few frames.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Frames >= 10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	if st.Frames < 10 {
		t.Fatalf("frames = %d", st.Frames)
	}
	if st.Gaps != 0 {
		t.Fatalf("gaps on a lossless wire = %d", st.Gaps)
	}
	if st.FirstFrame.After(st.LastFrame) {
		t.Fatal("timestamps inverted")
	}
	ok, _ := s.Sent()
	if ok < st.Frames {
		t.Fatalf("server sent %d < client received %d", ok, st.Frames)
	}
}

func TestStreamSurvivesEarlyStart(t *testing.T) {
	// The paper starts the stream before the network is configured: sends
	// fail (no ARP for a ghost destination) but the server keeps running.
	srv, cli := hostPair(t)
	_ = cli
	s, err := NewServer(ServerConfig{Host: srv,
		Dst:       netip.MustParseAddr("10.0.0.250"), // nobody home
		FrameRate: 100, FrameSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(100 * time.Millisecond)
	s.Stop()
	ok, failed := s.Sent()
	if ok != 0 {
		t.Fatalf("sent = %d to a ghost", ok)
	}
	if failed == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestClientIgnoresGarbageAndDuplicates(t *testing.T) {
	srv, cli := hostPair(t)
	c, err := NewClient(cli, 7000, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Garbage: wrong magic.
	if err := srv.SendUDP(cli.Addr(), 1, 7000, []byte("notvideo....")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if c.Stats().Frames != 0 {
		t.Fatal("garbage counted as a frame")
	}
	// A valid frame sent twice counts once.
	payload := make([]byte, 64)
	payload[8], payload[9], payload[10], payload[11] = 0x52, 0x46, 0x4c, 0x56
	for i := 0; i < 2; i++ {
		if err := srv.SendUDP(cli.Addr(), 1, 7000, payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && c.Stats().Frames == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := c.Stats().Frames; got != 1 {
		t.Fatalf("frames = %d, want 1 (dup suppressed)", got)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("nil host accepted")
	}
	srv, _ := hostPair(t)
	if _, err := NewServer(ServerConfig{Host: srv, Dst: netip.MustParseAddr("::1")}); err == nil {
		t.Fatal("IPv6 dst accepted")
	}
	if _, err := NewClient(nil, 0, nil); err == nil {
		t.Fatal("nil client host accepted")
	}
}

func TestAwaitFirstFrameTimeout(t *testing.T) {
	_, cli := hostPair(t)
	c, _ := NewClient(cli, 0, nil)
	defer c.Close()
	if err := c.AwaitFirstFrame(30 * time.Millisecond); err == nil {
		t.Fatal("timeout did not fire")
	}
}

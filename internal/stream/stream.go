// Package stream reproduces the paper's demonstration workload: a video
// clip streamed from a server to a remote client across the OpenFlow
// network (§3). The server paces fixed-size numbered frames over UDP; the
// client records when the first frame arrives — the paper's headline metric
// ("the video clip reaches at the remote client within 4 minutes, including
// the configuration time") — plus delivery ratio and sequence gaps.
package stream

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/netemu"
)

// Defaults model a modest SD video stream.
const (
	DefaultPort      = 5004
	DefaultFrameSize = 1200
	DefaultFrameRate = 25         // frames per second
	headerLen        = 12         // seq(8) + magic(4)
	magic            = 0x52464c56 // "RFLV"
)

// ServerConfig configures a video source.
type ServerConfig struct {
	Host      *netemu.Host
	Dst       netip.Addr
	DstPort   uint16 // default DefaultPort
	SrcPort   uint16 // default DefaultPort
	FrameSize int    // default DefaultFrameSize
	FrameRate int    // default DefaultFrameRate
	Clock     clock.Clock
}

// Server streams frames until stopped. The paper starts the stream at t=0,
// before any configuration exists, and lets it run while the framework
// brings the network up — send errors are therefore expected and counted,
// not fatal.
type Server struct {
	cfg ServerConfig
	clk clock.Clock

	mu       sync.Mutex
	sent     uint64
	failures uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewServer creates a video source.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("stream: server host is required")
	}
	if !cfg.Dst.Is4() {
		return nil, fmt.Errorf("stream: destination %v is not IPv4", cfg.Dst)
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = DefaultPort
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = DefaultPort
	}
	if cfg.FrameSize < headerLen {
		cfg.FrameSize = DefaultFrameSize
	}
	if cfg.FrameRate <= 0 {
		cfg.FrameRate = DefaultFrameRate
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	return &Server{cfg: cfg, clk: cfg.Clock,
		stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Start begins pacing frames.
func (s *Server) Start() {
	go s.run()
}

func (s *Server) run() {
	defer close(s.done)
	interval := time.Second / time.Duration(s.cfg.FrameRate)
	tick := s.clk.NewTicker(interval)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-tick.C():
			payload := make([]byte, s.cfg.FrameSize)
			binary.BigEndian.PutUint64(payload[0:], seq)
			binary.BigEndian.PutUint32(payload[8:], magic)
			err := s.cfg.Host.SendUDP(s.cfg.Dst, s.cfg.SrcPort, s.cfg.DstPort, payload)
			s.mu.Lock()
			if err != nil {
				s.failures++
			} else {
				s.sent++
			}
			s.mu.Unlock()
			seq++
		case <-s.stop:
			return
		}
	}
}

// Stop halts the stream and waits for the sender to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Sent returns frames successfully handed to the network, and attempts that
// failed locally (ARP not resolved yet, NIC drop).
func (s *Server) Sent() (ok, failed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.failures
}

// ClientStats summarize reception.
type ClientStats struct {
	Frames uint64
	// FirstSeq is the sequence number of the first frame to arrive (frames
	// sent before the network was up never arrive); MinSeq can be lower
	// when slow-path frames queued behind ARP are delivered late.
	FirstSeq   uint64
	MinSeq     uint64
	LastSeq    uint64
	Gaps       uint64 // missing sequence numbers between first and last
	FirstFrame time.Time
	LastFrame  time.Time
}

// Client receives the stream on a host.
type Client struct {
	host *netemu.Host
	clk  clock.Clock
	port uint16

	mu      sync.Mutex
	stats   ClientStats
	started bool
	seen    map[uint64]bool
	firstCh chan struct{}
}

// NewClient binds a receiver on the host.
func NewClient(host *netemu.Host, port uint16, clk clock.Clock) (*Client, error) {
	if host == nil {
		return nil, fmt.Errorf("stream: client host is required")
	}
	if port == 0 {
		port = DefaultPort
	}
	if clk == nil {
		clk = clock.System()
	}
	c := &Client{host: host, clk: clk, port: port,
		seen: make(map[uint64]bool), firstCh: make(chan struct{})}
	host.BindUDP(port, c.onFrame)
	return c, nil
}

func (c *Client) onFrame(src netip.Addr, srcPort uint16, payload []byte) {
	if len(payload) < headerLen || binary.BigEndian.Uint32(payload[8:]) != magic {
		return
	}
	seq := binary.BigEndian.Uint64(payload)
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[seq] {
		return // duplicate
	}
	c.seen[seq] = true
	c.stats.Frames++
	c.stats.LastFrame = now
	if !c.started {
		c.started = true
		c.stats.FirstSeq = seq
		c.stats.MinSeq = seq
		c.stats.FirstFrame = now
		close(c.firstCh)
	}
	if seq > c.stats.LastSeq {
		c.stats.LastSeq = seq
	}
	if seq < c.stats.MinSeq {
		c.stats.MinSeq = seq
	}
}

// FirstFrame returns a channel closed when the first frame arrives.
func (c *Client) FirstFrame() <-chan struct{} { return c.firstCh }

// AwaitFirstFrame blocks until the first frame or the timeout (measured on
// the client's clock).
func (c *Client) AwaitFirstFrame(timeout time.Duration) error {
	select {
	case <-c.firstCh:
		return nil
	case <-c.clk.After(timeout):
		return fmt.Errorf("stream: no video after %v", timeout)
	}
}

// Stats snapshots reception statistics, computing gaps.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	if st.Frames > 0 {
		span := st.LastSeq - st.MinSeq + 1
		st.Gaps = span - st.Frames
	}
	return st
}

// Close unbinds the receiver.
func (c *Client) Close() { c.host.BindUDP(c.port, nil) }

package stream

// Fleet is the many-flow workload behind the traffic-engineering
// experiments: thousands of concurrent UDP microflows whose demand follows
// a Zipf law — a few heavy hitters over a long tail — and shifts over time,
// so link hot spots form and then move. One pacer goroutine drives the
// whole fleet (a thousand streams cost one timer, not a thousand), each
// stream keeps a stable five-tuple (its own source port) so the ECMP hash
// pins it to one path, and the schedule derives entirely from one seed.

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"routeflow/internal/clock"
)

// FleetConfig describes a fleet. Pairs and Send are required.
type FleetConfig struct {
	// Clock paces the fleet (protocol time). Default clock.System().
	Clock clock.Clock
	// Pairs are the directed host-node pairs traffic flows between; stream i
	// belongs to pair i mod len(Pairs).
	Pairs [][2]int
	// Streams is the number of concurrent microflows (default 1000), each
	// with its own source port — one ECMP-hashable five-tuple apiece.
	Streams int
	// Exponent is the Zipf skew s: stream demand ∝ 1/(rank+1)^s. Default 1.2.
	Exponent float64
	// Tick is the pacer period (default 10ms); PacketsPerTick datagrams are
	// sent each tick (default 64), sampled by stream weight.
	Tick           time.Duration
	PacketsPerTick int
	// PayloadBytes sizes each datagram's payload (default 256).
	PayloadBytes int
	// Shift rotates the demand ranking by one stream every Shift of protocol
	// time (0 = static demand). Rotation walks the heavy hitters across
	// pairs, shifting which links run hot.
	Shift time.Duration
	// Seed makes the packet schedule reproducible.
	Seed int64
	// Send delivers one datagram for a pair's stream. Errors are counted,
	// not fatal: a stream racing a failover keeps trying next tick.
	Send func(pair [2]int, srcPort, dstPort uint16, payload []byte) error
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	if c.Streams <= 0 {
		c.Streams = 1000
	}
	if c.Exponent <= 0 {
		c.Exponent = 1.2
	}
	if c.Tick <= 0 {
		c.Tick = 10 * time.Millisecond
	}
	if c.PacketsPerTick <= 0 {
		c.PacketsPerTick = 64
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 256
	}
	return c
}

// FleetDstPort is the fixed destination port of every fleet stream.
const FleetDstPort = 9000

// Fleet is a running (or manually stepped) stream population.
type Fleet struct {
	cfg     FleetConfig
	rng     *rand.Rand
	payload []byte
	weights []float64 // demand weight by rank
	cum     []float64 // cumulative stream weight under the current rotation
	offset  int       // rotation: stream i holds rank (i+offset) mod Streams
	ticks   int
	rotate  int // ticks per rotation step (0 = static demand)

	mu      sync.Mutex
	sent    uint64
	errs    uint64
	perPair map[[2]int]uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFleet builds a fleet; call Run to pace it, or Tick to step manually.
func NewFleet(cfg FleetConfig) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		payload: make([]byte, cfg.PayloadBytes),
		perPair: make(map[[2]int]uint64),
		stop:    make(chan struct{}),
	}
	f.weights = make([]float64, cfg.Streams)
	for r := range f.weights {
		f.weights[r] = 1 / math.Pow(float64(r+1), cfg.Exponent)
	}
	f.cum = make([]float64, cfg.Streams)
	f.rebuildCum()
	if cfg.Shift > 0 {
		f.rotate = int(cfg.Shift / cfg.Tick)
		if f.rotate < 1 {
			f.rotate = 1
		}
	}
	return f
}

func (f *Fleet) rebuildCum() {
	total := 0.0
	for i := range f.cum {
		total += f.weights[(i+f.offset)%len(f.weights)]
		f.cum[i] = total
	}
}

// Run paces the fleet on its clock until Stop.
func (f *Fleet) Run() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		tick := f.cfg.Clock.NewTicker(f.cfg.Tick)
		defer tick.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-tick.C():
			}
			f.Tick()
		}
	}()
}

// Stop halts the pacer and waits for it to exit.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// Tick sends one pacer round: PacketsPerTick datagrams sampled by stream
// weight under the current demand rotation. Exported so benches can step
// the schedule without a running clock. Not safe concurrently with Run.
func (f *Fleet) Tick() {
	if f.rotate > 0 && f.ticks > 0 && f.ticks%f.rotate == 0 {
		f.offset++
		f.rebuildCum()
	}
	f.ticks++
	total := f.cum[len(f.cum)-1]
	for p := 0; p < f.cfg.PacketsPerTick; p++ {
		i := searchFloat(f.cum, f.rng.Float64()*total)
		pair := f.cfg.Pairs[i%len(f.cfg.Pairs)]
		srcPort := uint16(10000 + i%50000)
		err := f.cfg.Send(pair, srcPort, FleetDstPort, f.payload)
		f.mu.Lock()
		if err != nil {
			f.errs++
		} else {
			f.sent++
			f.perPair[pair]++
		}
		f.mu.Unlock()
	}
}

// Sent returns how many datagrams Send accepted.
func (f *Fleet) Sent() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sent
}

// Errors returns how many sends failed.
func (f *Fleet) Errors() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.errs
}

// PairSent snapshots per-pair accepted counts.
func (f *Fleet) PairSent() map[[2]int]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[[2]int]uint64, len(f.perPair))
	for k, v := range f.perPair {
		out[k] = v
	}
	return out
}

// searchFloat returns the least index i with cum[i] >= x.
func searchFloat(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package stream

import (
	"reflect"
	"testing"
	"time"
)

type sendRec struct {
	pair    [2]int
	srcPort uint16
}

func collectTicks(t *testing.T, cfg FleetConfig, ticks int) ([]sendRec, *Fleet) {
	t.Helper()
	var recs []sendRec
	cfg.Send = func(pair [2]int, srcPort, dstPort uint16, payload []byte) error {
		if dstPort != FleetDstPort {
			t.Fatalf("dstPort = %d", dstPort)
		}
		recs = append(recs, sendRec{pair, srcPort})
		return nil
	}
	f := NewFleet(cfg)
	for i := 0; i < ticks; i++ {
		f.Tick()
	}
	return recs, f
}

// TestFleetZipfSkew checks the demand law: with a strong skew, the busiest
// stream must carry many times the median stream's packets.
func TestFleetZipfSkew(t *testing.T) {
	recs, f := collectTicks(t, FleetConfig{
		Pairs: [][2]int{{0, 1}, {1, 2}, {2, 0}}, Streams: 100,
		Exponent: 1.3, PacketsPerTick: 100, Seed: 7,
	}, 100)
	byPort := make(map[uint16]int)
	for _, r := range recs {
		byPort[r.srcPort]++
	}
	max := 0
	for _, n := range byPort {
		if n > max {
			max = n
		}
	}
	if max < len(recs)/10 {
		t.Fatalf("heaviest stream carried %d of %d packets — no skew", max, len(recs))
	}
	if f.Sent() != uint64(len(recs)) {
		t.Fatalf("Sent = %d, recorded %d", f.Sent(), len(recs))
	}
}

// TestFleetDeterministic runs two fleets off the same seed and demands the
// identical packet schedule.
func TestFleetDeterministic(t *testing.T) {
	cfg := FleetConfig{Pairs: [][2]int{{0, 3}, {1, 2}}, Streams: 64,
		PacketsPerTick: 32, Seed: 42, Shift: 50 * time.Millisecond,
		Tick: 10 * time.Millisecond}
	a, _ := collectTicks(t, cfg, 20)
	b, _ := collectTicks(t, cfg, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
}

// TestFleetDemandShifts verifies rotation: with Shift set, the heavy
// hitter's source port must change across rotations, moving load between
// pairs over time.
func TestFleetDemandShifts(t *testing.T) {
	cfg := FleetConfig{Pairs: [][2]int{{0, 1}, {1, 0}}, Streams: 50,
		Exponent: 1.5, PacketsPerTick: 200, Seed: 1,
		Tick: 10 * time.Millisecond, Shift: 10 * time.Millisecond}
	var heavies []uint16
	var recs []sendRec
	cfg.Send = func(pair [2]int, srcPort, dstPort uint16, payload []byte) error {
		recs = append(recs, sendRec{pair, srcPort})
		return nil
	}
	f := NewFleet(cfg)
	for phase := 0; phase < 3; phase++ {
		recs = recs[:0]
		for i := 0; i < 10; i++ {
			f.Tick()
		}
		byPort := make(map[uint16]int)
		for _, r := range recs {
			byPort[r.srcPort]++
		}
		heavy, max := uint16(0), 0
		for p, n := range byPort {
			if n > max || (n == max && p < heavy) {
				heavy, max = p, n
			}
		}
		heavies = append(heavies, heavy)
	}
	if heavies[0] == heavies[1] && heavies[1] == heavies[2] {
		t.Fatalf("heavy hitter never moved: %v", heavies)
	}
}

// TestFleetRunStop exercises the paced path end to end.
func TestFleetRunStop(t *testing.T) {
	done := make(chan struct{})
	var n int
	f := NewFleet(FleetConfig{
		Pairs: [][2]int{{0, 1}}, Streams: 8, PacketsPerTick: 4,
		Tick: time.Millisecond,
		Send: func(pair [2]int, srcPort, dstPort uint16, payload []byte) error {
			n++
			if n == 20 {
				close(done)
			}
			return nil
		},
	})
	f.Run()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fleet sent nothing")
	}
	f.Stop()
	if f.Sent() == 0 {
		t.Fatal("Sent = 0 after run")
	}
}

package cluster

import (
	"sync"
	"testing"
	"time"

	"routeflow/internal/clock"
)

// recorder collects assignment batches thread-safely.
type recorder struct {
	mu      sync.Mutex
	batches [][]Assignment
}

func (r *recorder) onChange(batch []Assignment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]Assignment, len(batch))
	copy(cp, batch)
	r.batches = append(r.batches, cp)
}

func (r *recorder) all() []Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Assignment
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

// eventually polls a condition against the wall clock — the coordinator's
// loop goroutine consumes fake-clock ticks asynchronously.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func newTestCoordinator(t *testing.T, shards, replicas int, rec *recorder) (*Coordinator, *clock.Fake) {
	t.Helper()
	fc := clock.NewFake()
	cfg := Config{
		Shards:   shards,
		Replicas: replicas,
		LeaseTTL: time.Second,
		Renew:    250 * time.Millisecond,
		Clock:    fc,
	}
	if rec != nil {
		cfg.OnChange = rec.onChange
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, fc
}

func TestInitialAssignmentIsModuloAndSynchronous(t *testing.T) {
	rec := &recorder{}
	c, _ := newTestCoordinator(t, 5, 2, rec)
	c.Run()
	defer c.Stop()
	// Run returns only after the initial assignment: every shard owned.
	for s := 0; s < 5; s++ {
		owner, ok := c.Owner(s)
		if !ok {
			t.Fatalf("shard %d unowned after Run", s)
		}
		if want := s % 2; owner != want {
			t.Fatalf("shard %d owned by %d, want %d", s, owner, want)
		}
	}
	got := rec.all()
	if len(got) != 5 {
		t.Fatalf("initial batch has %d assignments, want 5", len(got))
	}
	for i, a := range got {
		if a.Shard != i || a.Prev != -1 || a.Replica != i%2 {
			t.Fatalf("assignment %d = %+v, want shard=%d prev=-1 replica=%d", i, a, i, i%2)
		}
		if a.Epoch != uint64(i+1) {
			t.Fatalf("assignment %d epoch = %d, want %d (strictly increasing)", i, a.Epoch, i+1)
		}
	}
}

func TestLeaseLapsesAfterDeathAndShardsRehome(t *testing.T) {
	rec := &recorder{}
	c, fc := newTestCoordinator(t, 4, 2, rec)
	c.Run()
	defer c.Stop()

	epochBefore := c.Epoch(1)
	c.SetLive(1, false)

	// Within the TTL the dead replica's leases are respected.
	fc.Advance(500 * time.Millisecond)
	if owner, _ := c.Owner(1); owner != 1 {
		t.Fatalf("shard 1 stolen before lease expiry (owner=%d)", owner)
	}

	// After the TTL every shard re-homes to the survivor.
	fc.Advance(time.Second)
	eventually(t, "rehome to replica 0", func() bool {
		for s := 0; s < 4; s++ {
			if owner, ok := c.Owner(s); !ok || owner != 0 {
				return false
			}
		}
		return true
	})
	if e := c.Epoch(1); e <= epochBefore {
		t.Fatalf("shard 1 epoch did not advance on transfer (%d -> %d)", epochBefore, e)
	}
}

func TestHealRebalancesCooperatively(t *testing.T) {
	c, fc := newTestCoordinator(t, 4, 2, nil)
	c.Run()
	defer c.Stop()

	c.SetLive(1, false)
	fc.Advance(2 * time.Second)
	eventually(t, "failover", func() bool {
		o, ok := c.Owner(1)
		return ok && o == 0
	})

	c.SetLive(1, true)
	fc.Advance(2 * time.Second)
	eventually(t, "rebalance back", func() bool {
		o1, ok1 := c.Owner(1)
		o3, ok3 := c.Owner(3)
		return ok1 && ok3 && o1 == 1 && o3 == 1
	})
	// Even shards never left replica 0.
	if o, _ := c.Owner(0); o != 0 {
		t.Fatalf("shard 0 moved to %d during rebalance", o)
	}
}

func TestAllReplicasDeadLeavesShardsUnowned(t *testing.T) {
	c, fc := newTestCoordinator(t, 2, 2, nil)
	c.Run()
	defer c.Stop()
	c.SetLive(0, false)
	c.SetLive(1, false)
	fc.Advance(3 * time.Second)
	eventually(t, "shards orphaned", func() bool {
		_, ok0 := c.Owner(0)
		_, ok1 := c.Owner(1)
		return !ok0 && !ok1
	})
	if l := c.LeaseOf(0); l.Owner != -1 {
		t.Fatalf("lease of orphaned shard reports owner %d", l.Owner)
	}
}

func TestDeterministicFailoverSequence(t *testing.T) {
	run := func() []Assignment {
		rec := &recorder{}
		c, fc := newTestCoordinator(t, 6, 3, rec)
		c.Run()
		c.SetLive(2, false)
		fc.Advance(2 * time.Second)
		eventually(t, "rehome", func() bool {
			for s := 0; s < 6; s++ {
				if o, ok := c.Owner(s); !ok || o == 2 {
					return false
				}
			}
			return true
		})
		c.Stop()
		return rec.all()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d assignments", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Replicas: 1}); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := New(Config{Shards: 1, Replicas: 0}); err == nil {
		t.Error("Replicas=0 accepted")
	}
	if _, err := New(Config{Shards: 1, Replicas: 1, Policy: "spread"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{Shards: 1, Replicas: 1, LeaseTTL: time.Second, Renew: 2 * time.Second}); err == nil {
		t.Error("renew > TTL accepted")
	}
}

func TestSingleReplicaOwnsEverythingForever(t *testing.T) {
	rec := &recorder{}
	c, fc := newTestCoordinator(t, 3, 1, rec)
	c.Run()
	defer c.Stop()
	fc.Advance(10 * time.Second)
	for s := 0; s < 3; s++ {
		if o, ok := c.Owner(s); !ok || o != 0 {
			t.Fatalf("shard %d owner = %d, ok=%v; want 0", s, o, ok)
		}
	}
	if got := rec.all(); len(got) != 3 {
		t.Fatalf("single-replica coordinator produced %d assignments, want exactly the 3 initial ones", len(got))
	}
}

// Package cluster implements deterministic lease-based mastership for a
// sharded rf-controller: N replicas divide the switch population into shard
// groups, each shard is owned by exactly one replica at a time, and
// ownership is protected by a clock-driven lease. A live replica renews the
// leases of every shard it owns; when a replica dies (or is partitioned
// from the coordination service) its heartbeats stop, its leases lapse
// after the TTL, and the coordinator re-homes the orphaned shards to the
// surviving replicas. Every transfer carries a monotonically increasing
// epoch — the fencing token that lets the configuration pipeline discard
// work issued under a stale mastership.
//
// The coordinator stands in for the consensus service (etcd, ZooKeeper) a
// production deployment would use, with one deliberate property the
// reproduction needs everywhere else too: determinism. Renewal and expiry
// are evaluated by a single loop on an injected clock, shards are scanned
// in index order, and the preferred owner of a shard is a pure function of
// the live-replica set — so a scenario that kills replica 1 of 2 always
// ends with replica 0 owning everything, in the same assignment order, on
// every run.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"routeflow/internal/clock"
)

// Policy names a shard→replica assignment policy.
type Policy string

// PolicyModulo assigns shard s to the (s mod n)-th live replica — the
// default static-partitioning policy. Load-aware rebalancing is the
// road-mapped follow-on.
const PolicyModulo Policy = "modulo"

// Lease timing defaults (protocol time).
const (
	DefaultLeaseTTL   = 3 * time.Second
	defaultRenewRatio = 3 // renew at TTL/3
)

// Config sizes a coordinator.
type Config struct {
	// Shards is the number of shard groups (required, ≥ 1).
	Shards int
	// Replicas is the number of rf-controller replicas (required, ≥ 1).
	Replicas int
	// Policy selects the assignment rule (default PolicyModulo).
	Policy Policy
	// LeaseTTL is how long a shard stays owned after its owner's last
	// heartbeat (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Renew is the heartbeat/evaluation period (default LeaseTTL/3).
	Renew time.Duration
	// Clock drives leases; protocol time under a scaled clock.
	Clock clock.Clock
	// OnChange observes each batch of ownership transfers, in shard order,
	// synchronously from the coordination loop (and once from Run for the
	// initial assignment). It must not call back into SetLive.
	OnChange func([]Assignment)
}

// Assignment is one ownership decision.
type Assignment struct {
	Shard   int
	Replica int    // new owner; -1 when no live replica remains
	Prev    int    // previous owner; -1 on the initial assignment
	Epoch   uint64 // fencing token, strictly increasing across transfers
}

// Lease is the published ownership record of one shard.
type Lease struct {
	Owner   int // -1 = unowned
	Epoch   uint64
	Expires time.Time
}

// Coordinator arbitrates shard mastership across replicas.
type Coordinator struct {
	cfg Config
	clk clock.Clock

	mu      sync.Mutex
	owner   []int       // per shard; -1 = unowned
	epoch   []uint64    // per shard fencing token
	fence   uint64      // global epoch counter
	live    []bool      // per replica: heartbeating (process up, not partitioned)
	beat    []time.Time // per replica: last heartbeat
	booted  bool
	running bool // Run has started the loop (Stop waits for it only then)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates cfg and builds a coordinator; call Run to start it.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: Shards must be >= 1 (got %d)", cfg.Shards)
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: Replicas must be >= 1 (got %d)", cfg.Replicas)
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyModulo
	}
	if cfg.Policy != PolicyModulo {
		return nil, fmt.Errorf("cluster: unknown shard policy %q", cfg.Policy)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Renew <= 0 {
		cfg.Renew = cfg.LeaseTTL / defaultRenewRatio
	}
	if cfg.Renew > cfg.LeaseTTL {
		return nil, fmt.Errorf("cluster: renew period %v exceeds lease TTL %v", cfg.Renew, cfg.LeaseTTL)
	}
	c := &Coordinator{
		cfg:   cfg,
		clk:   cfg.Clock,
		owner: make([]int, cfg.Shards),
		epoch: make([]uint64, cfg.Shards),
		live:  make([]bool, cfg.Replicas),
		beat:  make([]time.Time, cfg.Replicas),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for s := range c.owner {
		c.owner[s] = -1
	}
	for r := range c.live {
		c.live[r] = true
	}
	return c, nil
}

// Run performs the initial assignment synchronously (every shard gets an
// owner before Run returns, so callers can wire ownership-dependent state
// deterministically) and then starts the coordination loop. The renewal
// ticker is armed before Run returns, so a fake clock advanced immediately
// afterwards drives the loop.
func (c *Coordinator) Run() {
	c.tick()
	t := c.clk.NewTicker(c.cfg.Renew)
	c.mu.Lock()
	c.running = true
	c.mu.Unlock()
	go c.loop(t)
}

// Stop halts the coordination loop. Leases freeze in their current state.
// Safe to call before Run (a build that fails mid-assembly still tears down).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	running := c.running
	c.mu.Unlock()
	if running {
		<-c.done
	}
}

func (c *Coordinator) loop(t clock.Ticker) {
	defer close(c.done)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C():
			c.tick()
		}
	}
}

// tick is one coordination round: heartbeat every live replica, expire
// lapsed leases, and (re)assign shards to their preferred live owner. All
// decisions are made under the lock; callbacks fire after it is released,
// so OnChange handlers may query Owner/Lease freely.
func (c *Coordinator) tick() {
	now := c.clk.Now()
	c.mu.Lock()
	for r, l := range c.live {
		if l {
			c.beat[r] = now
		}
	}
	if !c.booted {
		c.booted = true
	}
	// A replica is "held" (its leases respected) while its last heartbeat is
	// within the TTL — a replica that just stopped beating keeps its shards
	// until the lease lapses, exactly like a real lease service.
	held := func(r int) bool {
		return r >= 0 && now.Sub(c.beat[r]) < c.cfg.LeaseTTL
	}
	var alive []int
	for r := range c.live {
		if held(r) && c.live[r] {
			alive = append(alive, r)
		}
	}
	var batch []Assignment
	for s := 0; s < c.cfg.Shards; s++ {
		pref := -1
		if len(alive) > 0 {
			pref = alive[s%len(alive)]
		}
		cur := c.owner[s]
		switch {
		case cur == pref:
			continue
		case held(cur) && c.live[cur] && pref >= 0:
			// The current owner is alive and renewing, but the preferred
			// owner changed (a replica joined back): cooperative rebalance —
			// the owner cedes the shard at its next renewal.
		case held(cur):
			// Lease still valid and the owner may merely be slow; do not
			// steal it before expiry.
			continue
		}
		if pref == cur {
			continue
		}
		c.fence++
		c.epoch[s] = c.fence
		batch = append(batch, Assignment{Shard: s, Replica: pref, Prev: cur, Epoch: c.fence})
		c.owner[s] = pref
	}
	cb := c.cfg.OnChange
	c.mu.Unlock()
	if len(batch) > 0 && cb != nil {
		cb(batch)
	}
}

// SetLive marks a replica as heartbeating (true) or silent (false). A crash
// sets it false forever; a partition sets it false until the heal. Shards
// owned by a silent replica re-home once their lease lapses.
func (c *Coordinator) SetLive(replica int, live bool) {
	c.mu.Lock()
	if replica >= 0 && replica < len(c.live) {
		c.live[replica] = live
	}
	c.mu.Unlock()
}

// Owner returns the replica currently mastering a shard; ok is false when
// no live replica holds it.
func (c *Coordinator) Owner(shard int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.owner) || c.owner[shard] < 0 {
		return -1, false
	}
	return c.owner[shard], true
}

// Epoch returns a shard's current fencing token.
func (c *Coordinator) Epoch(shard int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.epoch) {
		return 0
	}
	return c.epoch[shard]
}

// LeaseOf returns the full lease record of a shard.
func (c *Coordinator) LeaseOf(shard int) Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.owner) {
		return Lease{Owner: -1}
	}
	l := Lease{Owner: c.owner[shard], Epoch: c.epoch[shard]}
	if l.Owner >= 0 {
		l.Expires = c.beat[l.Owner].Add(c.cfg.LeaseTTL)
	}
	return l
}

// LiveReplicas lists the replicas currently heartbeating, ascending.
func (c *Coordinator) LiveReplicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for r, l := range c.live {
		if l {
			out = append(out, r)
		}
	}
	return out
}

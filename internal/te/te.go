// Package te is the online traffic-engineering optimizer: a pure,
// deterministic decision engine that reads the telemetry pipeline's link
// utilization view, finds links running above their headroom threshold, and
// relieves them by migrating the fewest (largest-rate) movable flows onto
// colder equal-cost paths. The engine only decides — it emits path moves;
// the deployment layer turns moves into pinned flow entries through the
// controller's desired-state discipline.
//
// Stability is a first-class output, not an afterthought: a link must
// exceed Headroom to be worked on but is only relieved down to the lower
// Relief watermark (hysteresis, so a link hovering at the threshold does
// not flap), every accepted move must leave the destination path at or
// below Relief (a move never creates the next hot link), a moved pair sits
// out a per-flow cooldown before it may move again, and a pair that keeps
// moving anyway is frozen as an oscillator for a damping period.
package te

import (
	"math"
	"sort"

	"routeflow/internal/telemetry"
)

// Config tunes the optimizer. Zero values take the defaults; Relief must
// stay below Headroom for the hysteresis band to exist.
type Config struct {
	// Headroom is the hot threshold: a link is overloaded when its
	// utilization (rate/capacity) exceeds it. Default 0.8.
	Headroom float64
	// Relief is the hysteresis watermark: a hot link is worked until it
	// drops to Relief, and a move must leave every link of the destination
	// path at or below it. Default 0.7.
	Relief float64
	// Cooldown is how many planning rounds a moved pair sits out before it
	// is movable again. Default 3.
	Cooldown int
	// FreezeAfter moves within FreezeWindow rounds mark a pair as an
	// oscillator, freezing it for FreezeFor rounds. Defaults 3, 10, 20.
	FreezeAfter  int
	FreezeWindow int
	FreezeFor    int
	// MaxMovesPerRound bounds per-round churn. Default 4.
	MaxMovesPerRound int
}

func (c Config) withDefaults() Config {
	if c.Headroom <= 0 {
		c.Headroom = 0.8
	}
	if c.Relief <= 0 {
		c.Relief = 0.7
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.FreezeAfter <= 0 {
		c.FreezeAfter = 3
	}
	if c.FreezeWindow <= 0 {
		c.FreezeWindow = 10
	}
	if c.FreezeFor <= 0 {
		c.FreezeFor = 20
	}
	if c.MaxMovesPerRound <= 0 {
		c.MaxMovesPerRound = 4
	}
	return c
}

// Link is one link's measured load and capacity in bytes/sec.
type Link struct {
	Rate     float64
	Capacity float64
}

// Flow is one movable unit: a directed host pair with its windowed rate,
// the path it is currently assigned to, and the equal-cost candidate walks
// it could be pinned to instead (including the current one).
type Flow struct {
	Pair       [2]int
	Rate       float64
	Path       []int
	Candidates [][]int
}

// State is one planning round's input view.
type State struct {
	Links map[telemetry.LinkKey]Link
	// DefaultCapacity applies to links that carry simulated traffic during
	// planning but have no entry in Links (0 = infinite, never hot).
	DefaultCapacity float64
	Flows           []Flow
}

// Move is one decided migration: pin Pair to the To walk.
type Move struct {
	Pair     [2]int
	From, To []int
}

type pairHist struct {
	lastMove   int
	moves      []int // rounds at which the pair moved, pruned to the window
	frozenTill int
}

// Engine carries the per-flow stability state across planning rounds. Not
// safe for concurrent use; the deployment's TE loop owns it.
type Engine struct {
	cfg   Config
	round int
	hist  map[[2]int]*pairHist
}

// New creates an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), hist: make(map[[2]int]*pairHist)}
}

// Round returns the number of completed planning rounds.
func (e *Engine) Round() int { return e.round }

// Frozen reports whether pair is currently damped as an oscillator.
func (e *Engine) Frozen(pair [2]int) bool {
	h := e.hist[pair]
	return h != nil && e.round < h.frozenTill
}

// Plan runs one planning round against the given view and returns the moves
// to apply, deterministically for a given engine history and state.
func (e *Engine) Plan(st State) []Move {
	e.round++
	rates := make(map[telemetry.LinkKey]float64, len(st.Links))
	caps := make(map[telemetry.LinkKey]float64, len(st.Links))
	for k, l := range st.Links {
		rates[k], caps[k] = l.Rate, l.Capacity
	}
	util := func(k telemetry.LinkKey) float64 {
		c, ok := caps[k]
		if !ok {
			c = st.DefaultCapacity
		}
		if c <= 0 {
			return 0
		}
		return rates[k] / c
	}

	var hot []telemetry.LinkKey
	for k := range st.Links {
		if util(k) > e.cfg.Headroom {
			hot = append(hot, k)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		ui, uj := util(hot[i]), util(hot[j])
		if ui != uj {
			return ui > uj
		}
		if hot[i].A != hot[j].A {
			return hot[i].A < hot[j].A
		}
		return hot[i].B < hot[j].B
	})

	var moves []Move
	movedNow := make(map[[2]int]bool)
	for _, hk := range hot {
		if len(moves) >= e.cfg.MaxMovesPerRound || util(hk) <= e.cfg.Headroom {
			continue
		}
		cand := e.movableAcross(st.Flows, hk, movedNow)
		for _, f := range cand {
			if len(moves) >= e.cfg.MaxMovesPerRound {
				break
			}
			to := e.bestAlternate(f, hk, rates, caps, st.DefaultCapacity)
			if to == nil {
				continue
			}
			for _, lk := range telemetry.PathLinks(f.Path) {
				rates[lk] -= f.Rate
			}
			for _, lk := range telemetry.PathLinks(to) {
				rates[lk] += f.Rate
			}
			moves = append(moves, Move{Pair: f.Pair, From: f.Path, To: to})
			movedNow[f.Pair] = true
			e.recordMove(f.Pair)
			if util(hk) <= e.cfg.Relief {
				break
			}
		}
	}
	return moves
}

// movableAcross lists the flows crossing hk that are allowed to move this
// round, largest rate first (fewest moves relieve the most load), pair key
// as the deterministic tiebreak.
func (e *Engine) movableAcross(flows []Flow, hk telemetry.LinkKey, movedNow map[[2]int]bool) []Flow {
	var out []Flow
	for _, f := range flows {
		if f.Rate <= 0 || len(f.Candidates) < 2 || movedNow[f.Pair] {
			continue
		}
		if !pathCrosses(f.Path, hk) {
			continue
		}
		if h := e.hist[f.Pair]; h != nil {
			if e.round < h.frozenTill || e.round-h.lastMove <= e.cfg.Cooldown {
				continue
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		if out[i].Pair[0] != out[j].Pair[0] {
			return out[i].Pair[0] < out[j].Pair[0]
		}
		return out[i].Pair[1] < out[j].Pair[1]
	})
	return out
}

// bestAlternate picks the coldest candidate walk avoiding hk whose every
// link stays at or below Relief once the flow lands on it, or nil when no
// candidate qualifies — better to leave a link hot than to create the next
// hot link.
func (e *Engine) bestAlternate(f Flow, hk telemetry.LinkKey, rates, caps map[telemetry.LinkKey]float64, defCap float64) []int {
	old := make(map[telemetry.LinkKey]bool)
	for _, lk := range telemetry.PathLinks(f.Path) {
		old[lk] = true
	}
	var best []int
	bestU := math.Inf(1)
	for _, c := range f.Candidates {
		if pathEqual(c, f.Path) || pathCrosses(c, hk) {
			continue
		}
		ok, maxU := true, 0.0
		for _, lk := range telemetry.PathLinks(c) {
			r := rates[lk] + f.Rate
			if old[lk] {
				r -= f.Rate // the flow already charges a shared hop
			}
			cp, has := caps[lk]
			if !has {
				cp = defCap
			}
			u := 0.0
			if cp > 0 {
				u = r / cp
			}
			if u > e.cfg.Relief {
				ok = false
				break
			}
			if u > maxU {
				maxU = u
			}
		}
		if !ok {
			continue
		}
		if maxU < bestU || (maxU == bestU && pathLess(c, best)) {
			best, bestU = c, maxU
		}
	}
	return best
}

// recordMove stamps the pair's cooldown and freezes it when it has moved
// FreezeAfter times within the window.
func (e *Engine) recordMove(pair [2]int) {
	h := e.hist[pair]
	if h == nil {
		h = &pairHist{}
		e.hist[pair] = h
	}
	h.lastMove = e.round
	kept := h.moves[:0]
	for _, r := range h.moves {
		if e.round-r < e.cfg.FreezeWindow {
			kept = append(kept, r)
		}
	}
	h.moves = append(kept, e.round)
	if len(h.moves) >= e.cfg.FreezeAfter {
		h.frozenTill = e.round + e.cfg.FreezeFor
		h.moves = h.moves[:0]
	}
}

func pathCrosses(path []int, k telemetry.LinkKey) bool {
	for _, lk := range telemetry.PathLinks(path) {
		if lk == k {
			return true
		}
	}
	return false
}

func pathEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathLess is a deterministic total order on walks (length, then lexical).
func pathLess(a, b []int) bool {
	if b == nil {
		return true
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

package te

import (
	"reflect"
	"testing"

	"routeflow/internal/telemetry"
)

// diamond builds a 0→3 state with two equal-cost walks (via 1, via 2) and
// the via-1 path carrying the given flows; every link has capacity 100.
func diamondState(flows []Flow) State {
	links := map[telemetry.LinkKey]Link{}
	for _, k := range append(telemetry.PathLinks([]int{0, 1, 3}), telemetry.PathLinks([]int{0, 2, 3})...) {
		links[k] = Link{Capacity: 100}
	}
	for _, f := range flows {
		for _, k := range telemetry.PathLinks(f.Path) {
			l := links[k]
			l.Rate += f.Rate
			links[k] = l
		}
	}
	return State{Links: links, DefaultCapacity: 100, Flows: flows}
}

func diamondFlow(pair [2]int, rate float64, via int) Flow {
	path := []int{0, via, 3}
	return Flow{Pair: pair, Rate: rate, Path: path,
		Candidates: [][]int{{0, 1, 3}, {0, 2, 3}}}
}

// TestPlanRelievesHotLink drives a hot via-1 path with a cold via-2
// alternate: the largest movable flow migrates, the relieved link drops
// below threshold, and one move suffices (fewest-largest policy).
func TestPlanRelievesHotLink(t *testing.T) {
	e := New(Config{})
	st := diamondState([]Flow{
		diamondFlow([2]int{0, 3}, 50, 1),
		diamondFlow([2]int{4, 3}, 40, 1), // (fake distinct pair, same walk)
	})
	moves := e.Plan(st)
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly 1", moves)
	}
	if moves[0].Pair != [2]int{0, 3} {
		t.Fatalf("moved pair %v, want the largest flow (0,3)", moves[0].Pair)
	}
	if !reflect.DeepEqual(moves[0].To, []int{0, 2, 3}) {
		t.Fatalf("moved to %v, want the cold alternate [0 2 3]", moves[0].To)
	}
}

// TestPlanHysteresis pins the hysteresis band: load between Relief and
// Headroom is not hot, so nothing moves.
func TestPlanHysteresis(t *testing.T) {
	e := New(Config{Headroom: 0.8, Relief: 0.7})
	st := diamondState([]Flow{diamondFlow([2]int{0, 3}, 75, 1)})
	if moves := e.Plan(st); len(moves) != 0 {
		t.Fatalf("0.75 utilization (below 0.8 headroom) produced moves: %+v", moves)
	}
}

// TestPlanRefusesToCreateHotLink proves a move is rejected when the only
// alternate would itself exceed the relief watermark — better one hot link
// than two.
func TestPlanRefusesToCreateHotLink(t *testing.T) {
	e := New(Config{})
	flows := []Flow{
		diamondFlow([2]int{0, 3}, 90, 1),
		diamondFlow([2]int{5, 3}, 60, 2), // alternate already warm
	}
	st := diamondState(flows)
	if moves := e.Plan(st); len(moves) != 0 {
		t.Fatalf("move onto a path that would exceed relief was accepted: %+v", moves)
	}
}

// TestPlanCooldown moves a pair once, then re-presents the same hot view:
// the pair must sit out the cooldown instead of moving again. The pinned
// companion flow keeps the link hot but is itself unmovable.
func TestPlanCooldown(t *testing.T) {
	e := New(Config{Cooldown: 3})
	pinned := diamondFlow([2]int{4, 3}, 45, 1)
	pinned.Candidates = [][]int{{0, 1, 3}} // single path: never movable
	st := diamondState([]Flow{diamondFlow([2]int{0, 3}, 45, 1), pinned})
	if moves := e.Plan(st); len(moves) != 1 {
		t.Fatalf("first round did not move: %+v", moves)
	}
	// Same (stale) view again: the flow looks movable but is cooling down.
	for round := 0; round < 3; round++ {
		if moves := e.Plan(st); len(moves) != 0 {
			t.Fatalf("round %d moved a cooling-down pair: %+v", round+2, moves)
		}
	}
	if moves := e.Plan(st); len(moves) != 1 {
		t.Fatalf("pair still unmovable after cooldown expired: %+v", moves)
	}
}

// TestPlanFreezesOscillator feeds a view where the hot side always follows
// the flow (demand shifting under it), so the pair keeps moving; after
// FreezeAfter moves within the window it must be frozen and stay put even
// though a hot link still crosses it.
func TestPlanFreezesOscillator(t *testing.T) {
	e := New(Config{Cooldown: 1, FreezeAfter: 3, FreezeWindow: 10, FreezeFor: 20})
	pair := [2]int{0, 3}
	mkState := func(via int) State {
		links := map[telemetry.LinkKey]Link{}
		for _, k := range telemetry.PathLinks([]int{0, via, 3}) {
			links[k] = Link{Rate: 85, Capacity: 100} // hot side, under the flow
		}
		for _, k := range telemetry.PathLinks([]int{0, 3 - via, 3}) {
			links[k] = Link{Rate: 10, Capacity: 100}
		}
		f := Flow{Pair: pair, Rate: 30, Path: []int{0, via, 3},
			Candidates: [][]int{{0, 1, 3}, {0, 2, 3}}}
		return State{Links: links, DefaultCapacity: 100, Flows: []Flow{f}}
	}
	via, moved := 1, 0
	for round := 0; round < 12 && moved < 3; round++ {
		if moves := e.Plan(mkState(via)); len(moves) == 1 {
			moved++
			via = 3 - via // the hot background chases the flow
		}
	}
	if moved != 3 {
		t.Fatalf("oscillator only moved %d times, wanted 3 to trip the freeze", moved)
	}
	if !e.Frozen(pair) {
		t.Fatal("pair moved FreezeAfter times but is not frozen")
	}
	for round := 0; round < 5; round++ {
		if moves := e.Plan(mkState(via)); len(moves) != 0 {
			t.Fatalf("frozen pair moved: %+v", moves)
		}
	}
}

// TestPlanMaxMovesPerRound bounds churn: six independently hot diamonds
// each offer a move, the cap allows two.
func TestPlanMaxMovesPerRound(t *testing.T) {
	e := New(Config{MaxMovesPerRound: 2})
	var flows []Flow
	links := map[telemetry.LinkKey]Link{}
	for i := 0; i < 6; i++ {
		base := 10 * i
		mover := Flow{Pair: [2]int{base, base + 3}, Rate: 45,
			Path:       []int{base, base + 1, base + 3},
			Candidates: [][]int{{base, base + 1, base + 3}, {base, base + 2, base + 3}}}
		pinned := Flow{Pair: [2]int{base + 4, base + 3}, Rate: 45,
			Path:       []int{base, base + 1, base + 3},
			Candidates: [][]int{{base, base + 1, base + 3}}}
		flows = append(flows, mover, pinned)
		for _, cand := range mover.Candidates {
			for _, k := range telemetry.PathLinks(cand) {
				if _, ok := links[k]; !ok {
					links[k] = Link{Capacity: 100}
				}
			}
		}
		for _, f := range []Flow{mover, pinned} {
			for _, k := range telemetry.PathLinks(f.Path) {
				l := links[k]
				l.Rate += f.Rate
				links[k] = l
			}
		}
	}
	st := State{Links: links, DefaultCapacity: 100, Flows: flows}
	if moves := e.Plan(st); len(moves) != 2 {
		t.Fatalf("round produced %d moves, capped at 2", len(moves))
	}
}

// TestPlanDeterministic runs two fresh engines over the same view sequence
// and demands identical decisions.
func TestPlanDeterministic(t *testing.T) {
	mkFlows := func() []Flow {
		return []Flow{
			diamondFlow([2]int{0, 3}, 50, 1),
			diamondFlow([2]int{4, 3}, 50, 1), // exact rate tie: pair order breaks it
			diamondFlow([2]int{5, 3}, 30, 1),
		}
	}
	a, b := New(Config{}), New(Config{})
	for round := 0; round < 5; round++ {
		ma := a.Plan(diamondState(mkFlows()))
		mb := b.Plan(diamondState(mkFlows()))
		if !reflect.DeepEqual(ma, mb) {
			t.Fatalf("round %d diverged:\n a: %+v\n b: %+v", round, ma, mb)
		}
	}
}

package vnet

import (
	"net/netip"
	"testing"
	"time"

	"routeflow/internal/pkt"
)

// TestVMInjectBatchRoutes: a burst of transit packets toward one
// destination is routed like the single-frame path (TTL decremented, MACs
// rewritten, egress port 2), with the RIB/ARP decision resolved once and
// reused across the run. A trailing packet to a different destination
// forces a fresh decision.
func TestVMInjectBatchRoutes(t *testing.T) {
	vm := newVM(t, 0xE, 2, time.Millisecond)
	waitState(t, vm, StateUp)
	if err := vm.ConfigureInterface(1, netip.MustParsePrefix("172.16.0.1/30"), 10,
		netip.MustParsePrefix("172.16.0.0/16")); err != nil {
		t.Fatal(err)
	}
	lan := netip.MustParsePrefix("10.2.0.1/24")
	if err := vm.ConfigureInterface(2, lan, 10, lan.Masked()); err != nil {
		t.Fatal(err)
	}
	type tx struct {
		port  uint16
		frame []byte
	}
	out := make(chan tx, 64)
	vm.OnTransmit(func(port uint16, frame []byte) { out <- tx{port, frame} })

	// Pre-resolve both next hops so the whole burst takes the fast path.
	vmMAC1, _ := vm.InterfaceMAC(1)
	vmMAC2, _ := vm.InterfaceMAC(2)
	hostA, hostB := pkt.LocalMAC(0x99), pkt.LocalMAC(0x9A)
	dstA, dstB := netip.MustParseAddr("10.2.0.50"), netip.MustParseAddr("10.2.0.51")
	for _, pre := range []struct {
		ip  netip.Addr
		mac pkt.MAC
	}{{dstA, hostA}, {dstB, hostB}} {
		rep := &pkt.ARP{Op: pkt.ARPReply, SenderHW: pre.mac, SenderIP: pre.ip,
			TargetHW: vmMAC2, TargetIP: lan.Addr()}
		f := &pkt.Frame{Dst: vmMAC2, Src: pre.mac, Type: pkt.EtherTypeARP,
			Payload: rep.Marshal()}
		vm.Inject(2, f.Marshal())
	}

	mkTransit := func(dst netip.Addr, tag byte) []byte {
		src := netip.MustParseAddr("10.9.0.100")
		ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: src, Dst: dst,
			Payload: (&pkt.UDP{SrcPort: 1, DstPort: 2, Payload: []byte{tag}}).Marshal(src, dst)}
		f := &pkt.Frame{Dst: vmMAC1, Src: pkt.LocalMAC(0x88),
			Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
		return f.Marshal()
	}
	const runLen = 10
	burst := make([][]byte, 0, runLen+1)
	for i := 0; i < runLen; i++ {
		burst = append(burst, mkTransit(dstA, byte(i)))
	}
	burst = append(burst, mkTransit(dstB, 0xFF))
	vm.InjectBatch(1, burst)

	gotA, gotB := 0, 0
	deadline := time.After(2 * time.Second)
	for gotA+gotB < runLen+1 {
		select {
		case got := <-out:
			f, err := pkt.DecodeFrame(got.frame)
			if err != nil || f.Type != pkt.EtherTypeIPv4 {
				continue // ARP chatter
			}
			ip, err := pkt.DecodeIPv4(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if got.port != 2 || ip.TTL != 63 {
				t.Fatalf("forwarded on port %d with TTL %d", got.port, ip.TTL)
			}
			switch {
			case ip.Dst == dstA && f.Dst == hostA:
				gotA++
			case ip.Dst == dstB && f.Dst == hostB:
				gotB++
			default:
				t.Fatalf("unexpected forward: dst=%v mac=%v", ip.Dst, f.Dst)
			}
		case <-deadline:
			t.Fatalf("burst not fully forwarded: %d/%d to A, %d/1 to B", gotA, runLen, gotB)
		}
	}
	if gotA != runLen || gotB != 1 {
		t.Fatalf("forward counts: A=%d want %d, B=%d want 1", gotA, runLen, gotB)
	}
}

// BenchmarkVMRouteBatch measures the slow-path routing burst: InjectBatch
// amortizes the RIB lookup and ARP resolution over a same-destination run.
func BenchmarkVMRouteBatch(b *testing.B) {
	vm, err := New(Config{DPID: 0xE, Ports: 2,
		RouterID: netip.MustParseAddr("10.255.0.9"), BootDelay: time.Millisecond,
		Timers: fastTimers()})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Destroy()
	for vm.State() != StateUp {
		time.Sleep(time.Millisecond)
	}
	lan := netip.MustParsePrefix("10.2.0.1/24")
	if err := vm.ConfigureInterface(1, netip.MustParsePrefix("172.16.0.1/30"), 10,
		netip.MustParsePrefix("172.16.0.0/16")); err != nil {
		b.Fatal(err)
	}
	if err := vm.ConfigureInterface(2, lan, 10, lan.Masked()); err != nil {
		b.Fatal(err)
	}
	vm.OnTransmit(func(uint16, []byte) {})
	vmMAC1, _ := vm.InterfaceMAC(1)
	vmMAC2, _ := vm.InterfaceMAC(2)
	dst := netip.MustParseAddr("10.2.0.50")
	rep := &pkt.ARP{Op: pkt.ARPReply, SenderHW: pkt.LocalMAC(0x99), SenderIP: dst,
		TargetHW: vmMAC2, TargetIP: lan.Addr()}
	vm.Inject(2, (&pkt.Frame{Dst: vmMAC2, Src: pkt.LocalMAC(0x99),
		Type: pkt.EtherTypeARP, Payload: rep.Marshal()}).Marshal())

	src := netip.MustParseAddr("10.9.0.100")
	mk := func() []byte {
		ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: src, Dst: dst,
			Payload: (&pkt.UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}).Marshal(src, dst)}
		return (&pkt.Frame{Dst: vmMAC1, Src: pkt.LocalMAC(0x88),
			Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}).Marshal()
	}
	proto := mk()
	burst := make([][]byte, 32)
	for j := range burst {
		burst[j] = append([]byte(nil), proto...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(burst) {
		// Re-arm the burst: route mutates TTL/MACs in place.
		for j := range burst {
			copy(burst[j], proto)
		}
		vm.InjectBatch(1, burst)
	}
}

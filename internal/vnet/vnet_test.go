package vnet

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"routeflow/internal/pkt"
	"routeflow/internal/quagga"
	"routeflow/internal/rib"
)

func fastTimers() quagga.Timers {
	return quagga.Timers{Hello: 20 * time.Millisecond, Dead: 80 * time.Millisecond,
		SPFDelay: 5 * time.Millisecond}
}

func newVM(t *testing.T, dpid uint64, ports int, boot time.Duration) *VM {
	t.Helper()
	vm, err := New(Config{DPID: dpid, Ports: ports,
		RouterID: netip.MustParseAddr("10.255.0.9"), BootDelay: boot,
		Timers: fastTimers()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(vm.Destroy)
	return vm
}

func waitState(t *testing.T, vm *VM, want State) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if vm.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("vm state = %v, want %v", vm.State(), want)
}

func TestVMValidation(t *testing.T) {
	if _, err := New(Config{DPID: 1, Ports: 0,
		RouterID: netip.MustParseAddr("1.1.1.1")}); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := New(Config{DPID: 1, Ports: 1}); err == nil {
		t.Fatal("missing router ID accepted")
	}
}

func TestVMBootLifecycle(t *testing.T) {
	vm := newVM(t, 0xA, 2, 30*time.Millisecond)
	if vm.State() != StateBooting {
		t.Fatalf("initial state = %v", vm.State())
	}
	ready := make(chan struct{})
	vm.OnReady(func() { close(ready) })
	select {
	case <-ready:
	case <-time.After(3 * time.Second):
		t.Fatal("never ready")
	}
	if vm.State() != StateUp {
		t.Fatalf("state = %v", vm.State())
	}
	// OnReady after up fires immediately.
	fired := false
	vm.OnReady(func() { fired = true })
	if !fired {
		t.Fatal("OnReady after up did not fire synchronously")
	}
	if vm.Name() != "vm-000000000000000a" || vm.DPID() != 0xA || vm.Ports() != 2 {
		t.Fatal("identity accessors")
	}
	if StateBooting.String() != "booting" || StateUp.String() != "up" ||
		StateDestroyed.String() != "destroyed" || State(9).String() == "" {
		t.Fatal("state strings")
	}
}

func TestConfigureWhileBootingIsQueued(t *testing.T) {
	vm := newVM(t, 0xB, 2, 50*time.Millisecond)
	pool := netip.MustParsePrefix("172.16.0.0/16")
	if err := vm.ConfigureInterface(1, netip.MustParsePrefix("172.16.0.1/30"), 10, pool); err != nil {
		t.Fatal(err)
	}
	waitState(t, vm, StateUp)
	// After boot, the queued configuration must be applied: connected route.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := vm.RIB().Lookup(netip.MustParseAddr("172.16.0.2")); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rt, ok := vm.RIB().Lookup(netip.MustParseAddr("172.16.0.2"))
	if !ok || rt.Source != rib.SourceConnected {
		t.Fatalf("connected route = %v, %v", rt, ok)
	}
	if addr, ok := vm.InterfaceAddr(1); !ok || addr.String() != "172.16.0.1/30" {
		t.Fatalf("iface addr = %v, %v", addr, ok)
	}
	if ports := vm.ConfiguredPorts(); len(ports) != 1 || ports[0] != 1 {
		t.Fatalf("configured ports = %v", ports)
	}
}

func TestConfigureConverges(t *testing.T) {
	vm := newVM(t, 0xC, 1, time.Millisecond)
	waitState(t, vm, StateUp)
	pool := netip.MustParsePrefix("172.16.0.0/16")
	addr := netip.MustParsePrefix("172.16.0.1/30")
	if err := vm.ConfigureInterface(1, addr, 1, pool); err != nil {
		t.Fatal(err)
	}
	// Level-triggered re-apply of the same address is a no-op.
	if err := vm.ConfigureInterface(1, addr, 1, pool); err != nil {
		t.Fatalf("idempotent re-apply errored: %v", err)
	}
	if got, _ := vm.InterfaceAddr(1); got != addr {
		t.Fatalf("addr after re-apply = %v", got)
	}
	// A different address reconfigures instead of erroring.
	next := netip.MustParsePrefix("172.16.0.5/30")
	if err := vm.ConfigureInterface(1, next, 1, pool); err != nil {
		t.Fatalf("reconfigure errored: %v", err)
	}
	if got, _ := vm.InterfaceAddr(1); got != next {
		t.Fatalf("addr after reconfigure = %v", got)
	}
	if _, ok := vm.RIB().Lookup(addr.Addr()); ok {
		t.Fatal("old connected route survived reconfigure")
	}
	if _, ok := vm.RIB().Lookup(next.Addr().Next()); !ok {
		t.Fatal("new connected route missing after reconfigure")
	}
	// Port 0 is invalid; destroyed VMs refuse configuration.
	if err := vm.ConfigureInterface(0, addr, 1, pool); err == nil {
		t.Fatal("port 0 accepted")
	}
	vm.Destroy()
	if err := vm.ConfigureInterface(1, addr, 1, pool); err == nil {
		t.Fatal("destroyed VM accepted configuration")
	}
}

// TestGrowInterfaceOnDemand is the regression test for the port-count vs.
// port-number contract mismatch behind the pan-European demo flake: a
// switch announcing 2 ports whose host attachment names port 7 (numbers
// need not be contiguous) must still get a working gateway interface.
func TestGrowInterfaceOnDemand(t *testing.T) {
	vm := newVM(t, 0x11, 2, time.Millisecond)
	waitState(t, vm, StateUp)
	gw := netip.MustParsePrefix("10.7.0.1/24")
	if err := vm.ConfigureInterface(7, gw, 10, gw.Masked()); err != nil {
		t.Fatalf("non-contiguous port rejected: %v", err)
	}
	if vm.Ports() != 3 {
		t.Fatalf("ports = %d, want 3 (2 announced + 1 grown)", vm.Ports())
	}
	if addr, ok := vm.InterfaceAddr(7); !ok || addr != gw {
		t.Fatalf("grown iface addr = %v, %v", addr, ok)
	}
	if mac, ok := vm.InterfaceMAC(7); !ok || mac != MAC(0x11, 7) {
		t.Fatalf("grown iface mac = %v, %v", mac, ok)
	}
	// The grown interface answers ARP for its gateway address — the exact
	// behaviour whose absence wedged the host forever.
	var mu sync.Mutex
	var sent [][]byte
	vm.OnTransmit(func(port uint16, frame []byte) {
		if port == 7 {
			mu.Lock()
			sent = append(sent, frame)
			mu.Unlock()
		}
	})
	hostMAC := pkt.LocalMAC(0x70)
	req := pkt.NewARPRequest(hostMAC, netip.MustParseAddr("10.7.0.100"), gw.Addr())
	frame := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: hostMAC,
		Type: pkt.EtherTypeARP, Payload: req.Marshal()}
	vm.Inject(7, frame.Marshal())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(sent)
		mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("grown interface never answered ARP for the gateway")
}

// TestConfigureWhileBootingConvergesToLast checks that re-declarations
// queued during boot settle on the final declared address.
func TestConfigureWhileBootingConvergesToLast(t *testing.T) {
	vm := newVM(t, 0x12, 1, 50*time.Millisecond)
	pool := netip.MustParsePrefix("172.16.0.0/16")
	first := netip.MustParsePrefix("172.16.0.1/30")
	second := netip.MustParsePrefix("172.16.0.9/30")
	if err := vm.ConfigureInterface(1, first, 1, pool); err != nil {
		t.Fatal(err)
	}
	if err := vm.ConfigureInterface(1, second, 1, pool); err != nil {
		t.Fatal(err)
	}
	waitState(t, vm, StateUp)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := vm.RIB().Lookup(second.Addr().Next()); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr, _ := vm.InterfaceAddr(1); addr != second {
		t.Fatalf("addr = %v, want %v", addr, second)
	}
	if _, ok := vm.RIB().Lookup(first.Addr()); ok {
		t.Fatal("superseded boot-time address survived")
	}
}

func TestVMAnswersARPAndEmitsHostLearned(t *testing.T) {
	vm := newVM(t, 0xD, 1, time.Millisecond)
	waitState(t, vm, StateUp)
	gw := netip.MustParsePrefix("10.1.0.1/24")
	if err := vm.ConfigureInterface(1, gw, 10, gw.Masked()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sent [][]byte
	vm.OnTransmit(func(port uint16, frame []byte) {
		mu.Lock()
		sent = append(sent, frame)
		mu.Unlock()
	})
	learned := make(chan HostLearned, 1)
	vm.OnHostLearned(func(h HostLearned) { learned <- h })

	hostMAC := pkt.LocalMAC(0x77)
	hostIP := netip.MustParseAddr("10.1.0.100")
	req := pkt.NewARPRequest(hostMAC, hostIP, gw.Addr())
	frame := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: hostMAC,
		Type: pkt.EtherTypeARP, Payload: req.Marshal()}
	vm.Inject(1, frame.Marshal())

	select {
	case h := <-learned:
		if h.IP != hostIP || h.MAC != hostMAC || h.Port != 1 {
			t.Fatalf("learned = %+v", h)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no host-learned event")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sent) == 0 {
		t.Fatal("no ARP reply transmitted")
	}
	f, err := pkt.DecodeFrame(sent[len(sent)-1])
	if err != nil || f.Type != pkt.EtherTypeARP {
		t.Fatalf("reply frame: %v %v", f, err)
	}
	rep, err := pkt.DecodeARP(f.Payload)
	if err != nil || rep.Op != pkt.ARPReply || rep.SenderIP != gw.Addr() {
		t.Fatalf("arp reply = %+v, %v", rep, err)
	}
	if mac, ok := vm.LookupARP(1, hostIP); !ok || mac != hostMAC {
		t.Fatal("ARP cache not populated")
	}
}

func TestVMSlowPathRouting(t *testing.T) {
	// Two interfaces; a static-ish scenario: packet in port 1 destined to a
	// host on port 2's subnet must be forwarded after ARP resolution.
	vm := newVM(t, 0xE, 2, time.Millisecond)
	waitState(t, vm, StateUp)
	if err := vm.ConfigureInterface(1, netip.MustParsePrefix("172.16.0.1/30"), 10,
		netip.MustParsePrefix("172.16.0.0/16")); err != nil {
		t.Fatal(err)
	}
	lan := netip.MustParsePrefix("10.2.0.1/24")
	if err := vm.ConfigureInterface(2, lan, 10, lan.Masked()); err != nil {
		t.Fatal(err)
	}
	type tx struct {
		port  uint16
		frame []byte
	}
	out := make(chan tx, 16)
	vm.OnTransmit(func(port uint16, frame []byte) { out <- tx{port, frame} })

	// Route an IP packet toward 10.2.0.50 (unresolved): the VM must emit an
	// ARP request on port 2 and queue the packet.
	dst := netip.MustParseAddr("10.2.0.50")
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP,
		Src: netip.MustParseAddr("10.9.0.100"), Dst: dst,
		Payload: (&pkt.UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}).Marshal(
			netip.MustParseAddr("10.9.0.100"), dst)}
	vmMAC, _ := vm.InterfaceMAC(1)
	in := &pkt.Frame{Dst: vmMAC, Src: pkt.LocalMAC(0x88),
		Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	vm.Inject(1, in.Marshal())

	var arpOut tx
	select {
	case arpOut = <-out:
	case <-time.After(2 * time.Second):
		t.Fatal("no ARP request emitted")
	}
	if arpOut.port != 2 {
		t.Fatalf("arp on port %d", arpOut.port)
	}
	// Answer the ARP: the queued data packet must now be forwarded.
	hostMAC := pkt.LocalMAC(0x99)
	rep := (&pkt.ARP{Op: pkt.ARPReply, SenderHW: hostMAC, SenderIP: dst,
		TargetHW: vmMAC, TargetIP: lan.Addr()})
	repFrame := &pkt.Frame{Dst: vmMAC, Src: hostMAC, Type: pkt.EtherTypeARP,
		Payload: rep.Marshal()}
	vm.Inject(2, repFrame.Marshal())

	deadline := time.After(2 * time.Second)
	for {
		select {
		case got := <-out:
			f, err := pkt.DecodeFrame(got.frame)
			if err != nil || f.Type != pkt.EtherTypeIPv4 {
				continue
			}
			fwd, err := pkt.DecodeIPv4(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if got.port != 2 || f.Dst != hostMAC {
				t.Fatalf("forwarded to port %d dst %v", got.port, f.Dst)
			}
			if fwd.TTL != 63 {
				t.Fatalf("TTL = %d, want decremented 63", fwd.TTL)
			}
			return
		case <-deadline:
			t.Fatal("queued packet never forwarded")
		}
	}
}

func TestVMMACDeterministicAndDistinct(t *testing.T) {
	a, b := MAC(1, 1), MAC(1, 2)
	if a == b || a != MAC(1, 1) {
		t.Fatal("MAC scheme broken")
	}
	if a.IsMulticast() {
		t.Fatal("VM MAC must be unicast")
	}
	if IfaceName(3) != "eth3" {
		t.Fatal("iface naming")
	}
	if NextHopMAC(5, 2) != MAC(5, 2) {
		t.Fatal("NextHopMAC")
	}
}

func TestDeconfigureInterface(t *testing.T) {
	vm := newVM(t, 0xF, 1, time.Millisecond)
	waitState(t, vm, StateUp)
	addr := netip.MustParsePrefix("172.16.0.1/30")
	if err := vm.ConfigureInterface(1, addr, 10, addr.Masked()); err != nil {
		t.Fatal(err)
	}
	vm.DeconfigureInterface(1)
	if _, ok := vm.InterfaceAddr(1); ok {
		t.Fatal("address survived deconfigure")
	}
	if _, ok := vm.RIB().Lookup(addr.Addr()); ok {
		t.Fatal("connected route survived deconfigure")
	}
	vm.DeconfigureInterface(1) // idempotent
}

func TestDestroyedVMIgnoresTraffic(t *testing.T) {
	vm := newVM(t, 0x10, 1, time.Millisecond)
	waitState(t, vm, StateUp)
	vm.Destroy()
	if vm.State() != StateDestroyed {
		t.Fatal("destroy")
	}
	// No panic, no effect.
	vm.Inject(1, []byte{1, 2, 3})
	vm.Destroy() // idempotent
}
